// Certificate Transparency case study (paper §5.7): an eLSM-backed CT log
// server with three actors — the log server ingesting certificate
// submissions, a browser-side auditor validating presented certificates,
// and a domain-owner monitor watching its own hostnames with sublinear
// bandwidth.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"elsm"
	"elsm/internal/ctlog"
)

func main() {
	store, err := elsm.Open(elsm.Options{})
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	defer store.Close()
	logServer := ctlog.NewServer(store)

	// --- Log server: CAs submit an intensive stream of certificates.
	fmt.Println("## log server: ingesting certificate stream")
	for i := 0; i < 500; i++ {
		cert := ctlog.Certificate{
			Hostname: fmt.Sprintf("host%03d.example.com", i),
			Serial:   uint64(1000 + i),
			Issuer:   "Let's Encrypt",
			NotAfter: time.Now().AddDate(0, 3, 0),
			DER:      []byte(fmt.Sprintf("cert-body-%d", i)),
		}
		if _, err := logServer.AddChain(cert); err != nil {
			log.Fatalf("add-chain: %v", err)
		}
	}
	fmt.Println("   500 certificates logged")

	// --- Auditor: a TLS client validates the certificate a server
	// presented. The eLSM store proves the answer is fresh and complete.
	fmt.Println("## auditor: validating a presented certificate")
	presented := ctlog.Certificate{
		Hostname: "host042.example.com",
		Serial:   1042,
		Issuer:   "Let's Encrypt",
		NotAfter: time.Now().AddDate(0, 3, 0),
		DER:      []byte("cert-body-42"),
	}
	if err := logServer.Audit(presented); err != nil {
		log.Fatalf("audit should pass: %v", err)
	}
	fmt.Println("   host042.example.com: certificate matches the log (verified)")

	// An impostor certificate for the same hostname is rejected.
	impostor := presented
	impostor.DER = []byte("evil-body")
	if err := logServer.Audit(impostor); errors.Is(err, ctlog.ErrMismatch) {
		fmt.Println("   impostor certificate rejected:", err)
	} else {
		log.Fatalf("impostor audit: %v", err)
	}

	// --- Rotation + revocation: freshness in action. After the CA
	// revokes, an auditor can no longer be served the old certificate —
	// the exact CT attack the paper motivates ("returning a revoked
	// certificate may connect a user to an impersonator", §3.1).
	fmt.Println("## revocation: freshness prevents stale certificates")
	if _, err := logServer.Revoke("host042.example.com"); err != nil {
		log.Fatalf("revoke: %v", err)
	}
	if err := logServer.Audit(presented); errors.Is(err, ctlog.ErrRevoked) {
		fmt.Println("   revoked certificate rejected:", err)
	} else {
		log.Fatalf("revoked audit: %v", err)
	}

	// --- Monitor: a domain owner downloads only its own hostnames via a
	// completeness-verified range scan (sublinear bandwidth, §5.7).
	fmt.Println("## monitor: domain owner watches host01*.example.com")
	report, err := logServer.MonitorDomain("host01")
	if err != nil {
		log.Fatalf("monitor: %v", err)
	}
	fmt.Printf("   monitor sees %d hostnames (completeness-verified)\n", len(report.Entries))
	for host, e := range report.Entries {
		if e.Revoked {
			fmt.Printf("   ALERT: %s revoked\n", host)
		}
	}
}
