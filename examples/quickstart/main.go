// Quickstart: open an authenticated eLSM-P2 store, commit an atomic write
// batch, read with verification, stream a completeness-verified range with
// the iterator, and observe tamper detection semantics.
package main

import (
	"fmt"
	"log"

	"elsm"
)

func main() {
	// A zero-value Options opens an in-memory eLSM-P2 store with a
	// functional (cost-free) simulated enclave.
	store, err := elsm.Open(elsm.Options{})
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	defer store.Close()

	// Writes batch into ONE enclave round trip: the whole group shares a
	// single engine lock acquisition, one grouped WAL append+fsync and at
	// most one trusted-counter bump — the high-throughput ingestion path.
	b := store.NewBatch()
	b.Put([]byte("alice"), []byte("balance=100"))
	b.Put([]byte("bob"), []byte("balance=250"))
	b.Put([]byte("carol"), []byte("balance=75"))
	ts, err := b.Commit()
	if err != nil {
		log.Fatalf("batch commit: %v", err)
	}
	fmt.Printf("committed 3 writes atomically @ ts=%d\n", ts)

	// GET verifies integrity and freshness before returning.
	res, err := store.Get([]byte("alice"))
	if err != nil {
		log.Fatalf("get: %v", err)
	}
	fmt.Printf("get alice -> %s (verified, ts=%d)\n", res.Value, res.Ts)

	// Updates supersede; the store proves you always see the newest. A
	// batch can mix puts and deletes.
	b.Put([]byte("alice"), []byte("balance=40"))
	b.Delete([]byte("carol"))
	if _, err := b.Commit(); err != nil {
		log.Fatalf("batch commit: %v", err)
	}
	res, _ = store.Get([]byte("alice"))
	fmt.Printf("get alice -> %s (freshness-verified)\n", res.Value)

	// Historical reads are first-class: GET(k, tsq).
	old, _ := store.GetAt([]byte("alice"), ts)
	fmt.Printf("get alice @ ts=%d -> %s (historical)\n", ts, old.Value)

	// Range reads stream through the verified iterator: each record's
	// proof is checked as it crosses the enclave boundary and range
	// completeness is verified incrementally, in bounded memory — the
	// untrusted host cannot silently omit bob, and carol's tombstone is
	// proven too.
	fmt.Println("iter a..z (streaming, completeness-verified):")
	it := store.Iter([]byte("a"), []byte("z"))
	for it.Next() {
		fmt.Printf("  %s -> %s\n", it.Key(), it.Value())
	}
	if err := it.Close(); err != nil {
		// A tampering host surfaces here as elsm.ErrAuthFailed.
		log.Fatalf("iter: %v", err)
	}

	// Scan is the materialized form of the same verified stream.
	results, err := store.Scan([]byte("a"), []byte("z"))
	if err != nil {
		log.Fatalf("scan: %v", err)
	}
	fmt.Printf("scan a..z -> %d verified results\n", len(results))

	// Absent keys produce verified non-membership, not blind trust.
	miss, err := store.Get([]byte("mallory"))
	if err != nil {
		log.Fatalf("get: %v", err)
	}
	fmt.Printf("get mallory -> found=%v (non-membership proven)\n", miss.Found)
}
