// Quickstart: open an authenticated eLSM-P2 store, commit an atomic write
// batch, read with verification, hold a verified point-in-time snapshot
// across concurrent writes, stream a completeness-verified range, and use
// pipelined async commits with a durability barrier — the Sessions v2 API.
package main

import (
	"context"
	"fmt"
	"log"

	"elsm"
)

func main() {
	// A zero-value Options opens an in-memory eLSM-P2 store with a
	// functional (cost-free) simulated enclave.
	store, err := elsm.Open(elsm.Options{})
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	defer store.Close()
	ctx := context.Background()

	// Writes batch into ONE enclave round trip: the whole group shares a
	// single engine lock acquisition, one grouped WAL append+fsync and at
	// most one trusted-counter bump — the high-throughput ingestion path.
	b := store.NewBatch()
	b.Put([]byte("alice"), []byte("balance=100"))
	b.Put([]byte("bob"), []byte("balance=250"))
	b.Put([]byte("carol"), []byte("balance=75"))
	ts, err := b.Commit()
	if err != nil {
		log.Fatalf("batch commit: %v", err)
	}
	fmt.Printf("committed 3 writes atomically @ ts=%d (durable)\n", ts)

	// GET verifies integrity and freshness before returning.
	res, err := store.Get([]byte("alice"))
	if err != nil {
		log.Fatalf("get: %v", err)
	}
	fmt.Printf("get alice -> %s (verified, ts=%d)\n", res.Value, res.Ts)

	// A Snapshot pins the trusted digest snapshot, its runs and the
	// memtable view: every read through it observes the SAME verified
	// state — a consistent multi-read session — no matter what commits,
	// flushes or compactions happen concurrently.
	snap, err := store.Snapshot()
	if err != nil {
		log.Fatalf("snapshot: %v", err)
	}
	defer snap.Close()

	// Updates supersede; the live store proves you always see the newest.
	b.Put([]byte("alice"), []byte("balance=40"))
	b.Delete([]byte("carol"))
	if _, err := b.Commit(); err != nil {
		log.Fatalf("batch commit: %v", err)
	}
	res, _ = store.Get([]byte("alice"))
	old, _ := snap.Get([]byte("alice"))
	fmt.Printf("live alice -> %s, snapshot@%d alice -> %s (both verified)\n",
		res.Value, snap.Ts(), old.Value)
	gone, _ := store.Get([]byte("carol"))
	kept, _ := snap.Get([]byte("carol"))
	fmt.Printf("live carol found=%v, snapshot carol found=%v\n", gone.Found, kept.Found)

	// Async commits decouple acknowledgment from durability: the future's
	// Ts is available once the trusted timestamp is assigned and the group
	// is appended — while the engine pipelines the next group's WAL append
	// with the in-flight fsync — and Sync is the durability barrier.
	var futs []*elsm.CommitFuture
	for i := 0; i < 3; i++ {
		b.Put([]byte(fmt.Sprintf("event-%d", i)), []byte("queued"))
		fut, err := b.CommitAsync(ctx)
		if err != nil {
			log.Fatalf("async commit: %v", err)
		}
		ats, _ := fut.Ts(ctx)
		fmt.Printf("async commit %d acknowledged @ ts=%d\n", i, ats)
		futs = append(futs, fut)
	}
	if err := store.Sync(ctx); err != nil {
		log.Fatalf("sync: %v", err)
	}
	for _, fut := range futs {
		if _, err := fut.Wait(ctx); err != nil {
			log.Fatalf("async commit failed: %v", err)
		}
	}
	fmt.Println("sync barrier passed: all acknowledged commits durable")

	// Range reads stream through the verified iterator: each record's
	// proof is checked as it crosses the enclave boundary and range
	// completeness is verified incrementally, in bounded memory — and the
	// whole stream is a point-in-time observation. Contexts cancel or
	// deadline long scans (IterCtx/ScanCtx).
	fmt.Println("iter a..z (streaming, completeness-verified):")
	it := store.IterCtx(ctx, []byte("a"), []byte("z"))
	for it.Next() {
		fmt.Printf("  %s -> %s\n", it.Key(), it.Value())
	}
	if err := it.Close(); err != nil {
		// A tampering host surfaces here as elsm.ErrAuthFailed.
		log.Fatalf("iter: %v", err)
	}

	// Scan is the materialized form of the same verified stream; the
	// snapshot serves it too, repeatable bit for bit.
	results, err := snap.Scan([]byte("a"), []byte("z"))
	if err != nil {
		log.Fatalf("scan: %v", err)
	}
	fmt.Printf("snapshot scan a..z -> %d verified results (as of ts=%d)\n", len(results), snap.Ts())

	// Observability without reaching into internals: Stats covers the
	// engine, the enclave, and the new session gauges.
	st := store.Stats()
	fmt.Printf("stats: %d group commits, %d wal fsyncs, %d snapshots open, %d async in flight\n",
		st.GroupCommits, st.WALSyncs, st.SnapshotsOpen, st.AsyncCommitsInFlight)

	// Absent keys produce verified non-membership, not blind trust.
	miss, err := store.Get([]byte("mallory"))
	if err != nil {
		log.Fatalf("get: %v", err)
	}
	fmt.Printf("get mallory -> found=%v (non-membership proven)\n", miss.Found)
}
