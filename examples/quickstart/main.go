// Quickstart: open an authenticated eLSM-P2 store, write, read with
// verification, scan with completeness, and observe tamper detection.
package main

import (
	"fmt"
	"log"

	"elsm"
)

func main() {
	// A zero-value Options opens an in-memory eLSM-P2 store with a
	// functional (cost-free) simulated enclave.
	store, err := elsm.Open(elsm.Options{})
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	defer store.Close()

	// PUT assigns trusted timestamps inside the enclave.
	ts, err := store.Put([]byte("alice"), []byte("balance=100"))
	if err != nil {
		log.Fatalf("put: %v", err)
	}
	fmt.Printf("put alice @ ts=%d\n", ts)
	store.Put([]byte("bob"), []byte("balance=250"))
	store.Put([]byte("carol"), []byte("balance=75"))

	// GET verifies integrity and freshness before returning.
	res, err := store.Get([]byte("alice"))
	if err != nil {
		log.Fatalf("get: %v", err)
	}
	fmt.Printf("get alice -> %s (verified, ts=%d)\n", res.Value, res.Ts)

	// Updates supersede; the store proves you always see the newest.
	store.Put([]byte("alice"), []byte("balance=40"))
	res, _ = store.Get([]byte("alice"))
	fmt.Printf("get alice -> %s (freshness-verified)\n", res.Value)

	// Historical reads are first-class: GET(k, tsq).
	old, _ := store.GetAt([]byte("alice"), ts)
	fmt.Printf("get alice @ ts=%d -> %s (historical)\n", ts, old.Value)

	// SCAN results are completeness-verified: the untrusted host cannot
	// silently omit bob.
	results, err := store.Scan([]byte("a"), []byte("z"))
	if err != nil {
		log.Fatalf("scan: %v", err)
	}
	fmt.Println("scan a..z (completeness-verified):")
	for _, r := range results {
		fmt.Printf("  %s -> %s\n", r.Key, r.Value)
	}

	// Absent keys produce verified non-membership, not blind trust.
	miss, err := store.Get([]byte("mallory"))
	if err != nil {
		log.Fatalf("get: %v", err)
	}
	fmt.Printf("get mallory -> found=%v (non-membership proven)\n", miss.Found)
}
