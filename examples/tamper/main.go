// Tamper demo: a malicious host corrupts, forges and rolls back the
// untrusted storage under an eLSM store, and every attack is detected by
// the enclave-side verification (the threat model of §3.3).
package main

import (
	"fmt"
	"log"

	"elsm"
	"elsm/internal/sgx"
	"elsm/internal/vfs"
)

func main() {
	// The MemFS plays the role of the untrusted host's disk: we get to
	// corrupt it at will, exactly like the adversary of §3.3.
	fs := vfs.NewMem()
	platform, err := sgx.NewPlatform()
	if err != nil {
		log.Fatal(err)
	}
	counter := sgx.NewMonotonicCounter() // the trusted monotonic counter (§5.6.1)

	opts := elsm.Options{
		FS:       fs,
		Platform: platform,
		Counter:  counter,
		// Small limits so data reaches untrusted SSTables quickly.
		MemtableSize:  4 << 10,
		TableFileSize: 4 << 10,
		LevelBase:     16 << 10,
		BlockSize:     512,
	}
	store, err := elsm.Open(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("## honest phase: writing 2000 records")
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("account%05d", i)
		if _, err := store.Put([]byte(key), []byte(fmt.Sprintf("balance=%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	res, err := store.Get([]byte("account01000"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   verified read: account01000 -> %s\n", res.Value)

	// --- Attack 1: corrupt SSTable bytes on the untrusted disk.
	fmt.Println("## attack 1: host flips bytes inside the SSTables")
	names, _ := fs.List("0")
	for _, name := range names {
		f, _ := fs.Open(name)
		for off := int64(0); off < f.Size(); off += 29 {
			fs.Corrupt(name, off)
		}
	}
	detected := 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("account%05d", i)
		if _, err := store.Get([]byte(key)); err != nil {
			detected++
		}
	}
	fmt.Printf("   %d/2000 reads failed verification — no silent wrong answers\n", detected)
	store.Close()

	// --- Attack 2: rollback. The host snapshots an old (authenticated!)
	// state, lets the enclave write more, then restores the snapshot.
	fmt.Println("## attack 2: rollback to an old authenticated state")
	fs2 := vfs.NewMem()
	opts2 := opts
	opts2.FS = fs2
	opts2.Platform = platform
	opts2.Counter = sgx.NewMonotonicCounter()
	store2, err := elsm.Open(opts2)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		store2.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v1"))
	}
	snapshot := fs2.Clone() // attacker snapshots here
	for i := 0; i < 500; i++ {
		store2.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v2"))
	}
	store2.Close()
	fs2.Restore(snapshot) // attacker rolls the disk back

	if _, err := elsm.Open(opts2); err != nil && elsm.IsAuthFailure(err) {
		fmt.Printf("   rollback detected at recovery: %v\n", err)
	} else {
		log.Fatalf("rollback NOT detected (err=%v)", err)
	}

	fmt.Println("## all attacks detected")
}
