// Blockchain ledger scenario (paper §3.1): an eLSM store as the ledger
// storage of a cryptocurrency node. Transactions arrive as an intensive
// write stream; lightweight SPV clients later fetch selected transactions
// with random-access reads and must be able to trust the answers — exactly
// the integrity/freshness/completeness guarantees eLSM verifies.
package main

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"log"
	"math/rand"

	"elsm"
)

// tx is a toy transaction.
type tx struct {
	From, To string
	Amount   uint64
	Nonce    uint64
}

func (t tx) id() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s->%s:%d:%d", t.From, t.To, t.Amount, t.Nonce)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

func (t tx) encode() []byte {
	out := make([]byte, 0, 64)
	out = append(out, t.From...)
	out = append(out, '>')
	out = append(out, t.To...)
	out = binary.BigEndian.AppendUint64(out, t.Amount)
	out = binary.BigEndian.AppendUint64(out, t.Nonce)
	return out
}

func main() {
	// A full node hosts the ledger on an untrusted cloud box; the enclave
	// guarantees what SPV clients read.
	store, err := elsm.Open(elsm.Options{})
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	defer store.Close()

	// --- Block ingestion: an intensive stream of small writes.
	fmt.Println("## full node: ingesting blocks")
	rnd := rand.New(rand.NewSource(7))
	parties := []string{"alice", "bob", "carol", "dave", "erin", "frank"}
	var txIDs []string
	for block := 0; block < 20; block++ {
		for i := 0; i < 100; i++ {
			t := tx{
				From:   parties[rnd.Intn(len(parties))],
				To:     parties[rnd.Intn(len(parties))],
				Amount: uint64(rnd.Intn(1000)),
				Nonce:  uint64(block*100 + i),
			}
			id := t.id()
			if _, err := store.Put([]byte("tx/"+id), t.encode()); err != nil {
				log.Fatalf("put tx: %v", err)
			}
			txIDs = append(txIDs, id)
		}
		// Each block also updates the chain tip.
		tip := fmt.Sprintf("height=%d", block)
		if _, err := store.Put([]byte("chain/tip"), []byte(tip)); err != nil {
			log.Fatalf("put tip: %v", err)
		}
	}
	fmt.Printf("   %d transactions across 20 blocks ingested\n", len(txIDs))

	// --- SPV client: random-access reads of selected transactions. Each
	// read is verified — a compromised node cannot serve a forged or
	// stale transaction.
	fmt.Println("## SPV client: verifying random transactions")
	for i := 0; i < 5; i++ {
		id := txIDs[rnd.Intn(len(txIDs))]
		res, err := store.Get([]byte("tx/" + id))
		if err != nil {
			log.Fatalf("verified read failed: %v", err)
		}
		if !res.Found {
			log.Fatalf("transaction %s missing", id)
		}
		fmt.Printf("   tx %s... verified (%d bytes, ts=%d)\n", id[:12], len(res.Value), res.Ts)
	}

	// --- Freshness on the chain tip: the client always sees the newest
	// tip, never a replayed old one.
	tip, err := store.Get([]byte("chain/tip"))
	if err != nil {
		log.Fatalf("tip read: %v", err)
	}
	fmt.Printf("## chain tip: %s (freshness-verified)\n", tip.Value)

	// --- Completeness: scanning a transaction-ID prefix range proves no
	// matching transaction was withheld from the client.
	results, err := store.Scan([]byte("tx/0"), []byte("tx/1"))
	if err != nil {
		log.Fatalf("range scan: %v", err)
	}
	fmt.Printf("## prefix audit: %d transactions with id in [0,1) — completeness-verified\n", len(results))
}
