// User-generated-content scenario (paper Appendix B): a Twitter-like
// service outsources post storage to an untrusted cloud. The web tier
// writes an intensive stream of small posts and serves per-user timelines;
// eLSM guarantees users "will neither be fooled by a fake post nor miss
// their friends' newest update" — integrity, freshness and completeness.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"elsm"
)

func postKey(user string, seq int) []byte {
	// Keys sort by user then sequence, so a timeline is one range scan.
	return []byte(fmt.Sprintf("post/%s/%06d", user, seq))
}

func main() {
	store, err := elsm.Open(elsm.Options{})
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	defer store.Close()

	users := []string{"ada", "bert", "cleo", "dmitri", "eve"}
	rnd := rand.New(rand.NewSource(11))
	seqs := map[string]int{}

	// --- Write path: a stream of small posts from many users.
	fmt.Println("## ingesting 2000 posts")
	for i := 0; i < 2000; i++ {
		user := users[rnd.Intn(len(users))]
		seq := seqs[user]
		seqs[user]++
		body := fmt.Sprintf("%s's thought #%d: lorem ipsum %d", user, seq, rnd.Int())
		if _, err := store.Put(postKey(user, seq), []byte(body)); err != nil {
			log.Fatalf("post: %v", err)
		}
	}
	for _, u := range users {
		fmt.Printf("   %-7s %4d posts\n", u, seqs[u])
	}

	// --- Timeline read: one completeness-verified range scan per user.
	// The cloud cannot hide a post ("miss their friends' newest update").
	fmt.Println("## reading cleo's timeline (verified completeness)")
	timeline, err := store.Scan([]byte("post/cleo/"), []byte("post/cleo/z"))
	if err != nil {
		log.Fatalf("timeline: %v", err)
	}
	if len(timeline) != seqs["cleo"] {
		log.Fatalf("timeline has %d posts, expected %d", len(timeline), seqs["cleo"])
	}
	fmt.Printf("   %d posts, all verified; newest: %q\n",
		len(timeline), timeline[len(timeline)-1].Value)

	// --- Edit freshness: an edited post must be served in its newest
	// form ("nor be fooled by a fake post").
	fmt.Println("## editing a post and re-reading")
	key := postKey("cleo", 0)
	if _, err := store.Put(key, []byte("cleo's thought #0 (edited)")); err != nil {
		log.Fatalf("edit: %v", err)
	}
	res, err := store.Get(key)
	if err != nil {
		log.Fatalf("read-back: %v", err)
	}
	fmt.Printf("   verified newest version: %q\n", res.Value)

	// --- Moderation: deletion is a verified tombstone; the post stops
	// appearing in timelines and the absence itself is proven.
	fmt.Println("## deleting a post")
	if _, err := store.Delete(postKey("cleo", 1)); err != nil {
		log.Fatalf("delete: %v", err)
	}
	after, err := store.Scan([]byte("post/cleo/"), []byte("post/cleo/z"))
	if err != nil {
		log.Fatalf("re-scan: %v", err)
	}
	fmt.Printf("   timeline now %d posts (deletion verified)\n", len(after))
}
