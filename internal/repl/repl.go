// Package repl is the replication transport of the store: leader-side hubs
// that publish checkpoints and authenticated tail streams, and
// follower-side tailers that verify and apply them.
//
// The trust model adds nothing to §5.6: every message a follower acts on —
// the checkpoint header and every shipped commit group — carries an
// enclave attestation report (the simulator's stand-in for SGX local
// attestation over a channel established by remote attestation), plus the
// WAL hash chain the records must reproduce. The untrusted pieces (the
// transport, both hosts' file systems, this package's own buffering) can
// drop, reorder, replay or rewrite bytes, and the follower detects it:
// reports bind content, the chain binds order, timestamp contiguity with
// the follower's own applied frontier binds position, and the attested
// (shard, shards) pair in every header and frame binds the stream to one
// partition of one topology (a transport cannot swap whole shard streams).
// On any verification failure the follower fails stop — it never serves a
// read past unverified state.
package repl

import (
	"errors"
	"io"
)

// Replication errors.
var (
	// ErrBehind reports a tail request for a frontier the leader's ring
	// buffer no longer retains; the follower must re-bootstrap from a
	// fresh checkpoint.
	ErrBehind = errors.New("repl: follower frontier behind retained log, re-bootstrap required")
	// ErrLeaderClosed reports a tail stream ended because the leader hub
	// shut down.
	ErrLeaderClosed = errors.New("repl: leader closed")
	// ErrShipGap reports a shipped frame that does not extend the
	// follower's applied frontier (dropped, replayed or reordered group).
	ErrShipGap = errors.New("repl: shipped group does not extend applied frontier")
	// ErrShardMismatch reports a shipped frame whose attested shard
	// identity is not the one the follower is tailing — a transport
	// splicing shard streams, or mismatched partition counts.
	ErrShardMismatch = errors.New("repl: shipped group bound to a different shard")
	// ErrFenced reports a shipped frame attested under an OLDER replication
	// epoch than the follower's sealed one: the sender is a zombie leader
	// demoted by a promotion this follower already adopted. The tailer
	// fails stop — applying the frame would split the verified history.
	ErrFenced = errors.New("repl: frame from a fenced (stale) replication epoch")
)

// Source is where a follower gets its data: a checkpoint stream to
// bootstrap a shard and a tail stream of committed groups from a given
// applied frontier. Implementations: LocalSource (in-process leader) and
// NetSource (an elsm-server REPL endpoint).
type Source interface {
	// Checkpoint streams shard's current checkpoint; the reader sees the
	// whole stream followed by EOF.
	Checkpoint(shard int) (io.ReadCloser, error)
	// Tail streams committed group frames for shard starting just past
	// applied frontier fromTs. The stream blocks at the frontier and
	// delivers new groups as they commit.
	Tail(shard int, fromTs uint64) (io.ReadCloser, error)
}
