package repl

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"elsm/internal/core"
	"elsm/internal/sgx"
	"elsm/internal/vfs"
)

// testCfg is a small-scale P2 config over fs.
func testCfg(fs vfs.FS, platform *sgx.Platform, ctr *sgx.MonotonicCounter) core.Config {
	return core.Config{
		FS:              fs,
		Platform:        platform,
		Counter:         ctr,
		MemtableSize:    4 << 10,
		BlockSize:       512,
		TableFileSize:   4 << 10,
		LevelBase:       16 << 10,
		MaxLevels:       5,
		CounterInterval: 16,
	}
}

// leaderHarness is an open leader store with its hub and source.
type leaderHarness struct {
	st       *core.Store
	hub      *Leader
	src      Source
	platform *sgx.Platform
}

func newLeaderHarness(t *testing.T) *leaderHarness {
	t.Helper()
	platform, err := sgx.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.Open(testCfg(vfs.NewMem(), platform, sgx.NewMonotonicCounter()))
	if err != nil {
		t.Fatal(err)
	}
	hub := NewLeader(st, 0, 0, 1)
	return &leaderHarness{st: st, hub: hub, src: NewLocalSource([]*Leader{hub}), platform: platform}
}

func (h *leaderHarness) close() {
	h.hub.Close()
	h.st.Close()
}

func (h *leaderHarness) put(t *testing.T, k, v string) {
	t.Helper()
	if _, err := h.st.Put([]byte(k), []byte(v)); err != nil {
		t.Fatal(err)
	}
}

// bootstrap restores a follower from the source into fs and opens it.
func bootstrap(t *testing.T, src Source, fs vfs.FS, platform *sgx.Platform, ctr *sgx.MonotonicCounter) *core.Store {
	t.Helper()
	rc, err := src.Checkpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if err := core.RestoreCheckpoint(rc, core.RestoreConfig{FS: fs, Platform: platform, Counter: ctr, Shard: 0, Shards: 1}); err != nil {
		t.Fatalf("restore: %v", err)
	}
	st, err := core.Open(testCfg(fs, platform, ctr))
	if err != nil {
		t.Fatalf("open follower: %v", err)
	}
	return st
}

// waitCaughtUp polls until the follower's applied frontier reaches ts.
func waitCaughtUp(t *testing.T, st *core.Store, ts uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for st.Engine().AppliedTs() < ts {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at %d, want %d", st.Engine().AppliedTs(), ts)
		}
		time.Sleep(time.Millisecond)
	}
}

// expectGet verifies one key reads identically on both stores.
func expectSame(t *testing.T, leader, follower *core.Store, key string) {
	t.Helper()
	lr, err := leader.Get([]byte(key))
	if err != nil {
		t.Fatalf("leader get %s: %v", key, err)
	}
	fr, err := follower.Get([]byte(key))
	if err != nil {
		t.Fatalf("follower get %s: %v", key, err)
	}
	if lr.Found != fr.Found || !bytes.Equal(lr.Value, fr.Value) || lr.Ts != fr.Ts {
		t.Fatalf("divergence at %s: leader %+v follower %+v", key, lr, fr)
	}
}

// TestTailCatchUp bootstraps a follower from a checkpoint, then streams
// live writes through the tailer and verifies convergence.
func TestTailCatchUp(t *testing.T) {
	h := newLeaderHarness(t)
	defer h.close()
	for i := 0; i < 200; i++ {
		h.put(t, fmt.Sprintf("key-%04d", i), fmt.Sprintf("v1-%d", i))
	}

	fs := vfs.NewMem()
	f := bootstrap(t, h.src, fs, h.platform, sgx.NewMonotonicCounter())
	defer f.Close()
	tailer := StartTailer(f, h.src, 0, 1)
	defer tailer.Close()

	// Live writes after the checkpoint, including overwrites and deletes.
	for i := 0; i < 200; i++ {
		h.put(t, fmt.Sprintf("key-%04d", i), fmt.Sprintf("v2-%d", i))
	}
	for i := 0; i < 200; i += 5 {
		if _, err := h.st.Delete([]byte(fmt.Sprintf("key-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, f, h.st.Engine().AppliedTs())
	if err := tailer.Err(); err != nil {
		t.Fatalf("tailer failed: %v", err)
	}
	for i := 0; i < 200; i++ {
		expectSame(t, h.st, f, fmt.Sprintf("key-%04d", i))
	}
	if g, _ := tailer.Lag(); g != 0 {
		t.Fatalf("lag groups at head: %d", g)
	}
}

// tamperSource corrupts one byte of every tail frame body after the first
// `skip` clean frames.
type tamperSource struct {
	Source
	skip int
}

func (ts *tamperSource) Tail(shard int, fromTs uint64) (io.ReadCloser, error) {
	rc, err := ts.Source.Tail(shard, fromTs)
	if err != nil {
		return nil, err
	}
	pr, pw := io.Pipe()
	go func() {
		defer rc.Close()
		n := 0
		for {
			body, rep, err := readFrame(rc)
			if err != nil {
				pw.CloseWithError(err)
				return
			}
			if n >= ts.skip && len(body) > 40 {
				body[40] ^= 0x01 // flip a record byte
			}
			n++
			if err := writeFrame(pw, body, rep); err != nil {
				return
			}
		}
	}()
	return pr, nil
}

// TestTamperedShipRejectedFailStop: a flipped byte in a shipped group must
// stop the tailer before anything of the frame is applied — no torn
// prefix, no later frames.
func TestTamperedShipRejectedFailStop(t *testing.T) {
	h := newLeaderHarness(t)
	defer h.close()
	h.put(t, "seed", "v")

	fs := vfs.NewMem()
	f := bootstrap(t, h.src, fs, h.platform, sgx.NewMonotonicCounter())
	defer f.Close()
	frontier := f.Engine().AppliedTs()

	tailer := StartTailer(f, &tamperSource{Source: h.src}, 0, 1)
	defer tailer.Close()

	h.put(t, "poisoned", "value")
	deadline := time.Now().Add(5 * time.Second)
	for tailer.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("tailer did not fail stop on tampered frame")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(tailer.Err(), core.ErrAuthFailed) {
		t.Fatalf("tamper error %v does not wrap ErrAuthFailed", tailer.Err())
	}
	// Nothing of the tampered frame may have applied.
	if got := f.Engine().AppliedTs(); got != frontier {
		t.Fatalf("follower advanced to %d past tampered frame (frontier %d)", got, frontier)
	}
	r, err := f.Get([]byte("poisoned"))
	if err != nil || r.Found {
		t.Fatalf("tampered record visible: %+v err %v", r, err)
	}
}

// TestTailTooFarBehind: a cursor older than the ring fails with ErrBehind
// (re-bootstrap signal), not silent gaps.
func TestTailTooFarBehind(t *testing.T) {
	platform, err := sgx.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.Open(testCfg(vfs.NewMem(), platform, sgx.NewMonotonicCounter()))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	hub := NewLeader(st, 1, 0, 1) // 1-byte ring: retains only the newest group
	defer hub.Close()
	for i := 0; i < 50; i++ {
		if _, err := st.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	err = hub.ServeTail(0, io.Discard, nil)
	if !errors.Is(err, ErrBehind) {
		t.Fatalf("want ErrBehind, got %v", err)
	}
}

// TestLocalTailerBehindFailStop drives the ErrBehind path through the full
// LocalSource + Tailer stack (not just ServeTail): the pipe delivers the
// serve side's typed error, and the tailer must fail stop with it instead
// of reconnecting forever with a nil Err.
func TestLocalTailerBehindFailStop(t *testing.T) {
	platform, err := sgx.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.Open(testCfg(vfs.NewMem(), platform, sgx.NewMonotonicCounter()))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	hub := NewLeader(st, 1, 0, 1) // 1-byte ring: retains only the newest group
	defer hub.Close()
	src := NewLocalSource([]*Leader{hub})

	// Checkpoint a follower, then push the ring past its frontier.
	fs := vfs.NewMem()
	f := bootstrap(t, src, fs, platform, sgx.NewMonotonicCounter())
	defer f.Close()
	for i := 0; i < 50; i++ {
		if _, err := st.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	tailer := StartTailer(f, src, 0, 1)
	defer tailer.Close()
	deadline := time.Now().Add(5 * time.Second)
	for tailer.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("tailer never surfaced ErrBehind through the local pipe")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(tailer.Err(), ErrBehind) {
		t.Fatalf("tailer error %v, want ErrBehind", tailer.Err())
	}
}

// TestTailerLeaderClosedExitsClean: when the in-process leader hub shuts
// down, the tailer must exit its run loop cleanly (no reconnect spin, no
// spurious fail-stop) — the follower keeps serving its last verified state.
func TestTailerLeaderClosedExitsClean(t *testing.T) {
	h := newLeaderHarness(t)
	defer h.close()
	h.put(t, "k", "v")

	fs := vfs.NewMem()
	f := bootstrap(t, h.src, fs, h.platform, sgx.NewMonotonicCounter())
	defer f.Close()
	tailer := StartTailer(f, h.src, 0, 1)
	defer tailer.Close()
	waitCaughtUp(t, f, h.st.Engine().AppliedTs())

	h.hub.Close()
	select {
	case <-tailer.done:
	case <-time.After(5 * time.Second):
		t.Fatal("tailer still running after leader close")
	}
	if err := tailer.Err(); err != nil {
		t.Fatalf("leader close marked the tailer failed: %v", err)
	}
}

// TestShardMismatchRejected: a stream whose attested shard identity does
// not match the tailer's (here: a leader declaring a different topology)
// must be rejected fail-stop — the wire-level defense against a transport
// swapping whole shard streams.
func TestShardMismatchRejected(t *testing.T) {
	h := newLeaderHarness(t) // hub attests (shard 0 of 1)
	defer h.close()
	h.put(t, "seed", "v")

	fs := vfs.NewMem()
	f := bootstrap(t, h.src, fs, h.platform, sgx.NewMonotonicCounter())
	defer f.Close()

	// The follower believes it is shard 0 of 2: every (0 of 1) frame is a
	// swap/topology-mismatch and must fail stop before applying.
	frontier := f.Engine().AppliedTs()
	tailer := StartTailer(f, h.src, 0, 2)
	defer tailer.Close()
	h.put(t, "swapped", "value")

	deadline := time.Now().Add(5 * time.Second)
	for tailer.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("tailer did not fail stop on shard mismatch")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(tailer.Err(), ErrShardMismatch) {
		t.Fatalf("error %v, want ErrShardMismatch", tailer.Err())
	}
	if got := f.Engine().AppliedTs(); got != frontier {
		t.Fatalf("follower applied a mismatched-shard frame (frontier %d -> %d)", frontier, got)
	}
}

// TestCrashMidRestore simulates a follower killed mid-checkpoint-restore:
// the truncated import must fail, leave the directory bootstrappable, and
// a clean retry must succeed.
func TestCrashMidRestore(t *testing.T) {
	h := newLeaderHarness(t)
	defer h.close()
	for i := 0; i < 300; i++ {
		h.put(t, fmt.Sprintf("key-%04d", i), fmt.Sprintf("v-%d", i))
	}
	var full bytes.Buffer
	rc, err := h.src.Checkpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(&full, rc); err != nil {
		t.Fatal(err)
	}
	rc.Close()

	fs := vfs.NewMem()
	ctr := sgx.NewMonotonicCounter()
	// Crash points: mid-header, mid-tables, mid-WAL-tail.
	for _, frac := range []int{10, 2, 1} {
		cut := full.Len() - full.Len()/frac
		err := core.RestoreCheckpoint(bytes.NewReader(full.Bytes()[:cut]), core.RestoreConfig{
			FS: fs, Platform: h.platform, Counter: ctr, Shard: 0, Shards: 1,
		})
		if err == nil {
			t.Fatalf("truncated restore (cut %d/%d) succeeded", cut, full.Len())
		}
		if !core.NeedsBootstrap(fs) {
			t.Fatalf("truncated restore left sealed state (cut %d)", cut)
		}
		// Restart path: wipe and retry is always legal on an unseeded dir.
		if err := core.WipeFS(fs); err != nil {
			t.Fatal(err)
		}
	}
	// The retry after the "crash" completes and converges.
	f := bootstrap(t, h.src, fs, h.platform, ctr)
	defer f.Close()
	for i := 0; i < 300; i += 37 {
		expectSame(t, h.st, f, fmt.Sprintf("key-%04d", i))
	}
}

// TestCrashMidTail kills the follower process (abandons the store without
// Close) between applied groups, restarts it from the same directory, and
// verifies the resumed tail re-applies nothing, skips nothing, and
// converges with the leader.
func TestCrashMidTail(t *testing.T) {
	h := newLeaderHarness(t)
	defer h.close()
	for i := 0; i < 100; i++ {
		h.put(t, fmt.Sprintf("key-%04d", i), "v1")
	}

	fs := vfs.NewMem()
	ctr := sgx.NewMonotonicCounter()
	f := bootstrap(t, h.src, fs, h.platform, ctr)
	tailer := StartTailer(f, h.src, 0, 1)

	for i := 0; i < 100; i++ {
		h.put(t, fmt.Sprintf("key-%04d", i), "v2")
	}
	waitCaughtUp(t, f, h.st.Engine().AppliedTs())
	if err := tailer.Err(); err != nil {
		t.Fatal(err)
	}
	crashTs := f.Engine().AppliedTs()

	// Crash: stop shipping, abandon the store without Close (the WAL and
	// the last periodic seal survive; the final in-memory state does not).
	tailer.Close()
	// The store object is dropped un-Closed — a process kill. MemFS state
	// is all that survives.
	_ = f

	// Restart from the same directory with the same roots of trust.
	f2, err := core.Open(testCfg(fs, h.platform, ctr))
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer f2.Close()
	// Recovery must land exactly on the durable frontier: nothing lost
	// (every applied group was fsynced), nothing invented.
	if got := f2.Engine().AppliedTs(); got != crashTs {
		t.Fatalf("recovered frontier %d, want %d", got, crashTs)
	}

	// Resume tailing; new leader writes must flow, old ones must not
	// re-apply (contiguity would reject them).
	tailer2 := StartTailer(f2, h.src, 0, 1)
	defer tailer2.Close()
	for i := 0; i < 50; i++ {
		h.put(t, fmt.Sprintf("key-%04d", i), "v3")
	}
	waitCaughtUp(t, f2, h.st.Engine().AppliedTs())
	if err := tailer2.Err(); err != nil {
		t.Fatalf("resumed tailer failed: %v", err)
	}
	for i := 0; i < 100; i++ {
		expectSame(t, h.st, f2, fmt.Sprintf("key-%04d", i))
	}
}
