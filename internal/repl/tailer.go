package repl

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"elsm/internal/core"
)

// reconnectDelay paces reconnect attempts after a transport failure.
const reconnectDelay = 50 * time.Millisecond

// Tailer drives one shard's follower side: it tails the source from the
// store's applied frontier, verifies every frame (attestation report,
// shard identity, WAL hash chain, timestamp contiguity) and applies it
// through the store's replication pipeline. Transport failures reconnect
// and resume from the durable frontier; the leader hub closing ends the
// tail cleanly; verification failures and ErrBehind fail stop — Err()
// reports the reason and the tailer stays down until the operator
// re-bootstraps.
type Tailer struct {
	st     *core.Store
	src    Source
	shard  int
	shards int // follower topology: frames from another are rejected

	lagGroups atomic.Uint64
	lagBytes  atomic.Uint64
	applied   atomic.Uint64 // frames applied (tests, gauges)

	mu     sync.Mutex
	rc     io.ReadCloser
	failed error

	stop chan struct{}
	done chan struct{}
}

// StartTailer begins tailing src for shard into st. shards is the
// follower's total partition count; every shipped frame must attest the
// same (shard, shards) pair or the tailer fails stop (a transport serving
// the wrong shard's stream, or a leader with a different partition count).
func StartTailer(st *core.Store, src Source, shard, shards int) *Tailer {
	if shards <= 0 {
		shards = 1
	}
	t := &Tailer{
		st:     st,
		src:    src,
		shard:  shard,
		shards: shards,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go t.run()
	return t
}

// Close stops the tailer and waits for it to exit.
func (t *Tailer) Close() {
	t.mu.Lock()
	select {
	case <-t.stop:
	default:
		close(t.stop)
	}
	if t.rc != nil {
		t.rc.Close()
	}
	t.mu.Unlock()
	<-t.done
}

// Err reports the fail-stop reason, nil while healthy (transport blips
// that reconnect do not count).
func (t *Tailer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.failed
}

// Lag reports the replication lag observed at the last applied frame:
// groups behind the leader's head, payload bytes behind, and the leader's
// frontier timestamp delta.
func (t *Tailer) Lag() (groups, bytes uint64) {
	return t.lagGroups.Load(), t.lagBytes.Load()
}

// AppliedFrames reports how many frames the tailer has applied.
func (t *Tailer) AppliedFrames() uint64 { return t.applied.Load() }

// stopping reports whether Close was requested.
func (t *Tailer) stopping() bool {
	select {
	case <-t.stop:
		return true
	default:
		return false
	}
}

// fail records the fail-stop reason.
func (t *Tailer) fail(err error) {
	t.mu.Lock()
	if t.failed == nil {
		t.failed = err
	}
	t.mu.Unlock()
}

func (t *Tailer) run() {
	defer close(t.done)
	for !t.stopping() {
		rc, err := t.src.Tail(t.shard, t.st.Engine().AppliedTs())
		if err != nil {
			if errors.Is(err, ErrBehind) {
				t.fail(err)
				return
			}
			if t.stopping() {
				return
			}
			time.Sleep(reconnectDelay)
			continue
		}
		t.mu.Lock()
		if t.stoppedLocked() {
			t.mu.Unlock()
			rc.Close()
			return
		}
		t.rc = rc
		t.mu.Unlock()

		err = t.consume(rc)
		t.mu.Lock()
		t.rc = nil
		t.mu.Unlock()
		rc.Close()
		if errors.Is(err, ErrLeaderClosed) {
			// The hub shut down for good (in-process leader Close): exit
			// cleanly instead of reconnecting forever. Err() stays nil —
			// the follower keeps serving its last verified state.
			return
		}
		if err != nil {
			// Verification or apply failure: fail stop.
			t.fail(err)
			return
		}
		// Clean transport end (leader restart, connection drop):
		// reconnect from the new applied frontier.
		if !t.stopping() {
			time.Sleep(reconnectDelay)
		}
	}
}

func (t *Tailer) stoppedLocked() bool {
	select {
	case <-t.stop:
		return true
	default:
		return false
	}
}

// consume verifies and applies frames until the stream ends. A non-nil
// return is a FAIL-STOP condition (run treats ErrLeaderClosed as a clean
// exit instead); transport ends return nil.
func (t *Tailer) consume(r io.Reader) error {
	for {
		body, rep, err := readFrame(r)
		if err != nil {
			// Typed stream terminations (LocalSource delivers the serve
			// side's error through the pipe) must surface, not reconnect:
			// ErrBehind is the re-bootstrap signal, ErrLeaderClosed ends
			// the tail for good.
			if errors.Is(err, ErrBehind) || errors.Is(err, ErrLeaderClosed) {
				return err
			}
			if t.stopping() || err == io.EOF {
				return nil
			}
			// A malformed length is indistinguishable from a cut stream
			// mid-frame; both reconnect (the next frames re-ship from the
			// durable frontier and re-verify).
			return nil
		}
		// 1. The frame must be attested by the shared enclave identity.
		if err := t.st.VerifyPeerPayload(rep, body); err != nil {
			return fmt.Errorf("repl: shipped group rejected: %w", err)
		}
		frame, err := decodeFrame(body)
		if err != nil {
			return fmt.Errorf("repl: shipped group rejected: %w", err)
		}
		// 2. The attested shard identity must match this tailer's: a
		// transport splicing another shard's (individually valid) stream
		// in, or a leader partitioned differently, is a swap attack.
		if int(frame.Shard) != t.shard || int(frame.Shards) != t.shards {
			return fmt.Errorf("%w: frame is for shard %d of %d, tailing shard %d of %d",
				ErrShardMismatch, frame.Shard, frame.Shards, t.shard, t.shards)
		}
		// 3. The records must reproduce the declared hash chain.
		if chainOver(frame.Recs) != frame.Chain {
			return fmt.Errorf("repl: shipped group rejected: %w", core.ErrForged)
		}
		// 4. The group must extend the applied frontier exactly.
		applied := t.st.Engine().AppliedTs()
		if frame.PrevTs != applied || frame.LastTs != applied+uint64(len(frame.Recs)) {
			return fmt.Errorf("%w: frame covers (%d,%d], frontier %d",
				ErrShipGap, frame.PrevTs, frame.LastTs, applied)
		}
		if err := t.st.ApplyReplicated(frame.Recs); err != nil {
			return fmt.Errorf("repl: apply shipped group: %w", err)
		}
		t.applied.Add(1)
		t.lagGroups.Store(frame.FrontierSeq - frame.Seq)
		t.lagBytes.Store(uint64(frame.FrontierBytes - frame.CumBytes))
	}
}
