package repl

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"elsm/internal/core"
	"elsm/internal/obs"
)

// Reconnect pacing: jittered exponential backoff between transport
// attempts. Package-level so tests can tighten them; the jitter (±50%)
// keeps a fleet of followers from thundering back onto a restarted leader
// in lockstep.
var (
	backoffMin = 50 * time.Millisecond
	backoffMax = 2 * time.Second
)

// Tailer drives one shard's follower side: it tails the source from the
// store's applied frontier, verifies every frame (attestation report,
// shard identity, replication epoch, WAL hash chain, timestamp contiguity)
// and applies it through the store's replication pipeline. Transport
// failures reconnect with jittered exponential backoff and resume from the
// durable frontier; the leader hub closing ends the tail cleanly;
// verification failures, ErrFenced and ErrBehind fail stop — Err() reports
// the reason, Done() closes, and the tailer stays down until its owner
// reacts (elsm re-bootstraps ErrBehind followers automatically).
type Tailer struct {
	st     *core.Store
	src    Source
	shard  int
	shards int // follower topology: frames from another are rejected

	lagGroups  atomic.Uint64
	lagBytes   atomic.Uint64
	applied    atomic.Uint64 // group frames applied (tests, gauges)
	reconnects atomic.Uint64 // transport re-dials after the first attempt

	mu     sync.Mutex
	rc     io.ReadCloser
	failed error

	stop chan struct{}
	done chan struct{}
}

// StartTailer begins tailing src for shard into st. shards is the
// follower's total partition count; every shipped frame must attest the
// same (shard, shards) pair or the tailer fails stop (a transport serving
// the wrong shard's stream, or a leader with a different partition count).
func StartTailer(st *core.Store, src Source, shard, shards int) *Tailer {
	if shards <= 0 {
		shards = 1
	}
	t := &Tailer{
		st:     st,
		src:    src,
		shard:  shard,
		shards: shards,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go t.run()
	return t
}

// Close stops the tailer and waits for it to exit.
func (t *Tailer) Close() {
	t.mu.Lock()
	select {
	case <-t.stop:
	default:
		close(t.stop)
	}
	if t.rc != nil {
		t.rc.Close()
	}
	t.mu.Unlock()
	<-t.done
}

// Done closes when the tailer has exited — cleanly (Close, leader
// shutdown) or failed-stop (Err non-nil). Owners watch it to react to
// ErrBehind with a re-bootstrap.
func (t *Tailer) Done() <-chan struct{} { return t.done }

// Err reports the fail-stop reason, nil while healthy (transport blips
// that reconnect do not count).
func (t *Tailer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.failed
}

// Lag reports the replication lag observed at the last applied frame:
// groups behind the leader's head and payload bytes behind. Heartbeats
// from a leader idling at the head reset both to zero.
func (t *Tailer) Lag() (groups, bytes uint64) {
	return t.lagGroups.Load(), t.lagBytes.Load()
}

// AppliedFrames reports how many group frames the tailer has applied.
func (t *Tailer) AppliedFrames() uint64 { return t.applied.Load() }

// Reconnects reports how many times the tailer re-dialed its source after
// a transport failure or clean stream end.
func (t *Tailer) Reconnects() uint64 { return t.reconnects.Load() }

// stopping reports whether Close was requested.
func (t *Tailer) stopping() bool {
	select {
	case <-t.stop:
		return true
	default:
		return false
	}
}

// fail records the fail-stop reason and files it in the event log,
// classified so /events consumers can tell a fenced zombie stream from a
// fell-behind follower without parsing messages.
func (t *Tailer) fail(err error) {
	t.mu.Lock()
	fresh := t.failed == nil
	if fresh {
		t.failed = err
	}
	t.mu.Unlock()
	if !fresh {
		return
	}
	kind := obs.EventFailStop
	switch {
	case errors.Is(err, ErrFenced):
		kind = obs.EventFenced
	case errors.Is(err, ErrBehind):
		kind = obs.EventBehind
	}
	t.st.Recorder().Event(kind, "tailer shard %d failed stop: %v", t.shard, err)
}

// sleepBackoff waits the attempt-th backoff delay (exponential from
// backoffMin, capped at backoffMax, ±50% jitter). False when Close
// interrupted the wait.
func (t *Tailer) sleepBackoff(attempt int) bool {
	d := backoffMax
	if attempt < 16 {
		if b := backoffMin << uint(attempt); b < backoffMax {
			d = b
		}
	}
	d = time.Duration(float64(d) * (0.5 + rand.Float64()))
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-t.stop:
		return false
	case <-timer.C:
		return true
	}
}

func (t *Tailer) run() {
	defer close(t.done)
	attempt := 0
	first := true
	for !t.stopping() {
		if !first {
			t.reconnects.Add(1)
			t.st.Recorder().Event(obs.EventReconnect,
				"tailer shard %d re-dialing source (attempt %d)", t.shard, attempt)
			if !t.sleepBackoff(attempt) {
				return
			}
		}
		first = false
		rc, err := t.src.Tail(t.shard, t.st.Engine().AppliedTs())
		if err != nil {
			if errors.Is(err, ErrBehind) {
				t.fail(err)
				return
			}
			if t.stopping() {
				return
			}
			attempt++
			continue
		}
		t.mu.Lock()
		if t.stoppedLocked() {
			t.mu.Unlock()
			rc.Close()
			return
		}
		t.rc = rc
		t.mu.Unlock()

		frames, err := t.consume(rc)
		t.mu.Lock()
		t.rc = nil
		t.mu.Unlock()
		rc.Close()
		if errors.Is(err, ErrLeaderClosed) {
			// The hub shut down for good (in-process leader Close): exit
			// cleanly instead of reconnecting forever. Err() stays nil —
			// the follower keeps serving its last verified state.
			return
		}
		if err != nil {
			// Verification or apply failure (ErrFenced, ErrForged, ...),
			// or ErrBehind / an epoch ahead of ours: fail stop. The owner
			// decides whether a re-bootstrap can recover it.
			t.fail(err)
			return
		}
		// Clean transport end (leader restart, connection drop):
		// reconnect from the new applied frontier. Any verified frame —
		// heartbeats included — proves the link was healthy and resets
		// the backoff.
		if frames > 0 {
			attempt = 0
		} else {
			attempt++
		}
	}
}

func (t *Tailer) stoppedLocked() bool {
	select {
	case <-t.stop:
		return true
	default:
		return false
	}
}

// consume verifies and applies frames until the stream ends, returning how
// many frames (groups and heartbeats) it verified. A non-nil error is a
// FAIL-STOP condition (run treats ErrLeaderClosed as a clean exit
// instead); transport ends return nil.
func (t *Tailer) consume(r io.Reader) (int, error) {
	frames := 0
	for {
		body, rep, err := readFrame(r)
		if err != nil {
			// Typed stream terminations (LocalSource delivers the serve
			// side's error through the pipe) must surface, not reconnect:
			// ErrBehind is the re-bootstrap signal, ErrLeaderClosed ends
			// the tail for good.
			if errors.Is(err, ErrBehind) || errors.Is(err, ErrLeaderClosed) {
				return frames, err
			}
			if t.stopping() || err == io.EOF {
				return frames, nil
			}
			// A malformed length is indistinguishable from a cut stream
			// mid-frame; both reconnect (the next frames re-ship from the
			// durable frontier and re-verify). A timed-out read lands here
			// too: the leader missed enough heartbeats to presume it hung.
			return frames, nil
		}
		// 1. The frame must be attested by the shared enclave identity.
		if err := t.st.VerifyPeerPayload(rep, body); err != nil {
			return frames, fmt.Errorf("repl: shipped group rejected: %w", err)
		}
		frame, err := decodeFrame(body)
		if err != nil {
			return frames, fmt.Errorf("repl: shipped group rejected: %w", err)
		}
		// 2. The attested shard identity must match this tailer's: a
		// transport splicing another shard's (individually valid) stream
		// in, or a leader partitioned differently, is a swap attack.
		if int(frame.Shard) != t.shard || int(frame.Shards) != t.shards {
			return frames, fmt.Errorf("%w: frame is for shard %d of %d, tailing shard %d of %d",
				ErrShardMismatch, frame.Shard, frame.Shards, t.shard, t.shards)
		}
		// 3. The attested epoch must match the follower's sealed one. An
		// OLDER epoch is a zombie leader fenced out by a promotion this
		// follower already adopted — fail stop, never apply. A NEWER
		// epoch means a promotion happened that this follower missed; its
		// history may have forked at the old head, so only a fresh
		// checkpoint re-bootstrap can re-join it.
		epoch := t.st.ReplEpoch()
		if frame.Epoch < epoch {
			return frames, fmt.Errorf("%w: frame epoch %d, follower sealed epoch %d",
				ErrFenced, frame.Epoch, epoch)
		}
		if frame.Epoch > epoch {
			return frames, fmt.Errorf("%w: leader moved to epoch %d, follower sealed epoch %d",
				ErrBehind, frame.Epoch, epoch)
		}
		if frame.Heartbeat {
			// The leader only heartbeats a stream idling AT its head: we
			// are caught up. Liveness proven, lag zero.
			frames++
			t.lagGroups.Store(0)
			t.lagBytes.Store(0)
			continue
		}
		// 4. The records must reproduce the declared hash chain.
		if chainOver(frame.Recs) != frame.Chain {
			return frames, fmt.Errorf("repl: shipped group rejected: %w", core.ErrForged)
		}
		// 5. The group must extend the applied frontier exactly.
		applied := t.st.Engine().AppliedTs()
		if frame.PrevTs != applied || frame.LastTs != applied+uint64(len(frame.Recs)) {
			return frames, fmt.Errorf("%w: frame covers (%d,%d], frontier %d",
				ErrShipGap, frame.PrevTs, frame.LastTs, applied)
		}
		if err := t.st.ApplyReplicated(frame.Recs); err != nil {
			return frames, fmt.Errorf("repl: apply shipped group: %w", err)
		}
		frames++
		t.applied.Add(1)
		t.lagGroups.Store(frame.FrontierSeq - frame.Seq)
		t.lagBytes.Store(uint64(frame.FrontierBytes - frame.CumBytes))
	}
}
