package repl

import (
	"encoding/binary"
	"fmt"
	"io"

	"elsm/internal/hashutil"
	"elsm/internal/record"
	"elsm/internal/sgx"
)

// maxFrameBody bounds what a follower will buffer for one frame.
const maxFrameBody = 64 << 20

// Frame types. Group frames carry one committed commit group; heartbeat
// frames carry only the leader's identity and frontier, proving liveness
// (and refreshing lag gauges) while the stream idles at the head.
const (
	frameGroup     = 1
	frameHeartbeat = 2
)

// groupFrame is one committed commit group on the wire, plus the leader's
// head position at send time (the follower's lag gauges are derived from
// the deltas). Shard and Shards bind the frame to one partition of one
// topology: the attestation report covers them, so an untrusted transport
// cannot splice shard streams (serve shard 0's groups to a shard-1
// follower) without the follower detecting it. Epoch binds the frame to
// one replication epoch: a frame from an older epoch is a zombie leader
// (ErrFenced), one from a newer epoch means this follower missed a
// promotion and must re-bootstrap.
type groupFrame struct {
	Heartbeat bool // frameHeartbeat: no records, frontier info only

	Shard  uint32 // partition this group belongs to
	Shards uint32 // leader's total partition count
	Epoch  uint64 // leader's replication epoch at send time

	PrevTs uint64 // applied frontier before the group
	LastTs uint64 // applied frontier after the group
	Seq    uint64 // hub sequence number of this group
	Bytes  int64  // payload bytes of this group

	FrontierSeq   uint64 // newest hub sequence at send time
	FrontierTs    uint64 // leader applied frontier at send time
	FrontierBytes int64  // cumulative hub bytes at send time
	CumBytes      int64  // cumulative hub bytes through this group

	Recs []record.Record
	// Chain is the WAL hash chain from zero over Recs — the same
	// per-record links the records add to both stores' WAL digests.
	Chain hashutil.Hash
}

// chainOver folds recs into a WAL hash chain from zero.
func chainOver(recs []record.Record) hashutil.Hash {
	dig := hashutil.Zero
	for i := range recs {
		dig = hashutil.WALLink(dig, byte(recs[i].Kind), recs[i].Key, recs[i].Ts, recs[i].Value)
	}
	return dig
}

// frameFixedLen is the size of a frame body with zero records: type byte,
// shard pair, epoch, eight u64 position fields, record count, chain.
const frameFixedLen = 1 + 2*4 + 8 + 8*8 + 4 + 32

// encodeFrame serializes the frame body and returns (body, report
// payload): the report over the body is appended separately by the caller.
// Heartbeat and group frames share one layout; heartbeats carry no records
// and a zero chain.
func encodeFrame(f *groupFrame) []byte {
	size := frameFixedLen
	for i := range f.Recs {
		size += 1 + 4 + len(f.Recs[i].Key) + 8 + 4 + len(f.Recs[i].Value)
	}
	body := make([]byte, 0, size)
	if f.Heartbeat {
		body = append(body, frameHeartbeat)
	} else {
		body = append(body, frameGroup)
	}
	body = binary.BigEndian.AppendUint32(body, f.Shard)
	body = binary.BigEndian.AppendUint32(body, f.Shards)
	body = binary.BigEndian.AppendUint64(body, f.Epoch)
	body = binary.BigEndian.AppendUint64(body, f.PrevTs)
	body = binary.BigEndian.AppendUint64(body, f.LastTs)
	body = binary.BigEndian.AppendUint64(body, f.Seq)
	body = binary.BigEndian.AppendUint64(body, uint64(f.Bytes))
	body = binary.BigEndian.AppendUint64(body, f.FrontierSeq)
	body = binary.BigEndian.AppendUint64(body, f.FrontierTs)
	body = binary.BigEndian.AppendUint64(body, uint64(f.FrontierBytes))
	body = binary.BigEndian.AppendUint64(body, uint64(f.CumBytes))
	body = binary.BigEndian.AppendUint32(body, uint32(len(f.Recs)))
	for i := range f.Recs {
		r := &f.Recs[i]
		body = append(body, byte(r.Kind))
		body = binary.BigEndian.AppendUint32(body, uint32(len(r.Key)))
		body = append(body, r.Key...)
		body = binary.BigEndian.AppendUint64(body, r.Ts)
		body = binary.BigEndian.AppendUint32(body, uint32(len(r.Value)))
		body = append(body, r.Value...)
	}
	body = append(body, f.Chain[:]...)
	return body
}

// writeFrame frames body+report onto w: [u32 len(body)][body][128B report].
func writeFrame(w io.Writer, body []byte, rep sgx.Report) error {
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(body)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	var rb [128]byte
	copy(rb[:32], rep.Measurement[:])
	copy(rb[32:96], rep.Data[:])
	copy(rb[96:], rep.MAC[:])
	_, err := w.Write(rb[:])
	return err
}

// readFrame reads one framed body and its report. io.EOF at a frame
// boundary is returned as-is (clean stream end).
func readFrame(r io.Reader) (body []byte, rep sgx.Report, err error) {
	var lenBuf [4]byte
	if _, err = io.ReadFull(r, lenBuf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return nil, rep, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 || n > maxFrameBody {
		return nil, rep, fmt.Errorf("repl: implausible frame length %d", n)
	}
	body = make([]byte, n)
	if _, err = io.ReadFull(r, body); err != nil {
		return nil, rep, err
	}
	var rb [128]byte
	if _, err = io.ReadFull(r, rb[:]); err != nil {
		return nil, rep, err
	}
	copy(rep.Measurement[:], rb[:32])
	copy(rep.Data[:], rb[32:96])
	copy(rep.MAC[:], rb[96:])
	return body, rep, nil
}

// decodeFrame parses a frame body back into a groupFrame.
func decodeFrame(body []byte) (*groupFrame, error) {
	bad := func(what string) (*groupFrame, error) {
		return nil, fmt.Errorf("repl: malformed frame: %s", what)
	}
	if len(body) < frameFixedLen {
		return bad("short body")
	}
	if body[0] != frameGroup && body[0] != frameHeartbeat {
		return bad("unknown frame type")
	}
	f := &groupFrame{Heartbeat: body[0] == frameHeartbeat}
	p := 1
	u32 := func() uint32 {
		v := binary.BigEndian.Uint32(body[p : p+4])
		p += 4
		return v
	}
	u64 := func() uint64 {
		v := binary.BigEndian.Uint64(body[p : p+8])
		p += 8
		return v
	}
	f.Shard = u32()
	f.Shards = u32()
	f.Epoch = u64()
	f.PrevTs = u64()
	f.LastTs = u64()
	f.Seq = u64()
	f.Bytes = int64(u64())
	f.FrontierSeq = u64()
	f.FrontierTs = u64()
	f.FrontierBytes = int64(u64())
	f.CumBytes = int64(u64())
	nrecs := int(binary.BigEndian.Uint32(body[p : p+4]))
	p += 4
	if nrecs < 0 || nrecs > maxFrameBody/13 {
		return bad("implausible record count")
	}
	if f.Heartbeat && nrecs != 0 {
		return bad("heartbeat with records")
	}
	f.Recs = make([]record.Record, 0, nrecs)
	for i := 0; i < nrecs; i++ {
		if p+1+4 > len(body) {
			return bad("truncated record header")
		}
		var rec record.Record
		rec.Kind = record.Kind(body[p])
		p++
		klen := int(binary.BigEndian.Uint32(body[p : p+4]))
		p += 4
		if klen < 0 || p+klen+8+4 > len(body) {
			return bad("truncated key")
		}
		rec.Key = append([]byte(nil), body[p:p+klen]...)
		p += klen
		rec.Ts = binary.BigEndian.Uint64(body[p : p+8])
		p += 8
		vlen := int(binary.BigEndian.Uint32(body[p : p+4]))
		p += 4
		if vlen < 0 || p+vlen+32 > len(body) {
			return bad("truncated value")
		}
		if vlen > 0 {
			rec.Value = append([]byte(nil), body[p:p+vlen]...)
		}
		p += vlen
		f.Recs = append(f.Recs, rec)
	}
	if p+32 != len(body) {
		return bad("trailing bytes")
	}
	copy(f.Chain[:], body[p:])
	return f, nil
}
