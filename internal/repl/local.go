package repl

import (
	"fmt"
	"io"
	"sync"
)

// LocalSource adapts in-process leader hubs (one per shard) into a Source:
// checkpoint and tail streams flow through pipes, so the follower-side
// verification path is byte-identical to the networked one.
type LocalSource struct {
	leaders []*Leader
}

// NewLocalSource wraps per-shard leader hubs.
func NewLocalSource(leaders []*Leader) *LocalSource {
	return &LocalSource{leaders: leaders}
}

func (ls *LocalSource) leader(shard int) (*Leader, error) {
	if shard < 0 || shard >= len(ls.leaders) {
		return nil, fmt.Errorf("repl: no such shard %d", shard)
	}
	return ls.leaders[shard], nil
}

// Checkpoint streams shard's checkpoint through a pipe.
func (ls *LocalSource) Checkpoint(shard int) (io.ReadCloser, error) {
	l, err := ls.leader(shard)
	if err != nil {
		return nil, err
	}
	pr, pw := io.Pipe()
	go func() {
		pw.CloseWithError(l.WriteCheckpoint(pw))
	}()
	return pr, nil
}

// Tail streams shard's group frames through a pipe; closing the returned
// reader stops the serving goroutine (including one idling at the head
// waiting for new groups).
func (ls *LocalSource) Tail(shard int, fromTs uint64) (io.ReadCloser, error) {
	l, err := ls.leader(shard)
	if err != nil {
		return nil, err
	}
	pr, pw := io.Pipe()
	stop := make(chan struct{})
	go func() {
		pw.CloseWithError(l.ServeTail(fromTs, pw, stop))
	}()
	return &stopOnClose{ReadCloser: pr, stop: stop}, nil
}

// stopOnClose couples a pipe reader's Close to a serve-side stop signal.
type stopOnClose struct {
	io.ReadCloser
	stop chan struct{}
	once sync.Once
}

func (s *stopOnClose) Close() error {
	s.once.Do(func() { close(s.stop) })
	return s.ReadCloser.Close()
}
