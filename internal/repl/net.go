package repl

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"time"
)

// netDialTimeout bounds one REPL connection attempt.
const netDialTimeout = 5 * time.Second

// netStatusTimeout bounds the wait for the status line. The server answers
// TAIL before blocking at the stream head, so a healthy leader responds
// well within this; the deadline keeps a follower's Close from hanging on
// a connection that never produced a status.
const netStatusTimeout = 10 * time.Second

// netWriteTimeout bounds each write on a REPL connection (the command
// line): a peer that stopped draining its socket cannot wedge the caller.
const netWriteTimeout = 10 * time.Second

// netIdleTimeout is the per-read deadline on established streams. The
// leader heartbeats idle tail streams every HeartbeatInterval, so a
// healthy connection never comes near it; crossing it means the leader (or
// the network) hung mid-stream, and the read fails so the tailer can
// reconnect instead of wedging forever. Package-level so tests can
// tighten it.
var netIdleTimeout = 30 * time.Second

// StatusBehind is the exact status line the server answers a TAIL whose
// cursor has fallen out of the leader's retained ring — the protocol-level
// form of ErrBehind. A dedicated token, not formatted error text: clients
// match it exactly.
const StatusBehind = "ERR BEHIND"

// NetSource speaks the elsm-server REPL protocol: one TCP connection per
// stream, opened with a single text command line, answered with "OK\n"
// followed by the raw binary stream (checkpoint bytes or group frames), or
// with "ERR <reason>\n".
type NetSource struct {
	addr string
	// Dial overrides net.Dial (tests); nil uses TCP.
	Dial func() (net.Conn, error)
}

// NewNetSource creates a source dialing addr for every stream.
func NewNetSource(addr string) *NetSource { return &NetSource{addr: addr} }

func (ns *NetSource) dial() (net.Conn, error) {
	if ns.Dial != nil {
		return ns.Dial()
	}
	return net.DialTimeout("tcp", ns.addr, netDialTimeout)
}

// open sends one command line and consumes the status line.
func (ns *NetSource) open(cmd string) (io.ReadCloser, error) {
	conn, err := ns.dial()
	if err != nil {
		return nil, err
	}
	conn.SetWriteDeadline(time.Now().Add(netWriteTimeout))
	if _, err := fmt.Fprintf(conn, "%s\n", cmd); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetWriteDeadline(time.Time{})
	// The status read is deadline-bounded so it can never wedge a caller
	// (Tailer.Close during this window has no stream to close yet); the
	// deadline is lifted before handing over the payload stream.
	conn.SetReadDeadline(time.Now().Add(netStatusTimeout))
	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("repl: %s: no status: %w", cmd, err)
	}
	conn.SetReadDeadline(time.Time{})
	status = strings.TrimRight(status, "\r\n")
	if status == StatusBehind {
		conn.Close()
		return nil, ErrBehind
	}
	if status != "OK" {
		conn.Close()
		return nil, fmt.Errorf("repl: %s: %s", cmd, status)
	}
	return &connStream{r: br, conn: conn}, nil
}

// Checkpoint requests shard's checkpoint stream.
func (ns *NetSource) Checkpoint(shard int) (io.ReadCloser, error) {
	return ns.open(fmt.Sprintf("REPL CKPT %d", shard))
}

// Tail requests shard's group frames from fromTs.
func (ns *NetSource) Tail(shard int, fromTs uint64) (io.ReadCloser, error) {
	return ns.open(fmt.Sprintf("REPL TAIL %d %d", shard, fromTs))
}

// connStream couples the buffered reader with its connection's lifetime
// and arms an idle deadline before every read: the leader's heartbeats
// keep a healthy stream far inside it, so a read that trips the deadline
// means a hung peer, and the stream fails instead of wedging its tailer.
type connStream struct {
	r    io.Reader
	conn net.Conn
}

func (cs *connStream) Read(p []byte) (int, error) {
	cs.conn.SetReadDeadline(time.Now().Add(netIdleTimeout))
	return cs.r.Read(p)
}

func (cs *connStream) Close() error { return cs.conn.Close() }
