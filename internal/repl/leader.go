package repl

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"elsm/internal/core"
	"elsm/internal/lsm"
	"elsm/internal/record"
)

// DefaultRingBytes is the default per-shard retention of the leader's
// in-memory group ring. A follower further behind than this must
// re-bootstrap from a checkpoint.
const DefaultRingBytes = 8 << 20

// HeartbeatInterval paces attested heartbeat frames on tail streams idling
// at the head: they prove the leader is alive (resetting follower-side
// read deadlines) and refresh lag gauges. Package-level so tests can
// tighten it; production followers size their idle timeouts as a multiple.
var HeartbeatInterval = 1 * time.Second

// hubGroup is one retained committed group.
type hubGroup struct {
	recs   []record.Record
	prevTs uint64
	lastTs uint64
	seq    uint64
	bytes  int64
	cum    int64 // cumulative hub bytes through this group
}

// Leader publishes one shard's replication feed: it registers as the
// engine's group sink, retains a bounded ring of recently committed groups
// (contiguous in timestamp space), and serves checkpoint streams and tail
// streams to any number of followers. Lifetime: create after the store is
// open, Close before the store closes.
type Leader struct {
	st       *core.Store
	maxBytes int64
	shard    int // partition this hub serves
	shards   int // total partition count of the leader store

	mu     sync.Mutex
	cond   *sync.Cond
	groups []hubGroup
	ring   int64  // bytes currently retained
	baseTs uint64 // prevTs of groups[0] (== headTs when empty)
	headTs uint64 // lastTs of the newest group
	seq    uint64 // seq of the newest group
	cum    int64  // cumulative bytes published
	closed bool

	followers atomic.Int64
}

// NewLeader attaches a replication hub to an open store. maxRingBytes
// bounds retained group payload (0 = DefaultRingBytes). shard and shards
// name the partition this hub serves within the leader's topology; they
// are bound — attested — into every checkpoint header and group frame so a
// follower can reject a stream spliced from the wrong shard.
func NewLeader(st *core.Store, maxRingBytes int64, shard, shards int) *Leader {
	if maxRingBytes <= 0 {
		maxRingBytes = DefaultRingBytes
	}
	if shards <= 0 {
		shards = 1
	}
	l := &Leader{st: st, maxBytes: maxRingBytes, shard: shard, shards: shards}
	l.cond = sync.NewCond(&l.mu)
	// Install the sink BEFORE reading the frontier: a group committed in
	// between lands in the ring and merely lowers baseTs below the
	// observed frontier, which is harmless; the other order would lose it.
	st.Engine().SetGroupSink(l.onGroup)
	l.mu.Lock()
	if len(l.groups) == 0 && l.headTs == 0 {
		ts := st.Engine().AppliedTs()
		l.baseTs, l.headTs = ts, ts
	}
	l.mu.Unlock()
	return l
}

// onGroup ingests one committed group from the engine's sync stage
// (single-threaded, commit order).
func (l *Leader) onGroup(g lsm.ReplicatedGroup) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	if len(l.groups) == 0 {
		// (Re-)anchor the empty ring at the group's base.
		l.baseTs = g.PrevTs
		l.headTs = g.PrevTs
	}
	if g.PrevTs != l.headTs {
		// A discontinuity means groups were committed while no sink was
		// installed (cannot happen after NewLeader) — drop the stale tail
		// rather than serve a gapped stream.
		l.groups = l.groups[:0]
		l.ring = 0
		l.baseTs = g.PrevTs
		l.headTs = g.PrevTs
	}
	l.seq++
	l.cum += g.Bytes
	l.groups = append(l.groups, hubGroup{
		recs:   g.Recs,
		prevTs: g.PrevTs,
		lastTs: g.LastTs,
		seq:    l.seq,
		bytes:  g.Bytes,
		cum:    l.cum,
	})
	l.ring += g.Bytes
	l.headTs = g.LastTs
	evict := 0
	for l.ring > l.maxBytes && evict < len(l.groups)-1 {
		l.ring -= l.groups[evict].bytes
		evict++
	}
	if evict > 0 {
		l.baseTs = l.groups[evict-1].lastTs
		l.groups = append(l.groups[:0:0], l.groups[evict:]...)
	}
	l.cond.Broadcast()
}

// Close detaches the hub from the engine and terminates every tail stream
// with ErrLeaderClosed.
func (l *Leader) Close() {
	l.st.Engine().SetGroupSink(nil)
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Followers reports the number of connected tail streams.
func (l *Leader) Followers() int64 { return l.followers.Load() }

// Store exposes the hub's underlying authenticated store.
func (l *Leader) Store() *core.Store { return l.st }

// WriteCheckpoint streams the shard's current checkpoint into w. Captured
// while the hub is attached, the checkpoint's frontier is always covered
// by the ring (or by a later checkpoint), so a follower restoring it can
// tail without a gap.
func (l *Leader) WriteCheckpoint(w io.Writer) error {
	return l.st.ExportCheckpoint(w, l.shard, l.shards)
}

// TailReady reports whether a tail stream starting at fromTs can serve at
// least its first frame: ErrLeaderClosed after Close, ErrBehind when the
// cursor has fallen out of the retained ring (re-bootstrap), nil
// otherwise. Used by servers to settle the status line before ServeTail
// blocks at the head of a quiet leader.
func (l *Leader) TailReady(fromTs uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrLeaderClosed
	}
	if fromTs < l.baseTs {
		return ErrBehind
	}
	return nil
}

// ServeTail streams committed groups with timestamps above fromTs into w,
// blocking at the head for more. While the stream idles at the head it
// emits an attested heartbeat frame every HeartbeatInterval, so a live but
// quiet leader is distinguishable from a dead one. It returns when w fails
// (follower went away), stop closes, the hub closes (ErrLeaderClosed), or
// the cursor falls out of the retained ring (ErrBehind).
func (l *Leader) ServeTail(fromTs uint64, w io.Writer, stop <-chan struct{}) error {
	l.followers.Add(1)
	defer l.followers.Add(-1)

	// Wake the cond loop when the caller abandons the stream, and
	// periodically for heartbeats (sync.Cond has no timed wait).
	done := make(chan struct{})
	defer close(done)
	stopped := false
	if stop != nil {
		go func() {
			select {
			case <-stop:
				l.mu.Lock()
				stopped = true
				l.cond.Broadcast()
				l.mu.Unlock()
			case <-done:
			}
		}()
	}
	ticker := time.NewTicker(HeartbeatInterval)
	defer ticker.Stop()
	go func() {
		for {
			select {
			case <-ticker.C:
				l.cond.Broadcast()
			case <-done:
				return
			}
		}
	}()

	cursor := fromTs
	lastSent := time.Now()
	for {
		l.mu.Lock()
		var g *hubGroup
		for {
			if stopped {
				l.mu.Unlock()
				return nil
			}
			if l.closed {
				l.mu.Unlock()
				return ErrLeaderClosed
			}
			if cursor < l.baseTs {
				l.mu.Unlock()
				return ErrBehind
			}
			if g = l.findLocked(cursor); g != nil {
				break
			}
			if time.Since(lastSent) >= HeartbeatInterval {
				break // idle at the head: heartbeat
			}
			l.cond.Wait()
		}
		frame := groupFrame{
			Shard:         uint32(l.shard),
			Shards:        uint32(l.shards),
			Epoch:         l.st.ReplEpoch(),
			FrontierSeq:   l.seq,
			FrontierTs:    l.headTs,
			FrontierBytes: l.cum,
		}
		if g != nil {
			frame.PrevTs = g.prevTs
			frame.LastTs = g.lastTs
			frame.Seq = g.seq
			frame.Bytes = g.bytes
			frame.CumBytes = g.cum
			frame.Recs = g.recs
		} else {
			frame.Heartbeat = true
			frame.CumBytes = l.cum
		}
		l.mu.Unlock()

		frame.Chain = chainOver(frame.Recs)
		body := encodeFrame(&frame)
		rep := l.st.AttestPayload(body)
		if err := writeFrame(w, body, rep); err != nil {
			return err
		}
		lastSent = time.Now()
		if g != nil {
			cursor = frame.LastTs
		}
	}
}

// findLocked returns the retained group starting exactly at cursor, nil if
// the head has not reached it yet. Caller holds l.mu; cursor >= l.baseTs.
func (l *Leader) findLocked(cursor uint64) *hubGroup {
	// The ring is contiguous and sorted by prevTs: binary search.
	lo, hi := 0, len(l.groups)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.groups[mid].prevTs < cursor {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(l.groups) && l.groups[lo].prevTs == cursor {
		return &l.groups[lo]
	}
	return nil
}
