package ycsb

import (
	"sync"
	"testing"

	"elsm/internal/core"
)

// lockedKV makes the test mapKV safe for concurrent use.
type lockedKV struct {
	mu    sync.Mutex
	inner *mapKV
}

var _ DB = (*lockedKV)(nil)

func (l *lockedKV) Put(k, v []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Put(k, v)
}

func (l *lockedKV) Delete(k []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Delete(k)
}

func (l *lockedKV) Get(k []byte) (core.Result, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Get(k)
}

func (l *lockedKV) GetAt(k []byte, tsq uint64) (core.Result, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.GetAt(k, tsq)
}

func (l *lockedKV) ApplyBatch(ops []core.BatchOp) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.ApplyBatch(ops)
}

func (l *lockedKV) Scan(a, b []byte) ([]core.Result, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Scan(a, b)
}

func (l *lockedKV) IterAt(a, b []byte, tsq uint64) core.Iterator {
	// Serialize the whole streamed read: materialize under the lock.
	l.mu.Lock()
	defer l.mu.Unlock()
	res, err := l.inner.Scan(a, b)
	return core.NewSliceIter(res, err)
}

func (l *lockedKV) Close() error { return l.inner.Close() }

func TestRunConcurrentAggregates(t *testing.T) {
	kv := newMapKV()
	// mapKV is not concurrency-safe; wrap it.
	safe := &lockedKV{inner: kv}
	if err := Load(safe, 300, 16); err != nil {
		t.Fatal(err)
	}
	st, err := RunConcurrent(safe, WorkloadC(), 300, 4, 250, 42)
	if err != nil {
		t.Fatal(err)
	}
	if st.Threads != 4 || st.Ops != 1000 || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Throughput <= 0 || st.MeanPerOp <= 0 {
		t.Fatalf("degenerate rates: %+v", st)
	}
	if st.String() == "" {
		t.Fatal("empty string")
	}
}

func TestRunConcurrentSingleThreadFloor(t *testing.T) {
	safe := &lockedKV{inner: newMapKV()}
	if err := Load(safe, 50, 8); err != nil {
		t.Fatal(err)
	}
	st, err := RunConcurrent(safe, WorkloadB(), 50, 0 /* clamped to 1 */, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Threads != 1 || st.Ops != 100 {
		t.Fatalf("stats = %+v", st)
	}
}
