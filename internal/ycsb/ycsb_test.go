package ycsb

import (
	"bytes"
	"testing"

	"elsm/internal/core"
	"elsm/internal/record"
)

func TestKeyShape(t *testing.T) {
	k := Key(42)
	if len(k) != DefaultKeySize {
		t.Fatalf("key length %d, want %d", len(k), DefaultKeySize)
	}
	if !bytes.HasPrefix(k, []byte("user")) {
		t.Fatalf("key %q", k)
	}
	if bytes.Equal(Key(1), Key(2)) {
		t.Fatal("keys collide")
	}
}

func TestValueDeterministic(t *testing.T) {
	if !bytes.Equal(Value(7, 100), Value(7, 100)) {
		t.Fatal("value not deterministic")
	}
	if bytes.Equal(Value(7, 100), Value(8, 100)) {
		t.Fatal("distinct indices give equal values")
	}
	if len(Value(1, 321)) != 321 {
		t.Fatal("wrong value size")
	}
}

func TestUniformCoverage(t *testing.T) {
	c := NewKeyChooser(Uniform, 100, 1)
	seen := map[uint64]int{}
	for i := 0; i < 20000; i++ {
		v := c.Next()
		if v >= 100 {
			t.Fatalf("out of range: %d", v)
		}
		seen[v]++
	}
	if len(seen) < 95 {
		t.Fatalf("uniform covered only %d/100 keys", len(seen))
	}
	for k, n := range seen {
		if n < 50 || n > 400 {
			t.Fatalf("key %d drawn %d times (expected ~200)", k, n)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	c := NewKeyChooser(Zipfian, 10000, 1)
	counts := map[uint64]int{}
	for i := 0; i < 50000; i++ {
		v := c.Next()
		if v >= 10000 {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
	}
	// Zipf(0.99): a small set of hot keys should dominate.
	hot := 0
	for _, n := range counts {
		if n > 500 {
			hot++
		}
	}
	if hot == 0 {
		t.Fatal("no hot keys under zipfian")
	}
	if len(counts) > 9000 {
		t.Fatalf("zipfian touched %d distinct keys of 10000 — looks uniform", len(counts))
	}
}

func TestLatestSkewsRecent(t *testing.T) {
	c := NewKeyChooser(Latest, 1000, 1)
	recent := 0
	for i := 0; i < 10000; i++ {
		v := c.Next()
		if v >= 1000 {
			t.Fatalf("out of range: %d", v)
		}
		if v >= 900 {
			recent++
		}
	}
	if recent < 5000 {
		t.Fatalf("only %d/10000 draws in newest decile", recent)
	}
	// Inserts shift the window.
	idx := c.NoteInsert()
	if idx != 1000 {
		t.Fatalf("insert index = %d", idx)
	}
}

func TestGenRecordsSortedUnique(t *testing.T) {
	recs := GenRecords(5000, 10)
	for i := 1; i < len(recs); i++ {
		if record.CompareRecords(recs[i-1], recs[i]) >= 0 {
			t.Fatalf("records not strictly sorted at %d", i)
		}
	}
}

func TestRecordsForBytes(t *testing.T) {
	n := RecordsForBytes(1 << 20)
	if n < 8000 || n > 10000 {
		t.Fatalf("1 MiB = %d records", n)
	}
	if RecordsForBytes(1) != 1 {
		t.Fatal("minimum is 1 record")
	}
}

func TestWorkloadMixes(t *testing.T) {
	for _, wl := range []Workload{WorkloadA(), WorkloadB(), WorkloadC(), WorkloadD(), WorkloadE(), WorkloadF()} {
		total := wl.ReadProp + wl.UpdateProp + wl.InsertProp + wl.ScanProp + wl.RMWProp
		if total < 0.999 || total > 1.001 {
			t.Fatalf("workload %s proportions sum to %f", wl.Name, total)
		}
	}
	m := Mix(70, Uniform)
	if m.ReadProp != 0.7 || m.UpdateProp < 0.299 || m.UpdateProp > 0.301 {
		t.Fatalf("mix = %+v", m)
	}
}

// mapKV is a trivial in-memory KV for runner tests.
type mapKV struct {
	m  map[string][]byte
	ts uint64
}

var _ DB = (*mapKV)(nil)

func newMapKV() *mapKV { return &mapKV{m: map[string][]byte{}} }

func (s *mapKV) Put(k, v []byte) (uint64, error) {
	s.ts++
	s.m[string(k)] = append([]byte(nil), v...)
	return s.ts, nil
}
func (s *mapKV) Delete(k []byte) (uint64, error) {
	s.ts++
	delete(s.m, string(k))
	return s.ts, nil
}
func (s *mapKV) Get(k []byte) (core.Result, error) {
	v, ok := s.m[string(k)]
	return core.Result{Key: k, Value: v, Found: ok}, nil
}
func (s *mapKV) GetAt(k []byte, _ uint64) (core.Result, error) { return s.Get(k) }
func (s *mapKV) ApplyBatch(ops []core.BatchOp) (uint64, error) {
	var ts uint64
	for _, op := range ops {
		if op.Delete {
			ts, _ = s.Delete(op.Key)
		} else {
			ts, _ = s.Put(op.Key, op.Value)
		}
	}
	return ts, nil
}
func (s *mapKV) Scan(start, end []byte) ([]core.Result, error) {
	var out []core.Result
	for k, v := range s.m {
		if k >= string(start) && k <= string(end) {
			out = append(out, core.Result{Key: []byte(k), Value: v, Found: true})
		}
	}
	return out, nil
}
func (s *mapKV) IterAt(start, end []byte, _ uint64) core.Iterator {
	res, err := s.Scan(start, end)
	return core.NewSliceIter(res, err)
}
func (s *mapKV) Close() error { return nil }

func TestRunnerExecutesMix(t *testing.T) {
	kv := newMapKV()
	if err := Load(kv, 200, 16); err != nil {
		t.Fatal(err)
	}
	if len(kv.m) != 200 {
		t.Fatalf("loaded %d", len(kv.m))
	}
	for _, wl := range []Workload{WorkloadA(), WorkloadD(), WorkloadE(), WorkloadF(), Mix(30, Uniform)} {
		r := NewRunner(kv, wl, 200, 7)
		st, err := r.RunOps(500)
		if err != nil {
			t.Fatalf("workload %s: %v", wl.Name, err)
		}
		if st.Ops != 500 || st.Errors != 0 {
			t.Fatalf("workload %s stats: %+v", wl.Name, st)
		}
		if st.Mean <= 0 || st.P99 < st.P50 {
			t.Fatalf("workload %s nonsense latencies: %+v", wl.Name, st)
		}
	}
}

func TestStatsString(t *testing.T) {
	st := Stats{Ops: 10}
	if st.String() == "" {
		t.Fatal("empty stats string")
	}
}
