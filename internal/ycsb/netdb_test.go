package ycsb

import (
	"fmt"
	"net"
	"testing"

	"elsm"
	"elsm/internal/netclient"
	"elsm/internal/netsrv"
)

// startNetStore serves an in-memory store over the binary protocol on a
// loopback listener.
func startNetStore(t *testing.T, opts elsm.Options) string {
	t.Helper()
	store, err := elsm.Open(opts)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	srv, err := netsrv.New(store, netsrv.Config{})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		store.Close()
	})
	return ln.Addr().String()
}

// TestNetDBWorkloads runs YCSB mixes end to end over the network front
// end: load over the wire, then point reads, updates, inserts, verified
// scans and read-modify-writes through the pipelined protocol.
func TestNetDBWorkloads(t *testing.T) {
	addr := startNetStore(t, elsm.Options{})
	c, err := netclient.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	db := NewNetDB(c)

	const n = 200
	if err := LoadBatched(db, n, 0, 50); err != nil {
		t.Fatalf("load: %v", err)
	}
	// Spot-check the load landed.
	res, err := db.Get(Key(0))
	if err != nil || !res.Found {
		t.Fatalf("get after load: %+v err %v", res, err)
	}

	for _, wl := range []Workload{WorkloadA(), WorkloadE(), WorkloadF()} {
		r := NewRunner(db, wl, n, 42)
		st, err := r.RunOps(300)
		if err != nil {
			t.Fatalf("workload %s: %v", wl.Name, err)
		}
		if st.Errors != 0 {
			t.Fatalf("workload %s: %d op errors", wl.Name, st.Errors)
		}
		if st.Ops != 300 {
			t.Fatalf("workload %s: ran %d ops, want 300", wl.Name, st.Ops)
		}
	}
}

// TestNetDBConcurrentClients is the -race smoke: several independent
// connections drive workload A against one server at once, so the whole
// reader/workers/writer pipeline and the client demultiplexer run under
// contention.
func TestNetDBConcurrentClients(t *testing.T) {
	addr := startNetStore(t, elsm.Options{Shards: 2})

	// One connection loads the dataset.
	loader, err := netclient.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	const n = 200
	if err := LoadBatched(NewNetDB(loader), n, 0, 50); err != nil {
		t.Fatalf("load: %v", err)
	}
	loader.Close()

	const clients = 6
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(seed int64) {
			errCh <- func() error {
				c, err := netclient.Dial(addr)
				if err != nil {
					return err
				}
				defer c.Close()
				r := NewRunner(NewNetDB(c), WorkloadA(), n, seed)
				st, err := r.RunOps(200)
				if err != nil {
					return err
				}
				if st.Errors != 0 {
					return fmt.Errorf("client %d: %d op errors", seed, st.Errors)
				}
				return nil
			}()
		}(int64(i))
	}
	for i := 0; i < clients; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}
