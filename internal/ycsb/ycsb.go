// Package ycsb is a native Go implementation of the YCSB workload
// framework (Cooper et al., SoCC'10) used throughout the paper's
// evaluation (§6): key generators with uniform, (scrambled) zipfian and
// latest distributions, the standard workload mixes A–F, a load phase, and
// a runner that drives any core.KV and records per-operation latencies.
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"elsm/internal/core"
	"elsm/internal/obs"
	"elsm/internal/record"
)

// Distribution selects the key-popularity distribution (§6.2, Figure 5c).
type Distribution int

const (
	// Uniform draws keys uniformly.
	Uniform Distribution = iota + 1
	// Zipfian draws keys with a scrambled zipf(0.99) popularity skew.
	Zipfian
	// Latest skews toward the most recently inserted keys.
	Latest
)

func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Zipfian:
		return "zipfian"
	case Latest:
		return "latest"
	default:
		return fmt.Sprintf("distribution(%d)", int(d))
	}
}

// Default record shape (§6.1: "each with a 16-byte key and 100-byte value
// by default").
const (
	DefaultKeySize   = 16
	DefaultValueSize = 100
)

// Key formats the i-th record key (16 bytes: "user" + 12 digits).
func Key(i uint64) []byte {
	return []byte(fmt.Sprintf("user%012d", i))
}

// Value deterministically generates the value for key index i, sized n.
func Value(i uint64, n int) []byte {
	out := make([]byte, n)
	seed := i*2654435761 + 12345
	for j := range out {
		seed = seed*6364136223846793005 + 1442695040888963407
		out[j] = 'a' + byte(seed>>57)%26
	}
	return out
}

// ---------------------------------------------------------------------------
// Generators

// zipfian is the standard YCSB zipfian generator (theta = 0.99).
type zipfian struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

func newZipfian(n uint64) *zipfian {
	const theta = 0.99
	z := &zipfian{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *zipfian) next(rnd *rand.Rand) uint64 {
	u := rnd.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// fnvScramble spreads zipfian hotspots across the key space (YCSB's
// "scrambled zipfian").
func fnvScramble(v, n uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= prime
	}
	return h % n
}

// KeyChooser draws key indices according to a distribution.
type KeyChooser struct {
	dist Distribution
	n    uint64
	zipf *zipfian
	rnd  *rand.Rand
	// insertCount tracks the live key count for Latest.
	insertCount uint64
}

// NewKeyChooser builds a chooser over n keys.
func NewKeyChooser(dist Distribution, n uint64, seed int64) *KeyChooser {
	c := &KeyChooser{dist: dist, n: n, rnd: rand.New(rand.NewSource(seed)), insertCount: n}
	if dist == Zipfian || dist == Latest {
		c.zipf = newZipfian(n)
	}
	return c
}

// Next draws a key index.
func (c *KeyChooser) Next() uint64 {
	switch c.dist {
	case Uniform:
		return uint64(c.rnd.Int63n(int64(c.n)))
	case Zipfian:
		return fnvScramble(c.zipf.next(c.rnd), c.n)
	case Latest:
		off := c.zipf.next(c.rnd)
		if off >= c.insertCount {
			off = c.insertCount - 1
		}
		return c.insertCount - 1 - off
	default:
		panic(fmt.Sprintf("ycsb: unknown distribution %d", c.dist))
	}
}

// NoteInsert informs the chooser a new key index exists (Latest skew).
func (c *KeyChooser) NoteInsert() uint64 {
	idx := c.insertCount
	c.insertCount++
	return idx
}

// ---------------------------------------------------------------------------
// Workloads

// Workload is an operation mix over a loaded dataset.
type Workload struct {
	Name       string
	ReadProp   float64
	UpdateProp float64
	InsertProp float64
	ScanProp   float64
	RMWProp    float64
	Dist       Distribution
	// ScanLen is the maximum range-scan length (workload E).
	ScanLen int
	// ValueSize overrides DefaultValueSize when positive.
	ValueSize int
}

// The six standard YCSB core workloads.
func WorkloadA() Workload {
	return Workload{Name: "A", ReadProp: 0.5, UpdateProp: 0.5, Dist: Zipfian}
}
func WorkloadB() Workload {
	return Workload{Name: "B", ReadProp: 0.95, UpdateProp: 0.05, Dist: Zipfian}
}
func WorkloadC() Workload {
	return Workload{Name: "C", ReadProp: 1.0, Dist: Zipfian}
}
func WorkloadD() Workload {
	return Workload{Name: "D", ReadProp: 0.95, InsertProp: 0.05, Dist: Latest}
}
func WorkloadE() Workload {
	return Workload{Name: "E", ScanProp: 0.95, InsertProp: 0.05, Dist: Zipfian, ScanLen: 50}
}
func WorkloadF() Workload {
	return Workload{Name: "F", ReadProp: 0.5, RMWProp: 0.5, Dist: Zipfian}
}

// Mix builds the paper's read-percentage sweep workloads (Figure 5a):
// readPct% reads, the rest updates.
func Mix(readPct int, dist Distribution) Workload {
	return Workload{
		Name:       fmt.Sprintf("mix%d", readPct),
		ReadProp:   float64(readPct) / 100,
		UpdateProp: 1 - float64(readPct)/100,
		Dist:       dist,
	}
}

// ---------------------------------------------------------------------------
// Load phase

// GenRecords produces the sorted record set for the load phase (BulkLoad).
func GenRecords(n int, valueSize int) []record.Record {
	if valueSize <= 0 {
		valueSize = DefaultValueSize
	}
	recs := make([]record.Record, n)
	for i := 0; i < n; i++ {
		recs[i] = record.Record{
			Key:   Key(uint64(i)),
			Ts:    uint64(i + 1),
			Kind:  record.KindSet,
			Value: Value(uint64(i), valueSize),
		}
	}
	sort.Slice(recs, func(a, b int) bool { return record.CompareRecords(recs[a], recs[b]) < 0 })
	return recs
}

// RecordsForBytes returns how many default-shaped records approximate the
// given dataset size.
func RecordsForBytes(bytes int64) int {
	per := int64(DefaultKeySize + DefaultValueSize)
	n := bytes / per
	if n < 1 {
		n = 1
	}
	return int(n)
}

// DB is the minimal store surface the YCSB driver needs. core.KV (and so
// every eLSM store mode) satisfies it; tests drive it with trivial fakes
// without having to stub the full Sessions v2 interface.
type DB interface {
	Put(key, value []byte) (uint64, error)
	ApplyBatch(ops []core.BatchOp) (uint64, error)
	Get(key []byte) (core.Result, error)
	IterAt(start, end []byte, tsq uint64) core.Iterator
}

// Load inserts n records through the KV's write path (the slow, realistic
// load used by small experiments; large ones use BulkLoad).
func Load(kv DB, n int, valueSize int) error {
	if valueSize <= 0 {
		valueSize = DefaultValueSize
	}
	for i := 0; i < n; i++ {
		if _, err := kv.Put(Key(uint64(i)), Value(uint64(i), valueSize)); err != nil {
			return fmt.Errorf("ycsb load at %d: %w", i, err)
		}
	}
	return nil
}

// LoadBatched inserts n records through the grouped write path in batches
// of batchSize, amortizing enclave round trips and group fsyncs across each
// batch (the batched-ingestion load phase).
func LoadBatched(kv DB, n, valueSize, batchSize int) error {
	if valueSize <= 0 {
		valueSize = DefaultValueSize
	}
	if batchSize <= 1 {
		return Load(kv, n, valueSize)
	}
	ops := make([]core.BatchOp, 0, batchSize)
	for i := 0; i < n; i++ {
		ops = append(ops, core.BatchOp{Key: Key(uint64(i)), Value: Value(uint64(i), valueSize)})
		if len(ops) == batchSize || i == n-1 {
			if _, err := kv.ApplyBatch(ops); err != nil {
				return fmt.Errorf("ycsb batched load at %d: %w", i, err)
			}
			ops = ops[:0]
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Runner

// Stats summarizes measured latencies.
type Stats struct {
	Ops    int
	Errors int
	Mean   time.Duration
	P50    time.Duration
	P95    time.Duration
	P99    time.Duration
	Total  time.Duration
}

// String renders one figure-style row.
func (s Stats) String() string {
	return fmt.Sprintf("ops=%d mean=%v p50=%v p95=%v p99=%v", s.Ops, s.Mean, s.P50, s.P95, s.P99)
}

// Runner drives a workload against a store.
type Runner struct {
	KV       DB
	Workload Workload
	Chooser  *KeyChooser
	rnd      *rand.Rand
	seq      uint64
}

// NewRunner prepares a runner over a dataset of n loaded records.
func NewRunner(kv DB, wl Workload, n int, seed int64) *Runner {
	return &Runner{
		KV:       kv,
		Workload: wl,
		Chooser:  NewKeyChooser(wl.Dist, uint64(n), seed),
		rnd:      rand.New(rand.NewSource(seed + 1)),
		seq:      uint64(n),
	}
}

// RunOps executes n operations, measuring per-op latency. Latencies feed
// the store's shared log-bucket histogram (internal/obs) rather than a
// private sorted slice: constant memory for any op count, and the same
// quantile estimator the server's /metrics endpoint reports, so bench
// numbers and production scrapes are directly comparable.
func (r *Runner) RunOps(n int) (Stats, error) {
	var hist obs.Histogram
	errs := 0
	valueSize := r.Workload.ValueSize
	if valueSize <= 0 {
		valueSize = DefaultValueSize
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		p := r.rnd.Float64()
		wl := r.Workload
		opStart := time.Now()
		var err error
		switch {
		case p < wl.ReadProp:
			_, err = r.KV.Get(Key(r.Chooser.Next()))
		case p < wl.ReadProp+wl.UpdateProp:
			idx := r.Chooser.Next()
			_, err = r.KV.Put(Key(idx), Value(idx+r.seq, valueSize))
		case p < wl.ReadProp+wl.UpdateProp+wl.InsertProp:
			idx := r.Chooser.NoteInsert()
			_, err = r.KV.Put(Key(idx), Value(idx, valueSize))
		case p < wl.ReadProp+wl.UpdateProp+wl.InsertProp+wl.ScanProp:
			// Range reads stream through the verified iterator, the way a
			// production client would consume a large range.
			startIdx := r.Chooser.Next()
			ln := 1 + r.rnd.Intn(max(wl.ScanLen, 1))
			it := r.KV.IterAt(Key(startIdx), Key(startIdx+uint64(ln)), record.MaxTs)
			for it.Next() {
			}
			err = it.Close()
		default: // read-modify-write
			idx := r.Chooser.Next()
			var res core.Result
			res, err = r.KV.Get(Key(idx))
			if err == nil {
				v := append(res.Value, byte('!'))
				_, err = r.KV.Put(Key(idx), v)
			}
		}
		hist.ObserveDuration(time.Since(opStart))
		if err != nil {
			errs++
			if errs > n/10 {
				return Stats{}, fmt.Errorf("ycsb: excessive errors (%d/%d), last: %w", errs, i+1, err)
			}
		}
	}
	total := time.Since(start)
	return summarize(&hist, errs, total), nil
}

// summarize folds the latency histogram into the figure-style Stats row.
// Quantiles are bucket-midpoint estimates (≤ ~12% relative error), the
// trade for never sorting or retaining per-op samples.
func summarize(h *obs.Histogram, errs int, total time.Duration) Stats {
	snap := h.Snapshot()
	if snap.Count == 0 {
		return Stats{Errors: errs, Total: total}
	}
	return Stats{
		Ops:    int(snap.Count),
		Errors: errs,
		Mean:   time.Duration(snap.Mean()),
		P50:    time.Duration(snap.Quantile(0.50)),
		P95:    time.Duration(snap.Quantile(0.95)),
		P99:    time.Duration(snap.Quantile(0.99)),
		Total:  total,
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
