package ycsb

import (
	"fmt"
	"sync"
	"time"
)

// ConcurrentStats aggregates a multi-threaded run (§5.5.2: "eLSM-P2
// supports concurrent operations in a multi-threaded enclave").
type ConcurrentStats struct {
	Threads    int
	Ops        int
	Errors     int
	Elapsed    time.Duration
	Throughput float64 // ops per second
	MeanPerOp  time.Duration
}

// String renders one summary row.
func (s ConcurrentStats) String() string {
	return fmt.Sprintf("threads=%d ops=%d errors=%d elapsed=%v throughput=%.0f op/s",
		s.Threads, s.Ops, s.Errors, s.Elapsed, s.Throughput)
}

// RunConcurrent drives the workload from `threads` goroutines, opsPerThread
// each, all against the same store. Each thread gets an independent key
// chooser and RNG (seeded distinctly) so threads do not serialize on shared
// generator state — matching YCSB's threadcount semantics.
func RunConcurrent(kv DB, wl Workload, n, threads, opsPerThread int, seed int64) (ConcurrentStats, error) {
	if threads < 1 {
		threads = 1
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		errs     int
	)
	start := time.Now()
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			r := NewRunner(kv, wl, n, seed+int64(th)*7919)
			st, err := r.RunOps(opsPerThread)
			mu.Lock()
			defer mu.Unlock()
			errs += st.Errors
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("thread %d: %w", th, err)
			}
		}(th)
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := threads * opsPerThread
	out := ConcurrentStats{
		Threads: threads,
		Ops:     total,
		Errors:  errs,
		Elapsed: elapsed,
	}
	if elapsed > 0 {
		out.Throughput = float64(total) / elapsed.Seconds()
	}
	if total > 0 {
		out.MeanPerOp = elapsed / time.Duration(total)
	}
	return out, firstErr
}
