package ycsb

import (
	"elsm/internal/core"
	"elsm/internal/netclient"
	"elsm/internal/netproto"
)

// NetDB adapts a netclient.Client to the DB surface, so every YCSB
// workload and the bench harness can run end to end over the network
// front end — client, wire protocol, admission control and server
// pipeline included — instead of calling the store in-process.
type NetDB struct {
	c *netclient.Client
}

// NewNetDB wraps an established client. The caller keeps ownership (and
// Close responsibility) of the client.
func NewNetDB(c *netclient.Client) *NetDB { return &NetDB{c: c} }

// Put writes one record durably over the wire.
func (db *NetDB) Put(key, value []byte) (uint64, error) {
	return db.c.Put(key, value)
}

// ApplyBatch applies one atomic durable commit over the wire.
func (db *NetDB) ApplyBatch(ops []core.BatchOp) (uint64, error) {
	wire := make([]netproto.BatchOp, len(ops))
	for i, op := range ops {
		wire[i] = netproto.BatchOp{Key: op.Key, Value: op.Value, Delete: op.Delete}
	}
	return db.c.Batch(wire)
}

// Get reads one verified record over the wire.
func (db *NetDB) Get(key []byte) (core.Result, error) {
	res, err := db.c.Get(key)
	if err != nil {
		return core.Result{}, err
	}
	if !res.Found {
		return core.Result{}, nil
	}
	return core.Result{Key: key, Value: res.Value, Ts: res.Ts, Found: true}, nil
}

// IterAt streams the verified range [start, end] at tsq as a
// core.Iterator over the protocol's chunked SCAN stream.
func (db *NetDB) IterAt(start, end []byte, tsq uint64) core.Iterator {
	sc, err := db.c.ScanAt(start, end, tsq)
	if err != nil {
		return &netIter{err: err}
	}
	return &netIter{sc: sc}
}

// netIter adapts a netclient.Scanner to core.Iterator.
type netIter struct {
	sc  *netclient.Scanner
	res core.Result
	err error
}

func (it *netIter) Next() bool {
	if it.err != nil || it.sc == nil {
		return false
	}
	if !it.sc.Next() {
		return false
	}
	it.res = core.Result{Key: it.sc.Key(), Value: it.sc.Value(), Ts: it.sc.Ts(), Found: true}
	return true
}

func (it *netIter) Result() core.Result { return it.res }

func (it *netIter) Err() error {
	if it.err != nil {
		return it.err
	}
	return it.sc.Err()
}

func (it *netIter) Close() error {
	if it.sc == nil {
		return it.err
	}
	if err := it.sc.Close(); err != nil && it.err == nil {
		it.err = err
	}
	return it.err
}
