package ycsb

import (
	"testing"

	"elsm/internal/core"
	"elsm/internal/sgx"
	"elsm/internal/shard"
)

// openShardedKV builds an n-shard router of eLSM-P2 stores (shared
// enclave, private MemFS each) — the sharded target the YCSB driver runs
// against exactly as it runs against a single core.KV.
func openShardedKV(t *testing.T, n int) *shard.Router {
	t.Helper()
	enclave := sgx.New(sgx.Params{})
	shards := make([]core.KV, n)
	for i := range shards {
		s, err := core.Open(core.Config{
			Enclave:       enclave,
			MemtableSize:  32 << 10,
			BlockSize:     512,
			TableFileSize: 16 << 10,
			LevelBase:     64 << 10,
			KeepVersions:  1,
		})
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = s
	}
	r, err := shard.New(shards)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestConcurrentWorkloadOnShardedStore drives the multi-threaded YCSB
// runner against a 4-shard router: concurrent verified reads, cross-shard
// batched writes and merged range scans must complete without a single
// verification or op error — the sharded counterpart of the single-store
// concurrency test at the package root.
func TestConcurrentWorkloadOnShardedStore(t *testing.T) {
	r := openShardedKV(t, 4)
	defer r.Close()
	const n = 1200
	if err := r.BulkLoad(GenRecords(n, 64)); err != nil {
		t.Fatal(err)
	}
	for _, wl := range []Workload{WorkloadA(), WorkloadE()} {
		wl.ValueSize = 64
		st, err := RunConcurrent(r, wl, n, 4, 300, 11)
		if err != nil {
			t.Fatalf("workload %s: %v", wl.Name, err)
		}
		if st.Errors != 0 {
			t.Fatalf("workload %s: %d op errors on the sharded store", wl.Name, st.Errors)
		}
		if st.Ops != 1200 {
			t.Fatalf("workload %s: ops = %d", wl.Name, st.Ops)
		}
	}
}

// TestBatchedLoadSpreadsAcrossShards checks the batched load path splits
// its groups across every shard.
func TestBatchedLoadSpreadsAcrossShards(t *testing.T) {
	r := openShardedKV(t, 4)
	defer r.Close()
	if err := LoadBatched(r, 400, 64, 32); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		res, err := r.Shard(i).Scan(Key(0), Key(400))
		if err != nil {
			t.Fatalf("shard %d scan: %v", i, err)
		}
		if len(res) == 0 {
			t.Fatalf("shard %d received no records from the batched load", i)
		}
	}
	got, err := r.Scan(Key(0), Key(400))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 400 {
		t.Fatalf("merged scan after batched load: %d of 400", len(got))
	}
}
