// Package sgx simulates the Intel SGX enclave execution environment used by
// the paper: a protected memory region (EPC) of limited size with expensive
// paging beyond it, costly world switches (ECall/OCall), a trusted monotonic
// counter for rollback defence, and sealing/measurement primitives.
//
// The simulator does not provide real isolation — it provides the *cost
// structure* and the *trust-boundary bookkeeping* of SGX, which is what the
// paper's design and evaluation depend on. See DESIGN.md ("Hardware
// substitution") for the calibration rationale.
//
// Concurrency: all types are safe for concurrent use unless noted otherwise.
package sgx

import (
	"errors"
	"fmt"
	"sync"

	"elsm/internal/costmodel"
)

// DefaultPageSize is the SGX EPC page granularity.
const DefaultPageSize = 4096

// DefaultEPCSize mirrors the paper's 128 MB EPC. Benchmarks scale this down
// together with dataset sizes (DESIGN.md "Scaling rule").
const DefaultEPCSize = 128 << 20

// Params configures a simulated enclave.
type Params struct {
	// EPCSize is the protected-memory capacity in bytes. Accesses to
	// enclave regions whose combined working set exceeds this trigger
	// simulated paging. Zero means DefaultEPCSize.
	EPCSize int
	// PageSize is the paging granularity. Zero means DefaultPageSize.
	PageSize int
	// Cost is the hardware cost model. The zero model disables all cost
	// accounting (functional tests).
	Cost costmodel.Model
}

func (p Params) withDefaults() Params {
	if p.EPCSize == 0 {
		p.EPCSize = DefaultEPCSize
	}
	if p.PageSize == 0 {
		p.PageSize = DefaultPageSize
	}
	return p
}

// Stats counts simulated hardware events. Retrieve a snapshot with
// Enclave.Stats.
type Stats struct {
	// PageFaults is the number of EPC page evict+load round trips.
	PageFaults uint64
	// ECalls and OCalls count boundary crossings (each is two world
	// switches: exit and re-enter).
	ECalls uint64
	OCalls uint64
	// CopiedBytes counts bytes copied across the enclave boundary.
	CopiedBytes uint64
	// ResidentPages is the current EPC occupancy in pages.
	ResidentPages int
	// AllocatedBytes is the total size of live enclave regions.
	AllocatedBytes int64
}

// Enclave is a simulated SGX enclave: an accounting domain for protected
// memory regions plus the ECall/OCall boundary.
type Enclave struct {
	params Params

	mu        sync.Mutex
	regions   map[int]*Region
	nextID    int
	pages     map[pageKey]*pageEntry
	ring      []*pageEntry // CLOCK ring over resident pages
	hand      int
	resident  int
	capacity  int // capacity in pages
	allocated int64

	stats struct {
		faults  uint64
		ecalls  uint64
		ocalls  uint64
		copied  uint64
		evicted uint64
	}
}

type pageKey struct {
	region int
	page   int
}

type pageEntry struct {
	key      pageKey
	ref      bool
	resident bool
}

// New creates an enclave with the given parameters.
func New(p Params) *Enclave {
	p = p.withDefaults()
	cap := p.EPCSize / p.PageSize
	if cap < 1 {
		cap = 1
	}
	return &Enclave{
		params:   p,
		regions:  make(map[int]*Region),
		pages:    make(map[pageKey]*pageEntry),
		capacity: cap,
	}
}

// NewUnlimited creates an enclave with an effectively infinite EPC and zero
// cost model: the "no SGX" configuration used by unsecured baselines and
// functional tests.
func NewUnlimited() *Enclave {
	return New(Params{EPCSize: 1 << 50, Cost: costmodel.Zero})
}

// Params returns the enclave's configuration.
func (e *Enclave) Params() Params { return e.params }

// Stats returns a snapshot of the simulated hardware event counters.
func (e *Enclave) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{
		PageFaults:     e.stats.faults,
		ECalls:         e.stats.ecalls,
		OCalls:         e.stats.ocalls,
		CopiedBytes:    e.stats.copied,
		ResidentPages:  e.resident,
		AllocatedBytes: e.allocated,
	}
}

// Region is a tracked allocation of enclave-protected memory. The actual
// bytes live in ordinary Go memory (owned by the caller or by the region's
// Data buffer); the region performs paging and MEE cost accounting for every
// declared access.
type Region struct {
	enclave *Enclave
	id      int
	size    int
	// Data is an optional backing buffer allocated by AllocBuffer. Regions
	// created with Alloc track cost only and have nil Data.
	Data []byte
}

// Alloc registers a region of n bytes of enclave memory for cost accounting.
func (e *Enclave) Alloc(n int) *Region {
	if n < 0 {
		panic(fmt.Sprintf("sgx: negative allocation %d", n))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.nextID++
	r := &Region{enclave: e, id: e.nextID, size: n}
	e.regions[r.id] = r
	e.allocated += int64(n)
	return r
}

// AllocBuffer allocates a region together with a backing byte buffer.
func (e *Enclave) AllocBuffer(n int) *Region {
	r := e.Alloc(n)
	r.Data = make([]byte, n)
	return r
}

// Free releases the region. Accessing a freed region panics.
func (r *Region) Free() {
	e := r.enclave
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.regions[r.id]; !ok {
		return
	}
	delete(e.regions, r.id)
	e.allocated -= int64(r.size)
	npages := (r.size + e.params.PageSize - 1) / e.params.PageSize
	for p := 0; p < npages; p++ {
		k := pageKey{region: r.id, page: p}
		if pe, ok := e.pages[k]; ok {
			if pe.resident {
				pe.resident = false
				e.resident--
			}
			delete(e.pages, k)
		}
	}
	r.enclave = nil
}

// Size returns the region size in bytes.
func (r *Region) Size() int { return r.size }

// Grow extends the region's accounted size by delta bytes (e.g., a memtable
// arena growing). It does not move Data.
func (r *Region) Grow(delta int) {
	if delta <= 0 {
		return
	}
	e := r.enclave
	e.mu.Lock()
	r.size += delta
	e.allocated += int64(delta)
	e.mu.Unlock()
}

// Touch charges the cost of accessing [off, off+n) within the region: MEE
// overhead for every byte plus a page fault for every non-resident page.
// This is the heart of the paging simulation.
func (r *Region) Touch(off, n int) {
	if n <= 0 {
		return
	}
	e := r.enclave
	if e == nil {
		panic("sgx: access to freed region")
	}
	cost := e.params.Cost
	if !cost.IsZero() {
		costmodel.ChargeBytes(cost.MEEPerKB, n)
	}
	ps := e.params.PageSize
	first := off / ps
	last := (off + n - 1) / ps
	faults := 0
	e.mu.Lock()
	for p := first; p <= last; p++ {
		k := pageKey{region: r.id, page: p}
		pe, ok := e.pages[k]
		if !ok {
			pe = &pageEntry{key: k}
			e.pages[k] = pe
		}
		if pe.resident {
			pe.ref = true
			continue
		}
		// Fault: evict a victim if the EPC is full, then load.
		if e.resident >= e.capacity {
			e.evictLocked()
		}
		pe.resident = true
		pe.ref = true
		e.resident++
		e.ring = append(e.ring, pe)
		faults++
	}
	e.stats.faults += uint64(faults)
	e.mu.Unlock()
	if faults > 0 && !cost.IsZero() {
		costmodel.Charge(cost.PageFault, faults)
	}
}

// evictLocked removes one resident page using the CLOCK algorithm.
// Caller holds e.mu.
func (e *Enclave) evictLocked() {
	for {
		if len(e.ring) == 0 {
			return
		}
		if e.hand >= len(e.ring) {
			e.hand = 0
		}
		pe := e.ring[e.hand]
		if !pe.resident {
			// Stale entry from a freed region; compact lazily.
			e.ring[e.hand] = e.ring[len(e.ring)-1]
			e.ring = e.ring[:len(e.ring)-1]
			continue
		}
		if pe.ref {
			pe.ref = false
			e.hand++
			continue
		}
		pe.resident = false
		e.resident--
		e.stats.evicted++
		e.ring[e.hand] = e.ring[len(e.ring)-1]
		e.ring = e.ring[:len(e.ring)-1]
		return
	}
}

// CopyIn models copying n bytes from untrusted memory into the enclave
// (charging the boundary-copy rate and touching the destination region).
func (r *Region) CopyIn(off int, n int) {
	e := r.enclave
	cost := e.params.Cost
	if !cost.IsZero() {
		costmodel.ChargeBytes(cost.EnclaveCopyPerKB, n)
	}
	e.mu.Lock()
	e.stats.copied += uint64(n)
	e.mu.Unlock()
	r.Touch(off, n)
}

// CopyOut models copying n bytes from the enclave out to untrusted memory.
func (r *Region) CopyOut(off int, n int) {
	r.CopyIn(off, n) // symmetric cost
}

// OCall runs fn in the untrusted world: the enclave exits (world switch),
// fn executes outside, then execution re-enters (second world switch).
func (e *Enclave) OCall(fn func()) {
	cost := e.params.Cost
	if !cost.IsZero() {
		costmodel.Spin(cost.WorldSwitch)
	}
	e.mu.Lock()
	e.stats.ocalls++
	e.mu.Unlock()
	fn()
	if !cost.IsZero() {
		costmodel.Spin(cost.WorldSwitch)
	}
}

// ECall runs fn inside the enclave on behalf of untrusted code, charging the
// enter/exit world switches.
func (e *Enclave) ECall(fn func()) {
	cost := e.params.Cost
	if !cost.IsZero() {
		costmodel.Spin(cost.WorldSwitch)
	}
	e.mu.Lock()
	e.stats.ecalls++
	e.mu.Unlock()
	fn()
	if !cost.IsZero() {
		costmodel.Spin(cost.WorldSwitch)
	}
}

// ErrCounterRollback is returned when a monotonic counter write would move
// the counter backwards — the signature of a rollback attack.
var ErrCounterRollback = errors.New("sgx: monotonic counter rollback detected")

// MonotonicCounter simulates the trusted monotonic counter
// (sgx_create_monotonic_counter / ROTE) used for rollback defence (§5.6.1).
// Values only move forward; the associated state hash lets the enclave pin
// its latest dataset digest to the counter value.
type MonotonicCounter struct {
	mu    sync.Mutex
	value uint64
	bound [32]byte
}

// NewMonotonicCounter creates a counter starting at zero.
func NewMonotonicCounter() *MonotonicCounter { return &MonotonicCounter{} }

// Increment advances the counter by one and binds it to the given state
// digest, returning the new value.
func (c *MonotonicCounter) Increment(state [32]byte) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.value++
	c.bound = state
	return c.value
}

// Read returns the current value and the state digest bound to it.
func (c *MonotonicCounter) Read() (uint64, [32]byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.value, c.bound
}

// Verify checks a claimed (value, state) pair against the counter. It
// returns ErrCounterRollback if the claimed value is older than the trusted
// value, and a generic error if the value matches but the state does not.
func (c *MonotonicCounter) Verify(value uint64, state [32]byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if value < c.value {
		return fmt.Errorf("%w: claimed %d < trusted %d", ErrCounterRollback, value, c.value)
	}
	if value == c.value && state != c.bound {
		return fmt.Errorf("sgx: state digest mismatch at counter %d", value)
	}
	return nil
}
