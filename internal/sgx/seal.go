package sgx

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
)

// Measurement identifies the code loaded into an enclave (MRENCLAVE). In the
// simulator it is the SHA-256 of the supplied code-identity bytes.
type Measurement [32]byte

// Measure computes the enclave measurement of the given code identity.
func Measure(codeIdentity []byte) Measurement {
	return Measurement(sha256.Sum256(codeIdentity))
}

// Report is a local attestation report: a MAC over the measurement and
// caller-chosen report data, keyed by a per-platform key.
type Report struct {
	Measurement Measurement
	Data        [64]byte
	MAC         [32]byte
}

// Platform models the per-machine root of trust (the CPU's fused keys).
type Platform struct {
	key [32]byte
}

// NewPlatform creates a platform with a fresh random root key.
func NewPlatform() (*Platform, error) {
	var p Platform
	if _, err := rand.Read(p.key[:]); err != nil {
		return nil, fmt.Errorf("sgx: platform key generation: %w", err)
	}
	return &p, nil
}

// NewPlatformFromSecret creates a platform whose root key is derived from a
// deterministic secret. Two processes constructed from the same secret
// verify each other's reports — the simulator's stand-in for a remote
// attestation handshake having established a shared channel key, which is
// what lets a replication follower on another "machine" check reports
// minted inside the leader's enclave.
func NewPlatformFromSecret(secret []byte) *Platform {
	var p Platform
	p.key = sha256.Sum256(secret)
	return &p
}

// CreateReport produces an attestation report binding data to the
// measurement under this platform's key.
func (p *Platform) CreateReport(m Measurement, data [64]byte) Report {
	r := Report{Measurement: m, Data: data}
	mac := hmac.New(sha256.New, p.key[:])
	mac.Write(m[:])
	mac.Write(data[:])
	mac.Sum(r.MAC[:0])
	return r
}

// ErrReportInvalid indicates attestation verification failure.
var ErrReportInvalid = errors.New("sgx: attestation report invalid")

// VerifyReport checks that the report was produced on this platform.
func (p *Platform) VerifyReport(r Report) error {
	mac := hmac.New(sha256.New, p.key[:])
	mac.Write(r.Measurement[:])
	mac.Write(r.Data[:])
	var want [32]byte
	mac.Sum(want[:0])
	if !hmac.Equal(want[:], r.MAC[:]) {
		return ErrReportInvalid
	}
	return nil
}

// SealingKey derives the enclave's sealing key: unique per (platform,
// measurement), so only the same code on the same machine can unseal.
func (p *Platform) SealingKey(m Measurement) [32]byte {
	mac := hmac.New(sha256.New, p.key[:])
	mac.Write([]byte("seal"))
	mac.Write(m[:])
	var out [32]byte
	mac.Sum(out[:0])
	return out
}

// ErrUnsealFailed indicates the sealed blob was tampered with or sealed by a
// different enclave identity.
var ErrUnsealFailed = errors.New("sgx: unseal failed")

// Seal encrypts-and-authenticates plaintext under the sealing key (AES-GCM,
// random nonce prepended). This mirrors sgx_seal_data.
func Seal(key [32]byte, plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("sgx: seal cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("sgx: seal gcm: %w", err)
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("sgx: seal nonce: %w", err)
	}
	return gcm.Seal(nonce, nonce, plaintext, nil), nil
}

// Unseal reverses Seal, failing if the blob is corrupt or the key is wrong.
func Unseal(key [32]byte, sealed []byte) ([]byte, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("sgx: unseal cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("sgx: unseal gcm: %w", err)
	}
	if len(sealed) < gcm.NonceSize() {
		return nil, ErrUnsealFailed
	}
	pt, err := gcm.Open(nil, sealed[:gcm.NonceSize()], sealed[gcm.NonceSize():], nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnsealFailed, err)
	}
	return pt, nil
}
