package sgx

import (
	"errors"
	"sync"
	"testing"
	"time"

	"elsm/internal/costmodel"
)

func TestPagingWithinEPCNoFaultsOnRevisit(t *testing.T) {
	e := New(Params{EPCSize: 64 * 4096, Cost: costmodel.Zero})
	r := e.Alloc(32 * 4096)
	r.Touch(0, 32*4096)
	first := e.Stats().PageFaults
	if first != 32 {
		t.Fatalf("cold faults = %d, want 32", first)
	}
	r.Touch(0, 32*4096)
	if got := e.Stats().PageFaults; got != first {
		t.Fatalf("re-touch faulted: %d -> %d", first, got)
	}
}

func TestPagingThrashesBeyondEPC(t *testing.T) {
	e := New(Params{EPCSize: 16 * 4096, Cost: costmodel.Zero})
	r := e.Alloc(64 * 4096)
	// Sequentially touch a working set 4x the EPC, twice: the second
	// sweep must fault again (capacity evictions).
	r.Touch(0, 64*4096)
	after1 := e.Stats().PageFaults
	r.Touch(0, 64*4096)
	after2 := e.Stats().PageFaults
	if after2-after1 < 32 {
		t.Fatalf("second sweep faulted only %d times; eviction broken", after2-after1)
	}
	if got := e.Stats().ResidentPages; got > 16 {
		t.Fatalf("resident %d pages > EPC capacity 16", got)
	}
}

func TestFreeReleasesResidency(t *testing.T) {
	e := New(Params{EPCSize: 8 * 4096, Cost: costmodel.Zero})
	r := e.Alloc(8 * 4096)
	r.Touch(0, 8*4096)
	if e.Stats().ResidentPages != 8 {
		t.Fatalf("resident = %d", e.Stats().ResidentPages)
	}
	r.Free()
	if e.Stats().ResidentPages != 0 {
		t.Fatalf("resident after free = %d", e.Stats().ResidentPages)
	}
	if e.Stats().AllocatedBytes != 0 {
		t.Fatalf("allocated after free = %d", e.Stats().AllocatedBytes)
	}
}

func TestOCallECallCounting(t *testing.T) {
	e := NewUnlimited()
	ran := 0
	e.OCall(func() { ran++ })
	e.ECall(func() { ran++ })
	if ran != 2 {
		t.Fatalf("callbacks ran %d times", ran)
	}
	st := e.Stats()
	if st.OCalls != 1 || st.ECalls != 1 {
		t.Fatalf("counted ocalls=%d ecalls=%d", st.OCalls, st.ECalls)
	}
}

func TestWorldSwitchCostIsCharged(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	e := New(Params{EPCSize: 1 << 30, Cost: costmodel.Model{WorldSwitch: 200 * time.Microsecond}})
	start := time.Now()
	for i := 0; i < 10; i++ {
		e.OCall(func() {})
	}
	if el := time.Since(start); el < 2*time.Millisecond {
		t.Fatalf("10 OCalls at 2x200µs took only %v", el)
	}
}

func TestConcurrentTouches(t *testing.T) {
	e := New(Params{EPCSize: 32 * 4096, Cost: costmodel.Zero})
	r := e.Alloc(128 * 4096)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Touch((g*17+i*31)%120*4096, 4096)
			}
		}(g)
	}
	wg.Wait()
	if got := e.Stats().ResidentPages; got > 32 {
		t.Fatalf("resident %d > capacity 32", got)
	}
}

func TestMonotonicCounter(t *testing.T) {
	c := NewMonotonicCounter()
	var s1 [32]byte
	s1[0] = 1
	v1 := c.Increment(s1)
	if v1 != 1 {
		t.Fatalf("first increment = %d", v1)
	}
	var s2 [32]byte
	s2[0] = 2
	v2 := c.Increment(s2)
	if v2 != 2 {
		t.Fatalf("second increment = %d", v2)
	}
	if err := c.Verify(v2, s2); err != nil {
		t.Fatalf("current state rejected: %v", err)
	}
	if err := c.Verify(v1, s1); !errors.Is(err, ErrCounterRollback) {
		t.Fatalf("rollback not detected: %v", err)
	}
	if err := c.Verify(v2, s1); err == nil {
		t.Fatal("wrong state digest at current counter accepted")
	}
	if err := c.Verify(v2+5, s1); err != nil {
		t.Fatalf("future counter value rejected: %v", err)
	}
}

func TestSealUnseal(t *testing.T) {
	p, err := NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	m := Measure([]byte("enclave-code-v1"))
	key := p.SealingKey(m)
	blob, err := Seal(key, []byte("trusted state"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unseal(key, blob)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "trusted state" {
		t.Fatalf("unsealed %q", got)
	}
	// Different enclave identity cannot unseal.
	otherKey := p.SealingKey(Measure([]byte("other-code")))
	if _, err := Unseal(otherKey, blob); !errors.Is(err, ErrUnsealFailed) {
		t.Fatalf("cross-identity unseal: %v", err)
	}
	// Tampered blob fails.
	blob[len(blob)-1] ^= 1
	if _, err := Unseal(key, blob); !errors.Is(err, ErrUnsealFailed) {
		t.Fatalf("tampered blob unsealed: %v", err)
	}
}

func TestAttestationReport(t *testing.T) {
	p, err := NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	m := Measure([]byte("enclave"))
	var data [64]byte
	copy(data[:], "nonce")
	rep := p.CreateReport(m, data)
	if err := p.VerifyReport(rep); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	rep.Data[0] ^= 1
	if err := p.VerifyReport(rep); !errors.Is(err, ErrReportInvalid) {
		t.Fatalf("tampered report accepted: %v", err)
	}
	p2, err := NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	rep2 := p.CreateReport(m, data)
	if err := p2.VerifyReport(rep2); err == nil {
		t.Fatal("cross-platform report accepted")
	}
}

func TestRegionGrow(t *testing.T) {
	e := NewUnlimited()
	r := e.Alloc(100)
	r.Grow(50)
	if r.Size() != 150 {
		t.Fatalf("size = %d", r.Size())
	}
	if e.Stats().AllocatedBytes != 150 {
		t.Fatalf("allocated = %d", e.Stats().AllocatedBytes)
	}
}
