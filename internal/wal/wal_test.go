package wal

import (
	"errors"
	"fmt"
	"testing"

	"elsm/internal/record"
	"elsm/internal/vfs"
)

func testRecords(n int) []record.Record {
	out := make([]record.Record, n)
	for i := range out {
		kind := record.KindSet
		if i%7 == 3 {
			kind = record.KindDelete
		}
		out[i] = record.Record{
			Key:   []byte(fmt.Sprintf("key%04d", i)),
			Ts:    uint64(i + 1),
			Kind:  kind,
			Value: []byte(fmt.Sprintf("value-%d", i)),
		}
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := NewWriter(f)
	recs := testRecords(100)
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	wantDig := w.Digest()

	var got []record.Record
	dig, err := Replay(f, func(rec record.Record) error {
		got = append(got, rec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if dig != wantDig {
		t.Fatalf("replay digest %s != writer digest %s", dig, wantDig)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d of %d", len(got), len(recs))
	}
	for i := range recs {
		if string(got[i].Key) != string(recs[i].Key) || got[i].Ts != recs[i].Ts ||
			got[i].Kind != recs[i].Kind || string(got[i].Value) != string(recs[i].Value) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestReplayEmptyLog(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	dig, err := Replay(f, func(record.Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !dig.IsZero() {
		t.Fatalf("empty log digest %s", dig)
	}
}

func TestCorruptionDetected(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := NewWriter(f)
	for _, rec := range testRecords(10) {
		w.Append(rec)
	}
	// Flip a byte in the middle of the log body.
	if err := fs.Corrupt("wal", f.Size()/2); err != nil {
		t.Fatal(err)
	}
	_, err := Replay(f, func(record.Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestTamperedValueChangesDigest(t *testing.T) {
	// A tamper that keeps CRC valid (rewrite whole record) still changes
	// the digest chain — that is what the enclave compares against.
	fs := vfs.NewMem()
	write := func(val string) (digest [32]byte) {
		f, _ := fs.Create("wal")
		w := NewWriter(f)
		w.Append(record.Record{Key: []byte("k"), Ts: 1, Kind: record.KindSet, Value: []byte(val)})
		return w.Digest()
	}
	if write("honest") == write("forged") {
		t.Fatal("digest chain blind to value change")
	}
}

func TestResumeWriterContinuesChain(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := NewWriter(f)
	recs := testRecords(20)
	for _, rec := range recs[:10] {
		w.Append(rec)
	}
	mid := w.Digest()

	// Simulate restart: replay then resume.
	dig, err := Replay(f, func(record.Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if dig != mid {
		t.Fatal("replay digest != writer digest at restart point")
	}
	w2 := ResumeWriter(f, dig)
	for _, rec := range recs[10:] {
		w2.Append(rec)
	}
	final, err := Replay(f, func(record.Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if final != w2.Digest() {
		t.Fatal("resumed chain diverged from full replay")
	}
}

func TestReplayTruncatedTail(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := NewWriter(f)
	for _, rec := range testRecords(5) {
		w.Append(rec)
	}
	// Write a partial header at the end (torn write).
	f.Append([]byte{0x01, 0x02, 0x03})
	_, err := Replay(f, func(record.Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn tail not flagged: %v", err)
	}
}

func TestReplayCallbackError(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := NewWriter(f)
	for _, rec := range testRecords(5) {
		w.Append(rec)
	}
	sentinel := errors.New("stop")
	_, err := Replay(f, func(record.Record) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("callback error not propagated: %v", err)
	}
}
