package wal

import (
	"errors"
	"fmt"
	"testing"

	"elsm/internal/hashutil"
	"elsm/internal/record"
	"elsm/internal/vfs"
)

func testRecords(n int) []record.Record {
	out := make([]record.Record, n)
	for i := range out {
		kind := record.KindSet
		if i%7 == 3 {
			kind = record.KindDelete
		}
		out[i] = record.Record{
			Key:   []byte(fmt.Sprintf("key%04d", i)),
			Ts:    uint64(i + 1),
			Kind:  kind,
			Value: []byte(fmt.Sprintf("value-%d", i)),
		}
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := NewWriter(f)
	recs := testRecords(100)
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	wantDig := w.Digest()

	var got []record.Record
	info, err := Replay(f, func(rec record.Record) error {
		got = append(got, rec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Digest != wantDig {
		t.Fatalf("replay digest %s != writer digest %s", info.Digest, wantDig)
	}
	if len(got) != len(recs) || info.Records != len(recs) {
		t.Fatalf("replayed %d (info %d) of %d", len(got), info.Records, len(recs))
	}
	if info.TornRecords != 0 {
		t.Fatalf("clean log reported %d torn records", info.TornRecords)
	}
	if info.CommittedSize != f.Size() {
		t.Fatalf("committed size %d != file size %d", info.CommittedSize, f.Size())
	}
	for i := range recs {
		if string(got[i].Key) != string(recs[i].Key) || got[i].Ts != recs[i].Ts ||
			got[i].Kind != recs[i].Kind || string(got[i].Value) != string(recs[i].Value) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestReplayEmptyLog(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	info, err := Replay(f, func(record.Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !info.Digest.IsZero() {
		t.Fatalf("empty log digest %s", info.Digest)
	}
}

func TestCorruptionDetected(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := NewWriter(f)
	for _, rec := range testRecords(10) {
		w.Append(rec)
	}
	// Flip a byte in the middle of the log body.
	if err := fs.Corrupt("wal", f.Size()/2); err != nil {
		t.Fatal(err)
	}
	_, err := Replay(f, func(record.Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestTamperedValueChangesDigest(t *testing.T) {
	// A tamper that keeps CRC valid (rewrite whole record) still changes
	// the digest chain — that is what the enclave compares against.
	fs := vfs.NewMem()
	write := func(val string) (digest [32]byte) {
		f, _ := fs.Create("wal")
		w := NewWriter(f)
		w.Append(record.Record{Key: []byte("k"), Ts: 1, Kind: record.KindSet, Value: []byte(val)})
		return w.Digest()
	}
	if write("honest") == write("forged") {
		t.Fatal("digest chain blind to value change")
	}
}

func TestResumeWriterContinuesChain(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := NewWriter(f)
	recs := testRecords(20)
	for _, rec := range recs[:10] {
		w.Append(rec)
	}
	mid := w.Digest()

	// Simulate restart: replay then resume.
	info, err := Replay(f, func(record.Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if info.Digest != mid {
		t.Fatal("replay digest != writer digest at restart point")
	}
	w2 := ResumeWriter(f, info.Digest)
	for _, rec := range recs[10:] {
		w2.Append(rec)
	}
	final, err := Replay(f, func(record.Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if final.Digest != w2.Digest() {
		t.Fatal("resumed chain diverged from full replay")
	}
}

func TestGroupAppendReplaysAsOneGroup(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := NewWriter(f)
	recs := testRecords(9)
	if err := w.AppendBatch(recs[:4]); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch(recs[4:]); err != nil {
		t.Fatal(err)
	}
	info, err := Replay(f, func(record.Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 9 || info.TornRecords != 0 {
		t.Fatalf("replay = %+v, want 9 committed records", info)
	}
	if info.Digest != w.Digest() {
		t.Fatal("grouped replay digest != writer digest")
	}
}

// TestTornTailDroppedAtGroupBoundary is the crash contract: a tail cut
// anywhere inside the final group — mid-frame or between whole record
// frames but before the COMMIT marker — silently discards that whole group
// and nothing before it, so recovery always sees a prefix of whole commits.
func TestTornTailDroppedAtGroupBoundary(t *testing.T) {
	build := func() (*vfs.MemFS, vfs.File, *Writer, int64) {
		fs := vfs.NewMem()
		f, _ := fs.Create("wal")
		w := NewWriter(f)
		recs := testRecords(8)
		if err := w.AppendBatch(recs[:5]); err != nil {
			t.Fatal(err)
		}
		committed := f.Size()
		if err := w.AppendBatch(recs[5:]); err != nil {
			t.Fatal(err)
		}
		return fs, f, w, committed
	}

	_, f, _, committed := build()
	full := f.Size()
	// Cut at every byte boundary inside the second group.
	for cut := committed + 1; cut < full; cut += 7 {
		_, f2, _, _ := build()
		if err := f2.Truncate(cut); err != nil {
			t.Fatal(err)
		}
		var n int
		info, err := Replay(f2, func(record.Record) error { n++; return nil })
		if err != nil {
			t.Fatalf("cut at %d: torn tail must not error: %v", cut, err)
		}
		if n != 5 || info.Records != 5 {
			t.Fatalf("cut at %d: replayed %d records, want the 5 committed", cut, n)
		}
		if info.CommittedSize != committed {
			t.Fatalf("cut at %d: committed size %d, want %d", cut, info.CommittedSize, committed)
		}
	}
}

func TestMarkerCountMismatchIsCorruption(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := NewWriter(f)
	// Hand-build a group whose marker over-declares its size: two record
	// frames followed by a marker claiming three. A host that drops a
	// record from inside a group (keeping frames CRC-valid) produces
	// exactly this shape.
	recs := testRecords(2)
	var buf []byte
	for _, rec := range recs {
		buf = encode(buf, rec)
	}
	buf = encodeMarker(buf, 3)
	if _, err := f.Append(buf); err != nil {
		t.Fatal(err)
	}
	_, err := Replay(f, func(record.Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("marker/group mismatch not flagged: %v", err)
	}
	_ = w
}

func TestReplayCallbackError(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := NewWriter(f)
	for _, rec := range testRecords(5) {
		w.Append(rec)
	}
	sentinel := errors.New("stop")
	_, err := Replay(f, func(record.Record) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("callback error not propagated: %v", err)
	}
}

// TestReplayFromOffsetMidLog replays a log suffix from an arbitrary group
// boundary in the middle of the log — the replication tail path — and
// checks it sees exactly the later groups, chained onto the prefix digest.
func TestReplayFromOffsetMidLog(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := NewWriter(f)
	recs := testRecords(90)
	// Nine groups of ten; capture the boundary after group four.
	var midOff int64
	var midDig hashutil.Hash
	var midCount int
	for g := 0; g < 9; g++ {
		if err := w.AppendBatch(recs[g*10 : (g+1)*10]); err != nil {
			t.Fatal(err)
		}
		if g == 3 {
			midOff = f.Size()
			midDig = w.Digest()
			midCount = 40
		}
	}

	var got []record.Record
	info, err := ReplayFromOffset(f, midOff, midDig, func(rec record.Record) error {
		got = append(got, rec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs)-midCount {
		t.Fatalf("suffix replay saw %d records, want %d", len(got), len(recs)-midCount)
	}
	for i, rec := range got {
		want := recs[midCount+i]
		if string(rec.Key) != string(want.Key) || rec.Ts != want.Ts {
			t.Fatalf("suffix record %d: got %s@%d want %s@%d", i, rec.Key, rec.Ts, want.Key, want.Ts)
		}
	}
	if info.Digest != w.Digest() {
		t.Fatalf("suffix digest %s != writer digest %s", info.Digest, w.Digest())
	}
	if info.CommittedSize != f.Size() {
		t.Fatalf("committed size %d != file size %d", info.CommittedSize, f.Size())
	}

	// The same offset with a different base digest yields a different
	// final digest: the chain binds the suffix to its exact prefix, so a
	// caller comparing against the attested digest detects the swap.
	wrong, err := ReplayFromOffset(f, midOff, hashutil.Hash{}, func(record.Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if wrong.Digest == w.Digest() {
		t.Fatal("suffix digest ignores the prefix it chains from")
	}

	// A tampered byte inside the suffix is corruption, not a torn tail.
	raw := append([]byte(nil), f.Bytes()...)
	raw[midOff+20] ^= 0x01
	tf, _ := fs.Create("tampered")
	if _, err := tf.WriteAt(raw, 0); err != nil {
		t.Fatal(err)
	}
	_, err = ReplayFromOffset(tf, midOff, midDig, func(record.Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered suffix: %v, want ErrCorrupt", err)
	}

	// An offset past the end is rejected outright.
	if _, err := ReplayFromOffset(f, f.Size()+1, midDig, func(record.Record) error { return nil }); err == nil {
		t.Fatal("offset past EOF accepted")
	}
}
