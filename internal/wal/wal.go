// Package wal implements the write-ahead log of the LSM store. The log file
// itself lives in the untrusted world (outside the enclave, §5.3 step w3);
// the enclave keeps only a running digest chain over appended records
// (step w1: dig' = H(dig ‖ record)), so replay after a crash can be
// verified — a host that drops, reorders, or alters WAL entries produces a
// digest mismatch.
//
// Record framing: [crc32 u32][len u32][kind u8][keyLen u32][key][ts u64][valLen u32][val]
//
// Group commit: every append — single-record Append or grouped AppendBatch —
// is terminated by a COMMIT marker frame ([crc32 u32][len u32][0xF0][count
// u32]) carrying the group's record count. Replay delivers only records of
// complete (marker-terminated) groups: a crash that tears the tail of the
// log loses at most the uncommitted final group, never a suffix of a group,
// so recovery always observes a prefix of whole commits. Markers are
// framing-only — they do not enter the digest chain, which remains a
// per-record hash chain over the committed records.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"elsm/internal/hashutil"
	"elsm/internal/record"
	"elsm/internal/vfs"
)

// Corruption errors.
var (
	ErrCorrupt        = errors.New("wal: corrupt record")
	ErrDigestMismatch = errors.New("wal: digest chain mismatch (log tampered or truncated)")
)

// commitMarker is the frame-kind byte of a group COMMIT marker. It is
// disjoint from every record.Kind, so record frames and marker frames are
// unambiguous.
const commitMarker = 0xF0

// Writer appends records to a WAL file while maintaining the enclave-side
// digest chain. Not safe for concurrent use (the LSM store serializes
// writes).
type Writer struct {
	f   vfs.File
	dig hashutil.Hash
	buf []byte
}

// NewWriter starts a fresh log on f with a zero digest.
func NewWriter(f vfs.File) *Writer {
	return &Writer{f: f}
}

// ResumeWriter continues appending to an existing log whose replayed digest
// chain ended at dig (crash recovery).
func ResumeWriter(f vfs.File, dig hashutil.Hash) *Writer {
	return &Writer{f: f, dig: dig}
}

// encode appends the framed record to dst.
func encode(dst []byte, rec record.Record) []byte {
	body := make([]byte, 0, 1+4+len(rec.Key)+8+4+len(rec.Value))
	body = append(body, byte(rec.Kind))
	body = binary.BigEndian.AppendUint32(body, uint32(len(rec.Key)))
	body = append(body, rec.Key...)
	body = binary.BigEndian.AppendUint64(body, rec.Ts)
	body = binary.BigEndian.AppendUint32(body, uint32(len(rec.Value)))
	body = append(body, rec.Value...)

	dst = binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(body))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(body)))
	return append(dst, body...)
}

// encodeMarker appends a COMMIT marker frame declaring an n-record group.
func encodeMarker(dst []byte, n int) []byte {
	body := make([]byte, 0, 5)
	body = append(body, commitMarker)
	body = binary.BigEndian.AppendUint32(body, uint32(n))
	dst = binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(body))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(body)))
	return append(dst, body...)
}

// Append writes one record as a single-record commit group.
func (w *Writer) Append(rec record.Record) error {
	return w.AppendBatch([]record.Record{rec})
}

// AppendBatch writes a group of records plus its COMMIT marker as one
// contiguous file append, advancing the digest chain per record. The whole
// group reaches the untrusted file in a single write and replay only
// accepts marker-terminated groups, so a crash (or a truncating host) can
// only remove whole groups from the tail — and the digest chain exposes
// anything subtler as tampering.
func (w *Writer) AppendBatch(recs []record.Record) error {
	if len(recs) == 0 {
		return nil
	}
	w.buf = w.buf[:0]
	for i := range recs {
		w.buf = encode(w.buf, recs[i])
	}
	w.buf = encodeMarker(w.buf, len(recs))
	if _, err := w.f.Append(w.buf); err != nil {
		return fmt.Errorf("wal: append batch: %w", err)
	}
	for i := range recs {
		w.dig = hashutil.WALLink(w.dig, byte(recs[i].Kind), recs[i].Key, recs[i].Ts, recs[i].Value)
	}
	return nil
}

// Digest returns the current chain digest. The enclave stores this value;
// the log file itself is untrusted.
func (w *Writer) Digest() hashutil.Hash { return w.dig }

// Sync flushes the log to stable storage.
func (w *Writer) Sync() error { return w.f.Sync() }

// Close closes the underlying file.
func (w *Writer) Close() error { return w.f.Close() }

// ReplayInfo reports what a group-aware replay recovered.
type ReplayInfo struct {
	// Digest is the recomputed chain over the delivered (committed)
	// records. Callers compare it with the trusted value saved in the
	// enclave; a mismatch means the untrusted host tampered with the log.
	Digest hashutil.Hash
	// Records counts delivered records.
	Records int
	// CommittedSize is the byte offset just past the last complete group's
	// COMMIT marker — the length recovery should truncate the log to.
	CommittedSize int64
	// TornRecords counts well-formed records discarded because their group
	// never reached its COMMIT marker (a crash mid-group-append).
	TornRecords int
}

// Replay reads the log in order, calling fn for each record of each
// complete (marker-terminated) commit group. An incomplete tail — a torn
// frame at EOF, or trailing record frames with no COMMIT marker — is NOT an
// error: it is the signature of a crash mid-append, and is reported via
// TornRecords/CommittedSize so the caller can truncate it away. Structural
// damage before the tail (a CRC mismatch, a marker whose count disagrees
// with its group) still fails with ErrCorrupt: that is tampering, not a
// crash artifact.
func Replay(f vfs.File, fn func(record.Record) error) (ReplayInfo, error) {
	return ReplayFrom(f, hashutil.Zero, fn)
}

// ReplayFrom is Replay with the digest chain seeded at start instead of
// zero. Recovery uses it to chain the digest across a sequence of log files
// (frozen logs awaiting a flush install, then the active log): replaying
// file N+1 from file N's final digest yields the same chain as one
// concatenated log.
func ReplayFrom(f vfs.File, start hashutil.Hash, fn func(record.Record) error) (ReplayInfo, error) {
	return ReplayFromOffset(f, 0, start, fn)
}

// ReplayFromOffset replays the log starting at byte offset off, which must
// be a group boundary (0 or a prior replay's CommittedSize). Replication
// tailing uses it to resume mid-log: a follower that already applied the
// groups before off re-reads only the suffix, seeding the digest chain with
// the trusted value reached at off. CommittedSize in the returned info is
// absolute (an offset into the file, not into the suffix).
func ReplayFromOffset(f vfs.File, off int64, start hashutil.Hash, fn func(record.Record) error) (ReplayInfo, error) {
	var info ReplayInfo
	info.Digest = start
	info.CommittedSize = off
	data := f.Bytes()
	if data != nil {
		if off > int64(len(data)) {
			return info, fmt.Errorf("wal: replay offset %d beyond log size %d", off, len(data))
		}
		data = data[off:]
	} else {
		size := f.Size()
		if off > size {
			return info, fmt.Errorf("wal: replay offset %d beyond log size %d", off, size)
		}
		data = make([]byte, size-off)
		if _, err := f.ReadAt(data, off); err != nil && len(data) > 0 {
			return info, fmt.Errorf("wal: read: %w", err)
		}
	}
	rel, err := ReplayBytes(data, start, fn)
	rel.CommittedSize += off
	return rel, err
}

// ReplayBytes is the byte-slice core of replay: it walks data — an
// in-memory copy of a log (or a group-aligned suffix of one) — delivering
// records of complete commit groups exactly as Replay does over a file.
// Checkpoint import uses it to verify shipped WAL bytes against the
// attested digest chain without materializing a file.
func ReplayBytes(data []byte, start hashutil.Hash, fn func(record.Record) error) (ReplayInfo, error) {
	var info ReplayInfo
	info.Digest = start
	var pending []record.Record
	off := 0
	for off < len(data) {
		if off+8 > len(data) {
			break // torn header at EOF: crash artifact
		}
		crc := binary.BigEndian.Uint32(data[off : off+4])
		n := int(binary.BigEndian.Uint32(data[off+4 : off+8]))
		if off+8+n > len(data) {
			break // torn body at EOF: crash artifact
		}
		body := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(body) != crc {
			return info, fmt.Errorf("%w: crc mismatch at %d", ErrCorrupt, off)
		}
		off += 8 + n
		if len(body) == 5 && body[0] == commitMarker {
			count := int(binary.BigEndian.Uint32(body[1:5]))
			if count != len(pending) {
				return info, fmt.Errorf("%w: commit marker declares %d records, group has %d",
					ErrCorrupt, count, len(pending))
			}
			for _, rec := range pending {
				if err := fn(rec); err != nil {
					return info, err
				}
				info.Digest = hashutil.WALLink(info.Digest, byte(rec.Kind), rec.Key, rec.Ts, rec.Value)
				info.Records++
			}
			pending = pending[:0]
			info.CommittedSize = int64(off)
			continue
		}
		rec, err := decodeBody(body)
		if err != nil {
			return info, err
		}
		pending = append(pending, rec)
	}
	info.TornRecords = len(pending)
	return info, nil
}

func decodeBody(body []byte) (record.Record, error) {
	var rec record.Record
	if len(body) < 1+4 {
		return rec, fmt.Errorf("%w: short body", ErrCorrupt)
	}
	rec.Kind = record.Kind(body[0])
	if rec.Kind != record.KindSet && rec.Kind != record.KindDelete {
		return rec, fmt.Errorf("%w: bad kind %d", ErrCorrupt, body[0])
	}
	p := 1
	klen := int(binary.BigEndian.Uint32(body[p : p+4]))
	p += 4
	if p+klen+8+4 > len(body) {
		return rec, fmt.Errorf("%w: bad key length %d", ErrCorrupt, klen)
	}
	rec.Key = append([]byte(nil), body[p:p+klen]...)
	p += klen
	rec.Ts = binary.BigEndian.Uint64(body[p : p+8])
	p += 8
	vlen := int(binary.BigEndian.Uint32(body[p : p+4]))
	p += 4
	if p+vlen != len(body) {
		return rec, fmt.Errorf("%w: bad value length %d", ErrCorrupt, vlen)
	}
	rec.Value = append([]byte(nil), body[p:p+vlen]...)
	return rec, nil
}
