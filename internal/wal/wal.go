// Package wal implements the write-ahead log of the LSM store. The log file
// itself lives in the untrusted world (outside the enclave, §5.3 step w3);
// the enclave keeps only a running digest chain over appended records
// (step w1: dig' = H(dig ‖ record)), so replay after a crash can be
// verified — a host that drops, reorders, or alters WAL entries produces a
// digest mismatch.
//
// Record framing: [crc32 u32][kind u8][keyLen u32][key][ts u64][valLen u32][val]
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"elsm/internal/hashutil"
	"elsm/internal/record"
	"elsm/internal/vfs"
)

// Corruption errors.
var (
	ErrCorrupt        = errors.New("wal: corrupt record")
	ErrDigestMismatch = errors.New("wal: digest chain mismatch (log tampered or truncated)")
)

// Writer appends records to a WAL file while maintaining the enclave-side
// digest chain. Not safe for concurrent use (the LSM store serializes
// writes).
type Writer struct {
	f   vfs.File
	dig hashutil.Hash
	buf []byte
}

// NewWriter starts a fresh log on f with a zero digest.
func NewWriter(f vfs.File) *Writer {
	return &Writer{f: f}
}

// ResumeWriter continues appending to an existing log whose replayed digest
// chain ended at dig (crash recovery).
func ResumeWriter(f vfs.File, dig hashutil.Hash) *Writer {
	return &Writer{f: f, dig: dig}
}

// encode appends the framed record to dst.
func encode(dst []byte, rec record.Record) []byte {
	body := make([]byte, 0, 1+4+len(rec.Key)+8+4+len(rec.Value))
	body = append(body, byte(rec.Kind))
	body = binary.BigEndian.AppendUint32(body, uint32(len(rec.Key)))
	body = append(body, rec.Key...)
	body = binary.BigEndian.AppendUint64(body, rec.Ts)
	body = binary.BigEndian.AppendUint32(body, uint32(len(rec.Value)))
	body = append(body, rec.Value...)

	dst = binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(body))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(body)))
	return append(dst, body...)
}

// Append writes one record to the log and advances the digest chain.
func (w *Writer) Append(rec record.Record) error {
	w.buf = encode(w.buf[:0], rec)
	if _, err := w.f.Append(w.buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	w.dig = hashutil.WALLink(w.dig, byte(rec.Kind), rec.Key, rec.Ts, rec.Value)
	return nil
}

// AppendBatch writes a group of records as one contiguous file append,
// advancing the digest chain per record. Compared with per-record Append
// calls, the whole group reaches the untrusted file in a single write, so a
// crash (or a truncating host) can only cut the group at a frame boundary —
// which the digest chain then exposes as an unverified suffix.
func (w *Writer) AppendBatch(recs []record.Record) error {
	if len(recs) == 0 {
		return nil
	}
	w.buf = w.buf[:0]
	for i := range recs {
		w.buf = encode(w.buf, recs[i])
	}
	if _, err := w.f.Append(w.buf); err != nil {
		return fmt.Errorf("wal: append batch: %w", err)
	}
	for i := range recs {
		w.dig = hashutil.WALLink(w.dig, byte(recs[i].Kind), recs[i].Key, recs[i].Ts, recs[i].Value)
	}
	return nil
}

// Digest returns the current chain digest. The enclave stores this value;
// the log file itself is untrusted.
func (w *Writer) Digest() hashutil.Hash { return w.dig }

// Sync flushes the log to stable storage.
func (w *Writer) Sync() error { return w.f.Sync() }

// Close closes the underlying file.
func (w *Writer) Close() error { return w.f.Close() }

// Replay reads every record from f in order, calling fn for each, and
// returns the recomputed digest chain. Callers compare the returned digest
// with the trusted value saved in the enclave; a mismatch means the
// untrusted host tampered with the log.
func Replay(f vfs.File, fn func(record.Record) error) (hashutil.Hash, error) {
	var dig hashutil.Hash
	data := f.Bytes()
	if data == nil {
		data = make([]byte, f.Size())
		if _, err := f.ReadAt(data, 0); err != nil && len(data) > 0 {
			return dig, fmt.Errorf("wal: read: %w", err)
		}
	}
	off := 0
	for off < len(data) {
		if off+8 > len(data) {
			return dig, fmt.Errorf("%w: truncated header at %d", ErrCorrupt, off)
		}
		crc := binary.BigEndian.Uint32(data[off : off+4])
		n := int(binary.BigEndian.Uint32(data[off+4 : off+8]))
		off += 8
		if off+n > len(data) {
			return dig, fmt.Errorf("%w: truncated body at %d", ErrCorrupt, off)
		}
		body := data[off : off+n]
		off += n
		if crc32.ChecksumIEEE(body) != crc {
			return dig, fmt.Errorf("%w: crc mismatch at %d", ErrCorrupt, off-n)
		}
		rec, err := decodeBody(body)
		if err != nil {
			return dig, err
		}
		if err := fn(rec); err != nil {
			return dig, err
		}
		dig = hashutil.WALLink(dig, byte(rec.Kind), rec.Key, rec.Ts, rec.Value)
	}
	return dig, nil
}

func decodeBody(body []byte) (record.Record, error) {
	var rec record.Record
	if len(body) < 1+4 {
		return rec, fmt.Errorf("%w: short body", ErrCorrupt)
	}
	rec.Kind = record.Kind(body[0])
	if rec.Kind != record.KindSet && rec.Kind != record.KindDelete {
		return rec, fmt.Errorf("%w: bad kind %d", ErrCorrupt, body[0])
	}
	p := 1
	klen := int(binary.BigEndian.Uint32(body[p : p+4]))
	p += 4
	if p+klen+8+4 > len(body) {
		return rec, fmt.Errorf("%w: bad key length %d", ErrCorrupt, klen)
	}
	rec.Key = append([]byte(nil), body[p:p+klen]...)
	p += klen
	rec.Ts = binary.BigEndian.Uint64(body[p : p+8])
	p += 8
	vlen := int(binary.BigEndian.Uint32(body[p : p+4]))
	p += 4
	if p+vlen != len(body) {
		return rec, fmt.Errorf("%w: bad value length %d", ErrCorrupt, vlen)
	}
	rec.Value = append([]byte(nil), body[p:p+vlen]...)
	return rec, nil
}
