// Package blockcache implements the LSM read buffer: an LRU cache of
// decoded SSTable blocks. Its placement is the central design variable of
// the paper (§4.2): eLSM-P1 puts the buffer inside the enclave (suffering
// MEE overhead and enclave paging once it outgrows the EPC), while eLSM-P2
// places it outside (untrusted memory, directly accessible by the enclave,
// cheap hits).
//
// When placed inside, the cache owns an sgx.Region of its capacity; each
// cached block is assigned a stable virtual offset in the region, and every
// hit touches those pages — so a cache larger than the EPC faults on most
// accesses, exactly the behaviour behind Figure 2 and Figure 6c.
package blockcache

import (
	"container/list"
	"sync"

	"elsm/internal/sgx"
)

// Key identifies a cached block.
type Key struct {
	FileNum  uint64
	BlockIdx int
}

// Cache is an LRU block cache. Safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int
	used     int
	entries  map[Key]*list.Element
	lru      *list.List // front = most recent

	region  *sgx.Region // non-nil when placed inside the enclave
	nextOff int

	hits, misses uint64
}

type entry struct {
	key  Key
	data []byte
	off  int // virtual offset in the enclave region (inside placement)
}

// New creates a cache of the given capacity in bytes. If enclave is non-nil
// the cache is placed inside the enclave (P1); otherwise it lives in
// untrusted memory (P2).
func New(capacity int, enclave *sgx.Enclave) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	c := &Cache{
		capacity: capacity,
		entries:  make(map[Key]*list.Element),
		lru:      list.New(),
	}
	if enclave != nil {
		c.region = enclave.Alloc(capacity)
	}
	return c
}

// Inside reports whether the cache is placed inside the enclave.
func (c *Cache) Inside() bool { return c.region != nil }

// Capacity returns the configured capacity in bytes.
func (c *Cache) Capacity() int { return c.capacity }

// Get returns the cached block, charging the in-enclave access cost when
// the cache is inside the enclave (MEE + paging).
func (c *Cache) Get(k Key) ([]byte, bool) {
	c.mu.Lock()
	el, ok := c.entries[k]
	if !ok {
		c.misses++
		c.mu.Unlock()
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	e := el.Value.(*entry)
	data, off := e.data, e.off
	region := c.region
	c.mu.Unlock()

	if region != nil {
		region.Touch(off, len(data))
	}
	return data, true
}

// Put inserts a block, evicting LRU entries to stay within capacity. Inside
// the enclave the insert is charged as a boundary copy-in (the second data
// copy S1 of §4.2).
func (c *Cache) Put(k Key, data []byte) {
	c.mu.Lock()
	if el, ok := c.entries[k]; ok {
		e := el.Value.(*entry)
		c.used += len(data) - len(e.data)
		e.data = data
		c.lru.MoveToFront(el)
	} else {
		if c.nextOff+len(data) > c.capacity {
			c.nextOff = 0
		}
		e := &entry{key: k, data: data, off: c.nextOff}
		c.nextOff += len(data)
		c.entries[k] = c.lru.PushFront(e)
		c.used += len(data)
	}
	for c.used > c.capacity && c.lru.Len() > 1 {
		back := c.lru.Back()
		e := back.Value.(*entry)
		c.used -= len(e.data)
		delete(c.entries, e.key)
		c.lru.Remove(back)
	}
	off := c.entries[k].Value.(*entry).off
	region := c.region
	c.mu.Unlock()

	if region != nil {
		region.CopyIn(off, len(data))
	}
}

// DropFile evicts all blocks of the given file (called when compaction
// deletes the file).
func (c *Cache) DropFile(fileNum uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, el := range c.entries {
		if k.FileNum == fileNum {
			e := el.Value.(*entry)
			c.used -= len(e.data)
			delete(c.entries, k)
			c.lru.Remove(el)
		}
	}
}

// Stats returns (hits, misses, usedBytes).
func (c *Cache) Stats() (uint64, uint64, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.used
}

// Release frees the enclave region, if any.
func (c *Cache) Release() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.region != nil {
		c.region.Free()
		c.region = nil
	}
}
