package blockcache

import (
	"sync"
	"testing"

	"elsm/internal/costmodel"
	"elsm/internal/sgx"
)

func TestPutGetOutside(t *testing.T) {
	c := New(1<<20, nil)
	if c.Inside() {
		t.Fatal("nil enclave produced inside placement")
	}
	k := Key{FileNum: 1, BlockIdx: 2}
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, []byte("block data"))
	data, ok := c.Get(k)
	if !ok || string(data) != "block data" {
		t.Fatalf("get = %q, %v", data, ok)
	}
	hits, misses, used := c.Stats()
	if hits != 1 || misses != 1 || used != 10 {
		t.Fatalf("stats = %d %d %d", hits, misses, used)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(100, nil)
	blk := make([]byte, 40)
	c.Put(Key{1, 0}, blk)
	c.Put(Key{1, 1}, blk)
	// Touch block 0 so block 1 is LRU.
	c.Get(Key{1, 0})
	c.Put(Key{1, 2}, blk) // exceeds 100: evict LRU (block 1)
	if _, ok := c.Get(Key{1, 1}); ok {
		t.Fatal("LRU block survived eviction")
	}
	if _, ok := c.Get(Key{1, 0}); !ok {
		t.Fatal("recently used block evicted")
	}
	if _, ok := c.Get(Key{1, 2}); !ok {
		t.Fatal("new block missing")
	}
}

func TestDropFile(t *testing.T) {
	c := New(1<<20, nil)
	c.Put(Key{1, 0}, []byte("a"))
	c.Put(Key{1, 1}, []byte("b"))
	c.Put(Key{2, 0}, []byte("c"))
	c.DropFile(1)
	if _, ok := c.Get(Key{1, 0}); ok {
		t.Fatal("dropped file's block still cached")
	}
	if _, ok := c.Get(Key{2, 0}); !ok {
		t.Fatal("unrelated file's block dropped")
	}
}

func TestInsidePlacementChargesEnclave(t *testing.T) {
	e := sgx.New(sgx.Params{EPCSize: 8 * 4096, Cost: costmodel.Zero})
	c := New(64*4096, e) // cache 8x the EPC
	if !c.Inside() {
		t.Fatal("placement not inside")
	}
	blk := make([]byte, 4096)
	for i := 0; i < 32; i++ {
		c.Put(Key{1, i}, blk)
	}
	before := e.Stats().PageFaults
	// Hitting blocks spread across a region larger than the EPC must
	// fault (the Figure 2 blow-up).
	for i := 0; i < 32; i++ {
		c.Get(Key{1, i})
	}
	if after := e.Stats().PageFaults; after <= before {
		t.Fatalf("no paging on oversized in-enclave cache (%d -> %d)", before, after)
	}
	c.Release()
}

func TestUpdateExistingKey(t *testing.T) {
	c := New(1<<20, nil)
	c.Put(Key{1, 0}, []byte("v1"))
	c.Put(Key{1, 0}, []byte("v2-longer"))
	data, ok := c.Get(Key{1, 0})
	if !ok || string(data) != "v2-longer" {
		t.Fatalf("get = %q", data)
	}
	_, _, used := c.Stats()
	if used != 9 {
		t.Fatalf("used = %d", used)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1<<16, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			blk := make([]byte, 128)
			for i := 0; i < 500; i++ {
				k := Key{FileNum: uint64(g % 3), BlockIdx: i % 50}
				if _, ok := c.Get(k); !ok {
					c.Put(k, blk)
				}
			}
		}(g)
	}
	wg.Wait()
}
