package ctlog

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"elsm/internal/core"
)

func testServer(t *testing.T) (*Server, *core.Store) {
	t.Helper()
	kv, err := core.Open(core.Config{
		MemtableSize:  8 << 10,
		TableFileSize: 8 << 10,
		LevelBase:     32 << 10,
		BlockSize:     1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewServer(kv), kv
}

func mkCert(host string, serial uint64) Certificate {
	return Certificate{
		Hostname: host,
		Serial:   serial,
		Issuer:   "Test CA",
		NotAfter: time.Date(2027, 1, 1, 0, 0, 0, 0, time.UTC),
		DER:      []byte(fmt.Sprintf("der-%s-%d", host, serial)),
	}
}

func TestAddChainAndAudit(t *testing.T) {
	srv, kv := testServer(t)
	defer kv.Close()
	cert := mkCert("www.example.com", 1)
	ts, err := srv.AddChain(cert)
	if err != nil || ts == 0 {
		t.Fatalf("add chain: ts=%d err=%v", ts, err)
	}
	if err := srv.Audit(cert); err != nil {
		t.Fatalf("audit of logged cert: %v", err)
	}
	// Auditing an unlogged certificate fails.
	if err := srv.Audit(mkCert("rogue.example.com", 2)); !errors.Is(err, ErrNotLogged) {
		t.Fatalf("unlogged audit: %v", err)
	}
	// A different certificate for the same hostname fails (mismatch).
	impostor := mkCert("www.example.com", 99)
	if err := srv.Audit(impostor); !errors.Is(err, ErrMismatch) {
		t.Fatalf("impostor audit: %v", err)
	}
}

func TestRotationFreshness(t *testing.T) {
	srv, kv := testServer(t)
	defer kv.Close()
	old := mkCert("site.example.com", 1)
	srv.AddChain(old)
	renewed := mkCert("site.example.com", 2)
	srv.AddChain(renewed)
	// The old certificate must no longer audit — freshness guarantees the
	// auditor sees the rotation.
	if err := srv.Audit(old); !errors.Is(err, ErrMismatch) {
		t.Fatalf("stale cert audited: %v", err)
	}
	if err := srv.Audit(renewed); err != nil {
		t.Fatalf("renewed cert rejected: %v", err)
	}
}

func TestRevocation(t *testing.T) {
	srv, kv := testServer(t)
	defer kv.Close()
	cert := mkCert("revoked.example.com", 7)
	srv.AddChain(cert)
	if _, err := srv.Revoke("revoked.example.com"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Audit(cert); !errors.Is(err, ErrRevoked) {
		t.Fatalf("revoked cert audited: %v", err)
	}
	if _, err := srv.Revoke("never-logged.example.com"); !errors.Is(err, ErrNotLogged) {
		t.Fatalf("revoking unlogged: %v", err)
	}
}

func TestMonitorDomain(t *testing.T) {
	srv, kv := testServer(t)
	defer kv.Close()
	// Log certificates for two domains interleaved.
	for i := 0; i < 30; i++ {
		srv.AddChain(mkCert(fmt.Sprintf("example.com/host%02d", i), uint64(i)))
		srv.AddChain(mkCert(fmt.Sprintf("other.org/host%02d", i), uint64(100+i)))
	}
	rep, err := srv.MonitorDomain("example.com/")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 30 {
		t.Fatalf("monitor saw %d entries, want 30", len(rep.Entries))
	}
	for host := range rep.Entries {
		if host[:12] != "example.com/" {
			t.Fatalf("foreign host in report: %q", host)
		}
	}
	// A domain with no certificates yields a verified empty report.
	rep, err = srv.MonitorDomain("unused.net/")
	if err != nil || len(rep.Entries) != 0 {
		t.Fatalf("empty domain report: %d err=%v", len(rep.Entries), err)
	}
}

func TestIntensiveSubmissionStream(t *testing.T) {
	srv, kv := testServer(t)
	defer kv.Close()
	// The §3.1 workload: a large stream of small writes, then random
	// audits — all through flushes and compactions.
	for i := 0; i < 2000; i++ {
		if _, err := srv.AddChain(mkCert(fmt.Sprintf("bulk%04d.example.com", i), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if kv.Engine().Stats().Flushes == 0 {
		t.Fatal("stream did not exercise flush")
	}
	for _, i := range []int{0, 999, 1999} {
		if err := srv.Audit(mkCert(fmt.Sprintf("bulk%04d.example.com", i), uint64(i))); err != nil {
			t.Fatalf("audit %d: %v", i, err)
		}
	}
}
