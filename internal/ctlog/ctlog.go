// Package ctlog implements the paper's case study (§5.7): a Certificate
// Transparency log server backed by eLSM. Certificates are stored keyed by
// hostname with the certificate hash as the value; the store's verified
// freshness is exactly the property CT needs ("returning a revoked
// certificate may connect a user to an impersonator", §3.1).
//
// Three CT roles are modelled:
//
//   - the log server ingests certificate submissions (an intensive small-
//     write stream) and serves authenticated lookups;
//   - a log auditor validates a single certificate against the log
//     (a verified point GET);
//   - a log monitor watches all certificates under its own domains with
//     sublinear bandwidth (a verified range SCAN per domain) — the
//     "lightweight log monitor" the paper's design enables.
package ctlog

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"elsm/internal/core"
)

// Certificate is a (simplified) logged certificate.
type Certificate struct {
	Hostname string    `json:"hostname"`
	Serial   uint64    `json:"serial"`
	Issuer   string    `json:"issuer"`
	NotAfter time.Time `json:"notAfter"`
	// DER is the raw certificate (simulated content).
	DER []byte `json:"der"`
}

// Hash returns the certificate's digest (what the log stores and auditors
// compare).
func (c Certificate) Hash() [32]byte {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%d|%s|%d|", c.Hostname, c.Serial, c.Issuer, c.NotAfter.Unix())
	h.Write(c.DER)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Entry is the stored log record for one hostname.
type Entry struct {
	CertHash [32]byte  `json:"certHash"`
	Serial   uint64    `json:"serial"`
	Issuer   string    `json:"issuer"`
	NotAfter time.Time `json:"notAfter"`
	Revoked  bool      `json:"revoked"`
	LoggedAt time.Time `json:"loggedAt"`
}

// CT errors.
var (
	ErrNotLogged = errors.New("ctlog: certificate not in log")
	ErrRevoked   = errors.New("ctlog: certificate revoked")
	ErrMismatch  = errors.New("ctlog: presented certificate does not match logged certificate")
)

// KV is the verified-store surface the log server needs: authenticated
// point writes, verified-freshness lookups and completeness-verified range
// scans. Both the public *elsm.Store (sharded or not) and any core.KV
// satisfy it.
type KV interface {
	Put(key, value []byte) (uint64, error)
	Get(key []byte) (core.Result, error)
	Scan(start, end []byte) ([]core.Result, error)
}

// Server is the eLSM-backed CT log server.
type Server struct {
	kv KV
}

// NewServer wraps a (typically eLSM-P2) store.
func NewServer(kv KV) *Server { return &Server{kv: kv} }

// AddChain logs a certificate submission, returning the log timestamp.
// Re-submission for the same hostname supersedes (rotation): freshness
// verification guarantees auditors always see the newest entry.
func (s *Server) AddChain(cert Certificate) (uint64, error) {
	return s.putEntry(cert.Hostname, Entry{
		CertHash: cert.Hash(),
		Serial:   cert.Serial,
		Issuer:   cert.Issuer,
		NotAfter: cert.NotAfter,
		LoggedAt: time.Now().UTC(),
	})
}

// Revoke marks a hostname's current certificate revoked (a fresh record —
// CT logs are append-only; revocation is a newer statement, not an erase).
func (s *Server) Revoke(hostname string) (uint64, error) {
	entry, _, err := s.GetEntry(hostname)
	if err != nil {
		return 0, err
	}
	entry.Revoked = true
	return s.putEntry(hostname, entry)
}

func (s *Server) putEntry(hostname string, e Entry) (uint64, error) {
	val, err := json.Marshal(e)
	if err != nil {
		return 0, fmt.Errorf("ctlog: encode entry: %w", err)
	}
	return s.kv.Put([]byte(hostname), val)
}

// GetEntry returns the verified newest log entry for a hostname.
func (s *Server) GetEntry(hostname string) (Entry, uint64, error) {
	res, err := s.kv.Get([]byte(hostname))
	if err != nil {
		return Entry{}, 0, fmt.Errorf("ctlog: verified get: %w", err)
	}
	if !res.Found {
		return Entry{}, 0, ErrNotLogged
	}
	var e Entry
	if err := json.Unmarshal(res.Value, &e); err != nil {
		return Entry{}, 0, fmt.Errorf("ctlog: decode entry: %w", err)
	}
	return e, res.Ts, nil
}

// Audit is the log-auditor check a TLS client performs: the presented
// certificate must be the log's current, unrevoked entry for its hostname.
func (s *Server) Audit(cert Certificate) error {
	e, _, err := s.GetEntry(cert.Hostname)
	if err != nil {
		return err
	}
	if e.CertHash != cert.Hash() {
		return fmt.Errorf("%w (hostname %s)", ErrMismatch, cert.Hostname)
	}
	if e.Revoked {
		return fmt.Errorf("%w (hostname %s)", ErrRevoked, cert.Hostname)
	}
	return nil
}

// MonitorReport is the per-domain digest a log monitor downloads.
type MonitorReport struct {
	Domain  string
	Entries map[string]Entry // hostname -> entry
}

// MonitorDomain returns all current log entries under a domain prefix via
// one completeness-verified range scan — the monitor downloads only its own
// certificates ("low and sublinear bandwidth", §5.7), yet an omitted
// hostname would be detected by the store's range proof.
func (s *Server) MonitorDomain(domain string) (MonitorReport, error) {
	// Hostnames under "example.com" sort within ["example.com",
	// "example.com\xff"...]; the prefix-range end key appends 0xff.
	start := []byte(domain)
	end := append([]byte(domain), 0xff)
	results, err := s.kv.Scan(start, end)
	if err != nil {
		return MonitorReport{}, fmt.Errorf("ctlog: monitor scan: %w", err)
	}
	rep := MonitorReport{Domain: domain, Entries: make(map[string]Entry, len(results))}
	for _, r := range results {
		var e Entry
		if err := json.Unmarshal(r.Value, &e); err != nil {
			return MonitorReport{}, fmt.Errorf("ctlog: decode %q: %w", r.Key, err)
		}
		rep.Entries[string(r.Key)] = e
	}
	return rep, nil
}
