package crashtest

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"elsm"
	"elsm/internal/core"
	"elsm/internal/sgx"
)

// storeOpts are the elsm options every scenario opens the store under:
// the env's fault-injecting disk and its persistent root of trust.
func storeOpts(env *Env) elsm.Options {
	return elsm.Options{
		FS:       env.Fault,
		Platform: env.Platform,
		Counter:  env.Counter,
	}
}

// recoverStore reopens the store on the healed disk. Recovery MUST succeed
// at every crash point: a crash artifact that reads as tampering or
// rollback is a false positive that bricks the store.
func recoverStore(t *testing.T, env *Env, opts elsm.Options) *elsm.Store {
	t.Helper()
	st, err := elsm.Open(opts)
	if err != nil {
		t.Fatalf("recovery after crash failed (crash read as tamper/rollback?): %v", err)
	}
	return st
}

// checkDurability verifies every acked write reads back byte-identical and
// every unacked commit group recovered whole or not at all.
func checkDurability(t *testing.T, env *Env, st *elsm.Store) {
	t.Helper()
	for k, v := range env.Acked {
		res, err := st.Get([]byte(k))
		if err != nil {
			t.Fatalf("acked key %q: verified read failed: %v", k, err)
		}
		if !res.Found {
			t.Fatalf("acked key %q lost by the crash", k)
		}
		if !bytes.Equal(res.Value, []byte(v)) {
			t.Fatalf("acked key %q: value %q, want %q", k, res.Value, v)
		}
	}
	for gi, g := range env.Groups {
		if g.Acked {
			continue // covered above
		}
		present := 0
		for i, k := range g.Keys {
			res, err := st.Get([]byte(k))
			if err != nil {
				t.Fatalf("group %d key %q: verified read failed: %v", gi, k, err)
			}
			if res.Found {
				if !bytes.Equal(res.Value, []byte(g.Vals[i])) {
					t.Fatalf("group %d key %q: value %q, want %q", gi, k, res.Value, g.Vals[i])
				}
				present++
			}
		}
		if present != 0 && present != len(g.Keys) {
			t.Fatalf("unacked group %d torn by recovery: %d of %d keys present", gi, present, len(g.Keys))
		}
	}
}

// tamperProbe checks that surviving the crash has not widened recovery
// into accepting arbitrary damage: a corrupted byte in the sealed trusted
// state must still be rejected. It works on a clone so the env's disk and
// counter stay untouched — call it BEFORE any further opens bump the
// counter, or the probe's rejection could come from the counter instead of
// the corruption.
func tamperProbe(t *testing.T, env *Env, opts elsm.Options) {
	t.Helper()
	const trusted = "TRUSTED.bin" // the on-disk contract recovery seals under
	clone := env.Mem.Clone()
	if !clone.Exists(trusted) {
		return // crashed before the first seal: nothing to corrupt yet
	}
	if err := clone.Corrupt(trusted, 3); err != nil {
		t.Fatal(err)
	}
	opts.FS = clone
	st, err := elsm.Open(opts)
	if err == nil {
		st.Close()
		t.Fatal("recovery accepted a corrupted trusted-state blob")
	}
	if !errors.Is(err, core.ErrAuthFailed) {
		t.Fatalf("corrupted trusted state rejected with %v, want ErrAuthFailed", err)
	}
}

// verifyRecovered is the shared Verify: tamper probe on the crash image,
// then recover and check durability invariants.
func verifyRecovered(t *testing.T, env *Env, opts elsm.Options) {
	t.Helper()
	tamperProbe(t, env, opts)
	st := recoverStore(t, env, opts)
	defer st.Close()
	checkDurability(t, env, st)
}

// TestCrashMatrixWALAppend enumerates crashes — with torn writes — over
// the WAL files while committing batches through group commit.
func TestCrashMatrixWALAppend(t *testing.T) {
	Enumerate(t, Scenario{
		Name: "wal-append",
		Glob: "wal*",
		Torn: true,
		Run: func(env *Env) {
			st, err := elsm.Open(storeOpts(env))
			if err != nil {
				return // crashed during open; Verify inspects the remains
			}
			defer st.Close()
			for g := 0; g < 12; g++ {
				keys := make([]string, 3)
				vals := make([]string, 3)
				b := st.NewBatch()
				for i := range keys {
					keys[i] = fmt.Sprintf("g%02d-k%d", g, i)
					vals[i] = fmt.Sprintf("v%02d-%d", g, i)
					b.Put([]byte(keys[i]), []byte(vals[i]))
				}
				_, err := b.Commit()
				env.AckGroup(keys, vals, err == nil)
				if err != nil {
					return // disk is dead; the crash happened
				}
			}
		},
		Verify: func(t *testing.T, env *Env) {
			verifyRecovered(t, env, storeOpts(env))
		},
	})
}

// TestCrashMatrixFlushInstall enumerates crashes over EVERY file while a
// tiny memtable forces flushes — covering the SSTable writes, the
// manifest tmp+rename install, the frozen-WAL deletions and the
// transition/post-install seals.
func TestCrashMatrixFlushInstall(t *testing.T) {
	Enumerate(t, Scenario{
		Name: "flush-install",
		Run: func(env *Env) {
			opts := storeOpts(env)
			opts.MemtableSize = 4 << 10
			st, err := elsm.Open(opts)
			if err != nil {
				return
			}
			defer st.Close()
			val := bytes.Repeat([]byte("x"), 256)
			for i := 0; i < 40; i++ {
				key := fmt.Sprintf("flush-%03d", i)
				if _, err := st.Put([]byte(key), val); err != nil {
					return
				}
				env.Ack(key, string(val))
			}
			_ = st.Flush() // drive at least one full install inside the window
		},
		Verify: func(t *testing.T, env *Env) {
			opts := storeOpts(env)
			opts.MemtableSize = 4 << 10
			verifyRecovered(t, env, opts)
		},
	})
}

// TestCrashMatrixParallelMaintenance enumerates crashes — torn writes
// included — while TWO maintenance workers run concurrent phase-2 jobs: a
// tiny memtable and level budget keep a flush and a disjoint compaction in
// flight together for most of the workload. The invariants are the usual
// ones, which here mean each level recovers as its old run set or its new
// one, never a mix, no matter which of the two jobs the crash interrupts —
// and tamper detection survives the parallel install traffic.
func TestCrashMatrixParallelMaintenance(t *testing.T) {
	parallelOpts := func(env *Env) elsm.Options {
		opts := storeOpts(env)
		opts.MemtableSize = 4 << 10
		opts.TableFileSize = 4 << 10
		opts.LevelBase = 16 << 10
		opts.MaxLevels = 5
		opts.CompactionWorkers = 2
		return opts
	}
	Enumerate(t, Scenario{
		Name: "parallel-maintenance",
		Torn: true,
		Run: func(env *Env) {
			st, err := elsm.Open(parallelOpts(env))
			if err != nil {
				return
			}
			defer st.Close()
			val := bytes.Repeat([]byte("y"), 256)
			for i := 0; i < 90; i++ {
				key := fmt.Sprintf("par-%03d", i)
				if _, err := st.Put([]byte(key), val); err != nil {
					return
				}
				env.Ack(key, string(val))
			}
			_ = st.Flush() // settle the tail so the final installs crash too
		},
		Verify: func(t *testing.T, env *Env) {
			verifyRecovered(t, env, parallelOpts(env))
		},
	})
}

// TestCrashMatrixCheckpointRestore enumerates crashes during a follower's
// checkpoint import. A crashed import must never produce a directory that
// opens as a valid store with partial data: either the import completed
// (all leader data present) or the directory is re-importable.
func TestCrashMatrixCheckpointRestore(t *testing.T) {
	platform := sgx.NewPlatformFromSecret([]byte("crashtest-checkpoint"))
	leader, err := elsm.Open(elsm.Options{Platform: platform})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	leaderData := make(map[string]string, 30)
	for i := 0; i < 30; i++ {
		k, v := fmt.Sprintf("ckpt-%03d", i), fmt.Sprintf("val-%03d", i)
		if _, err := leader.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		leaderData[k] = v
	}
	var ckpt bytes.Buffer
	if err := leader.ServeCheckpoint(0, &ckpt); err != nil {
		t.Fatal(err)
	}

	restore := func(env *Env) error {
		return core.RestoreCheckpoint(bytes.NewReader(ckpt.Bytes()), core.RestoreConfig{
			FS:       env.Fault,
			Platform: env.Platform,
			Counter:  env.Counter,
		})
	}
	Enumerate(t, Scenario{
		Name:     "checkpoint-restore",
		Platform: platform,
		Run: func(env *Env) {
			if err := restore(env); err != nil {
				return // crashed mid-import; Verify re-imports
			}
			for k, v := range leaderData {
				env.Ack(k, v)
			}
		},
		Verify: func(t *testing.T, env *Env) {
			if len(env.Acked) == 0 {
				// The import crashed. The remains must be re-importable on
				// the healed disk — TRUSTED.bin lands last, so the
				// directory still reads as unseeded (or is wiped clean).
				if err := core.WipeFS(env.Fault); err != nil {
					t.Fatal(err)
				}
				if err := restore(env); err != nil {
					t.Fatalf("re-import after crashed import failed: %v", err)
				}
				for k, v := range leaderData {
					env.Ack(k, v)
				}
			}
			verifyRecovered(t, env, storeOpts(env))
		},
	})
}

// TestCrashMatrixPromotion enumerates crashes during follower promotion:
// the epoch-bump seal and the drain must leave either the old epoch or the
// new one, with every replicated-durable write intact. The crash window is
// self-armed so the bootstrap and catch-up phases do not count as points.
func TestCrashMatrixPromotion(t *testing.T) {
	platform := sgx.NewPlatformFromSecret([]byte("crashtest-promotion"))
	Enumerate(t, Scenario{
		Name:     "promotion",
		Platform: platform,
		SelfArm:  true,
		Run: func(env *Env) {
			leader, err := elsm.Open(elsm.Options{Platform: platform})
			if err != nil {
				return
			}
			defer leader.Close()
			data := make(map[string]string, 20)
			lastKey := ""
			for i := 0; i < 20; i++ {
				k, v := fmt.Sprintf("prom-%03d", i), fmt.Sprintf("val-%03d", i)
				if _, err := leader.Put([]byte(k), []byte(v)); err != nil {
					return
				}
				data[k] = v
				lastKey = k
			}
			src, err := leader.ReplicationSource()
			if err != nil {
				return
			}
			follower, err := elsm.OpenFollower(storeOpts(env), src)
			if err != nil {
				return
			}
			defer follower.Close()
			caughtUp := false
			for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
				if res, err := follower.Get([]byte(lastKey)); err == nil && res.Found {
					caughtUp = true
					break
				}
				time.Sleep(time.Millisecond)
			}
			if !caughtUp {
				return // leaves zero matching ops; the count run fails loudly
			}
			for k, v := range data {
				env.Ack(k, v)
			}
			env.ArmCrash() // the crash window: promotion only
			_, _ = follower.Promote(nil)
		},
		Verify: func(t *testing.T, env *Env) {
			tamperProbe(t, env, storeOpts(env))
			st := recoverStore(t, env, storeOpts(env))
			defer st.Close()
			checkDurability(t, env, st)
			if epoch := st.ReplEpoch(); epoch > 1 {
				t.Fatalf("epoch after crashed promotion = %d, want 0 or 1", epoch)
			}
		},
	})
}
