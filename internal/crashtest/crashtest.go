// Package crashtest is a systematic crash-point fault-injection harness:
// it runs a workload once to COUNT every filesystem operation it performs
// (scoped by an op mask and path glob), then re-runs it once per operation
// k with the disk armed to die at exactly op k — torn write and all — and
// after each simulated crash recovers the store and checks the durability
// invariants:
//
//   - recovery succeeds (a crash must never read as tampering or rollback),
//   - every write acknowledged as durable before the crash is present and
//     verifies byte for byte,
//   - commit groups are atomic — an unacknowledged batch is recovered
//     whole or not at all,
//   - tamper detection is still alive (a corrupted byte in the recovered
//     state is rejected, so crash tolerance has not widened into accepting
//     arbitrary damage).
//
// Scenarios enumerate the crash surface of one subsystem each: WAL
// appends, flush/manifest installs, checkpoint restore, promotion. The
// enumeration is exhaustive in normal mode and deterministically sampled
// in -short mode.
package crashtest

import (
	"fmt"
	"testing"

	"elsm/internal/sgx"
	"elsm/internal/vfs"
)

// maxShortPoints caps the crash points per scenario in -short mode.
const maxShortPoints = 25

// maxPoints caps the crash points per scenario even in full mode — a
// workload's op count can drift with background-maintenance timing, and
// the matrix must stay bounded.
const maxPoints = 200

// Group records one attempted commit group: its keys and values, and
// whether the store acknowledged it as durable. Acked groups must survive
// a crash completely; unacked groups must recover whole or not at all.
type Group struct {
	Keys  []string
	Vals  []string
	Acked bool
}

// Env is one crash-point execution environment: a fresh fault-injecting
// filesystem over a fresh memory disk, a fresh trust root, and the
// workload's durability bookkeeping. The monotonic counter deliberately
// survives the "crash" — it models the platform's trusted hardware
// counter, which persists across power loss.
type Env struct {
	Mem      *vfs.MemFS
	Fault    *vfs.FaultFS
	Platform *sgx.Platform
	Counter  *sgx.MonotonicCounter

	// Acked maps key → value for every write the store acknowledged as
	// durable before the crash.
	Acked map[string]string
	// Groups records every attempted commit group (atomicity checks).
	Groups []Group

	mask vfs.Op
	glob string
	k    int // crash at the k-th matching op; -1 = count mode
	torn bool
}

// ArmCrash arms the scenario's crash point: from this moment on, matching
// filesystem operations count, and the k-th one kills the disk. Scenarios
// with SelfArm call it themselves at the point in the workload where the
// crash window starts; otherwise the harness arms before Run.
func (e *Env) ArmCrash() {
	e.Fault.ArmFilter(e.mask, e.glob)
	e.Fault.SetTornWrites(e.torn)
	if e.k >= 0 {
		e.Fault.Arm(e.k)
	}
}

// Ack records a write acknowledged as durable.
func (e *Env) Ack(key, val string) {
	e.Acked[key] = val
}

// AckGroup records one attempted commit group and, when acked, its keys.
func (e *Env) AckGroup(keys, vals []string, acked bool) {
	e.Groups = append(e.Groups, Group{Keys: keys, Vals: vals, Acked: acked})
	if acked {
		for i, k := range keys {
			e.Acked[k] = vals[i]
		}
	}
}

// Scenario is one workload whose crash surface the harness enumerates.
type Scenario struct {
	// Name labels the subtest tree.
	Name string
	// Mask scopes which operation types are crash points (default
	// vfs.OpMutating — operations that change durable state).
	Mask vfs.Op
	// Glob scopes which paths are crash points ("" = every path).
	Glob string
	// Torn makes the crashing write tear (persist a prefix) instead of
	// failing cleanly — the harsher power-loss model.
	Torn bool
	// SelfArm defers arming to the workload's own ArmCrash call, so setup
	// operations (bootstrap, catch-up) are not counted as crash points.
	SelfArm bool
	// Platform overrides the per-run platform (scenarios that attest
	// against a fixed leader need to share its platform). Nil = fresh.
	Platform *sgx.Platform

	// Run drives the workload against env.Fault. It must tolerate
	// injected failures (the disk DOES die mid-run): record durability
	// acks via env.Ack/env.AckGroup only on success, and return normally.
	Run func(env *Env)
	// Verify checks the invariants after the crash: the harness has
	// already disarmed the fault, so env.Fault is a healthy disk holding
	// exactly the state the crash left behind.
	Verify func(t *testing.T, env *Env)
}

// newEnv builds a fresh environment for one enumeration point.
func (sc *Scenario) newEnv(tb testing.TB, k int) *Env {
	platform := sc.Platform
	if platform == nil {
		var err error
		platform, err = sgx.NewPlatform()
		if err != nil {
			tb.Fatal(err)
		}
	}
	mask := sc.Mask
	if mask == 0 {
		mask = vfs.OpMutating
	}
	mem := vfs.NewMem()
	return &Env{
		Mem:      mem,
		Fault:    vfs.NewFault(mem),
		Platform: platform,
		Counter:  sgx.NewMonotonicCounter(),
		Acked:    make(map[string]string),
		mask:     mask,
		glob:     sc.Glob,
		k:        k,
		torn:     sc.Torn,
	}
}

// Enumerate runs the scenario's full crash-point matrix: a count run with
// an unlimited budget learns how many matching operations the workload
// performs, then each selected operation index gets its own subtest that
// crashes there, recovers, and verifies. Operation counts can drift
// slightly between runs (background maintenance), so a point past the end
// of a particular run simply never trips — the workload completes and
// Verify checks a healthy store, a vacuous pass.
func Enumerate(t *testing.T, sc Scenario) {
	t.Helper()
	t.Run(sc.Name, func(t *testing.T) {
		env := sc.newEnv(t, -1)
		if !sc.SelfArm {
			env.ArmCrash()
		}
		sc.Run(env)
		if env.Fault.Tripped() {
			t.Fatalf("count run tripped a fault with an unlimited budget: %s", env.Fault.TrippedOn())
		}
		n := int(env.Fault.MatchingOps())
		if n == 0 {
			t.Fatalf("workload performed no matching operations — nothing to enumerate")
		}
		sc.Verify(t, env) // the fault-free run must satisfy the invariants too
		for _, k := range samplePoints(n, testing.Short()) {
			k := k
			t.Run(fmt.Sprintf("crash-at-op-%03d", k), func(t *testing.T) {
				env := sc.newEnv(t, k)
				if !sc.SelfArm {
					env.ArmCrash()
				}
				sc.Run(env)
				env.Fault.Disarm()
				sc.Verify(t, env)
			})
		}
	})
}

// samplePoints selects which of the n crash points to run: all of them
// when they fit the budget, otherwise a deterministic even sample that
// always includes the first and last point.
func samplePoints(n int, short bool) []int {
	budget := maxPoints
	if short {
		budget = maxShortPoints
	}
	if n <= budget {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, budget)
	for i := 0; i < budget; i++ {
		out = append(out, i*(n-1)/(budget-1))
	}
	// The even stride can repeat indices when n is close to the budget;
	// dedup while preserving order.
	dedup := out[:0]
	last := -1
	for _, k := range out {
		if k != last {
			dedup = append(dedup, k)
			last = k
		}
	}
	return dedup
}
