// Package memtable implements the in-enclave L0 write buffer of the LSM
// store: a skiplist ordered by (key asc, timestamp desc). In eLSM the
// memtable always lives inside the enclave (both P1 and P2 — §4.2 / Table 1:
// the write buffer is small metadata), so its contents are trusted and need
// no proofs; its enclave-memory cost is accounted through an sgx.Region.
package memtable

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"elsm/internal/record"
	"elsm/internal/sgx"
)

const (
	maxHeight  = 12
	branchProb = 4 // 1/4 chance of growing a level
)

type node struct {
	rec  record.Record
	next []*node
}

// Table is a concurrent skiplist memtable. Safe for concurrent use.
type Table struct {
	mu       sync.RWMutex
	head     *node
	height   int
	rnd      *rand.Rand // guarded by mu (write lock)
	bytes    int
	count    int
	frozen   bool
	region   *sgx.Region
	touchOff atomic.Int64
}

// New creates an empty memtable. If enclave is non-nil, the table allocates
// an enclave region and charges accesses against it; pass nil for untrusted
// or cost-free placement.
func New(enclave *sgx.Enclave) *Table {
	t := &Table{
		head:   &node{next: make([]*node, maxHeight)},
		height: 1,
		rnd:    rand.New(rand.NewSource(0xe15a)),
	}
	if enclave != nil {
		t.region = enclave.Alloc(0)
	}
	return t
}

func (t *Table) randomHeight() int {
	h := 1
	for h < maxHeight && t.rnd.Intn(branchProb) == 0 {
		h++
	}
	return h
}

// less reports whether node n sorts strictly before (key, ts).
func less(n *node, key []byte, ts uint64) bool {
	return record.Compare(n.rec.Key, n.rec.Ts, key, ts) < 0
}

// Freeze marks the table immutable: it has been handed to a background
// flush, and writes now land in its successor. A Put after Freeze is an
// engine bug — the frozen table is concurrently merged to disk without
// locks, so a late write would be silently lost or torn.
func (t *Table) Freeze() {
	t.mu.Lock()
	t.frozen = true
	t.mu.Unlock()
}

// Frozen reports whether Freeze was called.
func (t *Table) Frozen() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.frozen
}

// Put inserts a record. Duplicate (key, ts) pairs overwrite.
func (t *Table) Put(rec record.Record) {
	rec = rec.Clone()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.frozen {
		panic("memtable: Put on a frozen table")
	}

	var prev [maxHeight]*node
	x := t.head
	for level := t.height - 1; level >= 0; level-- {
		for x.next[level] != nil && less(x.next[level], rec.Key, rec.Ts) {
			x = x.next[level]
		}
		prev[level] = x
	}
	if nxt := prev[0].next[0]; nxt != nil && record.Compare(nxt.rec.Key, nxt.rec.Ts, rec.Key, rec.Ts) == 0 {
		t.bytes += rec.Size() - nxt.rec.Size()
		nxt.rec = rec
		t.touch(t.bytes, rec.Size())
		return
	}
	h := t.randomHeight()
	if h > t.height {
		for level := t.height; level < h; level++ {
			prev[level] = t.head
		}
		t.height = h
	}
	n := &node{rec: rec, next: make([]*node, h)}
	for level := 0; level < h; level++ {
		n.next[level] = prev[level].next[level]
		prev[level].next[level] = n
	}
	t.count++
	grow := rec.Size() + 8*h
	t.bytes += grow
	if t.region != nil {
		t.region.Grow(grow)
	}
	t.touch(t.bytes, rec.Size())
}

// touch charges enclave-memory access cost for n bytes. The offset rotates
// through the region so the access pattern spreads across pages, mimicking
// skiplist node placement (race-free: uses an atomic cursor, not t.rnd).
func (t *Table) touch(sizeHint, n int) {
	if t.region == nil || n <= 0 {
		return
	}
	span := sizeHint - n
	off := 0
	if span > 0 {
		off = int(t.touchOff.Add(int64(n*7+64)) % int64(span))
	}
	t.region.Touch(off, n)
}

// findGE returns the first node ≥ (key, ts) in record order. Caller holds a
// read lock.
func (t *Table) findGE(key []byte, ts uint64) *node {
	x := t.head
	for level := t.height - 1; level >= 0; level-- {
		for x.next[level] != nil && less(x.next[level], key, ts) {
			x = x.next[level]
		}
	}
	return x.next[0]
}

// Get returns the newest record of key with Ts ≤ tsq. The boolean reports
// whether any version was found (the record may be a tombstone).
func (t *Table) Get(key []byte, tsq uint64) (record.Record, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	// In (key asc, ts desc) order, the first node ≥ (key, tsq) is the
	// newest version of key with Ts ≤ tsq, if its key matches.
	n := t.findGE(key, tsq)
	if n == nil || record.Compare(n.rec.Key, 0, key, 0) != 0 {
		return record.Record{}, false
	}
	t.touch(t.bytes, n.rec.Size())
	return n.rec.Clone(), true
}

// Count returns the number of entries.
func (t *Table) Count() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// ApproxBytes returns the approximate memory footprint, used to trigger
// flushes when the write buffer overflows (§5.3 step w2).
func (t *Table) ApproxBytes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.bytes
}

// Release frees the enclave region backing this memtable. The skiplist
// itself stays readable: a pinned snapshot may keep serving reads from a
// flushed (and Released) table, it just no longer charges enclave-memory
// cost. Taking the write lock serializes with concurrent readers' touch.
func (t *Table) Release() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.region != nil {
		t.region.Free()
		t.region = nil
	}
}

// Iter returns an iterator over a snapshot of the list structure. The
// iterator sees nodes present at creation time (skiplist nodes are
// immutable once linked except for same-(key,ts) overwrites).
func (t *Table) Iter() record.Iterator {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return &iterator{t: t, cur: t.head.next[0]}
}

type iterator struct {
	t   *Table
	cur *node
}

var _ record.Iterator = (*iterator)(nil)

func (it *iterator) Valid() bool { return it.cur != nil }

func (it *iterator) Next() {
	if it.cur != nil {
		it.t.mu.RLock()
		it.cur = it.cur.next[0]
		it.t.mu.RUnlock()
	}
}

func (it *iterator) Record() record.Record { return it.cur.rec }

func (it *iterator) SeekGE(key []byte, ts uint64) {
	it.t.mu.RLock()
	it.cur = it.t.findGE(key, ts)
	it.t.mu.RUnlock()
}

func (it *iterator) Close() error { return nil }
