package memtable

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"elsm/internal/record"
)

func put(t *Table, key string, ts uint64, val string) {
	t.Put(record.Record{Key: []byte(key), Ts: ts, Kind: record.KindSet, Value: []byte(val)})
}

func TestPutGetLatest(t *testing.T) {
	mt := New(nil)
	put(mt, "a", 1, "v1")
	put(mt, "a", 3, "v3")
	put(mt, "a", 2, "v2")
	rec, ok := mt.Get([]byte("a"), record.MaxTs)
	if !ok || string(rec.Value) != "v3" {
		t.Fatalf("latest = %q ok=%v", rec.Value, ok)
	}
}

func TestGetHistorical(t *testing.T) {
	mt := New(nil)
	put(mt, "k", 10, "v10")
	put(mt, "k", 20, "v20")
	put(mt, "k", 30, "v30")
	cases := []struct {
		tsq  uint64
		want string
		ok   bool
	}{
		{5, "", false},
		{10, "v10", true},
		{15, "v10", true},
		{20, "v20", true},
		{25, "v20", true},
		{30, "v30", true},
		{100, "v30", true},
	}
	for _, c := range cases {
		rec, ok := mt.Get([]byte("k"), c.tsq)
		if ok != c.ok || (ok && string(rec.Value) != c.want) {
			t.Fatalf("tsq=%d: got %q,%v want %q,%v", c.tsq, rec.Value, ok, c.want, c.ok)
		}
	}
}

func TestGetMissing(t *testing.T) {
	mt := New(nil)
	put(mt, "b", 1, "v")
	if _, ok := mt.Get([]byte("a"), record.MaxTs); ok {
		t.Fatal("found absent key before")
	}
	if _, ok := mt.Get([]byte("c"), record.MaxTs); ok {
		t.Fatal("found absent key after")
	}
}

func TestTombstoneVisible(t *testing.T) {
	mt := New(nil)
	put(mt, "k", 1, "v")
	mt.Put(record.Record{Key: []byte("k"), Ts: 2, Kind: record.KindDelete})
	rec, ok := mt.Get([]byte("k"), record.MaxTs)
	if !ok || rec.Kind != record.KindDelete {
		t.Fatalf("tombstone not returned: %v %v", rec.Kind, ok)
	}
}

func TestIterSortedOrder(t *testing.T) {
	mt := New(nil)
	rnd := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		put(mt, fmt.Sprintf("key%04d", rnd.Intn(300)), uint64(i+1), "v")
	}
	it := mt.Iter()
	var prev record.Record
	n := 0
	for ; it.Valid(); it.Next() {
		rec := it.Record()
		if n > 0 && record.CompareRecords(prev, rec) >= 0 {
			t.Fatalf("order violation at %d: %q@%d then %q@%d", n, prev.Key, prev.Ts, rec.Key, rec.Ts)
		}
		prev = rec.Clone()
		n++
	}
	if n != 1000 {
		t.Fatalf("iterated %d of 1000", n)
	}
	if mt.Count() != 1000 {
		t.Fatalf("count = %d", mt.Count())
	}
}

func TestIterSeekGE(t *testing.T) {
	mt := New(nil)
	for i := 0; i < 100; i += 2 {
		put(mt, fmt.Sprintf("k%02d", i), uint64(i+1), "v")
	}
	it := mt.Iter()
	it.SeekGE([]byte("k51"), record.MaxTs)
	if !it.Valid() || string(it.Record().Key) != "k52" {
		t.Fatalf("seek landed at %q", it.Record().Key)
	}
	it.SeekGE([]byte("k99"), record.MaxTs)
	if it.Valid() {
		t.Fatal("seek past end still valid")
	}
}

func TestOverwriteSameKeyTs(t *testing.T) {
	mt := New(nil)
	put(mt, "k", 5, "old")
	put(mt, "k", 5, "new")
	rec, _ := mt.Get([]byte("k"), record.MaxTs)
	if string(rec.Value) != "new" {
		t.Fatalf("value = %q", rec.Value)
	}
	if mt.Count() != 1 {
		t.Fatalf("count = %d", mt.Count())
	}
}

func TestApproxBytesGrows(t *testing.T) {
	mt := New(nil)
	before := mt.ApproxBytes()
	for i := 0; i < 100; i++ {
		put(mt, fmt.Sprintf("key%d", i), uint64(i+1), "some value data")
	}
	if mt.ApproxBytes() <= before {
		t.Fatal("ApproxBytes did not grow")
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	mt := New(nil)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			put(mt, fmt.Sprintf("k%03d", i%100), uint64(i+1), "v")
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := []byte(fmt.Sprintf("k%03d", i%100))
				if rec, ok := mt.Get(key, record.MaxTs); ok && !bytes.Equal(rec.Key, key) {
					t.Errorf("got key %q for query %q", rec.Key, key)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

func TestClonedRecordsIndependent(t *testing.T) {
	mt := New(nil)
	key := []byte("mutate")
	val := []byte("value")
	mt.Put(record.Record{Key: key, Ts: 1, Kind: record.KindSet, Value: val})
	key[0] = 'X' // caller mutates its buffer after Put
	val[0] = 'X'
	if _, ok := mt.Get([]byte("mutate"), record.MaxTs); !ok {
		t.Fatal("memtable aliased caller's key buffer")
	}
	rec, _ := mt.Get([]byte("mutate"), record.MaxTs)
	if string(rec.Value) != "value" {
		t.Fatalf("value corrupted: %q", rec.Value)
	}
}
