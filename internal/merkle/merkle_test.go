package merkle

import (
	"math/rand"
	"testing"
	"testing/quick"

	"elsm/internal/hashutil"
)

func leafSet(n int) []Hash {
	leaves := make([]Hash, n)
	for i := range leaves {
		leaves[i] = hashutil.Of([]byte{byte(i), byte(i >> 8), 0xab})
	}
	return leaves
}

func TestEmptyTree(t *testing.T) {
	tr := New(nil)
	if got := tr.Root(); !got.IsZero() {
		t.Fatalf("empty tree root = %s, want zero", got)
	}
	if tr.NumLeaves() != 0 {
		t.Fatalf("empty tree leaves = %d", tr.NumLeaves())
	}
}

func TestSingleLeaf(t *testing.T) {
	leaves := leafSet(1)
	tr := New(leaves)
	if tr.Root() != leaves[0] {
		t.Fatalf("single-leaf root should be the leaf itself")
	}
	if err := VerifyPath(leaves[0], 0, 1, tr.Path(0), tr.Root()); err != nil {
		t.Fatalf("single-leaf path: %v", err)
	}
}

func TestPathVerifiesAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 31, 33, 100, 257} {
		leaves := leafSet(n)
		tr := New(leaves)
		for i := 0; i < n; i++ {
			if err := VerifyPath(leaves[i], i, n, tr.Path(i), tr.Root()); err != nil {
				t.Fatalf("n=%d leaf %d: %v", n, i, err)
			}
		}
	}
}

func TestPathRejectsWrongIndex(t *testing.T) {
	leaves := leafSet(10)
	tr := New(leaves)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if i == j {
				continue
			}
			if err := VerifyPath(leaves[i], j, 10, tr.Path(i), tr.Root()); err == nil {
				t.Fatalf("leaf %d verified at claimed index %d", i, j)
			}
		}
	}
}

func TestPathRejectsWrongLeafCount(t *testing.T) {
	// numLeaves is trusted enclave state, never attacker-supplied, so the
	// requirement is only that claims which CHANGE the path shape fail
	// (claims that leave the shape identical — e.g. 9 vs 10 for a
	// left-side leaf — verify the same fold and are harmless).
	leaves := leafSet(10)
	tr := New(leaves)
	path := tr.Path(3)
	for _, n := range []int{1, 2, 3, 4, 5} {
		if err := VerifyPath(leaves[3], 3, n, path, tr.Root()); err == nil {
			t.Fatalf("path verified with shape-changing numLeaves %d", n)
		}
	}
	// The last leaf's shape is the most count-sensitive.
	last := tr.Path(9)
	for _, n := range []int{11, 12, 16} {
		if err := VerifyPath(leaves[9], 9, n, last, tr.Root()); err == nil {
			t.Fatalf("last-leaf path verified with numLeaves %d", n)
		}
	}
}

func TestPathRejectsTamperedLeaf(t *testing.T) {
	leaves := leafSet(16)
	tr := New(leaves)
	bad := leaves[5]
	bad[0] ^= 1
	if err := VerifyPath(bad, 5, 16, tr.Path(5), tr.Root()); err == nil {
		t.Fatal("tampered leaf verified")
	}
}

func TestPathRejectsTamperedPath(t *testing.T) {
	leaves := leafSet(16)
	tr := New(leaves)
	path := tr.Path(5)
	path[1].Hash[3] ^= 0x80
	if err := VerifyPath(leaves[5], 5, 16, path, tr.Root()); err == nil {
		t.Fatal("tampered path verified")
	}
}

func TestPathRejectsTruncatedPath(t *testing.T) {
	leaves := leafSet(16)
	tr := New(leaves)
	path := tr.Path(5)
	if err := VerifyPath(leaves[5], 5, 16, path[:len(path)-1], tr.Root()); err == nil {
		t.Fatal("truncated path verified")
	}
	extra := append(append([]PathNode(nil), path...), path[0])
	if err := VerifyPath(leaves[5], 5, 16, extra, tr.Root()); err == nil {
		t.Fatal("over-long path verified")
	}
}

func TestRangeProofAllRanges(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 13} {
		leaves := leafSet(n)
		tr := New(leaves)
		for start := 0; start < n; start++ {
			for end := start; end < n; end++ {
				p, err := tr.RangeProofFor(start, end)
				if err != nil {
					t.Fatalf("n=%d [%d,%d]: %v", n, start, end, err)
				}
				if err := VerifyRange(leaves[start:end+1], n, p, tr.Root()); err != nil {
					t.Fatalf("n=%d verify [%d,%d]: %v", n, start, end, err)
				}
			}
		}
	}
}

func TestRangeProofRejectsOmittedLeaf(t *testing.T) {
	leaves := leafSet(16)
	tr := New(leaves)
	p, err := tr.RangeProofFor(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Drop an interior leaf — an incomplete range result.
	subset := append(append([]Hash(nil), leaves[4:6]...), leaves[7:10]...)
	if err := VerifyRange(subset, 16, p, tr.Root()); err == nil {
		t.Fatal("range with omitted leaf verified")
	}
}

func TestRangeProofRejectsShiftedStart(t *testing.T) {
	leaves := leafSet(16)
	tr := New(leaves)
	p, err := tr.RangeProofFor(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	p.Start = 5 // lie about the position
	if err := VerifyRange(leaves[4:10], 16, p, tr.Root()); err == nil {
		t.Fatal("range with shifted start verified")
	}
}

func TestRangeProofRejectsForgedLeaf(t *testing.T) {
	leaves := leafSet(16)
	tr := New(leaves)
	p, err := tr.RangeProofFor(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	forged := append([]Hash(nil), leaves[4:10]...)
	forged[2][0] ^= 1
	if err := VerifyRange(forged, 16, p, tr.Root()); err == nil {
		t.Fatal("forged range leaf verified")
	}
}

// TestRangeEqualsPathSiblings checks the property the eLSM proof embedding
// relies on: a range proof's boundary hashes equal the left/right siblings
// of the boundary leaves' authentication paths.
func TestRangeEqualsPathSiblings(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rnd.Intn(60)
		leaves := leafSet(n)
		tr := New(leaves)
		start := rnd.Intn(n)
		end := start + rnd.Intn(n-start)
		p, err := tr.RangeProofFor(start, end)
		if err != nil {
			t.Fatal(err)
		}
		var left, right []Hash
		for _, pn := range tr.Path(start) {
			if pn.Left {
				left = append(left, pn.Hash)
			}
		}
		for _, pn := range tr.Path(end) {
			if !pn.Left {
				right = append(right, pn.Hash)
			}
		}
		assembled := &RangeProof{Start: start, Left: left, Right: right}
		if err := VerifyRange(leaves[start:end+1], n, assembled, tr.Root()); err != nil {
			t.Fatalf("n=%d [%d,%d]: assembled-from-paths proof failed: %v", n, start, end, err)
		}
		_ = p
	}
}

// Property: every leaf of a randomly sized tree verifies, and no leaf
// verifies at a shifted index.
func TestQuickPathSoundness(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%200) + 1
		rnd := rand.New(rand.NewSource(seed))
		leaves := make([]Hash, n)
		for i := range leaves {
			rnd.Read(leaves[i][:])
		}
		tr := New(leaves)
		i := rnd.Intn(n)
		if VerifyPath(leaves[i], i, n, tr.Path(i), tr.Root()) != nil {
			return false
		}
		j := (i + 1 + rnd.Intn(n)) % n
		if j != i && VerifyPath(leaves[i], j, n, tr.Path(i), tr.Root()) == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: two different leaf sets never produce the same root.
func TestQuickRootBinding(t *testing.T) {
	f := func(seed int64, sz uint8, flipLeaf uint8, flipBit uint8) bool {
		n := int(sz%50) + 1
		rnd := rand.New(rand.NewSource(seed))
		leaves := make([]Hash, n)
		for i := range leaves {
			rnd.Read(leaves[i][:])
		}
		t1 := New(leaves)
		mutated := make([]Hash, n)
		copy(mutated, leaves)
		mutated[int(flipLeaf)%n][flipBit%32] ^= 1 << (flipBit % 8)
		t2 := New(mutated)
		return t1.Root() != t2.Root()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTreeBuild(b *testing.B) {
	for _, n := range []int{1024, 65536} {
		leaves := leafSet(n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				New(leaves)
			}
		})
	}
}

func BenchmarkVerifyPath(b *testing.B) {
	leaves := leafSet(65536)
	tr := New(leaves)
	path := tr.Path(12345)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := VerifyPath(leaves[12345], 12345, 65536, path, tr.Root()); err != nil {
			b.Fatal(err)
		}
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return "1M"
	case n >= 1<<16:
		return "64k"
	default:
		return "1k"
	}
}
