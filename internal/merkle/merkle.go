// Package merkle implements the Merkle hash trees that digest each LSM-tree
// level in eLSM (§5.2): full binary trees over ordered leaf hashes with
// membership proofs (authentication paths), index-carrying verification that
// supports adjacency (non-membership) checks, and contiguous range proofs
// for query completeness (§5.4, the segment-tree view).
//
// The tree promotes a lone trailing node to the next level (no duplication),
// so every leaf's authentication path is uniquely determined by (index,
// numLeaves) — verifiers can check structural claims, not just hashes.
package merkle

import (
	"errors"
	"fmt"

	"elsm/internal/hashutil"
)

// Hash re-exports the digest type for convenience.
type Hash = hashutil.Hash

// PathNode is one step of an authentication path: the sibling hash and its
// side (Left reports whether the sibling is the left child).
type PathNode struct {
	Hash Hash
	Left bool
}

// Tree is an immutable Merkle tree over an ordered leaf set.
type Tree struct {
	// levels[0] is the leaf level; levels[len-1] is the single root.
	levels [][]Hash
}

// New builds a tree over the given leaf hashes. An empty leaf set yields a
// tree whose root is the zero hash (the digest of an empty level).
func New(leaves []Hash) *Tree {
	if len(leaves) == 0 {
		return &Tree{}
	}
	levels := make([][]Hash, 0, 8)
	cur := make([]Hash, len(leaves))
	copy(cur, leaves)
	levels = append(levels, cur)
	for len(cur) > 1 {
		next := make([]Hash, 0, (len(cur)+1)/2)
		for i := 0; i < len(cur); i += 2 {
			if i+1 < len(cur) {
				next = append(next, hashutil.NodeHash(cur[i], cur[i+1]))
			} else {
				// Promote the lone trailing node.
				next = append(next, cur[i])
			}
		}
		levels = append(levels, next)
		cur = next
	}
	return &Tree{levels: levels}
}

// Root returns the root hash (zero for an empty tree).
func (t *Tree) Root() Hash {
	if len(t.levels) == 0 {
		return hashutil.Zero
	}
	return t.levels[len(t.levels)-1][0]
}

// NumLeaves returns the leaf count.
func (t *Tree) NumLeaves() int {
	if len(t.levels) == 0 {
		return 0
	}
	return len(t.levels[0])
}

// Leaf returns the i-th leaf hash.
func (t *Tree) Leaf(i int) Hash { return t.levels[0][i] }

// Path returns the authentication path of leaf i: sibling hashes bottom-up,
// skipping levels where the node is promoted.
func (t *Tree) Path(i int) []PathNode {
	if i < 0 || len(t.levels) == 0 || i >= len(t.levels[0]) {
		panic(fmt.Sprintf("merkle: leaf index %d out of range", i))
	}
	var path []PathNode
	idx := i
	for l := 0; l < len(t.levels)-1; l++ {
		level := t.levels[l]
		switch {
		case idx%2 == 0 && idx+1 < len(level):
			path = append(path, PathNode{Hash: level[idx+1], Left: false})
		case idx%2 == 1:
			path = append(path, PathNode{Hash: level[idx-1], Left: true})
		default:
			// Lone trailing node: promoted, no sibling at this level.
		}
		idx /= 2
	}
	return path
}

// Proof-verification errors.
var (
	ErrBadIndex     = errors.New("merkle: leaf index out of range")
	ErrBadPath      = errors.New("merkle: authentication path has wrong shape")
	ErrRootMismatch = errors.New("merkle: recomputed root does not match")
)

// VerifyPath checks that leaf sits at position index in a tree of numLeaves
// leaves with the given root. The (index, numLeaves) pair fully determines
// the path shape, so a prover cannot lie about a leaf's position — which is
// what makes adjacency-based non-membership proofs sound.
func VerifyPath(leaf Hash, index, numLeaves int, path []PathNode, root Hash) error {
	if numLeaves <= 0 || index < 0 || index >= numLeaves {
		return ErrBadIndex
	}
	h := leaf
	idx, n := index, numLeaves
	pi := 0
	for n > 1 {
		switch {
		case idx%2 == 0 && idx+1 < n:
			if pi >= len(path) || path[pi].Left {
				return fmt.Errorf("%w: expected right sibling at width %d", ErrBadPath, n)
			}
			h = hashutil.NodeHash(h, path[pi].Hash)
			pi++
		case idx%2 == 1:
			if pi >= len(path) || !path[pi].Left {
				return fmt.Errorf("%w: expected left sibling at width %d", ErrBadPath, n)
			}
			h = hashutil.NodeHash(path[pi].Hash, h)
			pi++
		default:
			// Promoted node: no sibling consumed.
		}
		idx /= 2
		n = (n + 1) / 2
	}
	if pi != len(path) {
		return fmt.Errorf("%w: %d unused path nodes", ErrBadPath, len(path)-pi)
	}
	if h != root {
		return ErrRootMismatch
	}
	return nil
}

// RangeProof authenticates that a contiguous run of leaves
// [Start, Start+len(leaves)-1] belongs to the tree. The proof carries only
// the boundary siblings (the segment-tree cover of §5.4); interior hashes
// are recomputed from the presented leaves.
type RangeProof struct {
	// Start is the index of the first presented leaf.
	Start int
	// Left and Right hold sibling hashes consumed bottom-up on the left
	// and right boundaries of the folded span.
	Left  []Hash
	Right []Hash
}

// RangeProofFor builds the proof for leaves [start, end] (inclusive).
func (t *Tree) RangeProofFor(start, end int) (*RangeProof, error) {
	n := t.NumLeaves()
	if start < 0 || end < start || end >= n {
		return nil, fmt.Errorf("%w: [%d,%d] of %d leaves", ErrBadIndex, start, end, n)
	}
	p := &RangeProof{Start: start}
	lo, hi := start, end
	for l := 0; l < len(t.levels)-1; l++ {
		level := t.levels[l]
		if lo%2 == 1 {
			p.Left = append(p.Left, level[lo-1])
		}
		if hi%2 == 0 && hi+1 < len(level) {
			p.Right = append(p.Right, level[hi+1])
		}
		lo /= 2
		hi /= 2
	}
	return p, nil
}

// VerifyRange checks that the presented leaves occupy positions
// [proof.Start, proof.Start+len(leaves)-1] in a tree with the given root and
// numLeaves. Completeness follows: a verifier that also checks the boundary
// keys (done by the caller, which knows the leaf contents) learns that no
// leaf inside the span was withheld.
func VerifyRange(leaves []Hash, numLeaves int, proof *RangeProof, root Hash) error {
	if len(leaves) == 0 {
		return fmt.Errorf("%w: empty range", ErrBadIndex)
	}
	if proof == nil {
		return fmt.Errorf("%w: nil proof", ErrBadPath)
	}
	start := proof.Start
	end := start + len(leaves) - 1
	if start < 0 || end >= numLeaves {
		return ErrBadIndex
	}
	span := make([]Hash, len(leaves))
	copy(span, leaves)
	lo, hi := start, end
	n := numLeaves
	li, ri := 0, 0
	for n > 1 {
		// Extend the span with boundary siblings as needed so it starts at
		// an even index and ends at an odd index (or the promoted tail).
		if lo%2 == 1 {
			if li >= len(proof.Left) {
				return fmt.Errorf("%w: missing left sibling", ErrBadPath)
			}
			span = append([]Hash{proof.Left[li]}, span...)
			li++
			lo--
		}
		if hi%2 == 0 && hi+1 < n {
			if ri >= len(proof.Right) {
				return fmt.Errorf("%w: missing right sibling", ErrBadPath)
			}
			span = append(span, proof.Right[ri])
			ri++
			hi++
		}
		// Fold pairs.
		next := make([]Hash, 0, (len(span)+1)/2)
		for i := 0; i < len(span); i += 2 {
			if i+1 < len(span) {
				next = append(next, hashutil.NodeHash(span[i], span[i+1]))
			} else {
				// Promoted trailing node (hi == n-1 with even index).
				next = append(next, span[i])
			}
		}
		span = next
		lo /= 2
		hi /= 2
		n = (n + 1) / 2
	}
	if li != len(proof.Left) || ri != len(proof.Right) {
		return fmt.Errorf("%w: unused proof hashes", ErrBadPath)
	}
	if len(span) != 1 || span[0] != root {
		return ErrRootMismatch
	}
	return nil
}
