// Package bloom implements the per-block Bloom filters that LSM stores
// attach to SSTable data blocks (§2 of the paper): a fast negative test for
// "is key k possibly in this block", avoiding block reads for missing keys.
//
// The implementation follows LevelDB's: k probes derived from one 64-bit
// hash via double hashing, with k chosen from the bits-per-key budget.
package bloom

import (
	"encoding/binary"
	"math"
)

// Filter is an immutable serialized Bloom filter. The last byte stores the
// probe count so readers need no external configuration.
type Filter []byte

// DefaultBitsPerKey matches LevelDB's default of 10 (≈1% false-positive rate).
const DefaultBitsPerKey = 10

// hash64 is a 64-bit FNV-1a variant over the key.
func hash64(key []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// Build constructs a filter over the given keys with the given bits-per-key
// budget (0 means DefaultBitsPerKey).
func Build(keys [][]byte, bitsPerKey int) Filter {
	if bitsPerKey <= 0 {
		bitsPerKey = DefaultBitsPerKey
	}
	// k = ln(2) * bits/key rounds to the optimal probe count.
	k := int(float64(bitsPerKey) * math.Ln2)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	bits := len(keys) * bitsPerKey
	if bits < 64 {
		bits = 64
	}
	nBytes := (bits + 7) / 8
	bits = nBytes * 8
	filter := make(Filter, nBytes+1)
	filter[nBytes] = byte(k)
	for _, key := range keys {
		h := hash64(key)
		delta := h>>33 | h<<31 // rotate for double hashing
		for i := 0; i < k; i++ {
			pos := h % uint64(bits)
			filter[pos/8] |= 1 << (pos % 8)
			h += delta
		}
	}
	return filter
}

// MayContain reports whether the key is possibly in the set. False means
// definitely absent (Bloom filters never yield false negatives).
func (f Filter) MayContain(key []byte) bool {
	if len(f) < 2 {
		return false
	}
	k := int(f[len(f)-1])
	if k < 1 || k > 30 {
		// Treat unknown encodings as "maybe" so lookups stay correct.
		return true
	}
	bits := (len(f) - 1) * 8
	h := hash64(key)
	delta := h>>33 | h<<31
	for i := 0; i < k; i++ {
		pos := h % uint64(bits)
		if f[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}

// EstimateFalsePositiveRate empirically measures the false-positive rate of
// a filter built over n synthetic keys, probing with m absent keys. Used by
// tests and the ablation benchmarks.
func EstimateFalsePositiveRate(n, m, bitsPerKey int) float64 {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = make([]byte, 8)
		binary.BigEndian.PutUint64(keys[i], uint64(i))
	}
	f := Build(keys, bitsPerKey)
	hits := 0
	probe := make([]byte, 8)
	for i := 0; i < m; i++ {
		binary.BigEndian.PutUint64(probe, uint64(n+i))
		if f.MayContain(probe) {
			hits++
		}
	}
	return float64(hits) / float64(m)
}
