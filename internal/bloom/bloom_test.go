package bloom

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func keys(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, 8)
		binary.BigEndian.PutUint64(out[i], uint64(i)*2654435761)
	}
	return out
}

func TestNoFalseNegatives(t *testing.T) {
	for _, n := range []int{1, 10, 100, 5000} {
		ks := keys(n)
		f := Build(ks, 10)
		for i, k := range ks {
			if !f.MayContain(k) {
				t.Fatalf("n=%d: false negative for key %d", n, i)
			}
		}
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	rate := EstimateFalsePositiveRate(10000, 10000, 10)
	if rate > 0.03 {
		t.Fatalf("false positive rate %.4f too high for 10 bits/key", rate)
	}
	if rate == 0 {
		t.Log("zero observed false positives (acceptable but unusual)")
	}
}

func TestMoreBitsLowerRate(t *testing.T) {
	loose := EstimateFalsePositiveRate(20000, 20000, 4)
	tight := EstimateFalsePositiveRate(20000, 20000, 16)
	if tight >= loose {
		t.Fatalf("16 bits/key rate %.4f not below 4 bits/key rate %.4f", tight, loose)
	}
}

func TestEmptyAndTinyFilters(t *testing.T) {
	f := Build(nil, 10)
	if f.MayContain([]byte("anything")) {
		// An empty filter may or may not match; it must not panic. A
		// match here is a false positive, which is allowed but with 64
		// zero bits it should not occur.
		t.Fatal("empty filter matched")
	}
	var nilFilter Filter
	if nilFilter.MayContain([]byte("x")) {
		t.Fatal("nil filter matched")
	}
}

func TestQuickMembership(t *testing.T) {
	f := func(items [][]byte, probe []byte) bool {
		filter := Build(items, 12)
		for _, it := range items {
			if !filter.MayContain(it) {
				return false
			}
		}
		_ = filter.MayContain(probe) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptProbeCountIsSafe(t *testing.T) {
	f := Build(keys(100), 10)
	f[len(f)-1] = 200 // invalid k
	if !f.MayContain(keys(1)[0]) {
		t.Fatal("corrupt filter must fail open (return maybe)")
	}
}
