package crypto

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// OPE implements a mutable order-preserving encoding (mOPE, Popa et al.,
// S&P'13 style) maintained inside the enclave. Plaintext keys are assigned
// 64-bit codes that preserve order; the codes are what the untrusted store
// sorts and searches, enabling range queries over encrypted keys (§5.6.2).
//
// Codes are assigned by bisecting the gap between the codes of the
// plaintext's neighbours. When a gap is exhausted the structure must be
// rebalanced, which reassigns all codes (the caller must then re-encode
// stored keys — the standard mOPE mutation cost).
//
// OPE is safe for concurrent use.
type OPE struct {
	mu    sync.RWMutex
	keys  [][]byte // sorted distinct plaintexts
	codes []uint64 // parallel sorted codes
}

// NewOPE creates an empty order-preserving encoder.
func NewOPE() *OPE { return &OPE{} }

// ErrRebalanceNeeded is returned by Encode when no code remains between the
// neighbours of a new key. Call Rebalance and re-encode stored data.
var ErrRebalanceNeeded = errors.New("crypto: OPE code space exhausted, rebalance needed")

const (
	opeMin = uint64(0)
	opeMax = ^uint64(0)
)

// Encode returns the order-preserving code for the plaintext, inserting it
// into the mapping if new.
func (o *OPE) Encode(plaintext []byte) (uint64, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	i := sort.Search(len(o.keys), func(i int) bool { return bytes.Compare(o.keys[i], plaintext) >= 0 })
	if i < len(o.keys) && bytes.Equal(o.keys[i], plaintext) {
		return o.codes[i], nil
	}
	lo, hi := opeMin, opeMax
	if i > 0 {
		lo = o.codes[i-1]
	}
	if i < len(o.codes) {
		hi = o.codes[i]
	}
	if hi-lo < 2 {
		return 0, fmt.Errorf("%w (between neighbours of %q)", ErrRebalanceNeeded, plaintext)
	}
	// Interior inserts bisect the gap; boundary inserts (smallest/largest
	// key so far) advance by a bounded stride instead, so monotone insert
	// streams — the common case — get ~2^31 inserts before rebalance
	// rather than ~63.
	const boundaryStride = uint64(1) << 32
	gap := hi - lo
	var code uint64
	switch {
	case i == len(o.keys) && gap/2 > boundaryStride:
		code = lo + boundaryStride
	case i == 0 && gap/2 > boundaryStride:
		code = hi - boundaryStride
	default:
		code = lo + gap/2
	}
	kc := make([]byte, len(plaintext))
	copy(kc, plaintext)
	o.keys = append(o.keys, nil)
	copy(o.keys[i+1:], o.keys[i:])
	o.keys[i] = kc
	o.codes = append(o.codes, 0)
	copy(o.codes[i+1:], o.codes[i:])
	o.codes[i] = code
	return code, nil
}

// Lookup returns the code for an existing plaintext without inserting.
func (o *OPE) Lookup(plaintext []byte) (uint64, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	i := sort.Search(len(o.keys), func(i int) bool { return bytes.Compare(o.keys[i], plaintext) >= 0 })
	if i < len(o.keys) && bytes.Equal(o.keys[i], plaintext) {
		return o.codes[i], true
	}
	return 0, false
}

// Decode maps a code back to its plaintext.
func (o *OPE) Decode(code uint64) ([]byte, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	i := sort.Search(len(o.codes), func(i int) bool { return o.codes[i] >= code })
	if i < len(o.codes) && o.codes[i] == code {
		out := make([]byte, len(o.keys[i]))
		copy(out, o.keys[i])
		return out, true
	}
	return nil, false
}

// Bounds returns codes (lo, hi) such that every plaintext in [start, end]
// has a code in [lo, hi]; used to translate a plaintext range query into a
// ciphertext range query.
func (o *OPE) Bounds(start, end []byte) (uint64, uint64) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	lo := opeMin
	i := sort.Search(len(o.keys), func(i int) bool { return bytes.Compare(o.keys[i], start) >= 0 })
	if i > 0 {
		lo = o.codes[i-1] + 1
	}
	hi := opeMax
	j := sort.Search(len(o.keys), func(i int) bool { return bytes.Compare(o.keys[i], end) > 0 })
	if j < len(o.codes) {
		hi = o.codes[j] - 1
	}
	return lo, hi
}

// Rebalance reassigns all codes uniformly over the 64-bit space and returns
// the new plaintext→code mapping in sorted order, so the caller can rewrite
// stored ciphertexts.
func (o *OPE) Rebalance() map[string]uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := uint64(len(o.keys))
	out := make(map[string]uint64, n)
	if n == 0 {
		return out
	}
	step := opeMax / (n + 1)
	for i := range o.keys {
		o.codes[i] = step * uint64(i+1)
		out[string(o.keys[i])] = o.codes[i]
	}
	return out
}

// Len returns the number of distinct plaintexts in the mapping.
func (o *OPE) Len() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.keys)
}
