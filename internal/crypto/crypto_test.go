package crypto

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testKey(t *testing.T) MasterKey {
	t.Helper()
	mk, err := NewMasterKey()
	if err != nil {
		t.Fatal(err)
	}
	return mk
}

func TestDeterministicEncryptRoundTrip(t *testing.T) {
	de := NewDeterministic(testKey(t))
	for _, pt := range [][]byte{nil, {}, []byte("k"), []byte("a longer key value"), bytes.Repeat([]byte{0xaa}, 1000)} {
		ct := de.Encrypt(pt)
		got, err := de.Decrypt(ct)
		if err != nil {
			t.Fatalf("decrypt: %v", err)
		}
		if !bytes.Equal(got, pt) {
			t.Fatalf("round trip mismatch: %q != %q", got, pt)
		}
	}
}

func TestDeterministicEncryptIsDeterministic(t *testing.T) {
	de := NewDeterministic(testKey(t))
	a := de.Encrypt([]byte("same"))
	b := de.Encrypt([]byte("same"))
	if !bytes.Equal(a, b) {
		t.Fatal("DE not deterministic")
	}
	c := de.Encrypt([]byte("different"))
	if bytes.Equal(a, c) {
		t.Fatal("different plaintexts encrypted identically")
	}
}

func TestDeterministicDetectsTampering(t *testing.T) {
	de := NewDeterministic(testKey(t))
	ct := de.Encrypt([]byte("payload"))
	for i := range ct {
		bad := append([]byte(nil), ct...)
		bad[i] ^= 1
		if _, err := de.Decrypt(bad); err == nil {
			t.Fatalf("tampered byte %d not detected", i)
		}
	}
}

func TestDeterministicKeysIndependent(t *testing.T) {
	de1 := NewDeterministic(testKey(t))
	de2 := NewDeterministic(testKey(t))
	if bytes.Equal(de1.Encrypt([]byte("x")), de2.Encrypt([]byte("x"))) {
		t.Fatal("two master keys produce identical DE output")
	}
}

func TestValueEncrypterRoundTrip(t *testing.T) {
	ve, err := NewValue(testKey(t))
	if err != nil {
		t.Fatal(err)
	}
	pt := []byte("secret value")
	ct1, err := ve.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := ve.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct1, ct2) {
		t.Fatal("GCM encryption is deterministic (nonce reuse?)")
	}
	got, err := ve.Decrypt(ct1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatal("value round trip mismatch")
	}
	ct1[len(ct1)-1] ^= 1
	if _, err := ve.Decrypt(ct1); err == nil {
		t.Fatal("tampered value not detected")
	}
}

func TestBlockCipherRoundTripAndBinding(t *testing.T) {
	bc := NewBlock(testKey(t))
	data := bytes.Repeat([]byte("block"), 1000)
	sealed := bc.EncryptBlock(42, data)
	got, err := bc.DecryptBlock(42, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("block round trip mismatch")
	}
	// A host swapping sealed blocks between positions must be caught.
	if _, err := bc.DecryptBlock(43, sealed); err == nil {
		t.Fatal("block accepted under wrong blockID")
	}
	sealed[10] ^= 1
	if _, err := bc.DecryptBlock(42, sealed); err == nil {
		t.Fatal("tampered block not detected")
	}
}

func TestQuickDERoundTrip(t *testing.T) {
	de := NewDeterministic(MasterKey{1, 2, 3})
	f := func(pt []byte) bool {
		got, err := de.Decrypt(de.Encrypt(pt))
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOPEOrderPreserved(t *testing.T) {
	o := NewOPE()
	words := []string{"delta", "alpha", "echo", "bravo", "charlie", "alpha", "zulu", "a", "ab", "abc"}
	codes := make(map[string]uint64)
	for _, w := range words {
		c, err := o.Encode([]byte(w))
		if err != nil {
			t.Fatal(err)
		}
		if prev, ok := codes[w]; ok && prev != c {
			t.Fatalf("re-encoding %q changed code", w)
		}
		codes[w] = c
	}
	for a, ca := range codes {
		for b, cb := range codes {
			if (a < b) != (ca < cb) && a != b {
				t.Fatalf("order violated: %q=%d vs %q=%d", a, ca, b, cb)
			}
		}
	}
}

func TestOPEDecodeAndLookup(t *testing.T) {
	o := NewOPE()
	c, err := o.Encode([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	pt, ok := o.Decode(c)
	if !ok || string(pt) != "hello" {
		t.Fatalf("decode = %q, %v", pt, ok)
	}
	if _, ok := o.Decode(c + 1); ok {
		t.Fatal("decoded a non-existent code")
	}
	if _, ok := o.Lookup([]byte("absent")); ok {
		t.Fatal("lookup invented a code")
	}
	if o.Len() != 1 {
		t.Fatalf("Len = %d", o.Len())
	}
}

func TestOPEBounds(t *testing.T) {
	o := NewOPE()
	for _, w := range []string{"b", "d", "f"} {
		if _, err := o.Encode([]byte(w)); err != nil {
			t.Fatal(err)
		}
	}
	cb, _ := o.Lookup([]byte("b"))
	cd, _ := o.Lookup([]byte("d"))
	cf, _ := o.Lookup([]byte("f"))
	lo, hi := o.Bounds([]byte("c"), []byte("e"))
	if lo <= cb || hi >= cf {
		t.Fatalf("bounds [%d,%d] not strictly inside (%d,%d)", lo, hi, cb, cf)
	}
	if cd < lo || cd > hi {
		t.Fatalf("in-range code %d outside bounds [%d,%d]", cd, lo, hi)
	}
}

func TestOPERebalance(t *testing.T) {
	o := NewOPE()
	words := []string{"m", "g", "t", "c", "x"}
	for _, w := range words {
		if _, err := o.Encode([]byte(w)); err != nil {
			t.Fatal(err)
		}
	}
	mapping := o.Rebalance()
	if len(mapping) != len(words) {
		t.Fatalf("rebalance returned %d entries", len(mapping))
	}
	if !(mapping["c"] < mapping["g"] && mapping["g"] < mapping["m"] && mapping["m"] < mapping["t"] && mapping["t"] < mapping["x"]) {
		t.Fatal("rebalanced codes not ordered")
	}
}

func TestQuickOPEOrder(t *testing.T) {
	f := func(words [][]byte) bool {
		o := NewOPE()
		codes := make(map[string]uint64)
		for _, w := range words {
			c, err := o.Encode(w)
			if err != nil {
				return true // exhaustion is allowed, just not disorder
			}
			codes[string(w)] = c
		}
		for a, ca := range codes {
			for b, cb := range codes {
				if a < b && ca >= cb {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
