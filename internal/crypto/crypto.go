// Package crypto implements the confidentiality layer of eLSM (§5.6.2):
//
//   - deterministic encryption (DE) of data keys, so equal plaintext keys
//     map to equal ciphertexts and the untrusted store can be searched by
//     ciphertext (exact-match GET);
//   - semantically secure AES-GCM encryption of values;
//   - a mutable order-preserving encoding (mOPE) of keys, maintained inside
//     the enclave, enabling range queries over ciphertext (SCAN).
//
// The DE construction is SIV-style: a synthetic IV derived from
// HMAC-SHA256(K_mac, plaintext) keys an AES-CTR encryption, giving a
// deterministic, invertible, authenticated-by-recomputation scheme (the
// standard "deterministic and efficiently searchable encryption" shape of
// Bellare et al., CRYPTO'07).
package crypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
)

// KeySize is the master key size in bytes.
const KeySize = 32

// MasterKey is the root secret held inside the enclave; all scheme keys are
// derived from it by purpose-labelled HKDF-like expansion.
type MasterKey [KeySize]byte

// NewMasterKey generates a random master key.
func NewMasterKey() (MasterKey, error) {
	var k MasterKey
	if _, err := rand.Read(k[:]); err != nil {
		return k, fmt.Errorf("crypto: master key generation: %w", err)
	}
	return k, nil
}

// derive produces a purpose-specific subkey.
func (mk MasterKey) derive(purpose string) [32]byte {
	mac := hmac.New(sha256.New, mk[:])
	mac.Write([]byte(purpose))
	var out [32]byte
	mac.Sum(out[:0])
	return out
}

// ---------------------------------------------------------------------------
// Deterministic encryption of keys

// DeterministicEncrypter encrypts data keys deterministically (DE). Safe for
// concurrent use.
type DeterministicEncrypter struct {
	macKey [32]byte
	encKey [32]byte
}

// NewDeterministic builds a DE instance from the master key.
func NewDeterministic(mk MasterKey) *DeterministicEncrypter {
	return &DeterministicEncrypter{
		macKey: mk.derive("de-mac"),
		encKey: mk.derive("de-enc"),
	}
}

// sivSize is the synthetic IV length prepended to DE ciphertexts.
const sivSize = 16

// Encrypt deterministically encrypts the plaintext key. The output is
// siv ‖ ctr-encrypted-plaintext; equal inputs yield equal outputs.
func (d *DeterministicEncrypter) Encrypt(plaintext []byte) []byte {
	mac := hmac.New(sha256.New, d.macKey[:])
	mac.Write(plaintext)
	siv := mac.Sum(nil)[:sivSize]
	block, err := aes.NewCipher(d.encKey[:])
	if err != nil {
		// aes.NewCipher only fails on bad key sizes, which derive() precludes.
		panic(fmt.Sprintf("crypto: ctr cipher: %v", err))
	}
	out := make([]byte, sivSize+len(plaintext))
	copy(out, siv)
	ctr := cipher.NewCTR(block, siv)
	ctr.XORKeyStream(out[sivSize:], plaintext)
	return out
}

// ErrDecrypt indicates ciphertext corruption (SIV recomputation mismatch).
var ErrDecrypt = errors.New("crypto: decryption failed")

// Decrypt inverts Encrypt, verifying integrity by recomputing the SIV.
func (d *DeterministicEncrypter) Decrypt(ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < sivSize {
		return nil, fmt.Errorf("%w: ciphertext too short", ErrDecrypt)
	}
	siv := ciphertext[:sivSize]
	block, err := aes.NewCipher(d.encKey[:])
	if err != nil {
		panic(fmt.Sprintf("crypto: ctr cipher: %v", err))
	}
	pt := make([]byte, len(ciphertext)-sivSize)
	ctr := cipher.NewCTR(block, siv)
	ctr.XORKeyStream(pt, ciphertext[sivSize:])
	mac := hmac.New(sha256.New, d.macKey[:])
	mac.Write(pt)
	if !hmac.Equal(mac.Sum(nil)[:sivSize], siv) {
		return nil, ErrDecrypt
	}
	return pt, nil
}

// ---------------------------------------------------------------------------
// Randomized encryption of values

// ValueEncrypter encrypts record values with AES-GCM (semantic security).
// Safe for concurrent use.
type ValueEncrypter struct {
	aead cipher.AEAD
}

// NewValue builds a value encrypter from the master key.
func NewValue(mk MasterKey) (*ValueEncrypter, error) {
	k := mk.derive("value-enc")
	block, err := aes.NewCipher(k[:])
	if err != nil {
		return nil, fmt.Errorf("crypto: value cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("crypto: value gcm: %w", err)
	}
	return &ValueEncrypter{aead: aead}, nil
}

// Encrypt seals the value with a random nonce (prepended).
func (v *ValueEncrypter) Encrypt(plaintext []byte) ([]byte, error) {
	nonce := make([]byte, v.aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("crypto: value nonce: %w", err)
	}
	return v.aead.Seal(nonce, nonce, plaintext, nil), nil
}

// Decrypt opens a sealed value.
func (v *ValueEncrypter) Decrypt(ciphertext []byte) ([]byte, error) {
	ns := v.aead.NonceSize()
	if len(ciphertext) < ns {
		return nil, fmt.Errorf("%w: value too short", ErrDecrypt)
	}
	pt, err := v.aead.Open(nil, ciphertext[:ns], ciphertext[ns:], nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecrypt, err)
	}
	return pt, nil
}

// ---------------------------------------------------------------------------
// Block cipher for eLSM-P1 file protection

// BlockCipher encrypts whole SSTable blocks (file-granularity protection in
// eLSM-P1, §4.1: "SDK encrypts and digests the content of SSTable files").
type BlockCipher struct {
	encKey [32]byte
	macKey [32]byte
}

// NewBlock builds a block cipher from the master key.
func NewBlock(mk MasterKey) *BlockCipher {
	return &BlockCipher{encKey: mk.derive("block-enc"), macKey: mk.derive("block-mac")}
}

// blockMACSize is the truncated HMAC length appended to each block.
const blockMACSize = 16

// Overhead is the per-block ciphertext expansion.
const Overhead = sivSize + blockMACSize

// EncryptBlock encrypts data with a per-block synthetic IV derived from the
// block's position identifier, then appends a MAC: iv ‖ ct ‖ mac.
func (b *BlockCipher) EncryptBlock(blockID uint64, data []byte) []byte {
	mac := hmac.New(sha256.New, b.macKey[:])
	var idBuf [8]byte
	putUint64(idBuf[:], blockID)
	mac.Write(idBuf[:])
	mac.Write(data)
	full := mac.Sum(nil)
	iv := full[:sivSize]

	block, err := aes.NewCipher(b.encKey[:])
	if err != nil {
		panic(fmt.Sprintf("crypto: block cipher: %v", err))
	}
	out := make([]byte, sivSize+len(data)+blockMACSize)
	copy(out, iv)
	ctr := cipher.NewCTR(block, iv)
	ctr.XORKeyStream(out[sivSize:sivSize+len(data)], data)

	tag := hmac.New(sha256.New, b.macKey[:])
	tag.Write(idBuf[:])
	tag.Write(out[:sivSize+len(data)])
	copy(out[sivSize+len(data):], tag.Sum(nil)[:blockMACSize])
	return out
}

// DecryptBlock inverts EncryptBlock, verifying the MAC. A wrong blockID (a
// host swapping blocks around) fails verification.
func (b *BlockCipher) DecryptBlock(blockID uint64, sealed []byte) ([]byte, error) {
	if len(sealed) < Overhead {
		return nil, fmt.Errorf("%w: block too short", ErrDecrypt)
	}
	ctEnd := len(sealed) - blockMACSize
	var idBuf [8]byte
	putUint64(idBuf[:], blockID)
	tag := hmac.New(sha256.New, b.macKey[:])
	tag.Write(idBuf[:])
	tag.Write(sealed[:ctEnd])
	if !hmac.Equal(tag.Sum(nil)[:blockMACSize], sealed[ctEnd:]) {
		return nil, fmt.Errorf("%w: block MAC mismatch", ErrDecrypt)
	}
	iv := sealed[:sivSize]
	block, err := aes.NewCipher(b.encKey[:])
	if err != nil {
		panic(fmt.Sprintf("crypto: block cipher: %v", err))
	}
	pt := make([]byte, ctEnd-sivSize)
	ctr := cipher.NewCTR(block, iv)
	ctr.XORKeyStream(pt, sealed[sivSize:ctEnd])
	return pt, nil
}

func putUint64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}
