package hashutil

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestDomainSeparation(t *testing.T) {
	// The same raw bytes under different constructions must never collide.
	key := []byte("k")
	var h Hash
	rec := RecordDigest(key, 1, []byte("v"))
	leaf := LeafHash(key, rec)
	chain := ChainLink(1, rec, Zero)
	node := NodeHash(rec, rec)
	walLink := WALLink(Zero, 1, key, 1, []byte("v"))
	all := []Hash{rec, leaf, chain, node, walLink}
	for i := range all {
		if all[i] == h {
			t.Fatalf("hash %d is zero", i)
		}
		for j := i + 1; j < len(all); j++ {
			if all[i] == all[j] {
				t.Fatalf("constructions %d and %d collide", i, j)
			}
		}
	}
}

func TestRecordDigestBoundary(t *testing.T) {
	// key/value boundary must be unambiguous: ("ab","c") != ("a","bc").
	if RecordDigest([]byte("ab"), 1, []byte("c")) == RecordDigest([]byte("a"), 1, []byte("bc")) {
		t.Fatal("key/value boundary ambiguity")
	}
}

func TestRecordDigestTsSensitivity(t *testing.T) {
	a := RecordDigest([]byte("k"), 1, []byte("v"))
	b := RecordDigest([]byte("k"), 2, []byte("v"))
	if a == b {
		t.Fatal("timestamp not bound into record digest")
	}
}

func TestStateDigestOrderSensitive(t *testing.T) {
	r1 := Of([]byte("a"))
	r2 := Of([]byte("b"))
	if StateDigest([]Hash{r1, r2}, Zero) == StateDigest([]Hash{r2, r1}, Zero) {
		t.Fatal("state digest ignores root order")
	}
}

func TestQuickRecordDigestInjective(t *testing.T) {
	f := func(k1, v1, k2, v2 []byte, ts1, ts2 uint64) bool {
		if bytes.Equal(k1, k2) && ts1 == ts2 && bytes.Equal(v1, v2) {
			return true
		}
		return RecordDigest(k1, ts1, v1) != RecordDigest(k2, ts2, v2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestChainLinkOrderMatters(t *testing.T) {
	d1 := Of([]byte("r1"))
	d2 := Of([]byte("r2"))
	a := ChainLink(2, d2, ChainLink(1, d1, Zero))
	b := ChainLink(1, d1, ChainLink(2, d2, Zero))
	if a == b {
		t.Fatal("chain is order-insensitive")
	}
}

func TestIsZero(t *testing.T) {
	if !Zero.IsZero() {
		t.Fatal("Zero.IsZero() = false")
	}
	if Of([]byte("x")).IsZero() {
		t.Fatal("nonzero hash reported zero")
	}
}

func TestStringHex(t *testing.T) {
	h := Of([]byte("x"))
	s := h.String()
	if len(s) != 64 {
		t.Fatalf("hex length %d, want 64", len(s))
	}
}
