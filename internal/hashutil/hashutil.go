// Package hashutil provides the domain-separated SHA-256 hashing primitives
// shared by the eLSM digest structures (record hashes, version hash chains,
// Merkle interior nodes, WAL digest chains).
//
// Every hash is domain-separated with a one-byte tag so that, e.g., a Merkle
// leaf can never be confused with an interior node or a WAL link — a standard
// hardening against cross-context collision attacks on Merkle constructions.
package hashutil

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Size is the digest size in bytes.
const Size = sha256.Size

// Hash is a fixed-size SHA-256 digest.
type Hash [Size]byte

// Zero is the all-zero hash, used as the "absent" sentinel (e.g., the inner
// chain hash of the oldest version of a key).
var Zero Hash

// IsZero reports whether h is the all-zero sentinel.
func (h Hash) IsZero() bool { return h == Zero }

// String returns the hex encoding (handy in tests and logs).
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// Domain-separation tags. Start at one so the zero byte is never a valid tag
// (style guide: start enums at one).
const (
	tagRecord byte = iota + 1
	tagChain
	tagLeaf
	tagNode
	tagWAL
	tagState
	tagFile
)

// RecordDigest hashes one key-value record: H(tag ‖ len(k) ‖ k ‖ ts ‖ v).
// The explicit length prefix prevents key/value boundary ambiguity.
func RecordDigest(key []byte, ts uint64, value []byte) Hash {
	h := sha256.New()
	var buf [9]byte
	buf[0] = tagRecord
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(key)))
	h.Write(buf[:5])
	h.Write(key)
	binary.BigEndian.PutUint64(buf[1:9], ts)
	h.Write(buf[1:9])
	h.Write(value)
	var out Hash
	h.Sum(out[:0])
	return out
}

// ChainLink extends a same-key version hash chain by one (newer) record:
// H(tag ‖ ts ‖ recDigest ‖ inner). The paper builds the chain with the
// oldest record innermost, so presenting any stale version forces the prover
// to reveal the headers (ts, digest) of every newer version — which is how
// the enclave detects freshness violations (§5.3.1 Case 1).
func ChainLink(ts uint64, recDigest Hash, inner Hash) Hash {
	h := sha256.New()
	var buf [9]byte
	buf[0] = tagChain
	binary.BigEndian.PutUint64(buf[1:9], ts)
	h.Write(buf[:9])
	h.Write(recDigest[:])
	h.Write(inner[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// LeafHash wraps a completed version chain (or single-record digest) as a
// Merkle leaf, binding the user key so non-membership proofs can compare
// keys: H(tag ‖ len(k) ‖ k ‖ chainHead).
func LeafHash(key []byte, chainHead Hash) Hash {
	h := sha256.New()
	var buf [5]byte
	buf[0] = tagLeaf
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(key)))
	h.Write(buf[:5])
	h.Write(key)
	h.Write(chainHead[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// NodeHash combines two Merkle children: H(tag ‖ left ‖ right).
func NodeHash(left, right Hash) Hash {
	h := sha256.New()
	h.Write([]byte{tagNode})
	h.Write(left[:])
	h.Write(right[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// WALLink extends the write-ahead-log digest chain:
// dig' = H(tag ‖ dig ‖ kind ‖ len(k) ‖ k ‖ ts ‖ v) (paper §5.3 step w1).
func WALLink(dig Hash, kind byte, key []byte, ts uint64, value []byte) Hash {
	h := sha256.New()
	h.Write([]byte{tagWAL, kind})
	h.Write(dig[:])
	var buf [8]byte
	binary.BigEndian.PutUint32(buf[:4], uint32(len(key)))
	h.Write(buf[:4])
	h.Write(key)
	binary.BigEndian.PutUint64(buf[:8], ts)
	h.Write(buf[:8])
	h.Write(value)
	var out Hash
	h.Sum(out[:0])
	return out
}

// StateDigest binds an ordered list of level roots plus the WAL digest into
// one dataset-wide hash, which the rollback defence (§5.6.1) pins to the
// trusted monotonic counter.
func StateDigest(roots []Hash, walDigest Hash) Hash {
	h := sha256.New()
	h.Write([]byte{tagState})
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], uint32(len(roots)))
	h.Write(buf[:])
	for _, r := range roots {
		h.Write(r[:])
	}
	h.Write(walDigest[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// FileDigest hashes raw file bytes (file-granularity protection in eLSM-P1).
func FileDigest(data []byte) Hash {
	h := sha256.New()
	h.Write([]byte{tagFile})
	h.Write(data)
	var out Hash
	h.Sum(out[:0])
	return out
}

// Of hashes arbitrary bytes with no tag. Prefer the tagged helpers; this is
// for non-protocol uses (test fixtures, content addressing).
func Of(data []byte) Hash { return sha256.Sum256(data) }
