// Legacy line protocol. This file is the line-oriented protocol that
// cmd/elsm-server exposed before the binary front end existed, moved here
// verbatim so (a) the binary server can keep serving legacy clients —
// including REPL checkpoint/tail followers — on the same port via
// first-byte sniffing, and (b) the benchmark harness can drive both
// protocols against the same store. See cmd/elsm-server for the command
// reference.
package netsrv

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"

	"elsm"
	"elsm/internal/netproto"
	"elsm/internal/repl"
)

// maxBatchOps bounds one BATCH group (protocol abuse guard).
const maxBatchOps = 10000

// ServeLine serves one connection with the legacy line protocol until the
// peer disconnects or sends QUIT. It is the -proto line serving loop of
// cmd/elsm-server; the binary server dispatches here when a connection's
// first byte is printable.
func ServeLine(conn net.Conn, store *elsm.Store) {
	serveLine(bufio.NewReader(conn), conn, store)
}

// serveLine is ServeLine over an existing buffered reader (which may hold
// sniffed bytes). conn is the raw connection, used by REPL streams for
// deadlines and EOF detection.
func serveLine(r io.Reader, conn net.Conn, store *elsm.Store) {
	defer conn.Close()
	sess := &session{snaps: make(map[uint64]*elsm.Snapshot)}
	defer func() {
		for _, snap := range sess.snaps {
			snap.Close()
		}
	}()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	w := bufio.NewWriter(conn)
	defer w.Flush()
	for sc.Scan() {
		line := sc.Text()
		fields, err := splitFields(line)
		if err != nil {
			fmt.Fprintf(w, "ERR malformed line: %v\n", err)
			w.Flush()
			continue
		}
		if len(fields) == 0 {
			continue
		}
		cmd := strings.ToUpper(fields[0])
		args := fields[1:]
		switch {
		case cmd == "QUIT":
			return
		case cmd == "PUT" && len(args) == 2:
			ts, err := store.Put([]byte(args[0]), []byte(args[1]))
			reply(w, err, "OK %d", ts)
		case cmd == "GET" && len(args) == 1:
			res, err := store.Get([]byte(args[0]))
			switch {
			case err != nil:
				fmt.Fprintf(w, "ERR %v\n", err)
			case !res.Found:
				fmt.Fprintln(w, "NOTFOUND")
			default:
				fmt.Fprintf(w, "VALUE %d %s\n", res.Ts, field(res.Value))
			}
		case cmd == "DEL" && len(args) == 1:
			ts, err := store.Delete([]byte(args[0]))
			reply(w, err, "OK %d", ts)
		case cmd == "MPUT" && len(args) >= 2 && len(args)%2 == 0:
			b := store.NewBatch()
			for i := 0; i < len(args); i += 2 {
				b.Put([]byte(args[i]), []byte(args[i+1]))
			}
			ts, err := b.Commit()
			reply(w, err, "OK %d", ts)
		case cmd == "BATCH" && len(args) == 1:
			if !serveBatch(w, sc, store, args[0]) {
				return
			}
		case cmd == "SCAN" && len(args) == 2:
			serveIter(w, store.Iter([]byte(args[0]), []byte(args[1])))
		case cmd == "SNAPSHOT" && len(args) == 0:
			snap, err := store.Snapshot()
			if err != nil {
				fmt.Fprintf(w, "ERR %v\n", err)
				break
			}
			sess.nextSnap++
			sess.snaps[sess.nextSnap] = snap
			fmt.Fprintf(w, "OK %d %d\n", sess.nextSnap, snap.Ts())
		case cmd == "SGET" && len(args) == 2:
			snap, ok := sess.lookup(args[0])
			if !ok {
				fmt.Fprintf(w, "ERR unknown snapshot %q\n", args[0])
				break
			}
			res, err := snap.Get([]byte(args[1]))
			switch {
			case err != nil:
				fmt.Fprintf(w, "ERR %v\n", err)
			case !res.Found:
				fmt.Fprintln(w, "NOTFOUND")
			default:
				fmt.Fprintf(w, "VALUE %d %s\n", res.Ts, field(res.Value))
			}
		case cmd == "SSCAN" && len(args) == 3:
			snap, ok := sess.lookup(args[0])
			if !ok {
				fmt.Fprintf(w, "ERR unknown snapshot %q\n", args[0])
				break
			}
			serveIter(w, snap.Iter([]byte(args[1]), []byte(args[2])))
		case cmd == "RELEASE" && len(args) == 1:
			snap, ok := sess.lookup(args[0])
			if !ok {
				fmt.Fprintf(w, "ERR unknown snapshot %q\n", args[0])
				break
			}
			snap.Close()
			id, _ := strconv.ParseUint(args[0], 10, 64)
			delete(sess.snaps, id)
			fmt.Fprintln(w, "OK")
		case cmd == "PUTASYNC" && len(args) == 2:
			if len(sess.futures) >= maxSessionFutures {
				fmt.Fprintf(w, "ERR async backlog full (%d unsettled): SYNC first\n", len(sess.futures))
				break
			}
			b := store.NewBatch()
			b.Put([]byte(args[0]), []byte(args[1]))
			fut, err := b.CommitAsync(nil)
			if err != nil {
				fmt.Fprintf(w, "ERR %v\n", err)
				break
			}
			ts, err := fut.Ts(nil)
			if err != nil {
				fmt.Fprintf(w, "ERR %v\n", err)
				break
			}
			sess.futures = append(sess.futures, fut)
			fmt.Fprintf(w, "ACK %d\n", ts)
		case cmd == "SYNC" && len(args) == 0:
			if err := store.Sync(nil); err != nil {
				fmt.Fprintf(w, "ERR %v\n", err)
				break
			}
			settled := len(sess.futures)
			var failed error
			for _, fut := range sess.futures {
				if _, err := fut.Wait(nil); err != nil && failed == nil {
					failed = err
				}
			}
			sess.futures = sess.futures[:0]
			if failed != nil {
				fmt.Fprintf(w, "ERR async commit failed: %v\n", failed)
				break
			}
			fmt.Fprintf(w, "OK %d\n", settled)
		case cmd == "STATS" && len(args) == 0:
			for _, st := range storeStatsPairs(store) {
				fmt.Fprintf(w, "STAT %s %d\n", st.Name, st.Value)
			}
			fmt.Fprintln(w, "END")
		case cmd == "REPL" && len(args) == 1 && strings.ToUpper(args[0]) == "PROMOTE":
			epoch, err := store.Promote(nil)
			reply(w, err, "OK %d", epoch)
		case cmd == "REPL" && len(args) >= 2:
			// The connection becomes a one-way binary stream (checkpoint
			// bytes or group frames) and ends with it.
			serveRepl(w, conn, store, args)
			return
		default:
			fmt.Fprintf(w, "ERR unknown command or wrong arity %q\n", cmd)
		}
		w.Flush()
	}
}

// splitFields tokenizes one protocol line: fields are bare tokens or
// Go-syntax quoted strings, separated by spaces.
func splitFields(line string) ([]string, error) {
	var out []string
	i := 0
	for i < len(line) {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		if i >= len(line) {
			break
		}
		if line[i] == '"' {
			prefix, err := strconv.QuotedPrefix(line[i:])
			if err != nil {
				return nil, fmt.Errorf("bad quoted field at column %d", i+1)
			}
			field, err := strconv.Unquote(prefix)
			if err != nil {
				return nil, fmt.Errorf("bad quoted field at column %d", i+1)
			}
			i += len(prefix)
			if i < len(line) && line[i] != ' ' {
				return nil, fmt.Errorf("garbage after quoted field at column %d", i+1)
			}
			out = append(out, field)
			continue
		}
		j := i
		for j < len(line) && line[j] != ' ' {
			if line[j] == '"' {
				return nil, fmt.Errorf("unexpected quote inside bare field at column %d", j+1)
			}
			j++
		}
		out = append(out, line[i:j])
		i = j
	}
	return out, nil
}

// field renders a byte string for the wire: bare when it is a printable
// token, Go-quoted otherwise (binary safety in responses).
func field(b []byte) string {
	if len(b) == 0 {
		return `""`
	}
	for _, c := range b {
		if c <= ' ' || c == '"' || c == '\\' || c >= 0x7f {
			return strconv.Quote(string(b))
		}
	}
	return string(b)
}

// session is per-connection protocol state: open snapshots and the
// unsettled async-commit futures awaiting a SYNC.
type session struct {
	snaps    map[uint64]*elsm.Snapshot
	nextSnap uint64
	futures  []*elsm.CommitFuture
}

// maxSessionFutures bounds unsettled PUTASYNC futures per connection
// (protocol abuse guard — the store's MaxAsyncCommitBacklog bounds the
// global pipeline; this bounds one client's bookkeeping).
const maxSessionFutures = 100000

// serveBatch reads n op lines off the connection and commits them as one
// atomic group. Any malformed op line aborts the whole batch with ERR and
// nothing is applied; the remaining declared op lines are still consumed,
// so a pipelining client's leftover ops are never executed as top-level
// commands and the reply stream stays in sync.
// A bad size declaration is a framing-level protocol error: the server
// cannot know how many op lines will follow, so it replies ERR and reports
// the session unrecoverable (the caller closes the connection).
func serveBatch(w *bufio.Writer, sc *bufio.Scanner, store *elsm.Store, nArg string) (ok bool) {
	n, err := strconv.Atoi(nArg)
	if err != nil || n < 0 || n > maxBatchOps {
		fmt.Fprintf(w, "ERR bad batch size %q (max %d), closing connection\n", nArg, maxBatchOps)
		return false
	}
	drain := func(read int) {
		for i := read; i < n; i++ {
			if !sc.Scan() {
				return
			}
		}
	}
	b := store.NewBatch()
	// The ERR is buffered, not flushed: a correct client sends all n op
	// lines before reading the single batch reply, so the drain below must
	// keep consuming input first (flushing here would deadlock a client
	// that is still mid-send on an unbuffered transport). The serve loop
	// flushes after serveBatch returns.
	abort := func(format string, args ...interface{}) {
		fmt.Fprintf(w, format+"\n", args...)
	}
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			abort("ERR batch truncated at op %d of %d", i, n)
			return true
		}
		fields, err := splitFields(sc.Text())
		if err != nil {
			abort("ERR malformed batch op %d: %v", i, err)
			drain(i + 1)
			return true
		}
		if len(fields) == 0 {
			abort("ERR empty batch op %d", i)
			drain(i + 1)
			return true
		}
		switch cmd := strings.ToUpper(fields[0]); {
		case cmd == "PUT" && len(fields) == 3:
			b.Put([]byte(fields[1]), []byte(fields[2]))
		case cmd == "DEL" && len(fields) == 2:
			b.Delete([]byte(fields[1]))
		default:
			abort("ERR bad batch op %d: %q", i, fields[0])
			drain(i + 1)
			return true
		}
	}
	ts, err := b.Commit()
	reply(w, err, "OK %d", ts)
	return true
}

// lookup resolves a snapshot id argument against the session table.
func (sess *session) lookup(arg string) (*elsm.Snapshot, bool) {
	id, err := strconv.ParseUint(arg, 10, 64)
	if err != nil {
		return nil, false
	}
	snap, ok := sess.snaps[id]
	return snap, ok
}

// serveIter renders one verified stream (live or snapshot) to the wire. A
// mid-stream verification failure terminates the stream with ERR instead
// of END — the client discards the partial rows.
func serveIter(w *bufio.Writer, it *elsm.Iterator) {
	count := 0
	for it.Next() {
		fmt.Fprintf(w, "ROW %s %s\n", field(it.Key()), field(it.Value()))
		count++
		if count%64 == 0 {
			w.Flush() // stream incrementally, don't buffer the whole range
		}
	}
	if err := it.Close(); err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	fmt.Fprintf(w, "END %d\n", count)
}

// storeStatsPairs renders the store's counters as name/value pairs — the
// one list behind both protocols' STATS commands, including the
// background-maintenance counters, the resolved group-commit window and
// the per-shard (shardN_*) breakdown, so an operator can see whether load
// spreads or one partition runs hot. The binary protocol appends its
// net_* gauges on top.
func storeStatsPairs(store *elsm.Store) []netproto.Stat {
	st := store.Stats()
	pairs := []netproto.Stat{
		{Name: "shards", Value: uint64(st.Shards)},
		{Name: "flushes", Value: st.Flushes},
		{Name: "compactions", Value: st.Compactions},
		{Name: "background_compactions", Value: st.BackgroundCompactions},
		{Name: "bytes_flushed", Value: st.BytesFlushed},
		{Name: "bytes_compacted", Value: st.BytesCompacted},
		{Name: "records_dropped", Value: st.RecordsDropped},
		{Name: "manifest_updates", Value: st.ManifestUpdates},
		{Name: "disk_bytes", Value: uint64(st.DiskBytes)},
		{Name: "wal_syncs", Value: st.WALSyncs},
		{Name: "group_commits", Value: st.GroupCommits},
		{Name: "grouped_records", Value: st.GroupedRecords},
		{Name: "wal_torn_records", Value: st.WALTornRecords},
		{Name: "flush_stall_nanos", Value: st.FlushStallNanos},
		{Name: "compaction_stall_nanos", Value: st.CompactionStallNanos},
		{Name: "compaction_debt_bytes", Value: st.CompactionDebtBytes},
		{Name: "parallel_compactions", Value: st.ParallelCompactions},
		{Name: "compaction_workers_busy", Value: st.CompactionWorkersBusy},
		{Name: "pinned_runs", Value: st.PinnedRuns},
		{Name: "snapshots_open", Value: st.SnapshotsOpen},
		{Name: "async_commits_in_flight", Value: st.AsyncCommitsInFlight},
		{Name: "group_commit_window_nanos", Value: st.GroupCommitWindowNanos},
		{Name: "fsync_ewma_nanos", Value: st.FsyncEWMANanos},
		{Name: "page_faults", Value: st.PageFaults},
		{Name: "ecalls", Value: st.ECalls},
		{Name: "ocalls", Value: st.OCalls},
		{Name: "copied_bytes", Value: st.CopiedBytes},
		{Name: "enclave_bytes", Value: uint64(st.EnclaveBytes)},
		{Name: "verified_gets", Value: st.VerifiedGets},
		{Name: "proof_bytes", Value: st.ProofBytes},
		{Name: "runs_probed", Value: st.RunsProbed},
		{Name: "repl_lag_groups", Value: st.ReplLagGroups},
		{Name: "repl_lag_bytes", Value: st.ReplLagBytes},
		{Name: "followers_connected", Value: st.FollowersConnected},
		{Name: "repl_reconnects", Value: st.ReplReconnects},
		{Name: "repl_rebootstraps", Value: st.ReplRebootstraps},
		{Name: "repl_epoch", Value: st.ReplEpoch},
	}
	for lvl, debt := range st.CompactionDebtByLevel {
		pairs = append(pairs, netproto.Stat{Name: fmt.Sprintf("compaction_debt_level%d", lvl), Value: debt})
	}
	pairs = append(pairs, histStatsPairs(store)...)
	for i, ss := range store.ShardStats() {
		pairs = append(pairs,
			netproto.Stat{Name: fmt.Sprintf("shard%d_wal_syncs", i), Value: ss.WALSyncs},
			netproto.Stat{Name: fmt.Sprintf("shard%d_group_commits", i), Value: ss.GroupCommits},
			netproto.Stat{Name: fmt.Sprintf("shard%d_snapshots_open", i), Value: ss.SnapshotsOpen},
			netproto.Stat{Name: fmt.Sprintf("shard%d_async_commits_in_flight", i), Value: ss.AsyncCommitsInFlight},
			netproto.Stat{Name: fmt.Sprintf("shard%d_disk_bytes", i), Value: uint64(ss.DiskBytes)},
			netproto.Stat{Name: fmt.Sprintf("shard%d_compaction_debt_bytes", i), Value: ss.CompactionDebtBytes},
		)
	}
	return pairs
}

// histStatsPairs folds the store's per-shard latency histograms (the
// canonical obs.Recorder.Hists list — the same one /metrics renders) into
// store-wide count/p50/p99 pairs for both protocols' STATS commands.
// Shards merge bucket-wise before the quantile is taken, so the percentile
// is computed over the union of observations, never averaged across
// shards. Histograms with no observations are omitted: an uninstrumented
// or idle store keeps its STATS output unchanged.
func histStatsPairs(store *elsm.Store) []netproto.Stat {
	recs := store.Recorders()
	if len(recs) == 0 {
		return nil
	}
	var pairs []netproto.Stat
	names := recs[0].Hists()
	for idx, nh := range names {
		snap := nh.Hist.Snapshot()
		for _, r := range recs[1:] {
			snap.Merge(r.Hists()[idx].Hist.Snapshot())
		}
		if snap.Count == 0 {
			continue
		}
		pairs = append(pairs,
			netproto.Stat{Name: "hist_" + nh.Name + "_count", Value: snap.Count},
			netproto.Stat{Name: "hist_" + nh.Name + "_p50", Value: snap.Quantile(0.5)},
			netproto.Stat{Name: "hist_" + nh.Name + "_p99", Value: snap.Quantile(0.99)},
		)
	}
	return pairs
}

// serveRepl handles the replication endpoint:
//
//	REPL CKPT <shard>\n          -> OK\n + the shard's checkpoint stream
//	REPL TAIL <shard> <fromTs>\n -> OK\n + attested group frames from
//	                                fromTs, streamed until either side goes
//	                                away, or ERR BEHIND\n when fromTs has
//	                                fallen out of the leader's retained
//	                                ring (the follower re-bootstraps)
//
// TAIL answers its status line eagerly, right after the shard and ring
// checks: a caught-up follower of an idle leader would otherwise wait for
// the first frame with no status at all, wedging its status read (and its
// Close) indefinitely. CKPT defers OK until the stream's first byte, so
// export errors that precede any payload surface on the status line.
func serveRepl(w *bufio.Writer, conn net.Conn, store *elsm.Store, args []string) {
	sub := strings.ToUpper(args[0])
	shard, err := strconv.Atoi(args[1])
	if err != nil || shard < 0 || shard >= store.Shards() {
		fmt.Fprintf(w, "ERR bad shard %q\n", args[1])
		return
	}
	sw := &statusWriter{w: w, conn: conn}
	switch {
	case sub == "CKPT" && len(args) == 2:
		err = store.ServeCheckpoint(shard, sw)
	case sub == "TAIL" && len(args) == 3:
		fromTs, perr := strconv.ParseUint(args[2], 10, 64)
		if perr != nil {
			fmt.Fprintf(w, "ERR bad fromTs %q\n", args[2])
			return
		}
		if err := store.TailReady(shard, fromTs); err != nil {
			writeReplErr(w, err)
			return
		}
		fmt.Fprintln(w, "OK")
		w.Flush()
		sw.started = true
		// Followers never send after the command line: the next read
		// completes when the peer closes, unblocking a tail idling at the
		// head of a quiet leader.
		stop := make(chan struct{})
		go func() {
			conn.Read(make([]byte, 1))
			close(stop)
		}()
		err = store.ServeTail(shard, fromTs, sw, stop)
	default:
		fmt.Fprintf(w, "ERR unknown REPL form %q\n", sub)
		return
	}
	if !sw.started && err != nil {
		writeReplErr(w, err)
	}
}

// writeReplErr renders a replication error as a status line, using the
// dedicated BEHIND token for the re-bootstrap condition so followers can
// match it exactly instead of parsing error prose.
func writeReplErr(w *bufio.Writer, err error) {
	if errors.Is(err, repl.ErrBehind) {
		fmt.Fprintln(w, repl.StatusBehind)
		return
	}
	fmt.Fprintf(w, "ERR %v\n", err)
}

// replWriteTimeout bounds each REPL stream write: a follower that stopped
// draining its socket fails its stream instead of wedging the leader's
// serve goroutine (and, through the hub's frame fan-out, other followers)
// forever.
const replWriteTimeout = 30 * time.Second

// statusWriter defers the REPL "OK" status line until the first payload
// byte, letting pre-stream failures use the status line instead. Every
// write is deadline-bounded on the underlying connection.
type statusWriter struct {
	w       *bufio.Writer
	conn    net.Conn
	started bool
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if !sw.started {
		sw.started = true
		fmt.Fprintln(sw.w, "OK")
	}
	sw.conn.SetWriteDeadline(time.Now().Add(replWriteTimeout))
	defer sw.conn.SetWriteDeadline(time.Time{})
	n, err := sw.w.Write(p)
	if err == nil {
		// Flush per write: tail frames must reach the follower promptly.
		err = sw.w.Flush()
	}
	return n, err
}

func reply(w *bufio.Writer, err error, format string, args ...interface{}) {
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	fmt.Fprintf(w, format+"\n", args...)
}
