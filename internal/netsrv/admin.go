// Admin/observability HTTP endpoint. The binary protocol's STATS frame is
// the machine interface for clients already speaking netproto; this file
// is the operator interface: a plain HTTP handler serving Prometheus
// text-format metrics, pprof profiles, and the observability rings as
// JSON. cmd/elsm-server mounts it behind the opt-in -admin flag.
//
// Security: the handler is plaintext and unauthenticated — everything it
// serves is diagnostic, but profiles and event messages can leak workload
// shape, so the server binds it to localhost by default and operators who
// expose it wider must front it themselves (see cmd/elsm-server).
package netsrv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"

	"elsm/internal/obs"
)

// AdminHandler returns the observability HTTP handler for this server:
//
//	/metrics               Prometheus text format: every STATS gauge
//	                       (elsm_* with per-shard labels) plus the latency
//	                       histograms as summaries
//	/debug/pprof/*         the standard Go profiles
//	/traces                sampled commit-pipeline traces + slow-op log, JSON
//	/events                the structured event ring, JSON
//
// The handler is independent of the TCP listeners: mount it on any
// http.Server (cmd/elsm-server's -admin flag does).
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/traces", s.handleTraces)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// splitShardStat recognizes the per-shard stat naming convention
// ("shard3_disk_bytes") and splits it into the label value and base name,
// so /metrics can expose one metric with a shard label instead of N
// metric names.
func splitShardStat(name string) (shard, base string, ok bool) {
	rest, found := strings.CutPrefix(name, "shard")
	if !found {
		return "", "", false
	}
	i := 0
	for i < len(rest) && rest[i] >= '0' && rest[i] <= '9' {
		i++
	}
	if i == 0 || i >= len(rest) || rest[i] != '_' {
		return "", "", false
	}
	return rest[:i], rest[i+1:], true
}

// handleMetrics renders every stat the STATS commands expose, in
// Prometheus text format under the elsm_ prefix: store and net_* gauges
// (per-shard ones as shard-labeled series), then the per-shard latency
// histograms as summaries with a merged shard="all" series, then the
// hub-level histograms and event counter. The hist_* quantile pairs of
// the wire STATS list are skipped — here the histograms render natively.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	type shardSample struct {
		shard string
		v     uint64
	}
	var order []string
	grouped := map[string][]shardSample{}
	for _, st := range s.statsPairs() {
		if strings.HasPrefix(st.Name, "hist_") {
			continue
		}
		if shard, base, ok := splitShardStat(st.Name); ok {
			if _, seen := grouped[base]; !seen {
				order = append(order, base)
			}
			grouped[base] = append(grouped[base], shardSample{shard, st.Value})
			continue
		}
		obs.WriteGauge(&buf, "elsm_"+st.Name, st.Value)
	}
	for _, base := range order {
		name := obs.PromName("elsm_" + base)
		fmt.Fprintf(&buf, "# TYPE %s gauge\n", name)
		for _, smp := range grouped[base] {
			fmt.Fprintf(&buf, "%s{shard=%q} %d\n", name, smp.shard, smp.v)
		}
	}
	obs.WriteRecorderMetrics(&buf, "elsm_", s.store.Recorders())
	if o := s.obs; o != nil {
		obs.WriteSummary(&buf, "elsm_net_service_nanos",
			[]obs.SummarySeries{{Snap: o.NetService.Snapshot()}})
		obs.WriteSummary(&buf, "elsm_router_batch_nanos",
			[]obs.SummarySeries{{Snap: o.RouterBatch.Snapshot()}})
		obs.WriteGauge(&buf, "elsm_events_total", o.EventsTotal())
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}

// handleTraces serves the sampled trace ring and the slow-op log, oldest
// first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	o := s.obs
	writeJSON(w, struct {
		SampleEvery uint64      `json:"sample_every"`
		SlowNanos   uint64      `json:"slow_threshold_nanos"`
		Traces      []obs.Trace `json:"traces"`
		SlowOps     []obs.Trace `json:"slow_ops"`
	}{o.SampleEvery(), uint64(o.SlowThreshold()), o.Traces(), o.SlowOps()})
}

// handleEvents serves the structured event ring, oldest first, with the
// all-time count so a consumer can detect eviction between polls.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	o := s.obs
	writeJSON(w, struct {
		Total  uint64      `json:"total"`
		Events []obs.Event `json:"events"`
	}{o.EventsTotal(), o.Events()})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
