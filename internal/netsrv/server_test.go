package netsrv

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"elsm"
	"elsm/internal/netclient"
	"elsm/internal/netproto"
	"elsm/internal/vfs"
)

// startServer opens a store with opts, serves it with cfg on a loopback
// listener and returns the server and its address. Teardown is automatic.
func startServer(t *testing.T, opts elsm.Options, cfg Config) (*Server, string) {
	t.Helper()
	store, err := elsm.Open(opts)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	srv, err := New(store, cfg)
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		store.Close()
	})
	return srv, ln.Addr().String()
}

func dial(t *testing.T, addr string) *netclient.Client {
	t.Helper()
	c, err := netclient.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestBinaryProtocolRoundTrip(t *testing.T) {
	_, addr := startServer(t, elsm.Options{}, Config{})
	c := dial(t, addr)

	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	ts, err := c.Put([]byte("alpha"), []byte("one"))
	if err != nil || ts == 0 {
		t.Fatalf("put: ts %d err %v", ts, err)
	}
	res, err := c.Get([]byte("alpha"))
	if err != nil || !res.Found || string(res.Value) != "one" || res.Ts != ts {
		t.Fatalf("get: %+v err %v", res, err)
	}
	if res, err := c.Get([]byte("missing")); err != nil || res.Found {
		t.Fatalf("get missing: %+v err %v", res, err)
	}
	if _, err := c.Batch([]netproto.BatchOp{
		{Key: []byte("beta"), Value: []byte("two")},
		{Key: []byte("gamma"), Value: []byte("three")},
		{Key: []byte("alpha"), Delete: true},
	}); err != nil {
		t.Fatalf("batch: %v", err)
	}
	if res, err := c.Get([]byte("alpha")); err != nil || res.Found {
		t.Fatalf("deleted key still visible: %+v err %v", res, err)
	}
	if err := c.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}

	sc, err := c.Scan(nil, []byte("\xff"))
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	var keys []string
	for sc.Next() {
		keys = append(keys, string(sc.Key()))
	}
	if err := sc.Close(); err != nil {
		t.Fatalf("scan close: %v", err)
	}
	if want := []string{"beta", "gamma"}; strings.Join(keys, ",") != strings.Join(want, ",") {
		t.Fatalf("scan keys = %v, want %v", keys, want)
	}

	if _, err := c.Delete([]byte("beta")); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if res, err := c.Get([]byte("beta")); err != nil || res.Found {
		t.Fatalf("beta survived delete: %+v err %v", res, err)
	}
}

// TestScanStreamsChunks pushes a range past one chunk so the multi-frame
// path (several CodeRows, one CodeScanEnd) is exercised end to end.
func TestScanStreamsChunks(t *testing.T) {
	_, addr := startServer(t, elsm.Options{}, Config{})
	c := dial(t, addr)
	const n = scanChunkRows*2 + 17
	for i := 0; i < n; i++ {
		if _, err := c.Put(fmt.Appendf(nil, "key%06d", i), []byte("v")); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	sc, err := c.Scan(nil, []byte("\xff"))
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	count := 0
	for sc.Next() {
		count++
	}
	if err := sc.Close(); err != nil {
		t.Fatalf("scan close: %v", err)
	}
	if count != n {
		t.Fatalf("scanned %d rows, want %d", count, n)
	}
}

// TestStatsGaugesMove is the satellite check: the net_* gauges must move
// under traffic, over the wire, through the STATS op.
func TestStatsGaugesMove(t *testing.T) {
	srv, addr := startServer(t, elsm.Options{}, Config{})
	c := dial(t, addr)

	// Pipeline a burst so the depth high-water mark can exceed 1.
	var futs []*netclient.Future
	for i := 0; i < 32; i++ {
		fut, err := c.PutAsync(fmt.Appendf(nil, "k%03d", i), []byte("v"))
		if err != nil {
			t.Fatalf("putasync: %v", err)
		}
		futs = append(futs, fut)
	}
	for _, fut := range futs {
		if _, err := fut.Wait(); err != nil {
			t.Fatalf("wait: %v", err)
		}
	}

	m, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	for _, name := range []string{
		"net_connections", "net_inflight_requests", "net_busy_rejects",
		"net_bytes_in", "net_bytes_out", "net_pipeline_depth_hwm",
	} {
		if _, ok := m[name]; !ok {
			t.Fatalf("STATS missing gauge %q", name)
		}
	}
	if m["net_connections"] != 1 {
		t.Fatalf("net_connections = %d, want 1", m["net_connections"])
	}
	if m["net_bytes_in"] == 0 || m["net_bytes_out"] == 0 {
		t.Fatalf("byte gauges did not move: in %d out %d", m["net_bytes_in"], m["net_bytes_out"])
	}
	if m["net_pipeline_depth_hwm"] == 0 {
		t.Fatalf("pipeline depth HWM stayed 0 under a 32-deep burst")
	}
	// The STATS request itself is in flight while being answered.
	if m["net_inflight_requests"] == 0 {
		t.Fatalf("net_inflight_requests = 0 while serving STATS")
	}
	// The in-process snapshot agrees.
	if s := srv.Stats(); s.Connections != 1 || s.BytesIn == 0 {
		t.Fatalf("Server.Stats() = %+v, want live connection and traffic", s)
	}
}

// TestConnectionCapSheds verifies the first admission layer: a connection
// over MaxConnections draws one BUSY frame (id 0) and is closed, and the
// reject is counted.
func TestConnectionCapSheds(t *testing.T) {
	srv, addr := startServer(t, elsm.Options{}, Config{MaxConnections: 1})
	c := dial(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatalf("first connection ping: %v", err)
	}

	c2, err := netclient.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c2.Close()
	if err := c2.Ping(); !errors.Is(err, netclient.ErrBusy) {
		t.Fatalf("over-cap ping err = %v, want ErrBusy", err)
	}
	if srv.Stats().BusyRejects == 0 {
		t.Fatalf("connection shed not counted in BusyRejects")
	}
	// The admitted connection is unaffected.
	if err := c.Ping(); err != nil {
		t.Fatalf("admitted connection broken by shed: %v", err)
	}
}

// TestGlobalInflightBudgetSheds verifies the second admission layer:
// requests past MaxInflight draw CodeBusy immediately while the admitted
// request completes fine.
func TestGlobalInflightBudgetSheds(t *testing.T) {
	// A long group-commit window makes the first write hold its in-flight
	// slot long enough for the follow-up burst to hit the exhausted budget
	// deterministically.
	srv, addr := startServer(t,
		elsm.Options{GroupCommitWindow: 150 * time.Millisecond},
		Config{MaxInflight: 1, PipelineDepth: 16})
	c := dial(t, addr)

	slow, err := c.PutAsync([]byte("slow"), []byte("write"))
	if err != nil {
		t.Fatalf("putasync: %v", err)
	}
	var busy int
	for i := 0; i < 8; i++ {
		fut, err := c.GetAsync([]byte("slow"))
		if err != nil {
			t.Fatalf("getasync: %v", err)
		}
		if _, err := fut.Wait(); errors.Is(err, netclient.ErrBusy) {
			busy++
		}
	}
	if busy == 0 {
		t.Fatalf("no request shed with MaxInflight 1 and a slot held for 150ms")
	}
	if _, err := slow.Wait(); err != nil {
		t.Fatalf("admitted write failed: %v", err)
	}
	if srv.Stats().BusyRejects == 0 {
		t.Fatalf("budget sheds not counted")
	}
}

// TestCommitBacklogSheds verifies the third admission layer: when the
// engine's MaxAsyncCommitBacklog gate stays full past AdmissionWait, the
// write is shed with BUSY instead of camping on the gate. Slow fsyncs keep
// the single backlog slot occupied.
func TestCommitBacklogSheds(t *testing.T) {
	srv, addr := startServer(t,
		elsm.Options{
			FS:                    vfs.NewSlowSync(vfs.NewMem(), 100*time.Millisecond),
			MaxAsyncCommitBacklog: 1,
		},
		Config{AdmissionWait: 5 * time.Millisecond})
	c := dial(t, addr)

	var futs []*netclient.Future
	for i := 0; i < 8; i++ {
		fut, err := c.PutAsync(fmt.Appendf(nil, "k%d", i), []byte("v"))
		if err != nil {
			t.Fatalf("putasync: %v", err)
		}
		futs = append(futs, fut)
	}
	var ok, busy int
	for _, fut := range futs {
		_, err := fut.Wait()
		switch {
		case err == nil:
			ok++
		case errors.Is(err, netclient.ErrBusy):
			busy++
		default:
			t.Fatalf("unexpected write error: %v", err)
		}
	}
	if ok == 0 {
		t.Fatalf("every write shed; the admitted path never completed")
	}
	if busy == 0 {
		t.Fatalf("no write shed with backlog 1, 100ms fsyncs and 5ms AdmissionWait")
	}
	if srv.Stats().BusyRejects == 0 {
		t.Fatalf("backlog sheds not counted")
	}
	// The connection survives shedding: a fresh write succeeds.
	if _, err := c.Put([]byte("after"), []byte("shed")); err != nil {
		t.Fatalf("write after shed: %v", err)
	}
}

// TestSlowClientTornDown is the slow-client satellite: a client that
// requests a large scan and never reads must lose its connection via the
// write deadline, without wedging the server.
func TestSlowClientTornDown(t *testing.T) {
	srv, addr := startServer(t, elsm.Options{},
		Config{ResponseBuffer: 1, WriteTimeout: 200 * time.Millisecond})

	// Preload enough rows that the scan overwhelms socket + response
	// buffers while the client refuses to read.
	load, err := netclient.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	val := bytes.Repeat([]byte("x"), 4096)
	for base := 0; base < 2000; base += 200 {
		ops := make([]netproto.BatchOp, 200)
		for i := range ops {
			ops[i] = netproto.BatchOp{Key: fmt.Appendf(nil, "key%08d", base+i), Value: val}
		}
		if _, err := load.Batch(ops); err != nil {
			t.Fatalf("preload: %v", err)
		}
	}
	load.Close()

	stalled, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer stalled.Close()
	frame := netproto.AppendRequest(nil, &netproto.Request{
		Op: netproto.OpScan, ID: 1, Start: nil, End: []byte("\xff"),
	})
	if _, err := stalled.Write(frame); err != nil {
		t.Fatalf("write scan: %v", err)
	}
	// Never read. The server's write deadline must fire and untrack the
	// connection; poll the gauge instead of draining the socket.
	deadline := time.Now().Add(8 * time.Second)
	for srv.Stats().Connections != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server kept serving a stalled client past the deadline: %+v", srv.Stats())
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The socket really was torn down: draining it bottoms out in an error.
	stalled.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1<<16)
	for {
		if _, err := stalled.Read(buf); err != nil {
			break // reset/EOF — what we want; a deadline error would fail below
		}
	}

	// The server is still healthy for everyone else.
	c := dial(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatalf("server unhealthy after slow-client teardown: %v", err)
	}
}

// TestFrameFaultsAnswered sends framing-level garbage and asserts the
// typed error comes back under the salvaged id with the connection intact.
func TestFrameFaultsAnswered(t *testing.T) {
	_, addr := startServer(t, elsm.Options{}, Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)

	// Oversized frame: declared 17MB payload, salvageable prefix, then a
	// valid PING. The payload must be discarded, the fault answered under
	// id 7, and the PING answered after it.
	var hdr [13]byte
	size := netproto.MaxFrame + 1
	hdr[0] = byte(size >> 24)
	hdr[1] = byte(size >> 16)
	hdr[2] = byte(size >> 8)
	hdr[3] = byte(size)
	hdr[4] = uint8(netproto.OpPut)
	hdr[12] = 7 // big-endian id 7
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(make([]byte, size-9)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(netproto.AppendRequest(nil, &netproto.Request{Op: netproto.OpPing, ID: 8})); err != nil {
		t.Fatal(err)
	}

	typ, id, body, err := netproto.ReadFrame(br, 0)
	if err != nil {
		t.Fatalf("read fault answer: %v", err)
	}
	resp, err := netproto.DecodeResponse(typ, id, body)
	if err != nil {
		t.Fatalf("decode fault answer: %v", err)
	}
	if resp.Code != netproto.CodeErr || resp.ID != 7 || resp.Errno != netproto.ErrnoFrameTooLarge {
		t.Fatalf("fault answer = %+v, want CodeErr/ErrnoFrameTooLarge under id 7", resp)
	}
	typ, id, _, err = netproto.ReadFrame(br, 0)
	if err != nil || netproto.Code(typ) != netproto.CodePong || id != 8 {
		t.Fatalf("connection did not survive: typ %d id %d err %v", typ, id, err)
	}

	// Unknown opcode and malformed body: typed errors, connection stays.
	if _, err := conn.Write(netproto.AppendRequest(nil, &netproto.Request{Op: 0x19, ID: 9})); err != nil {
		t.Fatal(err)
	}
	typ, id, body, err = netproto.ReadFrame(br, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := netproto.DecodeResponse(typ, id, body); err != nil ||
		resp.Code != netproto.CodeErr || resp.ID != 9 || resp.Errno != netproto.ErrnoUnknownOp {
		t.Fatalf("unknown-op answer = %+v err %v", resp, err)
	}
	if err := netproto.WriteFrame(conn, uint8(netproto.OpPut), 10, []byte{0xff}); err != nil {
		t.Fatal(err)
	}
	typ, id, body, err = netproto.ReadFrame(br, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := netproto.DecodeResponse(typ, id, body); err != nil ||
		resp.Code != netproto.CodeErr || resp.ID != 10 || resp.Errno != netproto.ErrnoMalformed {
		t.Fatalf("malformed-body answer = %+v err %v", resp, err)
	}
}

// TestLineProtocolSniffed drives the legacy line protocol through the
// binary server's port: the first printable byte routes the connection to
// the line handler.
func TestLineProtocolSniffed(t *testing.T) {
	_, addr := startServer(t, elsm.Options{}, Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "PUT alpha one\nGET alpha\nSTATS\nQUIT\n"); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "OK ") {
		t.Fatalf("PUT reply %q err %v", line, err)
	}
	line, err = br.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "VALUE ") || !strings.Contains(line, "one") {
		t.Fatalf("GET reply %q err %v", line, err)
	}
	sawWALSyncs := false
	for {
		line, err = br.ReadString('\n')
		if err != nil {
			t.Fatalf("STATS stream: %v", err)
		}
		if strings.HasPrefix(line, "STAT wal_syncs ") {
			sawWALSyncs = true
		}
		if line == "END\n" {
			break
		}
	}
	if !sawWALSyncs {
		t.Fatalf("line STATS lost the store counters after the netsrv move")
	}
	// Both protocols interleave on one port.
	c := dial(t, addr)
	if res, err := c.Get([]byte("alpha")); err != nil || string(res.Value) != "one" {
		t.Fatalf("binary read of line-written key: %+v err %v", res, err)
	}
}

// TestConfigValidation mirrors the elsm.Options validation style: zero
// means default, negatives draw descriptive errors.
func TestConfigValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{MaxConnections: -1}, "netsrv: MaxConnections must be ≥ 0 (0 = the default 1024), got -1"},
		{Config{PipelineDepth: -2}, "netsrv: PipelineDepth must be ≥ 0 (0 = the default 64), got -2"},
		{Config{MaxInflight: -3}, "netsrv: MaxInflight must be ≥ 0 (0 = the default 4096), got -3"},
		{Config{ResponseBuffer: -4}, "netsrv: ResponseBuffer must be ≥ 0 (0 = the default 64), got -4"},
		{Config{WriteTimeout: -time.Second}, "netsrv: WriteTimeout must be ≥ 0 (0 = the default 30s), got -1s"},
		{Config{AdmissionWait: -time.Millisecond}, "netsrv: AdmissionWait must be ≥ 0 (0 = the default 50ms), got -1ms"},
	}
	for _, c := range cases {
		_, err := New(nil, c.cfg)
		if err == nil || err.Error() != c.want {
			t.Fatalf("New(%+v) err = %v, want %q", c.cfg, err, c.want)
		}
	}
}

// TestConcurrentConnections exercises the full pipeline under -race: many
// connections pipelining writes and reads at once against one store.
func TestConcurrentConnections(t *testing.T) {
	_, addr := startServer(t, elsm.Options{Shards: 2}, Config{})
	const conns = 8
	errCh := make(chan error, conns)
	for i := 0; i < conns; i++ {
		go func(id int) {
			errCh <- func() error {
				c, err := netclient.Dial(addr)
				if err != nil {
					return err
				}
				defer c.Close()
				var futs []*netclient.Future
				for j := 0; j < 50; j++ {
					fut, err := c.PutAsync(fmt.Appendf(nil, "c%02d-k%03d", id, j), []byte("v"))
					if err != nil {
						return err
					}
					futs = append(futs, fut)
				}
				for _, fut := range futs {
					if _, err := fut.Wait(); err != nil {
						return err
					}
				}
				res, err := c.Get(fmt.Appendf(nil, "c%02d-k%03d", id, 49))
				if err != nil {
					return err
				}
				if !res.Found {
					return fmt.Errorf("conn %d: own write missing", id)
				}
				return nil
			}()
		}(i)
	}
	for i := 0; i < conns; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}
