package netsrv

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"elsm"
	"elsm/internal/obs"
)

// promLine matches one Prometheus text-format sample:
// name{label="v",...} value — the shape a scraper must be able to parse.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9]+(\.[0-9]+)?([eE][+-][0-9]+)?$`)

// adminGet serves one request through the admin handler.
func adminGet(t *testing.T, srv *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.AdminHandler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, rec.Code)
	}
	return rec
}

// TestAdminEndpoint locks the operator surface: /metrics must be
// Prometheus-parseable and expose every STATS gauge (per-shard ones as
// shard-labeled series) plus the latency histograms as shard-labeled
// summaries; /traces and /events must decode as JSON; pprof must answer.
func TestAdminEndpoint(t *testing.T) {
	srv, addr := startServer(t, elsm.Options{Shards: 2}, Config{})
	c := dial(t, addr)
	for i := 0; i < 64; i++ {
		if _, err := c.Put([]byte(fmt.Sprintf("key%03d", i)), []byte("value")); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	for i := 0; i < 8; i++ {
		if _, err := c.Get([]byte(fmt.Sprintf("key%03d", i*7))); err != nil {
			t.Fatalf("get: %v", err)
		}
	}
	if _, err := c.Scan([]byte("key000"), []byte("key064")); err != nil {
		t.Fatalf("scan: %v", err)
	}

	rec := adminGet(t, srv, "/metrics")
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type %q, want Prometheus text format", ct)
	}
	body := rec.Body.String()

	// Every sample line must parse; index the metric names and labels seen.
	plain := map[string]bool{}         // name → seen without labels
	shardLabeled := map[string]bool{}  // name → seen with a shard label
	shardQuantile := map[string]bool{} // name → seen with shard AND quantile labels
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("/metrics line not Prometheus-parseable: %q", line)
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		switch {
		case strings.Contains(line, `shard=`) && strings.Contains(line, `quantile=`):
			shardQuantile[name] = true
		case strings.Contains(line, `shard=`):
			shardLabeled[name] = true
		default:
			plain[name] = true
		}
	}

	// Every gauge the STATS commands expose must be on /metrics: aggregate
	// names verbatim, per-shard names as shard-labeled series. (hist_*
	// pairs are the wire encoding; here the histograms render natively.)
	for _, st := range srv.statsPairs() {
		if strings.HasPrefix(st.Name, "hist_") {
			continue
		}
		if shard, base, ok := splitShardStat(st.Name); ok {
			name := obs.PromName("elsm_" + base)
			if !shardLabeled[name] && !shardQuantile[name] {
				t.Errorf("per-shard stat %s (shard %s) missing from /metrics as %s{shard=...}", st.Name, shard, name)
			}
			continue
		}
		if name := obs.PromName("elsm_" + st.Name); !plain[name] {
			t.Errorf("stat %s missing from /metrics as %s", st.Name, name)
		}
	}
	// The latency histograms: at least 6 distinct shard-labeled summaries.
	if len(shardQuantile) < 6 {
		t.Errorf("only %d shard-labeled summary metrics on /metrics, want >= 6: %v",
			len(shardQuantile), shardQuantile)
	}
	for _, want := range []string{"elsm_put_e2e_nanos", "elsm_commit_fsync_nanos", "elsm_get_e2e_nanos"} {
		if !shardQuantile[want] {
			t.Errorf("summary %s missing from /metrics", want)
		}
	}
	if !strings.Contains(body, "elsm_shards 2") {
		t.Errorf("/metrics missing topology gauge elsm_shards 2")
	}

	var traces struct {
		SampleEvery uint64      `json:"sample_every"`
		SlowNanos   uint64      `json:"slow_threshold_nanos"`
		Traces      []obs.Trace `json:"traces"`
		SlowOps     []obs.Trace `json:"slow_ops"`
	}
	if err := json.Unmarshal(adminGet(t, srv, "/traces").Body.Bytes(), &traces); err != nil {
		t.Fatalf("/traces not JSON: %v", err)
	}
	if traces.SampleEvery == 0 || traces.SlowNanos == 0 {
		t.Errorf("/traces missing sampling config: %+v", traces)
	}

	var events struct {
		Total  uint64      `json:"total"`
		Events []obs.Event `json:"events"`
	}
	if err := json.Unmarshal(adminGet(t, srv, "/events").Body.Bytes(), &events); err != nil {
		t.Fatalf("/events not JSON: %v", err)
	}

	adminGet(t, srv, "/debug/pprof/cmdline")
}
