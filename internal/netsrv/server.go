// Package netsrv is the production network front end of the eLSM store: a
// TCP server speaking the netproto length-prefixed binary protocol with
// per-connection request pipelining, wired to the engine's admission
// control.
//
// Each connection is served by a small pipeline instead of a
// request-reply loop:
//
//   - a reader goroutine decodes frames and admits writes directly into
//     the shared group-commit pipeline via CommitAsync (which returns as
//     soon as the commit is queued), so writes from independent
//     connections coalesce into shared WAL fsync groups; reads go to a
//     bounded request queue (the per-connection pipeline depth — when
//     either queue fills, the reader stops reading and TCP backpressure
//     reaches the client);
//   - worker goroutines execute the read-side requests against the store;
//   - a single writer goroutine awaits each admitted write's durability
//     and streams responses out in completion order, keyed by request
//     id — responses are out-of-order by design, and verified SCAN
//     results stream as multi-frame chunk sequences.
//
// Admission control sheds load instead of queueing it: a connection cap
// (excess connections are refused with a BUSY frame), a global in-flight
// request budget (requests beyond it draw CodeBusy immediately), and the
// engine's MaxAsyncCommitBacklog backpressure (a write whose commit
// admission does not clear within AdmissionWait draws CodeBusy rather than
// camping on the backlog gate). Slow readers are bounded too: responses
// queue in a bounded per-connection buffer and every socket write carries a
// deadline, so one stalled client tears its own connection down instead of
// pinning SCAN chunk memory for everyone.
//
// The server auto-detects the legacy line protocol on the first byte of
// each connection (binary frames start 0x00, line commands with a letter),
// so old clients — including REPL checkpoint/tail followers — share the
// port with pipelined binary clients.
package netsrv

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"elsm"
	"elsm/internal/netproto"
	"elsm/internal/obs"
	"elsm/internal/record"
)

// Defaults for the zero Config. Exported so flag defaults and docs quote
// one source of truth.
const (
	DefaultMaxConnections = 1024
	DefaultPipelineDepth  = 64
	DefaultMaxInflight    = 4096
	DefaultResponseBuffer = 64
	DefaultWriteTimeout   = 30 * time.Second
	DefaultAdmissionWait  = 50 * time.Millisecond
)

// connWorkers bounds how many READ-SIDE requests (get/scan/sync/stats) one
// connection executes concurrently (the rest of the pipeline queues).
// Writes never occupy a worker: the reader admits them into the async
// commit pipeline and the writer awaits durability. Small: cross-connection
// parallelism comes from connection count, and per-connection concurrency
// only needs to keep a pipelining client's window moving.
const connWorkers = 4

// Config tunes the front end. The zero value is production-ready; fields
// set to zero resolve to the Default* constants above.
type Config struct {
	// MaxConnections caps concurrent connections (line and binary). A
	// connection beyond the cap is answered with one BUSY frame and
	// closed — clients see a typed refusal, not a hung dial.
	MaxConnections int
	// PipelineDepth bounds each connection's decoded-but-unanswered
	// requests. When a client pipelines past it, the server stops reading
	// that connection until responses drain (TCP backpressure).
	PipelineDepth int
	// MaxInflight is the global in-flight request budget across all
	// connections. Requests decoded while the budget is exhausted draw
	// CodeBusy immediately instead of queueing.
	MaxInflight int
	// ResponseBuffer bounds each connection's queued response frames. A
	// SCAN against a slow reader blocks its worker here — never the
	// store — until WriteTimeout tears the connection down.
	ResponseBuffer int
	// WriteTimeout bounds every socket write; a client that stops
	// draining its socket loses the connection after at most this long.
	WriteTimeout time.Duration
	// AdmissionWait bounds how long a write may wait on the engine's
	// MaxAsyncCommitBacklog admission gate before the server sheds it
	// with CodeBusy. This is the knob that converts durability-pipeline
	// saturation into load shedding instead of unbounded queueing.
	AdmissionWait time.Duration
}

// validate rejects option values that would silently misbehave, in the
// style of elsm.Options.validate. Zero means "the default"; for these
// knobs no other auto value is meaningful, so negatives are errors.
func (c Config) validate() error {
	if c.MaxConnections < 0 {
		return fmt.Errorf("netsrv: MaxConnections must be ≥ 0 (0 = the default %d), got %d", DefaultMaxConnections, c.MaxConnections)
	}
	if c.PipelineDepth < 0 {
		return fmt.Errorf("netsrv: PipelineDepth must be ≥ 0 (0 = the default %d), got %d", DefaultPipelineDepth, c.PipelineDepth)
	}
	if c.MaxInflight < 0 {
		return fmt.Errorf("netsrv: MaxInflight must be ≥ 0 (0 = the default %d), got %d", DefaultMaxInflight, c.MaxInflight)
	}
	if c.ResponseBuffer < 0 {
		return fmt.Errorf("netsrv: ResponseBuffer must be ≥ 0 (0 = the default %d), got %d", DefaultResponseBuffer, c.ResponseBuffer)
	}
	if c.WriteTimeout < 0 {
		return fmt.Errorf("netsrv: WriteTimeout must be ≥ 0 (0 = the default %v), got %v", DefaultWriteTimeout, c.WriteTimeout)
	}
	if c.AdmissionWait < 0 {
		return fmt.Errorf("netsrv: AdmissionWait must be ≥ 0 (0 = the default %v), got %v", DefaultAdmissionWait, c.AdmissionWait)
	}
	return nil
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.MaxConnections == 0 {
		c.MaxConnections = DefaultMaxConnections
	}
	if c.PipelineDepth == 0 {
		c.PipelineDepth = DefaultPipelineDepth
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = DefaultMaxInflight
	}
	if c.ResponseBuffer == 0 {
		c.ResponseBuffer = DefaultResponseBuffer
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
	if c.AdmissionWait == 0 {
		c.AdmissionWait = DefaultAdmissionWait
	}
	return c
}

// Stats is a point-in-time snapshot of the front end's gauges — the wire
// layer's counterpart of elsm.Stats, exposed as net_* lines by the binary
// protocol's STATS request.
type Stats struct {
	// Connections is the number of connections being served now.
	Connections uint64
	// InflightRequests is the number of admitted requests not yet
	// answered (the consumed share of MaxInflight).
	InflightRequests uint64
	// BusyRejects counts load sheds: refused connections, requests over
	// the in-flight budget, and writes shed on commit-backlog
	// backpressure.
	BusyRejects uint64
	// BytesIn / BytesOut count socket traffic in both protocols.
	BytesIn  uint64
	BytesOut uint64
	// PipelineDepthHWM is the highest per-connection pipeline depth any
	// connection reached (decoded-but-unanswered requests): how much
	// pipelining clients actually use.
	PipelineDepthHWM uint64
}

// Server serves a store over TCP. Create with New, start with Serve.
type Server struct {
	store *elsm.Store
	cfg   Config
	// obs is the store's observability hub, cached at construction: the
	// NetService histogram and rate-limited BUSY-shed events. Nil when the
	// store runs uninstrumented — every use guards on the pointer.
	obs *obs.Observer

	connSem     chan struct{}
	inflightSem chan struct{}

	conns       atomic.Int64
	inflight    atomic.Int64
	busyRejects atomic.Uint64
	bytesIn     atomic.Uint64
	bytesOut    atomic.Uint64
	depthHWM    atomic.Int64

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	open   map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// New builds a server over store. The config is validated: negative knobs
// are rejected with a descriptive error.
func New(store *elsm.Store, cfg Config) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Server{
		store:       store,
		cfg:         cfg,
		obs:         store.Observer(),
		connSem:     make(chan struct{}, cfg.MaxConnections),
		inflightSem: make(chan struct{}, cfg.MaxInflight),
		lns:         make(map[net.Listener]struct{}),
		open:        make(map[net.Conn]struct{}),
	}, nil
}

// Stats snapshots the front end's gauges.
func (s *Server) Stats() Stats {
	return Stats{
		Connections:      uint64(max64(s.conns.Load(), 0)),
		InflightRequests: uint64(max64(s.inflight.Load(), 0)),
		BusyRejects:      s.busyRejects.Load(),
		BytesIn:          s.bytesIn.Load(),
		BytesOut:         s.bytesOut.Load(),
		PipelineDepthHWM: uint64(max64(s.depthHWM.Load(), 0)),
	}
}

func max64(v, floor int64) int64 {
	if v < floor {
		return floor
	}
	return v
}

// Serve accepts connections on ln until the listener fails or Close is
// called. It blocks; run it in a goroutine to serve several listeners.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("netsrv: server closed")
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.lns, ln)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting, closes every open connection and waits for the
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	for conn := range s.open {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// track registers conn for Close teardown; ok is false after Close.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.open[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.open, conn)
	s.mu.Unlock()
}

// countingConn counts socket traffic into the server's gauges.
type countingConn struct {
	net.Conn
	srv *Server
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.srv.bytesIn.Add(uint64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.srv.bytesOut.Add(uint64(n))
	return n, err
}

// handle serves one accepted connection: admission, protocol sniff,
// dispatch.
func (s *Server) handle(nc net.Conn) {
	defer nc.Close()
	// Connection cap: shed with a typed BUSY frame, never queue the
	// accept.
	select {
	case s.connSem <- struct{}{}:
	default:
		s.busyRejects.Add(1)
		s.obs.BusyShed("conn-cap")
		nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		netproto.WriteFrame(nc, uint8(netproto.CodeBusy), 0, nil)
		return
	}
	defer func() { <-s.connSem }()
	if !s.track(nc) {
		return
	}
	defer s.untrack(nc)
	s.conns.Add(1)
	defer s.conns.Add(-1)

	cc := &countingConn{Conn: nc, srv: s}
	br := bufio.NewReaderSize(cc, 8<<10)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] >= 0x20 {
		// Printable first byte: the legacy line protocol (including REPL
		// streams). Binary frames under 16 MB always start 0x00.
		serveLine(br, cc, s.store)
		return
	}
	s.serveBinary(br, cc)
}

// respFrame is one encoded response awaiting the writer goroutine.
//
// A frame carrying fut is a durable write admitted by the reader: the
// writer awaits durability and encodes the outcome itself (into a scratch
// buffer it reuses across frames — the write fast path allocates no
// response body). A frame with release set carries a pipeline slot and a
// global in-flight token; the writer returns both once the frame is
// handled.
type respFrame struct {
	typ     uint8
	id      uint64
	body    []byte
	fut     *elsm.CommitFuture
	release bool
}

// conn is one binary connection's pipeline state.
type conn struct {
	srv    *Server
	ctx    context.Context
	cancel context.CancelFunc
	respCh chan respFrame
	depth  atomic.Int64
	hwm    int64 // reader-goroutine-local high-water mark
}

// respond queues one frame for the writer, returning false if the
// connection is going down.
func (c *conn) respond(f respFrame) bool {
	select {
	case c.respCh <- f:
		return true
	case <-c.ctx.Done():
		return false
	}
}

func errnoOf(err error) netproto.Errno {
	switch {
	case elsm.IsAuthFailure(err):
		return netproto.ErrnoAuth
	case errors.Is(err, elsm.ErrReadOnlyReplica):
		return netproto.ErrnoReadOnly
	default:
		return netproto.ErrnoGeneric
	}
}

func errFrame(id uint64, errno netproto.Errno, msg string) respFrame {
	return respFrame{typ: uint8(netproto.CodeErr), id: id, body: netproto.AppendErr(nil, errno, msg)}
}

// serveBinary runs the reader/workers/writer pipeline over one connection.
func (s *Server) serveBinary(br *bufio.Reader, nc net.Conn) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := &conn{
		srv:    s,
		ctx:    ctx,
		cancel: cancel,
		respCh: make(chan respFrame, s.cfg.ResponseBuffer),
	}
	reqCh := make(chan *netproto.Request, s.cfg.PipelineDepth)

	// Writer: the only goroutine touching the socket's write side. Write
	// deadlines bound every flush; on failure the whole connection is
	// cancelled but the writer keeps draining respCh so workers never
	// block on a dead connection. Frames carrying a commit future are
	// resolved here: the writer awaits durability and encodes the outcome
	// into a scratch buffer reused across frames, so the durable-write
	// fast path allocates nothing per response. Awaiting in queue order is
	// safe — group commit completes futures in admission order, so the
	// head of the queue is never behind a later future.
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		bw := bufio.NewWriterSize(nc, 8<<10)
		var scratch []byte
		dead := false
		flush := func() {
			if dead || bw.Buffered() == 0 {
				return
			}
			if err := bw.Flush(); err != nil {
				dead = true
				cancel()
			}
		}
		for f := range c.respCh {
			if f.fut != nil && !dead {
				ts, err := f.fut.Wait(ctx)
				if err != nil {
					f.typ = uint8(netproto.CodeErr)
					scratch = netproto.AppendErr(scratch[:0], errnoOf(err), err.Error())
				} else {
					f.typ = uint8(netproto.CodeOK)
					scratch = netproto.AppendOK(scratch[:0], ts)
				}
				f.body = scratch
			}
			if !dead {
				nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
				if err := netproto.WriteFrame(bw, f.typ, f.id, f.body); err != nil {
					dead = true
					cancel()
				}
				// Flush when the queue is momentarily empty: batches
				// consecutive completions into one syscall without
				// delaying the last response.
				if len(c.respCh) == 0 {
					flush()
				}
			}
			if f.release {
				c.depth.Add(-1)
				s.inflight.Add(-1)
				<-s.inflightSem
			}
		}
		flush()
	}()

	// Unblock the reader when the connection is cancelled from the write
	// side (or by Server.Close closing the socket).
	stopGuard := context.AfterFunc(ctx, func() { nc.Close() })
	defer stopGuard()

	// Workers: execute decoded read-side requests (writes bypass this
	// stage — see admitWrite); completions release the global in-flight
	// budget and the connection's pipeline slot.
	var workerWG sync.WaitGroup
	for i := 0; i < connWorkers; i++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			for req := range reqCh {
				s.execute(c, req)
				c.depth.Add(-1)
				s.inflight.Add(-1)
				<-s.inflightSem
			}
		}()
	}

	// Reader: decode frames into the bounded queue; shed past the global
	// budget; survive recoverable framing faults.
	for {
		typ, id, body, err := netproto.ReadFrame(br, netproto.MaxFrame)
		if err != nil {
			var fe *netproto.FrameError
			if errors.As(err, &fe) {
				if !c.respond(errFrame(fe.ID, netproto.ErrnoFrameTooLarge, fe.Error())) {
					break
				}
				continue
			}
			break // transport error or cancelled: tear down
		}
		req, derr := netproto.DecodeRequest(typ, id, body)
		if derr != nil {
			errno := netproto.ErrnoMalformed
			if op := netproto.Op(typ); op < netproto.OpPut || op > netproto.OpPing {
				errno = netproto.ErrnoUnknownOp
			}
			if !c.respond(errFrame(id, errno, derr.Error())) {
				break
			}
			continue
		}
		// Global in-flight budget: shed immediately, never queue past it.
		select {
		case s.inflightSem <- struct{}{}:
		default:
			s.busyRejects.Add(1)
			s.obs.BusyShed("inflight-budget")
			if !c.respond(respFrame{typ: uint8(netproto.CodeBusy), id: id}) {
				break
			}
			continue
		}
		s.inflight.Add(1)
		if d := c.depth.Add(1); d > c.hwm {
			c.hwm = d
			for {
				cur := s.depthHWM.Load()
				if d <= cur || s.depthHWM.CompareAndSwap(cur, d) {
					break
				}
			}
		}
		switch req.Op {
		case netproto.OpPut, netproto.OpDel, netproto.OpBatch:
			// Write fast path: admission runs here on the reader
			// (CommitAsync returns as soon as the commit is queued) and
			// the writer awaits durability — no worker handoff.
			s.admitWrite(c, req)
		default:
			select {
			case reqCh <- req:
			case <-ctx.Done():
				c.depth.Add(-1)
				s.inflight.Add(-1)
				<-s.inflightSem
			}
		}
		if ctx.Err() != nil {
			break
		}
	}
	cancel()
	close(reqCh)
	workerWG.Wait()
	close(c.respCh)
	writerWG.Wait()
}

// execute runs one request against the store and queues its response(s).
// Service time — dispatch to last response queued — lands in the
// NetService histogram (SCAN included: the span covers the whole chunk
// stream).
func (s *Server) execute(c *conn, req *netproto.Request) {
	if o := s.obs; o != nil {
		defer func(start time.Time) { o.NetService.ObserveSince(start) }(time.Now())
	}
	id := req.ID
	switch req.Op {
	case netproto.OpPing:
		c.respond(respFrame{typ: uint8(netproto.CodePong), id: id})
	case netproto.OpGet:
		res, err := s.store.GetCtx(c.ctx, req.Key)
		switch {
		case err != nil:
			c.respond(errFrame(id, errnoOf(err), err.Error()))
		case !res.Found:
			c.respond(respFrame{typ: uint8(netproto.CodeNotFound), id: id})
		default:
			c.respond(respFrame{typ: uint8(netproto.CodeValue), id: id, body: netproto.AppendValue(nil, res.Ts, res.Value)})
		}
	case netproto.OpScan:
		s.executeScan(c, req)
	case netproto.OpSync:
		if err := s.store.Sync(c.ctx); err != nil {
			c.respond(errFrame(id, errnoOf(err), err.Error()))
			return
		}
		c.respond(respFrame{typ: uint8(netproto.CodeOK), id: id, body: netproto.AppendOK(nil, 0)})
	case netproto.OpStats:
		c.respond(respFrame{typ: uint8(netproto.CodeStats), id: id, body: netproto.AppendStats(nil, s.statsPairs())})
	default:
		c.respond(errFrame(id, netproto.ErrnoUnknownOp, fmt.Sprintf("netsrv: unhandled op %d", req.Op)))
	}
}

// admitWrite commits a write through the store's async group-commit
// pipeline and hands the commit future to the writer, which answers once
// it is DURABLE. Because every connection's reader admits while its writer
// awaits a window of futures, independent connections coalesce into shared
// fsync groups. When the engine's async backlog is saturated and admission
// does not clear within AdmissionWait, the write is shed with CodeBusy —
// backpressure becomes load shedding, not unbounded queueing. Every path
// emits exactly one frame with release set, returning the pipeline slot
// and in-flight token at the writer.
func (s *Server) admitWrite(c *conn, req *netproto.Request) {
	// Service time for writes is the admission span (decode to handoff);
	// the durability wait is the commit pipeline's to account, not the
	// front end's.
	if o := s.obs; o != nil {
		defer func(start time.Time) { o.NetService.ObserveSince(start) }(time.Now())
	}
	b := s.store.NewBatch()
	switch req.Op {
	case netproto.OpPut:
		b.Put(req.Key, req.Value)
	case netproto.OpDel:
		b.Delete(req.Key)
	case netproto.OpBatch:
		for _, op := range req.Ops {
			if op.Delete {
				b.Delete(op.Key)
			} else {
				b.Put(op.Key, op.Value)
			}
		}
	}
	actx, acancel := context.WithTimeout(c.ctx, s.cfg.AdmissionWait)
	fut, err := b.CommitAsync(actx)
	acancel()
	var f respFrame
	switch {
	case err == nil:
		f = respFrame{id: req.ID, fut: fut, release: true}
	case actx.Err() != nil && c.ctx.Err() == nil:
		// The admission gate (MaxAsyncCommitBacklog) stayed full for
		// the whole wait: the durability pipeline is saturated.
		s.busyRejects.Add(1)
		s.obs.BusyShed("admission-wait")
		f = respFrame{typ: uint8(netproto.CodeBusy), id: req.ID, release: true}
	default:
		f = errFrame(req.ID, errnoOf(err), err.Error())
		f.release = true
	}
	if !c.respond(f) {
		// Connection going down: the frame never reached the writer, so
		// return the slot here.
		c.depth.Add(-1)
		s.inflight.Add(-1)
		<-s.inflightSem
	}
}

// Scan chunking: a CodeRows frame closes when it reaches either bound, so
// a huge range streams in bounded memory no matter the row sizes.
const (
	scanChunkRows  = 128
	scanChunkBytes = 128 << 10
)

// executeScan streams one verified range as CodeRows chunks terminated by
// CodeScanEnd (or CodeErr on a verification/transport fault). The stream
// interleaves with other responses on the connection — the client
// reassembles by request id.
func (s *Server) executeScan(c *conn, req *netproto.Request) {
	tsq := req.Tsq
	if tsq == 0 {
		tsq = record.MaxTs
	}
	it := s.store.IterAtCtx(c.ctx, req.Start, req.End, tsq)
	var rows []netproto.Row
	var chunkBytes int
	var total uint64
	flush := func() bool {
		if len(rows) == 0 {
			return true
		}
		ok := c.respond(respFrame{typ: uint8(netproto.CodeRows), id: req.ID, body: netproto.AppendRows(nil, rows)})
		rows = rows[:0]
		chunkBytes = 0
		return ok
	}
	for it.Next() {
		res := it.Result()
		rows = append(rows, netproto.Row{Key: res.Key, Ts: res.Ts, Value: res.Value})
		chunkBytes += len(res.Key) + len(res.Value)
		total++
		if len(rows) >= scanChunkRows || chunkBytes >= scanChunkBytes {
			if !flush() {
				it.Close()
				return
			}
		}
	}
	if err := it.Close(); err != nil {
		// Partial rows may already be on the wire; ERR terminates the
		// stream and the client discards them.
		c.respond(errFrame(req.ID, errnoOf(err), err.Error()))
		return
	}
	if !flush() {
		return
	}
	c.respond(respFrame{typ: uint8(netproto.CodeScanEnd), id: req.ID, body: netproto.AppendOK(nil, total)})
}

// statsPairs renders the store's counters plus the front end's net_*
// gauges — the binary protocol's STATS payload. The store list mirrors the
// line protocol's STATS command; the net_* block is what this layer adds.
func (s *Server) statsPairs() []netproto.Stat {
	pairs := storeStatsPairs(s.store)
	ns := s.Stats()
	return append(pairs,
		netproto.Stat{Name: "net_connections", Value: ns.Connections},
		netproto.Stat{Name: "net_inflight_requests", Value: ns.InflightRequests},
		netproto.Stat{Name: "net_busy_rejects", Value: ns.BusyRejects},
		netproto.Stat{Name: "net_bytes_in", Value: ns.BytesIn},
		netproto.Stat{Name: "net_bytes_out", Value: ns.BytesOut},
		netproto.Stat{Name: "net_pipeline_depth_hwm", Value: ns.PipelineDepthHWM},
	)
}
