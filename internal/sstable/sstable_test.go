package sstable

import (
	"bytes"
	"fmt"
	"testing"

	"elsm/internal/crypto"
	"elsm/internal/record"
	"elsm/internal/vfs"
)

func buildTable(t *testing.T, recs []record.Record, tr BlockTransform) (*Table, vfs.File, Meta) {
	t.Helper()
	fs := vfs.NewMem()
	f, err := fs.Create("t.sst")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(f, BuilderOptions{BlockSize: 256, Transform: tr, FileNum: 7})
	for _, rec := range recs {
		if err := b.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	meta, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Open(f, 7, &FileSource{F: f, Transform: tr})
	if err != nil {
		t.Fatal(err)
	}
	return tbl, f, meta
}

func seqRecords(n, versions int) []record.Record {
	var out []record.Record
	ts := uint64(n*versions + 1)
	for i := 0; i < n; i++ {
		for v := 0; v < versions; v++ {
			ts--
			out = append(out, record.Record{
				Key:   []byte(fmt.Sprintf("key%05d", i)),
				Ts:    ts,
				Kind:  record.KindSet,
				Value: []byte(fmt.Sprintf("val-%d-%d", i, v)),
				Proof: []byte{0xaa, 0xbb},
			})
		}
	}
	return out
}

func TestBuildOpenRoundTrip(t *testing.T) {
	recs := seqRecords(500, 1)
	tbl, _, meta := buildTable(t, recs, nil)
	if tbl.NumEntries() != 500 {
		t.Fatalf("entries = %d", tbl.NumEntries())
	}
	if meta.NumEntries != 500 || string(meta.Smallest) != "key00000" || string(meta.Largest) != "key00499" {
		t.Fatalf("meta = %+v", meta)
	}
	if tbl.NumBlocks() < 2 {
		t.Fatalf("expected multiple blocks, got %d", tbl.NumBlocks())
	}
	for i, want := range recs {
		got, ok, err := tbl.Get(want.Key, record.MaxTs)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || !bytes.Equal(got.Value, want.Value) || !bytes.Equal(got.Proof, want.Proof) {
			t.Fatalf("record %d: got %+v ok=%v", i, got, ok)
		}
	}
}

func TestGetAbsentKeys(t *testing.T) {
	recs := seqRecords(100, 1)
	tbl, _, _ := buildTable(t, recs, nil)
	for _, k := range []string{"key00000x", "a", "zzz", "key-1"} {
		if _, ok, err := tbl.Get([]byte(k), record.MaxTs); err != nil || ok {
			t.Fatalf("absent key %q: ok=%v err=%v", k, ok, err)
		}
	}
}

func TestGetVersions(t *testing.T) {
	recs := seqRecords(50, 4)
	tbl, _, _ := buildTable(t, recs, nil)
	// Key 10's versions: the 4 records at indices 40..43, timestamps
	// descending from the sequence.
	key := []byte("key00010")
	newest, ok, err := tbl.Get(key, record.MaxTs)
	if err != nil || !ok {
		t.Fatalf("get newest: %v %v", ok, err)
	}
	// Historical query below newest ts hits an older version.
	older, ok, err := tbl.Get(key, newest.Ts-1)
	if err != nil || !ok {
		t.Fatalf("get older: %v %v", ok, err)
	}
	if older.Ts >= newest.Ts {
		t.Fatalf("older.Ts %d >= newest.Ts %d", older.Ts, newest.Ts)
	}
	// Below the oldest version: no result.
	oldest := older
	for {
		r, ok, err := tbl.Get(key, oldest.Ts-1)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		oldest = r
	}
}

func TestIteratorFullScan(t *testing.T) {
	recs := seqRecords(300, 2)
	tbl, _, _ := buildTable(t, recs, nil)
	it := tbl.Iter()
	it.SeekGE(nil, record.MaxTs)
	n := 0
	var prev record.Record
	for ; it.Valid(); it.Next() {
		rec := it.Record()
		if n > 0 && record.CompareRecords(prev, rec) >= 0 {
			t.Fatalf("order violation at %d", n)
		}
		prev = rec
		n++
	}
	if n != 600 {
		t.Fatalf("scanned %d of 600", n)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestIteratorSeek(t *testing.T) {
	recs := seqRecords(200, 1)
	tbl, _, _ := buildTable(t, recs, nil)
	it := tbl.Iter()
	it.SeekGE([]byte("key00150"), record.MaxTs)
	if !it.Valid() || string(it.Record().Key) != "key00150" {
		t.Fatalf("seek exact landed at %q", it.Record().Key)
	}
	it.SeekGE([]byte("key00150x"), record.MaxTs)
	if !it.Valid() || string(it.Record().Key) != "key00151" {
		t.Fatalf("seek between landed at %q", it.Record().Key)
	}
	it.SeekGE([]byte("zzz"), record.MaxTs)
	if it.Valid() {
		t.Fatal("seek past end valid")
	}
}

func TestSeekWithPrev(t *testing.T) {
	recs := seqRecords(100, 1)
	tbl, _, _ := buildTable(t, recs, nil)

	// Between two keys.
	prev, cur, err := tbl.SeekWithPrev([]byte("key00050x"), record.MaxTs)
	if err != nil {
		t.Fatal(err)
	}
	if prev == nil || string(prev.Key) != "key00050" {
		t.Fatalf("prev = %v", prev)
	}
	if cur == nil || string(cur.Key) != "key00051" {
		t.Fatalf("cur = %v", cur)
	}

	// Before the first key.
	prev, cur, err = tbl.SeekWithPrev([]byte("a"), record.MaxTs)
	if err != nil {
		t.Fatal(err)
	}
	if prev != nil {
		t.Fatalf("prev before first = %v", prev)
	}
	if cur == nil || string(cur.Key) != "key00000" {
		t.Fatalf("cur = %v", cur)
	}

	// Past the last key.
	prev, cur, err = tbl.SeekWithPrev([]byte("zzz"), record.MaxTs)
	if err != nil {
		t.Fatal(err)
	}
	if cur != nil {
		t.Fatalf("cur past end = %v", cur)
	}
	if prev == nil || string(prev.Key) != "key00099" {
		t.Fatalf("prev = %v", prev)
	}
}

func TestFirstLast(t *testing.T) {
	recs := seqRecords(77, 1)
	tbl, _, _ := buildTable(t, recs, nil)
	first, err := tbl.First()
	if err != nil || string(first.Key) != "key00000" {
		t.Fatalf("first = %q err=%v", first.Key, err)
	}
	last, err := tbl.Last()
	if err != nil || string(last.Key) != "key00076" {
		t.Fatalf("last = %q err=%v", last.Key, err)
	}
}

func TestOutOfOrderAddRejected(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("t.sst")
	b := NewBuilder(f, BuilderOptions{})
	if err := b.Add(record.Record{Key: []byte("b"), Ts: 1, Kind: record.KindSet}); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(record.Record{Key: []byte("a"), Ts: 1, Kind: record.KindSet}); err == nil {
		t.Fatal("out-of-order key accepted")
	}
	if err := b.Add(record.Record{Key: []byte("b"), Ts: 1, Kind: record.KindSet}); err == nil {
		t.Fatal("duplicate (key, ts) accepted")
	}
	if err := b.Add(record.Record{Key: []byte("b"), Ts: 2, Kind: record.KindSet}); err == nil {
		t.Fatal("ascending ts within key accepted")
	}
}

func TestEmptyTableRejected(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("t.sst")
	b := NewBuilder(f, BuilderOptions{})
	if _, err := b.Finish(); err == nil {
		t.Fatal("empty table accepted")
	}
}

func TestCorruptFooterRejected(t *testing.T) {
	recs := seqRecords(10, 1)
	_, f, _ := buildTable(t, recs, nil)
	// Destroy the magic.
	f.WriteAt([]byte{0, 0, 0, 0, 0, 0, 0, 0}, f.Size()-8)
	if _, err := Open(f, 7, &FileSource{F: f}); err == nil {
		t.Fatal("corrupt footer accepted")
	}
}

func TestEncryptedBlocks(t *testing.T) {
	mk, err := crypto.NewMasterKey()
	if err != nil {
		t.Fatal(err)
	}
	tr := &testSealer{bc: crypto.NewBlock(mk)}
	recs := seqRecords(200, 1)
	tbl, f, _ := buildTable(t, recs, tr)
	for i := 0; i < len(recs); i += 7 {
		want := recs[i]
		got, ok, err := tbl.Get(want.Key, record.MaxTs)
		if err != nil || !ok || !bytes.Equal(got.Value, want.Value) {
			t.Fatalf("encrypted get %q: %v %v", want.Key, ok, err)
		}
	}
	// Ciphertext must not contain plaintext values.
	raw := f.Bytes()
	if bytes.Contains(raw, []byte("val-0-0")) {
		t.Fatal("plaintext leaked into encrypted table")
	}
	// Tampering with a data block must surface on read.
	raw[10] ^= 0xFF
	if _, _, err := tbl.Get(recs[0].Key, record.MaxTs); err == nil {
		t.Fatal("tampered encrypted block read succeeded")
	}
}

type testSealer struct{ bc *crypto.BlockCipher }

func (s *testSealer) Seal(id uint64, p []byte) []byte { return s.bc.EncryptBlock(id, p) }
func (s *testSealer) Open(id uint64, c []byte) ([]byte, error) {
	return s.bc.DecryptBlock(id, c)
}

func TestDecodeBlockRejectsGarbage(t *testing.T) {
	if _, err := DecodeBlock([]byte{0xff, 0x01, 0x02}); err == nil {
		t.Fatal("garbage block decoded")
	}
}
