// Package sstable implements the Sorted Strings Table file format used for
// all on-disk levels (L≥1) of the LSM store. SSTable files live in the
// untrusted world; in eLSM-P2 their records carry embedded Merkle proofs,
// and in eLSM-P1 their data blocks are sealed (encrypted + MACed) at file
// granularity.
//
// File layout:
//
//	[data block 0] … [data block n-1] [filter block] [index block] [footer]
//
// Data blocks hold whole records, framed as
//
//	kind u8 ‖ uvarint keyLen ‖ key ‖ ts u64 ‖ uvarint valLen ‖ value ‖
//	uvarint proofLen ‖ proof
//
// The index block maps each data block's last (key, ts) to its file extent;
// the filter block holds one Bloom filter per data block (§2: "a Bloom
// filter is built for each data block").
package sstable

import (
	"encoding/binary"
	"errors"
	"fmt"

	"elsm/internal/bloom"
	"elsm/internal/record"
	"elsm/internal/vfs"
)

// Magic identifies SSTable files (last 8 footer bytes).
const Magic = 0xe15a_5a7a_b1e5_0001

// DefaultBlockSize is the target data-block payload size.
const DefaultBlockSize = 4096

// Format errors.
var (
	ErrBadTable = errors.New("sstable: malformed table")
	ErrOrder    = errors.New("sstable: records added out of order")
)

// BlockTransform seals data blocks on write and opens them on read
// (eLSM-P1's file-granularity protection). Implementations must be safe for
// concurrent use. The blockID binds a block to its position, preventing a
// malicious host from swapping sealed blocks around.
type BlockTransform interface {
	Seal(blockID uint64, plain []byte) []byte
	Open(blockID uint64, sealed []byte) ([]byte, error)
}

// BlockID derives the transform binding identifier for a block.
func BlockID(fileNum uint64, blockIdx int) uint64 {
	return fileNum<<20 | uint64(blockIdx)
}

// BlockSource fetches (unsealed) data-block bytes. The LSM layer provides
// implementations that route through the read buffer, the mmap view, or the
// enclave boundary with the appropriate cost accounting.
type BlockSource interface {
	ReadBlock(fileNum uint64, blockIdx int, off, length int64) ([]byte, error)
}

// ---------------------------------------------------------------------------
// Builder

// BuilderOptions configures table construction.
type BuilderOptions struct {
	// BlockSize is the target uncompressed block payload size
	// (DefaultBlockSize if zero).
	BlockSize int
	// BitsPerKey is the Bloom-filter budget (bloom.DefaultBitsPerKey if zero).
	BitsPerKey int
	// Transform optionally seals data blocks (eLSM-P1).
	Transform BlockTransform
	// FileNum is the table's file number, used for block binding.
	FileNum uint64
}

// Meta describes a finished table.
type Meta struct {
	FileNum    uint64
	Smallest   []byte // smallest user key
	SmallestTs uint64
	Largest    []byte // largest user key
	LargestTs  uint64
	NumEntries int
	NumBlocks  int
	Size       int64
}

// Builder writes an SSTable. Records must be added in record order
// (key asc, ts desc). Not safe for concurrent use.
type Builder struct {
	f    vfs.File
	opts BuilderOptions

	off        int64
	blockBuf   []byte
	blockKeys  [][]byte
	index      []indexEntry
	filters    [][]byte
	numEntries int
	haveLast   bool
	lastKey    []byte
	lastTs     uint64
	meta       Meta
}

type indexEntry struct {
	lastKey []byte
	lastTs  uint64
	off     int64
	length  int64
}

// NewBuilder starts building a table into f.
func NewBuilder(f vfs.File, opts BuilderOptions) *Builder {
	if opts.BlockSize <= 0 {
		opts.BlockSize = DefaultBlockSize
	}
	if opts.BitsPerKey <= 0 {
		opts.BitsPerKey = bloom.DefaultBitsPerKey
	}
	return &Builder{f: f, opts: opts, meta: Meta{FileNum: opts.FileNum}}
}

// appendRecord frames rec into buf.
func appendRecord(buf []byte, rec record.Record) []byte {
	buf = append(buf, byte(rec.Kind))
	buf = binary.AppendUvarint(buf, uint64(len(rec.Key)))
	buf = append(buf, rec.Key...)
	buf = binary.BigEndian.AppendUint64(buf, rec.Ts)
	buf = binary.AppendUvarint(buf, uint64(len(rec.Value)))
	buf = append(buf, rec.Value...)
	buf = binary.AppendUvarint(buf, uint64(len(rec.Proof)))
	return append(buf, rec.Proof...)
}

// Add appends a record. Records must arrive in strict record order.
func (b *Builder) Add(rec record.Record) error {
	if b.haveLast && record.Compare(b.lastKey, b.lastTs, rec.Key, rec.Ts) >= 0 {
		return fmt.Errorf("%w: %q@%d after %q@%d", ErrOrder, rec.Key, rec.Ts, b.lastKey, b.lastTs)
	}
	if !b.haveLast {
		b.meta.Smallest = append([]byte(nil), rec.Key...)
		b.meta.SmallestTs = rec.Ts
	}
	b.haveLast = true
	b.lastKey = append(b.lastKey[:0], rec.Key...)
	b.lastTs = rec.Ts

	b.blockBuf = appendRecord(b.blockBuf, rec)
	b.blockKeys = append(b.blockKeys, append([]byte(nil), rec.Key...))
	b.numEntries++
	if len(b.blockBuf) >= b.opts.BlockSize {
		return b.flushBlock()
	}
	return nil
}

func (b *Builder) flushBlock() error {
	if len(b.blockBuf) == 0 {
		return nil
	}
	payload := b.blockBuf
	if b.opts.Transform != nil {
		payload = b.opts.Transform.Seal(BlockID(b.opts.FileNum, len(b.index)), payload)
	}
	if _, err := b.f.Append(payload); err != nil {
		return fmt.Errorf("sstable: write block: %w", err)
	}
	b.index = append(b.index, indexEntry{
		lastKey: append([]byte(nil), b.lastKey...),
		lastTs:  b.lastTs,
		off:     b.off,
		length:  int64(len(payload)),
	})
	b.filters = append(b.filters, bloom.Build(b.blockKeys, b.opts.BitsPerKey))
	b.off += int64(len(payload))
	b.blockBuf = b.blockBuf[:0]
	b.blockKeys = b.blockKeys[:0]
	return nil
}

// Finish flushes the final block, writes the filter block, index block and
// footer, and returns the table metadata.
func (b *Builder) Finish() (Meta, error) {
	if err := b.flushBlock(); err != nil {
		return Meta{}, err
	}
	if b.numEntries == 0 {
		return Meta{}, fmt.Errorf("%w: empty table", ErrBadTable)
	}
	// Filter block.
	var fb []byte
	fb = binary.BigEndian.AppendUint32(fb, uint32(len(b.filters)))
	for _, f := range b.filters {
		fb = binary.BigEndian.AppendUint32(fb, uint32(len(f)))
		fb = append(fb, f...)
	}
	filterOff := b.off
	if _, err := b.f.Append(fb); err != nil {
		return Meta{}, fmt.Errorf("sstable: write filters: %w", err)
	}
	b.off += int64(len(fb))

	// Index block.
	var ib []byte
	ib = binary.BigEndian.AppendUint32(ib, uint32(len(b.index)))
	for _, e := range b.index {
		ib = binary.AppendUvarint(ib, uint64(len(e.lastKey)))
		ib = append(ib, e.lastKey...)
		ib = binary.BigEndian.AppendUint64(ib, e.lastTs)
		ib = binary.BigEndian.AppendUint64(ib, uint64(e.off))
		ib = binary.BigEndian.AppendUint64(ib, uint64(e.length))
	}
	indexOff := b.off
	if _, err := b.f.Append(ib); err != nil {
		return Meta{}, fmt.Errorf("sstable: write index: %w", err)
	}
	b.off += int64(len(ib))

	// Footer: filterOff, filterLen, indexOff, indexLen, numEntries, magic.
	var ft []byte
	ft = binary.BigEndian.AppendUint64(ft, uint64(filterOff))
	ft = binary.BigEndian.AppendUint64(ft, uint64(len(fb)))
	ft = binary.BigEndian.AppendUint64(ft, uint64(indexOff))
	ft = binary.BigEndian.AppendUint64(ft, uint64(len(ib)))
	ft = binary.BigEndian.AppendUint64(ft, uint64(b.numEntries))
	ft = binary.BigEndian.AppendUint64(ft, Magic)
	if _, err := b.f.Append(ft); err != nil {
		return Meta{}, fmt.Errorf("sstable: write footer: %w", err)
	}
	b.off += int64(len(ft))

	b.meta.Largest = append([]byte(nil), b.lastKey...)
	b.meta.LargestTs = b.lastTs
	b.meta.NumEntries = b.numEntries
	b.meta.NumBlocks = len(b.index)
	b.meta.Size = b.off
	return b.meta, nil
}

// ---------------------------------------------------------------------------
// Reader

// Table reads an SSTable. Metadata (index + filters) is loaded once at Open
// — in eLSM these structures live inside the enclave ("file indices at
// levels L≥1 are placed inside the enclave", §4.2) — while data blocks are
// fetched on demand through a BlockSource.
type Table struct {
	fileNum    uint64
	index      []indexEntry
	filters    []bloom.Filter
	numEntries int
	source     BlockSource
}

// FileSource reads blocks straight from a file handle, applying an optional
// transform. It is the plain, cost-free source used by tests; the LSM layer
// provides cached and mmap sources.
type FileSource struct {
	F         vfs.File
	Transform BlockTransform
}

var _ BlockSource = (*FileSource)(nil)

// ReadBlock implements BlockSource.
func (s *FileSource) ReadBlock(fileNum uint64, blockIdx int, off, length int64) ([]byte, error) {
	buf := make([]byte, length)
	if _, err := s.F.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("sstable: read block %d: %w", blockIdx, err)
	}
	if s.Transform != nil {
		return s.Transform.Open(BlockID(fileNum, blockIdx), buf)
	}
	return buf, nil
}

// Open parses the table's footer, index and filter blocks from f and
// returns a Table that will fetch data blocks through source.
func Open(f vfs.File, fileNum uint64, source BlockSource) (*Table, error) {
	size := f.Size()
	const footerLen = 48
	if size < footerLen {
		return nil, fmt.Errorf("%w: too small (%d bytes)", ErrBadTable, size)
	}
	ft := make([]byte, footerLen)
	if _, err := f.ReadAt(ft, size-footerLen); err != nil {
		return nil, fmt.Errorf("sstable: read footer: %w", err)
	}
	if binary.BigEndian.Uint64(ft[40:48]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadTable)
	}
	filterOff := int64(binary.BigEndian.Uint64(ft[0:8]))
	filterLen := int64(binary.BigEndian.Uint64(ft[8:16]))
	indexOff := int64(binary.BigEndian.Uint64(ft[16:24]))
	indexLen := int64(binary.BigEndian.Uint64(ft[24:32]))
	numEntries := int(binary.BigEndian.Uint64(ft[32:40]))

	ib := make([]byte, indexLen)
	if _, err := f.ReadAt(ib, indexOff); err != nil {
		return nil, fmt.Errorf("sstable: read index: %w", err)
	}
	t := &Table{fileNum: fileNum, numEntries: numEntries, source: source}
	if len(ib) < 4 {
		return nil, fmt.Errorf("%w: short index", ErrBadTable)
	}
	n := int(binary.BigEndian.Uint32(ib[:4]))
	p := 4
	for i := 0; i < n; i++ {
		klen, w := binary.Uvarint(ib[p:])
		if w <= 0 || p+w+int(klen)+24 > len(ib) {
			return nil, fmt.Errorf("%w: corrupt index entry %d", ErrBadTable, i)
		}
		p += w
		var e indexEntry
		e.lastKey = append([]byte(nil), ib[p:p+int(klen)]...)
		p += int(klen)
		e.lastTs = binary.BigEndian.Uint64(ib[p : p+8])
		e.off = int64(binary.BigEndian.Uint64(ib[p+8 : p+16]))
		e.length = int64(binary.BigEndian.Uint64(ib[p+16 : p+24]))
		p += 24
		t.index = append(t.index, e)
	}

	fb := make([]byte, filterLen)
	if _, err := f.ReadAt(fb, filterOff); err != nil {
		return nil, fmt.Errorf("sstable: read filters: %w", err)
	}
	if len(fb) < 4 {
		return nil, fmt.Errorf("%w: short filter block", ErrBadTable)
	}
	fn := int(binary.BigEndian.Uint32(fb[:4]))
	p = 4
	for i := 0; i < fn; i++ {
		if p+4 > len(fb) {
			return nil, fmt.Errorf("%w: corrupt filter %d", ErrBadTable, i)
		}
		flen := int(binary.BigEndian.Uint32(fb[p : p+4]))
		p += 4
		if p+flen > len(fb) {
			return nil, fmt.Errorf("%w: corrupt filter %d", ErrBadTable, i)
		}
		t.filters = append(t.filters, bloom.Filter(fb[p:p+flen]))
		p += flen
	}
	if len(t.filters) != len(t.index) {
		return nil, fmt.Errorf("%w: %d filters for %d blocks", ErrBadTable, len(t.filters), len(t.index))
	}
	return t, nil
}

// NumEntries returns the number of records in the table.
func (t *Table) NumEntries() int { return t.numEntries }

// NumBlocks returns the number of data blocks.
func (t *Table) NumBlocks() int { return len(t.index) }

// FileNum returns the table's file number.
func (t *Table) FileNum() uint64 { return t.fileNum }

// MetadataBytes approximates the in-enclave footprint of the table's index
// and filters.
func (t *Table) MetadataBytes() int {
	total := 0
	for i := range t.index {
		total += len(t.index[i].lastKey) + 24
		total += len(t.filters[i])
	}
	return total
}

// seekBlock returns the index of the first block whose last entry is
// ≥ (key, ts), or len(index) if none.
func (t *Table) seekBlock(key []byte, ts uint64) int {
	lo, hi := 0, len(t.index)
	for lo < hi {
		mid := (lo + hi) / 2
		e := t.index[mid]
		if record.Compare(e.lastKey, e.lastTs, key, ts) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// DecodeBlock parses all records in a block payload.
func DecodeBlock(data []byte) ([]record.Record, error) {
	var out []record.Record
	p := 0
	for p < len(data) {
		rec, n, err := decodeRecordAt(data, p)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
		p += n
	}
	return out, nil
}

func decodeRecordAt(data []byte, p int) (record.Record, int, error) {
	start := p
	var rec record.Record
	if p >= len(data) {
		return rec, 0, fmt.Errorf("%w: truncated record", ErrBadTable)
	}
	rec.Kind = record.Kind(data[p])
	p++
	klen, w := binary.Uvarint(data[p:])
	if w <= 0 || p+w+int(klen)+8 > len(data) {
		return rec, 0, fmt.Errorf("%w: bad key frame", ErrBadTable)
	}
	p += w
	rec.Key = append([]byte(nil), data[p:p+int(klen)]...)
	p += int(klen)
	rec.Ts = binary.BigEndian.Uint64(data[p : p+8])
	p += 8
	vlen, w := binary.Uvarint(data[p:])
	if w <= 0 || p+w+int(vlen) > len(data) {
		return rec, 0, fmt.Errorf("%w: bad value frame", ErrBadTable)
	}
	p += w
	rec.Value = append([]byte(nil), data[p:p+int(vlen)]...)
	p += int(vlen)
	plen, w := binary.Uvarint(data[p:])
	if w <= 0 || p+w+int(plen) > len(data) {
		return rec, 0, fmt.Errorf("%w: bad proof frame", ErrBadTable)
	}
	p += w
	rec.Proof = append([]byte(nil), data[p:p+int(plen)]...)
	p += int(plen)
	return rec, p - start, nil
}

func (t *Table) readBlock(i int) ([]record.Record, error) {
	e := t.index[i]
	data, err := t.source.ReadBlock(t.fileNum, i, e.off, e.length)
	if err != nil {
		return nil, err
	}
	return DecodeBlock(data)
}

// Get returns the newest record of key with Ts ≤ tsq, if the table holds
// one. The Bloom filter short-circuits definite misses.
func (t *Table) Get(key []byte, tsq uint64) (record.Record, bool, error) {
	bi := t.seekBlock(key, tsq)
	if bi >= len(t.index) {
		return record.Record{}, false, nil
	}
	if !t.filters[bi].MayContain(key) {
		return record.Record{}, false, nil
	}
	recs, err := t.readBlock(bi)
	if err != nil {
		return record.Record{}, false, err
	}
	for _, r := range recs {
		if record.Compare(r.Key, r.Ts, key, tsq) >= 0 {
			if string(r.Key) == string(key) {
				return r, true, nil
			}
			return record.Record{}, false, nil
		}
	}
	return record.Record{}, false, nil
}

// SeekWithPrev locates the seek position of (key, ts) and returns the
// records immediately before and at that position (either may be nil at the
// table edges). The eLSM layer uses this to assemble non-membership
// witnesses: for an absent key, prev and cur bracket it (§5.5.1 "returns
// the two neighboring records").
func (t *Table) SeekWithPrev(key []byte, ts uint64) (prev, cur *record.Record, err error) {
	bi := t.seekBlock(key, ts)
	if bi >= len(t.index) {
		// Position is past the end: prev is the table's last record.
		last, err := t.Last()
		if err != nil {
			return nil, nil, err
		}
		return &last, nil, nil
	}
	recs, err := t.readBlock(bi)
	if err != nil {
		return nil, nil, err
	}
	pos := 0
	for pos < len(recs) && record.Compare(recs[pos].Key, recs[pos].Ts, key, ts) < 0 {
		pos++
	}
	if pos < len(recs) {
		cur = &recs[pos]
	}
	switch {
	case pos > 0:
		prev = &recs[pos-1]
	case bi > 0:
		prevRecs, err := t.readBlock(bi - 1)
		if err != nil {
			return nil, nil, err
		}
		p := prevRecs[len(prevRecs)-1]
		prev = &p
	}
	return prev, cur, nil
}

// First returns the table's first record.
func (t *Table) First() (record.Record, error) {
	recs, err := t.readBlock(0)
	if err != nil {
		return record.Record{}, err
	}
	return recs[0], nil
}

// Last returns the table's last record.
func (t *Table) Last() (record.Record, error) {
	recs, err := t.readBlock(len(t.index) - 1)
	if err != nil {
		return record.Record{}, err
	}
	return recs[len(recs)-1], nil
}

// Iter returns an iterator over the table.
func (t *Table) Iter() record.Iterator {
	return &tableIter{t: t, block: -1}
}

type tableIter struct {
	t     *Table
	block int
	recs  []record.Record
	pos   int
	err   error
}

var _ record.Iterator = (*tableIter)(nil)

func (it *tableIter) loadBlock(i int) {
	if i >= len(it.t.index) {
		it.recs = nil
		it.pos = 0
		it.block = len(it.t.index)
		return
	}
	recs, err := it.t.readBlock(i)
	if err != nil {
		it.err = err
		it.recs = nil
		it.block = len(it.t.index)
		return
	}
	it.block = i
	it.recs = recs
	it.pos = 0
}

func (it *tableIter) Valid() bool { return it.pos < len(it.recs) }

func (it *tableIter) Next() {
	if !it.Valid() {
		return
	}
	it.pos++
	if it.pos >= len(it.recs) {
		it.loadBlock(it.block + 1)
	}
}

func (it *tableIter) Record() record.Record { return it.recs[it.pos] }

func (it *tableIter) SeekGE(key []byte, ts uint64) {
	bi := it.t.seekBlock(key, ts)
	it.loadBlock(bi)
	for it.pos < len(it.recs) && record.Compare(it.recs[it.pos].Key, it.recs[it.pos].Ts, key, ts) < 0 {
		it.pos++
	}
	if it.pos >= len(it.recs) && bi < len(it.t.index) {
		it.loadBlock(bi + 1)
	}
}

// Err returns the first block-read error encountered, if any.
func (it *tableIter) Err() error { return it.err }

func (it *tableIter) Close() error { return it.err }

// First positions the iterator at the table's first record.
func (it *tableIter) First() { it.loadBlock(0) }
