// Package costmodel converts hardware cost budgets (CPU cycles for SGX world
// switches, enclave page eviction, per-byte copies) into deterministic CPU
// work, so that benchmarks of the simulated enclave reproduce the *relative*
// cost structure of real SGX hardware without requiring an SGX CPU.
//
// The model is calibrated once per process: a short timing loop measures how
// many iterations of an opaque arithmetic kernel this machine executes per
// nanosecond, after which Spin(d) burns approximately d of CPU time without
// sleeping (sleeping would hide the cost from CPU-bound benchmarks).
//
// Unit tests use Zero (all charges are no-ops) so functional tests stay fast.
package costmodel

import (
	"sync/atomic"
	"time"
)

// Model describes the simulated hardware cost of each enclave-related event.
// A zero-valued Model charges nothing and is safe to use.
type Model struct {
	// WorldSwitch is charged once per enclave boundary crossing direction
	// (an OCall costs two: exit + re-enter). Real SGX: ~8k–14k cycles.
	WorldSwitch time.Duration
	// PageFault is charged per 4 KiB enclave page that must be evicted and
	// reloaded when the enclave working set exceeds the EPC. Real SGX EWB +
	// ELDU round trip: ~40k cycles.
	PageFault time.Duration
	// EnclaveCopyPerKB is charged per KiB copied across the enclave
	// boundary (the "extra copy" S1 in the paper, §4.2).
	EnclaveCopyPerKB time.Duration
	// MEEPerKB models the memory-encryption-engine overhead for touching
	// enclave-resident data (charged on reads/writes of enclave regions).
	MEEPerKB time.Duration
}

// Zero charges nothing. Use in unit tests.
var Zero = Model{}

// Calibrated returns the default model used by the paper-reproduction
// benchmarks. The durations correspond to published SGX microbenchmarks
// (Orenbach et al., EuroSys'17; Weisse et al., ISCA'17) at ~2.7 GHz:
//
//	world switch ≈ 3 µs, EPC page fault ≈ 12 µs,
//	cross-boundary copy ≈ 150 ns/KiB, MEE ≈ 25 ns/KiB.
func Calibrated() Model {
	return Model{
		WorldSwitch:      3 * time.Microsecond,
		PageFault:        12 * time.Microsecond,
		EnclaveCopyPerKB: 150 * time.Nanosecond,
		MEEPerKB:         25 * time.Nanosecond,
	}
}

// Scaled returns Calibrated with every term multiplied by f. Useful for
// sensitivity/ablation benchmarks.
func Scaled(f float64) Model {
	c := Calibrated()
	return Model{
		WorldSwitch:      time.Duration(float64(c.WorldSwitch) * f),
		PageFault:        time.Duration(float64(c.PageFault) * f),
		EnclaveCopyPerKB: time.Duration(float64(c.EnclaveCopyPerKB) * f),
		MEEPerKB:         time.Duration(float64(c.MEEPerKB) * f),
	}
}

// IsZero reports whether the model charges nothing, letting hot paths skip
// accounting entirely.
func (m Model) IsZero() bool {
	return m.WorldSwitch == 0 && m.PageFault == 0 && m.EnclaveCopyPerKB == 0 && m.MEEPerKB == 0
}

// itersPerMicro is the calibrated number of spinKernel iterations per
// microsecond of wall time. 0 means not yet calibrated.
var itersPerMicro atomic.Int64

// sink defeats dead-code elimination of the spin kernel.
var sink atomic.Uint64

// spinKernel burns n iterations of integer work. The xorshift mix prevents
// the compiler from collapsing the loop.
func spinKernel(n int64) {
	var x uint64 = 88172645463325252
	for i := int64(0); i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	sink.Store(x)
}

// calibrate measures the kernel's speed. It runs once per process, lazily,
// so importing this package has no init-time cost (per the style guide's
// "avoid init side effects").
func calibrate() int64 {
	if v := itersPerMicro.Load(); v > 0 {
		return v
	}
	const probe = 2_000_000
	best := int64(1 << 62)
	for trial := 0; trial < 3; trial++ {
		start := time.Now()
		spinKernel(probe)
		el := time.Since(start)
		if el <= 0 {
			el = time.Nanosecond
		}
		perMicro := int64(float64(probe) / (float64(el) / float64(time.Microsecond)))
		if perMicro < best {
			best = perMicro
		}
	}
	if best < 1 {
		best = 1
	}
	itersPerMicro.Store(best)
	return best
}

// Spin burns approximately d of CPU time. It never sleeps: the cost must be
// visible to CPU-bound benchmark loops exactly like real enclave overhead.
func Spin(d time.Duration) {
	if d <= 0 {
		return
	}
	ipm := calibrate()
	iters := int64(float64(d) / float64(time.Microsecond) * float64(ipm))
	if iters < 1 {
		iters = 1
	}
	spinKernel(iters)
}

// Charge burns n×d of CPU time. It exists so callers can express "n page
// faults" without multiplying durations at every call site.
func Charge(d time.Duration, n int) {
	if d <= 0 || n <= 0 {
		return
	}
	Spin(time.Duration(n) * d)
}

// ChargeBytes burns the per-KiB rate for n bytes (rounded up to a whole KiB).
func ChargeBytes(perKB time.Duration, n int) {
	if perKB <= 0 || n <= 0 {
		return
	}
	kb := (n + 1023) / 1024
	Spin(time.Duration(kb) * perKB)
}
