package costmodel

import (
	"testing"
	"time"
)

func TestZeroModelIsZero(t *testing.T) {
	if !Zero.IsZero() {
		t.Fatal("Zero.IsZero() = false")
	}
	if Calibrated().IsZero() {
		t.Fatal("Calibrated().IsZero() = true")
	}
}

func TestSpinBurnsApproximateTime(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	start := time.Now()
	Spin(5 * time.Millisecond)
	el := time.Since(start)
	if el < 2*time.Millisecond {
		t.Fatalf("Spin(5ms) returned after %v", el)
	}
	if el > 100*time.Millisecond {
		t.Fatalf("Spin(5ms) took %v", el)
	}
}

func TestSpinZeroAndNegative(t *testing.T) {
	Spin(0)
	Spin(-time.Second) // must return immediately, not hang
}

func TestChargeMultiplies(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	start := time.Now()
	Charge(time.Millisecond, 5)
	if el := time.Since(start); el < 2*time.Millisecond {
		t.Fatalf("Charge(1ms, 5) took only %v", el)
	}
	Charge(time.Millisecond, 0) // no-op
}

func TestChargeBytesRounding(t *testing.T) {
	// 1 byte rounds up to 1 KiB; just ensure no panic and fast return at
	// tiny rates.
	ChargeBytes(time.Nanosecond, 1)
	ChargeBytes(time.Nanosecond, 0)
	ChargeBytes(0, 1<<20)
}

func TestScaled(t *testing.T) {
	half := Scaled(0.5)
	cal := Calibrated()
	if half.WorldSwitch != cal.WorldSwitch/2 {
		t.Fatalf("scaled world switch = %v", half.WorldSwitch)
	}
	if half.PageFault != cal.PageFault/2 {
		t.Fatalf("scaled page fault = %v", half.PageFault)
	}
}
