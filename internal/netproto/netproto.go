// Package netproto is the wire codec of the eLSM network front end: a
// length-prefixed binary protocol with per-connection request pipelining.
//
// Every frame is
//
//	uint32  payload length (big endian)
//	uint8   type — a request Op or a response Code
//	uint64  request id (big endian)
//	body    type-specific payload
//
// Requests carry a client-chosen id; responses echo it, so a server may
// answer out of order and a client demultiplexes by id. Streaming results
// (SCAN) are multi-frame: any number of CodeRows chunks followed by one
// CodeScanEnd terminator (or CodeErr), all under the request's id.
//
// The codec is defensive by construction: byte strings are uvarint
// length-prefixed and every decode is bounds-checked, so truncated,
// oversized or garbage frames surface as typed errors (*FrameError,
// *DecodeError) a server can answer without losing framing — ReadFrame
// discards an oversized frame's payload and keeps the connection usable.
//
// The first payload-length byte of any frame under 16 MB is 0x00, while
// the legacy line protocol starts with a printable command letter; servers
// exploit this to sniff the protocol on the first byte of a connection.
package netproto

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MaxFrame bounds one frame's payload (type + id + body). Frames declaring
// more are answered with ErrnoFrameTooLarge and their payload is discarded.
const MaxFrame = 16 << 20

// frameOverhead is the fixed payload prefix: 1-byte type + 8-byte id.
const frameOverhead = 1 + 8

// Op is a request opcode.
type Op uint8

const (
	// OpPut writes one key-value pair durably: key, value.
	OpPut Op = iota + 1
	// OpGet reads the latest verified value: key.
	OpGet
	// OpDel writes a tombstone: key.
	OpDel
	// OpBatch applies an atomic multi-op write: count, then per op a
	// kind byte (0 = put, 1 = delete), key and (for puts) value.
	OpBatch
	// OpScan streams the verified range [start, end] at timestamp tsq
	// (0 = latest): start, end, tsq.
	OpScan
	// OpSync is the durability barrier (empty body).
	OpSync
	// OpStats dumps the server's counters (empty body).
	OpStats
	// OpPing is a liveness probe (empty body).
	OpPing
)

func (o Op) String() string {
	switch o {
	case OpPut:
		return "PUT"
	case OpGet:
		return "GET"
	case OpDel:
		return "DEL"
	case OpBatch:
		return "BATCH"
	case OpScan:
		return "SCAN"
	case OpSync:
		return "SYNC"
	case OpStats:
		return "STATS"
	case OpPing:
		return "PING"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Code is a response type.
type Code uint8

const (
	// CodeOK acknowledges a write or barrier: ts.
	CodeOK Code = iota + 0x81
	// CodeValue answers a found GET: ts, value.
	CodeValue
	// CodeNotFound answers a missing GET (empty body).
	CodeNotFound
	// CodeRows is one SCAN chunk: count, then per row key, ts, value.
	CodeRows
	// CodeScanEnd terminates a SCAN stream: total row count.
	CodeScanEnd
	// CodeErr reports a typed failure: errno, message.
	CodeErr
	// CodeBusy is the admission-control load shed: the server refused the
	// request (or, under id 0, the connection) instead of queueing it.
	// Retry later, ideally with backoff.
	CodeBusy
	// CodeStats answers OpStats: count, then per gauge name, value.
	CodeStats
	// CodePong answers OpPing (empty body).
	CodePong
)

// Errno classifies a CodeErr response.
type Errno uint16

const (
	// ErrnoGeneric is an uncategorized server-side failure.
	ErrnoGeneric Errno = iota + 1
	// ErrnoMalformed reports an undecodable request body.
	ErrnoMalformed
	// ErrnoFrameTooLarge reports a frame above MaxFrame (payload dropped).
	ErrnoFrameTooLarge
	// ErrnoUnknownOp reports an unrecognized request opcode.
	ErrnoUnknownOp
	// ErrnoAuth reports a verification failure (forged, stale, incomplete
	// or rolled-back data detected) — the authenticated store's fail-stop.
	ErrnoAuth
	// ErrnoReadOnly reports a write against a read-only replica.
	ErrnoReadOnly
)

// BatchOp is one operation of an OpBatch request.
type BatchOp struct {
	Key    []byte
	Value  []byte
	Delete bool
}

// Row is one verified record of a CodeRows chunk.
type Row struct {
	Key   []byte
	Ts    uint64
	Value []byte
}

// Stat is one gauge of a CodeStats response.
type Stat struct {
	Name  string
	Value uint64
}

// FrameError is a framing-level fault ReadFrame recovered from: the
// declared payload was discarded and the connection remains usable. ID and
// Type are salvaged from the discarded payload when it carried at least the
// fixed prefix, so the server can answer the offending request.
type FrameError struct {
	Size int    // declared payload length
	Type uint8  // salvaged frame type (0 if unavailable)
	ID   uint64 // salvaged request id (0 if unavailable)
}

func (e *FrameError) Error() string {
	return fmt.Sprintf("netproto: oversized frame (%d bytes > %d max)", e.Size, MaxFrame)
}

// DecodeError is a request or response body that failed to decode.
type DecodeError struct {
	What string
}

func (e *DecodeError) Error() string { return "netproto: malformed " + e.What }

// ---------------------------------------------------------------------------
// Frame I/O

// WriteFrame writes one frame. body may be nil.
func WriteFrame(w io.Writer, typ uint8, id uint64, body []byte) error {
	var hdr [4 + frameOverhead]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(frameOverhead+len(body)))
	hdr[4] = typ
	binary.BigEndian.PutUint64(hdr[5:13], id)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := w.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame, returning its type, request id and body.
//
// Recoverable faults — a frame whose declared payload exceeds MaxFrame or
// is too short to carry the fixed prefix — discard the payload and return a
// *FrameError: the stream stays in sync and the caller should answer with
// ErrnoFrameTooLarge/ErrnoMalformed and keep serving. Any other error is a
// transport-level failure (EOF, a torn header) and ends the connection.
func ReadFrame(r io.Reader, max int) (typ uint8, id uint64, body []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if max <= 0 {
		max = MaxFrame
	}
	if n < frameOverhead || n > max {
		fe := &FrameError{Size: n}
		// Salvage the prefix so the fault can be answered under its id,
		// then discard the rest of the declared payload to stay in sync.
		salvage := n
		if salvage > frameOverhead {
			salvage = frameOverhead
		}
		var pre [frameOverhead]byte
		if salvage > 0 {
			if _, err := io.ReadFull(r, pre[:salvage]); err != nil {
				return 0, 0, nil, err
			}
		}
		if salvage == frameOverhead {
			fe.Type = pre[0]
			fe.ID = binary.BigEndian.Uint64(pre[1:9])
		}
		if _, err := io.CopyN(io.Discard, r, int64(n-salvage)); err != nil {
			return 0, 0, nil, err
		}
		return 0, 0, nil, fe
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, err
	}
	return payload[0], binary.BigEndian.Uint64(payload[1:9]), payload[9:], nil
}

// ---------------------------------------------------------------------------
// Body primitives

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func readUvarint(b []byte, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, &DecodeError{What: what}
	}
	return v, b[n:], nil
}

func readBytes(b []byte, what string) ([]byte, []byte, error) {
	n, rest, err := readUvarint(b, what+" length")
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, &DecodeError{What: what}
	}
	return rest[:n:n], rest[n:], nil
}

// ---------------------------------------------------------------------------
// Requests

// Request is one decoded client request.
type Request struct {
	Op  Op
	ID  uint64
	Key []byte // Put, Get, Del
	// Value is the Put payload.
	Value []byte
	// Ops is the Batch payload.
	Ops []BatchOp
	// Start, End, Tsq are the Scan payload (Tsq 0 = latest).
	Start, End []byte
	Tsq        uint64
}

// AppendRequest encodes req as one frame appended to dst.
func AppendRequest(dst []byte, req *Request) []byte {
	var body []byte
	switch req.Op {
	case OpPut:
		body = appendBytes(body, req.Key)
		body = appendBytes(body, req.Value)
	case OpGet, OpDel:
		body = appendBytes(body, req.Key)
	case OpBatch:
		body = appendUvarint(body, uint64(len(req.Ops)))
		for _, op := range req.Ops {
			kind := byte(0)
			if op.Delete {
				kind = 1
			}
			body = append(body, kind)
			body = appendBytes(body, op.Key)
			if !op.Delete {
				body = appendBytes(body, op.Value)
			}
		}
	case OpScan:
		body = appendBytes(body, req.Start)
		body = appendBytes(body, req.End)
		body = appendUvarint(body, req.Tsq)
	case OpSync, OpStats, OpPing:
		// empty body
	}
	var hdr [4 + frameOverhead]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(frameOverhead+len(body)))
	hdr[4] = uint8(req.Op)
	binary.BigEndian.PutUint64(hdr[5:13], req.ID)
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// maxBatchOps bounds one decoded batch (protocol abuse guard, mirroring
// the line protocol's cap).
const maxBatchOps = 10000

// DecodeRequest decodes a request frame's body. Unknown opcodes and
// malformed bodies return *DecodeError; the caller answers ErrnoUnknownOp/
// ErrnoMalformed and keeps the connection.
func DecodeRequest(typ uint8, id uint64, body []byte) (*Request, error) {
	req := &Request{Op: Op(typ), ID: id}
	var err error
	switch req.Op {
	case OpPut:
		if req.Key, body, err = readBytes(body, "put key"); err != nil {
			return nil, err
		}
		if req.Value, body, err = readBytes(body, "put value"); err != nil {
			return nil, err
		}
	case OpGet, OpDel:
		if req.Key, body, err = readBytes(body, "key"); err != nil {
			return nil, err
		}
	case OpBatch:
		var n uint64
		if n, body, err = readUvarint(body, "batch count"); err != nil {
			return nil, err
		}
		if n > maxBatchOps {
			return nil, &DecodeError{What: fmt.Sprintf("batch count %d (max %d)", n, maxBatchOps)}
		}
		req.Ops = make([]BatchOp, 0, n)
		for i := uint64(0); i < n; i++ {
			if len(body) == 0 {
				return nil, &DecodeError{What: "batch op kind"}
			}
			kind := body[0]
			body = body[1:]
			if kind > 1 {
				return nil, &DecodeError{What: "batch op kind"}
			}
			var op BatchOp
			op.Delete = kind == 1
			if op.Key, body, err = readBytes(body, "batch key"); err != nil {
				return nil, err
			}
			if !op.Delete {
				if op.Value, body, err = readBytes(body, "batch value"); err != nil {
					return nil, err
				}
			}
			req.Ops = append(req.Ops, op)
		}
	case OpScan:
		if req.Start, body, err = readBytes(body, "scan start"); err != nil {
			return nil, err
		}
		if req.End, body, err = readBytes(body, "scan end"); err != nil {
			return nil, err
		}
		if req.Tsq, body, err = readUvarint(body, "scan tsq"); err != nil {
			return nil, err
		}
	case OpSync, OpStats, OpPing:
		// empty body expected; tolerate trailing bytes below
	default:
		return nil, &DecodeError{What: fmt.Sprintf("opcode %d", typ)}
	}
	if len(body) != 0 {
		return nil, &DecodeError{What: "trailing bytes"}
	}
	return req, nil
}

// ---------------------------------------------------------------------------
// Responses

// Response is one decoded server response frame. Exactly the fields implied
// by Code are meaningful.
type Response struct {
	Code  Code
	ID    uint64
	Ts    uint64 // OK, Value
	Value []byte // Value
	Rows  []Row  // Rows
	Total uint64 // ScanEnd
	Errno Errno  // Err
	Msg   string // Err
	Stats []Stat // Stats
}

// AppendOK encodes a CodeOK body.
func AppendOK(dst []byte, ts uint64) []byte { return appendUvarint(dst, ts) }

// AppendValue encodes a CodeValue body.
func AppendValue(dst []byte, ts uint64, value []byte) []byte {
	dst = appendUvarint(dst, ts)
	return appendBytes(dst, value)
}

// AppendRows encodes a CodeRows body.
func AppendRows(dst []byte, rows []Row) []byte {
	dst = appendUvarint(dst, uint64(len(rows)))
	for _, r := range rows {
		dst = appendBytes(dst, r.Key)
		dst = appendUvarint(dst, r.Ts)
		dst = appendBytes(dst, r.Value)
	}
	return dst
}

// AppendErr encodes a CodeErr body.
func AppendErr(dst []byte, errno Errno, msg string) []byte {
	dst = appendUvarint(dst, uint64(errno))
	return appendBytes(dst, []byte(msg))
}

// AppendStats encodes a CodeStats body.
func AppendStats(dst []byte, stats []Stat) []byte {
	dst = appendUvarint(dst, uint64(len(stats)))
	for _, st := range stats {
		dst = appendBytes(dst, []byte(st.Name))
		dst = appendUvarint(dst, st.Value)
	}
	return dst
}

// DecodeResponse decodes a response frame's body.
func DecodeResponse(typ uint8, id uint64, body []byte) (*Response, error) {
	resp := &Response{Code: Code(typ), ID: id}
	var err error
	switch resp.Code {
	case CodeOK:
		if resp.Ts, body, err = readUvarint(body, "ok ts"); err != nil {
			return nil, err
		}
	case CodeValue:
		if resp.Ts, body, err = readUvarint(body, "value ts"); err != nil {
			return nil, err
		}
		if resp.Value, body, err = readBytes(body, "value"); err != nil {
			return nil, err
		}
	case CodeNotFound, CodeBusy, CodePong:
		// empty body
	case CodeRows:
		var n uint64
		if n, body, err = readUvarint(body, "row count"); err != nil {
			return nil, err
		}
		for i := uint64(0); i < n; i++ {
			var r Row
			if r.Key, body, err = readBytes(body, "row key"); err != nil {
				return nil, err
			}
			if r.Ts, body, err = readUvarint(body, "row ts"); err != nil {
				return nil, err
			}
			if r.Value, body, err = readBytes(body, "row value"); err != nil {
				return nil, err
			}
			resp.Rows = append(resp.Rows, r)
		}
	case CodeScanEnd:
		if resp.Total, body, err = readUvarint(body, "scan total"); err != nil {
			return nil, err
		}
	case CodeErr:
		var errno uint64
		if errno, body, err = readUvarint(body, "errno"); err != nil {
			return nil, err
		}
		resp.Errno = Errno(errno)
		var msg []byte
		if msg, body, err = readBytes(body, "error message"); err != nil {
			return nil, err
		}
		resp.Msg = string(msg)
	case CodeStats:
		var n uint64
		if n, body, err = readUvarint(body, "stat count"); err != nil {
			return nil, err
		}
		for i := uint64(0); i < n; i++ {
			var st Stat
			var name []byte
			if name, body, err = readBytes(body, "stat name"); err != nil {
				return nil, err
			}
			st.Name = string(name)
			if st.Value, body, err = readUvarint(body, "stat value"); err != nil {
				return nil, err
			}
			resp.Stats = append(resp.Stats, st)
		}
	default:
		return nil, &DecodeError{What: fmt.Sprintf("response code %d", typ)}
	}
	if len(body) != 0 {
		return nil, &DecodeError{What: "trailing bytes"}
	}
	return resp, nil
}
