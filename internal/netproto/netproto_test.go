package netproto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

// roundTripReq encodes req, reads it back through ReadFrame and decodes it.
func roundTripReq(t *testing.T, req *Request) *Request {
	t.Helper()
	frame := AppendRequest(nil, req)
	typ, id, body, err := ReadFrame(bytes.NewReader(frame), 0)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if id != req.ID {
		t.Fatalf("id = %d, want %d", id, req.ID)
	}
	got, err := DecodeRequest(typ, id, body)
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	return got
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []*Request{
		{Op: OpPut, ID: 1, Key: []byte("k"), Value: []byte("v")},
		{Op: OpPut, ID: 2, Key: []byte(""), Value: []byte("binary\x00\xff value")},
		{Op: OpGet, ID: 3, Key: []byte("some key")},
		{Op: OpDel, ID: 4, Key: []byte("gone")},
		{Op: OpBatch, ID: 5, Ops: []BatchOp{
			{Key: []byte("a"), Value: []byte("1")},
			{Key: []byte("b"), Delete: true},
			{Key: []byte("c"), Value: bytes.Repeat([]byte("x"), 4096)},
		}},
		{Op: OpScan, ID: 6, Start: []byte("a"), End: []byte("z"), Tsq: 42},
		{Op: OpSync, ID: 7},
		{Op: OpStats, ID: 8},
		{Op: OpPing, ID: 9},
	}
	for _, req := range reqs {
		got := roundTripReq(t, req)
		if got.Op != req.Op || got.ID != req.ID || got.Tsq != req.Tsq {
			t.Fatalf("%s: got %+v, want %+v", req.Op, got, req)
		}
		if !bytes.Equal(got.Key, req.Key) || !bytes.Equal(got.Value, req.Value) ||
			!bytes.Equal(got.Start, req.Start) || !bytes.Equal(got.End, req.End) {
			t.Fatalf("%s: byte fields differ: got %+v, want %+v", req.Op, got, req)
		}
		if len(got.Ops) != len(req.Ops) {
			t.Fatalf("%s: %d ops, want %d", req.Op, len(got.Ops), len(req.Ops))
		}
		for i := range got.Ops {
			if !reflect.DeepEqual(got.Ops[i], req.Ops[i]) {
				t.Fatalf("%s op %d: got %+v, want %+v", req.Op, i, got.Ops[i], req.Ops[i])
			}
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []struct {
		code Code
		body []byte
		want Response
	}{
		{CodeOK, AppendOK(nil, 77), Response{Ts: 77}},
		{CodeValue, AppendValue(nil, 9, []byte("val")), Response{Ts: 9, Value: []byte("val")}},
		{CodeNotFound, nil, Response{}},
		{CodeRows, AppendRows(nil, []Row{{Key: []byte("k"), Ts: 3, Value: []byte("v")}}),
			Response{Rows: []Row{{Key: []byte("k"), Ts: 3, Value: []byte("v")}}}},
		{CodeScanEnd, appendUvarint(nil, 12), Response{Total: 12}},
		{CodeErr, AppendErr(nil, ErrnoAuth, "tampered"), Response{Errno: ErrnoAuth, Msg: "tampered"}},
		{CodeBusy, nil, Response{}},
		{CodeStats, AppendStats(nil, []Stat{{Name: "net_connections", Value: 4}}),
			Response{Stats: []Stat{{Name: "net_connections", Value: 4}}}},
		{CodePong, nil, Response{}},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, uint8(c.code), 5, c.body); err != nil {
			t.Fatal(err)
		}
		typ, id, body, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("code %d: ReadFrame: %v", c.code, err)
		}
		got, err := DecodeResponse(typ, id, body)
		if err != nil {
			t.Fatalf("code %d: DecodeResponse: %v", c.code, err)
		}
		c.want.Code = c.code
		c.want.ID = 5
		if !reflect.DeepEqual(*got, c.want) {
			t.Fatalf("code %d: got %+v, want %+v", c.code, *got, c.want)
		}
	}
}

func TestOversizedFrameRecoverable(t *testing.T) {
	// A frame declaring MaxFrame+1 bytes: ReadFrame must salvage type+id,
	// discard the payload and leave the stream positioned at the next
	// frame.
	var buf bytes.Buffer
	n := MaxFrame + 1
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(n))
	buf.Write(hdr[:])
	payload := make([]byte, n)
	payload[0] = uint8(OpPut)
	binary.BigEndian.PutUint64(payload[1:9], 99)
	buf.Write(payload)
	// A healthy frame follows.
	WriteFrame(&buf, uint8(OpPing), 100, nil)

	_, _, _, err := ReadFrame(&buf, 0)
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want *FrameError", err)
	}
	if fe.ID != 99 || fe.Type != uint8(OpPut) || fe.Size != n {
		t.Fatalf("salvaged %+v, want id 99 / type PUT / size %d", fe, n)
	}
	typ, id, _, err := ReadFrame(&buf, 0)
	if err != nil || typ != uint8(OpPing) || id != 100 {
		t.Fatalf("stream lost sync after oversized frame: typ %d id %d err %v", typ, id, err)
	}
}

func TestUndersizedFrameRecoverable(t *testing.T) {
	// Payload length below the fixed prefix: recoverable, id unknown.
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 3)
	buf.Write(hdr[:])
	buf.Write([]byte{1, 2, 3})
	WriteFrame(&buf, uint8(OpPing), 7, nil)

	_, _, _, err := ReadFrame(&buf, 0)
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want *FrameError", err)
	}
	if typ, id, _, err := ReadFrame(&buf, 0); err != nil || typ != uint8(OpPing) || id != 7 {
		t.Fatalf("stream lost sync after undersized frame: typ %d id %d err %v", typ, id, err)
	}
}

func TestTruncatedStreamIsTransportError(t *testing.T) {
	frame := AppendRequest(nil, &Request{Op: OpPut, ID: 1, Key: []byte("k"), Value: []byte("v")})
	for cut := 1; cut < len(frame); cut++ {
		_, _, _, err := ReadFrame(bytes.NewReader(frame[:cut]), 0)
		if err == nil {
			t.Fatalf("cut %d: no error", cut)
		}
		var fe *FrameError
		if errors.As(err, &fe) {
			t.Fatalf("cut %d: truncated stream misread as recoverable FrameError", cut)
		}
		if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d: err = %v, want EOF-ish", cut, err)
		}
	}
}

func TestGarbageBodiesDrawTypedErrors(t *testing.T) {
	cases := []struct {
		name string
		typ  uint8
		body []byte
	}{
		{"unknown opcode", 0x7f, nil},
		{"put missing value", uint8(OpPut), appendBytes(nil, []byte("k"))},
		{"put length overflow", uint8(OpPut), appendUvarint(nil, 1<<40)},
		{"batch kind garbage", uint8(OpBatch), append(appendUvarint(nil, 1), 9)},
		{"batch count abuse", uint8(OpBatch), appendUvarint(nil, 1<<32)},
		{"scan missing tsq", uint8(OpScan), appendBytes(appendBytes(nil, []byte("a")), []byte("z"))},
		{"trailing bytes", uint8(OpPing), []byte{1}},
	}
	for _, c := range cases {
		_, err := DecodeRequest(c.typ, 1, c.body)
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Fatalf("%s: err = %v, want *DecodeError", c.name, err)
		}
		if !strings.Contains(err.Error(), "netproto: malformed") {
			t.Fatalf("%s: error %q missing typed prefix", c.name, err)
		}
	}
}

func TestBinarySniffByte(t *testing.T) {
	// The dual-protocol server distinguishes framed connections by their
	// first byte: any frame below MaxFrame starts 0x00, line commands
	// start with a printable letter.
	frame := AppendRequest(nil, &Request{Op: OpGet, ID: 1, Key: []byte("k")})
	if frame[0] != 0 {
		t.Fatalf("first frame byte = %#x, want 0x00", frame[0])
	}
}
