package netproto

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

// FuzzReadFrame feeds arbitrary byte streams through the frame reader and
// request decoder the way a server's reader goroutine consumes a
// connection: every fault must surface as a typed, recoverable error or a
// transport error — never a panic, never an unbounded allocation.
func FuzzReadFrame(f *testing.F) {
	f.Add(AppendRequest(nil, &Request{Op: OpPut, ID: 1, Key: []byte("key"), Value: []byte("value")}))
	f.Add(AppendRequest(nil, &Request{Op: OpScan, ID: 2, Start: []byte("a"), End: []byte("z"), Tsq: 7}))
	f.Add(AppendRequest(nil, &Request{Op: OpBatch, ID: 3, Ops: []BatchOp{
		{Key: []byte("a"), Value: []byte("1")}, {Key: []byte("b"), Delete: true},
	}}))
	f.Add([]byte{0, 0, 0, 3, 1, 2, 3})             // undersized payload
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0}) // oversized declaration
	f.Add([]byte("PUT alpha one\n"))               // line protocol bytes
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			typ, id, body, err := ReadFrame(r, 1<<20)
			if err != nil {
				var fe *FrameError
				if errors.As(err, &fe) {
					continue // recoverable: keep consuming the stream
				}
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
					return
				}
				t.Fatalf("untyped ReadFrame error: %v", err)
			}
			req, err := DecodeRequest(typ, id, body)
			if err != nil {
				var de *DecodeError
				if !errors.As(err, &de) {
					t.Fatalf("untyped DecodeRequest error: %v", err)
				}
				continue
			}
			// A decodable request must re-encode to a decodable equal.
			again, err := DecodeRequest(typ, id, AppendRequest(nil, req)[4+frameOverhead:])
			if err != nil {
				t.Fatalf("re-encode of decoded request failed: %v", err)
			}
			if !reflect.DeepEqual(req, again) {
				t.Fatalf("re-encode round trip diverged: %+v vs %+v", req, again)
			}
		}
	})
}

// FuzzDecodeResponse hardens the client-side decoder the same way.
func FuzzDecodeResponse(f *testing.F) {
	f.Add(uint8(CodeOK), AppendOK(nil, 1))
	f.Add(uint8(CodeValue), AppendValue(nil, 2, []byte("v")))
	f.Add(uint8(CodeRows), AppendRows(nil, []Row{{Key: []byte("k"), Ts: 1, Value: []byte("v")}}))
	f.Add(uint8(CodeErr), AppendErr(nil, ErrnoAuth, "bad"))
	f.Add(uint8(CodeStats), AppendStats(nil, []Stat{{Name: "g", Value: 1}}))
	f.Add(uint8(0), []byte{})
	f.Fuzz(func(t *testing.T, typ uint8, body []byte) {
		resp, err := DecodeResponse(typ, 1, body)
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("untyped DecodeResponse error: %v", err)
			}
			return
		}
		if resp.Code != Code(typ) || resp.ID != 1 {
			t.Fatalf("decoded frame identity mangled: %+v", resp)
		}
	})
}
