package lsm

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"elsm/internal/hashutil"
	"elsm/internal/memtable"
	"elsm/internal/record"
	"elsm/internal/sgx"
	"elsm/internal/sstable"
	"elsm/internal/vfs"
	"elsm/internal/wal"
)

// Well-known file names in the untrusted FS.
const (
	walName      = "wal.log"
	manifestName = "MANIFEST"
	manifestTmp  = "MANIFEST.tmp"
)

// Store errors.
var (
	ErrClosed        = errors.New("lsm: store closed")
	ErrAborted       = errors.New("lsm: compaction aborted by listener")
	ErrBadBulkLoad   = errors.New("lsm: bulk load records not sorted")
	ErrUnknownRun    = errors.New("lsm: unknown run")
	ErrManifestParse = errors.New("lsm: manifest parse failure")
)

// tableHandle pairs an open SSTable with its file.
type tableHandle struct {
	meta  sstable.Meta
	table *sstable.Table
	name  string
}

// run is one immutable sorted run of tables (non-overlapping, key-ordered).
type run struct {
	id      uint64
	tables  []*tableHandle
	bytes   int64
	entries int
}

// openFile tracks an open untrusted file and its optional mmap views.
type openFile struct {
	file       vfs.File
	view       []byte      // mmap read path view (MmapReads)
	pinned     []byte      // compaction-time bulk-loaded view (§5.3 step m1)
	metaRegion *sgx.Region // in-enclave index/filter footprint
}

// RunRef identifies one run in read order (newest data first).
type RunRef struct {
	ID    uint64
	Level int
	Index int // position within the level (0 = newest)
}

// Stats counts engine-level events.
type Stats struct {
	Flushes         uint64
	Compactions     uint64
	BytesFlushed    uint64
	BytesCompacted  uint64
	RecordsDropped  uint64
	ManifestUpdates uint64
	// WALSyncs counts WAL fsyncs issued by the commit pipeline — under
	// group commit, far fewer than committed operations.
	WALSyncs uint64
	// GroupCommits counts commit groups; GroupedRecords counts the records
	// they carried (GroupedRecords/GroupCommits = mean group size).
	GroupCommits   uint64
	GroupedRecords uint64
	// WALTornRecords counts records dropped at recovery because their
	// commit group never completed (crash mid-append).
	WALTornRecords uint64
}

// Store is the LSM engine. Reads may run concurrently; writes flow through
// the group-commit pipeline (commit.go), which serializes them while
// coalescing concurrent commits into shared WAL fsyncs; compaction runs
// synchronously on the write path (its cost is amortized into write
// latency, matching how the paper reports Figure 7).
//
// Lock order: commitMu > mu > the listener's own locks. commitMu
// serializes "WAL epochs" — a commit group's append+fsync, a flush's WAL
// rotation, close — without blocking readers, which only take mu.RLock and
// therefore never wait on an in-flight fsync.
type Store struct {
	opts     Options
	fs       vfs.FS
	enclave  *sgx.Enclave
	listener EventListener

	commitMu sync.Mutex // guards walW append/sync/rotate epochs

	mu     sync.RWMutex // guards mem, levels, counters
	mem    *memtable.Table
	walW   *wal.Writer
	levels [][]*run // levels[0] unused; levels[i] newest-run-first

	gc committer // group-commit queue (commit.go)

	fileMu sync.RWMutex
	files  map[uint64]*openFile

	nextFileNum uint64
	nextRunID   uint64
	lastTs      atomic.Uint64
	closed      bool

	walReplayDigest hashutil.Hash
	replayedRecords int
	walTornRecords  int

	// Commit-pipeline counters, updated outside mu (the fsync runs without
	// the engine lock) and folded into Stats().
	walSyncs       atomic.Uint64
	groupCommits   atomic.Uint64
	groupedRecords atomic.Uint64

	stats Stats
}

// Open creates or recovers a store.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.MmapReads && opts.Transform != nil {
		return nil, errors.New("lsm: mmap reads are incompatible with block transforms (eLSM-P1 cannot mmap, §6.3)")
	}
	s := &Store{
		opts:        opts,
		fs:          opts.FS,
		enclave:     opts.Enclave,
		listener:    opts.Listener,
		mem:         memtable.New(opts.Enclave),
		levels:      make([][]*run, opts.MaxLevels+1),
		files:       make(map[uint64]*openFile),
		nextFileNum: 1,
		nextRunID:   1,
	}
	s.gc.token = make(chan struct{}, 1)
	if err := s.recover(); err != nil {
		return nil, err
	}
	if err := s.openWAL(); err != nil {
		return nil, err
	}
	return s, nil
}

// ocall runs fn in the untrusted world, charging world-switch cost.
func (s *Store) ocall(fn func()) { s.enclave.OCall(fn) }

// tableName formats an SSTable file name.
func tableName(fileNum uint64) string { return fmt.Sprintf("%06d.sst", fileNum) }

// ---------------------------------------------------------------------------
// Manifest

type manifestTable struct {
	FileNum    uint64 `json:"file"`
	Smallest   []byte `json:"smallest"`
	SmallestTs uint64 `json:"smallestTs"`
	Largest    []byte `json:"largest"`
	LargestTs  uint64 `json:"largestTs"`
	NumEntries int    `json:"entries"`
	NumBlocks  int    `json:"blocks"`
	Size       int64  `json:"size"`
}

type manifestRun struct {
	ID     uint64          `json:"id"`
	Files  []manifestTable `json:"files"`
	Emtpy  bool            `json:"-"`
	Nbytes int64           `json:"bytes"`
}

type manifestRoot struct {
	NextFileNum uint64          `json:"nextFile"`
	NextRunID   uint64          `json:"nextRun"`
	LastTs      uint64          `json:"lastTs"`
	Levels      [][]manifestRun `json:"levels"`
}

// persistManifestLocked writes the current version to MANIFEST atomically.
// Caller holds s.mu.
func (s *Store) persistManifestLocked() error {
	root := manifestRoot{
		NextFileNum: s.nextFileNum,
		NextRunID:   s.nextRunID,
		LastTs:      s.lastTs.Load(),
		Levels:      make([][]manifestRun, len(s.levels)),
	}
	for i, runs := range s.levels {
		for _, r := range runs {
			mr := manifestRun{ID: r.id, Nbytes: r.bytes}
			for _, th := range r.tables {
				mr.Files = append(mr.Files, manifestTable{
					FileNum:    th.meta.FileNum,
					Smallest:   th.meta.Smallest,
					SmallestTs: th.meta.SmallestTs,
					Largest:    th.meta.Largest,
					LargestTs:  th.meta.LargestTs,
					NumEntries: th.meta.NumEntries,
					NumBlocks:  th.meta.NumBlocks,
					Size:       th.meta.Size,
				})
			}
			root.Levels[i] = append(root.Levels[i], mr)
		}
	}
	data, err := json.Marshal(root)
	if err != nil {
		return fmt.Errorf("lsm: manifest marshal: %w", err)
	}
	var werr error
	s.ocall(func() {
		var f vfs.File
		f, werr = s.fs.Create(manifestTmp)
		if werr != nil {
			return
		}
		if _, werr = f.Append(data); werr != nil {
			return
		}
		if werr = f.Sync(); werr != nil {
			return
		}
		if werr = f.Close(); werr != nil {
			return
		}
		werr = s.fs.Rename(manifestTmp, manifestName)
	})
	if werr != nil {
		return fmt.Errorf("lsm: manifest write: %w", werr)
	}
	s.stats.ManifestUpdates++
	return nil
}

// recover loads the manifest (if any) and replays the WAL (if any).
func (s *Store) recover() error {
	if s.fs.Exists(manifestName) {
		if err := s.recoverManifest(); err != nil {
			return err
		}
	}
	// Replay the WAL into the memtable. Only complete commit groups are
	// replayed; a torn tail (crash mid-group) is truncated away so the log
	// ends exactly at the last committed group and appends resume cleanly.
	if s.fs.Exists(walName) {
		var f vfs.File
		var oerr error
		s.ocall(func() { f, oerr = s.fs.Open(walName) })
		if oerr != nil {
			return fmt.Errorf("lsm: wal open: %w", oerr)
		}
		info, err := wal.Replay(f, func(rec record.Record) error {
			s.mem.Put(rec)
			if rec.Ts > s.lastTs.Load() {
				s.lastTs.Store(rec.Ts)
			}
			s.replayedRecords++
			return nil
		})
		if err != nil {
			f.Close()
			return fmt.Errorf("lsm: wal replay: %w", err)
		}
		if info.CommittedSize < f.Size() {
			s.walTornRecords = info.TornRecords
			var terr error
			s.ocall(func() {
				if terr = f.Truncate(info.CommittedSize); terr == nil {
					terr = f.Sync()
				}
			})
			if terr != nil {
				f.Close()
				return fmt.Errorf("lsm: wal tail truncate: %w", terr)
			}
		}
		s.walReplayDigest = info.Digest
		f.Close()
	}
	return nil
}

// recoverManifest rebuilds the level structure from the MANIFEST file.
func (s *Store) recoverManifest() error {
	var data []byte
	var rerr error
	s.ocall(func() {
		f, err := s.fs.Open(manifestName)
		if err != nil {
			rerr = err
			return
		}
		defer f.Close()
		data = make([]byte, f.Size())
		if _, err := f.ReadAt(data, 0); err != nil && len(data) > 0 {
			rerr = err
		}
	})
	if rerr != nil {
		return fmt.Errorf("lsm: manifest read: %w", rerr)
	}
	var root manifestRoot
	if err := json.Unmarshal(data, &root); err != nil {
		return fmt.Errorf("%w: %v", ErrManifestParse, err)
	}
	s.nextFileNum = root.NextFileNum
	s.nextRunID = root.NextRunID
	s.lastTs.Store(root.LastTs)
	if len(root.Levels) > len(s.levels) {
		s.levels = make([][]*run, len(root.Levels))
	}
	for lvl, runs := range root.Levels {
		for _, mr := range runs {
			r := &run{id: mr.ID}
			for _, mt := range mr.Files {
				th, err := s.openTable(mt.FileNum)
				if err != nil {
					return err
				}
				th.meta.Smallest = mt.Smallest
				th.meta.SmallestTs = mt.SmallestTs
				th.meta.Largest = mt.Largest
				th.meta.LargestTs = mt.LargestTs
				th.meta.NumEntries = mt.NumEntries
				th.meta.NumBlocks = mt.NumBlocks
				th.meta.Size = mt.Size
				r.tables = append(r.tables, th)
				r.bytes += mt.Size
				r.entries += mt.NumEntries
			}
			s.levels[lvl] = append(s.levels[lvl], r)
		}
	}
	return nil
}

// openWAL creates/continues the WAL writer.
func (s *Store) openWAL() error {
	if s.opts.DisableWAL {
		return nil
	}
	var f vfs.File
	var err error
	s.ocall(func() {
		if s.fs.Exists(walName) {
			f, err = s.fs.Open(walName)
		} else {
			f, err = s.fs.Create(walName)
		}
	})
	if err != nil {
		return fmt.Errorf("lsm: wal create: %w", err)
	}
	s.walW = wal.NewWriter(f)
	if s.replayedRecords > 0 {
		s.walW = wal.ResumeWriter(f, s.walReplayDigest)
	}
	return nil
}

// rotateWALLocked truncates the log after a flush. Caller holds s.mu.
func (s *Store) rotateWALLocked() error {
	if s.opts.DisableWAL {
		return nil
	}
	var f vfs.File
	var err error
	s.ocall(func() {
		if s.walW != nil {
			s.walW.Close()
		}
		f, err = s.fs.Create(walName)
	})
	if err != nil {
		return fmt.Errorf("lsm: wal rotate: %w", err)
	}
	s.walW = wal.NewWriter(f)
	s.listener.OnWALRotated()
	return nil
}

// WALReplayDigest returns the digest chain recomputed during recovery and
// the number of replayed records; the authentication layer compares it with
// its sealed trusted digest.
func (s *Store) WALReplayDigest() (hashutil.Hash, int) {
	return s.walReplayDigest, s.replayedRecords
}

// WALTornRecords reports how many records recovery dropped because their
// commit group never completed (a crash — or a truncating host — cut the
// log inside the group). The records were never acknowledged durable as a
// group, so dropping them is the correct crash semantics; a caller that
// demands clean recovery treats any torn tail as suspect.
func (s *Store) WALTornRecords() int {
	return s.walTornRecords
}

// VerifyWALPrefix re-reads the WAL and checks that trusted is a prefix of
// its digest chain, returning how many records follow that prefix. An error
// means the log was tampered with (the trusted digest never occurs on the
// chain). A zero trusted digest matches the empty prefix.
func (s *Store) VerifyWALPrefix(trusted hashutil.Hash) (int, error) {
	if s.opts.DisableWAL || !s.fs.Exists(walName) {
		if trusted.IsZero() {
			return 0, nil
		}
		return 0, fmt.Errorf("lsm: WAL missing but trusted digest is non-zero")
	}
	var f vfs.File
	var oerr error
	s.ocall(func() { f, oerr = s.fs.Open(walName) })
	if oerr != nil {
		return 0, fmt.Errorf("lsm: wal open: %w", oerr)
	}
	defer f.Close()
	found := trusted.IsZero()
	extra := 0
	dig := hashutil.Zero
	if _, err := wal.Replay(f, func(rec record.Record) error {
		dig = hashutil.WALLink(dig, byte(rec.Kind), rec.Key, rec.Ts, rec.Value)
		if found {
			extra++
		} else if dig == trusted {
			found = true
		}
		return nil
	}); err != nil {
		return 0, err
	}
	if !found {
		return 0, fmt.Errorf("lsm: trusted WAL digest not found on chain (log tampered)")
	}
	return extra, nil
}

// EnsureTs raises the timestamp counter to at least minTs (recovery: the
// sealed trusted state may record a later timestamp than the untrusted
// manifest).
func (s *Store) EnsureTs(minTs uint64) {
	for {
		cur := s.lastTs.Load()
		if cur >= minTs {
			return
		}
		if s.lastTs.CompareAndSwap(cur, minTs) {
			return
		}
	}
}

// openTable opens a table file and parses its metadata.
func (s *Store) openTable(fileNum uint64) (*tableHandle, error) {
	name := tableName(fileNum)
	var f vfs.File
	var err error
	s.ocall(func() { f, err = s.fs.Open(name) })
	if err != nil {
		return nil, fmt.Errorf("lsm: open table %s: %w", name, err)
	}
	of := &openFile{file: f}
	if s.opts.MmapReads {
		// One OCall to establish the mapping; reads are then direct.
		s.ocall(func() { of.view = f.Bytes() })
	}
	s.fileMu.Lock()
	s.files[fileNum] = of
	s.fileMu.Unlock()

	t, err := sstable.Open(f, fileNum, &storeSource{s: s})
	if err != nil {
		return nil, err
	}
	// Index + filters live inside the enclave: account their footprint.
	of.metaRegion = s.enclave.Alloc(t.MetadataBytes())
	return &tableHandle{meta: sstable.Meta{FileNum: fileNum}, table: t, name: name}, nil
}

// ---------------------------------------------------------------------------
// Writes (all routed through the group-commit pipeline in commit.go)

// Put inserts a key-value record, returning the assigned trusted timestamp.
func (s *Store) Put(key, value []byte) (uint64, error) {
	return s.commit([]BatchOp{{Key: key, Value: value}})
}

// Delete writes a tombstone for key.
func (s *Store) Delete(key []byte) (uint64, error) {
	return s.commit([]BatchOp{{Key: key, Delete: true}})
}

// Flush forces the memtable to disk.
func (s *Store) Flush() error {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.flushLocked()
}

// ---------------------------------------------------------------------------
// Reads (raw, unverified — the unsecured baseline path; the eLSM layer
// drives the per-run lookup API in lookup.go instead)

// Get returns the newest record of key with Ts ≤ tsq. Tombstones are
// returned as-is (callers interpret Kind). The boolean reports whether any
// version was found.
func (s *Store) Get(key []byte, tsq uint64) (record.Record, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return record.Record{}, false, ErrClosed
	}
	if rec, ok := s.mem.Get(key, tsq); ok {
		return rec, true, nil
	}
	for lvl := 1; lvl < len(s.levels); lvl++ {
		for _, r := range s.levels[lvl] {
			rec, ok, err := s.runGet(r, key, tsq)
			if err != nil {
				return record.Record{}, false, err
			}
			if ok {
				return rec, true, nil
			}
		}
	}
	return record.Record{}, false, nil
}

// runGet searches one run.
func (s *Store) runGet(r *run, key []byte, tsq uint64) (record.Record, bool, error) {
	ti := seekTable(r.tables, key, tsq)
	if ti >= len(r.tables) {
		return record.Record{}, false, nil
	}
	return r.tables[ti].table.Get(key, tsq)
}

// seekTable returns the index of the first table whose largest entry is
// ≥ (key, ts).
func seekTable(tables []*tableHandle, key []byte, ts uint64) int {
	lo, hi := 0, len(tables)
	for lo < hi {
		mid := (lo + hi) / 2
		m := tables[mid].meta
		if record.Compare(m.Largest, m.LargestTs, key, ts) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ---------------------------------------------------------------------------
// Introspection

// Runs returns references to all on-disk runs in read order (newest data
// first): level 1 runs newest-first, then level 2, and so on.
func (s *Store) Runs() []RunRef {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.runsLocked()
}

func (s *Store) runsLocked() []RunRef {
	var out []RunRef
	for lvl := 1; lvl < len(s.levels); lvl++ {
		for idx, r := range s.levels[lvl] {
			out = append(out, RunRef{ID: r.id, Level: lvl, Index: idx})
		}
	}
	return out
}

// findRun locates a run by ID. Caller holds s.mu.
func (s *Store) findRunLocked(id uint64) (*run, error) {
	for lvl := 1; lvl < len(s.levels); lvl++ {
		for _, r := range s.levels[lvl] {
			if r.id == id {
				return r, nil
			}
		}
	}
	return nil, fmt.Errorf("%w: %d", ErrUnknownRun, id)
}

// MemGet reads the (trusted, in-enclave) memtable.
func (s *Store) MemGet(key []byte, tsq uint64) (record.Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.mem.Get(key, tsq)
}

// MemCount returns the number of memtable entries.
func (s *Store) MemCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.mem.Count()
}

// LastTs returns the most recently assigned timestamp.
func (s *Store) LastTs() uint64 { return s.lastTs.Load() }

// Stats returns engine event counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	out := s.stats
	out.WALTornRecords = uint64(s.walTornRecords)
	s.mu.RUnlock()
	out.WALSyncs = s.walSyncs.Load()
	out.GroupCommits = s.groupCommits.Load()
	out.GroupedRecords = s.groupedRecords.Load()
	return out
}

// Enclave exposes the simulated enclave (for the authentication layer).
func (s *Store) Enclave() *sgx.Enclave { return s.enclave }

// NumLevels returns the configured maximum level count.
func (s *Store) NumLevels() int { return s.opts.MaxLevels }

// DiskBytes returns the total bytes across all on-disk runs.
func (s *Store) DiskBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for lvl := 1; lvl < len(s.levels); lvl++ {
		for _, r := range s.levels[lvl] {
			total += r.bytes
		}
	}
	return total
}

// Close flushes nothing (callers flush explicitly if desired) and releases
// resources. Taking commitMu first drains any in-flight commit group before
// the WAL writer goes away; commits queued behind it fail with ErrClosed.
func (s *Store) Close() error {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.walW != nil {
		s.walW.Close()
	}
	s.mem.Release()
	return nil
}
