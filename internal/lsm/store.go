package lsm

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"elsm/internal/hashutil"
	"elsm/internal/memtable"
	"elsm/internal/obs"
	"elsm/internal/record"
	"elsm/internal/sgx"
	"elsm/internal/sstable"
	"elsm/internal/vfs"
	"elsm/internal/wal"
)

// Well-known file names in the untrusted FS. The active WAL is always
// walName; when the memtable freezes, the active log is renamed to a
// frozenWALPrefix-numbered file that lives until the frozen table's flush
// durably installs (recovery replays frozen logs in sequence order, then the
// active log — the digest chain spans the concatenation).
const (
	walName         = "wal.log"
	frozenWALPrefix = "wal-frozen-"
	manifestName    = "MANIFEST"
	manifestTmp     = "MANIFEST.tmp"
)

// frozenWALName formats the name of a rotated (frozen) log.
func frozenWALName(seq uint64) string {
	return fmt.Sprintf("%s%08d.log", frozenWALPrefix, seq)
}

// frozenWALSeq parses the sequence number out of a frozen log name.
func frozenWALSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, frozenWALPrefix) || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	var seq uint64
	_, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, frozenWALPrefix), ".log"), "%d", &seq)
	return seq, err == nil
}

// Store errors.
var (
	ErrClosed        = errors.New("lsm: store closed")
	ErrAborted       = errors.New("lsm: compaction aborted by listener")
	ErrBadBulkLoad   = errors.New("lsm: bulk load records not sorted")
	ErrUnknownRun    = errors.New("lsm: unknown run")
	ErrManifestParse = errors.New("lsm: manifest parse failure")
	// ErrWALSyncFailed is the sticky fail-stop after a WAL fsync error:
	// the group that hit the failure AND every commit attempted afterwards
	// fail with it, because the kernel may have dropped any dirty log page
	// once fsync reported an error. Reopening the store recovers — replay
	// truncates the log back to a verified prefix.
	ErrWALSyncFailed = errors.New("lsm: wal sync failed")
)

// tableHandle pairs an open SSTable with its file.
type tableHandle struct {
	meta  sstable.Meta
	table *sstable.Table
	name  string
}

// run is one immutable sorted run of tables (non-overlapping, key-ordered).
// refs counts reasons the run's files must stay on disk: membership in the
// current version holds one reference, and every pin (a compaction reading
// it as input, a verified iterator scanning it) holds another. Files are
// deleted only when the count reaches zero, so an in-flight read never races
// a compaction deleting its inputs.
type run struct {
	id      uint64
	tables  []*tableHandle
	bytes   int64
	entries int
	refs    atomic.Int32
}

// fileNums lists the run's table file numbers.
func (r *run) fileNums() []uint64 {
	nums := make([]uint64, 0, len(r.tables))
	for _, th := range r.tables {
		nums = append(nums, th.meta.FileNum)
	}
	return nums
}

// openFile tracks an open untrusted file and its optional mmap views.
type openFile struct {
	file       vfs.File
	view       []byte      // mmap read path view (MmapReads)
	pinned     []byte      // compaction-time bulk-loaded view (§5.3 step m1)
	metaRegion *sgx.Region // in-enclave index/filter footprint
}

// RunRef identifies one run in read order (newest data first).
type RunRef struct {
	ID    uint64
	Level int
	Index int // position within the level (0 = newest)
}

// Stats counts engine-level events.
type Stats struct {
	Flushes         uint64
	Compactions     uint64
	BytesFlushed    uint64
	BytesCompacted  uint64
	RecordsDropped  uint64
	ManifestUpdates uint64
	// WALSyncs counts WAL fsyncs issued by the commit pipeline — under
	// group commit, far fewer than committed operations.
	WALSyncs uint64
	// GroupCommits counts commit groups; GroupedRecords counts the records
	// they carried (GroupedRecords/GroupCommits = mean group size).
	GroupCommits   uint64
	GroupedRecords uint64
	// WALTornRecords counts records dropped at recovery because their
	// commit group never completed (crash mid-append).
	WALTornRecords uint64
	// FlushStallNanos is time commit leaders spent blocked because the
	// active memtable filled while the previous frozen memtable was still
	// flushing (the background flush could not keep up with the write rate).
	FlushStallNanos uint64
	// CompactionStallNanos is the portion of those stalls attributable to a
	// level compaction occupying the maintenance worker when the wait began
	// (compaction debt delaying the flush the writer is waiting on).
	CompactionStallNanos uint64
	// BackgroundCompactions counts level compactions executed by the
	// maintenance worker (scheduled, not requested synchronously).
	BackgroundCompactions uint64
	// CompactionDebtBytes is the current total bytes by which levels
	// exceed their size targets — the backlog the scheduler orders
	// background compactions by. CompactionDebtByLevel is the per-level
	// breakdown (index 0 unused, like the level vector).
	CompactionDebtBytes   uint64
	CompactionDebtByLevel []uint64
	// ParallelCompactions is the number of maintenance jobs (flushes,
	// compactions, bulk loads) executing right now on this store.
	ParallelCompactions uint64
	// CompactionWorkersBusy is the number of busy tokens in the worker
	// pool — pool-wide when the pool is shared across shards.
	CompactionWorkersBusy uint64
	// PinnedRuns is the current number of run pins held beyond version
	// membership (compaction inputs being merged, iterator snapshots).
	PinnedRuns uint64
	// SnapshotsOpen is the current number of open engine snapshots
	// (verified read sessions pinning runs and memtables).
	SnapshotsOpen uint64
	// AsyncCommitsInFlight is the current number of CommitAsync commits
	// acknowledged but not yet durable (bounded by MaxAsyncCommitBacklog).
	AsyncCommitsInFlight uint64
	// GroupCommitWindowNanos is the resolved leader batching window: the
	// configured value, or — with GroupCommitWindow = AutoGroupCommitWindow —
	// the value currently derived from the fsync-latency EWMA.
	GroupCommitWindowNanos uint64
	// FsyncEWMANanos is the exponentially-weighted moving average of
	// observed WAL fsync latency feeding the adaptive window.
	FsyncEWMANanos uint64
}

// Store is the LSM engine. Reads may run concurrently; writes flow through
// the two-stage group-commit pipeline (commit.go): an append worker coalesces
// concurrent commits into groups and appends them to the WAL, a sync worker
// fsyncs and applies them — so the append of group N+1 overlaps the fsync of
// group N. Flush and compaction run on a pool of maintenance workers
// (scheduler.go) scheduled by compaction debt over disjoint level pairs:
// the commit path only freezes the full memtable (an O(1) pointer swap plus
// a WAL rotation) and schedules the level rewrite, so writers never wait on
// a multi-megabyte merge unless flushes fall behind the write rate
// (Stats.FlushStallNanos counts exactly that).
//
// Lock order: commitMu > installMu > mu > gc.syncMu / maint.mu > the
// listener's own locks. commitMu serializes append epochs — a commit
// group's WAL append, a freeze's WAL rotation (which first drains the sync
// stage, so no fsync is in flight across the rename), close — without
// covering fsyncs and without blocking readers, which only take mu.RLock
// and therefore never wait on storage. installMu serializes the install
// phase (manifest write + digest swap + post-install seal) across
// concurrent maintenance jobs. Maintenance jobs take mu only for the
// snapshot and install phases of a rewrite, never commitMu.
type Store struct {
	opts     Options
	fs       vfs.FS
	enclave  *sgx.Enclave
	listener EventListener

	commitMu sync.Mutex // guards walW append/sync/rotate epochs

	// installMu serializes phase 3 of maintenance jobs end to end — from
	// the listener's OnCompactionEnd (which stages the transition seal)
	// through the manifest write, OnVersionInstalled and
	// OnVersionCommitted. With parallel phase-2 workers this is what keeps
	// "one version install in flight": manifest writes never reorder, and
	// the listener's single-slot staged seal is never clobbered by a
	// concurrent job's install. Acquired BEFORE s.mu.
	installMu sync.Mutex

	mu     sync.RWMutex    // guards mem, frozen, levels, retired, bgErr
	mem    *memtable.Table // active write buffer
	frozen *memtable.Table // immutable predecessor being flushed (nil: none)
	walW   *wal.Writer
	levels [][]*run // levels[0] unused; levels[i] newest-run-first

	// flushDone (on mu) is broadcast whenever frozen clears, a background
	// job fails, or the store closes — the wake-ups a stalled writer or a
	// synchronous Flush waits for.
	flushDone *sync.Cond

	// retired holds runs removed from the version but still pinned (an
	// iterator or compaction holds a reference); findRunLocked resolves
	// them so snapshot reads keep verifying against replaced runs.
	retired map[uint64]*run

	// frozenWALs are rotated log files carrying the frozen memtable's (and,
	// after recovery, any predecessor's) records; deleted at flush install.
	frozenWALs []string
	nextWALSeq uint64

	// flushedWALSeq is the manifest's WAL watermark: every frozen log with
	// a sequence below it has been flushed into an installed run. Recovery
	// must IGNORE (and delete) such logs — a crash between the manifest
	// install and the frozen-log deletion leaves them on disk, and
	// replaying them would double-apply records the manifest already
	// accounts for.
	flushedWALSeq uint64

	// bgErr is the first background maintenance failure; the store fails
	// stop — subsequent commits and maintenance return it.
	bgErr error

	// walErr is the first WAL fsync failure and is STICKY: once one fsync
	// fails, the durability of everything past the durable frontier is
	// unknown (the kernel may have dropped dirty pages), so every later
	// commit attempt fails with ErrWALSyncFailed until the store is
	// reopened and recovery re-establishes a verified log prefix.
	walErr error

	gc    committer   // two-stage group-commit pipeline (commit.go)
	maint maintenance // flush/compaction scheduler (scheduler.go)

	// workers is the maintenance worker-token pool (possibly shared with
	// other stores — see Options.Workers).
	workers *WorkerPool

	// levelBytesGauge mirrors the per-level byte totals of s.levels,
	// updated under s.mu at every install/recovery but READ lock-free by
	// the scheduler's debt ordering (maint.mu must never wait on s.mu —
	// ensureMemtableRoom holds s.mu while taking maint.mu).
	levelBytesGauge []atomic.Int64

	// asyncSlots is the MaxAsyncCommitBacklog admission semaphore;
	// asyncInFlight mirrors its occupancy for Stats.
	asyncSlots    chan struct{}
	asyncInFlight atomic.Int64

	// snapshotsOpen gauges AcquireSnapshot handles not yet released.
	snapshotsOpen atomic.Int64

	// groupSink, when set, receives every durably committed group in
	// commit order (replication shipping, repl.go).
	groupSink atomic.Pointer[GroupSink]

	fileMu sync.RWMutex
	files  map[uint64]*openFile

	nextFileNum atomic.Uint64 // consumed lock-free by the build phase
	nextRunID   uint64        // guarded by mu
	lastTs      atomic.Uint64
	// appliedTs is the last timestamp durably applied to the memtable: the
	// pipelined committer assigns timestamps (lastTs) at append but makes
	// records visible only after their group's fsync, so reads and
	// snapshots anchor to appliedTs — every record ≤ appliedTs is visible,
	// every record > appliedTs is not yet. Stored under mu in apply order.
	appliedTs atomic.Uint64
	closed    bool

	walReplayDigest hashutil.Hash
	replayedRecords int
	walTornRecords  int

	// Event counters, updated without mu (the commit pipeline and the
	// maintenance worker run outside the engine lock) and folded into
	// Stats().
	walSyncs              atomic.Uint64
	groupCommits          atomic.Uint64
	groupedRecords        atomic.Uint64
	flushes               atomic.Uint64
	compactions           atomic.Uint64
	bytesFlushed          atomic.Uint64
	bytesCompacted        atomic.Uint64
	recordsDropped        atomic.Uint64
	manifestUpdates       atomic.Uint64
	flushStallNanos       atomic.Int64
	compactionStallNanos  atomic.Int64
	backgroundCompactions atomic.Uint64
	pinnedRuns            atomic.Int64
	fsyncEWMANanos        atomic.Int64
}

// Open creates or recovers a store.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.MmapReads && opts.Transform != nil {
		return nil, errors.New("lsm: mmap reads are incompatible with block transforms (eLSM-P1 cannot mmap, §6.3)")
	}
	s := &Store{
		opts:      opts,
		fs:        opts.FS,
		enclave:   opts.Enclave,
		listener:  opts.Listener,
		mem:       memtable.New(opts.Enclave),
		levels:    make([][]*run, opts.MaxLevels+1),
		retired:   make(map[uint64]*run),
		files:     make(map[uint64]*openFile),
		nextRunID: 1,
	}
	s.nextFileNum.Store(1)
	s.flushDone = sync.NewCond(&s.mu)
	s.nextWALSeq = 1
	s.workers = opts.Workers
	s.levelBytesGauge = make([]atomic.Int64, len(s.levels))
	if err := s.recover(); err != nil {
		return nil, err
	}
	if s.walTornRecords > 0 {
		s.opts.Obs.Event(obs.EventTornTail,
			"recovery truncated %d torn record(s) off the active WAL tail", s.walTornRecords)
	}
	s.refreshLevelBytesLocked()
	if err := s.openWAL(); err != nil {
		return nil, err
	}
	// Everything recovered is visible: the applied frontier starts at the
	// recovered timestamp high-water mark.
	s.appliedTs.Store(s.lastTs.Load())
	s.startMaintenance()
	s.startCommitter()
	return s, nil
}

// ocall runs fn in the untrusted world, charging world-switch cost.
func (s *Store) ocall(fn func()) { s.enclave.OCall(fn) }

// tableName formats an SSTable file name.
func tableName(fileNum uint64) string { return fmt.Sprintf("%06d.sst", fileNum) }

// ---------------------------------------------------------------------------
// Manifest

type manifestTable struct {
	FileNum    uint64 `json:"file"`
	Smallest   []byte `json:"smallest"`
	SmallestTs uint64 `json:"smallestTs"`
	Largest    []byte `json:"largest"`
	LargestTs  uint64 `json:"largestTs"`
	NumEntries int    `json:"entries"`
	NumBlocks  int    `json:"blocks"`
	Size       int64  `json:"size"`
}

type manifestRun struct {
	ID     uint64          `json:"id"`
	Files  []manifestTable `json:"files"`
	Emtpy  bool            `json:"-"`
	Nbytes int64           `json:"bytes"`
}

type manifestRoot struct {
	NextFileNum uint64          `json:"nextFile"`
	NextRunID   uint64          `json:"nextRun"`
	LastTs      uint64          `json:"lastTs"`
	Levels      [][]manifestRun `json:"levels"`
	// FlushedWALSeq marks frozen logs below this sequence as flushed into
	// the runs this manifest lists; recovery discards them instead of
	// replaying (crash window between manifest install and log deletion).
	FlushedWALSeq uint64 `json:"flushedWALSeq,omitempty"`
}

// refreshLevelBytesLocked recomputes the lock-free per-level byte gauges
// from the level vector. Called under s.mu after every level mutation
// (install, rollback, recovery) so the scheduler's debt ordering reads a
// value at most one install stale.
func (s *Store) refreshLevelBytesLocked() {
	for lvl := range s.levels {
		var total int64
		for _, r := range s.levels[lvl] {
			total += r.bytes
		}
		s.levelBytesGauge[lvl].Store(total)
	}
}

// persistManifestLocked writes the current version to MANIFEST atomically.
// Caller holds s.mu; install phases are serialized on installMu, so
// manifest writes never reorder.
func (s *Store) persistManifestLocked() error {
	root := manifestRoot{
		NextFileNum:   s.nextFileNum.Load(),
		NextRunID:     s.nextRunID,
		LastTs:        s.lastTs.Load(),
		Levels:        make([][]manifestRun, len(s.levels)),
		FlushedWALSeq: s.flushedWALSeq,
	}
	for i, runs := range s.levels {
		for _, r := range runs {
			mr := manifestRun{ID: r.id, Nbytes: r.bytes}
			for _, th := range r.tables {
				mr.Files = append(mr.Files, manifestTable{
					FileNum:    th.meta.FileNum,
					Smallest:   th.meta.Smallest,
					SmallestTs: th.meta.SmallestTs,
					Largest:    th.meta.Largest,
					LargestTs:  th.meta.LargestTs,
					NumEntries: th.meta.NumEntries,
					NumBlocks:  th.meta.NumBlocks,
					Size:       th.meta.Size,
				})
			}
			root.Levels[i] = append(root.Levels[i], mr)
		}
	}
	data, err := json.Marshal(root)
	if err != nil {
		return fmt.Errorf("lsm: manifest marshal: %w", err)
	}
	var werr error
	s.ocall(func() {
		var f vfs.File
		f, werr = s.fs.Create(manifestTmp)
		if werr != nil {
			return
		}
		if _, werr = f.Append(data); werr != nil {
			return
		}
		if werr = f.Sync(); werr != nil {
			return
		}
		if werr = f.Close(); werr != nil {
			return
		}
		werr = s.fs.Rename(manifestTmp, manifestName)
	})
	if werr != nil {
		return fmt.Errorf("lsm: manifest write: %w", werr)
	}
	s.manifestUpdates.Add(1)
	return nil
}

// liveWALFiles returns the frozen logs (sequence order) followed by the
// active log name, skipping files that do not exist.
func (s *Store) liveWALFiles() []string {
	names := append([]string(nil), s.frozenWALs...)
	if s.fs.Exists(walName) {
		names = append(names, walName)
	}
	return names
}

// recover loads the manifest (if any) and replays the WAL files (if any).
func (s *Store) recover() error {
	if s.fs.Exists(manifestName) {
		if err := s.recoverManifest(); err != nil {
			return err
		}
	}
	// Discover frozen logs left by a crash mid-flush: their flush never
	// installed, so their records (like the active log's) belong in the
	// memtable. They stay on disk until the next successful flush install
	// deletes them.
	frozenNames, err := s.fs.List(frozenWALPrefix)
	if err != nil {
		return fmt.Errorf("lsm: wal list: %w", err)
	}
	type seqName struct {
		seq  uint64
		name string
	}
	var ordered []seqName
	for _, name := range frozenNames {
		if seq, ok := frozenWALSeq(name); ok {
			if seq >= s.nextWALSeq {
				s.nextWALSeq = seq + 1
			}
			if seq < s.flushedWALSeq {
				// Flushed into a run the manifest already lists: a crash
				// hit between the manifest install and this log's
				// deletion. Replaying it would double-apply its records;
				// finish the interrupted deletion instead.
				s.ocall(func() { _ = s.fs.Remove(name) })
				continue
			}
			ordered = append(ordered, seqName{seq, name})
		}
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].seq < ordered[j].seq })
	for _, sn := range ordered {
		s.frozenWALs = append(s.frozenWALs, sn.name)
	}

	// Replay every live log in order into the memtable, chaining the digest
	// across files. Only complete commit groups are replayed; a torn tail is
	// legal only on the final (active) log — the crash signature — and is
	// truncated away so appends resume cleanly. A tear anywhere else is
	// tampering.
	files := s.liveWALFiles()
	dig := hashutil.Zero
	for i, name := range files {
		var f vfs.File
		var oerr error
		s.ocall(func() { f, oerr = s.fs.Open(name) })
		if oerr != nil {
			return fmt.Errorf("lsm: wal open %s: %w", name, oerr)
		}
		info, err := wal.ReplayFrom(f, dig, func(rec record.Record) error {
			s.mem.Put(rec)
			if rec.Ts > s.lastTs.Load() {
				s.lastTs.Store(rec.Ts)
			}
			s.replayedRecords++
			return nil
		})
		if err != nil {
			f.Close()
			return fmt.Errorf("lsm: wal replay %s: %w", name, err)
		}
		if info.CommittedSize < f.Size() {
			if i != len(files)-1 || name != walName {
				f.Close()
				return fmt.Errorf("lsm: frozen wal %s torn (%d records) — not a crash artifact", name, info.TornRecords)
			}
			s.walTornRecords = info.TornRecords
			var terr error
			s.ocall(func() {
				if terr = f.Truncate(info.CommittedSize); terr == nil {
					terr = f.Sync()
				}
			})
			if terr != nil {
				f.Close()
				return fmt.Errorf("lsm: wal tail truncate: %w", terr)
			}
		}
		dig = info.Digest
		f.Close()
	}
	s.walReplayDigest = dig
	return nil
}

// recoverManifest rebuilds the level structure from the MANIFEST file.
func (s *Store) recoverManifest() error {
	var data []byte
	var rerr error
	s.ocall(func() {
		f, err := s.fs.Open(manifestName)
		if err != nil {
			rerr = err
			return
		}
		defer f.Close()
		data = make([]byte, f.Size())
		if _, err := f.ReadAt(data, 0); err != nil && len(data) > 0 {
			rerr = err
		}
	})
	if rerr != nil {
		return fmt.Errorf("lsm: manifest read: %w", rerr)
	}
	var root manifestRoot
	if err := json.Unmarshal(data, &root); err != nil {
		return fmt.Errorf("%w: %v", ErrManifestParse, err)
	}
	s.nextFileNum.Store(root.NextFileNum)
	s.nextRunID = root.NextRunID
	s.lastTs.Store(root.LastTs)
	s.flushedWALSeq = root.FlushedWALSeq
	if len(root.Levels) > len(s.levels) {
		s.levels = make([][]*run, len(root.Levels))
		s.levelBytesGauge = make([]atomic.Int64, len(root.Levels))
	}
	for lvl, runs := range root.Levels {
		for _, mr := range runs {
			r := &run{id: mr.ID}
			r.refs.Store(1) // the version reference
			for _, mt := range mr.Files {
				th, err := s.openTable(mt.FileNum)
				if err != nil {
					return err
				}
				th.meta.Smallest = mt.Smallest
				th.meta.SmallestTs = mt.SmallestTs
				th.meta.Largest = mt.Largest
				th.meta.LargestTs = mt.LargestTs
				th.meta.NumEntries = mt.NumEntries
				th.meta.NumBlocks = mt.NumBlocks
				th.meta.Size = mt.Size
				r.tables = append(r.tables, th)
				r.bytes += mt.Size
				r.entries += mt.NumEntries
			}
			s.levels[lvl] = append(s.levels[lvl], r)
		}
	}
	return nil
}

// openWAL creates/continues the active WAL writer.
func (s *Store) openWAL() error {
	if s.opts.DisableWAL {
		return nil
	}
	var f vfs.File
	var err error
	s.ocall(func() {
		if s.fs.Exists(walName) {
			f, err = s.fs.Open(walName)
		} else {
			f, err = s.fs.Create(walName)
		}
	})
	if err != nil {
		return fmt.Errorf("lsm: wal create: %w", err)
	}
	s.walW = wal.NewWriter(f)
	if s.replayedRecords > 0 {
		s.walW = wal.ResumeWriter(f, s.walReplayDigest)
	}
	return nil
}

// freezeLocked hands the full active memtable to the maintenance worker:
// the active WAL is rotated to a frozen-numbered file (so the frozen
// table's durability is pinned to a closed log that survives until the
// flush installs), the memtable pointer is swapped, and writes continue
// into a fresh table immediately. O(1) plus one rename+create — no level
// rewrite happens here. Caller holds commitMu and s.mu; s.frozen is nil.
func (s *Store) freezeLocked() error {
	if s.mem.Count() == 0 {
		return nil
	}
	if s.frozen != nil {
		panic("lsm: freeze with a frozen memtable outstanding")
	}
	if !s.opts.DisableWAL {
		name := frozenWALName(s.nextWALSeq)
		var err error
		s.ocall(func() {
			if s.walW != nil {
				s.walW.Close()
				s.walW = nil
			}
			if err = s.fs.Rename(walName, name); err != nil {
				return
			}
			var f vfs.File
			if f, err = s.fs.Create(walName); err != nil {
				return
			}
			s.walW = wal.NewWriter(f)
		})
		if err != nil {
			// The writer may be gone: fail stop, commits surface bgErr.
			err = fmt.Errorf("lsm: wal rotate: %w", err)
			s.setBgErrLocked(err)
			return err
		}
		s.nextWALSeq++
		s.frozenWALs = append(s.frozenWALs, name)
	}
	s.frozen = s.mem
	s.frozen.Freeze()
	s.mem = memtable.New(s.enclave)
	s.listener.OnMemtableFrozen()
	return nil
}

// setBgErrLocked records the first background failure and wakes stalled
// writers so they observe it. Caller holds s.mu.
func (s *Store) setBgErrLocked(err error) {
	if s.bgErr == nil && err != nil {
		s.bgErr = err
		s.opts.Obs.Event(obs.EventFailStop, "background failure (fail-stop): %v", err)
	}
	s.flushDone.Broadcast()
}

// setWALErr records the first WAL fsync failure (sticky fail-stop; see
// walErr). Safe from the sync worker and inline commit paths.
func (s *Store) setWALErr(err error) {
	s.mu.Lock()
	if s.walErr == nil && err != nil {
		s.walErr = err
		s.opts.Obs.Event(obs.EventWALError, "wal fsync failed (sticky fail-stop): %v", err)
	}
	s.flushDone.Broadcast()
	s.mu.Unlock()
}

// walErrLocked composes the sticky typed failure for a new commit attempt.
// Caller holds s.mu (read or write).
func (s *Store) walErrLocked() error {
	if s.walErr == nil {
		return nil
	}
	return fmt.Errorf("%w (reopen to recover): %w", ErrWALSyncFailed, s.walErr)
}

// WALErr reports the sticky WAL fsync failure, if any.
func (s *Store) WALErr() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.walErrLocked()
}

// WALReplayDigest returns the digest chain recomputed during recovery and
// the number of replayed records; the authentication layer compares it with
// its sealed trusted digest.
func (s *Store) WALReplayDigest() (hashutil.Hash, int) {
	return s.walReplayDigest, s.replayedRecords
}

// WALTornRecords reports how many records recovery dropped because their
// commit group never completed (a crash — or a truncating host — cut the
// log inside the group). The records were never acknowledged durable as a
// group, so dropping them is the correct crash semantics; a caller that
// demands clean recovery treats any torn tail as suspect.
func (s *Store) WALTornRecords() int {
	return s.walTornRecords
}

// VerifyWALPrefix re-reads the live WAL files (frozen logs in order, then
// the active log) and checks that trusted is a prefix of the concatenated
// digest chain, returning how many records follow that prefix. An error
// means the log was tampered with (the trusted digest never occurs on the
// chain). A zero trusted digest matches the empty prefix.
func (s *Store) VerifyWALPrefix(trusted hashutil.Hash) (int, error) {
	s.mu.RLock()
	files := s.liveWALFiles()
	s.mu.RUnlock()
	if s.opts.DisableWAL || len(files) == 0 {
		if trusted.IsZero() {
			return 0, nil
		}
		return 0, fmt.Errorf("lsm: WAL missing but trusted digest is non-zero")
	}
	found := trusted.IsZero()
	extra := 0
	dig := hashutil.Zero
	for _, name := range files {
		var f vfs.File
		var oerr error
		s.ocall(func() { f, oerr = s.fs.Open(name) })
		if oerr != nil {
			return 0, fmt.Errorf("lsm: wal open %s: %w", name, oerr)
		}
		_, err := wal.Replay(f, func(rec record.Record) error {
			dig = hashutil.WALLink(dig, byte(rec.Kind), rec.Key, rec.Ts, rec.Value)
			if found {
				extra++
			} else if dig == trusted {
				found = true
			}
			return nil
		})
		f.Close()
		if err != nil {
			return 0, err
		}
	}
	if !found {
		return 0, fmt.Errorf("lsm: trusted WAL digest not found on chain (log tampered)")
	}
	return extra, nil
}

// EnsureTs raises the timestamp counter to at least minTs (recovery: the
// sealed trusted state may record a later timestamp than the untrusted
// manifest).
func (s *Store) EnsureTs(minTs uint64) {
	for {
		cur := s.lastTs.Load()
		if cur >= minTs {
			break
		}
		if s.lastTs.CompareAndSwap(cur, minTs) {
			break
		}
	}
	for {
		cur := s.appliedTs.Load()
		if cur >= minTs {
			return
		}
		if s.appliedTs.CompareAndSwap(cur, minTs) {
			return
		}
	}
}

// openTable opens a table file and parses its metadata.
func (s *Store) openTable(fileNum uint64) (*tableHandle, error) {
	name := tableName(fileNum)
	var f vfs.File
	var err error
	s.ocall(func() { f, err = s.fs.Open(name) })
	if err != nil {
		return nil, fmt.Errorf("lsm: open table %s: %w", name, err)
	}
	of := &openFile{file: f}
	if s.opts.MmapReads {
		// One OCall to establish the mapping; reads are then direct.
		s.ocall(func() { of.view = f.Bytes() })
	}
	s.fileMu.Lock()
	s.files[fileNum] = of
	s.fileMu.Unlock()

	t, err := sstable.Open(f, fileNum, &storeSource{s: s})
	if err != nil {
		return nil, err
	}
	// Index + filters live inside the enclave: account their footprint.
	of.metaRegion = s.enclave.Alloc(t.MetadataBytes())
	return &tableHandle{meta: sstable.Meta{FileNum: fileNum}, table: t, name: name}, nil
}

// ---------------------------------------------------------------------------
// Run reference counting

// retainRunLocked takes an extra reference on r (caller holds s.mu, read or
// write: the run is reachable, so its version reference keeps refs ≥ 1 and
// the increment cannot resurrect a dying run).
func (s *Store) retainRunLocked(r *run) {
	r.refs.Add(1)
	s.pinnedRuns.Add(1)
}

// releaseRun drops one reference; at zero the run's files are deleted. The
// zero re-check under the write lock closes the resurrection race: a reader
// that re-pins a retired run under mu.RLock either increments before the
// releaser's check (which then sees refs > 0 and leaves the run alone) or
// cannot find the run at all because it was already unlinked.
func (s *Store) releaseRun(r *run) {
	s.pinnedRuns.Add(-1)
	if r.refs.Add(-1) > 0 {
		return
	}
	s.mu.Lock()
	if r.refs.Load() > 0 {
		s.mu.Unlock()
		return
	}
	delete(s.retired, r.id)
	s.mu.Unlock()
	s.removeFiles(r.fileNums())
}

// retireRunsLocked removes runs from the version: they move to the retired
// registry (still resolvable by pinned readers) and lose their version
// reference outside the lock. Caller holds s.mu and must drop the version
// reference — releaseRunRefs — after releasing it.
func (s *Store) retireRunsLocked(runs []*run) {
	for _, r := range runs {
		s.retired[r.id] = r
		// The version reference is accounted in pinnedRuns from here until
		// it is dropped, keeping the gauge's invariant (refs beyond live
		// version membership) intact.
		s.pinnedRuns.Add(1)
	}
}

// releaseRunRefs drops n references from each run (deleting files at
// zero). A successful install drops TWO per input run — the retired
// version reference plus the job's merge pin — in one explicit call;
// abort paths drop only the job pin. Must be called without s.mu.
func (s *Store) releaseRunRefs(runs []*run, n int) {
	for i := 0; i < n; i++ {
		for _, r := range runs {
			s.releaseRun(r)
		}
	}
}

// SnapshotRuns returns the current version's runs in read order (newest
// data first), pinned, with a release function — one lock acquisition for
// both the enumeration and the pins, so the snapshot can never race an
// install in between. Verified readers walk this snapshot: a compaction
// installing mid-read retires the runs but cannot delete their files or
// their lookup addressability until the release. The release function must
// be called exactly once (calling it again is a no-op).
func (s *Store) SnapshotRuns() ([]RunRef, func()) {
	s.mu.RLock()
	var refs []RunRef
	var pinned []*run
	for lvl := 1; lvl < len(s.levels); lvl++ {
		for idx, r := range s.levels[lvl] {
			refs = append(refs, RunRef{ID: r.id, Level: lvl, Index: idx})
			s.retainRunLocked(r)
			pinned = append(pinned, r)
		}
	}
	s.mu.RUnlock()
	return refs, s.releaseOnce(pinned)
}

// PinRuns takes references on the listed runs so their files survive
// concurrent compactions; runs already fully deleted are skipped (the
// caller's subsequent lookup fails and retries against a fresh snapshot).
// The returned release function must be called exactly once.
func (s *Store) PinRuns(ids []uint64) (release func()) {
	s.mu.RLock()
	pinned := make([]*run, 0, len(ids))
	for _, id := range ids {
		if r := s.lookupRunByIDLocked(id); r != nil {
			s.retainRunLocked(r)
			pinned = append(pinned, r)
		}
	}
	s.mu.RUnlock()
	return s.releaseOnce(pinned)
}

// releaseOnce wraps dropping a pin set in an idempotent closure.
func (s *Store) releaseOnce(pinned []*run) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			for _, r := range pinned {
				s.releaseRun(r)
			}
		})
	}
}

// lookupRunByIDLocked resolves a run by ID in the live version or the
// retired-but-pinned registry. Caller holds s.mu.
func (s *Store) lookupRunByIDLocked(id uint64) *run {
	for lvl := 1; lvl < len(s.levels); lvl++ {
		for _, r := range s.levels[lvl] {
			if r.id == id {
				return r
			}
		}
	}
	return s.retired[id]
}

// ---------------------------------------------------------------------------
// Writes (all routed through the group-commit pipeline in commit.go)

// Put inserts a key-value record, returning the assigned trusted timestamp.
func (s *Store) Put(key, value []byte) (uint64, error) {
	return s.commit(nil, []BatchOp{{Key: key, Value: value}})
}

// PutCtx is Put with queue-wait cancellation (see ApplyBatchCtx).
func (s *Store) PutCtx(ctx context.Context, key, value []byte) (uint64, error) {
	return s.commit(ctx, []BatchOp{{Key: key, Value: value}})
}

// Delete writes a tombstone for key.
func (s *Store) Delete(key []byte) (uint64, error) {
	return s.commit(nil, []BatchOp{{Key: key, Delete: true}})
}

// DeleteCtx is Delete with queue-wait cancellation (see ApplyBatchCtx).
func (s *Store) DeleteCtx(ctx context.Context, key []byte) (uint64, error) {
	return s.commit(ctx, []BatchOp{{Key: key, Delete: true}})
}

// Flush forces all buffered writes to disk and waits for the resulting
// level maintenance to settle: any outstanding frozen memtable is flushed
// first (including one left behind by a failed earlier attempt — Flush is
// the retry point), then the active memtable is frozen and flushed, and
// overflowing levels are compacted. Synchronous — when Flush returns, the
// memtable is empty and on disk.
func (s *Store) Flush() error {
	for {
		s.commitMu.Lock()
		// Quiesce the commit pipeline: appended-but-unapplied groups must
		// land in the memtable before it is frozen (the rotated log and the
		// frozen table must carry the same records), and the WAL file must
		// have no fsync in flight across the rotation. Holding commitMu
		// keeps new groups out until the freeze is done.
		s.drainSync()
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			s.commitMu.Unlock()
			return ErrClosed
		}
		if err := s.bgErr; err != nil {
			s.mu.Unlock()
			s.commitMu.Unlock()
			return err
		}
		if s.frozen != nil {
			// A frozen table is outstanding (mid-flush, or stranded by a
			// failed inline attempt): flush it now, then re-evaluate. A
			// background flush job racing this one is harmless — whoever
			// runs second finds frozen == nil and no-ops.
			s.mu.Unlock()
			if s.opts.InlineCompaction {
				err := s.flushFrozen()
				s.commitMu.Unlock()
				if err != nil {
					return err
				}
			} else {
				s.commitMu.Unlock()
				if err := s.runSync(jobFlush, 0, nil); err != nil {
					return err
				}
			}
			continue
		}
		if s.mem.Count() == 0 {
			s.mu.Unlock()
			s.commitMu.Unlock()
			return nil
		}
		err := s.freezeLocked()
		s.mu.Unlock()
		if s.opts.InlineCompaction {
			// Inline mode: the whole rewrite runs here, on the caller,
			// serialized by commitMu like every other inline rewrite.
			if err == nil {
				err = s.flushFrozen()
			}
			if err == nil {
				err = s.compactOverflowing()
			}
			s.commitMu.Unlock()
			return err
		}
		s.commitMu.Unlock()
		if err != nil {
			return err
		}
		if err := s.runSync(jobFlush, 0, nil); err != nil {
			return err
		}
		return s.settleCompactions()
	}
}

// settleCompactions synchronously compacts every level that exceeds its
// size target until none does (the deterministic "flush and settle"
// semantics tests and admin callers rely on).
func (s *Store) settleCompactions() error {
	return s.cascadeOverflow(func(lvl int) error {
		return s.runSync(jobCompact, lvl, nil)
	})
}

// cascadeOverflow repeatedly applies compact to the shallowest level over
// its size target until no level is — the single definition of the
// overflow cascade, shared by the synchronous (Flush/settle) and inline
// paths.
func (s *Store) cascadeOverflow(compact func(lvl int) error) error {
	for {
		lvl := s.overflowingLevel()
		if lvl == 0 {
			return nil
		}
		if err := compact(lvl); err != nil {
			return err
		}
	}
}

// overflowingLevel returns the shallowest level over its size target, or 0.
func (s *Store) overflowingLevel() int {
	if s.opts.DisableCompaction {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for lvl := 1; lvl < s.opts.MaxLevels; lvl++ {
		if s.levelBytesLocked(lvl) > s.opts.levelTarget(lvl) {
			return lvl
		}
	}
	return 0
}

// overflowingLevels returns every level over its size target, shallowest
// first — the background scheduler queues all of them at once so disjoint
// overflow rewrites can proceed in parallel.
func (s *Store) overflowingLevels() []int {
	if s.opts.DisableCompaction {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []int
	for lvl := 1; lvl < s.opts.MaxLevels; lvl++ {
		if s.levelBytesLocked(lvl) > s.opts.levelTarget(lvl) {
			out = append(out, lvl)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Reads (raw, unverified — the unsecured baseline path; the eLSM layer
// drives the per-run lookup API in lookup.go instead)

// Get returns the newest record of key with Ts ≤ tsq. Tombstones are
// returned as-is (callers interpret Kind). The boolean reports whether any
// version was found.
func (s *Store) Get(key []byte, tsq uint64) (record.Record, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return record.Record{}, false, ErrClosed
	}
	if rec, ok := s.mem.Get(key, tsq); ok {
		return rec, true, nil
	}
	if s.frozen != nil {
		if rec, ok := s.frozen.Get(key, tsq); ok {
			return rec, true, nil
		}
	}
	for lvl := 1; lvl < len(s.levels); lvl++ {
		for _, r := range s.levels[lvl] {
			rec, ok, err := runGet(r, key, tsq)
			if err != nil {
				return record.Record{}, false, err
			}
			if ok {
				return rec, true, nil
			}
		}
	}
	return record.Record{}, false, nil
}

// runGet searches one immutable run (lock-free for reachable runs).
func runGet(r *run, key []byte, tsq uint64) (record.Record, bool, error) {
	ti := seekTable(r.tables, key, tsq)
	if ti >= len(r.tables) {
		return record.Record{}, false, nil
	}
	return r.tables[ti].table.Get(key, tsq)
}

// seekTable returns the index of the first table whose largest entry is
// ≥ (key, ts).
func seekTable(tables []*tableHandle, key []byte, ts uint64) int {
	lo, hi := 0, len(tables)
	for lo < hi {
		mid := (lo + hi) / 2
		m := tables[mid].meta
		if record.Compare(m.Largest, m.LargestTs, key, ts) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ---------------------------------------------------------------------------
// Introspection

// Runs returns references to all on-disk runs in read order (newest data
// first): level 1 runs newest-first, then level 2, and so on.
func (s *Store) Runs() []RunRef {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.runsLocked()
}

func (s *Store) runsLocked() []RunRef {
	var out []RunRef
	for lvl := 1; lvl < len(s.levels); lvl++ {
		for idx, r := range s.levels[lvl] {
			out = append(out, RunRef{ID: r.id, Level: lvl, Index: idx})
		}
	}
	return out
}

// findRun locates a run by ID — in the live version or, for pinned
// snapshot readers, among retired runs awaiting deletion. Caller holds
// s.mu.
func (s *Store) findRunLocked(id uint64) (*run, error) {
	if r := s.lookupRunByIDLocked(id); r != nil {
		return r, nil
	}
	return nil, fmt.Errorf("%w: %d", ErrUnknownRun, id)
}

// MemGet reads the (trusted, in-enclave) memtables: the active table first,
// then the frozen one (its records are strictly older).
func (s *Store) MemGet(key []byte, tsq uint64) (record.Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if rec, ok := s.mem.Get(key, tsq); ok {
		return rec, true
	}
	if s.frozen != nil {
		return s.frozen.Get(key, tsq)
	}
	return record.Record{}, false
}

// MemCount returns the number of buffered entries (active + frozen).
func (s *Store) MemCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.mem.Count()
	if s.frozen != nil {
		n += s.frozen.Count()
	}
	return n
}

// LastTs returns the most recently assigned timestamp. With the pipelined
// committer this can run ahead of durable, visible state — see AppliedTs.
func (s *Store) LastTs() uint64 { return s.lastTs.Load() }

// AppliedTs returns the last timestamp durably applied to the memtable:
// every record at or below it is fsynced and readable, every record above
// it is still in the commit pipeline.
func (s *Store) AppliedTs() uint64 { return s.appliedTs.Load() }

// Stats returns engine event counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	torn := s.walTornRecords
	s.mu.RUnlock()
	pinned := s.pinnedRuns.Load()
	if pinned < 0 {
		pinned = 0
	}
	snaps := s.snapshotsOpen.Load()
	if snaps < 0 {
		snaps = 0
	}
	async := s.asyncInFlight.Load()
	if async < 0 {
		async = 0
	}
	debtByLevel := make([]uint64, len(s.levelBytesGauge))
	var debtTotal uint64
	for lvl := 1; lvl < len(debtByLevel); lvl++ {
		d := s.compactionDebt(lvl)
		debtByLevel[lvl] = uint64(d)
		debtTotal += uint64(d)
	}
	running := s.maint.running.Load()
	if running < 0 {
		running = 0
	}
	return Stats{
		Flushes:                s.flushes.Load(),
		Compactions:            s.compactions.Load(),
		BytesFlushed:           s.bytesFlushed.Load(),
		BytesCompacted:         s.bytesCompacted.Load(),
		RecordsDropped:         s.recordsDropped.Load(),
		ManifestUpdates:        s.manifestUpdates.Load(),
		WALSyncs:               s.walSyncs.Load(),
		GroupCommits:           s.groupCommits.Load(),
		GroupedRecords:         s.groupedRecords.Load(),
		WALTornRecords:         uint64(torn),
		FlushStallNanos:        uint64(s.flushStallNanos.Load()),
		CompactionStallNanos:   uint64(s.compactionStallNanos.Load()),
		BackgroundCompactions:  s.backgroundCompactions.Load(),
		CompactionDebtBytes:    debtTotal,
		CompactionDebtByLevel:  debtByLevel,
		ParallelCompactions:    uint64(running),
		CompactionWorkersBusy:  uint64(s.workers.Busy()),
		PinnedRuns:             uint64(pinned),
		SnapshotsOpen:          uint64(snaps),
		AsyncCommitsInFlight:   uint64(async),
		GroupCommitWindowNanos: uint64(s.resolveCommitWindow().Nanoseconds()),
		FsyncEWMANanos:         uint64(s.fsyncEWMANanos.Load()),
	}
}

// Enclave exposes the simulated enclave (for the authentication layer).
func (s *Store) Enclave() *sgx.Enclave { return s.enclave }

// NumLevels returns the configured maximum level count.
func (s *Store) NumLevels() int { return s.opts.MaxLevels }

// DiskBytes returns the total bytes across all on-disk runs.
func (s *Store) DiskBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for lvl := 1; lvl < len(s.levels); lvl++ {
		for _, r := range s.levels[lvl] {
			total += r.bytes
		}
	}
	return total
}

// WaitMaintenance blocks until every maintenance job enqueued before the
// call (background flushes, compactions) has finished — a barrier for tests
// and tooling that assert on post-flush state.
//
// A commit that fills the memtable acknowledges its caller before the
// append worker has consumed the wantFreeze nudge and queued the flush, so
// a bare barrier could fence an empty queue and miss work the store has
// already committed to. Consume that pending decision here first:
// ensureMemtableRoom is exactly the worker's freeze step and a no-op when
// the memtable isn't full.
func (s *Store) WaitMaintenance() error {
	s.commitMu.Lock()
	err := s.ensureMemtableRoom()
	s.commitMu.Unlock()
	if err != nil && !errors.Is(err, ErrClosed) {
		return err
	}
	// One barrier fences the work queued before the call, but finishing
	// jobs queue MORE work (a flush schedules overflow compactions, which
	// cascade): loop until a barrier passes with nothing queued or running
	// behind it — the quiescent state callers assert on. Terminates absent
	// concurrent writers because every pass retires debt.
	for {
		if err := s.runSync(jobBarrier, 0, nil); err != nil {
			return err
		}
		m := &s.maint
		m.mu.Lock()
		idle := len(m.queue) == 0 && m.inflight == 0
		m.mu.Unlock()
		if idle {
			return nil
		}
	}
}

// BackgroundErr reports the sticky background maintenance failure, if any.
func (s *Store) BackgroundErr() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bgErr
}

// Close drains in-flight maintenance (a background flush or compaction
// runs to completion so the manifest, run files and trusted digests stay
// consistent) and the commit pipeline (appended groups are fsynced, applied
// and acknowledged; commits still queued fail with ErrClosed), then
// releases resources. Buffered writes are NOT flushed — callers flush
// explicitly if desired; the WAL preserves them for recovery.
func (s *Store) Close() error {
	s.stopMaintenance()
	s.stopCommitter()
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.flushDone.Broadcast()
	if s.walW != nil {
		s.walW.Close()
	}
	if s.frozen != nil {
		s.frozen.Release()
		s.frozen = nil
	}
	s.mem.Release()
	return nil
}
