package lsm

import (
	"fmt"

	"elsm/internal/blockcache"
	"elsm/internal/costmodel"
	"elsm/internal/sstable"
)

// storeSource is the engine's BlockSource. It routes data-block reads along
// one of the three read paths the paper evaluates:
//
//   - mmap (eLSM-P2-mmap, §5.5.1): data is read directly from the untrusted
//     file view — no OCall, no buffering, no copy charge;
//   - buffered (eLSM-P2-buffer / eLSM-P1): hits come from the block cache
//     (inside or outside the enclave — the cache itself charges in-enclave
//     costs when placed inside); misses pay an OCall plus the
//     boundary copy, and for P1 the block decrypt (real AES work);
//   - direct (no cache configured): every read pays the miss path.
//
// Compaction pins whole-file views (step m1: "load all input files to
// untrusted memory"), after which streaming reads are direct slices.
type storeSource struct {
	s *Store
}

var _ sstable.BlockSource = (*storeSource)(nil)

// ReadBlock implements sstable.BlockSource.
func (src *storeSource) ReadBlock(fileNum uint64, blockIdx int, off, length int64) ([]byte, error) {
	s := src.s
	// Snapshot the view pointers under fileMu: compaction pins/unpins run
	// concurrently with readers now that the merge phase is lock-free.
	s.fileMu.RLock()
	of, ok := s.files[fileNum]
	var pinnedView, mmapView []byte
	if ok {
		pinnedView, mmapView = of.pinned, of.view
	}
	s.fileMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("lsm: read block of unknown file %d", fileNum)
	}

	// Compaction-pinned view: direct streaming from untrusted memory.
	if pinnedView != nil {
		return src.openBlock(fileNum, blockIdx, slice(pinnedView, off, length))
	}
	// mmap read path.
	if mmapView != nil {
		return src.openBlock(fileNum, blockIdx, slice(mmapView, off, length))
	}

	cache := s.opts.Cache
	key := blockcache.Key{FileNum: fileNum, BlockIdx: blockIdx}
	if cache != nil {
		if data, ok := cache.Get(key); ok {
			if !cache.Inside() {
				// P2 buffered hit: the enclave reads the block from
				// untrusted memory, copying the touched bytes in.
				costmodel.ChargeBytes(s.enclave.Params().Cost.EnclaveCopyPerKB, int(length))
			}
			return data, nil
		}
	}
	// Miss: exit the enclave to read the block from the file system.
	raw := make([]byte, length)
	var rerr error
	s.ocall(func() {
		_, rerr = of.file.ReadAt(raw, off)
	})
	if rerr != nil {
		return nil, fmt.Errorf("lsm: read block %d of file %d: %w", blockIdx, fileNum, rerr)
	}
	data, err := src.openBlock(fileNum, blockIdx, raw)
	if err != nil {
		return nil, err
	}
	if cache != nil {
		cache.Put(key, data)
	} else {
		// No buffer at all: the block still crosses into the enclave.
		costmodel.ChargeBytes(s.enclave.Params().Cost.EnclaveCopyPerKB, len(data))
	}
	return data, nil
}

// openBlock applies the block transform (P1 decrypt+verify — real crypto
// work performed inside the enclave).
func (src *storeSource) openBlock(fileNum uint64, blockIdx int, data []byte) ([]byte, error) {
	tr := src.s.opts.Transform
	if tr == nil {
		return data, nil
	}
	out, err := tr.Open(sstable.BlockID(fileNum, blockIdx), data)
	if err != nil {
		return nil, fmt.Errorf("lsm: block %d/%d: %w", fileNum, blockIdx, err)
	}
	return out, nil
}

func slice(view []byte, off, length int64) []byte {
	if off+length > int64(len(view)) {
		return view[off:]
	}
	return view[off : off+length]
}

// pinViews bulk-loads the given files into untrusted memory for compaction
// streaming (one OCall per file, §5.3 step m1).
func (s *Store) pinViews(fileNums []uint64) {
	for _, fn := range fileNums {
		s.fileMu.RLock()
		of, ok := s.files[fn]
		s.fileMu.RUnlock()
		if !ok {
			continue
		}
		var view []byte
		s.ocall(func() { view = of.file.Bytes() })
		s.fileMu.Lock()
		of.pinned = view
		s.fileMu.Unlock()
	}
}

// unpinViews drops compaction views.
func (s *Store) unpinViews(fileNums []uint64) {
	s.fileMu.Lock()
	defer s.fileMu.Unlock()
	for _, fn := range fileNums {
		if of, ok := s.files[fn]; ok {
			of.pinned = nil
		}
	}
}
