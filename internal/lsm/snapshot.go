package lsm

import (
	"bytes"
	"sync"

	"elsm/internal/memtable"
	"elsm/internal/record"
)

// Snapshot is a pinned, immutable view of the store at one applied
// timestamp: the run set of the version current at acquisition (each run
// reference-counted so a concurrent compaction cannot delete its files),
// plus the memtable pair (active and frozen) live at that moment. Reads
// through the snapshot are clamped to its timestamp, so records committed
// later — which can only carry higher timestamps — never surface, records
// flushed later remain readable from the captured memtables, and the view
// is repeatable bit for bit no matter how much flushing, compaction or WAL
// rotation happens underneath.
//
// A Snapshot pins disk space (replaced runs survive until release) and must
// be Released exactly once; Release is idempotent. Runs are addressed by
// INDEX into Runs() — the snapshot's read order — not by run ID, keeping
// the hot acquisition path (one per verified point read) map-free.
type Snapshot struct {
	s      *Store
	ts     uint64
	mem    *memtable.Table
	frozen *memtable.Table // nil if no flush was in flight at acquisition
	refs   []RunRef
	runs   []*run // aligned with refs
	gauged bool   // counted in Stats.SnapshotsOpen (sessions, not point reads)
	once   sync.Once
}

// AcquireSnapshot pins the current applied state as a read SESSION,
// counted in Stats.SnapshotsOpen. One engine-lock acquisition captures the
// timestamp frontier, the memtable pointers and the run set with their
// pins, so the snapshot can never straddle a version install.
func (s *Store) AcquireSnapshot() *Snapshot { return s.acquireSnapshot(true) }

// AcquireEphemeralSnapshot is AcquireSnapshot for a one-shot read: same
// pins and consistency, but not counted as an open session (a point GET
// should not flicker the SnapshotsOpen gauge).
func (s *Store) AcquireEphemeralSnapshot() *Snapshot { return s.acquireSnapshot(false) }

func (s *Store) acquireSnapshot(gauged bool) *Snapshot {
	snap := &Snapshot{s: s, gauged: gauged}
	s.mu.RLock()
	snap.ts = s.appliedTs.Load()
	snap.mem = s.mem
	snap.frozen = s.frozen
	for lvl := 1; lvl < len(s.levels); lvl++ {
		for idx, r := range s.levels[lvl] {
			snap.refs = append(snap.refs, RunRef{ID: r.id, Level: lvl, Index: idx})
			s.retainRunLocked(r)
			snap.runs = append(snap.runs, r)
		}
	}
	s.mu.RUnlock()
	if gauged {
		s.snapshotsOpen.Add(1)
	}
	return snap
}

// Ts returns the snapshot's timestamp: the last commit visible in it.
func (sn *Snapshot) Ts() uint64 { return sn.ts }

// Runs lists the snapshot's pinned runs in read order (newest data first).
func (sn *Snapshot) Runs() []RunRef { return sn.refs }

// Release drops the snapshot's run pins, allowing files of runs replaced
// since acquisition to be deleted. Idempotent.
func (sn *Snapshot) Release() {
	sn.once.Do(func() {
		for _, r := range sn.runs {
			sn.s.releaseRun(r)
		}
		if sn.gauged {
			sn.s.snapshotsOpen.Add(-1)
		}
	})
}

// clamp bounds a query timestamp to the snapshot's frontier.
func (sn *Snapshot) clamp(tsq uint64) uint64 {
	if tsq > sn.ts {
		return sn.ts
	}
	return tsq
}

// MemGet reads the snapshot's (trusted, in-enclave) memtables: the captured
// active table first, then the captured frozen one. Records committed after
// acquisition live in the same skiplist but carry timestamps beyond the
// clamp, so they never match.
func (sn *Snapshot) MemGet(key []byte, tsq uint64) (record.Record, bool) {
	tsq = sn.clamp(tsq)
	if rec, ok := sn.mem.Get(key, tsq); ok {
		return rec, true
	}
	if sn.frozen != nil {
		return sn.frozen.Get(key, tsq)
	}
	return record.Record{}, false
}

// MemScan returns the newest version ≤ tsq of every key in [start, end]
// from the snapshot's memtables, including tombstones.
func (sn *Snapshot) MemScan(start, end []byte, tsq uint64) []record.Record {
	return memScanTables(sn.mem, sn.frozen, start, end, sn.clamp(tsq))
}

// LookupRun performs the untrusted side of a one-level GET against the
// i-th pinned run (index into Runs()). No engine lock is needed: the run
// is immutable and its files outlive the snapshot.
func (sn *Snapshot) LookupRun(i int, key []byte, tsq uint64) (RunLookup, error) {
	if i < 0 || i >= len(sn.runs) {
		return RunLookup{}, ErrUnknownRun
	}
	return lookupRun(sn.runs[i], key, sn.clamp(tsq))
}

// ScanRunChunk performs the untrusted side of a one-level SCAN chunk
// against the i-th pinned run (see Store.ScanRunChunk).
func (sn *Snapshot) ScanRunChunk(i int, start, end []byte, maxKeys int) (RunScan, error) {
	if i < 0 || i >= len(sn.runs) {
		return RunScan{}, ErrUnknownRun
	}
	return scanRunChunk(sn.runs[i], start, end, maxKeys)
}

// Get returns the newest record of key with Ts ≤ tsq in the snapshot — the
// raw (unverified) read used by the eLSM-P1 and unsecured stores.
// Tombstones are returned as-is.
func (sn *Snapshot) Get(key []byte, tsq uint64) (record.Record, bool, error) {
	tsq = sn.clamp(tsq)
	if rec, ok := sn.MemGet(key, tsq); ok {
		return rec, true, nil
	}
	for _, r := range sn.runs {
		rec, ok, err := runGet(r, key, tsq)
		if err != nil {
			return record.Record{}, false, err
		}
		if ok {
			return rec, true, nil
		}
	}
	return record.Record{}, false, nil
}

// ScanChunk is the snapshot form of Store.ScanChunk: the raw merged range
// read over the pinned sources, bounded to maxKeys distinct keys.
func (sn *Snapshot) ScanChunk(start, end []byte, tsq uint64, maxKeys int) (out []record.Record, next []byte, done bool, err error) {
	tsq = sn.clamp(tsq)
	sources := []mergeSource{{runID: MemtableRunID, iter: sn.mem.Iter()}}
	if sn.frozen != nil {
		sources = append(sources, mergeSource{runID: MemtableRunID, iter: sn.frozen.Iter()})
	}
	for _, r := range sn.runs {
		if len(r.tables) > 0 {
			sources = append(sources, mergeSource{runID: r.id, iter: newRunIter(r)})
		}
	}
	return scanChunkSources(sources, start, end, tsq, maxKeys)
}

// memScanTables merges the given memtables (frozen may be nil) into the
// newest version ≤ tsq per key in [start, end], tombstones included.
func memScanTables(mem, frozen *memtable.Table, start, end []byte, tsq uint64) []record.Record {
	sources := []mergeSource{{runID: MemtableRunID, iter: mem.Iter()}}
	if frozen != nil {
		sources = append(sources, mergeSource{runID: MemtableRunID, iter: frozen.Iter()})
	}
	for _, src := range sources {
		src.iter.SeekGE(start, record.MaxTs)
	}
	m := newMergeIter(sources)
	defer m.Close()
	var out []record.Record
	var lastKey []byte
	emitted := false
	for m.Valid() {
		rec, _ := m.Record()
		if bytes.Compare(rec.Key, end) > 0 {
			break
		}
		if lastKey == nil || !bytes.Equal(rec.Key, lastKey) {
			lastKey = append([]byte(nil), rec.Key...)
			emitted = false
		}
		if !emitted && rec.Ts <= tsq {
			out = append(out, rec)
			emitted = true
		}
		m.Next()
	}
	return out
}

// scanChunkSources resolves the merged sources into the newest version
// ≤ tsq per key, bounded to maxKeys distinct keys (0 = unlimited) — the
// shared body of Store.ScanChunk and Snapshot.ScanChunk.
func scanChunkSources(sources []mergeSource, start, end []byte, tsq uint64, maxKeys int) (out []record.Record, next []byte, done bool, err error) {
	for _, src := range sources {
		src.iter.SeekGE(start, record.MaxTs)
	}
	m := newMergeIter(sources)
	defer m.Close()

	var lastKey []byte
	keys := 0
	resolved := false
	done = true
	for m.Valid() {
		rec, _ := m.Record()
		if bytes.Compare(rec.Key, end) > 0 {
			break
		}
		if lastKey == nil || !bytes.Equal(rec.Key, lastKey) {
			if maxKeys > 0 && keys >= maxKeys {
				next = append([]byte(nil), rec.Key...)
				done = false
				break
			}
			keys++
			lastKey = append(lastKey[:0], rec.Key...)
			resolved = false
		}
		if !resolved && rec.Ts <= tsq {
			resolved = true
			if rec.Kind == record.KindSet {
				out = append(out, rec)
			}
		}
		m.Next()
	}
	return out, next, done, nil
}
