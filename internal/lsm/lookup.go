package lsm

import (
	"bytes"

	"elsm/internal/record"
)

// RunLookup is the untrusted host's answer to a per-run point lookup
// (§5.3, algorithm QUERYGET for one level): either the newest matching
// record with Ts ≤ tsq, or the two records bracketing the queried key so
// the enclave can verify non-membership.
type RunLookup struct {
	RunID uint64
	// Found reports a matching record (Rec) with Ts ≤ tsq.
	Found bool
	Rec   record.Record
	// Pred and Succ bracket the (absent) key when Found is false. Either
	// may be nil at the run's edges. When Pred carries the queried key
	// itself, it is the oldest version newer than tsq (the historical
	// non-membership witness: no version ≤ tsq exists in this run).
	Pred *record.Record
	Succ *record.Record
	// EmptyRun marks a run with no tables at all.
	EmptyRun bool
}

// LookupRun performs the untrusted side of a one-level GET.
func (s *Store) LookupRun(runID uint64, key []byte, tsq uint64) (RunLookup, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return RunLookup{}, ErrClosed
	}
	r, err := s.findRunLocked(runID)
	if err != nil {
		return RunLookup{}, err
	}
	return lookupRun(r, key, tsq)
}

// lookupRun searches one immutable run. Safe without the engine lock as
// long as the run is reachable (version membership or a pin) — its tables
// and files never change.
func lookupRun(r *run, key []byte, tsq uint64) (RunLookup, error) {
	out := RunLookup{RunID: r.id}
	if len(r.tables) == 0 {
		out.EmptyRun = true
		return out, nil
	}
	ti := seekTable(r.tables, key, tsq)
	if ti >= len(r.tables) {
		last, err := r.tables[len(r.tables)-1].table.Last()
		if err != nil {
			return out, err
		}
		out.Pred = &last
		return out, nil
	}
	prev, cur, err := r.tables[ti].table.SeekWithPrev(key, tsq)
	if err != nil {
		return out, err
	}
	if cur != nil && bytes.Equal(cur.Key, key) {
		out.Found = true
		out.Rec = *cur
		return out, nil
	}
	out.Succ = cur
	if prev == nil && ti > 0 {
		last, err := r.tables[ti-1].table.Last()
		if err != nil {
			return out, err
		}
		prev = &last
	}
	out.Pred = prev
	return out, nil
}

// RunScan is the untrusted host's answer to a per-run range query (§5.4):
// every version of every key in [start, end], plus the bracketing records
// outside the range whose embedded proofs let the enclave verify
// completeness.
type RunScan struct {
	RunID    uint64
	Records  []record.Record
	Pred     *record.Record
	Succ     *record.Record
	EmptyRun bool
	// Truncated reports that a ScanRunChunk key limit cut the result short
	// of the range end; Succ is then the first record after the last
	// returned key (still a valid right-boundary witness for the shrunken
	// range) rather than a record beyond end.
	Truncated bool
}

// ScanRun performs the untrusted side of a one-level SCAN over user keys
// start ≤ k ≤ end.
func (s *Store) ScanRun(runID uint64, start, end []byte) (RunScan, error) {
	return s.ScanRunChunk(runID, start, end, 0)
}

// ScanRunChunk is ScanRun bounded to at most maxKeys distinct keys
// (0 = unlimited). Version chains are never split: the limit applies at key
// boundaries, so every returned key carries all its in-run versions and the
// enclave can rebuild whole Merkle leaves from the chunk.
func (s *Store) ScanRunChunk(runID uint64, start, end []byte, maxKeys int) (RunScan, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return RunScan{}, ErrClosed
	}
	r, err := s.findRunLocked(runID)
	if err != nil {
		return RunScan{}, err
	}
	return scanRunChunk(r, start, end, maxKeys)
}

// scanRunChunk is the untrusted side of a one-level SCAN over an immutable
// run, bounded to maxKeys distinct keys. Safe without the engine lock for
// reachable (pinned) runs.
func scanRunChunk(r *run, start, end []byte, maxKeys int) (RunScan, error) {
	out := RunScan{RunID: r.id}
	if len(r.tables) == 0 {
		out.EmptyRun = true
		return out, nil
	}
	// Predecessor of the range start.
	ti := seekTable(r.tables, start, record.MaxTs)
	if ti >= len(r.tables) {
		last, err := r.tables[len(r.tables)-1].table.Last()
		if err != nil {
			return out, err
		}
		out.Pred = &last
		return out, nil
	}
	prev, _, err := r.tables[ti].table.SeekWithPrev(start, record.MaxTs)
	if err != nil {
		return out, err
	}
	if prev == nil && ti > 0 {
		last, err := r.tables[ti-1].table.Last()
		if err != nil {
			return out, err
		}
		prev = &last
	}
	out.Pred = prev

	// Collect in-range records and the successor, stopping at the key
	// limit (only ever at a key boundary).
	it := newRunIter(r)
	defer it.Close()
	it.SeekGE(start, record.MaxTs)
	var (
		keys    int
		lastKey []byte
	)
	for it.Valid() {
		rec := it.Record()
		if bytes.Compare(rec.Key, end) > 0 {
			out.Succ = &rec
			break
		}
		if lastKey == nil || !bytes.Equal(rec.Key, lastKey) {
			if maxKeys > 0 && keys >= maxKeys {
				out.Succ = &rec
				out.Truncated = true
				break
			}
			keys++
			lastKey = append(lastKey[:0], rec.Key...)
		}
		out.Records = append(out.Records, rec)
		it.Next()
	}
	return out, nil
}

// MemScan returns the newest version ≤ tsq of every key in [start, end]
// from the (trusted) memtables — the active table merged with the frozen
// one mid-flush — including tombstones.
func (s *Store) MemScan(start, end []byte, tsq uint64) []record.Record {
	s.mu.RLock()
	mem, frozen := s.mem, s.frozen
	s.mu.RUnlock()
	return memScanTables(mem, frozen, start, end, tsq)
}

// WarmCache streams every data block of every run through the block source
// once, populating the read buffer to steady state. The paper's experiments
// scan the loaded dataset before measuring "so that it is loaded in the
// untrusted memory" (§6.1); this is the equivalent for the block cache.
func (s *Store) WarmCache() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for lvl := 1; lvl < len(s.levels); lvl++ {
		for _, r := range s.levels[lvl] {
			for _, th := range r.tables {
				it := th.table.Iter()
				it.SeekGE(nil, record.MaxTs)
				for it.Valid() {
					it.Next()
				}
				if err := it.Close(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Scan is the raw (unverified) merged range query used by the unsecured
// baseline: newest version ≤ tsq per key in [start, end], tombstones
// resolved.
func (s *Store) Scan(start, end []byte, tsq uint64) ([]record.Record, error) {
	out, _, _, err := s.ScanChunk(start, end, tsq, 0)
	return out, err
}

// ScanChunk is Scan bounded to at most maxKeys distinct keys (0 =
// unlimited), the raw engine half of a streaming range read. It returns the
// resolved records, the cursor to resume from (the first unprocessed key)
// and whether the range was exhausted. Keys whose newest version ≤ tsq is a
// tombstone count toward the limit but produce no record, so a chunk may be
// smaller than maxKeys — or empty — without being the last.
func (s *Store) ScanChunk(start, end []byte, tsq uint64, maxKeys int) (out []record.Record, next []byte, done bool, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, nil, false, ErrClosed
	}
	sources := []mergeSource{{runID: MemtableRunID, iter: s.mem.Iter()}}
	if s.frozen != nil {
		sources = append(sources, mergeSource{runID: MemtableRunID, iter: s.frozen.Iter()})
	}
	for lvl := 1; lvl < len(s.levels); lvl++ {
		for _, r := range s.levels[lvl] {
			if len(r.tables) > 0 {
				sources = append(sources, mergeSource{runID: r.id, iter: newRunIter(r)})
			}
		}
	}
	return scanChunkSources(sources, start, end, tsq, maxKeys)
}
