package lsm

import (
	"encoding/json"
	"errors"
	"fmt"

	"elsm/internal/record"
	"elsm/internal/vfs"
)

// Replication errors.
var (
	// ErrReplicationGap reports a shipped group whose timestamps do not
	// extend the follower's applied frontier contiguously — a dropped,
	// reordered or replayed group. The follower fails stop and must
	// re-bootstrap from a checkpoint.
	ErrReplicationGap = errors.New("lsm: replicated group does not extend the applied frontier")
	// ErrWALRequired reports a replication operation on a store running
	// with DisableWAL: without the group log there is nothing to ship.
	ErrWALRequired = errors.New("lsm: replication requires the write-ahead log")
)

// ReplicatedGroup is one durably committed commit group as observed by a
// replication sink: the group's records in append (= timestamp) order plus
// the timestamp interval (PrevTs, LastTs] they cover. Records are shared
// with the engine and must be treated as immutable.
type ReplicatedGroup struct {
	Recs   []record.Record
	PrevTs uint64 // applied frontier before the group
	LastTs uint64 // applied frontier after the group
	Bytes  int64  // payload size (sum of record sizes)
}

// GroupSink receives every durably committed group, in commit order, after
// the group has been applied to the memtable. It is invoked from the sync
// stage (single-threaded), so implementations see a strictly ordered,
// gap-free stream; they must not block for long — the commit pipeline's
// apply latency includes the call.
type GroupSink func(ReplicatedGroup)

// SetGroupSink installs (or, with nil, removes) the store's replication
// sink. At most one sink is supported; the leader hub fans out to
// followers.
func (s *Store) SetGroupSink(sink GroupSink) {
	if sink == nil {
		s.groupSink.Store(nil)
		return
	}
	s.groupSink.Store(&sink)
}

// notifyGroupSink publishes a committed group to the sink, if any.
func (s *Store) notifyGroupSink(recs []record.Record, lastTs uint64) {
	p := s.groupSink.Load()
	if p == nil || len(recs) == 0 {
		return
	}
	var bytes int64
	for i := range recs {
		bytes += int64(recs[i].Size())
	}
	(*p)(ReplicatedGroup{
		Recs:   recs,
		PrevTs: lastTs - uint64(len(recs)),
		LastTs: lastTs,
		Bytes:  bytes,
	})
}

// ApplyReplicated applies one shipped commit group on a follower: the
// records run through the exact pipeline a local commit group takes —
// listener digest extension, WAL group append with COMMIT marker, fsync,
// listener commit mark, memtable apply — so the follower's WAL chain,
// sealed frontier and on-disk state are bit-compatible with a store that
// executed the writes locally. The caller has already authenticated the
// group (frame report + digest chain); this layer enforces the structural
// invariant that the group extends the applied frontier contiguously.
func (s *Store) ApplyReplicated(recs []record.Record) error {
	if len(recs) == 0 {
		return nil
	}
	if s.opts.DisableWAL {
		return ErrWALRequired
	}
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	if err := s.ensureMemtableRoom(); err != nil {
		return err
	}
	s.drainSync()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if err := s.bgErr; err != nil {
		s.mu.Unlock()
		return fmt.Errorf("lsm: background maintenance failed: %w", err)
	}
	if err := s.walErrLocked(); err != nil {
		// Sticky WAL failure: the follower's log can no longer promise
		// durability, so stop applying shipped groups until reopen.
		s.mu.Unlock()
		return err
	}
	last := s.lastTs.Load()
	for i := range recs {
		if recs[i].Ts != last+uint64(i)+1 {
			s.mu.Unlock()
			return fmt.Errorf("%w: record %d carries ts %d, want %d",
				ErrReplicationGap, i, recs[i].Ts, last+uint64(i)+1)
		}
		if recs[i].Kind != record.KindSet && recs[i].Kind != record.KindDelete {
			s.mu.Unlock()
			return fmt.Errorf("%w: record %d has kind %d", ErrReplicationGap, i, recs[i].Kind)
		}
	}
	for i := range recs {
		s.listener.OnWALAppend(recs[i])
	}
	var werr error
	s.ocall(func() { werr = s.walW.AppendBatch(recs) })
	if werr != nil {
		s.mu.Unlock()
		return fmt.Errorf("lsm: replicated append: %w", werr)
	}
	s.listener.OnGroupAppended()
	s.lastTs.Add(uint64(len(recs)))
	s.mu.Unlock()

	// Sync stage, inline: the pipeline is drained and commitMu is held, so
	// ordering with local groups (there are none on a follower) is trivial.
	var serr error
	s.ocall(func() { serr = s.walW.Sync() })
	if serr != nil {
		s.setWALErr(serr)             // sticky: later applies fail until reopen
		s.listener.OnGroupAbandoned() // consume the group's appended mark
		return fmt.Errorf("%w: %w", ErrWALSyncFailed, serr)
	}
	s.walSyncs.Add(1)
	s.groupCommits.Add(1)
	s.groupedRecords.Add(uint64(len(recs)))
	s.listener.OnGroupCommit(len(recs))
	s.mu.Lock()
	for i := range recs {
		s.mem.Put(recs[i])
	}
	lastTs := s.lastTs.Load()
	s.appliedTs.Store(lastTs)
	memFull := s.mem.ApproxBytes() >= s.opts.MemtableSize
	s.mu.Unlock()
	// A follower can itself lead a downstream replica (chained
	// replication): republish the group.
	s.notifyGroupSink(recs, lastTs)
	if memFull {
		gc := &s.gc
		gc.mu.Lock()
		if !gc.closed {
			gc.wantFreeze = true
			gc.cond.Signal()
		}
		gc.mu.Unlock()
	}
	return nil
}

// ---------------------------------------------------------------------------
// Checkpoint capture (leader side)

// CheckpointSource is one mutually consistent export unit: a pinned
// snapshot of the installed version plus a byte copy of the live WAL files
// (frozen logs in sequence order, then the active log) taken while the
// commit pipeline was quiescent. The WAL bytes are exactly the records in
// (runFrontier, Snap.Ts()] — the tail a follower must replay on top of the
// snapshot's runs — and their digest chain from zero equals the trusted
// durable WAL digest captured in the same window.
type CheckpointSource struct {
	Snap     *Snapshot
	WALNames []string
	WALData  [][]byte
}

// Release drops the source's snapshot pins. Idempotent.
func (cs *CheckpointSource) Release() { cs.Snap.Release() }

// CaptureCheckpoint quiesces the commit pipeline (commitMu held, sync stage
// drained — so durable == applied == last assigned timestamp) and, under
// one engine read lock (so no version install or WAL rotation can
// interleave), pins the current snapshot, copies the live WAL file bytes,
// and invokes capture — the authentication layer's window to read its
// digest frontier in the same consistent cut. Streaming the (immutable,
// pinned) files happens after the call returns, outside all locks.
func (s *Store) CaptureCheckpoint(capture func() error) (*CheckpointSource, error) {
	if s.opts.DisableWAL {
		return nil, ErrWALRequired
	}
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.drainSync()

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	if err := s.bgErr; err != nil {
		s.mu.RUnlock()
		return nil, fmt.Errorf("lsm: background maintenance failed: %w", err)
	}
	// Inline snapshot acquisition: acquireSnapshot takes mu.RLock itself
	// and read locks are not re-entrant under writer pressure.
	snap := &Snapshot{s: s}
	snap.ts = s.appliedTs.Load()
	snap.mem = s.mem
	snap.frozen = s.frozen
	for lvl := 1; lvl < len(s.levels); lvl++ {
		for idx, r := range s.levels[lvl] {
			snap.refs = append(snap.refs, RunRef{ID: r.id, Level: lvl, Index: idx})
			s.retainRunLocked(r)
			snap.runs = append(snap.runs, r)
		}
	}
	src := &CheckpointSource{Snap: snap}
	names := s.liveWALFiles()
	var rerr error
	s.ocall(func() {
		for _, name := range names {
			f, err := s.fs.Open(name)
			if err != nil {
				rerr = fmt.Errorf("lsm: checkpoint wal open %s: %w", name, err)
				return
			}
			data := f.Bytes()
			if data != nil {
				data = append([]byte(nil), data...) // the live file keeps growing
			} else {
				data = make([]byte, f.Size())
				if _, err := f.ReadAt(data, 0); err != nil && len(data) > 0 {
					f.Close()
					rerr = fmt.Errorf("lsm: checkpoint wal read %s: %w", name, err)
					return
				}
			}
			f.Close()
			src.WALNames = append(src.WALNames, name)
			src.WALData = append(src.WALData, data)
		}
	})
	var cerr error
	if rerr == nil && capture != nil {
		cerr = capture()
	}
	s.mu.RUnlock()
	if rerr != nil || cerr != nil {
		snap.Release()
		if rerr != nil {
			return nil, rerr
		}
		return nil, cerr
	}
	return src, nil
}

// ---------------------------------------------------------------------------
// Checkpoint snapshot accessors

// CheckpointTable identifies one SSTable file of a checkpointed run.
type CheckpointTable struct {
	FileNum uint64
	Name    string
	Size    int64
}

// CheckpointRun describes one pinned run for export: identity, placement
// and the files carrying it.
type CheckpointRun struct {
	ID      uint64
	Level   int
	Tables  []CheckpointTable
	Bytes   int64
	Entries int
}

// CheckpointRuns lists the snapshot's runs in read order with the file
// inventory an importer needs to reconstruct the version.
func (sn *Snapshot) CheckpointRuns() []CheckpointRun {
	out := make([]CheckpointRun, 0, len(sn.runs))
	for i, r := range sn.runs {
		cr := CheckpointRun{ID: r.id, Level: sn.refs[i].Level, Bytes: r.bytes, Entries: r.entries}
		for _, th := range r.tables {
			cr.Tables = append(cr.Tables, CheckpointTable{
				FileNum: th.meta.FileNum,
				Name:    th.name,
				Size:    th.meta.Size,
			})
		}
		out = append(out, cr)
	}
	return out
}

// EncodeManifest serializes the snapshot's version as a MANIFEST the
// importer installs verbatim, with lastTs — the run frontier, i.e. the
// highest timestamp covered by the runs rather than the WAL tail — as the
// recovered timestamp base. NextFileNum/NextRunID are derived from the
// pinned version so follower-local flushes allocate past the imported
// names.
func (sn *Snapshot) EncodeManifest(lastTs uint64) ([]byte, error) {
	root := manifestRoot{
		NextFileNum: 1,
		NextRunID:   1,
		LastTs:      lastTs,
		Levels:      make([][]manifestRun, len(sn.s.levels)),
	}
	for i, r := range sn.runs {
		lvl := sn.refs[i].Level
		mr := manifestRun{ID: r.id, Nbytes: r.bytes}
		if r.id >= root.NextRunID {
			root.NextRunID = r.id + 1
		}
		for _, th := range r.tables {
			if th.meta.FileNum >= root.NextFileNum {
				root.NextFileNum = th.meta.FileNum + 1
			}
			mr.Files = append(mr.Files, manifestTable{
				FileNum:    th.meta.FileNum,
				Smallest:   th.meta.Smallest,
				SmallestTs: th.meta.SmallestTs,
				Largest:    th.meta.Largest,
				LargestTs:  th.meta.LargestTs,
				NumEntries: th.meta.NumEntries,
				NumBlocks:  th.meta.NumBlocks,
				Size:       th.meta.Size,
			})
		}
		root.Levels[lvl] = append(root.Levels[lvl], mr)
	}
	return json.Marshal(root)
}

// RunRecords streams every record (all versions, tombstones included) of
// the i-th pinned run in engine order — key ascending, timestamp
// descending. The importer rebuilds the run's Merkle digest from this
// stream and compares it against the attested frontier.
func (sn *Snapshot) RunRecords(i int, fn func(record.Record) error) error {
	if i < 0 || i >= len(sn.runs) {
		return ErrUnknownRun
	}
	it := newRunIter(sn.runs[i])
	defer it.Close()
	for ; it.Valid(); it.Next() {
		if err := fn(it.Record()); err != nil {
			return err
		}
	}
	return nil
}

// TableFileName exposes the SSTable naming convention so the checkpoint
// importer can place shipped files where recovery expects them.
func TableFileName(fileNum uint64) string { return tableName(fileNum) }

// ReadFileBytes reads one untrusted file completely — the exporter's path
// for streaming pinned SSTable bytes.
func (s *Store) ReadFileBytes(name string) ([]byte, error) {
	var data []byte
	var rerr error
	s.ocall(func() {
		var f vfs.File
		f, rerr = s.fs.Open(name)
		if rerr != nil {
			return
		}
		defer f.Close()
		b := f.Bytes()
		if b != nil {
			data = append([]byte(nil), b...)
			return
		}
		data = make([]byte, f.Size())
		if _, err := f.ReadAt(data, 0); err != nil && len(data) > 0 {
			rerr = err
		}
	})
	return data, rerr
}
