package lsm

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"elsm/internal/record"
	"elsm/internal/vfs"
)

// trackListener checks the scheduler's two concurrency invariants from the
// listener's vantage point: jobs whose level claims overlap never run
// concurrently, and the OnCompactionEnd → OnVersionCommitted install window
// is single-slot across all jobs.
type trackListener struct {
	NopListener
	mu           sync.Mutex
	active       map[uint64][2]int // OutputRun → claimed [lo, hi] level pair
	staged       map[uint64]bool   // OutputRun → inside the install window
	installDepth int
	maxInstall   int
	maxActive    int
	overlaps     []string
	aborts       int
}

func newTrackListener() *trackListener {
	return &trackListener{
		active: make(map[uint64][2]int),
		staged: make(map[uint64]bool),
	}
}

// claimPair mirrors jobClaims: a flush owns {memtable, L1}, a compaction of
// Ln owns {Ln, Ln+1}.
func claimPair(info CompactionInfo) [2]int {
	if info.MemtableInput {
		return [2]int{0, 1}
	}
	return [2]int{info.OutputLevel - 1, info.OutputLevel}
}

func (l *trackListener) OnCompactionBegin(info CompactionInfo) {
	if info.BulkLoad {
		return // exclusive job, runs with the queue fenced
	}
	p := claimPair(info)
	l.mu.Lock()
	defer l.mu.Unlock()
	for run, q := range l.active {
		if p[0] <= q[1] && q[0] <= p[1] {
			l.overlaps = append(l.overlaps,
				fmt.Sprintf("job %d (levels %v) ran concurrently with job %d (levels %v)",
					info.OutputRun, p, run, q))
		}
	}
	l.active[info.OutputRun] = p
	if n := len(l.active); n > l.maxActive {
		l.maxActive = n
	}
}

func (l *trackListener) OnCompactionEnd(info CompactionInfo) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.installDepth++
	if l.installDepth > l.maxInstall {
		l.maxInstall = l.installDepth
	}
	l.staged[info.OutputRun] = true
	return nil
}

func (l *trackListener) finishLocked(run uint64) {
	if l.staged[run] {
		l.installDepth--
		delete(l.staged, run)
	}
	delete(l.active, run)
}

func (l *trackListener) OnVersionCommitted(info CompactionInfo) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.finishLocked(info.OutputRun)
}

func (l *trackListener) OnCompactionAbort(info CompactionInfo) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.aborts++
	l.finishLocked(info.OutputRun)
}

// TestParallelJobsDisjointAndInstallsSerialized hammers a 4-worker store
// with concurrent writers, explicit compactions and pinned snapshots, and
// asserts from the listener that (a) no two concurrent jobs ever claimed
// overlapping level pairs, (b) at most one install window was ever open,
// and (c) a snapshot pinned mid-churn reads repeatably.
func TestParallelJobsDisjointAndInstallsSerialized(t *testing.T) {
	tl := newTrackListener()
	opts := bgOpts(nil)
	opts.MaxLevels = 6
	opts.CompactionWorkers = 4
	opts.Listener = tl
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const writers, perWriter = 4, 800
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%d-key%05d", w, i)
				if _, err := s.Put([]byte(key), []byte(fmt.Sprintf("val%05d", i))); err != nil {
					t.Errorf("writer %d put %d: %v", w, i, err)
					return
				}
				if i%97 == 0 {
					if _, err := s.Delete([]byte(key)); err != nil {
						t.Errorf("writer %d delete %d: %v", w, i, err)
						return
					}
				}
			}
		}(w)
	}
	// Explicit deep compactions racing the flush-driven cascades.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			for lvl := 1; lvl < opts.MaxLevels-1; lvl++ {
				if err := s.Compact(lvl); err != nil {
					t.Errorf("compact L%d: %v", lvl, err)
					return
				}
			}
		}
	}()
	// A snapshot pinned mid-churn must read the same bytes at the end.
	time.Sleep(10 * time.Millisecond)
	snap := s.AcquireSnapshot()
	defer snap.Release()
	firstRead, _, _, err := snap.ScanChunk([]byte("w0-"), []byte("w0-z"), record.MaxTs, 0)
	if err != nil {
		t.Fatalf("snapshot scan during churn: %v", err)
	}
	wg.Wait()
	if err := s.WaitMaintenance(); err != nil {
		t.Fatal(err)
	}

	tl.mu.Lock()
	overlaps, maxInstall, maxActive, aborts := tl.overlaps, tl.maxInstall, tl.maxActive, tl.aborts
	tl.mu.Unlock()
	for _, o := range overlaps {
		t.Errorf("level-claim overlap: %s", o)
	}
	if maxInstall > 1 {
		t.Fatalf("install window not serialized: %d concurrent installs", maxInstall)
	}
	if aborts != 0 {
		t.Fatalf("%d jobs aborted under a healthy store", aborts)
	}
	t.Logf("max concurrent jobs observed: %d", maxActive)

	// The pinned snapshot re-reads bit for bit despite all the churn.
	secondRead, _, _, err := snap.ScanChunk([]byte("w0-"), []byte("w0-z"), record.MaxTs, 0)
	if err != nil {
		t.Fatalf("snapshot scan after churn: %v", err)
	}
	if len(firstRead) != len(secondRead) {
		t.Fatalf("snapshot drifted: %d records then, %d now", len(firstRead), len(secondRead))
	}
	for i := range firstRead {
		if !recordsEqual(firstRead[i], secondRead[i]) {
			t.Fatalf("snapshot record %d drifted: %+v -> %+v", i, firstRead[i], secondRead[i])
		}
	}

	// Every surviving key is readable with its final value.
	for w := 0; w < writers; w++ {
		for _, i := range []int{1, perWriter / 2, perWriter - 1} {
			key := fmt.Sprintf("w%d-key%05d", w, i)
			rec, ok, err := s.Get([]byte(key), record.MaxTs)
			if err != nil || !ok || string(rec.Value) != fmt.Sprintf("val%05d", i) {
				t.Fatalf("key %s: ok=%v err=%v val=%q", key, ok, err, rec.Value)
			}
		}
	}
}

func recordsEqual(a, b record.Record) bool {
	return a.Ts == b.Ts && a.Kind == b.Kind &&
		string(a.Key) == string(b.Key) && string(a.Value) == string(b.Value)
}

// TestParallelMatchesSerialScans runs one deterministic workload into a
// 4-worker store and an inline (fully serial) store and requires the final
// contents to match record for record — parallel maintenance must be
// invisible to readers.
func TestParallelMatchesSerialScans(t *testing.T) {
	run := func(opts Options) []record.Record {
		t.Helper()
		s, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		for i := 0; i < 2000; i++ {
			key := fmt.Sprintf("key%05d", i%700) // overwrites exercise dedup
			if i%13 == 0 {
				if _, err := s.Delete([]byte(key)); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if _, err := s.Put([]byte(key), []byte(fmt.Sprintf("val%06d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.WaitMaintenance(); err != nil {
			t.Fatal(err)
		}
		recs, err := s.Scan([]byte("key"), []byte("kez"), record.MaxTs)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}

	parOpts := bgOpts(nil)
	parOpts.MaxLevels = 6
	parOpts.CompactionWorkers = 4
	parallel := run(parOpts)

	serOpts := bgOpts(nil)
	serOpts.MaxLevels = 6
	serOpts.InlineCompaction = true
	serial := run(serOpts)

	if len(parallel) != len(serial) {
		t.Fatalf("parallel scan %d records, serial %d", len(parallel), len(serial))
	}
	for i := range parallel {
		if !recordsEqual(parallel[i], serial[i]) {
			t.Fatalf("record %d diverged: parallel %+v, serial %+v", i, parallel[i], serial[i])
		}
	}
}

// TestStallAttributionFlushOnly pins the writer-stall bookkeeping: with
// compaction disabled, a stalled writer can only be waiting on flush
// progress, so no stall time may be charged to compaction debt.
func TestStallAttributionFlushOnly(t *testing.T) {
	opts := bgOpts(vfs.NewSlowSync(vfs.NewMem(), 2*time.Millisecond))
	opts.DisableCompaction = true
	opts.DisableWAL = true // puts are memory-fast; only the flush pays syncs
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 2000; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("key%05d", i)), []byte("vvvvvvvv")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WaitMaintenance(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.FlushStallNanos == 0 {
		t.Fatal("burst over slow storage produced no flush stall")
	}
	if st.CompactionStallNanos != 0 {
		t.Fatalf("stall misattributed: %dns charged to compaction with compaction disabled",
			st.CompactionStallNanos)
	}
}

// gateListener parks the first non-flush compaction in phase 2 until
// released, holding its worker token.
type gateListener struct {
	NopListener
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gateListener) OnCompactionBegin(info CompactionInfo) {
	if info.MemtableInput {
		return
	}
	g.once.Do(func() { close(g.entered) })
	<-g.release
}

// TestStallAttributionCompactionBlocked is the regression test for the
// attribution fix: a writer stalled because compaction debt holds the only
// worker (no flush is running) must charge its wait to CompactionStallNanos.
func TestStallAttributionCompactionBlocked(t *testing.T) {
	gate := &gateListener{entered: make(chan struct{}), release: make(chan struct{})}
	opts := bgOpts(nil)
	opts.DisableWAL = true
	opts.CompactionWorkers = 1 // the gated compaction starves the flush
	opts.Listener = gate
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 300; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("seed%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	compactDone := make(chan error, 1)
	go func() { compactDone <- s.Compact(1) }()
	<-gate.entered // the compaction now owns the only worker token

	writerDone := make(chan error, 1)
	go func() {
		for i := 0; i < 600; i++ { // several memtables' worth: must stall
			if _, err := s.Put([]byte(fmt.Sprintf("key%05d", i)), []byte("vvvvvvvv")); err != nil {
				writerDone <- err
				return
			}
		}
		writerDone <- nil
	}()

	// Let the writer hit the full-memtable wall while the flush it needs
	// sits queued behind the parked compaction.
	time.Sleep(100 * time.Millisecond)
	close(gate.release)
	if err := <-writerDone; err != nil {
		t.Fatalf("writer: %v", err)
	}
	if err := <-compactDone; err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := s.WaitMaintenance(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.CompactionStallNanos == 0 {
		t.Fatal("writer wait behind a parked compaction charged no CompactionStallNanos")
	}
}
