package lsm

import (
	"sync"
	"sync/atomic"
)

// This file implements the maintenance scheduler: a debt-aware dispatcher
// that executes flush and compaction jobs off the commit path on a bounded
// pool of workers (Options.CompactionWorkers, shareable across stores).
// Jobs touching DISJOINT level pairs run concurrently — a flush claims
// {memtable, L1}, a compaction of Ln claims {Ln, Ln+1} — while jobs whose
// claims overlap serialize in queue order. Among the dispatchable jobs the
// dispatcher always prefers a flush (flushes unblock stalled commit
// leaders) and orders the rest by compaction debt: bytes over the level's
// size target, so the level furthest past its budget gets the next worker.
//
// Concurrency invariants the dispatcher preserves:
//
//   - at most one job per level pair: the claims table rejects any job
//     whose input or output level another running job owns;
//   - version installs stay serialized: phase 3 of every job runs under
//     Store.installMu (compaction.go), so the listener's transition-seal
//     staging is single-slot by construction even with parallel phase 2s;
//   - barriers (WaitMaintenance) and exclusive jobs (bulk load) are full
//     fences: they dispatch only at the queue head with zero jobs in
//     flight, and jobs queued behind them wait.
//
// The queue stays bounded by construction: background triggers are
// deduplicated (at most one pending flush, at most one pending compaction
// per level) and synchronous requests are bounded by their callers, who
// block on the result.
//
// Close semantics: stopMaintenance marks the queue closed and waits for the
// dispatcher to DRAIN — in-flight jobs and everything already queued run to
// completion, so a half-built version is never abandoned between its
// manifest write and its digest install. New enqueues after close fail with
// ErrClosed.

// Job kinds.
const (
	jobIdle    = iota // unused slot marker (kept for readability)
	jobFlush          // flush the frozen memtable into level 1
	jobCompact        // merge level N into level N+1
	jobFunc           // run an arbitrary closure (bulk load) — exclusive
	jobBarrier        // no-op: WaitMaintenance fence
)

// WorkerPool is a bounded token pool limiting how many maintenance jobs
// may execute concurrently. One pool may be shared by several stores (the
// sharded open path does), in which case the bound is machine-wide.
type WorkerPool struct {
	sem  chan struct{}
	busy atomic.Int64
}

// NewWorkerPool creates a pool of n worker tokens (n < 1 is clamped to 1).
func NewWorkerPool(n int) *WorkerPool {
	if n < 1 {
		n = 1
	}
	return &WorkerPool{sem: make(chan struct{}, n)}
}

// Size returns the pool's token count.
func (p *WorkerPool) Size() int { return cap(p.sem) }

// Busy returns how many tokens are currently held.
func (p *WorkerPool) Busy() int { return int(p.busy.Load()) }

func (p *WorkerPool) acquire() {
	p.sem <- struct{}{}
	p.busy.Add(1)
}

func (p *WorkerPool) release() {
	p.busy.Add(-1)
	<-p.sem
}

// maintJob is one queued maintenance request.
type maintJob struct {
	kind  int
	level int          // jobCompact only
	fn    func() error // jobFunc only
	done  chan error   // non-nil: a synchronous caller awaits the result
}

// maintenance is the scheduler state.
type maintenance struct {
	mu     sync.Mutex
	cond   *sync.Cond // queue change, job completion, close
	queue  []*maintJob
	closed bool
	wg     sync.WaitGroup // the dispatcher goroutine

	// claimed maps a level to true while a running job owns it. A flush
	// owns {0, 1} (0 stands for the memtable side); a compaction of lvl
	// owns {lvl, lvl+1}.
	claimed map[int]bool

	// inflight counts running jobs of any kind; jobs signal cond on
	// completion so the dispatcher can re-evaluate fences and claims.
	inflight int

	// Dedup flags for background (fire-and-forget) triggers; cleared when
	// the job is dispatched so a trigger during execution re-queues.
	flushQueued   bool
	compactQueued map[int]bool

	// Per-class in-flight counters, read lock-free by stalled writers to
	// attribute their wait: a flush in flight means the writer is waiting
	// on flush progress itself; compactions in flight with NO flush
	// running mean compaction debt is holding the workers the flush needs.
	flushInFlight   atomic.Int32
	compactInFlight atomic.Int32

	// running gauges Stats.ParallelCompactions: flush/compact/bulk-load
	// jobs currently executing (barriers excluded).
	running atomic.Int64
}

// startMaintenance launches the dispatcher.
func (s *Store) startMaintenance() {
	m := &s.maint
	m.cond = sync.NewCond(&m.mu)
	m.compactQueued = make(map[int]bool)
	m.claimed = make(map[int]bool)
	m.wg.Add(1)
	go s.maintDispatcher()
}

// stopMaintenance closes the queue and waits for the dispatcher to drain
// it (queued and in-flight jobs run to completion), then wakes any writer
// stalled on a flush that will now never be scheduled (it observes the
// closed queue and fails with ErrClosed).
func (s *Store) stopMaintenance() {
	m := &s.maint
	m.mu.Lock()
	already := m.closed
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
	if !already {
		s.mu.Lock()
		s.flushDone.Broadcast()
		s.mu.Unlock()
	}
}

// maintenanceClosed reports whether the scheduler stopped accepting jobs.
func (s *Store) maintenanceClosed() bool {
	m := &s.maint
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// enqueue appends a job, returning ErrClosed after stopMaintenance.
func (s *Store) enqueue(j *maintJob) error {
	m := &s.maint
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.queue = append(m.queue, j)
	m.cond.Broadcast()
	return nil
}

// runSync enqueues a job and blocks until a worker has executed it.
func (s *Store) runSync(kind, level int, fn func() error) error {
	done := make(chan error, 1)
	if err := s.enqueue(&maintJob{kind: kind, level: level, fn: fn, done: done}); err != nil {
		return err
	}
	return <-done
}

// scheduleFlush queues a background flush of the frozen memtable (at most
// one outstanding).
func (s *Store) scheduleFlush() error {
	m := &s.maint
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	if m.flushQueued {
		m.mu.Unlock()
		return nil
	}
	m.flushQueued = true
	m.queue = append(m.queue, &maintJob{kind: jobFlush})
	m.cond.Broadcast()
	m.mu.Unlock()
	return nil
}

// scheduleCompaction queues a background compaction of lvl (at most one
// outstanding per level).
func (s *Store) scheduleCompaction(lvl int) {
	m := &s.maint
	m.mu.Lock()
	if !m.closed && !m.compactQueued[lvl] {
		m.compactQueued[lvl] = true
		m.queue = append(m.queue, &maintJob{kind: jobCompact, level: lvl})
		m.cond.Broadcast()
	}
	m.mu.Unlock()
}

// scheduleOverflowCompactions queues a background compaction for EVERY
// level over its size target (§2: COMPACTION "to make room in lower levels
// for upcoming writes"). Called after each install. With multiple workers,
// disjoint overflowing levels compact in parallel; adjacent ones conflict
// on their shared level claim and serialize in debt order.
func (s *Store) scheduleOverflowCompactions() {
	for _, lvl := range s.overflowingLevels() {
		s.scheduleCompaction(lvl)
	}
}

// claims returns the level set a job must own to run.
func jobClaims(j *maintJob) []int {
	switch j.kind {
	case jobFlush:
		return []int{0, 1} // 0 = the memtable side of the flush
	case jobCompact:
		return []int{j.level, j.level + 1}
	}
	return nil
}

// claimsFreeLocked reports whether none of the job's levels is owned by a
// running job. Caller holds m.mu.
func (m *maintenance) claimsFreeLocked(j *maintJob) bool {
	for _, lvl := range jobClaims(j) {
		if m.claimed[lvl] {
			return false
		}
	}
	return true
}

// compactionDebt returns how many bytes lvl sits over its size target
// (0 when under). Reads the per-level byte gauges, NOT s.mu — the
// dispatcher holds maint.mu, which must never wait on the engine lock
// (ensureMemtableRoom holds s.mu while querying maintenanceClosed).
func (s *Store) compactionDebt(lvl int) int64 {
	if lvl < 1 || lvl >= len(s.levelBytesGauge) {
		return 0
	}
	debt := s.levelBytesGauge[lvl].Load() - s.opts.levelTarget(lvl)
	if debt < 0 {
		return 0
	}
	return debt
}

// pickJobLocked selects the best dispatchable job and removes it from the
// queue, or returns nil. Queue order is a fence order: a barrier or
// exclusive job blocks everything behind it until it has dispatched.
// Caller holds m.mu.
func (s *Store) pickJobLocked() *maintJob {
	m := &s.maint
	best := -1
	var bestDebt int64 = -1
	for i, j := range m.queue {
		switch j.kind {
		case jobBarrier, jobFunc:
			// A fence: dispatchable only from the queue head with nothing
			// in flight; nothing behind it may overtake it.
			if i == 0 && m.inflight == 0 {
				best = i
			}
			goto picked
		case jobFlush:
			if m.claimsFreeLocked(j) {
				// Flushes always win: they unblock stalled commit leaders.
				best = i
				goto picked
			}
		case jobCompact:
			if m.claimsFreeLocked(j) {
				if d := s.compactionDebt(j.level); d > bestDebt {
					best, bestDebt = i, d
				}
			}
		}
	}
picked:
	if best < 0 {
		return nil
	}
	j := m.queue[best]
	m.queue = append(m.queue[:best], m.queue[best+1:]...)
	return j
}

// maintDispatcher is the scheduler loop: it waits for a dispatchable job,
// acquires a worker token (possibly contending with other stores sharing
// the pool), re-picks the best job — priorities may have shifted while
// waiting for the token — and hands it to a job goroutine.
func (s *Store) maintDispatcher() {
	m := &s.maint
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for {
			if s.pickableLocked() {
				break
			}
			if m.closed && len(m.queue) == 0 && m.inflight == 0 {
				m.mu.Unlock()
				return
			}
			m.cond.Wait()
		}
		m.mu.Unlock()

		// Blocking token acquire OUTSIDE maint.mu: state queries
		// (maintenanceClosed, scheduling) must never wait on the pool.
		s.workers.acquire()

		m.mu.Lock()
		j := s.pickJobLocked()
		if j == nil {
			// The dispatchable job was claimed away (priorities shifted);
			// return the token and re-evaluate.
			m.mu.Unlock()
			s.workers.release()
			continue
		}
		switch j.kind {
		case jobFlush:
			if j.done == nil {
				m.flushQueued = false
			}
			m.flushInFlight.Add(1)
			m.running.Add(1)
		case jobCompact:
			if j.done == nil {
				m.compactQueued[j.level] = false
			}
			m.compactInFlight.Add(1)
			m.running.Add(1)
		case jobFunc:
			m.running.Add(1)
		}
		for _, lvl := range jobClaims(j) {
			m.claimed[lvl] = true
		}
		m.inflight++
		m.mu.Unlock()
		go s.executeJob(j)
	}
}

// pickableLocked reports whether any queued job could dispatch right now.
// Caller holds m.mu.
func (s *Store) pickableLocked() bool {
	m := &s.maint
	for i, j := range m.queue {
		switch j.kind {
		case jobBarrier, jobFunc:
			return i == 0 && m.inflight == 0
		default:
			if m.claimsFreeLocked(j) {
				return true
			}
		}
	}
	return false
}

// executeJob runs one dispatched job on its own goroutine, then releases
// its claims and worker token and wakes the dispatcher.
func (s *Store) executeJob(j *maintJob) {
	var err error
	switch j.kind {
	case jobFlush:
		err = s.flushFrozen()
	case jobCompact:
		err = s.compactLevel(j.level, j.done == nil)
	case jobFunc:
		err = j.fn()
	case jobBarrier:
		// Fence only: dispatching required every prior job to finish.
	}

	if err != nil && (j.kind == jobFlush || j.done == nil) {
		// Fail stop: fire-and-forget failures have no caller to report
		// to, and a FAILED FLUSH — synchronous or not — leaves the
		// frozen memtable stranded, so commit leaders stalled on it
		// must be woken to observe the error rather than wait forever.
		s.mu.Lock()
		s.setBgErrLocked(err)
		s.mu.Unlock()
	}
	if j.done != nil {
		j.done <- err
	}

	m := &s.maint
	m.mu.Lock()
	switch j.kind {
	case jobFlush:
		m.flushInFlight.Add(-1)
		m.running.Add(-1)
	case jobCompact:
		m.compactInFlight.Add(-1)
		m.running.Add(-1)
	case jobFunc:
		m.running.Add(-1)
	}
	for _, lvl := range jobClaims(j) {
		delete(m.claimed, lvl)
	}
	m.inflight--
	m.cond.Broadcast()
	m.mu.Unlock()
	s.workers.release()
}
