package lsm

import (
	"sync"
	"sync/atomic"
)

// This file implements the maintenance scheduler: a single background
// worker goroutine that executes flush and compaction jobs off the commit
// path. One job runs at a time — the authentication listener stages one
// compaction's Merkle state, and serial execution preserves the engine's
// "at most one version install in flight" invariant — while the queue stays
// bounded by construction: background triggers are deduplicated (at most
// one pending flush, at most one pending compaction per level) and
// synchronous requests are bounded by their callers, who block on the
// result.
//
// Close semantics: stopMaintenance marks the queue closed and waits for the
// worker to DRAIN — the in-flight job and everything already queued run to
// completion, so a half-built version is never abandoned between its
// manifest write and its digest install. New enqueues after close fail with
// ErrClosed.

// Job kinds.
const (
	jobIdle    = iota // worker between jobs (stall attribution)
	jobFlush          // flush the frozen memtable into level 1
	jobCompact        // merge level N into level N+1
	jobFunc           // run an arbitrary closure (bulk load)
	jobBarrier        // no-op: WaitMaintenance fence
)

// maintJob is one queued maintenance request.
type maintJob struct {
	kind  int
	level int          // jobCompact only
	fn    func() error // jobFunc only
	done  chan error   // non-nil: a synchronous caller awaits the result
}

// maintenance is the scheduler state.
type maintenance struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []maintJob
	closed bool
	wg     sync.WaitGroup

	// Dedup flags for background (fire-and-forget) triggers; cleared when
	// the job starts so a trigger during execution re-queues.
	flushQueued   bool
	compactQueued map[int]bool

	// current is the kind of the job now executing (jobIdle when none) —
	// read by stalled writers to attribute their wait to flush vs
	// compaction debt.
	current atomic.Int32
}

// startMaintenance launches the worker.
func (s *Store) startMaintenance() {
	m := &s.maint
	m.cond = sync.NewCond(&m.mu)
	m.compactQueued = make(map[int]bool)
	m.wg.Add(1)
	go s.maintWorker()
}

// stopMaintenance closes the queue and waits for the worker to drain it,
// then wakes any writer stalled on a flush that will now never be
// scheduled (it observes the closed queue and fails with ErrClosed).
func (s *Store) stopMaintenance() {
	m := &s.maint
	m.mu.Lock()
	already := m.closed
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
	if !already {
		s.mu.Lock()
		s.flushDone.Broadcast()
		s.mu.Unlock()
	}
}

// maintenanceClosed reports whether the scheduler stopped accepting jobs.
func (s *Store) maintenanceClosed() bool {
	m := &s.maint
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// enqueue appends a job, returning ErrClosed after stopMaintenance.
func (s *Store) enqueue(j maintJob) error {
	m := &s.maint
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.queue = append(m.queue, j)
	m.cond.Signal()
	return nil
}

// runSync enqueues a job and blocks until the worker has executed it.
func (s *Store) runSync(kind, level int, fn func() error) error {
	done := make(chan error, 1)
	if err := s.enqueue(maintJob{kind: kind, level: level, fn: fn, done: done}); err != nil {
		return err
	}
	return <-done
}

// scheduleFlush queues a background flush of the frozen memtable (at most
// one outstanding).
func (s *Store) scheduleFlush() error {
	m := &s.maint
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	if m.flushQueued {
		m.mu.Unlock()
		return nil
	}
	m.flushQueued = true
	m.queue = append(m.queue, maintJob{kind: jobFlush})
	m.cond.Signal()
	m.mu.Unlock()
	return nil
}

// scheduleCompaction queues a background compaction of lvl (at most one
// outstanding per level).
func (s *Store) scheduleCompaction(lvl int) {
	m := &s.maint
	m.mu.Lock()
	if !m.closed && !m.compactQueued[lvl] {
		m.compactQueued[lvl] = true
		m.queue = append(m.queue, maintJob{kind: jobCompact, level: lvl})
		m.cond.Signal()
	}
	m.mu.Unlock()
}

// scheduleOverflowCompactions queues a background compaction for the
// shallowest level over its size target (§2: COMPACTION "to make room in
// lower levels for upcoming writes"). Called after each install; cascades
// naturally — compacting level N can push N+1 over target, and N+1's
// install re-runs this check.
func (s *Store) scheduleOverflowCompactions() {
	if lvl := s.overflowingLevel(); lvl > 0 {
		s.scheduleCompaction(lvl)
	}
}

// maintWorker is the scheduler loop.
func (s *Store) maintWorker() {
	m := &s.maint
	defer m.wg.Done()
	m.mu.Lock()
	for {
		for len(m.queue) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.queue) == 0 {
			m.mu.Unlock()
			return
		}
		job := m.queue[0]
		m.queue = m.queue[1:]
		switch job.kind {
		case jobFlush:
			if job.done == nil {
				m.flushQueued = false
			}
		case jobCompact:
			if job.done == nil {
				m.compactQueued[job.level] = false
			}
		}
		m.current.Store(int32(job.kind))
		m.mu.Unlock()

		var err error
		switch job.kind {
		case jobFlush:
			err = s.flushFrozen()
		case jobCompact:
			err = s.compactLevel(job.level, job.done == nil)
		case jobFunc:
			err = job.fn()
		case jobBarrier:
			// Fence only: reaching here means every prior job finished.
		}
		m.current.Store(jobIdle)

		if err != nil && (job.kind == jobFlush || job.done == nil) {
			// Fail stop: fire-and-forget failures have no caller to report
			// to, and a FAILED FLUSH — synchronous or not — leaves the
			// frozen memtable stranded, so commit leaders stalled on it
			// must be woken to observe the error rather than wait forever.
			s.mu.Lock()
			s.setBgErrLocked(err)
			s.mu.Unlock()
		}
		if job.done != nil {
			job.done <- err
		}

		m.mu.Lock()
	}
}
