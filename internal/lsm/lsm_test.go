package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"elsm/internal/record"
	"elsm/internal/vfs"
)

// smallOpts returns options tuned to force many flushes and compactions
// with little data.
func smallOpts(fs vfs.FS) Options {
	return Options{
		FS:              fs,
		MemtableSize:    4 << 10,
		BlockSize:       512,
		TableFileSize:   4 << 10,
		LevelBase:       16 << 10,
		LevelMultiplier: 4,
		MaxLevels:       5,
		KeepVersions:    1,
	}
}

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetBasic(t *testing.T) {
	s := mustOpen(t, smallOpts(nil))
	defer s.Close()
	ts, err := s.Put([]byte("hello"), []byte("world"))
	if err != nil || ts == 0 {
		t.Fatalf("put: ts=%d err=%v", ts, err)
	}
	rec, ok, err := s.Get([]byte("hello"), record.MaxTs)
	if err != nil || !ok || string(rec.Value) != "world" {
		t.Fatalf("get = %q %v %v", rec.Value, ok, err)
	}
	if _, ok, _ := s.Get([]byte("absent"), record.MaxTs); ok {
		t.Fatal("found absent key")
	}
}

func TestOverwriteAndTimestamps(t *testing.T) {
	s := mustOpen(t, smallOpts(nil))
	defer s.Close()
	ts1, _ := s.Put([]byte("k"), []byte("v1"))
	ts2, _ := s.Put([]byte("k"), []byte("v2"))
	if ts2 <= ts1 {
		t.Fatalf("timestamps not monotonic: %d then %d", ts1, ts2)
	}
	rec, _, _ := s.Get([]byte("k"), record.MaxTs)
	if string(rec.Value) != "v2" {
		t.Fatalf("latest = %q", rec.Value)
	}
	old, ok, _ := s.Get([]byte("k"), ts1)
	if !ok || string(old.Value) != "v1" {
		t.Fatalf("historical = %q %v", old.Value, ok)
	}
}

func TestDeleteTombstone(t *testing.T) {
	s := mustOpen(t, smallOpts(nil))
	defer s.Close()
	s.Put([]byte("k"), []byte("v"))
	s.Delete([]byte("k"))
	rec, ok, _ := s.Get([]byte("k"), record.MaxTs)
	if !ok || rec.Kind != record.KindDelete {
		t.Fatalf("tombstone not surfaced: %v %v", rec.Kind, ok)
	}
}

func putMany(t *testing.T, s *Store, n int, valSize int) map[string]string {
	t.Helper()
	latest := make(map[string]string, n)
	val := bytes.Repeat([]byte("x"), valSize)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key%06d", i%(n/2+1)) // ~2 versions per key
		v := fmt.Sprintf("v%d-%s", i, val)
		if _, err := s.Put([]byte(key), []byte(v)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		latest[key] = v
	}
	return latest
}

func TestFlushAndCompactionPreserveData(t *testing.T) {
	s := mustOpen(t, smallOpts(nil))
	defer s.Close()
	latest := putMany(t, s, 3000, 64)
	st := s.Stats()
	if st.Flushes == 0 {
		t.Fatal("no flush happened despite tiny memtable")
	}
	if st.Compactions == 0 {
		t.Fatal("no compaction happened despite tiny levels")
	}
	for key, want := range latest {
		rec, ok, err := s.Get([]byte(key), record.MaxTs)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || string(rec.Value) != want {
			t.Fatalf("key %q: got %q ok=%v want %q", key, rec.Value, ok, want)
		}
	}
}

func TestLemma54LevelOrdering(t *testing.T) {
	// Lemma 5.4: for any key, versions at lower levels (and the memtable)
	// are strictly newer than versions at higher levels.
	s := mustOpen(t, func() Options {
		o := smallOpts(nil)
		o.KeepVersions = 0 // retain full history so multiple levels hold versions
		return o
	}())
	defer s.Close()
	for i := 0; i < 4000; i++ {
		key := fmt.Sprintf("key%03d", i%97)
		if _, err := s.Put([]byte(key), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Walk runs newest-first; per key the maximum ts seen so far must
	// strictly decrease across runs.
	maxSeen := map[string]uint64{}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, ref := range s.runsLocked() {
		r, err := s.findRunLocked(ref.ID)
		if err != nil {
			t.Fatal(err)
		}
		perRunMax := map[string]uint64{}
		for _, th := range r.tables {
			it := th.table.Iter()
			it.SeekGE(nil, record.MaxTs)
			for ; it.Valid(); it.Next() {
				rec := it.Record()
				if rec.Ts > perRunMax[string(rec.Key)] {
					perRunMax[string(rec.Key)] = rec.Ts
				}
			}
		}
		for k, ts := range perRunMax {
			if prev, ok := maxSeen[k]; ok && ts >= prev {
				t.Fatalf("Lemma 5.4 violated for %q: version %d at deeper run not older than %d", k, ts, prev)
			}
			if cur, ok := maxSeen[k]; !ok || ts < cur {
				maxSeen[k] = ts
			}
		}
	}
}

func TestTombstoneDroppedAtBottom(t *testing.T) {
	s := mustOpen(t, smallOpts(nil))
	defer s.Close()
	s.Put([]byte("doomed"), []byte("v"))
	s.Delete([]byte("doomed"))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// The flush output is the bottom-most data: tombstone and shadowed
	// version must both be gone.
	if _, ok, _ := s.Get([]byte("doomed"), record.MaxTs); ok {
		t.Fatal("tombstone or shadowed version survived bottom-most flush")
	}
	if s.Stats().RecordsDropped < 2 {
		t.Fatalf("dropped = %d, want >= 2", s.Stats().RecordsDropped)
	}
}

func TestKeepVersionsPolicy(t *testing.T) {
	for _, keep := range []int{0, 1, 2} {
		t.Run(fmt.Sprintf("keep%d", keep), func(t *testing.T) {
			o := smallOpts(nil)
			o.KeepVersions = keep
			s := mustOpen(t, o)
			defer s.Close()
			var tss []uint64
			for i := 0; i < 5; i++ {
				ts, _ := s.Put([]byte("k"), []byte(fmt.Sprintf("v%d", i)))
				tss = append(tss, ts)
			}
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
			// Count surviving versions via historical gets.
			surviving := 0
			for _, ts := range tss {
				if rec, ok, _ := s.Get([]byte("k"), ts); ok && rec.Ts == ts {
					surviving++
				}
			}
			want := len(tss)
			if keep > 0 && keep < want {
				want = keep
			}
			if surviving != want {
				t.Fatalf("keep=%d: %d versions survive, want %d", keep, surviving, want)
			}
		})
	}
}

func TestScanMerged(t *testing.T) {
	s := mustOpen(t, smallOpts(nil))
	defer s.Close()
	for i := 0; i < 500; i++ {
		s.Put([]byte(fmt.Sprintf("key%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	s.Delete([]byte("key0150"))
	recs, err := s.Scan([]byte("key0100"), []byte("key0199"), record.MaxTs)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 99 { // 100 keys minus 1 deleted
		t.Fatalf("scan returned %d records", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if bytes.Compare(recs[i-1].Key, recs[i].Key) >= 0 {
			t.Fatal("scan not sorted")
		}
	}
	for _, rec := range recs {
		if string(rec.Key) == "key0150" {
			t.Fatal("deleted key in scan")
		}
	}
}

func TestRecovery(t *testing.T) {
	fs := vfs.NewMem()
	s := mustOpen(t, smallOpts(fs))
	latest := putMany(t, s, 2000, 32)
	lastTs := s.LastTs()
	s.Close()

	s2 := mustOpen(t, smallOpts(fs))
	defer s2.Close()
	if s2.LastTs() < lastTs {
		t.Fatalf("timestamp went backwards: %d -> %d", lastTs, s2.LastTs())
	}
	for key, want := range latest {
		rec, ok, err := s2.Get([]byte(key), record.MaxTs)
		if err != nil || !ok || string(rec.Value) != want {
			t.Fatalf("after recovery, key %q: %q %v %v", key, rec.Value, ok, err)
		}
	}
	// Writes continue with fresh timestamps.
	ts, err := s2.Put([]byte("post-recovery"), []byte("v"))
	if err != nil || ts <= lastTs {
		t.Fatalf("post-recovery put ts=%d err=%v", ts, err)
	}
}

func TestWALReplayPopulatesMemtable(t *testing.T) {
	fs := vfs.NewMem()
	s := mustOpen(t, smallOpts(fs))
	s.Put([]byte("inmem"), []byte("v1")) // stays in memtable (small)
	s.Close()

	s2 := mustOpen(t, smallOpts(fs))
	defer s2.Close()
	if s2.MemCount() == 0 {
		t.Fatal("memtable empty after WAL replay")
	}
	rec, ok, _ := s2.Get([]byte("inmem"), record.MaxTs)
	if !ok || string(rec.Value) != "v1" {
		t.Fatalf("replayed value = %q %v", rec.Value, ok)
	}
}

func TestVerifyWALPrefix(t *testing.T) {
	fs := vfs.NewMem()
	s := mustOpen(t, smallOpts(fs))
	defer s.Close()
	s.Put([]byte("a"), []byte("1"))
	s.mu.Lock()
	mid := s.walW.Digest()
	s.mu.Unlock()
	s.Put([]byte("b"), []byte("2"))
	s.Put([]byte("c"), []byte("3"))

	extra, err := s.VerifyWALPrefix(mid)
	if err != nil || extra != 2 {
		t.Fatalf("extra=%d err=%v", extra, err)
	}
	full := func() [32]byte { s.mu.Lock(); defer s.mu.Unlock(); return s.walW.Digest() }()
	extra, err = s.VerifyWALPrefix(full)
	if err != nil || extra != 0 {
		t.Fatalf("full prefix: extra=%d err=%v", extra, err)
	}
	var bogus [32]byte
	bogus[0] = 0xee
	if _, err := s.VerifyWALPrefix(bogus); err == nil {
		t.Fatal("bogus digest accepted as prefix")
	}
}

func TestBulkLoad(t *testing.T) {
	s := mustOpen(t, smallOpts(nil))
	defer s.Close()
	var recs []record.Record
	for i := 0; i < 5000; i++ {
		recs = append(recs, record.Record{
			Key:   []byte(fmt.Sprintf("key%06d", i)),
			Ts:    uint64(i + 1),
			Kind:  record.KindSet,
			Value: []byte(fmt.Sprintf("val%d", i)),
		})
	}
	if err := s.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 2499, 4999} {
		rec, ok, err := s.Get(recs[i].Key, record.MaxTs)
		if err != nil || !ok || !bytes.Equal(rec.Value, recs[i].Value) {
			t.Fatalf("bulk-loaded key %d: %v %v", i, ok, err)
		}
	}
	// Bulk load on a non-empty store is rejected.
	if err := s.BulkLoad(recs); err == nil {
		t.Fatal("second bulk load accepted")
	}
	// Timestamps continue above the loaded ones.
	ts, _ := s.Put([]byte("new"), []byte("v"))
	if ts <= 5000 {
		t.Fatalf("post-bulk-load ts = %d", ts)
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	s := mustOpen(t, smallOpts(nil))
	defer s.Close()
	recs := []record.Record{
		{Key: []byte("b"), Ts: 1, Kind: record.KindSet},
		{Key: []byte("a"), Ts: 2, Kind: record.KindSet},
	}
	if err := s.BulkLoad(recs); err == nil {
		t.Fatal("unsorted bulk load accepted")
	}
}

func TestDisableCompactionAccumulatesRuns(t *testing.T) {
	o := smallOpts(nil)
	o.DisableCompaction = true
	s := mustOpen(t, o)
	defer s.Close()
	putMany(t, s, 2000, 64)
	runs := s.Runs()
	if len(runs) < 2 {
		t.Fatalf("expected multiple level-1 runs, got %d", len(runs))
	}
	for _, r := range runs {
		if r.Level != 1 {
			t.Fatalf("run at level %d with compaction disabled", r.Level)
		}
	}
	if s.Stats().Compactions != 0 {
		t.Fatal("compaction ran while disabled")
	}
	// Reads still resolve to the newest version across runs.
	rec, ok, _ := s.Get([]byte("key000001"), record.MaxTs)
	_ = rec
	_ = ok
}

func TestLookupRunMembershipAndBrackets(t *testing.T) {
	s := mustOpen(t, smallOpts(nil))
	defer s.Close()
	var recs []record.Record
	for i := 0; i < 1000; i++ {
		recs = append(recs, record.Record{
			Key:   []byte(fmt.Sprintf("key%04d", i*2)), // even keys only
			Ts:    uint64(i + 1),
			Kind:  record.KindSet,
			Value: []byte("v"),
		})
	}
	if err := s.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	runs := s.Runs()
	if len(runs) != 1 {
		t.Fatalf("runs = %d", len(runs))
	}
	id := runs[0].ID

	// Present key.
	lk, err := s.LookupRun(id, []byte("key0100"), record.MaxTs)
	if err != nil || !lk.Found || string(lk.Rec.Key) != "key0100" {
		t.Fatalf("membership lookup: %+v err=%v", lk, err)
	}
	// Absent key between two present ones.
	lk, err = s.LookupRun(id, []byte("key0101"), record.MaxTs)
	if err != nil || lk.Found {
		t.Fatalf("non-membership lookup found something: %+v", lk)
	}
	if lk.Pred == nil || string(lk.Pred.Key) != "key0100" {
		t.Fatalf("pred = %v", lk.Pred)
	}
	if lk.Succ == nil || string(lk.Succ.Key) != "key0102" {
		t.Fatalf("succ = %v", lk.Succ)
	}
	// Before the first key.
	lk, _ = s.LookupRun(id, []byte("a"), record.MaxTs)
	if lk.Found || lk.Pred != nil || lk.Succ == nil || string(lk.Succ.Key) != "key0000" {
		t.Fatalf("before-first lookup: %+v", lk)
	}
	// After the last key.
	lk, _ = s.LookupRun(id, []byte("z"), record.MaxTs)
	if lk.Found || lk.Succ != nil || lk.Pred == nil || string(lk.Pred.Key) != "key1998" {
		t.Fatalf("after-last lookup: %+v", lk)
	}
}

func TestScanRunBrackets(t *testing.T) {
	s := mustOpen(t, smallOpts(nil))
	defer s.Close()
	var recs []record.Record
	for i := 0; i < 500; i++ {
		recs = append(recs, record.Record{
			Key:   []byte(fmt.Sprintf("key%04d", i)),
			Ts:    uint64(i + 1),
			Kind:  record.KindSet,
			Value: []byte("v"),
		})
	}
	if err := s.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	id := s.Runs()[0].ID
	rs, err := s.ScanRun(id, []byte("key0100"), []byte("key0110"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Records) != 11 {
		t.Fatalf("scan returned %d records", len(rs.Records))
	}
	if rs.Pred == nil || string(rs.Pred.Key) != "key0099" {
		t.Fatalf("pred = %v", rs.Pred)
	}
	if rs.Succ == nil || string(rs.Succ.Key) != "key0111" {
		t.Fatalf("succ = %v", rs.Succ)
	}
	// Range beyond the end: no records, pred = last.
	rs, err = s.ScanRun(id, []byte("z"), []byte("zz"))
	if err != nil || len(rs.Records) != 0 || rs.Pred == nil {
		t.Fatalf("tail scan: %+v err=%v", rs, err)
	}
}

func TestConcurrentReadsDuringWrites(t *testing.T) {
	s := mustOpen(t, smallOpts(nil))
	defer s.Close()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3000; i++ {
			s.Put([]byte(fmt.Sprintf("key%04d", i%200)), []byte(fmt.Sprintf("v%d", i)))
		}
		close(stop)
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := []byte(fmt.Sprintf("key%04d", rnd.Intn(200)))
				if _, _, err := s.Get(key, record.MaxTs); err != nil {
					t.Errorf("concurrent get: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestMmapReadPath(t *testing.T) {
	o := smallOpts(nil)
	o.MmapReads = true
	s := mustOpen(t, o)
	defer s.Close()
	latest := putMany(t, s, 2000, 32)
	for key, want := range latest {
		rec, ok, err := s.Get([]byte(key), record.MaxTs)
		if err != nil || !ok || string(rec.Value) != want {
			t.Fatalf("mmap get %q: %q %v %v", key, rec.Value, ok, err)
		}
	}
}

func TestManualCompactRange(t *testing.T) {
	s := mustOpen(t, smallOpts(nil))
	defer s.Close()
	putMany(t, s, 1000, 32)
	if err := s.Compact(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(0); err == nil {
		t.Fatal("compact(0) accepted")
	}
	if err := s.Compact(99); err == nil {
		t.Fatal("compact(99) accepted")
	}
}
