package lsm

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"elsm/internal/record"
	"elsm/internal/vfs"
)

// bgOpts forces frequent flushes/compactions with little data.
func bgOpts(fs vfs.FS) Options {
	return Options{
		FS:            fs,
		MemtableSize:  4 << 10,
		BlockSize:     512,
		TableFileSize: 4 << 10,
		LevelBase:     16 << 10,
		MaxLevels:     5,
		KeepVersions:  1,
	}
}

// TestBackgroundFlushInstalls checks the freeze → schedule → install
// pipeline: a write burst over the memtable limit must produce on-disk
// runs without any explicit Flush, and every record must stay readable
// throughout.
func TestBackgroundFlushInstalls(t *testing.T) {
	s, err := Open(bgOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := map[string]string{}
	for i := 0; i < 600; i++ {
		key := fmt.Sprintf("key%05d", i)
		val := fmt.Sprintf("val%05d", i)
		if _, err := s.Put([]byte(key), []byte(val)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		want[key] = val
	}
	if err := s.WaitMaintenance(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Flushes == 0 {
		t.Fatal("no background flush installed")
	}
	if len(s.Runs()) == 0 {
		t.Fatal("no runs on disk after background flushes")
	}
	for key, val := range want {
		rec, ok, err := s.Get([]byte(key), record.MaxTs)
		if err != nil || !ok || string(rec.Value) != val {
			t.Fatalf("key %s: ok=%v err=%v val=%q", key, ok, err, rec.Value)
		}
	}
}

// TestPinnedRunSurvivesCompaction checks the refcount lifecycle: a reader
// that pinned a run keeps it addressable and its files on disk across a
// compaction that retires it; the files are deleted only when the pin
// drops.
func TestPinnedRunSurvivesCompaction(t *testing.T) {
	fs := vfs.NewMem()
	s, err := Open(bgOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 400; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("key%05d", i)), []byte("pin-me")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	runs := s.Runs()
	if len(runs) == 0 {
		t.Fatal("no runs to pin")
	}
	target := runs[0]
	release := s.PinRuns([]uint64{target.ID})
	if got := s.Stats().PinnedRuns; got == 0 {
		t.Fatal("pin not reflected in PinnedRuns")
	}

	// Force the pinned run out of the version.
	if err := s.Compact(target.Level); err != nil {
		t.Fatal(err)
	}
	stillLive := false
	for _, r := range s.Runs() {
		if r.ID == target.ID {
			stillLive = true
		}
	}
	if stillLive {
		t.Fatal("compaction did not retire the pinned run")
	}

	// The retired run must remain readable through the pin.
	lk, err := s.LookupRun(target.ID, []byte("key00007"), record.MaxTs)
	if err != nil {
		t.Fatalf("lookup on pinned retired run: %v", err)
	}
	if !lk.Found || string(lk.Rec.Value) != "pin-me" {
		t.Fatalf("pinned retired run returned wrong data: %+v", lk)
	}
	sc, err := s.ScanRunChunk(target.ID, []byte("key00000"), []byte("key00020"), 0)
	if err != nil || len(sc.Records) == 0 {
		t.Fatalf("scan on pinned retired run: %v (%d records)", err, len(sc.Records))
	}

	// Dropping the pin deletes the files and the run becomes unknown.
	before, _ := fs.List("0") // sst files are zero-padded numbers
	release()
	if _, err := s.LookupRun(target.ID, []byte("key00007"), record.MaxTs); !errors.Is(err, ErrUnknownRun) {
		t.Fatalf("released run still resolvable: %v", err)
	}
	after, _ := fs.List("0")
	if len(after) >= len(before) {
		t.Fatalf("releasing the last pin deleted no files: %d -> %d", len(before), len(after))
	}
	if got := s.Stats().PinnedRuns; got != 0 {
		t.Fatalf("PinnedRuns gauge not drained: %d", got)
	}
}

// TestAdaptiveGroupCommitWindow checks GroupCommitWindow =
// AutoGroupCommitWindow: the resolved window must track the observed fsync
// latency (half the EWMA) and stay under the cap.
func TestAdaptiveGroupCommitWindow(t *testing.T) {
	delay := 400 * time.Microsecond
	fs := vfs.NewSlowSync(vfs.NewMem(), delay)
	opts := bgOpts(fs)
	opts.MemtableSize = 1 << 20 // no flushes: isolate the commit path
	opts.GroupCommitWindow = AutoGroupCommitWindow
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 16; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.FsyncEWMANanos == 0 {
		t.Fatal("fsync EWMA not observed")
	}
	if st.GroupCommitWindowNanos == 0 {
		t.Fatal("auto window resolved to zero despite slow fsyncs")
	}
	if got := time.Duration(st.GroupCommitWindowNanos); got > maxAutoCommitWindow {
		t.Fatalf("auto window %v exceeds cap %v", got, maxAutoCommitWindow)
	}
	// Half of a ≥400µs EWMA should be at least ~100µs.
	if st.GroupCommitWindowNanos < uint64((delay / 4).Nanoseconds()) {
		t.Fatalf("auto window %v implausibly small for %v fsyncs",
			time.Duration(st.GroupCommitWindowNanos), delay)
	}
}

// TestFixedWindowStillResolves pins the non-adaptive path: a configured
// window is reported verbatim.
func TestFixedWindowStillResolves(t *testing.T) {
	opts := bgOpts(nil)
	opts.GroupCommitWindow = 123 * time.Microsecond
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Stats().GroupCommitWindowNanos; got != uint64((123 * time.Microsecond).Nanoseconds()) {
		t.Fatalf("fixed window misreported: %d", got)
	}
}

// TestCloseDrainsInFlightFlush closes the store right after a write burst
// that scheduled a background flush: Close must drain the job (manifest
// and digests consistent), and a reopen must recover every record.
func TestCloseDrainsInFlightFlush(t *testing.T) {
	fs := vfs.NewMem()
	s, err := Open(bgOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key%05d", i)
		if _, err := s.Put([]byte(key), []byte("v")); err != nil {
			t.Fatal(err)
		}
		want[key] = true
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(bgOpts(fs))
	if err != nil {
		t.Fatalf("reopen after drain: %v", err)
	}
	defer s2.Close()
	for key := range want {
		if _, ok, err := s2.Get([]byte(key), record.MaxTs); err != nil || !ok {
			t.Fatalf("key %s lost across close/reopen: ok=%v err=%v", key, ok, err)
		}
	}
}

// TestBackgroundFlushFailureFailsStop arms the fault injector so a
// background flush dies mid-rewrite: the store must surface the failure on
// subsequent commits instead of buffering writes it can never persist, and
// recovery on the surviving bytes must serve every acknowledged record
// (the frozen WAL preserved them).
func TestBackgroundFlushFailureFailsStop(t *testing.T) {
	mem := vfs.NewMem()
	ffs := vfs.NewFault(mem)
	s, err := Open(bgOpts(ffs))
	if err != nil {
		t.Fatal(err)
	}
	acked := map[string]bool{}
	// Let the store settle once so the fault lands in flush machinery, not
	// the first WAL append.
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key%05d", i)
		if _, err := s.Put([]byte(key), []byte("v")); err != nil {
			t.Fatal(err)
		}
		acked[key] = true
	}
	ffs.Arm(30)
	var failed bool
	for i := 50; i < 4000 && !failed; i++ {
		key := fmt.Sprintf("key%05d", i)
		if _, err := s.Put([]byte(key), []byte("v")); err != nil {
			failed = true
			break
		}
		acked[key] = true
	}
	if !failed {
		t.Fatal("fault never surfaced on the commit path")
	}
	ffs.Disarm()
	// "Crash": abandon without Close, reopen on the surviving bytes.
	s2, err := Open(bgOpts(mem))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer s2.Close()
	for key := range acked {
		if _, ok, err := s2.Get([]byte(key), record.MaxTs); err != nil || !ok {
			t.Fatalf("acked key %s lost after mid-flush crash: ok=%v err=%v", key, ok, err)
		}
	}
}
