package lsm

import "context"

// BatchOp is one operation of a grouped write: a set (Delete false) or a
// tombstone (Delete true, Value ignored).
type BatchOp struct {
	Key    []byte
	Value  []byte
	Delete bool
}

// ApplyBatch applies a group of writes atomically through the group-commit
// pipeline (commit.go): timestamps are drawn from one contiguous
// reservation, every record extends the listener's WAL digest chain
// individually, and the whole batch reaches the untrusted log in one
// marker-terminated group append — sharing its fsync and periodic
// monotonic-counter bump with any concurrent commits that joined the same
// group. It returns the timestamp of the batch's last record (the batch's
// commit timestamp; records occupy the contiguous range
// [ts-len(ops)+1, ts]).
func (s *Store) ApplyBatch(ops []BatchOp) (uint64, error) {
	return s.commit(nil, ops)
}

// ApplyBatchCtx is ApplyBatch with cancellation: a context cancelled while
// the batch still waits in the commit queue withdraws it (nothing is
// written); once the append worker has claimed the batch, the commit
// completes regardless and its outcome is returned.
func (s *Store) ApplyBatchCtx(ctx context.Context, ops []BatchOp) (uint64, error) {
	return s.commit(ctx, ops)
}
