package lsm

import (
	"fmt"

	"elsm/internal/record"
)

// BatchOp is one operation of a grouped write: a set (Delete false) or a
// tombstone (Delete true, Value ignored).
type BatchOp struct {
	Key    []byte
	Value  []byte
	Delete bool
}

// ApplyBatch applies a group of writes under a single lock acquisition:
// timestamps are drawn from one atomic reservation, every record extends the
// listener's WAL digest chain individually, but the whole group reaches the
// untrusted log in one append followed by one group sync — the
// boundary-crossing and fsync costs are amortized across the batch instead
// of being paid per record. It returns the timestamp of the last record
// (the batch's commit timestamp; records occupy the contiguous range
// [ts-len(ops)+1, ts]).
func (s *Store) ApplyBatch(ops []BatchOp) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if len(ops) == 0 {
		return s.lastTs.Load(), nil
	}
	last := s.lastTs.Add(uint64(len(ops)))
	first := last - uint64(len(ops)) + 1
	recs := make([]record.Record, len(ops))
	for i, op := range ops {
		kind := record.KindSet
		value := op.Value
		if op.Delete {
			kind = record.KindDelete
			value = nil
		}
		recs[i] = record.Record{Key: op.Key, Ts: first + uint64(i), Kind: kind, Value: value}
		s.listener.OnWALAppend(recs[i])
	}
	if !s.opts.DisableWAL {
		var werr error
		s.ocall(func() {
			if werr = s.walW.AppendBatch(recs); werr == nil {
				werr = s.walW.Sync()
			}
		})
		if werr != nil {
			return 0, werr
		}
	}
	for i := range recs {
		s.mem.Put(recs[i])
	}
	if s.mem.ApproxBytes() >= s.opts.MemtableSize {
		if err := s.flushLocked(); err != nil {
			return 0, fmt.Errorf("lsm: flush: %w", err)
		}
	}
	return last, nil
}
