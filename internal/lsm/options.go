// Package lsm implements a leveled log-structured merge-tree key-value
// store in the style of Google LevelDB / Facebook RocksDB (§2 of the
// paper): an in-enclave memtable (L0) backed by an untrusted write-ahead
// log, immutable sorted runs at levels L1..Lq stored as SSTable files in
// the untrusted world, full-run leveled compaction, and a read path that
// goes through either a block cache ("read buffer") or mmap-style direct
// views of untrusted file memory.
//
// The engine knows nothing about Merkle trees. The eLSM authentication
// layer (internal/core) attaches purely through the EventListener callback
// surface — the Go rendering of RocksDB's EventListener/CompactionFilter
// hooks — which is the paper's headline "middleware without engine code
// change" claim (§5.5.3).
package lsm

import (
	"runtime"
	"time"

	"elsm/internal/blockcache"
	"elsm/internal/obs"
	"elsm/internal/record"
	"elsm/internal/sgx"
	"elsm/internal/sstable"
	"elsm/internal/vfs"
)

// Default tuning values. The byte-denominated defaults are the paper's
// LevelDB values scaled by 1/32 (DESIGN.md "Scaling rule").
const (
	DefaultMemtableSize    = 128 << 10 // paper: 4 MB write buffer
	DefaultBlockSize       = 4 << 10   // unscaled: record sizes are unscaled
	DefaultTableFileSize   = 128 << 10 // paper: ~2-4 MB SSTables
	DefaultLevelBase       = 320 << 10 // paper: 10 MB L1 target
	DefaultLevelMultiplier = 10
	DefaultMaxLevels       = 7
)

// Options configures a Store. The zero value is usable with an in-memory
// FS; call withDefaults via Open.
type Options struct {
	// FS is the untrusted file system holding WAL, SSTables and MANIFEST.
	// Nil means a fresh in-memory FS.
	FS vfs.FS
	// Enclave is the simulated enclave hosting the store's code and
	// trusted data structures. Nil means an unlimited zero-cost enclave
	// (the unsecured configuration).
	Enclave *sgx.Enclave
	// Listener receives engine events; nil installs a no-op listener.
	Listener EventListener
	// Cache is the read buffer. Nil disables caching (every block read
	// goes to the file system).
	Cache *blockcache.Cache
	// MmapReads selects the mmap read path: data blocks are read directly
	// from untrusted file memory with no OCall and no buffering
	// (§5.5.1 "Support mmap reads"). Incompatible with Transform.
	MmapReads bool
	// Transform seals/opens data blocks at file granularity (eLSM-P1).
	Transform sstable.BlockTransform
	// MemtableSize triggers a flush when the write buffer exceeds it.
	MemtableSize int
	// BlockSize is the SSTable block payload target.
	BlockSize int
	// TableFileSize caps individual SSTable files.
	TableFileSize int
	// LevelBase is the L1 size target; level i targets
	// LevelBase × LevelMultiplier^(i-1).
	LevelBase int64
	// LevelMultiplier is the per-level size ratio.
	LevelMultiplier int
	// MaxLevels bounds the number of on-disk levels.
	MaxLevels int
	// KeepVersions bounds retained versions per key during compaction:
	// 0 keeps every version (full history, the paper's chain semantics),
	// 1 keeps only the newest (vanilla LevelDB), k keeps the newest k.
	KeepVersions int
	// DisableCompaction stops merging entirely: each flush appends a new
	// immutable run to level 1 (Figure 7b's "wo. compaction" mode).
	DisableCompaction bool
	// InlineCompaction restores the pre-background behaviour: flush and
	// level compaction run synchronously on the commit path (the leader
	// pays the whole level rewrite under commitMu). Exists for the
	// ablation benchmark; never enable in production.
	InlineCompaction bool
	// CompactionWorkers bounds how many maintenance jobs (flushes and
	// compactions of disjoint level pairs) may execute concurrently.
	// 0 selects DefaultCompactionWorkers() = max(2, GOMAXPROCS/2).
	CompactionWorkers int
	// Workers, when non-nil, is a worker-token pool SHARED with other
	// stores (the sharded open path passes one pool to every shard so the
	// machine-wide concurrency stays bounded by CompactionWorkers, not
	// Shards × CompactionWorkers). Nil creates a private pool of
	// CompactionWorkers tokens.
	Workers *WorkerPool
	// DisableWAL skips write-ahead logging (bulk experiments).
	DisableWAL bool
	// GroupCommitMaxOps caps how many operations one commit group may
	// carry (0 = unbounded). 1 disables cross-client coalescing entirely —
	// every commit pays its own fsync and counter-bump check — which is
	// the per-op baseline of the commit ablation.
	GroupCommitMaxOps int
	// GroupCommitWindow makes a commit leader wait this long before
	// draining the queue, trading latency for larger groups. 0 (the
	// default) relies on the natural batching window: the queue refills
	// while the previous group's fsync is in flight.
	// AutoGroupCommitWindow (-1) derives the wait adaptively from an EWMA
	// of observed fsync latency (half the EWMA, capped at 2ms); the
	// resolved value is reported in Stats.GroupCommitWindowNanos.
	GroupCommitWindow time.Duration
	// MaxAsyncCommitBacklog caps how many CommitAsync commits may be
	// accepted but not yet durable; a caller hitting the cap blocks (with
	// context cancellation) until the pipeline drains. 0 selects
	// DefaultMaxAsyncCommitBacklog.
	MaxAsyncCommitBacklog int
	// Obs is this store's observability recorder: the engine observes
	// per-op and per-stage latencies into its histograms, emits sampled
	// commit-group traces, and files structured events (fail-stops, torn
	// WAL recoveries) through it. Nil disables instrumentation entirely —
	// the hot paths guard on the nil before reading the clock, so the
	// uninstrumented store pays only pointer tests.
	Obs *obs.Recorder
}

// DefaultMaxAsyncCommitBacklog bounds the number of acknowledged-but-not-
// yet-durable async commits. Large enough to keep the WAL/fsync pipeline
// saturated, small enough to bound the data a crash can lose and the memory
// the pending queue holds.
const DefaultMaxAsyncCommitBacklog = 1024

// AutoGroupCommitWindow selects the adaptive leader batching window: the
// wait tracks half the observed fsync-latency EWMA instead of a fixed
// duration, so fast storage pays (near) zero delay and slow storage gets
// groups sized to its fsync cost.
const AutoGroupCommitWindow time.Duration = -1

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = vfs.NewMem()
	}
	if o.Enclave == nil {
		o.Enclave = sgx.NewUnlimited()
	}
	if o.Listener == nil {
		o.Listener = NopListener{}
	}
	if o.MemtableSize <= 0 {
		o.MemtableSize = DefaultMemtableSize
	}
	if o.BlockSize <= 0 {
		o.BlockSize = DefaultBlockSize
	}
	if o.TableFileSize <= 0 {
		o.TableFileSize = DefaultTableFileSize
	}
	if o.LevelBase <= 0 {
		o.LevelBase = DefaultLevelBase
	}
	if o.LevelMultiplier <= 1 {
		o.LevelMultiplier = DefaultLevelMultiplier
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = DefaultMaxLevels
	}
	if o.GroupCommitWindow < 0 && o.GroupCommitWindow != AutoGroupCommitWindow {
		o.GroupCommitWindow = 0
	}
	if o.MaxAsyncCommitBacklog <= 0 {
		o.MaxAsyncCommitBacklog = DefaultMaxAsyncCommitBacklog
	}
	if o.CompactionWorkers <= 0 {
		o.CompactionWorkers = DefaultCompactionWorkers()
	}
	if o.Workers == nil {
		o.Workers = NewWorkerPool(o.CompactionWorkers)
	}
	return o
}

// DefaultCompactionWorkers is the auto-resolved maintenance concurrency:
// half the machine's scheduler parallelism, never below two — one slot can
// always run a flush while another rewrites a deep level.
func DefaultCompactionWorkers() int {
	n := runtime.GOMAXPROCS(0) / 2
	if n < 2 {
		n = 2
	}
	return n
}

// levelTarget returns the size budget of 1-based level i.
func (o Options) levelTarget(i int) int64 {
	t := o.LevelBase
	for ; i > 1; i-- {
		t *= int64(o.LevelMultiplier)
	}
	return t
}

// MemtableRunID is the pseudo run ID used in Filter events for records
// streaming out of the (trusted, in-enclave) memtable.
const MemtableRunID uint64 = 0

// CompactionInfo describes one compaction (or flush, or bulk load) to the
// listener.
type CompactionInfo struct {
	// InputRuns lists consumed run IDs, newest first. Empty for bulk loads.
	InputRuns []uint64
	// MemtableInput reports whether the memtable is one of the inputs
	// (flush path).
	MemtableInput bool
	// OutputRun is the ID of the run being produced.
	OutputRun uint64
	// OutputLevel is the 1-based level the output run lands in.
	OutputLevel int
	// BottomMost reports whether no deeper level holds data, enabling
	// tombstone elimination (§5.4 "Handling Deletes").
	BottomMost bool
	// BulkLoad marks direct dataset loads (no verified inputs).
	BulkLoad bool
}

// TableFileInfo describes one output SSTable being created.
type TableFileInfo struct {
	FileNum   uint64
	RunID     uint64
	Level     int
	FileIndex int // sequence of this file within the output run
	NumRecs   int
}

// EventListener is the callback surface through which the eLSM
// authentication layer attaches to the engine, mirroring RocksDB's
// EventListener + CompactionFilter APIs (§5.5.3). Commit-path hooks
// (OnWALAppend, OnGroupCommit, OnMemtableFrozen) fire on committing
// goroutines. Compaction hooks fire on maintenance-job goroutines, of
// which SEVERAL may run concurrently (Options.CompactionWorkers): each job
// gets its own OnCompactionBegin..OnVersionCommitted/OnCompactionAbort
// lifecycle, distinguished by CompactionInfo.OutputRun (unique per job), so
// implementations must key any per-compaction staging state by it.
// Concurrency guarantees the engine provides:
//
//   - OnCompactionBegin and Filter fire on the job's own goroutine, with
//     Filter single-threaded per job (merge order);
//   - OnTableFileCreated may fire CONCURRENTLY for different files of the
//     SAME job (the pipelined output build) — per-job read-mostly state
//     must tolerate that;
//   - OnCompactionEnd → OnVersionInstalled → OnVersionCommitted run under
//     the engine's install lock, so across ALL jobs at most one install
//     sequence is in flight at a time ("one version install in flight");
//   - every job that fired OnCompactionBegin fires exactly one of
//     OnVersionCommitted (success) or OnCompactionAbort (failure at any
//     later point, including a failed install).
//
// State shared between the commit-path and compaction groups (e.g. a WAL
// digest chain) must be internally thread-safe. Implementations must not
// call back into the Store.
type EventListener interface {
	// OnWALAppend fires before a record is appended to the untrusted WAL,
	// letting the enclave extend its WAL digest chain (§5.3 step w1).
	OnWALAppend(rec record.Record)
	// OnGroupAppended fires once per commit group, immediately after the
	// group's records were appended (NOT yet fsynced) to the untrusted
	// log, on the appending goroutine under the engine lock. With the
	// pipelined committer the WAL chain tip runs ahead of durable storage;
	// this hook lets the authentication layer remember the chain value at
	// each group boundary so the matching OnGroupCommit can promote exactly
	// that prefix to "durable" — a seal must never fingerprint WAL records
	// an fsync has not yet confirmed, or a crash would strand the counter
	// beyond any recoverable state.
	OnGroupAppended()
	// OnGroupCommit fires once per commit group, after the group's n
	// records are durably synced to the untrusted log, in group append
	// order. The authentication layer performs its periodic monotonic-
	// counter bump here, so a group pays at most one bump — and the bump
	// always pins a durable, group-aligned WAL state (sealing mid-append
	// would bind the counter to records a crash could still tear away).
	OnGroupCommit(n int)
	// OnGroupAbandoned fires instead of OnGroupCommit when an appended
	// group's fsync FAILED: the group's durability is unknown, so the
	// listener must consume (and discard) the group's OnGroupAppended mark
	// without promoting the durable frontier — every appended group fires
	// exactly one of OnGroupCommit/OnGroupAbandoned, in append order, or
	// the mark queue would desynchronize and later promotions would pin
	// the wrong chain value.
	OnGroupAbandoned()
	// OnMemtableFrozen fires when the active memtable (and with it the
	// active WAL) is frozen for a background flush: records appended from
	// now on belong to the NEXT flush generation, so the authentication
	// layer starts a fresh digest chain for them alongside the full one.
	OnMemtableFrozen()
	// OnWALRotated fires at flush install, after the frozen logs carrying
	// the flushed records are deleted: the live WAL is now only the active
	// log, and the trusted digest chain restarts from the freeze point.
	OnWALRotated()
	// OnCompactionBegin fires before the merge starts.
	OnCompactionBegin(info CompactionInfo)
	// Filter fires for every input record in merge output order, tagged
	// with its source run (MemtableRunID for memtable records) and
	// whether the engine is dropping it (tombstone elimination or version
	// GC). Mirrors RocksDB's CompactionFilter ("Filter()" in Figure 4).
	Filter(info CompactionInfo, srcRun uint64, rec record.Record, dropped bool)
	// OnTableFileCreated fires once per output file after the merge, with
	// the file's records; the listener may return replacement records
	// (e.g. with embedded proofs), which the engine writes instead
	// ("OnTableFileCreated()" in Figure 4).
	OnTableFileCreated(info TableFileInfo, recs []record.Record) ([]record.Record, error)
	// OnCompactionEnd fires after all output files are staged but before
	// the new version is installed; returning an error aborts the
	// compaction (the authenticated-compaction input check, §5.5.2).
	OnCompactionEnd(info CompactionInfo) error
	// OnVersionInstalled fires under the engine lock, immediately after
	// the new version is durably installed; the listener swaps in its
	// staged digests here (fast, in-memory — readers resume as soon as the
	// lock drops).
	OnVersionInstalled(info CompactionInfo)
	// OnVersionCommitted fires after OnVersionInstalled, WITHOUT the
	// engine lock: the listener performs its slow durability work here
	// (counter bump, state seal and write) off the read/write paths.
	OnVersionCommitted(info CompactionInfo)
	// OnCompactionAbort fires when a job that fired OnCompactionBegin
	// fails before OnVersionInstalled (merge error, OnCompactionEnd
	// rejection, manifest write failure): the listener must discard the
	// job's staging state, including any transition seal it staged — the
	// output files are being removed, so a recovered directory can never
	// match the staged state.
	OnCompactionAbort(info CompactionInfo)
}

// NopListener ignores all events.
type NopListener struct{}

var _ EventListener = NopListener{}

// OnWALAppend implements EventListener.
func (NopListener) OnWALAppend(record.Record) {}

// OnGroupAppended implements EventListener.
func (NopListener) OnGroupAppended() {}

// OnGroupCommit implements EventListener.
func (NopListener) OnGroupCommit(int) {}

// OnGroupAbandoned implements EventListener.
func (NopListener) OnGroupAbandoned() {}

// OnMemtableFrozen implements EventListener.
func (NopListener) OnMemtableFrozen() {}

// OnWALRotated implements EventListener.
func (NopListener) OnWALRotated() {}

// OnCompactionBegin implements EventListener.
func (NopListener) OnCompactionBegin(CompactionInfo) {}

// Filter implements EventListener.
func (NopListener) Filter(CompactionInfo, uint64, record.Record, bool) {}

// OnTableFileCreated implements EventListener.
func (NopListener) OnTableFileCreated(_ TableFileInfo, recs []record.Record) ([]record.Record, error) {
	return recs, nil
}

// OnCompactionEnd implements EventListener.
func (NopListener) OnCompactionEnd(CompactionInfo) error { return nil }

// OnVersionInstalled implements EventListener.
func (NopListener) OnVersionInstalled(CompactionInfo) {}

// OnVersionCommitted implements EventListener.
func (NopListener) OnVersionCommitted(CompactionInfo) {}

// OnCompactionAbort implements EventListener.
func (NopListener) OnCompactionAbort(CompactionInfo) {}
