package lsm

import (
	"elsm/internal/record"
)

// concatIter chains the iterators of a run's tables (which are
// non-overlapping and key-ordered) into one sorted stream.
type concatIter struct {
	tables []*tableHandle
	idx    int
	cur    record.Iterator
}

var _ record.Iterator = (*concatIter)(nil)

func newRunIter(r *run) *concatIter {
	it := &concatIter{tables: r.tables}
	it.openTable(0)
	return it
}

func (it *concatIter) openTable(i int) {
	it.idx = i
	if i >= len(it.tables) {
		it.cur = nil
		return
	}
	ti := it.tables[i].table.Iter()
	ti.SeekGE(nil, record.MaxTs) // position at first record
	it.cur = ti
}

func (it *concatIter) Valid() bool { return it.cur != nil && it.cur.Valid() }

func (it *concatIter) Next() {
	if it.cur == nil {
		return
	}
	it.cur.Next()
	for it.cur != nil && !it.cur.Valid() {
		it.openTable(it.idx + 1)
	}
}

func (it *concatIter) Record() record.Record { return it.cur.Record() }

func (it *concatIter) SeekGE(key []byte, ts uint64) {
	ti := seekTable(it.tables, key, ts)
	it.openTable(ti)
	if it.cur != nil {
		it.cur.SeekGE(key, ts)
		for it.cur != nil && !it.cur.Valid() {
			it.openTable(it.idx + 1)
		}
	}
}

func (it *concatIter) Close() error {
	if it.cur != nil {
		return it.cur.Close()
	}
	return nil
}

// mergeSource tags an iterator with the run it drains (MemtableRunID for
// the memtable).
type mergeSource struct {
	runID uint64
	iter  record.Iterator
}

// mergeIter merges several sorted sources into global record order. With
// the handful of sources a compaction has, a linear minimum scan per step
// is faster than a heap.
type mergeIter struct {
	sources []mergeSource
	curSrc  int
}

func newMergeIter(sources []mergeSource) *mergeIter {
	m := &mergeIter{sources: sources, curSrc: -1}
	m.findMin()
	return m
}

func (m *mergeIter) findMin() {
	m.curSrc = -1
	var best record.Record
	for i := range m.sources {
		it := m.sources[i].iter
		if !it.Valid() {
			continue
		}
		r := it.Record()
		if m.curSrc == -1 || record.CompareRecords(r, best) < 0 {
			m.curSrc = i
			best = r
		}
	}
}

// Valid reports whether a record is available.
func (m *mergeIter) Valid() bool { return m.curSrc >= 0 }

// Record returns the current minimum record and its source run.
func (m *mergeIter) Record() (record.Record, uint64) {
	s := m.sources[m.curSrc]
	return s.iter.Record(), s.runID
}

// Next advances past the current record.
func (m *mergeIter) Next() {
	m.sources[m.curSrc].iter.Next()
	m.findMin()
}

// Close closes all sources.
func (m *mergeIter) Close() error {
	var first error
	for _, s := range m.sources {
		if err := s.iter.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
