package lsm

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"elsm/internal/obs"
	"elsm/internal/record"
)

// This file implements the pipelined cross-client group-commit pipeline.
// Concurrent Put/Delete/ApplyBatch/CommitAsync callers enqueue their
// operations; two dedicated store goroutines turn the queue into durable,
// visible state in two decoupled stages:
//
//   - the APPEND worker drains the queue into commit groups: one engine-lock
//     critical section assigns the group's contiguous timestamp range,
//     extends the enclave's WAL digest chain per record, and appends the
//     whole group (plus its COMMIT marker) to the untrusted log — then hands
//     the group to the sync stage and immediately starts on the next group;
//   - the SYNC worker fsyncs the log and completes groups in append order:
//     one fsync covers every group appended before it was issued (sync
//     absorption), then each covered group pays its OnGroupCommit
//     notification (the authentication layer's periodic counter bump),
//     is applied to the memtable, and has its waiters woken / futures
//     resolved.
//
// Because the append stage never waits on storage, the WAL append of group
// N+1 overlaps the in-flight fsync of group N — the classic two-stage WAL
// pipeline — while records still become readable only once durable (the
// memtable apply stays behind the fsync). Synchronous commits block until
// their group completes; CommitAsync returns a CommitFuture acknowledged at
// append (the timestamp is known) and resolved at durability, bounded by
// MaxAsyncCommitBacklog acknowledged-but-not-durable commits.
//
// When the memtable fills, the append worker does NOT rewrite any level: it
// drains the sync stage (the WAL rotation below must not race an in-flight
// fsync, and the frozen log's records must all be in the frozen memtable),
// freezes the memtable (a pointer swap plus one WAL rename) and schedules a
// background flush, stalling only if the previous frozen memtable is still
// being flushed (counted in Stats.FlushStallNanos).
//
// With Options.InlineCompaction the pipeline collapses to the sequential
// pre-background behaviour: the append worker itself fsyncs, applies and
// runs flush/compaction on the commit path (the ablation baseline).

// maxAutoCommitWindow caps the adaptive batching wait derived from the
// fsync EWMA: even on pathologically slow storage the deliberate batching
// delay never exceeds this.
const maxAutoCommitWindow = 2 * time.Millisecond

// CommitFuture is the handle of an asynchronous commit. It is acknowledged
// ("accepted") when the append worker has assigned the commit timestamp and
// appended the group to the WAL, and resolved ("done") when the group's
// records are durable on stable storage and visible to reads. A crash
// between acceptance and resolution loses the commit — that is the
// durability trade CommitAsync makes; Sync is the barrier that closes it.
type CommitFuture struct {
	ts           uint64
	err          error
	acceptErr    error
	acceptedDone bool
	accepted     chan struct{}
	done         chan struct{}
}

func newCommitFuture() *CommitFuture {
	return &CommitFuture{accepted: make(chan struct{}), done: make(chan struct{})}
}

// NewResolvedFuture returns a future that is already accepted and resolved —
// for stores that commit synchronously under the hood.
func NewResolvedFuture(ts uint64, err error) *CommitFuture {
	f := newCommitFuture()
	if err != nil {
		f.fail(err)
		return f
	}
	f.accept(ts)
	f.resolve(nil)
	return f
}

// finishFut completes a future from the commit path: a failure before
// acceptance closes both channels, anything later resolves normally.
func finishFut(f *CommitFuture, err error) {
	if f == nil {
		return
	}
	if !f.acceptedDone {
		f.fail(err)
		return
	}
	f.resolve(err)
}

// accept publishes the commit timestamp (append-stage acknowledgment).
// acceptedDone is read by the completion path, which is ordered after
// acceptance by the pipeline handoff, so no atomicity is needed.
func (f *CommitFuture) accept(ts uint64) {
	f.ts = ts
	f.acceptedDone = true
	close(f.accepted)
}

// resolve publishes the durability outcome.
func (f *CommitFuture) resolve(err error) {
	f.err = err
	close(f.done)
}

// fail marks a commit that never reached acceptance (e.g. store closed).
func (f *CommitFuture) fail(err error) {
	f.acceptErr = err
	f.err = err
	close(f.accepted)
	close(f.done)
}

// Ts blocks until the commit is accepted and returns its commit timestamp
// (the trusted timestamp of the commit's last record).
func (f *CommitFuture) Ts(ctx context.Context) (uint64, error) {
	select {
	case <-f.accepted:
	case <-ctxDone(ctx):
		return 0, ctx.Err()
	}
	if f.acceptErr != nil {
		return 0, f.acceptErr
	}
	return f.ts, nil
}

// Wait blocks until the commit is durable (or failed), returning the commit
// timestamp and the durability outcome.
func (f *CommitFuture) Wait(ctx context.Context) (uint64, error) {
	select {
	case <-f.done:
	case <-ctxDone(ctx):
		return 0, ctx.Err()
	}
	if f.err != nil {
		return 0, f.err
	}
	return f.ts, nil
}

// Done returns a channel closed when the commit is durable or failed.
func (f *CommitFuture) Done() <-chan struct{} { return f.done }

// Err returns the durability outcome; only valid after Done is closed.
func (f *CommitFuture) Err() error { return f.err }

// NewAggregateFuture composes child commit futures into one — the handle of
// a commit split across several independent pipelines (the shard router's
// cross-shard batches). The aggregate is accepted once EVERY child is
// accepted, publishing the highest child timestamp, and resolved once every
// child is durable; the first child failure (at either stage) is the
// aggregate outcome, reported only after all children settle so the caller
// never races a still-in-flight sibling. onSettled, if non-nil, runs
// exactly once after every child has settled and before the aggregate
// resolves — the router uses it to release its snapshot gate, so a snapshot
// taken after the gate opens observes the whole batch on every shard.
func NewAggregateFuture(children []*CommitFuture, onSettled func()) *CommitFuture {
	f := newCommitFuture()
	go func() {
		var maxTs uint64
		var acceptErr error
		for _, c := range children {
			ts, err := c.Ts(nil)
			if err != nil && acceptErr == nil {
				acceptErr = err
			}
			if ts > maxTs {
				maxTs = ts
			}
		}
		if acceptErr == nil {
			// Acknowledge as soon as the slowest child is accepted: every
			// shard has assigned timestamps and appended its group, and the
			// per-shard pipelines are already fsyncing behind us.
			f.accept(maxTs)
		}
		var resolveErr error
		for _, c := range children {
			if _, err := c.Wait(nil); err != nil && resolveErr == nil {
				resolveErr = err
			}
		}
		if onSettled != nil {
			onSettled()
		}
		if acceptErr != nil {
			f.fail(acceptErr)
			return
		}
		f.resolve(resolveErr)
	}()
	return f
}

// ctxDone tolerates nil contexts (the context-free legacy wrappers).
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// commitReq is one caller's pending commit. A request with no ops is a
// Sync durability barrier: it carries nothing, and completes once every
// group appended before it is durable.
type commitReq struct {
	ops []BatchOp
	ts  uint64 // commit timestamp (the group's last record of this request)
	err error
	fut *CommitFuture // non-nil for async commits
	// release, if set, runs when the request settles (async backlog slot
	// return) — before the future resolves, so gauges never lag callers
	// woken by Done.
	release func()
	// claimed settles the race between the append worker taking the
	// request and a cancelled waiter withdrawing it: whoever wins the CAS
	// owns the request.
	claimed atomic.Bool
	done    chan struct{}
	// enqueued stamps queue admission for the queue-wait histogram and the
	// commit-group trace. Zero when instrumentation is off.
	enqueued time.Time
}

// finish completes the request, resolving its future if any.
func (r *commitReq) finish(err error) {
	r.err = err
	if r.release != nil {
		r.release()
	}
	finishFut(r.fut, err)
	close(r.done)
}

// commitGroup is one appended group in flight between the two stages.
type commitGroup struct {
	reqs  []*commitReq
	recs  []record.Record
	total int
	ts    uint64 // the group's last record timestamp (0 for barrier-only groups)

	// Stage-timing span (zero / unused when Options.Obs is nil). The span
	// is per GROUP, so even always-on timing is amortized over the group's
	// records; start is the earliest member's queue admission.
	start          time.Time
	queueWaitNanos uint64
	appendNanos    uint64
	traced         bool // sampled into the trace ring at completion
}

// committer is the shared two-stage commit pipeline state.
type committer struct {
	mu         sync.Mutex
	cond       *sync.Cond // append worker wake-up: pending, wantFreeze or closed
	pending    []*commitReq
	wantFreeze bool // the sync stage observed a full memtable
	closed     bool
	workerWG   sync.WaitGroup

	syncMu     sync.Mutex
	syncCond   *sync.Cond // sync worker wake-up AND drain/slot broadcast
	syncq      []*commitGroup
	inflight   int // appended groups not yet completed (pipeline depth)
	syncBusy   bool
	syncClosed bool
	syncWG     sync.WaitGroup
}

// maxPipelinedGroups bounds how many appended groups may be in flight
// toward durability at once. Two is exactly the paper-roadmap pipeline —
// group N+1 appends while group N's fsync is in flight — and it is also
// what preserves group formation: while both slots are busy the queue
// accumulates, so concurrent commits coalesce into real groups (sharing
// one OnGroupCommit counter bump) instead of being picked off one by one
// by an append stage that never waits.
const maxPipelinedGroups = 2

// startCommitter launches the two pipeline workers.
func (s *Store) startCommitter() {
	gc := &s.gc
	gc.cond = sync.NewCond(&gc.mu)
	gc.syncCond = sync.NewCond(&gc.syncMu)
	s.asyncSlots = make(chan struct{}, s.opts.MaxAsyncCommitBacklog)
	gc.workerWG.Add(1)
	go s.commitWorker()
	gc.syncWG.Add(1)
	go s.syncWorker()
}

// stopCommitter fails queued commits with ErrClosed, completes in-flight
// groups durably, and waits for both workers to exit. The append worker is
// drained first so the sync worker never misses a late-enqueued group.
func (s *Store) stopCommitter() {
	gc := &s.gc
	gc.mu.Lock()
	gc.closed = true
	gc.cond.Broadcast()
	gc.mu.Unlock()
	gc.workerWG.Wait()
	gc.syncMu.Lock()
	gc.syncClosed = true
	gc.syncCond.Broadcast()
	gc.syncMu.Unlock()
	gc.syncWG.Wait()
}

// enqueueCommit adds a request to the append queue, failing fast after
// close.
func (s *Store) enqueueCommit(req *commitReq) error {
	gc := &s.gc
	if s.opts.Obs != nil {
		req.enqueued = time.Now()
	}
	gc.mu.Lock()
	defer gc.mu.Unlock()
	if gc.closed {
		return ErrClosed
	}
	gc.pending = append(gc.pending, req)
	gc.cond.Signal()
	return nil
}

// commit enqueues ops and blocks until the pipeline has durably committed
// them, returning the commit timestamp of the request's last record. A
// context cancellation while the request is still queued withdraws it (the
// write never happens); once the append worker has claimed it, the commit
// completes regardless and its outcome is returned.
func (s *Store) commit(ctx context.Context, ops []BatchOp) (uint64, error) {
	if err := ctxErr(ctx); err != nil {
		return 0, err
	}
	if len(ops) == 0 {
		return s.lastTs.Load(), nil
	}
	req := &commitReq{ops: ops, done: make(chan struct{})}
	rec := s.opts.Obs
	if rec == nil {
		return s.awaitReq(ctx, req)
	}
	start := time.Now()
	ts, err := s.awaitReq(ctx, req)
	if err == nil {
		if len(ops) == 1 {
			rec.PutE2E.ObserveSince(start)
		} else {
			rec.CommitE2E.ObserveSince(start)
		}
	}
	return ts, err
}

// Sync is the durability barrier: it blocks until every commit accepted
// before the call — synchronous or asynchronous — is durable on stable
// storage. It rides the pipeline as an empty group, so it orders after all
// prior appends and completes only once the sync stage has fsynced past
// them.
func (s *Store) Sync(ctx context.Context) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	req := &commitReq{done: make(chan struct{})} // no ops: a pure barrier
	_, err := s.awaitReq(ctx, req)
	return err
}

// awaitReq enqueues req and waits for completion or ctx cancellation.
func (s *Store) awaitReq(ctx context.Context, req *commitReq) (uint64, error) {
	if err := s.enqueueCommit(req); err != nil {
		return 0, err
	}
	select {
	case <-req.done:
		return req.ts, req.err
	case <-ctxDone(ctx):
		if req.claimed.CompareAndSwap(false, true) {
			// Still queued: withdrawn before any effect. The append
			// worker skips claimed requests when draining.
			return 0, ctx.Err()
		}
		// The append worker owns it; the commit will complete.
		<-req.done
		return req.ts, req.err
	}
}

// CommitAsync enqueues ops and returns a CommitFuture immediately. The
// future is acknowledged once the append worker has assigned the commit
// timestamp (CommitFuture.Ts) and resolved when the group is durable and
// visible (CommitFuture.Wait / Done). The context bounds only the admission
// wait against MaxAsyncCommitBacklog — once accepted into the queue the
// commit proceeds regardless.
func (s *Store) CommitAsync(ctx context.Context, ops []BatchOp) (*CommitFuture, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if len(ops) == 0 {
		return NewResolvedFuture(s.lastTs.Load(), nil), nil
	}
	// Backlog gate: a slot is held from admission to durability.
	select {
	case s.asyncSlots <- struct{}{}:
	case <-ctxDone(ctx):
		return nil, ctx.Err()
	}
	s.asyncInFlight.Add(1)
	fut := newCommitFuture()
	req := &commitReq{ops: ops, fut: fut, release: s.releaseAsyncSlot, done: make(chan struct{})}
	if err := s.enqueueCommit(req); err != nil {
		s.releaseAsyncSlot()
		return nil, err
	}
	return fut, nil
}

func (s *Store) releaseAsyncSlot() {
	s.asyncInFlight.Add(-1)
	<-s.asyncSlots
}

// resolveCommitWindow returns the batching window in effect: the configured
// duration, or — when GroupCommitWindow is AutoGroupCommitWindow — half the
// observed fsync-latency EWMA, capped. Half the fsync time is the sweet
// spot of the group-commit feedback loop: the queue keeps filling while the
// previous group's fsync is in flight anyway, so waiting longer than the
// fsync itself only adds latency, while a fraction of it lets a lone burst
// coalesce without materially delaying any commit.
func (s *Store) resolveCommitWindow() time.Duration {
	w := s.opts.GroupCommitWindow
	if w != AutoGroupCommitWindow {
		return w
	}
	w = time.Duration(s.fsyncEWMANanos.Load()) / 2
	if w > maxAutoCommitWindow {
		w = maxAutoCommitWindow
	}
	return w
}

// pendingGroupFull reports whether the queue already carries at least
// GroupCommitMaxOps operations (never true when groups are unbounded).
func (s *Store) pendingGroupFull() bool {
	max := s.opts.GroupCommitMaxOps
	if max <= 0 {
		return false
	}
	s.gc.mu.Lock()
	defer s.gc.mu.Unlock()
	n := 0
	for _, req := range s.gc.pending {
		n += len(req.ops)
		if n >= max {
			return true
		}
	}
	return false
}

// commitWorker is the append stage: it drains the queue into groups and
// appends each to the WAL, never waiting on an fsync.
func (s *Store) commitWorker() {
	gc := &s.gc
	defer gc.workerWG.Done()
	for {
		gc.mu.Lock()
		for len(gc.pending) == 0 && !gc.wantFreeze && !gc.closed {
			gc.cond.Wait()
		}
		if gc.closed {
			// Fail everything still queued (the documented Close
			// semantics: queued commits fail, in-flight groups drain).
			pending := gc.pending
			gc.pending = nil
			gc.mu.Unlock()
			for _, req := range pending {
				if req.claimed.CompareAndSwap(false, true) {
					req.finish(ErrClosed)
				}
			}
			return
		}
		freeze := gc.wantFreeze
		gc.wantFreeze = false
		gc.mu.Unlock()

		if freeze {
			// The sync stage saw the memtable fill: freeze it promptly
			// even if no further commits arrive to trigger the check.
			// Failures surface as bgErr (set inside) or on later commits.
			s.commitMu.Lock()
			_ = s.ensureMemtableRoom()
			s.commitMu.Unlock()
		}
		if w := s.resolveCommitWindow(); w > 0 && !s.pendingGroupFull() {
			// Deliberate batching window: hold the append stage briefly so
			// more concurrent commits can join this group. Skipped when
			// the queue already holds a full group.
			time.Sleep(w)
		}
		if !s.opts.InlineCompaction {
			s.waitPipelineSlot()
		}
		if batch := s.drainPending(); len(batch) > 0 {
			s.processGroup(batch)
		}
	}
}

// waitPipelineSlot blocks until fewer than maxPipelinedGroups appended
// groups are awaiting durability — the backpressure that both bounds the
// pipeline and lets the pending queue coalesce into real groups.
func (s *Store) waitPipelineSlot() {
	gc := &s.gc
	gc.syncMu.Lock()
	for gc.inflight >= maxPipelinedGroups && !gc.syncClosed {
		gc.syncCond.Wait()
	}
	gc.syncMu.Unlock()
}

// drainPending claims a bounded prefix of the queue as the next group,
// skipping requests withdrawn by context cancellation.
func (s *Store) drainPending() []*commitReq {
	gc := &s.gc
	gc.mu.Lock()
	defer gc.mu.Unlock()
	max := s.opts.GroupCommitMaxOps
	var batch []*commitReq
	n, i := 0, 0
	for ; i < len(gc.pending); i++ {
		req := gc.pending[i]
		if !req.claimed.CompareAndSwap(false, true) {
			continue // withdrawn
		}
		batch = append(batch, req)
		n += len(req.ops)
		if max > 0 && n >= max {
			i++
			break
		}
	}
	gc.pending = append(gc.pending[:0:0], gc.pending[i:]...)
	return batch
}

// processGroup runs the append stage for one group and hands it to the sync
// stage (or, in InlineCompaction mode, completes it synchronously in full).
func (s *Store) processGroup(batch []*commitReq) {
	finish := func(err error) {
		for _, req := range batch {
			req.finish(err)
		}
	}

	// Stage timing (per group, not per record: the clock reads amortize
	// over the group). Queue wait is each member's time from enqueue to
	// the append stage picking the group up.
	rec := s.opts.Obs
	var appendStart time.Time
	if rec != nil {
		appendStart = time.Now()
		for _, req := range batch {
			if !req.enqueued.IsZero() {
				rec.CommitQueueWait.ObserveDuration(appendStart.Sub(req.enqueued))
			}
		}
	}

	s.commitMu.Lock()

	if !s.opts.InlineCompaction {
		// Backpressure point: if the memtable is full, drain the pipeline,
		// freeze it and schedule the flush BEFORE appending this group, so
		// the group's records land in the fresh active log and memtable.
		if err := s.ensureMemtableRoom(); err != nil {
			s.commitMu.Unlock()
			finish(err)
			return
		}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.commitMu.Unlock()
		finish(ErrClosed)
		return
	}
	if err := s.bgErr; err != nil {
		// A background flush/compaction failed: the store fails stop
		// rather than buffering writes it can never persist.
		s.mu.Unlock()
		s.commitMu.Unlock()
		finish(fmt.Errorf("lsm: background maintenance failed: %w", err))
		return
	}
	if err := s.walErrLocked(); err != nil {
		// An earlier WAL fsync failed: refuse new commits (sticky
		// fail-stop) instead of acknowledging writes whose durability
		// the failed log can no longer promise.
		s.mu.Unlock()
		s.commitMu.Unlock()
		finish(err)
		return
	}
	total := 0
	for _, req := range batch {
		total += len(req.ops)
	}
	var recs []record.Record
	var groupTs uint64
	if total > 0 {
		last := s.lastTs.Add(uint64(total))
		ts := last - uint64(total) + 1
		groupTs = last
		recs = make([]record.Record, 0, total)
		for _, req := range batch {
			for _, op := range req.ops {
				kind := record.KindSet
				value := op.Value
				if op.Delete {
					kind = record.KindDelete
					value = nil
				}
				rec := record.Record{Key: op.Key, Ts: ts, Kind: kind, Value: value}
				s.listener.OnWALAppend(rec)
				recs = append(recs, rec)
				ts++
			}
			req.ts = ts - 1
			if len(req.ops) == 0 {
				req.ts = s.lastTs.Load()
			}
		}
		if !s.opts.DisableWAL {
			var werr error
			s.ocall(func() { werr = s.walW.AppendBatch(recs) })
			if werr != nil {
				s.mu.Unlock()
				s.commitMu.Unlock()
				finish(werr)
				return
			}
		}
		s.listener.OnGroupAppended()
	} else {
		for _, req := range batch {
			req.ts = s.lastTs.Load()
		}
	}
	s.mu.Unlock()

	// Acceptance: timestamps are assigned and the group is in the log
	// (not yet durable) — acknowledge async futures now.
	for _, req := range batch {
		if req.fut != nil {
			req.fut.accept(req.ts)
		}
	}

	group := &commitGroup{reqs: batch, recs: recs, total: total, ts: groupTs}
	if rec != nil {
		group.start = appendStart
		for _, req := range batch {
			if !req.enqueued.IsZero() && (group.start.IsZero() || req.enqueued.Before(group.start)) {
				group.start = req.enqueued
			}
		}
		group.queueWaitNanos = uint64(appendStart.Sub(group.start))
		group.appendNanos = uint64(time.Since(appendStart))
		rec.CommitAppend.Observe(group.appendNanos)
		group.traced = total > 0 && rec.ShouldTrace()
	}
	if s.opts.InlineCompaction {
		// Sequential completion under commitMu: the inline rewrite must
		// serialize with Flush/Compact exactly as the pre-pipeline commit
		// path did.
		s.completeGroupInline(group)
		s.commitMu.Unlock()
		return
	}
	// Hand off to the sync stage BEFORE releasing commitMu, so the sync
	// queue preserves append order (completion, apply and barriers all
	// rely on it).
	gc := &s.gc
	gc.syncMu.Lock()
	gc.syncq = append(gc.syncq, group)
	gc.inflight++
	gc.syncCond.Signal()
	gc.syncMu.Unlock()
	s.commitMu.Unlock()
}

// syncWorker is the sync stage: it fsyncs appended groups and completes
// them in order. All groups queued at wake-up share one fsync (sync
// absorption) — except with GroupCommitMaxOps == 1, where every group pays
// its own fsync, preserving the documented per-op-commit baseline.
func (s *Store) syncWorker() {
	gc := &s.gc
	defer gc.syncWG.Done()
	gc.syncMu.Lock()
	for {
		for len(gc.syncq) == 0 && !gc.syncClosed {
			gc.syncCond.Wait()
		}
		if len(gc.syncq) == 0 {
			gc.syncMu.Unlock()
			return
		}
		var groups []*commitGroup
		if s.opts.GroupCommitMaxOps == 1 {
			groups = gc.syncq[:1]
			gc.syncq = append(gc.syncq[:0:0], gc.syncq[1:]...)
		} else {
			groups = gc.syncq
			gc.syncq = nil
		}
		gc.syncBusy = true
		gc.syncMu.Unlock()

		s.completeGroups(groups)

		gc.syncMu.Lock()
		gc.inflight -= len(groups)
		gc.syncBusy = false
		gc.syncCond.Broadcast() // wake drainSync and pipeline-slot waiters
	}
}

// drainSync blocks until the sync stage is idle and its queue empty. The
// caller must hold commitMu (so no new groups can be appended meanwhile) —
// afterwards every accepted commit is durable and applied, and the WAL file
// has no fsync in flight, making rotation safe.
func (s *Store) drainSync() {
	gc := &s.gc
	gc.syncMu.Lock()
	for len(gc.syncq) > 0 || gc.syncBusy {
		gc.syncCond.Wait()
	}
	gc.syncMu.Unlock()
}

// completeGroups fsyncs and completes a run of appended groups in order.
func (s *Store) completeGroups(groups []*commitGroup) {
	rec := s.opts.Obs
	var fsyncNanos uint64
	anyRecs := false
	for _, g := range groups {
		if g.total > 0 {
			anyRecs = true
		}
	}
	if anyRecs && !s.opts.DisableWAL {
		var serr error
		syncStart := time.Now()
		s.ocall(func() { serr = s.walW.Sync() })
		if serr != nil {
			// The groups' durability is unknown; fail them without
			// applying (records never become visible unless durable).
			// Their WAL records may still be replayed after a crash —
			// the same exposure a failed fsync always had. Each appended
			// group must still consume its OnGroupAppended mark
			// (OnGroupAbandoned) or the listener's durable-frontier queue
			// would desynchronize from later, successful groups.
			// The failure is STICKY: fsync error semantics mean the kernel
			// may have dropped dirty pages anywhere in the log, so later
			// fsyncs succeeding would prove nothing. Every subsequent
			// commit fails until the store is reopened.
			s.setWALErr(serr)
			err := fmt.Errorf("%w: %w", ErrWALSyncFailed, serr)
			for _, g := range groups {
				if g.total > 0 {
					s.listener.OnGroupAbandoned()
				}
				for _, req := range g.reqs {
					req.finish(err)
				}
			}
			return
		}
		d := time.Since(syncStart)
		s.observeFsync(d)
		s.walSyncs.Add(1)
		if rec != nil {
			// One fsync covers every absorbed group; the histogram counts
			// it once, each group's trace reports the fsync it rode.
			fsyncNanos = uint64(d)
			rec.CommitFsync.Observe(fsyncNanos)
		}
	}

	memFull := false
	for _, g := range groups {
		var applyNanos uint64
		var resolveStart time.Time
		if g.total > 0 {
			s.groupCommits.Add(1)
			s.groupedRecords.Add(uint64(g.total))
			s.listener.OnGroupCommit(g.total)
			var applyStart time.Time
			if rec != nil {
				applyStart = time.Now()
			}
			s.mu.Lock()
			for i := range g.recs {
				s.mem.Put(g.recs[i])
			}
			s.appliedTs.Store(g.ts)
			if s.mem.ApproxBytes() >= s.opts.MemtableSize {
				memFull = true
			}
			s.mu.Unlock()
			s.notifyGroupSink(g.recs, g.ts)
			if rec != nil {
				applyNanos = uint64(time.Since(applyStart))
				rec.CommitApply.Observe(applyNanos)
			}
		}
		if rec != nil {
			resolveStart = time.Now()
		}
		for _, req := range g.reqs {
			req.finish(nil)
		}
		if rec != nil && g.total > 0 {
			resolveNanos := uint64(time.Since(resolveStart))
			rec.CommitResolve.Observe(resolveNanos)
			total := uint64(time.Since(g.start))
			slow := total >= rec.SlowThresholdNanos()
			if g.traced || slow {
				rec.Record(obs.Trace{
					Kind:       "commit-group",
					Seq:        g.ts,
					Start:      g.start,
					TotalNanos: total,
					Records:    g.total,
					Stages: []obs.Stage{
						{Name: "queue-wait", Nanos: g.queueWaitNanos},
						{Name: "append", Nanos: g.appendNanos},
						{Name: "fsync", Nanos: fsyncNanos},
						{Name: "apply", Nanos: applyNanos},
						{Name: "resolve", Nanos: resolveNanos},
					},
				}, g.traced)
			}
		}
	}
	if memFull {
		// Nudge the append worker: it owns freezes, and without this a
		// write burst followed by silence would leave the memtable full
		// until the next commit.
		gc := &s.gc
		gc.mu.Lock()
		if !gc.closed {
			gc.wantFreeze = true
			gc.cond.Signal()
		}
		gc.mu.Unlock()
	}
}

// completeGroupInline is the sequential (InlineCompaction) completion: the
// append worker itself fsyncs, applies, and runs the legacy synchronous
// flush/compaction on the commit path — the ablation baseline where a
// writer that fills the memtable pays the whole level rewrite.
func (s *Store) completeGroupInline(group *commitGroup) {
	finish := func(err error) {
		for _, req := range group.reqs {
			req.finish(err)
		}
	}
	if group.total > 0 && !s.opts.DisableWAL {
		var serr error
		syncStart := time.Now()
		s.ocall(func() { serr = s.walW.Sync() })
		if serr != nil {
			s.setWALErr(serr)             // sticky: later commits fail until reopen
			s.listener.OnGroupAbandoned() // consume the group's appended mark
			finish(fmt.Errorf("%w: %w", ErrWALSyncFailed, serr))
			return
		}
		d := time.Since(syncStart)
		s.observeFsync(d)
		s.walSyncs.Add(1)
		if rec := s.opts.Obs; rec != nil {
			rec.CommitFsync.ObserveDuration(d)
		}
	}
	var groupErr error
	if group.total > 0 {
		s.groupCommits.Add(1)
		s.groupedRecords.Add(uint64(group.total))
		s.listener.OnGroupCommit(group.total)
		s.mu.Lock()
		for i := range group.recs {
			s.mem.Put(group.recs[i])
		}
		s.appliedTs.Store(group.ts)
		if s.mem.ApproxBytes() >= s.opts.MemtableSize && s.frozen == nil {
			groupErr = s.freezeLocked()
		}
		s.mu.Unlock()
		s.notifyGroupSink(group.recs, group.ts)
	}
	if groupErr == nil {
		groupErr = s.inlineMaintenance()
	}
	finish(groupErr)
}

// observeFsync feeds the fsync-latency EWMA (α = 1/4). Only the sync stage
// (or the inline append worker) calls it, so the read-modify-write is
// race-free.
func (s *Store) observeFsync(d time.Duration) {
	old := s.fsyncEWMANanos.Load()
	if old == 0 {
		s.fsyncEWMANanos.Store(d.Nanoseconds())
		return
	}
	s.fsyncEWMANanos.Store((3*old + d.Nanoseconds()) / 4)
}

// ensureMemtableRoom is the append worker's memtable-full step (caller
// holds commitMu, NOT s.mu): if the active memtable is over its size
// target, drain the sync pipeline (every appended record must be applied
// before its log is frozen, and no fsync may be in flight across the WAL
// rotation), wait out any still-flushing predecessor — charged to
// FlushStallNanos, or to CompactionStallNanos when compaction debt, not
// flush progress, is what held the workers when the wait began — then
// freeze the memtable and schedule its flush.
func (s *Store) ensureMemtableRoom() error {
	s.mu.RLock()
	full := s.mem.ApproxBytes() >= s.opts.MemtableSize
	s.mu.RUnlock()
	if !full {
		return nil
	}
	s.drainSync()
	s.mu.Lock()
	defer s.mu.Unlock()
	// The maintenance-closed check breaks a shutdown race: a concurrent
	// Close drains the maintenance worker first, so waiting for a flush
	// here would wait forever.
	for s.frozen != nil && s.bgErr == nil && !s.closed && !s.maintenanceClosed() {
		// With multiple jobs in flight the old "whatever job the worker
		// held" attribution misfires: a running flush plus a background
		// compaction is a FLUSH wait, not compaction debt. Charge the
		// compaction bucket only when compactions hold workers and no
		// flush is actually running.
		blockedByCompaction := s.maint.flushInFlight.Load() == 0 &&
			s.maint.compactInFlight.Load() > 0
		start := time.Now()
		s.flushDone.Wait()
		d := time.Since(start).Nanoseconds()
		// FlushStallNanos is the TOTAL stall; CompactionStallNanos is the
		// subset attributable to compaction debt delaying the flush.
		s.flushStallNanos.Add(d)
		if blockedByCompaction {
			s.compactionStallNanos.Add(d)
		}
	}
	switch {
	case s.closed || s.maintenanceClosed():
		return ErrClosed
	case s.bgErr != nil:
		return s.bgErr
	case s.mem.ApproxBytes() < s.opts.MemtableSize:
		return nil
	}
	if err := s.freezeLocked(); err != nil {
		return err
	}
	return s.scheduleFlush()
}

// inlineMaintenance runs the legacy synchronous rewrite on the commit path
// (InlineCompaction mode): the append worker itself flushes the frozen
// memtable and cascades overflowing levels, exactly where the cost used to
// land. Exists for the ablation benchmark.
func (s *Store) inlineMaintenance() error {
	s.mu.RLock()
	frozen := s.frozen != nil
	s.mu.RUnlock()
	if !frozen {
		return nil
	}
	if err := s.flushFrozen(); err != nil {
		return fmt.Errorf("lsm: flush: %w", err)
	}
	return s.compactOverflowing()
}
