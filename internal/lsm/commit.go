package lsm

import (
	"fmt"
	"sync"
	"time"

	"elsm/internal/record"
)

// This file implements the cross-client group-commit pipeline. Concurrent
// Put/Delete/ApplyBatch callers enqueue their operations and one of them —
// the leader — drains the queue and commits the whole group at once: one
// grouped WAL append, one fsync, one memtable apply, one OnGroupCommit
// notification (where the authentication layer pays its periodic
// monotonic-counter bump), then every waiter is woken with its own commit
// timestamp. While a leader is inside the fsync the queue refills, so the
// natural group size grows with storage latency and offered load — the
// classic group-commit feedback loop — without any artificial delay.
//
// The leader role is a capacity-1 token channel: every enqueued request
// waits on "my result is ready OR I can become leader", so there is always
// a leader when work is pending, requests are never stranded, and no
// background goroutine needs a lifecycle.
//
// When the memtable fills, the leader does NOT rewrite any level here: it
// freezes the memtable (a pointer swap plus one WAL rename) and schedules a
// background flush, stalling only if the previous frozen memtable is still
// being flushed (counted in Stats.FlushStallNanos — the signature of
// flushes falling behind the write rate).

// maxAutoCommitWindow caps the adaptive leader wait derived from the fsync
// EWMA: even on pathologically slow storage the deliberate batching delay
// never exceeds this.
const maxAutoCommitWindow = 2 * time.Millisecond

// commitReq is one caller's pending commit.
type commitReq struct {
	ops  []BatchOp
	ts   uint64 // commit timestamp (the group's last record of this request)
	err  error
	done chan struct{}
}

// committer is the shared commit queue.
type committer struct {
	mu      sync.Mutex
	pending []*commitReq
	token   chan struct{} // capacity 1: the leader role
}

// commit enqueues ops and blocks until some leader (possibly this caller)
// has durably committed them, returning the commit timestamp of the
// request's last record.
func (s *Store) commit(ops []BatchOp) (uint64, error) {
	if len(ops) == 0 {
		return s.lastTs.Load(), nil
	}
	req := &commitReq{ops: ops, done: make(chan struct{})}
	s.gc.mu.Lock()
	s.gc.pending = append(s.gc.pending, req)
	s.gc.mu.Unlock()
	for {
		select {
		case <-req.done:
			return req.ts, req.err
		case s.gc.token <- struct{}{}:
			select {
			case <-req.done:
				// A previous leader already committed us; hand the token
				// straight back instead of leading an empty round.
				<-s.gc.token
				return req.ts, req.err
			default:
			}
			if w := s.resolveCommitWindow(); w > 0 && !s.pendingGroupFull() {
				// Deliberate batching window: hold the leader role briefly
				// so more concurrent commits can join this group. Skipped
				// when the queue already holds a full group — sleeping
				// could not grow it further.
				time.Sleep(w)
			}
			s.commitPending()
			<-s.gc.token
			// Our own request was in the queue, so unless GroupCommitMaxOps
			// split it into a later group it is done now; if not, loop and
			// either wait or lead again.
		}
	}
}

// resolveCommitWindow returns the leader batching window in effect: the
// configured duration, or — when GroupCommitWindow is AutoGroupCommitWindow
// — half the observed fsync-latency EWMA, capped. Half the fsync time is
// the sweet spot of the group-commit feedback loop: the queue keeps filling
// while the previous group's fsync is in flight anyway, so waiting longer
// than the fsync itself only adds latency, while a fraction of it lets a
// lone-leader burst coalesce without materially delaying any commit.
func (s *Store) resolveCommitWindow() time.Duration {
	w := s.opts.GroupCommitWindow
	if w != AutoGroupCommitWindow {
		return w
	}
	w = time.Duration(s.fsyncEWMANanos.Load()) / 2
	if w > maxAutoCommitWindow {
		w = maxAutoCommitWindow
	}
	return w
}

// pendingGroupFull reports whether the queue already carries at least
// GroupCommitMaxOps operations (never true when groups are unbounded).
func (s *Store) pendingGroupFull() bool {
	max := s.opts.GroupCommitMaxOps
	if max <= 0 {
		return false
	}
	s.gc.mu.Lock()
	defer s.gc.mu.Unlock()
	n := 0
	for _, req := range s.gc.pending {
		n += len(req.ops)
		if n >= max {
			return true
		}
	}
	return false
}

// commitPending drains (a bounded prefix of) the queue and commits it as
// one group. Caller holds the leader token.
func (s *Store) commitPending() {
	s.gc.mu.Lock()
	batch := s.gc.pending
	if max := s.opts.GroupCommitMaxOps; max > 0 {
		n := 0
		for i, req := range batch {
			n += len(req.ops)
			if n >= max && i+1 < len(batch) {
				batch = batch[:i+1]
				break
			}
		}
	}
	s.gc.pending = s.gc.pending[len(batch):]
	s.gc.mu.Unlock()
	if len(batch) > 0 {
		s.commitGroup(batch)
	}
}

// commitGroup durably commits one group. Caller holds the leader token.
//
// Phases: (1) under mu — assign the group's contiguous timestamp range,
// extend the enclave's WAL digest chain per record, and append the whole
// group (plus its COMMIT marker) to the untrusted log in one OCall;
// (2) outside mu but under commitMu — fsync the log, so concurrent
// readers never wait on storage; (3) under mu again — apply the group to
// the memtable, so records become readable only once durable and a failed
// fsync never leaves phantom writes visible; (4) notify the listener once
// for the whole group and wake every waiter with its timestamp. If the
// apply filled the memtable, the leader freezes it and hands the flush to
// the maintenance worker — the commit path never performs a level rewrite
// (unless Options.InlineCompaction deliberately restores that behaviour).
func (s *Store) commitGroup(batch []*commitReq) {
	finish := func(err error) {
		for _, req := range batch {
			req.err = err
			close(req.done)
		}
	}

	s.commitMu.Lock()
	defer s.commitMu.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		finish(ErrClosed)
		return
	}
	if err := s.bgErr; err != nil {
		// A background flush/compaction failed: the store fails stop
		// rather than buffering writes it can never persist.
		s.mu.Unlock()
		finish(fmt.Errorf("lsm: background maintenance failed: %w", err))
		return
	}
	total := 0
	for _, req := range batch {
		total += len(req.ops)
	}
	last := s.lastTs.Add(uint64(total))
	ts := last - uint64(total) + 1
	recs := make([]record.Record, 0, total)
	for _, req := range batch {
		for _, op := range req.ops {
			kind := record.KindSet
			value := op.Value
			if op.Delete {
				kind = record.KindDelete
				value = nil
			}
			rec := record.Record{Key: op.Key, Ts: ts, Kind: kind, Value: value}
			s.listener.OnWALAppend(rec)
			recs = append(recs, rec)
			ts++
		}
		req.ts = ts - 1
	}
	if !s.opts.DisableWAL {
		var werr error
		s.ocall(func() { werr = s.walW.AppendBatch(recs) })
		if werr != nil {
			s.mu.Unlock()
			finish(werr)
			return
		}
	}
	s.mu.Unlock()

	// The fsync runs without the engine lock: readers proceed, and commits
	// arriving meanwhile queue up to form the next group (commitMu keeps
	// the WAL writer stable until we are done).
	if !s.opts.DisableWAL {
		var serr error
		syncStart := time.Now()
		s.ocall(func() { serr = s.walW.Sync() })
		if serr != nil {
			finish(fmt.Errorf("lsm: wal sync: %w", serr))
			return
		}
		s.observeFsync(time.Since(syncStart))
		s.walSyncs.Add(1)
	}
	s.groupCommits.Add(1)
	s.groupedRecords.Add(uint64(total))
	s.listener.OnGroupCommit(total)

	var groupErr error
	s.mu.Lock()
	for i := range recs {
		s.mem.Put(recs[i])
	}
	if s.mem.ApproxBytes() >= s.opts.MemtableSize {
		groupErr = s.handleFullMemtableLocked()
	}
	s.mu.Unlock()
	if groupErr == nil && s.opts.InlineCompaction {
		groupErr = s.inlineMaintenance()
	}
	finish(groupErr)
}

// observeFsync feeds the fsync-latency EWMA (α = 1/4). Leaders are
// serialized by commitMu, so the read-modify-write is race-free.
func (s *Store) observeFsync(d time.Duration) {
	old := s.fsyncEWMANanos.Load()
	if old == 0 {
		s.fsyncEWMANanos.Store(d.Nanoseconds())
		return
	}
	s.fsyncEWMANanos.Store((3*old + d.Nanoseconds()) / 4)
}

// handleFullMemtableLocked is the leader's memtable-full step (caller holds
// commitMu and mu): freeze the active table and schedule its flush. If the
// previous frozen table is still mid-flush the leader must wait — there is
// nowhere for writes to go — and the wait is charged to FlushStallNanos,
// or to CompactionStallNanos when a level compaction was occupying the
// worker at the time (compaction debt delaying the flush).
func (s *Store) handleFullMemtableLocked() error {
	if s.opts.InlineCompaction {
		// Inline mode: the caller runs the rewrite synchronously after
		// releasing mu (inlineMaintenance), retrying a leftover frozen
		// table from a previously failed attempt — never wait here, there
		// is no background flush coming.
		if s.frozen != nil {
			return nil
		}
		return s.freezeLocked()
	}
	// The maintenance-closed check breaks a shutdown race: a concurrent
	// Close drains the worker before it can take commitMu, so a leader
	// that would wait for a flush here would wait forever (and Close would
	// wait forever on commitMu behind it).
	for s.frozen != nil && s.bgErr == nil && !s.closed && !s.maintenanceClosed() {
		blocking := s.maint.current.Load()
		start := time.Now()
		s.flushDone.Wait()
		d := time.Since(start).Nanoseconds()
		// FlushStallNanos is the TOTAL stall; CompactionStallNanos is the
		// subset where a compaction occupied the worker when the wait
		// began (compaction debt delaying the flush).
		s.flushStallNanos.Add(d)
		if blocking == jobCompact {
			s.compactionStallNanos.Add(d)
		}
	}
	switch {
	case s.closed || s.maintenanceClosed():
		return ErrClosed
	case s.bgErr != nil:
		return s.bgErr
	case s.mem.ApproxBytes() < s.opts.MemtableSize:
		return nil
	}
	if err := s.freezeLocked(); err != nil {
		return err
	}
	return s.scheduleFlush()
}

// inlineMaintenance runs the legacy synchronous rewrite on the commit path
// (InlineCompaction mode): the leader itself flushes the frozen memtable
// and cascades overflowing levels, under commitMu, exactly where the cost
// used to land. Exists for the ablation benchmark.
func (s *Store) inlineMaintenance() error {
	s.mu.RLock()
	frozen := s.frozen != nil
	s.mu.RUnlock()
	if !frozen {
		return nil
	}
	if err := s.flushFrozen(); err != nil {
		return fmt.Errorf("lsm: flush: %w", err)
	}
	return s.compactOverflowing()
}
