package lsm

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"time"

	"elsm/internal/costmodel"
	"elsm/internal/record"
	"elsm/internal/sstable"
	"elsm/internal/vfs"
)

// This file implements flush and level compaction as three-phase jobs
// executed by the maintenance worker pool (scheduler.go):
//
//  1. snapshot — a brief s.mu critical section collects the immutable
//     inputs: the frozen memtable and the input runs, pinned by reference
//     count so no concurrent deletion can touch their files;
//  2. merge/build/hash — the entire level rewrite (merge iteration,
//     retention filtering, SSTable builds, the listener's Merkle
//     reconstruction and output-tree hashing) runs WITHOUT the engine
//     lock: readers, the commit pipeline, and OTHER maintenance jobs on
//     disjoint level pairs proceed at full speed. Within one job the
//     output files are built by a bounded flusher pool (bubt-style),
//     overlapping enclave hashing with file writes;
//  3. install — installMu serializes the authenticated verify
//     (OnCompactionEnd) → level-vector swap → manifest persist →
//     OnVersionCommitted window across concurrent jobs, so exactly one
//     version transition (and one staged transition seal) is in flight at
//     a time; s.mu is re-taken only for the swap itself.
//
// Every job fires exactly one of OnVersionCommitted (success) or
// OnCompactionAbort (any failure after OnCompactionBegin), so the
// listener's per-job rebuild context is always reclaimed.
//
// With Options.InlineCompaction the same phases run synchronously on the
// commit path under commitMu — the pre-background behaviour, kept for the
// ablation benchmark.

// flushFrozen persists the frozen memtable (§5.3 step w2). In normal
// (leveled) mode it is merged with level 1's runs; with compaction disabled
// each flush prepends a fresh immutable run to level 1 instead.
func (s *Store) flushFrozen() error {
	// Phase 1: snapshot the immutable inputs.
	rec := s.opts.Obs
	var phaseStart time.Time
	if rec != nil {
		phaseStart = time.Now()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if err := s.bgErr; err != nil {
		s.mu.Unlock()
		return err
	}
	frozen := s.frozen
	if frozen == nil {
		s.mu.Unlock()
		return nil
	}
	outputRunID := s.nextRunID
	s.nextRunID++
	info := CompactionInfo{MemtableInput: true, OutputRun: outputRunID, OutputLevel: 1}
	var inputs []*run
	if s.opts.DisableCompaction {
		info.BottomMost = s.deepestDataLevelLocked() == 0
	} else {
		info.BottomMost = s.deepestDataLevelLocked() <= 1
		inputs = append([]*run(nil), s.levels[1]...)
		for _, r := range inputs {
			info.InputRuns = append(info.InputRuns, r.id)
			s.retainRunLocked(r)
		}
	}
	frozenWALs := append([]string(nil), s.frozenWALs...)
	s.mu.Unlock()
	if rec != nil {
		rec.CompactSnapshot.ObserveSince(phaseStart)
		phaseStart = time.Now()
	}

	// Phase 2: merge, build and hash — lock-free.
	sources := []mergeSource{{runID: MemtableRunID, iter: frozen.Iter()}}
	for _, r := range inputs {
		sources = append(sources, mergeSource{runID: r.id, iter: newRunIter(r)})
	}
	newRun, err := s.runCompaction(info, sources, inputs)
	if err != nil {
		s.releaseRunRefs(inputs, 1) // job pins only: the version still owns them
		return err
	}
	if rec != nil {
		rec.CompactMerge.ObserveSince(phaseStart)
		phaseStart = time.Now()
	}

	// Phase 3: verify and install the new version. installMu serializes the
	// End→install→Committed window across concurrent jobs.
	s.installMu.Lock()
	if err := s.listener.OnCompactionEnd(info); err != nil {
		s.listener.OnCompactionAbort(info)
		s.installMu.Unlock()
		s.releaseRunRefs(inputs, 1) // job pins only: the version still owns them
		s.removeFiles(newRun.fileNums())
		return fmt.Errorf("%w: %v", ErrAborted, err)
	}
	s.mu.Lock()
	oldL1 := s.levels[1]
	if s.opts.DisableCompaction {
		s.levels[1] = append([]*run{newRun}, oldL1...)
	} else {
		s.levels[1] = []*run{newRun}
	}
	// The manifest being installed accounts for every record in the frozen
	// logs about to be deleted: advance the WAL watermark in the SAME
	// manifest write, so a crash before the deletions finish cannot make
	// recovery replay (double-apply) records the new run already holds.
	oldFlushedSeq := s.flushedWALSeq
	for _, name := range frozenWALs {
		if seq, ok := frozenWALSeq(name); ok && seq >= s.flushedWALSeq {
			s.flushedWALSeq = seq + 1
		}
	}
	if err := s.persistManifestLocked(); err != nil {
		s.levels[1] = oldL1
		s.flushedWALSeq = oldFlushedSeq
		s.mu.Unlock()
		s.listener.OnCompactionAbort(info)
		s.installMu.Unlock()
		s.releaseRunRefs(inputs, 1) // job pins only: the version still owns them
		s.removeFiles(newRun.fileNums())
		return err
	}
	s.retireRunsLocked(inputs)
	// The flushed records are durably in the new run: delete the frozen
	// logs that carried them and swap the enclave's WAL digest to the
	// active log's chain.
	s.frozenWALs = s.frozenWALs[len(frozenWALs):]
	if len(frozenWALs) > 0 {
		s.ocall(func() {
			for _, name := range frozenWALs {
				_ = s.fs.Remove(name)
			}
		})
	}
	if !s.opts.DisableWAL {
		s.listener.OnWALRotated()
	}
	s.frozen = nil
	s.flushes.Add(1)
	s.bytesFlushed.Add(uint64(newRun.bytes))
	s.refreshLevelBytesLocked()
	s.listener.OnVersionInstalled(info)
	s.flushDone.Broadcast()
	s.mu.Unlock()

	frozen.Release()
	s.listener.OnVersionCommitted(info)
	s.installMu.Unlock()
	if rec != nil {
		rec.CompactInstall.ObserveSince(phaseStart)
	}
	s.releaseRunRefs(inputs, 2) // retired version reference + job pin
	if !s.opts.InlineCompaction {
		s.scheduleOverflowCompactions()
	}
	return nil
}

func (s *Store) levelBytesLocked(lvl int) int64 {
	var total int64
	for _, r := range s.levels[lvl] {
		total += r.bytes
	}
	return total
}

// deepestDataLevelLocked returns the deepest level holding data (0 if none).
func (s *Store) deepestDataLevelLocked() int {
	for lvl := len(s.levels) - 1; lvl >= 1; lvl-- {
		for _, r := range s.levels[lvl] {
			if len(r.tables) > 0 {
				return lvl
			}
		}
	}
	return 0
}

// Compact merges level lvl into level lvl+1 (the paper's
// COMPACTION(Li, Li+1), §5.3), synchronously: it returns once the rewrite
// has installed (routed through the maintenance worker so it serializes
// with background jobs).
func (s *Store) Compact(lvl int) error {
	if lvl < 1 || lvl >= s.opts.MaxLevels {
		return fmt.Errorf("lsm: compact: level %d out of range [1,%d)", lvl, s.opts.MaxLevels)
	}
	if s.opts.InlineCompaction {
		s.commitMu.Lock()
		defer s.commitMu.Unlock()
		return s.compactLevel(lvl, false)
	}
	return s.runSync(jobCompact, lvl, nil)
}

// compactOverflowing synchronously compacts levels over their size target
// until none is (the inline-mode cascade; caller holds commitMu).
func (s *Store) compactOverflowing() error {
	return s.cascadeOverflow(func(lvl int) error {
		return s.compactLevel(lvl, false)
	})
}

// compactLevel merges all runs of lvl and lvl+1 into a single new run at
// lvl+1 using the three-phase protocol. Runs on the maintenance worker (or
// on the commit path under commitMu in inline mode).
func (s *Store) compactLevel(lvl int, background bool) error {
	if lvl < 1 || lvl >= s.opts.MaxLevels {
		return fmt.Errorf("lsm: compact: level %d out of range [1,%d)", lvl, s.opts.MaxLevels)
	}
	// Phase 1: snapshot and pin the input runs.
	rec := s.opts.Obs
	var phaseStart time.Time
	if rec != nil {
		phaseStart = time.Now()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if err := s.bgErr; err != nil {
		s.mu.Unlock()
		return err
	}
	if background && s.levelBytesLocked(lvl) <= s.opts.levelTarget(lvl) {
		// The overflow that queued this job was already resolved by a
		// synchronous Compact/Flush-settle; re-merging a healthy level
		// would only burn write amplification — and surprise callers who
		// were promised a quiescent store after Flush returned.
		s.mu.Unlock()
		return nil
	}
	inputs := append(append([]*run(nil), s.levels[lvl]...), s.levels[lvl+1]...)
	if len(inputs) == 0 {
		s.mu.Unlock()
		return nil
	}
	outputRunID := s.nextRunID
	s.nextRunID++
	info := CompactionInfo{
		OutputRun:   outputRunID,
		OutputLevel: lvl + 1,
		BottomMost:  s.deepestDataLevelLocked() <= lvl+1,
	}
	for _, r := range inputs {
		info.InputRuns = append(info.InputRuns, r.id)
		s.retainRunLocked(r)
	}
	s.mu.Unlock()
	if rec != nil {
		rec.CompactSnapshot.ObserveSince(phaseStart)
		phaseStart = time.Now()
	}

	// Phase 2: merge, build and hash — lock-free.
	var sources []mergeSource
	for _, r := range inputs {
		sources = append(sources, mergeSource{runID: r.id, iter: newRunIter(r)})
	}
	newRun, err := s.runCompaction(info, sources, inputs)
	if err != nil {
		s.releaseRunRefs(inputs, 1) // job pins only: the version still owns them
		return err
	}
	if rec != nil {
		rec.CompactMerge.ObserveSince(phaseStart)
		phaseStart = time.Now()
	}

	// Phase 3: verify and install. installMu serializes the
	// End→install→Committed window across concurrent jobs.
	s.installMu.Lock()
	if err := s.listener.OnCompactionEnd(info); err != nil {
		s.listener.OnCompactionAbort(info)
		s.installMu.Unlock()
		s.releaseRunRefs(inputs, 1) // job pins only: the version still owns them
		s.removeFiles(newRun.fileNums())
		return fmt.Errorf("%w: %v", ErrAborted, err)
	}
	s.mu.Lock()
	oldUpper, oldLower := s.levels[lvl], s.levels[lvl+1]
	s.levels[lvl] = nil
	s.levels[lvl+1] = []*run{newRun}
	if err := s.persistManifestLocked(); err != nil {
		s.levels[lvl], s.levels[lvl+1] = oldUpper, oldLower
		s.mu.Unlock()
		s.listener.OnCompactionAbort(info)
		s.installMu.Unlock()
		s.releaseRunRefs(inputs, 1) // job pins only: the version still owns them
		s.removeFiles(newRun.fileNums())
		return err
	}
	s.retireRunsLocked(inputs)
	s.compactions.Add(1)
	s.bytesCompacted.Add(uint64(newRun.bytes))
	if background {
		s.backgroundCompactions.Add(1)
	}
	s.refreshLevelBytesLocked()
	s.listener.OnVersionInstalled(info)
	s.mu.Unlock()

	s.listener.OnVersionCommitted(info)
	s.installMu.Unlock()
	if rec != nil {
		rec.CompactInstall.ObserveSince(phaseStart)
	}
	s.releaseRunRefs(inputs, 2) // retired version reference + job pin
	if !s.opts.InlineCompaction {
		s.scheduleOverflowCompactions()
	}
	return nil
}

// runCompaction executes the merge: streams inputs through the listener's
// Filter hook, applies the version/tombstone retention policy, splits the
// output into table files, and builds them with a bounded flusher pool
// (each file routed through OnTableFileCreated so the authentication layer
// can embed proofs). Runs entirely without the engine lock: its inputs are
// immutable (a frozen memtable and pinned runs). The caller verifies via
// OnCompactionEnd under installMu before installing; on any error returned
// here, OnCompactionAbort has already been fired.
func (s *Store) runCompaction(info CompactionInfo, sources []mergeSource, inputs []*run) (*run, error) {
	// Step m1: bulk-load input files into untrusted memory for streaming.
	var pinnedFiles []uint64
	for _, r := range inputs {
		pinnedFiles = append(pinnedFiles, r.fileNums()...)
	}
	s.pinViews(pinnedFiles)
	defer s.unpinViews(pinnedFiles)

	s.listener.OnCompactionBegin(info)

	m := newMergeIter(sources)
	defer m.Close()

	// Step m2: merge with retention policy, streaming every input record
	// through Filter (the authenticated compaction rebuilds input and
	// output Merkle trees from this stream).
	var (
		fileRecs [][]record.Record
		cur      []record.Record
		curBytes int
		curKey   []byte
		haveKey  bool
		kept     int
		dropRest bool
	)
	for m.Valid() {
		rec, src := m.Record()
		if !haveKey || !bytes.Equal(rec.Key, curKey) {
			curKey = append(curKey[:0], rec.Key...)
			haveKey = true
			kept = 0
			dropRest = false
		}
		drop := false
		switch {
		case dropRest:
			drop = true
		case rec.Kind == record.KindDelete && s.opts.KeepVersions > 0:
			// Version GC enabled: a tombstone shadows all older
			// versions; at the bottom level the tombstone itself is
			// also dropped (§5.4). With KeepVersions == 0 the store
			// retains full history — tombstones and shadowed versions
			// stay so historical GET(k, tsq) remains answerable.
			dropRest = true
			if info.BottomMost {
				drop = true
			} else {
				kept++
			}
		default:
			if s.opts.KeepVersions > 0 && kept >= s.opts.KeepVersions {
				drop = true
			} else {
				kept++
			}
		}
		s.listener.Filter(info, src, rec, drop)
		if drop {
			s.recordsDropped.Add(1)
		} else {
			cur = append(cur, rec)
			curBytes += rec.Size()
			if curBytes >= s.opts.TableFileSize {
				fileRecs = append(fileRecs, cur)
				cur = nil
				curBytes = 0
			}
		}
		m.Next()
	}
	if len(cur) > 0 {
		fileRecs = append(fileRecs, cur)
	}

	// Write output files, bubt-style: each output SSTable is independent
	// once the merge has partitioned the stream, so build/hash/write them
	// with a bounded flusher pool, overlapping enclave hashing with file
	// I/O. File numbers are pre-assigned so the on-disk order matches the
	// key order regardless of completion order. Per-record proofs are
	// embedded against the finalized whole-stream output tree, which the
	// listener builds once (OnTableFileCreated may fire concurrently for
	// files of the same job — the listener's per-job context handles that).
	handles := make([]*tableHandle, len(fileRecs))
	errs := make([]error, len(fileRecs))
	fileNums := make([]uint64, len(fileRecs))
	for i := range fileRecs {
		fileNums[i] = s.nextFileNum.Add(1) - 1
	}
	if len(fileRecs) <= 1 {
		for fi, recs := range fileRecs {
			handles[fi], errs[fi] = s.writeRunFile(info, fi, fileNums[fi], recs)
		}
	} else {
		flushers := s.opts.CompactionWorkers
		if flushers > len(fileRecs) {
			flushers = len(fileRecs)
		}
		sem := make(chan struct{}, flushers)
		var wg sync.WaitGroup
		for fi := range fileRecs {
			wg.Add(1)
			sem <- struct{}{}
			go func(fi int) {
				defer func() { <-sem; wg.Done() }()
				handles[fi], errs[fi] = s.writeRunFile(info, fi, fileNums[fi], fileRecs[fi])
			}(fi)
		}
		wg.Wait()
	}
	newRun := &run{id: info.OutputRun}
	newRun.refs.Store(1) // the version reference, effective at install
	for _, err := range errs {
		if err != nil {
			var written []uint64
			for _, th := range handles {
				if th != nil {
					written = append(written, th.meta.FileNum)
				}
			}
			s.removeFiles(written)
			s.listener.OnCompactionAbort(info)
			return nil, err
		}
	}
	for _, th := range handles {
		newRun.tables = append(newRun.tables, th)
		newRun.bytes += th.meta.Size
		newRun.entries += th.meta.NumEntries
	}
	return newRun, nil
}

// memBufPool recycles the in-enclave staging buffers used by parallel
// flushers; the buffer contents are fully copied out during the flush
// OCall, so a buffer can be reused as soon as writeRunFile returns.
var memBufPool = sync.Pool{New: func() any { return &memBuf{} }}

// writeRunFile builds one output SSTable. The records are first offered to
// the listener, which may rewrite them (embedding proofs); the table is
// built inside the enclave and flushed to the untrusted FS in one OCall
// (step m3), charging the boundary copy for the file bytes. Safe to call
// concurrently for distinct files of the same job (fileNum is pre-assigned
// by the caller so output order is deterministic).
func (s *Store) writeRunFile(info CompactionInfo, fileIdx int, fileNum uint64, recs []record.Record) (*tableHandle, error) {
	tfi := TableFileInfo{
		FileNum:   fileNum,
		RunID:     info.OutputRun,
		Level:     info.OutputLevel,
		FileIndex: fileIdx,
		NumRecs:   len(recs),
	}
	recs, err := s.listener.OnTableFileCreated(tfi, recs)
	if err != nil {
		return nil, err
	}

	// Build in enclave memory first (pooled buffer: parallel flushers churn
	// one table-sized allocation per file otherwise).
	buf := memBufPool.Get().(*memBuf)
	defer func() {
		buf.data = buf.data[:0]
		memBufPool.Put(buf)
	}()
	b := sstable.NewBuilder(buf, sstable.BuilderOptions{
		BlockSize: s.opts.BlockSize,
		Transform: s.opts.Transform,
		FileNum:   fileNum,
	})
	for _, rec := range recs {
		if err := b.Add(rec); err != nil {
			return nil, err
		}
	}
	meta, err := b.Finish()
	if err != nil {
		return nil, err
	}

	// Step m3: one world switch to flush the file to the untrusted FS.
	name := tableName(fileNum)
	costmodel.ChargeBytes(s.enclave.Params().Cost.EnclaveCopyPerKB, len(buf.data))
	var werr error
	var f vfs.File
	s.ocall(func() {
		f, werr = s.fs.Create(name)
		if werr != nil {
			return
		}
		if _, werr = f.Append(buf.data); werr != nil {
			return
		}
		werr = f.Sync()
	})
	if werr != nil {
		return nil, fmt.Errorf("lsm: write table %s: %w", name, werr)
	}

	of := &openFile{file: f}
	if s.opts.MmapReads {
		s.ocall(func() { of.view = f.Bytes() })
	}
	s.fileMu.Lock()
	s.files[fileNum] = of
	s.fileMu.Unlock()

	t, err := sstable.Open(f, fileNum, &storeSource{s: s})
	if err != nil {
		return nil, err
	}
	of.metaRegion = s.enclave.Alloc(t.MetadataBytes())
	return &tableHandle{meta: meta, table: t, name: name}, nil
}

// removeFiles closes and deletes table files (guarded by fileMu, not s.mu:
// by the time a run's files are removed, no version and no pin references
// it).
func (s *Store) removeFiles(fileNums []uint64) {
	for _, fn := range fileNums {
		s.fileMu.Lock()
		of, ok := s.files[fn]
		delete(s.files, fn)
		s.fileMu.Unlock()
		if !ok {
			continue
		}
		if s.opts.Cache != nil {
			s.opts.Cache.DropFile(fn)
		}
		if of.metaRegion != nil {
			of.metaRegion.Free()
		}
		name := tableName(fn)
		s.ocall(func() {
			of.file.Close()
			_ = s.fs.Remove(name)
		})
	}
}

// BulkLoad populates an empty store with pre-sorted records, placing them
// directly in the deepest level that fits. This mirrors YCSB's load phase
// at scale without paying per-record write amplification; the records
// stream through the same listener events as a compaction (with
// CompactionInfo.BulkLoad set), so the output is fully authenticated. It
// routes through the maintenance worker, serializing with any background
// flush/compaction.
func (s *Store) BulkLoad(recs []record.Record) error {
	var maxTs uint64
	var total int64
	for i := range recs {
		if i > 0 && record.CompareRecords(recs[i-1], recs[i]) >= 0 {
			return fmt.Errorf("%w: index %d", ErrBadBulkLoad, i)
		}
		total += int64(recs[i].Size())
		if recs[i].Ts > maxTs {
			maxTs = recs[i].Ts
		}
	}
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.drainSync() // the empty-store check must not race in-flight commit applies
	if s.opts.InlineCompaction {
		return s.bulkLoadJob(recs, total, maxTs)
	}
	return s.runSync(jobFunc, 0, func() error { return s.bulkLoadJob(recs, total, maxTs) })
}

// bulkLoadJob is the worker-side bulk load (caller holds commitMu, so no
// commits interleave with the empty-store check).
func (s *Store) bulkLoadJob(recs []record.Record, total int64, maxTs uint64) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.mem.Count() > 0 || s.frozen != nil || s.deepestDataLevelLocked() > 0 {
		s.mu.Unlock()
		return fmt.Errorf("lsm: bulk load requires an empty store")
	}
	lvl := 1
	for lvl < s.opts.MaxLevels && s.opts.levelTarget(lvl) < total {
		lvl++
	}
	outputRunID := s.nextRunID
	s.nextRunID++
	info := CompactionInfo{
		OutputRun:   outputRunID,
		OutputLevel: lvl,
		BottomMost:  true,
		BulkLoad:    true,
	}
	s.mu.Unlock()

	sources := []mergeSource{{runID: MemtableRunID, iter: newSliceIter(recs)}}
	newRun, err := s.runCompaction(info, sources, nil)
	if err != nil {
		return err
	}

	// Verify and install under installMu: bulk load is a version transition
	// like any other, so it serializes with concurrent background installs.
	s.installMu.Lock()
	if err := s.listener.OnCompactionEnd(info); err != nil {
		s.listener.OnCompactionAbort(info)
		s.installMu.Unlock()
		s.removeFiles(newRun.fileNums())
		return fmt.Errorf("%w: %v", ErrAborted, err)
	}
	s.mu.Lock()
	// Place the run by its ACTUAL size: the listener may have inflated
	// records (embedded proofs are several times the record size), and a
	// run installed over its level target would trigger a pathological
	// full-run merge on the very next flush.
	for lvl < s.opts.MaxLevels && s.opts.levelTarget(lvl) < newRun.bytes {
		lvl++
	}
	s.levels[lvl] = []*run{newRun}
	if maxTs > s.lastTs.Load() {
		s.lastTs.Store(maxTs)
	}
	if maxTs > s.appliedTs.Load() {
		s.appliedTs.Store(maxTs)
	}
	if err := s.persistManifestLocked(); err != nil {
		s.levels[lvl] = nil
		s.mu.Unlock()
		s.listener.OnCompactionAbort(info)
		s.installMu.Unlock()
		s.removeFiles(newRun.fileNums())
		return err
	}
	s.refreshLevelBytesLocked()
	s.listener.OnVersionInstalled(info)
	s.mu.Unlock()
	s.listener.OnVersionCommitted(info)
	s.installMu.Unlock()
	return nil
}

// sliceIter iterates a pre-sorted record slice.
type sliceIter struct {
	recs []record.Record
	pos  int
}

var _ record.Iterator = (*sliceIter)(nil)

func newSliceIter(recs []record.Record) *sliceIter { return &sliceIter{recs: recs} }

func (it *sliceIter) Valid() bool           { return it.pos < len(it.recs) }
func (it *sliceIter) Next()                 { it.pos++ }
func (it *sliceIter) Record() record.Record { return it.recs[it.pos] }
func (it *sliceIter) Close() error          { return nil }

func (it *sliceIter) SeekGE(key []byte, ts uint64) {
	lo, hi := 0, len(it.recs)
	for lo < hi {
		mid := (lo + hi) / 2
		if record.Compare(it.recs[mid].Key, it.recs[mid].Ts, key, ts) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	it.pos = lo
}

// memBuf is an in-enclave staging buffer implementing vfs.File, used to
// assemble an SSTable before the single flush OCall.
type memBuf struct {
	data []byte
}

var _ vfs.File = (*memBuf)(nil)

func (m *memBuf) Append(p []byte) (int, error) {
	m.data = append(m.data, p...)
	return len(p), nil
}

func (m *memBuf) WriteAt(p []byte, off int64) (int, error) {
	end := off + int64(len(p))
	for int64(len(m.data)) < end {
		m.data = append(m.data, 0)
	}
	copy(m.data[off:end], p)
	return len(p), nil
}

func (m *memBuf) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *memBuf) Truncate(size int64) error {
	if size < 0 || size > int64(len(m.data)) {
		return fmt.Errorf("lsm: membuf truncate %d out of range", size)
	}
	m.data = m.data[:size]
	return nil
}

func (m *memBuf) Size() int64   { return int64(len(m.data)) }
func (m *memBuf) Bytes() []byte { return m.data }
func (m *memBuf) Sync() error   { return nil }
func (m *memBuf) Close() error  { return nil }
