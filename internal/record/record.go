// Package record defines the key-value record representation shared by
// every storage layer (memtable, WAL, SSTables, merge iterators, the
// authenticated core): a user key, a trusted timestamp assigned inside the
// enclave, a kind (set or tombstone), the value, and an optional embedded
// authentication proof (§5.2: "each record is augmented with its eLSM proof").
//
// Ordering: records sort by user key ascending, then by timestamp
// descending, so the first record of a key encountered in sorted order is
// the newest version — the property behind eLSM's early-stop GET.
package record

import (
	"bytes"
	"fmt"

	"elsm/internal/hashutil"
)

// Kind discriminates sets from tombstones. Values start at one so the zero
// Kind is detectably invalid.
type Kind uint8

const (
	// KindSet is a normal key-value write.
	KindSet Kind = iota + 1
	// KindDelete is a tombstone: the key was deleted at this timestamp.
	// Compaction physically drops tombstoned versions at the bottom level
	// (§5.4 "Handling Deletes").
	KindDelete
)

func (k Kind) String() string {
	switch k {
	case KindSet:
		return "set"
	case KindDelete:
		return "delete"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// MaxTs queries "the latest version".
const MaxTs = ^uint64(0)

// Record is one versioned key-value entry.
type Record struct {
	Key   []byte
	Ts    uint64
	Kind  Kind
	Value []byte
	// Proof is the serialized embedded authentication proof attached by
	// the eLSM layer during authenticated compaction; empty in unsecured
	// stores and in the memtable (L0 is inside the enclave and trusted).
	Proof []byte
}

// Digest returns the record's cryptographic digest (proof excluded: the
// proof authenticates the record, not vice versa).
func (r Record) Digest() hashutil.Hash {
	return hashutil.RecordDigest(r.Key, r.Ts, r.valueForDigest())
}

// valueForDigest folds the kind into the digested bytes so a tombstone can
// never be confused with a set of the same value.
func (r Record) valueForDigest() []byte {
	out := make([]byte, 1+len(r.Value))
	out[0] = byte(r.Kind)
	copy(out[1:], r.Value)
	return out
}

// Clone returns a deep copy (style guide: copy slices at boundaries).
func (r Record) Clone() Record {
	c := Record{Ts: r.Ts, Kind: r.Kind}
	c.Key = append([]byte(nil), r.Key...)
	c.Value = append([]byte(nil), r.Value...)
	c.Proof = append([]byte(nil), r.Proof...)
	return c
}

// Size returns the approximate in-memory footprint in bytes.
func (r Record) Size() int {
	return len(r.Key) + len(r.Value) + len(r.Proof) + 16
}

// Compare orders (aKey, aTs) against (bKey, bTs): key ascending, timestamp
// descending.
func Compare(aKey []byte, aTs uint64, bKey []byte, bTs uint64) int {
	if c := bytes.Compare(aKey, bKey); c != 0 {
		return c
	}
	switch {
	case aTs > bTs:
		return -1
	case aTs < bTs:
		return 1
	default:
		return 0
	}
}

// CompareRecords orders two records.
func CompareRecords(a, b Record) int {
	return Compare(a.Key, a.Ts, b.Key, b.Ts)
}

// Iterator walks records in sorted order. Implementations are not safe for
// concurrent use.
type Iterator interface {
	// Valid reports whether the iterator is positioned at a record.
	Valid() bool
	// Next advances to the following record.
	Next()
	// Record returns the current record. The returned slices are only
	// valid until the next call to Next or SeekGE.
	Record() Record
	// SeekGE positions at the first record ≥ (key, ts) in record order.
	SeekGE(key []byte, ts uint64)
	// Close releases resources.
	Close() error
}
