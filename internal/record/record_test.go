package record

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"
)

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		aKey string
		aTs  uint64
		bKey string
		bTs  uint64
		want int
	}{
		{"a", 1, "b", 1, -1},
		{"b", 1, "a", 1, 1},
		{"a", 1, "a", 1, 0},
		{"a", 2, "a", 1, -1}, // newer sorts first within a key
		{"a", 1, "a", 2, 1},
		{"", 1, "a", 1, -1},
		{"a", MaxTs, "a", 0, -1},
	}
	for _, c := range cases {
		if got := Compare([]byte(c.aKey), c.aTs, []byte(c.bKey), c.bTs); got != c.want {
			t.Fatalf("Compare(%q@%d, %q@%d) = %d, want %d", c.aKey, c.aTs, c.bKey, c.bTs, got, c.want)
		}
	}
}

func TestQuickCompareIsStrictWeakOrder(t *testing.T) {
	f := func(k1, k2, k3 []byte, t1, t2, t3 uint64) bool {
		// Antisymmetry.
		if Compare(k1, t1, k2, t2) != -Compare(k2, t2, k1, t1) {
			return false
		}
		// Transitivity on a sorted triple.
		recs := []Record{{Key: k1, Ts: t1}, {Key: k2, Ts: t2}, {Key: k3, Ts: t3}}
		sort.Slice(recs, func(i, j int) bool { return CompareRecords(recs[i], recs[j]) < 0 })
		return CompareRecords(recs[0], recs[1]) <= 0 && CompareRecords(recs[1], recs[2]) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestDigestDistinguishesKinds(t *testing.T) {
	set := Record{Key: []byte("k"), Ts: 1, Kind: KindSet, Value: []byte("v")}
	del := Record{Key: []byte("k"), Ts: 1, Kind: KindDelete, Value: []byte("v")}
	if set.Digest() == del.Digest() {
		t.Fatal("tombstone digest equals set digest")
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := Record{
		Key:   []byte("key"),
		Ts:    7,
		Kind:  KindSet,
		Value: []byte("value"),
		Proof: []byte("proof"),
	}
	c := orig.Clone()
	c.Key[0] = 'X'
	c.Value[0] = 'X'
	c.Proof[0] = 'X'
	if orig.Key[0] != 'k' || orig.Value[0] != 'v' || orig.Proof[0] != 'p' {
		t.Fatal("clone aliases original buffers")
	}
	if orig.Digest() != orig.Clone().Digest() {
		t.Fatal("clone digest differs from original")
	}
	_ = bytes.MinRead // keep bytes import
}

func TestKindString(t *testing.T) {
	if KindSet.String() != "set" || KindDelete.String() != "delete" {
		t.Fatal("kind strings")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind string empty")
	}
}

func TestSizeAccountsAllFields(t *testing.T) {
	r := Record{Key: make([]byte, 10), Value: make([]byte, 20), Proof: make([]byte, 30)}
	if r.Size() < 60 {
		t.Fatalf("size = %d", r.Size())
	}
}
