// Package vfs abstracts the untrusted world's file storage for the LSM
// engine: write-ahead logs and SSTables live here, outside the enclave.
//
// Two implementations are provided: MemFS (in-memory; used by tests and the
// scaled-down benchmarks, where the paper's datasets fit in RAM after the
// 1/32 scaling) and OSFS (real directory on disk). Both expose an
// mmap-style zero-copy view (File.Bytes) used by the eLSM-P2 mmap read path
// (§5.5.1), alongside positional reads used by the buffered read path.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound is returned when a named file does not exist.
var ErrNotFound = errors.New("vfs: file not found")

// FS is the untrusted file system interface used by the LSM engine.
type FS interface {
	// Create creates (or truncates) a file open for appending.
	Create(name string) (File, error)
	// Open opens an existing file for reading.
	Open(name string) (File, error)
	// Remove deletes a file.
	Remove(name string) error
	// Rename atomically renames a file (used for manifest swaps).
	Rename(oldName, newName string) error
	// List returns the sorted names of files with the given prefix.
	List(prefix string) ([]string, error)
	// Exists reports whether the named file exists.
	Exists(name string) bool
}

// File is a handle to an untrusted file.
type File interface {
	io.WriterAt
	io.ReaderAt
	// Append writes p at the end of the file.
	Append(p []byte) (int, error)
	// Size returns the current file length.
	Size() int64
	// Bytes returns a zero-copy view of the whole file if the
	// implementation supports mmap-style access, or nil otherwise.
	// The view is invalidated by writes.
	Bytes() []byte
	// Truncate shrinks (or grows, zero-filled) the file to size bytes.
	// Used by WAL recovery to drop a torn tail after a crash.
	Truncate(size int64) error
	// Sync flushes to stable storage.
	Sync() error
	// Close releases the handle.
	Close() error
}

// ---------------------------------------------------------------------------
// Sub-filesystems

// subber is implemented by filesystems with a native notion of
// subdirectories (OSFS); everything else gets the generic name-prefix view.
type subber interface {
	Sub(dir string) (FS, error)
}

// Sub returns a view of fs rooted at the named subdirectory — the unit the
// shard router uses to give each shard an isolated per-shard directory
// (its own WAL, SSTables, manifest and sealed state) inside one parent
// store location. OSFS creates a real directory; other implementations get
// a name-prefix view, which composes with the fault/latency-injecting
// wrappers used in tests.
func Sub(fs FS, dir string) (FS, error) {
	if s, ok := fs.(subber); ok {
		return s.Sub(dir)
	}
	return &prefixFS{inner: fs, prefix: dir + "/"}, nil
}

// prefixFS scopes an FS to a name prefix. It relies only on the FS
// interface, so it layers over MemFS, FaultFS and SlowSyncFS alike.
type prefixFS struct {
	inner  FS
	prefix string
}

var _ FS = (*prefixFS)(nil)

func (fs *prefixFS) Create(name string) (File, error) { return fs.inner.Create(fs.prefix + name) }
func (fs *prefixFS) Open(name string) (File, error)   { return fs.inner.Open(fs.prefix + name) }
func (fs *prefixFS) Remove(name string) error         { return fs.inner.Remove(fs.prefix + name) }
func (fs *prefixFS) Exists(name string) bool          { return fs.inner.Exists(fs.prefix + name) }

func (fs *prefixFS) Rename(oldName, newName string) error {
	return fs.inner.Rename(fs.prefix+oldName, fs.prefix+newName)
}

func (fs *prefixFS) List(prefix string) ([]string, error) {
	names, err := fs.inner.List(fs.prefix + prefix)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(names))
	for _, n := range names {
		out = append(out, strings.TrimPrefix(n, fs.prefix))
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// MemFS

// MemFS is an in-memory FS safe for concurrent use.
type MemFS struct {
	mu    sync.RWMutex
	files map[string]*memFile
}

var _ FS = (*MemFS)(nil)

// NewMem creates an empty in-memory file system.
func NewMem() *MemFS {
	return &MemFS{files: make(map[string]*memFile)}
}

type memFile struct {
	mu   sync.RWMutex
	name string
	data []byte
}

type memHandle struct {
	f *memFile
}

var _ File = (*memHandle)(nil)

// Create implements FS.
func (fs *MemFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := &memFile{name: name}
	fs.files[name] = f
	return &memHandle{f: f}, nil
}

// Open implements FS.
func (fs *MemFS) Open(name string) (File, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return &memHandle{f: f}, nil
}

// Remove implements FS.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	delete(fs.files, name)
	return nil
}

// Rename implements FS.
func (fs *MemFS) Rename(oldName, newName string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[oldName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, oldName)
	}
	delete(fs.files, oldName)
	f.name = newName
	fs.files[newName] = f
	return nil
}

// List implements FS.
func (fs *MemFS) List(prefix string) ([]string, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var names []string
	for n := range fs.files {
		if strings.HasPrefix(n, prefix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Exists implements FS.
func (fs *MemFS) Exists(name string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[name]
	return ok
}

// TotalBytes returns the sum of all file sizes (test/metrics helper).
func (fs *MemFS) TotalBytes() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var total int64
	for _, f := range fs.files {
		f.mu.RLock()
		total += int64(len(f.data))
		f.mu.RUnlock()
	}
	return total
}

// Corrupt flips one byte at off in the named file. Test helper for
// integrity-attack scenarios: this is exactly what a malicious host can do.
func (fs *MemFS) Corrupt(name string, off int64) error {
	fs.mu.RLock()
	f, ok := fs.files[name]
	fs.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if off < 0 || off >= int64(len(f.data)) {
		return fmt.Errorf("vfs: corrupt offset %d out of range [0,%d)", off, len(f.data))
	}
	f.data[off] ^= 0xFF
	return nil
}

// Clone returns a deep copy of the file system — the primitive a rollback
// attacker uses to snapshot an old (but authenticated) state.
func (fs *MemFS) Clone() *MemFS {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := NewMem()
	for n, f := range fs.files {
		f.mu.RLock()
		cp := make([]byte, len(f.data))
		copy(cp, f.data)
		f.mu.RUnlock()
		out.files[n] = &memFile{name: n, data: cp}
	}
	return out
}

// Restore replaces this FS's contents with those of snapshot (rollback
// attack primitive).
func (fs *MemFS) Restore(snapshot *MemFS) {
	snapCopy := snapshot.Clone()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files = snapCopy.files
}

func (h *memHandle) WriteAt(p []byte, off int64) (int, error) {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	end := off + int64(len(p))
	if int64(len(h.f.data)) < end {
		grown := make([]byte, end)
		copy(grown, h.f.data)
		h.f.data = grown
	}
	copy(h.f.data[off:end], p)
	return len(p), nil
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	h.f.mu.RLock()
	defer h.f.mu.RUnlock()
	if off >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *memHandle) Append(p []byte) (int, error) {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Size() int64 {
	h.f.mu.RLock()
	defer h.f.mu.RUnlock()
	return int64(len(h.f.data))
}

// Bytes returns the live backing slice: the mmap view. Callers must treat it
// as read-only, like a real shared mapping.
func (h *memHandle) Bytes() []byte {
	h.f.mu.RLock()
	defer h.f.mu.RUnlock()
	return h.f.data
}

func (h *memHandle) Truncate(size int64) error {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	if size < 0 {
		return fmt.Errorf("vfs: truncate to negative size %d", size)
	}
	if size <= int64(len(h.f.data)) {
		h.f.data = h.f.data[:size]
		return nil
	}
	grown := make([]byte, size)
	copy(grown, h.f.data)
	h.f.data = grown
	return nil
}

func (h *memHandle) Sync() error  { return nil }
func (h *memHandle) Close() error { return nil }

// ---------------------------------------------------------------------------
// OSFS

// OSFS stores files in a directory on the host file system.
type OSFS struct {
	dir string
}

var _ FS = (*OSFS)(nil)

// NewOS creates an OSFS rooted at dir, creating the directory if needed.
func NewOS(dir string) (*OSFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("vfs: mkdir %s: %w", dir, err)
	}
	return &OSFS{dir: dir}, nil
}

func (fs *OSFS) path(name string) string { return filepath.Join(fs.dir, name) }

// Sub implements the native subdirectory view: a real directory on disk,
// created if needed.
func (fs *OSFS) Sub(dir string) (FS, error) { return NewOS(filepath.Join(fs.dir, dir)) }

// Create implements FS. Names may carry a directory part ("shard-00/wal")
// — the prefix form a Sub view over a wrapper FS produces — in which case
// the directory is created on demand.
func (fs *OSFS) Create(name string) (File, error) {
	if dir := filepath.Dir(name); dir != "." {
		if err := os.MkdirAll(filepath.Join(fs.dir, dir), 0o755); err != nil {
			return nil, fmt.Errorf("vfs: create %s: %w", name, err)
		}
	}
	f, err := os.OpenFile(fs.path(name), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("vfs: create %s: %w", name, err)
	}
	return &osHandle{f: f}, nil
}

// Open implements FS.
func (fs *OSFS) Open(name string) (File, error) {
	f, err := os.OpenFile(fs.path(name), os.O_RDWR, 0o644)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		return nil, fmt.Errorf("vfs: open %s: %w", name, err)
	}
	return &osHandle{f: f}, nil
}

// Remove implements FS.
func (fs *OSFS) Remove(name string) error {
	if err := os.Remove(fs.path(name)); err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		return fmt.Errorf("vfs: remove %s: %w", name, err)
	}
	return nil
}

// Rename implements FS.
func (fs *OSFS) Rename(oldName, newName string) error {
	if err := os.Rename(fs.path(oldName), fs.path(newName)); err != nil {
		return fmt.Errorf("vfs: rename %s -> %s: %w", oldName, newName, err)
	}
	return nil
}

// List implements FS. A prefix with a directory part ("shard-00/wal")
// lists inside that subdirectory, returning full prefixed names — so a Sub
// view over a wrapper FS (whose names keep their "shard-NN/" prefix all
// the way down) enumerates its files like any other.
func (fs *OSFS) List(prefix string) ([]string, error) {
	subdir, base := "", prefix
	if i := strings.LastIndexByte(prefix, '/'); i >= 0 {
		subdir, base = prefix[:i+1], prefix[i+1:]
	}
	entries, err := os.ReadDir(filepath.Join(fs.dir, subdir))
	if err != nil {
		if os.IsNotExist(err) && subdir != "" {
			return nil, nil // a sub-namespace nothing was written to yet
		}
		return nil, fmt.Errorf("vfs: list: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), base) {
			names = append(names, subdir+e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Exists implements FS.
func (fs *OSFS) Exists(name string) bool {
	_, err := os.Stat(fs.path(name))
	return err == nil
}

type osHandle struct {
	mu sync.Mutex
	f  *os.File
}

var _ File = (*osHandle)(nil)

func (h *osHandle) WriteAt(p []byte, off int64) (int, error) { return h.f.WriteAt(p, off) }
func (h *osHandle) ReadAt(p []byte, off int64) (int, error)  { return h.f.ReadAt(p, off) }

func (h *osHandle) Append(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	end, err := h.f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, err
	}
	return h.f.WriteAt(p, end)
}

func (h *osHandle) Size() int64 {
	st, err := h.f.Stat()
	if err != nil {
		return 0
	}
	return st.Size()
}

// Bytes reads the whole file into memory; OSFS does not provide a true
// zero-copy mapping (the stdlib has no portable mmap), so the buffered read
// path should be preferred on OSFS.
func (h *osHandle) Bytes() []byte {
	sz := h.Size()
	buf := make([]byte, sz)
	if _, err := h.f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil
	}
	return buf
}

func (h *osHandle) Truncate(size int64) error { return h.f.Truncate(size) }

func (h *osHandle) Sync() error  { return h.f.Sync() }
func (h *osHandle) Close() error { return h.f.Close() }
