package vfs

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
)

func testFSes(t *testing.T) map[string]FS {
	t.Helper()
	osfs, err := NewOS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]FS{"mem": NewMem(), "os": osfs}
}

func TestCreateAppendRead(t *testing.T) {
	for name, fs := range testFSes(t) {
		t.Run(name, func(t *testing.T) {
			f, err := fs.Create("a.dat")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Append([]byte("hello ")); err != nil {
				t.Fatal(err)
			}
			if _, err := f.Append([]byte("world")); err != nil {
				t.Fatal(err)
			}
			if f.Size() != 11 {
				t.Fatalf("size = %d", f.Size())
			}
			buf := make([]byte, 5)
			if _, err := f.ReadAt(buf, 6); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if string(buf) != "world" {
				t.Fatalf("read %q", buf)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestOpenMissing(t *testing.T) {
	for name, fs := range testFSes(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := fs.Open("nope"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("err = %v", err)
			}
			if fs.Exists("nope") {
				t.Fatal("phantom file exists")
			}
		})
	}
}

func TestRenameAndList(t *testing.T) {
	for name, fs := range testFSes(t) {
		t.Run(name, func(t *testing.T) {
			for _, n := range []string{"000001.sst", "000002.sst", "wal.log"} {
				f, err := fs.Create(n)
				if err != nil {
					t.Fatal(err)
				}
				f.Append([]byte(n))
				f.Close()
			}
			names, err := fs.List("00000")
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != 2 || names[0] != "000001.sst" || names[1] != "000002.sst" {
				t.Fatalf("list = %v", names)
			}
			if err := fs.Rename("wal.log", "wal.old"); err != nil {
				t.Fatal(err)
			}
			if fs.Exists("wal.log") || !fs.Exists("wal.old") {
				t.Fatal("rename did not move file")
			}
			if err := fs.Remove("wal.old"); err != nil {
				t.Fatal(err)
			}
			if fs.Exists("wal.old") {
				t.Fatal("remove failed")
			}
		})
	}
}

func TestWriteAt(t *testing.T) {
	for name, fs := range testFSes(t) {
		t.Run(name, func(t *testing.T) {
			f, err := fs.Create("w.dat")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt([]byte("abcdef"), 4); err != nil {
				t.Fatal(err)
			}
			if f.Size() != 10 {
				t.Fatalf("size = %d", f.Size())
			}
			buf := make([]byte, 6)
			f.ReadAt(buf, 4)
			if string(buf) != "abcdef" {
				t.Fatalf("read %q", buf)
			}
		})
	}
}

func TestMemBytesView(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Create("v.dat")
	f.Append([]byte("view me"))
	v := f.Bytes()
	if !bytes.Equal(v, []byte("view me")) {
		t.Fatalf("view = %q", v)
	}
}

func TestMemCorrupt(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Create("c.dat")
	f.Append([]byte{0x01, 0x02})
	if err := fs.Corrupt("c.dat", 1); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	f.ReadAt(buf, 0)
	if buf[1] != 0x02^0xFF {
		t.Fatalf("byte not flipped: %x", buf)
	}
	if err := fs.Corrupt("c.dat", 99); err == nil {
		t.Fatal("out-of-range corrupt accepted")
	}
	if err := fs.Corrupt("missing", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestCloneAndRestore(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Create("s.dat")
	f.Append([]byte("v1"))
	snap := fs.Clone()
	f.Append([]byte("v2"))
	fs.Restore(snap)
	g, err := fs.Open("s.dat")
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 2 {
		t.Fatalf("restored size = %d", g.Size())
	}
}

func TestMemConcurrentAccess(t *testing.T) {
	fs := NewMem()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := string(rune('a' + g))
			f, err := fs.Create(name)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 100; i++ {
				f.Append([]byte{byte(i)})
			}
			if f.Size() != 100 {
				t.Errorf("size = %d", f.Size())
			}
		}(g)
	}
	wg.Wait()
	if fs.TotalBytes() != 800 {
		t.Fatalf("total = %d", fs.TotalBytes())
	}
}

// TestSubIsolatesShardDirectories: two Sub views of one parent FS are
// fully isolated namespaces (the shard router's per-shard directories),
// on both the prefix view (MemFS) and the native view (OSFS).
func TestSubIsolatesShardDirectories(t *testing.T) {
	parents := map[string]FS{"mem": NewMem()}
	osfs, err := NewOS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	parents["os"] = osfs
	// A wrapper over a disk-backed FS takes the prefix-fallback path: the
	// names carry their "shard-NN/" part down to OSFS, which must create
	// and list the subdirectory transparently.
	wrappedOS, err := NewOS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	parents["slowsync-over-os"] = NewSlowSync(wrappedOS, 0)
	parents["fault-over-mem"] = NewFault(NewMem())
	for name, parent := range parents {
		t.Run(name, func(t *testing.T) {
			a, err := Sub(parent, "shard-00")
			if err != nil {
				t.Fatal(err)
			}
			b, err := Sub(parent, "shard-01")
			if err != nil {
				t.Fatal(err)
			}
			f, err := a.Create("wal.log")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Append([]byte("shard0")); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			if b.Exists("wal.log") {
				t.Fatal("sibling sub-FS sees the other shard's file")
			}
			if !a.Exists("wal.log") {
				t.Fatal("sub-FS lost its own file")
			}
			names, err := a.List("")
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != 1 || names[0] != "wal.log" {
				t.Fatalf("sub-FS List = %v (names must be prefix-free)", names)
			}
			if err := a.Rename("wal.log", "wal.old"); err != nil {
				t.Fatal(err)
			}
			if b.Exists("wal.old") || !a.Exists("wal.old") {
				t.Fatal("rename leaked across sub-FS boundaries")
			}
			if err := a.Remove("wal.old"); err != nil {
				t.Fatal(err)
			}
			if a.Exists("wal.old") {
				t.Fatal("remove did not take effect in sub-FS")
			}
		})
	}
}
