package vfs

import (
	"errors"
	"fmt"
	"path"
	"sync"
)

// ErrInjected is returned by FaultFS when an injected fault fires. The
// returned error wraps it together with the failing operation and path, so
// callers can both match it (errors.Is) and tell WHICH operation tripped.
var ErrInjected = errors.New("vfs: injected fault")

// Op is a bitmask of file-system operation types, used to scope injected
// faults ("fail only Sync", "fail only WAL appends").
type Op uint32

const (
	OpCreate Op = 1 << iota
	OpOpen
	OpRemove
	OpRename
	OpList
	OpWriteAt
	OpReadAt
	OpAppend
	OpTruncate
	OpSync

	// OpAll matches every gated operation.
	OpAll = OpCreate | OpOpen | OpRemove | OpRename | OpList |
		OpWriteAt | OpReadAt | OpAppend | OpTruncate | OpSync
	// OpMutating matches every operation that changes durable state — the
	// crash-point set: failing op k and everything after it models a
	// machine that died at op k.
	OpMutating = OpCreate | OpRemove | OpRename | OpWriteAt | OpAppend |
		OpTruncate | OpSync
)

// opNames maps single Op bits to human-readable names for injected errors.
var opNames = map[Op]string{
	OpCreate: "create", OpOpen: "open", OpRemove: "remove",
	OpRename: "rename", OpList: "list", OpWriteAt: "writeat",
	OpReadAt: "readat", OpAppend: "append", OpTruncate: "truncate",
	OpSync: "sync",
}

func opName(op Op) string {
	if n, ok := opNames[op]; ok {
		return n
	}
	return fmt.Sprintf("op(%#x)", uint32(op))
}

// FaultFS wraps an FS and fails operations once a configurable operation
// budget is exhausted — a deterministic way to test crash/IO-error paths
// ("the disk dies mid-compaction") without flaky timing. The armed fault
// can be scoped to an operation mask and a path glob (ArmFilter), writes
// can tear (persist a prefix before erroring, SetTornWrites), and matching
// operations are counted (MatchingOps) so a harness can enumerate every
// crash point of a workload. Safe for concurrent use.
type FaultFS struct {
	inner FS

	mu       sync.Mutex
	budget   int    // matching operations remaining before faults; -1 = unlimited
	failed   bool   // sticky: once tripped, everything fails (like a dead disk)
	failedOn string // "op path" of the operation that tripped the fault
	mask     Op     // operations the fault targets (budget counts only these)
	glob     string // path pattern scoping the fault ("" = any path)
	torn     bool   // tear the tripping write: persist a prefix, then fail
	matched  uint64 // matching operations observed since the last ArmFilter
}

var _ FS = (*FaultFS)(nil)

// NewFault wraps inner with an unlimited budget (no faults until armed)
// targeting every operation on every path.
func NewFault(inner FS) *FaultFS {
	return &FaultFS{inner: inner, budget: -1, mask: OpAll}
}

// Arm sets the number of matching operations that will still succeed;
// after that every operation fails with ErrInjected. The match scope is
// whatever ArmFilter configured (default: all operations, any path).
func (f *FaultFS) Arm(ops int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget = ops
	f.failed = false
	f.failedOn = ""
}

// ArmFilter scopes subsequent faults (and the MatchingOps counter) to
// operations in mask whose path matches the glob pattern ("" matches any
// path; patterns follow path.Match, e.g. "wal-*.log"). It resets the
// matched-operation counter but not the budget — call Arm to (re)start the
// countdown.
func (f *FaultFS) ArmFilter(mask Op, glob string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if mask == 0 {
		mask = OpAll
	}
	f.mask = mask
	f.glob = glob
	f.matched = 0
}

// FailNthSync arms the n-th (1-based) Sync on any path to fail — the
// classic "power loss at the k-th fsync" fault.
func (f *FaultFS) FailNthSync(n int) {
	f.ArmFilter(OpSync, "")
	f.Arm(n - 1)
}

// SetTornWrites makes the TRIPPING write operation (Append/WriteAt) tear:
// a prefix of the payload reaches the inner FS before the error returns,
// modeling a power loss mid-write rather than a clean device error.
// Subsequent operations on the dead disk write nothing.
func (f *FaultFS) SetTornWrites(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.torn = on
}

// Disarm restores normal operation. The ArmFilter scope is retained.
func (f *FaultFS) Disarm() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget = -1
	f.failed = false
	f.failedOn = ""
}

// Tripped reports whether a fault has fired.
func (f *FaultFS) Tripped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failed
}

// TrippedOn reports the "op path" description of the operation that
// tripped the fault, "" if none has.
func (f *FaultFS) TrippedOn() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failedOn
}

// MatchingOps reports how many filter-matching operations the FS has
// served since the last ArmFilter — with an unlimited budget this counts a
// workload's crash-point candidates for later enumeration.
func (f *FaultFS) MatchingOps() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.matched
}

// injected wraps ErrInjected with the failing operation and path.
func injected(op Op, name string) error {
	if name == "" {
		return fmt.Errorf("%w: %s", ErrInjected, opName(op))
	}
	return fmt.Errorf("%w: %s %s", ErrInjected, opName(op), name)
}

// matchLocked reports whether the armed filter covers (op, name).
func (f *FaultFS) matchLocked(op Op, name string) bool {
	if f.mask&op == 0 {
		return false
	}
	if f.glob == "" {
		return true
	}
	ok, err := path.Match(f.glob, name)
	return err == nil && ok
}

// spend consumes one matching operation from the budget. It returns
// (tripping, err): err is non-nil when the operation must fail, tripping
// is true only for the single operation that transitioned the disk from
// healthy to dead (the one a torn write applies to).
func (f *FaultFS) spend(op Op, name string) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failed {
		return false, injected(op, name)
	}
	if !f.matchLocked(op, name) {
		return false, nil
	}
	f.matched++
	if f.budget < 0 {
		return false, nil
	}
	if f.budget == 0 {
		f.failed = true
		f.failedOn = opName(op) + " " + name
		return true, injected(op, name)
	}
	f.budget--
	return false, nil
}

// gate is spend for callers that don't care about the tear transition.
func (f *FaultFS) gate(op Op, name string) error {
	_, err := f.spend(op, name)
	return err
}

// tornLocked reports whether torn-write mode is on.
func (f *FaultFS) tornEnabled() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.torn
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	if err := f.gate(OpCreate, name); err != nil {
		return nil, err
	}
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner, name: name}, nil
}

// Open implements FS (reads are also gated: a dead disk serves nothing).
func (f *FaultFS) Open(name string) (File, error) {
	if err := f.gate(OpOpen, name); err != nil {
		return nil, err
	}
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner, name: name}, nil
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if err := f.gate(OpRemove, name); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// Rename implements FS.
func (f *FaultFS) Rename(oldName, newName string) error {
	if err := f.gate(OpRename, oldName); err != nil {
		return err
	}
	return f.inner.Rename(oldName, newName)
}

// List implements FS.
func (f *FaultFS) List(prefix string) ([]string, error) {
	if err := f.gate(OpList, prefix); err != nil {
		return nil, err
	}
	return f.inner.List(prefix)
}

// Exists implements FS (metadata probes stay fault-free so recovery logic
// can at least see what exists).
func (f *FaultFS) Exists(name string) bool { return f.inner.Exists(name) }

type faultFile struct {
	fs    *FaultFS
	inner File
	name  string
}

var _ File = (*faultFile)(nil)

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	tripping, err := ff.fs.spend(OpWriteAt, ff.name)
	if err != nil {
		if tripping && ff.fs.tornEnabled() && len(p) > 1 {
			n, _ := ff.inner.WriteAt(p[:len(p)/2], off)
			return n, err
		}
		return 0, err
	}
	return ff.inner.WriteAt(p, off)
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err := ff.fs.gate(OpReadAt, ff.name); err != nil {
		return 0, err
	}
	return ff.inner.ReadAt(p, off)
}

func (ff *faultFile) Append(p []byte) (int, error) {
	tripping, err := ff.fs.spend(OpAppend, ff.name)
	if err != nil {
		if tripping && ff.fs.tornEnabled() && len(p) > 1 {
			n, _ := ff.inner.Append(p[:len(p)/2])
			return n, err
		}
		return 0, err
	}
	return ff.inner.Append(p)
}

func (ff *faultFile) Size() int64   { return ff.inner.Size() }
func (ff *faultFile) Bytes() []byte { return ff.inner.Bytes() }

func (ff *faultFile) Truncate(size int64) error {
	if err := ff.fs.gate(OpTruncate, ff.name); err != nil {
		return err
	}
	return ff.inner.Truncate(size)
}

func (ff *faultFile) Sync() error {
	if err := ff.fs.gate(OpSync, ff.name); err != nil {
		return err
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error { return ff.inner.Close() }
