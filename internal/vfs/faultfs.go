package vfs

import (
	"errors"
	"sync"
)

// ErrInjected is returned by FaultFS when an injected fault fires.
var ErrInjected = errors.New("vfs: injected fault")

// FaultFS wraps an FS and fails operations once a configurable operation
// budget is exhausted — a deterministic way to test crash/IO-error paths
// ("the disk dies mid-compaction") without flaky timing. Safe for
// concurrent use.
type FaultFS struct {
	inner FS

	mu     sync.Mutex
	budget int  // operations remaining before faults start; -1 = unlimited
	failed bool // sticky: once tripped, everything fails (like a dead disk)
}

var _ FS = (*FaultFS)(nil)

// NewFault wraps inner with an unlimited budget (no faults until armed).
func NewFault(inner FS) *FaultFS {
	return &FaultFS{inner: inner, budget: -1}
}

// Arm sets the number of write-side operations that will still succeed;
// after that every operation fails with ErrInjected.
func (f *FaultFS) Arm(ops int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget = ops
	f.failed = false
}

// Disarm restores normal operation.
func (f *FaultFS) Disarm() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget = -1
	f.failed = false
}

// Tripped reports whether a fault has fired.
func (f *FaultFS) Tripped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failed
}

// spend consumes one operation from the budget, returning ErrInjected when
// exhausted.
func (f *FaultFS) spend() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failed {
		return ErrInjected
	}
	if f.budget < 0 {
		return nil
	}
	if f.budget == 0 {
		f.failed = true
		return ErrInjected
	}
	f.budget--
	return nil
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	if err := f.spend(); err != nil {
		return nil, err
	}
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// Open implements FS (reads are also gated: a dead disk serves nothing).
func (f *FaultFS) Open(name string) (File, error) {
	if err := f.spend(); err != nil {
		return nil, err
	}
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if err := f.spend(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// Rename implements FS.
func (f *FaultFS) Rename(oldName, newName string) error {
	if err := f.spend(); err != nil {
		return err
	}
	return f.inner.Rename(oldName, newName)
}

// List implements FS.
func (f *FaultFS) List(prefix string) ([]string, error) {
	if err := f.spend(); err != nil {
		return nil, err
	}
	return f.inner.List(prefix)
}

// Exists implements FS (metadata probes stay fault-free so recovery logic
// can at least see what exists).
func (f *FaultFS) Exists(name string) bool { return f.inner.Exists(name) }

type faultFile struct {
	fs    *FaultFS
	inner File
}

var _ File = (*faultFile)(nil)

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if err := ff.fs.spend(); err != nil {
		return 0, err
	}
	return ff.inner.WriteAt(p, off)
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err := ff.fs.spend(); err != nil {
		return 0, err
	}
	return ff.inner.ReadAt(p, off)
}

func (ff *faultFile) Append(p []byte) (int, error) {
	if err := ff.fs.spend(); err != nil {
		return 0, err
	}
	return ff.inner.Append(p)
}

func (ff *faultFile) Size() int64   { return ff.inner.Size() }
func (ff *faultFile) Bytes() []byte { return ff.inner.Bytes() }

func (ff *faultFile) Truncate(size int64) error {
	if err := ff.fs.spend(); err != nil {
		return err
	}
	return ff.inner.Truncate(size)
}

func (ff *faultFile) Sync() error {
	if err := ff.fs.spend(); err != nil {
		return err
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error { return ff.inner.Close() }
