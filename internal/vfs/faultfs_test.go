package vfs

import (
	"errors"
	"testing"
)

func TestFaultFSPassThrough(t *testing.T) {
	ffs := NewFault(NewMem())
	f, err := ffs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Append([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 4 {
		t.Fatalf("size = %d", f.Size())
	}
	g, err := ffs.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "data" {
		t.Fatalf("read %q", buf)
	}
	if ffs.Tripped() {
		t.Fatal("tripped without arming")
	}
}

func TestFaultFSBudgetExhaustion(t *testing.T) {
	ffs := NewFault(NewMem())
	f, _ := ffs.Create("a")
	ffs.Arm(2)
	if _, err := f.Append([]byte("1")); err != nil {
		t.Fatalf("op 1 within budget failed: %v", err)
	}
	if _, err := f.Append([]byte("2")); err != nil {
		t.Fatalf("op 2 within budget failed: %v", err)
	}
	if _, err := f.Append([]byte("3")); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 3 beyond budget: %v", err)
	}
	// Sticky failure: everything fails now, including opens and reads.
	if !ffs.Tripped() {
		t.Fatal("not tripped")
	}
	if _, err := ffs.Open("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("open after trip: %v", err)
	}
	if _, err := ffs.Create("b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("create after trip: %v", err)
	}
	// Disarm heals the disk.
	ffs.Disarm()
	if _, err := ffs.Open("a"); err != nil {
		t.Fatalf("open after disarm: %v", err)
	}
}

func TestFaultFSRenameRemoveList(t *testing.T) {
	ffs := NewFault(NewMem())
	f, _ := ffs.Create("x")
	f.Append([]byte("1"))
	if err := ffs.Rename("x", "y"); err != nil {
		t.Fatal(err)
	}
	names, err := ffs.List("")
	if err != nil || len(names) != 1 || names[0] != "y" {
		t.Fatalf("list = %v err=%v", names, err)
	}
	if !ffs.Exists("y") {
		t.Fatal("exists false")
	}
	ffs.Arm(0)
	if err := ffs.Remove("y"); !errors.Is(err, ErrInjected) {
		t.Fatalf("remove with zero budget: %v", err)
	}
	if err := ffs.Rename("y", "z"); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename after trip: %v", err)
	}
	if _, err := ffs.List(""); !errors.Is(err, ErrInjected) {
		t.Fatalf("list after trip: %v", err)
	}
	// Exists stays available (metadata probe).
	if !ffs.Exists("y") {
		t.Fatal("exists gated by faults")
	}
}
