package vfs

import (
	"errors"
	"strings"
	"testing"
)

func TestFaultFSPassThrough(t *testing.T) {
	ffs := NewFault(NewMem())
	f, err := ffs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Append([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 4 {
		t.Fatalf("size = %d", f.Size())
	}
	g, err := ffs.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "data" {
		t.Fatalf("read %q", buf)
	}
	if ffs.Tripped() {
		t.Fatal("tripped without arming")
	}
}

func TestFaultFSBudgetExhaustion(t *testing.T) {
	ffs := NewFault(NewMem())
	f, _ := ffs.Create("a")
	ffs.Arm(2)
	if _, err := f.Append([]byte("1")); err != nil {
		t.Fatalf("op 1 within budget failed: %v", err)
	}
	if _, err := f.Append([]byte("2")); err != nil {
		t.Fatalf("op 2 within budget failed: %v", err)
	}
	if _, err := f.Append([]byte("3")); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 3 beyond budget: %v", err)
	}
	// Sticky failure: everything fails now, including opens and reads.
	if !ffs.Tripped() {
		t.Fatal("not tripped")
	}
	if _, err := ffs.Open("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("open after trip: %v", err)
	}
	if _, err := ffs.Create("b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("create after trip: %v", err)
	}
	// Disarm heals the disk.
	ffs.Disarm()
	if _, err := ffs.Open("a"); err != nil {
		t.Fatalf("open after disarm: %v", err)
	}
}

func TestFaultFSRenameRemoveList(t *testing.T) {
	ffs := NewFault(NewMem())
	f, _ := ffs.Create("x")
	f.Append([]byte("1"))
	if err := ffs.Rename("x", "y"); err != nil {
		t.Fatal(err)
	}
	names, err := ffs.List("")
	if err != nil || len(names) != 1 || names[0] != "y" {
		t.Fatalf("list = %v err=%v", names, err)
	}
	if !ffs.Exists("y") {
		t.Fatal("exists false")
	}
	ffs.Arm(0)
	if err := ffs.Remove("y"); !errors.Is(err, ErrInjected) {
		t.Fatalf("remove with zero budget: %v", err)
	}
	if err := ffs.Rename("y", "z"); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename after trip: %v", err)
	}
	if _, err := ffs.List(""); !errors.Is(err, ErrInjected) {
		t.Fatalf("list after trip: %v", err)
	}
	// Exists stays available (metadata probe).
	if !ffs.Exists("y") {
		t.Fatal("exists gated by faults")
	}
}

func TestFaultFSFilterScopesFault(t *testing.T) {
	ffs := NewFault(NewMem())
	wal, _ := ffs.Create("wal-000001.log")
	sst, _ := ffs.Create("L0-000002.sst")
	// Only Sync on wal-*.log counts against the budget; everything else
	// keeps working until the fault actually trips.
	ffs.ArmFilter(OpSync, "wal-*.log")
	ffs.Arm(1)
	if err := sst.Sync(); err != nil {
		t.Fatalf("sst sync (outside filter) failed: %v", err)
	}
	if _, err := wal.Append([]byte("rec")); err != nil {
		t.Fatalf("wal append (op outside mask) failed: %v", err)
	}
	if err := wal.Sync(); err != nil {
		t.Fatalf("wal sync 1 within budget failed: %v", err)
	}
	err := wal.Sync()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("wal sync 2 = %v, want ErrInjected", err)
	}
	// The injected error names the failing op and path.
	if got := err.Error(); !strings.Contains(got, "sync") || !strings.Contains(got, "wal-000001.log") {
		t.Fatalf("injected error %q does not name op+path", got)
	}
	if on := ffs.TrippedOn(); on != "sync wal-000001.log" {
		t.Fatalf("TrippedOn = %q", on)
	}
	// Dead disk: even operations outside the filter fail now.
	if err := sst.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sst sync after trip = %v", err)
	}
	if ffs.MatchingOps() != 2 {
		t.Fatalf("MatchingOps = %d, want 2", ffs.MatchingOps())
	}
}

func TestFaultFSFailNthSync(t *testing.T) {
	ffs := NewFault(NewMem())
	f, _ := ffs.Create("a")
	ffs.FailNthSync(3)
	for i := 1; i <= 2; i++ {
		if err := f.Sync(); err != nil {
			t.Fatalf("sync %d failed early: %v", i, err)
		}
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("3rd sync = %v, want ErrInjected", err)
	}
}

func TestFaultFSTornWrite(t *testing.T) {
	mem := NewMem()
	ffs := NewFault(mem)
	f, _ := ffs.Create("wal.log")
	if _, err := f.Append([]byte("head")); err != nil {
		t.Fatal(err)
	}
	ffs.SetTornWrites(true)
	ffs.ArmFilter(OpAppend, "")
	ffs.Arm(0)
	if _, err := f.Append([]byte("0123456789")); !errors.Is(err, ErrInjected) {
		t.Fatal("torn append did not fail")
	}
	// Half of the payload reached the inner FS before the crash.
	inner, err := mem.Open("wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(inner.Bytes()); got != "head01234" {
		t.Fatalf("torn file contents = %q, want %q", got, "head01234")
	}
	// Subsequent writes on the dead disk persist nothing.
	if _, err := f.Append([]byte("more")); !errors.Is(err, ErrInjected) {
		t.Fatal("append on dead disk succeeded")
	}
	if got := string(inner.Bytes()); got != "head01234" {
		t.Fatalf("dead disk grew the file: %q", got)
	}
}

func TestFaultFSMatchingOpsCountsForEnumeration(t *testing.T) {
	ffs := NewFault(NewMem())
	ffs.ArmFilter(OpMutating, "")
	f, _ := ffs.Create("a") // 1: create
	f.Append([]byte("x"))   // 2: append
	f.Sync()                // 3: sync
	ffs.Open("a")           // open is not mutating
	ffs.Exists("a")         // exists is never counted
	if n := ffs.MatchingOps(); n != 3 {
		t.Fatalf("MatchingOps = %d, want 3", n)
	}
	// Re-filtering resets the counter for the next enumeration run.
	ffs.ArmFilter(OpMutating, "")
	if n := ffs.MatchingOps(); n != 0 {
		t.Fatalf("MatchingOps after reset = %d", n)
	}
}
