package vfs

import (
	"sync/atomic"
	"time"
)

// SlowSyncFS wraps an FS and charges a fixed latency to every File.Sync —
// an in-memory stand-in for a storage device whose fsync dominates the
// write path (the regime group commit exists for). It also counts syncs,
// which the group-commit tests and the commit ablation use to show that N
// concurrent commits coalesce into far fewer than N fsyncs. Safe for
// concurrent use.
type SlowSyncFS struct {
	inner FS
	delay time.Duration
	syncs atomic.Uint64

	// slots models the device's queue depth: at most cap(slots) syncs are
	// in flight at once; the rest queue behind them. Depth 1 is a single
	// spindle — every sync serializes, as on one WAL file on one disk.
	slots chan struct{}
}

var _ FS = (*SlowSyncFS)(nil)

// NewSlowSync wraps inner, making every Sync take delay. The simulated
// device has queue depth 1: concurrent syncs serialize.
func NewSlowSync(inner FS, delay time.Duration) *SlowSyncFS {
	return NewSlowSyncQD(inner, delay, 1)
}

// NewSlowSyncQD wraps inner with a device of the given queue depth: up to
// depth syncs overlap their latency, as on an NVMe device with internal
// parallelism. Depth < 1 is clamped to 1 (a serial device).
func NewSlowSyncQD(inner FS, delay time.Duration, depth int) *SlowSyncFS {
	if depth < 1 {
		depth = 1
	}
	return &SlowSyncFS{inner: inner, delay: delay, slots: make(chan struct{}, depth)}
}

// Syncs returns how many File.Sync calls have completed.
func (f *SlowSyncFS) Syncs() uint64 { return f.syncs.Load() }

// Create implements FS.
func (f *SlowSyncFS) Create(name string) (File, error) {
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &slowFile{fs: f, inner: inner}, nil
}

// Open implements FS.
func (f *SlowSyncFS) Open(name string) (File, error) {
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &slowFile{fs: f, inner: inner}, nil
}

// Remove implements FS.
func (f *SlowSyncFS) Remove(name string) error { return f.inner.Remove(name) }

// Rename implements FS.
func (f *SlowSyncFS) Rename(oldName, newName string) error {
	return f.inner.Rename(oldName, newName)
}

// List implements FS.
func (f *SlowSyncFS) List(prefix string) ([]string, error) { return f.inner.List(prefix) }

// Exists implements FS.
func (f *SlowSyncFS) Exists(name string) bool { return f.inner.Exists(name) }

type slowFile struct {
	fs    *SlowSyncFS
	inner File
}

var _ File = (*slowFile)(nil)

func (sf *slowFile) WriteAt(p []byte, off int64) (int, error) { return sf.inner.WriteAt(p, off) }
func (sf *slowFile) ReadAt(p []byte, off int64) (int, error)  { return sf.inner.ReadAt(p, off) }
func (sf *slowFile) Append(p []byte) (int, error)             { return sf.inner.Append(p) }
func (sf *slowFile) Size() int64                              { return sf.inner.Size() }
func (sf *slowFile) Bytes() []byte                            { return sf.inner.Bytes() }
func (sf *slowFile) Truncate(size int64) error                { return sf.inner.Truncate(size) }
func (sf *slowFile) Close() error                             { return sf.inner.Close() }

func (sf *slowFile) Sync() error {
	sf.fs.slots <- struct{}{}
	if sf.fs.delay > 0 {
		time.Sleep(sf.fs.delay)
	}
	<-sf.fs.slots
	sf.fs.syncs.Add(1)
	return sf.inner.Sync()
}
