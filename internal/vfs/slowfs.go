package vfs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SlowSyncFS wraps an FS and charges a fixed latency to every File.Sync —
// an in-memory stand-in for a storage device whose fsync dominates the
// write path (the regime group commit exists for). It also counts syncs,
// which the group-commit tests and the commit ablation use to show that N
// concurrent commits coalesce into far fewer than N fsyncs. Safe for
// concurrent use.
type SlowSyncFS struct {
	inner FS
	delay time.Duration
	syncs atomic.Uint64

	// serial serializes the simulated device: concurrent syncs queue behind
	// one another, as they would on a single WAL file on one disk.
	serial sync.Mutex
}

var _ FS = (*SlowSyncFS)(nil)

// NewSlowSync wraps inner, making every Sync take delay.
func NewSlowSync(inner FS, delay time.Duration) *SlowSyncFS {
	return &SlowSyncFS{inner: inner, delay: delay}
}

// Syncs returns how many File.Sync calls have completed.
func (f *SlowSyncFS) Syncs() uint64 { return f.syncs.Load() }

// Create implements FS.
func (f *SlowSyncFS) Create(name string) (File, error) {
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &slowFile{fs: f, inner: inner}, nil
}

// Open implements FS.
func (f *SlowSyncFS) Open(name string) (File, error) {
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &slowFile{fs: f, inner: inner}, nil
}

// Remove implements FS.
func (f *SlowSyncFS) Remove(name string) error { return f.inner.Remove(name) }

// Rename implements FS.
func (f *SlowSyncFS) Rename(oldName, newName string) error {
	return f.inner.Rename(oldName, newName)
}

// List implements FS.
func (f *SlowSyncFS) List(prefix string) ([]string, error) { return f.inner.List(prefix) }

// Exists implements FS.
func (f *SlowSyncFS) Exists(name string) bool { return f.inner.Exists(name) }

type slowFile struct {
	fs    *SlowSyncFS
	inner File
}

var _ File = (*slowFile)(nil)

func (sf *slowFile) WriteAt(p []byte, off int64) (int, error) { return sf.inner.WriteAt(p, off) }
func (sf *slowFile) ReadAt(p []byte, off int64) (int, error)  { return sf.inner.ReadAt(p, off) }
func (sf *slowFile) Append(p []byte) (int, error)             { return sf.inner.Append(p) }
func (sf *slowFile) Size() int64                              { return sf.inner.Size() }
func (sf *slowFile) Bytes() []byte                            { return sf.inner.Bytes() }
func (sf *slowFile) Truncate(size int64) error                { return sf.inner.Truncate(size) }
func (sf *slowFile) Close() error                             { return sf.inner.Close() }

func (sf *slowFile) Sync() error {
	sf.fs.serial.Lock()
	if sf.fs.delay > 0 {
		time.Sleep(sf.fs.delay)
	}
	sf.fs.serial.Unlock()
	sf.fs.syncs.Add(1)
	return sf.inner.Sync()
}
