package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"elsm/internal/core"
)

// fakeIter serves a fixed ascending result list, optionally failing after a
// given number of results (simulating a mid-stream verification failure on
// one shard).
type fakeIter struct {
	res      []core.Result
	pos      int
	failAt   int // -1: never
	err      error
	closed   bool
	closeErr error
}

var errFakeAuth = errors.New("fake: verification failed")

func (it *fakeIter) Next() bool {
	if it.err != nil {
		return false
	}
	if it.failAt >= 0 && it.pos+1 >= it.failAt {
		it.err = errFakeAuth
		return false
	}
	if it.pos+1 >= len(it.res) {
		return false
	}
	it.pos++
	return true
}
func (it *fakeIter) Result() core.Result { return it.res[it.pos] }
func (it *fakeIter) Err() error          { return it.err }
func (it *fakeIter) Close() error {
	it.closed = true
	if it.err != nil {
		return it.err
	}
	return it.closeErr
}

func results(keys ...string) []core.Result {
	out := make([]core.Result, len(keys))
	for i, k := range keys {
		out[i] = core.Result{Key: []byte(k), Value: []byte("v-" + k), Found: true}
	}
	return out
}

// TestMergeIterOrdersAcrossStreams drives the loser tree over stream counts
// that exercise padding (non-power-of-two), empty streams and single-stream
// degeneration, against a sort-based oracle.
func TestMergeIterOrdersAcrossStreams(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for _, k := range []int{1, 2, 3, 4, 5, 8, 13} {
		t.Run(fmt.Sprintf("streams%d", k), func(t *testing.T) {
			// Partition a random disjoint key set across k streams.
			var all []string
			streams := make([][]string, k)
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("key%06d", rnd.Intn(1_000_000))
				si := KeyShard([]byte(key), 16) % k
				streams[si] = append(streams[si], key)
			}
			seen := map[string]bool{}
			its := make([]core.Iterator, k)
			for i := range its {
				sort.Strings(streams[i])
				var uniq []string
				for _, key := range streams[i] {
					if !seen[key] {
						uniq = append(uniq, key)
						seen[key] = true
						all = append(all, key)
					}
				}
				its[i] = &fakeIter{res: results(uniq...), pos: -1, failAt: -1}
			}
			sort.Strings(all)

			closed := false
			it := NewMergeIter(its, func() { closed = true })
			var got []string
			for it.Next() {
				got = append(got, string(it.Result().Key))
				if want := "v-" + got[len(got)-1]; string(it.Result().Value) != want {
					t.Fatalf("value mismatch at %q: %q", got[len(got)-1], it.Result().Value)
				}
			}
			if err := it.Close(); err != nil {
				t.Fatal(err)
			}
			if !closed {
				t.Fatal("onClose hook did not run")
			}
			if len(got) != len(all) {
				t.Fatalf("merged %d results, want %d", len(got), len(all))
			}
			for i := range got {
				if got[i] != all[i] {
					t.Fatalf("order diverged at %d: %q vs %q", i, got[i], all[i])
				}
			}
		})
	}
}

// TestMergeIterPropagatesStreamFailure proves a mid-stream failure on ONE
// shard stops the whole merge with that error — exactly how a per-shard
// verification failure must surface — and that Close still closes every
// input.
func TestMergeIterPropagatesStreamFailure(t *testing.T) {
	a := &fakeIter{res: results("a1", "a3", "a5"), pos: -1, failAt: 2}
	b := &fakeIter{res: results("b2", "b4", "b6"), pos: -1, failAt: -1}
	it := NewMergeIter([]core.Iterator{a, b}, nil)
	n := 0
	for it.Next() {
		n++
	}
	if err := it.Close(); !errors.Is(err, errFakeAuth) {
		t.Fatalf("merge swallowed the stream failure: %v after %d results", err, n)
	}
	if !a.closed || !b.closed {
		t.Fatalf("inputs not closed: a=%v b=%v", a.closed, b.closed)
	}
	if it.Next() {
		t.Fatal("Next after Close")
	}
}

// TestMergeIterCloseSurfacesLateError: an error only visible at input Close
// (e.g. a tampered chunk sitting in a shard's prefetch) must surface from
// the merged Close.
func TestMergeIterCloseSurfacesLateError(t *testing.T) {
	a := &fakeIter{res: results("a"), pos: -1, failAt: -1, closeErr: errFakeAuth}
	b := &fakeIter{res: results("b"), pos: -1, failAt: -1}
	it := NewMergeIter([]core.Iterator{a, b}, nil)
	for it.Next() {
	}
	if err := it.Close(); !errors.Is(err, errFakeAuth) {
		t.Fatalf("late close error lost: %v", err)
	}
}

// TestKeyShardStableAndBalanced pins the routing function: deterministic,
// in-range, and not pathologically unbalanced on sequential keys.
func TestKeyShardStableAndBalanced(t *testing.T) {
	const n = 8
	counts := make([]int, n)
	for i := 0; i < 8000; i++ {
		key := []byte(fmt.Sprintf("user%012d", i))
		si := KeyShard(key, n)
		if si != KeyShard(key, n) {
			t.Fatal("routing not deterministic")
		}
		if si < 0 || si >= n {
			t.Fatalf("shard %d out of range", si)
		}
		counts[si]++
	}
	for i, c := range counts {
		if c < 8000/n/2 || c > 8000/n*2 {
			t.Fatalf("shard %d holds %d of 8000 keys (counts %v) — hash badly skewed", i, c, counts)
		}
	}
}
