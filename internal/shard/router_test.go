package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"elsm/internal/core"
	"elsm/internal/sgx"
	"elsm/internal/vfs"
)

// smallCfg is the geometry used throughout: tiny memtables and tables so a
// few hundred writes exercise flush and compaction on every shard.
func smallCfg(fs vfs.FS) core.Config {
	return core.Config{
		FS:            fs,
		MemtableSize:  4 << 10,
		BlockSize:     512,
		TableFileSize: 4 << 10,
		LevelBase:     16 << 10,
		MaxLevels:     5,
		KeepVersions:  1,
	}
}

// openRouter builds an n-shard router of eLSM-P2 stores over the given
// per-shard filesystems (nil entries get a private MemFS), sharing one
// enclave the way the public layer does.
func openRouter(t *testing.T, fss []vfs.FS, mut func(i int, cfg *core.Config)) *Router {
	t.Helper()
	enclave := sgx.New(sgx.Params{})
	shards := make([]core.KV, len(fss))
	for i, fs := range fss {
		cfg := smallCfg(fs)
		cfg.Enclave = enclave
		if mut != nil {
			mut(i, &cfg)
		}
		s, err := core.Open(cfg)
		if err != nil {
			t.Fatalf("open shard %d: %v", i, err)
		}
		shards[i] = s
	}
	r, err := New(shards)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRouterRejectsBadShardCount(t *testing.T) {
	for _, n := range []int{0, 3, 6} {
		shards := make([]core.KV, n)
		if _, err := New(shards); err == nil {
			t.Fatalf("shard count %d accepted", n)
		}
	}
}

// TestRouterEndToEnd drives single-key ops, cross-shard batches, merged
// scans and snapshots through a 4-shard router and cross-checks every read
// against an in-memory model.
func TestRouterEndToEnd(t *testing.T) {
	r := openRouter(t, make([]vfs.FS, 4), nil)
	defer r.Close()

	model := map[string]string{}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("key%04d", i)
		val := fmt.Sprintf("val%d", i)
		if _, err := r.Put([]byte(key), []byte(val)); err != nil {
			t.Fatal(err)
		}
		model[key] = val
	}
	// Cross-shard batches: overwrite a slice of the key space atomically.
	for batch := 0; batch < 10; batch++ {
		var ops []core.BatchOp
		for i := batch * 20; i < batch*20+20; i++ {
			key := fmt.Sprintf("key%04d", i)
			val := fmt.Sprintf("batched%d-%d", batch, i)
			ops = append(ops, core.BatchOp{Key: []byte(key), Value: []byte(val)})
			model[key] = val
		}
		// Delete one key per batch through the same commit.
		dk := fmt.Sprintf("key%04d", batch*20+7)
		ops = append(ops, core.BatchOp{Key: []byte(dk), Delete: true})
		delete(model, dk)
		if _, err := r.ApplyBatch(ops); err != nil {
			t.Fatal(err)
		}
	}

	for key, want := range model {
		res, err := r.Get([]byte(key))
		if err != nil || !res.Found || string(res.Value) != want {
			t.Fatalf("get %q = %q found=%v err=%v, want %q", key, res.Value, res.Found, err, want)
		}
	}
	if res, err := r.Get([]byte("key0007")); err != nil || res.Found {
		t.Fatalf("deleted key still found: %+v err=%v", res, err)
	}

	// Merged scan: complete, ordered, verified.
	scan, err := r.Scan([]byte("key"), []byte("kez"))
	if err != nil {
		t.Fatal(err)
	}
	if len(scan) != len(model) {
		t.Fatalf("scan returned %d results, model holds %d", len(scan), len(model))
	}
	for i := 1; i < len(scan); i++ {
		if bytes.Compare(scan[i-1].Key, scan[i].Key) >= 0 {
			t.Fatalf("merged scan out of order at %d: %q ≥ %q", i, scan[i-1].Key, scan[i].Key)
		}
	}
	for _, res := range scan {
		if model[string(res.Key)] != string(res.Value) {
			t.Fatalf("scan %q = %q, want %q", res.Key, res.Value, model[string(res.Key)])
		}
	}

	// Snapshot: repeatable across churn on every shard.
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	before, err := scanSnap(snap, "key", "kez")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := r.Put([]byte(fmt.Sprintf("key%04d", i)), []byte("churned")); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	after, err := scanSnap(snap, "key", "kez")
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("snapshot drifted: %d -> %d results", len(before), len(after))
	}
	for i := range before {
		if !bytes.Equal(before[i].Key, after[i].Key) || !bytes.Equal(before[i].Value, after[i].Value) {
			t.Fatalf("snapshot drifted at %d: %q/%q -> %q/%q",
				i, before[i].Key, before[i].Value, after[i].Key, after[i].Value)
		}
	}
}

func scanSnap(snap core.Snapshot, start, end string) ([]core.Result, error) {
	it := snap.IterAt(nil, []byte(start), []byte(end), ^uint64(0))
	var out []core.Result
	for it.Next() {
		out = append(out, it.Result())
	}
	if err := it.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// TestRouterCommitAsyncAggregate checks the aggregate future: acknowledged
// with the max per-shard timestamp, resolved durable, Sync as barrier.
func TestRouterCommitAsyncAggregate(t *testing.T) {
	r := openRouter(t, make([]vfs.FS, 2), nil)
	defer r.Close()
	ctx := context.Background()

	var ops []core.BatchOp
	for i := 0; i < 32; i++ {
		ops = append(ops, core.BatchOp{Key: []byte(fmt.Sprintf("async%03d", i)), Value: []byte("v")})
	}
	fut, err := r.CommitAsync(ctx, ops)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := fut.Ts(ctx)
	if err != nil || ts == 0 {
		t.Fatalf("aggregate ack: ts=%d err=%v", ts, err)
	}
	if err := r.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(ctx); err != nil {
		t.Fatalf("aggregate resolve after Sync: %v", err)
	}
	for i := 0; i < 32; i++ {
		res, err := r.Get([]byte(fmt.Sprintf("async%03d", i)))
		if err != nil || !res.Found {
			t.Fatalf("async record %d: %v found=%v", i, err, res.Found)
		}
	}
}

// TestCrossShardCancellationNeverTears: a context cancelled before a
// cross-shard commit is admitted withdraws the WHOLE batch — no shard
// applies its sub-batch — preserving the single-store withdrawal contract
// across shards (cancellation is checked only before the point of no
// return; after it the batch commits in full).
func TestCrossShardCancellationNeverTears(t *testing.T) {
	r := openRouter(t, make([]vfs.FS, 2), nil)
	defer r.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ops := []core.BatchOp{
		{Key: []byte("cancel-a"), Value: []byte("v")},
		{Key: []byte("cancel-b"), Value: []byte("v")},
		{Key: []byte("cancel-c"), Value: []byte("v")},
		{Key: []byte("cancel-d"), Value: []byte("v")},
	}
	if _, err := r.ApplyBatchCtx(ctx, ops); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled cross-shard ApplyBatch: %v", err)
	}
	if _, err := r.CommitAsync(ctx, ops); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled cross-shard CommitAsync: %v", err)
	}
	res, err := r.Scan([]byte("cancel"), []byte("cancem"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("cancelled batch partially applied: %d records landed", len(res))
	}
}

// TestCrossShardCrashMidCommit is the crash-atomicity scenario: a
// fault-injected fsync on ONE shard kills a cross-shard batch stream
// mid-commit. The router must report the failure (never acknowledge a
// half-landed batch as committed), and after a crash + heal + reopen each
// shard must recover to a verified state in which every batch the router
// DID acknowledge is fully present on all shards, and every sub-batch is
// whole-or-absent (per-shard WAL group atomicity).
func TestCrossShardCrashMidCommit(t *testing.T) {
	const n = 2
	// Shard 0 writes a healthy MemFS; shard 1 sits behind a fault injector.
	healthyMem := vfs.NewMem()
	faultMem := vfs.NewMem()
	ffs := vfs.NewFault(faultMem)
	fss := []vfs.FS{healthyMem, ffs}

	platforms := make([]*sgx.Platform, n)
	counters := make([]*sgx.MonotonicCounter, n)
	r := openRouter(t, fss, func(i int, cfg *core.Config) {
		p, err := sgx.NewPlatform()
		if err != nil {
			t.Fatal(err)
		}
		platforms[i] = p
		counters[i] = sgx.NewMonotonicCounter()
		cfg.Platform = p
		cfg.Counter = counters[i]
		cfg.CounterInterval = 8
	})

	// Commit cross-shard batches until the injected fault fires. Each batch
	// spans both shards by construction (keys probed via KeyShard).
	keyFor := func(shard, batch, i int) []byte {
		for salt := 0; ; salt++ {
			k := []byte(fmt.Sprintf("b%03d-s%d-i%d-%d", batch, shard, i, salt))
			if KeyShard(k, n) == shard {
				return k
			}
		}
	}
	acked := map[int]bool{}
	ffs.Arm(40)
	var failedBatch = -1
	for batch := 0; batch < 500; batch++ {
		var ops []core.BatchOp
		for i := 0; i < 2; i++ {
			ops = append(ops, core.BatchOp{Key: keyFor(0, batch, i), Value: []byte("v")})
			ops = append(ops, core.BatchOp{Key: keyFor(1, batch, i), Value: []byte("v")})
		}
		if _, err := r.ApplyBatch(ops); err != nil {
			if !errors.Is(err, vfs.ErrInjected) {
				t.Fatalf("batch %d: unexpected error class: %v", batch, err)
			}
			failedBatch = batch
			break
		}
		acked[batch] = true
	}
	if failedBatch < 0 {
		t.Fatal("fault never fired")
	}

	// Crash: abandon the router without Close, heal the disk, reopen each
	// shard from its surviving bytes with its own persisted root of trust.
	ffs.Disarm()
	survivors := []vfs.FS{healthyMem, faultMem}
	shards := make([]core.KV, n)
	for i := 0; i < n; i++ {
		cfg := smallCfg(survivors[i])
		cfg.Platform = platforms[i]
		cfg.Counter = counters[i]
		cfg.CounterInterval = 8
		s, err := core.Open(cfg)
		if err != nil {
			// Refusing recovery outright is acceptable for the FAULTED
			// shard (fail closed)...
			if i == 1 {
				t.Logf("faulted shard refused recovery (fail-closed): %v", err)
				return
			}
			// ...but the healthy shard must recover.
			t.Fatalf("healthy shard %d refused recovery: %v", i, err)
		}
		shards[i] = s
	}
	r2, err := New(shards)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()

	// Every acknowledged batch must be fully present on BOTH shards: the
	// router only acknowledged after every shard's group was durable.
	for batch := range acked {
		for shard := 0; shard < n; shard++ {
			for i := 0; i < 2; i++ {
				key := keyFor(shard, batch, i)
				res, err := r2.Get(key)
				if err != nil {
					t.Fatalf("verified read of acked batch %d key %q failed: %v", batch, key, err)
				}
				if !res.Found {
					t.Fatalf("acked batch %d lost key %q on shard %d after crash", batch, key, shard)
				}
			}
		}
	}
	// The failed batch obeys per-shard atomicity: on each shard its
	// sub-batch is whole or absent.
	for shard := 0; shard < n; shard++ {
		found := 0
		for i := 0; i < 2; i++ {
			res, err := r2.Get(keyFor(shard, failedBatch, i))
			if err != nil {
				t.Fatalf("read of failed batch on shard %d: %v", shard, err)
			}
			if res.Found {
				found++
			}
		}
		if found != 0 && found != 2 {
			t.Fatalf("failed batch torn WITHIN shard %d: %d of 2 keys present", shard, found)
		}
	}
}

// TestRouterConcurrentWritersAcrossShards is the -race stress: concurrent
// writers issuing single-key puts, cross-shard sync batches and async
// commits while readers run merged scans and snapshots. Run with -race in
// CI.
func TestRouterConcurrentWritersAcrossShards(t *testing.T) {
	r := openRouter(t, make([]vfs.FS, 4), nil)
	defer r.Close()
	ctx := context.Background()

	const writers = 8
	const opsEach = 60
	var wg sync.WaitGroup
	errCh := make(chan error, writers+2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				switch i % 3 {
				case 0:
					if _, err := r.Put([]byte(fmt.Sprintf("w%d-key%04d", w, i)), []byte("v")); err != nil {
						errCh <- err
						return
					}
				case 1:
					var ops []core.BatchOp
					for j := 0; j < 6; j++ {
						ops = append(ops, core.BatchOp{
							Key:   []byte(fmt.Sprintf("w%d-batch%04d-%d", w, i, j)),
							Value: []byte("v"),
						})
					}
					if _, err := r.ApplyBatchCtx(ctx, ops); err != nil {
						errCh <- err
						return
					}
				default:
					var ops []core.BatchOp
					for j := 0; j < 6; j++ {
						ops = append(ops, core.BatchOp{
							Key:   []byte(fmt.Sprintf("w%d-async%04d-%d", w, i, j)),
							Value: []byte("v"),
						})
					}
					fut, err := r.CommitAsync(ctx, ops)
					if err != nil {
						errCh <- err
						return
					}
					if _, err := fut.Ts(ctx); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	// Two readers: merged scans and pinned snapshots under the write storm.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for rd := 0; rd < 2; rd++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := r.Snapshot()
				if err != nil {
					errCh <- err
					return
				}
				a, err := scanSnap(snap, "w", "x")
				if err != nil {
					snap.Close()
					errCh <- err
					return
				}
				b, err := scanSnap(snap, "w", "x")
				if err != nil {
					snap.Close()
					errCh <- err
					return
				}
				snap.Close()
				if len(a) != len(b) {
					errCh <- fmt.Errorf("snapshot not repeatable: %d vs %d results", len(a), len(b))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	if err := r.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	// Everything landed: cross-check a sample and the total count.
	scan, err := r.Scan([]byte("w"), []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	want := writers * (opsEach/3*6*2 + (opsEach+2)/3)
	if len(scan) != want {
		t.Fatalf("scan after storm: %d results, want %d", len(scan), want)
	}
}
