// Package shard multiplies a single authenticated store into a
// hash-partitioned fleet: a Router owns N independent core.KV instances —
// each with its own WAL, memtable pair, digest forest, group committer,
// maintenance worker and monotonic counter, under a per-shard directory —
// and re-exports the full verified API over their union.
//
// Partitioning is by stable hash of the key (FNV-1a, masked to a
// power-of-two shard count), so a key's shard never changes and every
// single-key operation routes to exactly one shard's pipeline. Cross-shard
// batches split into per-shard sub-batches committed through each shard's
// group-commit pipeline concurrently — N WAL fsync streams and N counter
// cadences proceed in parallel where a single instance serializes them —
// and range reads merge the per-shard verified chunk streams with a
// loser-tree k-way merge (merge.go) that preserves each shard's
// completeness proof: hash partitions are disjoint and exhaustive, so N
// per-shard complete ranges merge into one complete range.
//
// Trust is per shard: each instance maintains its own Merkle forest, WAL
// digest chain and monotonic counter, so one shard's seal never binds
// another's state and recovery validates each partition independently. The
// router adds no trusted state of its own beyond the (recomputable)
// key-to-shard hash.
//
// Cross-shard writes are atomic per shard (each sub-batch is one
// marker-terminated WAL group) and all-or-error at the router: a commit is
// acknowledged only after every involved shard accepted its sub-batch, and
// reported failed if any shard's pipeline failed. A crash mid-commit can
// durably apply the sub-batches of some shards and tear away others' —
// exactly the window of a single store's unacknowledged group — and each
// surviving sub-batch recovers whole or not at all.
//
// Snapshots (and the iterators/scans built on them) are torn-write free: a
// router snapshot pins all N shard snapshots under a gate that every
// in-flight cross-shard commit holds until it is visible on all its shards,
// and stamps the pin set with the router sequence — so multi-shard reads
// are repeatable and never observe half a batch.
package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"elsm/internal/core"
	"elsm/internal/lsm"
	"elsm/internal/obs"
	"elsm/internal/record"
)

// DirName is the per-shard subdirectory name inside the store's directory:
// shard i of an N-shard store lives in DirName(i).
func DirName(i int) string { return fmt.Sprintf("shard-%02d", i) }

// KeyShard returns the shard index key routes to among n shards (n must be
// a power of two). The hash is FNV-1a over the raw key bytes: stable across
// processes and restarts, so a store must be reopened with the Shards value
// it was created with.
func KeyShard(key []byte, n int) int {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	return int(h & uint64(n-1))
}

// Router partitions keys across N independent authenticated stores and
// implements core.KV over their union.
type Router struct {
	shards []core.KV
	// seq is the router-level commit sequence: one tick per write admitted
	// through the router. It orders router snapshots (Snapshot.Ts) — shard
	// timestamps are per-shard and mutually incomparable.
	seq atomic.Uint64
	// gate makes cross-shard batches atomic with respect to snapshots:
	// every multi-shard commit holds a read lock from admission until the
	// batch is durable and visible on all its shards; Snapshot takes the
	// write lock, so the N shard snapshots it pins never capture half a
	// batch. Single-shard operations skip the gate — per-shard atomicity
	// already covers them.
	gate sync.RWMutex
	// obs, when non-nil, receives cross-shard batch end-to-end latencies
	// (the RouterBatch histogram): the router is the only vantage point
	// that sees a multi-shard commit whole.
	obs *obs.Observer
}

var _ core.KV = (*Router)(nil)

// New builds a router over already-opened shards. The shard count must be a
// power of two (the mask-based hash routing depends on it); the order of
// the slice is the shard numbering and must match the on-disk per-shard
// directories across restarts.
func New(shards []core.KV) (*Router, error) {
	n := len(shards)
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("shard: shard count must be a power of two ≥ 1, got %d", n)
	}
	return &Router{shards: shards}, nil
}

// SetObserver routes cross-shard batch latencies to o (nil disables).
// Call before serving traffic; the field is not synchronized.
func (r *Router) SetObserver(o *obs.Observer) { r.obs = o }

// NumShards reports the partition count.
func (r *Router) NumShards() int { return len(r.shards) }

// Shard exposes one partition's store (stats aggregation and tests).
func (r *Router) Shard(i int) core.KV { return r.shards[i] }

// Seq reports the router commit sequence (the value stamped on snapshots).
func (r *Router) Seq() uint64 { return r.seq.Load() }

// route returns the shard owning key.
func (r *Router) route(key []byte) core.KV {
	return r.shards[KeyShard(key, len(r.shards))]
}

// Put implements core.KV.
func (r *Router) Put(key, value []byte) (uint64, error) { return r.PutCtx(nil, key, value) }

// PutCtx implements core.KV: the write routes to its key's shard and rides
// that shard's group-commit pipeline.
func (r *Router) PutCtx(ctx context.Context, key, value []byte) (uint64, error) {
	ts, err := r.route(key).PutCtx(ctx, key, value)
	if err == nil {
		r.seq.Add(1)
	}
	return ts, err
}

// Delete implements core.KV.
func (r *Router) Delete(key []byte) (uint64, error) { return r.DeleteCtx(nil, key) }

// DeleteCtx implements core.KV.
func (r *Router) DeleteCtx(ctx context.Context, key []byte) (uint64, error) {
	ts, err := r.route(key).DeleteCtx(ctx, key)
	if err == nil {
		r.seq.Add(1)
	}
	return ts, err
}

// Get implements core.KV.
func (r *Router) Get(key []byte) (core.Result, error) { return r.GetAt(key, record.MaxTs) }

// GetAt implements core.KV.
func (r *Router) GetAt(key []byte, tsq uint64) (core.Result, error) {
	return r.GetAtCtx(nil, key, tsq)
}

// GetAtCtx implements core.KV: one shard's verified GET protocol.
func (r *Router) GetAtCtx(ctx context.Context, key []byte, tsq uint64) (core.Result, error) {
	return r.route(key).GetAtCtx(ctx, key, tsq)
}

// split partitions a batch into per-shard sub-batches, preserving the
// caller's operation order within each shard (later ops on the same key
// must keep their higher timestamps). It returns the indices of the shards
// that received at least one operation.
func (r *Router) split(ops []core.BatchOp) (parts [][]core.BatchOp, involved []int) {
	n := len(r.shards)
	parts = make([][]core.BatchOp, n)
	for _, op := range ops {
		si := KeyShard(op.Key, n)
		if parts[si] == nil {
			involved = append(involved, si)
		}
		parts[si] = append(parts[si], op)
	}
	return parts, involved
}

// ApplyBatch implements core.KV.
func (r *Router) ApplyBatch(ops []core.BatchOp) (uint64, error) { return r.ApplyBatchCtx(nil, ops) }

// ApplyBatchCtx implements core.KV: the batch splits into per-shard
// sub-batches, each committed atomically through its shard's pipeline, with
// the per-shard fsyncs proceeding in parallel. The call returns once every
// sub-batch is durable (an all-shards durability barrier), reporting the
// highest per-shard commit timestamp; any shard's failure is the batch's
// outcome. The ctx is checked only BEFORE the router starts admitting:
// cancellation then withdraws the whole batch (nothing written on any
// shard); once admission begins, every sub-batch is admitted and the
// commit completes regardless — the single-store "claimed commits finish"
// contract at batch granularity, so a cancellation can never tear a batch
// across shards. (A shard pipeline failing mid-admission — store closed,
// I/O fault — can still leave the earlier shards' sub-batches applied;
// that is the crash window, and the call reports the failure.)
func (r *Router) ApplyBatchCtx(ctx context.Context, ops []core.BatchOp) (uint64, error) {
	if len(ops) == 0 {
		return 0, nil
	}
	parts, involved := r.split(ops)
	if len(involved) == 1 {
		ts, err := r.shards[involved[0]].ApplyBatchCtx(ctx, parts[involved[0]])
		if err == nil {
			r.seq.Add(1)
		}
		return ts, err
	}
	if err := ctxErr(ctx); err != nil {
		return 0, err
	}
	// Cross-shard: hold the snapshot gate until the batch is visible
	// everywhere, so no snapshot pins a state with half of it.
	var start time.Time
	if r.obs != nil {
		start = time.Now()
	}
	r.gate.RLock()
	defer r.gate.RUnlock()
	futs := make([]*lsm.CommitFuture, 0, len(involved))
	var admitErr error
	for _, si := range involved {
		// nil ctx: after the point of no return, admission must not be
		// severable per shard.
		fut, err := r.shards[si].CommitAsync(nil, parts[si])
		if err != nil {
			admitErr = err
			break
		}
		futs = append(futs, fut)
	}
	var maxTs uint64
	firstErr := admitErr
	for _, fut := range futs {
		// nil ctx: admitted sub-batches complete regardless; abandoning the
		// wait would release the gate while siblings are still landing.
		ts, err := fut.Wait(nil)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if ts > maxTs {
			maxTs = ts
		}
	}
	if firstErr != nil {
		return 0, firstErr
	}
	r.seq.Add(1)
	if r.obs != nil {
		r.obs.RouterBatch.ObserveSince(start)
	}
	return maxTs, nil
}

// ctxErr tolerates nil contexts.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// CommitAsync implements core.KV: per-shard sub-batches are admitted to
// every involved shard's pipelined committer, and the returned future is
// the aggregate — acknowledged once every shard accepted (highest per-shard
// timestamp), resolved once every shard is durable. The snapshot gate is
// held by the aggregation goroutine until the whole batch has settled. As
// with ApplyBatchCtx, the ctx bounds only the pre-admission check: a
// cancellation before admission withdraws the whole batch; after it, every
// sub-batch is admitted unconditionally so cancellation can never tear the
// batch across shards.
func (r *Router) CommitAsync(ctx context.Context, ops []core.BatchOp) (*core.CommitFuture, error) {
	if len(ops) == 0 {
		return lsm.NewResolvedFuture(0, nil), nil
	}
	parts, involved := r.split(ops)
	if len(involved) == 1 {
		fut, err := r.shards[involved[0]].CommitAsync(ctx, parts[involved[0]])
		if err == nil {
			r.seq.Add(1)
		}
		return fut, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	r.gate.RLock()
	futs := make([]*lsm.CommitFuture, 0, len(involved))
	for _, si := range involved {
		fut, err := r.shards[si].CommitAsync(nil, parts[si])
		if err != nil {
			// A shard pipeline failed mid-admission (store closed, fault):
			// the already-admitted sub-batches cannot be withdrawn. Wait
			// them out (releasing the gate only when the partial batch is
			// settled) and report the failure.
			for _, f := range futs {
				f.Wait(nil)
			}
			r.gate.RUnlock()
			return nil, err
		}
		futs = append(futs, fut)
	}
	r.seq.Add(1)
	return lsm.NewAggregateFuture(futs, r.gate.RUnlock), nil
}

// Sync implements core.KV: the durability barrier fans out to every shard
// in parallel and returns once all N pipelines have drained.
func (r *Router) Sync(ctx context.Context) error {
	errs := make(chan error, len(r.shards))
	for _, sh := range r.shards {
		go func(sh core.KV) { errs <- sh.Sync(ctx) }(sh)
	}
	var firstErr error
	for range r.shards {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Scan implements core.KV: the materialized form of the merged verified
// stream.
func (r *Router) Scan(start, end []byte) ([]core.Result, error) {
	it := r.IterAt(start, end, record.MaxTs)
	var out []core.Result
	for it.Next() {
		out = append(out, it.Result())
	}
	if err := it.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// IterAt implements core.KV.
func (r *Router) IterAt(start, end []byte, tsq uint64) core.Iterator {
	return r.IterAtCtx(nil, start, end, tsq)
}

// IterAtCtx implements core.KV: the range streams from every shard's
// verified chunk iterator and merges in key order through the loser tree.
// The whole merged stream runs over ONE router snapshot — all N shard views
// pinned atomically under the commit gate — so it is a point-in-time
// observation across shards, and each shard's incremental completeness
// verification carries over: the hash partition is exhaustive, so N
// complete per-shard ranges compose into one complete range.
func (r *Router) IterAtCtx(ctx context.Context, start, end []byte, tsq uint64) core.Iterator {
	snap, err := r.Snapshot()
	if err != nil {
		return core.NewSliceIter(nil, err)
	}
	return snap.(*snapshot).iterAt(ctx, start, end, tsq, func() { snap.Close() })
}

// Snapshot implements core.KV: it pins one snapshot per shard under the
// commit gate — no cross-shard batch is mid-flight while the pins are taken
// — and stamps the set with the router sequence. Reads through it are
// repeatable across all shards and verified exactly like each shard's live
// paths.
//
// The consistent cut has a cost: capture waits for every cross-shard
// commit admitted before it to become durable and visible (and queues
// later cross-shard admissions behind it while waiting) — under a deep
// cross-shard CommitAsync pipeline that is up to the pipeline's drain
// time. Single-key reads and single-shard commits never touch the gate.
func (r *Router) Snapshot() (core.Snapshot, error) {
	r.gate.Lock()
	subs := make([]core.Snapshot, len(r.shards))
	for i, sh := range r.shards {
		sub, err := sh.Snapshot()
		if err != nil {
			for _, open := range subs[:i] {
				open.Close()
			}
			r.gate.Unlock()
			return nil, err
		}
		subs[i] = sub
	}
	seq := r.seq.Load()
	r.gate.Unlock()
	return &snapshot{r: r, seq: seq, subs: subs}, nil
}

// Close implements core.KV: every shard seals its final trusted state.
func (r *Router) Close() error {
	var firstErr error
	for _, sh := range r.shards {
		if err := sh.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// flusher, loader and engined are the optional per-shard surfaces the
// router re-exports for tooling (benchmarks, bulk ingestion, tests).
type flusher interface{ Flush() error }
type loader interface {
	BulkLoad([]record.Record) error
}
type engined interface{ Engine() *lsm.Store }

// Flush forces every shard's memtable to disk.
func (r *Router) Flush() error {
	for _, sh := range r.shards {
		if f, ok := sh.(flusher); ok {
			if err := f.Flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// WaitMaintenance blocks until every shard's background flush/compaction
// worker has drained the jobs enqueued before the call.
func (r *Router) WaitMaintenance() error {
	for _, sh := range r.shards {
		if e, ok := sh.(engined); ok {
			if err := e.Engine().WaitMaintenance(); err != nil {
				return err
			}
		}
	}
	return nil
}

// BulkLoad partitions an already-sorted record set by key hash and loads
// each shard's subset through its authenticated bulk path (subsequences of
// a sorted list stay sorted). Record timestamps are preserved as given —
// after a sharded bulk load, per-shard timestamp sequences resume from each
// shard's own maximum.
func (r *Router) BulkLoad(recs []record.Record) error {
	n := len(r.shards)
	parts := make([][]record.Record, n)
	for _, rec := range recs {
		si := KeyShard(rec.Key, n)
		parts[si] = append(parts[si], rec)
	}
	for i, sh := range r.shards {
		if len(parts[i]) == 0 {
			continue
		}
		l, ok := sh.(loader)
		if !ok {
			return fmt.Errorf("shard: shard %d does not support bulk loading", i)
		}
		if err := l.BulkLoad(parts[i]); err != nil {
			return fmt.Errorf("shard: bulk load shard %d: %w", i, err)
		}
	}
	return nil
}

// snapshot is the router's pinned read session: one sub-snapshot per shard,
// captured atomically against cross-shard commits.
type snapshot struct {
	r    *Router
	seq  uint64
	subs []core.Snapshot
	once sync.Once
	cerr error
}

var _ core.Snapshot = (*snapshot)(nil)

// Ts implements core.Snapshot. For a sharded store this is the ROUTER
// sequence at capture, not a record timestamp: per-shard trusted
// timestamps are mutually incomparable, so the router orders snapshots by
// its own commit sequence instead.
func (s *snapshot) Ts() uint64 { return s.seq }

// GetAt implements core.Snapshot: the key's shard answers from its pinned
// view (tsq clamped per shard).
func (s *snapshot) GetAt(ctx context.Context, key []byte, tsq uint64) (core.Result, error) {
	return s.subs[KeyShard(key, len(s.subs))].GetAt(ctx, key, tsq)
}

// IterAt implements core.Snapshot: the merged verified stream over the
// pinned per-shard views. The iterator does not outlive the snapshot's
// pins; callers must keep the snapshot open until the stream closes (the
// public layer's iterators hold their own sub-iterator pins, so this only
// constrains direct core users).
func (s *snapshot) IterAt(ctx context.Context, start, end []byte, tsq uint64) core.Iterator {
	return s.iterAt(ctx, start, end, tsq, nil)
}

// iterAt builds the merged stream, with an optional hook run when it
// closes (the live Iter path releases its backing snapshot through it).
func (s *snapshot) iterAt(ctx context.Context, start, end []byte, tsq uint64, onClose func()) core.Iterator {
	its := make([]core.Iterator, len(s.subs))
	for i, sub := range s.subs {
		its[i] = sub.IterAt(ctx, start, end, tsq)
	}
	return NewMergeIter(its, onClose)
}

// Close implements core.Snapshot: releases every shard's pins. Idempotent.
func (s *snapshot) Close() error {
	s.once.Do(func() {
		for _, sub := range s.subs {
			if err := sub.Close(); err != nil && s.cerr == nil {
				s.cerr = err
			}
		}
	})
	return s.cerr
}
