package shard

import (
	"bytes"

	"elsm/internal/core"
)

// mergeIter merges k key-ascending verified streams (one per shard) into
// one key-ascending stream with a loser tree: a tournament over the k
// stream heads where each internal node remembers the LOSER of its match
// and the overall winner sits at the root. Advancing costs one leaf refill
// plus a replay of the single root-to-leaf path — ⌈log₂ k⌉ comparisons —
// instead of the 2·log k of a binary heap's sift-down, and the comparison
// path is branch-predictable because only the winner's path changes.
//
// Hash partitions are disjoint, so no two streams ever present the same
// key and the merge needs no duplicate resolution; ties cannot occur (the
// index-order tiebreak exists only for exhausted sentinels). Each input
// stream verifies its own chunk proofs and range completeness as it is
// drained, so a verification failure on ANY shard stops the merged stream
// with that shard's error — the merged result is complete iff every
// per-shard range was complete, which is exactly what each shard proves.
//
// The k streams keep their own one-chunk background prefetch, so a merged
// scan keeps up to k chunks in flight — the sharded counterpart of the
// single-store iterator's lookahead.
type mergeIter struct {
	its  []core.Iterator
	keys [][]byte // current head key per stream; nil = exhausted
	k    int      // live stream count (len(its))
	cap2 int      // leaf slots: k padded to a power of two
	tree []int    // internal nodes 1..cap2-1: losing leaf of that match
	win  int      // current overall winner leaf

	onClose func()
	cur     core.Result
	primed  bool
	closed  bool
	err     error
}

var _ core.Iterator = (*mergeIter)(nil)

// NewMergeIter merges already-positioned (not yet advanced) iterators in
// key order, taking ownership: Close closes every input. onClose, if
// non-nil, runs once after the inputs close — the router releases the
// backing snapshot through it.
func NewMergeIter(its []core.Iterator, onClose func()) core.Iterator {
	k := len(its)
	if k == 1 && onClose == nil {
		return its[0]
	}
	cap2 := 1
	for cap2 < k {
		cap2 <<= 1
	}
	return &mergeIter{
		its:     its,
		keys:    make([][]byte, cap2),
		k:       k,
		cap2:    cap2,
		tree:    make([]int, cap2),
		onClose: onClose,
	}
}

// beats reports whether leaf a wins against leaf b: exhausted leaves lose
// to live ones, and live leaves compare by key (lower key wins; the merge
// is ascending). Pad leaves (index ≥ k) are permanently exhausted.
func (m *mergeIter) beats(a, b int) bool {
	ka, kb := m.keys[a], m.keys[b]
	switch {
	case ka == nil:
		return kb == nil && a < b
	case kb == nil:
		return true
	default:
		return bytes.Compare(ka, kb) < 0
	}
}

// advance refills leaf i from its stream; a stream error stops the merge.
func (m *mergeIter) advance(i int) {
	if m.its[i].Next() {
		m.keys[i] = m.its[i].Result().Key
		return
	}
	m.keys[i] = nil
	if err := m.its[i].Err(); err != nil && m.err == nil {
		m.err = err
	}
}

// rebuild plays the full tournament bottom-up: winners propagate toward
// the root, each internal node records its match's loser.
func (m *mergeIter) rebuild() {
	winner := make([]int, 2*m.cap2)
	for i := 0; i < m.cap2; i++ {
		winner[m.cap2+i] = i
	}
	for n := m.cap2 - 1; n >= 1; n-- {
		a, b := winner[2*n], winner[2*n+1]
		if m.beats(a, b) {
			winner[n], m.tree[n] = a, b
		} else {
			winner[n], m.tree[n] = b, a
		}
	}
	m.win = winner[1]
}

// replay re-runs only the matches on leaf's root path — the one path the
// last advance could have changed.
func (m *mergeIter) replay(leaf int) {
	w := leaf
	for n := (m.cap2 + leaf) >> 1; n >= 1; n >>= 1 {
		if m.beats(m.tree[n], w) {
			m.tree[n], w = w, m.tree[n]
		}
	}
	m.win = w
}

// Next implements core.Iterator.
func (m *mergeIter) Next() bool {
	if m.closed || m.err != nil {
		return false
	}
	if !m.primed {
		for i := 0; i < m.k; i++ {
			m.advance(i)
			if m.err != nil {
				return false
			}
		}
		m.rebuild()
		m.primed = true
	} else {
		m.advance(m.win)
		if m.err != nil {
			return false
		}
		m.replay(m.win)
	}
	if m.keys[m.win] == nil {
		return false // every stream exhausted
	}
	m.cur = m.its[m.win].Result()
	return true
}

// Result implements core.Iterator.
func (m *mergeIter) Result() core.Result { return m.cur }

// Err implements core.Iterator.
func (m *mergeIter) Err() error { return m.err }

// Close implements core.Iterator: closes every input stream first — so a
// tampered chunk still in some shard's prefetch surfaces here — then runs
// the onClose hook (releasing the router snapshot backing a live-path
// merge). Returns the error that stopped the merge, or the first input
// close error.
func (m *mergeIter) Close() error {
	if m.closed {
		return m.err
	}
	m.closed = true
	for _, it := range m.its {
		if err := it.Close(); err != nil && m.err == nil {
			m.err = err
		}
	}
	if m.onClose != nil {
		m.onClose()
	}
	return m.err
}
