// Package obs is the store's observability subsystem: lock-free
// log-bucket latency histograms cheap enough to leave on in production,
// a sampled trace recorder for the commit pipeline, a slow-op log that
// captures the stage breakdown of outliers, and a bounded structured
// event log for the faults that used to be silent (fail-stops, fenced
// frames, re-bootstraps, promotions, BUSY sheds, torn-tail recoveries).
//
// The design splits along the hot/cold boundary:
//
//   - Histogram is the hot-path primitive: a fixed array of atomic
//     buckets on a log scale (8 sub-buckets per octave, ~12% relative
//     error). Observe is two atomic adds and one atomic increment, no
//     allocation, no lock; nil receivers are no-ops so an uninstrumented
//     store pays only a pointer test.
//   - Recorder bundles one shard's named histograms; Observer holds the
//     cross-shard state (trace ring, slow-op ring, event ring, the
//     network-service histogram). Rings are mutex-guarded — they are off
//     the per-op path: traces are built per commit GROUP and only when
//     sampled or slow, events only on faults.
//
// Quantiles are estimated from bucket midpoints when a snapshot is
// rendered (STATS pairs, /metrics); nothing on the write side ever
// sorts. Snapshots from different shards Merge exactly — buckets add —
// so the store-wide percentile is computed from the summed buckets, not
// approximated from per-shard percentiles.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Bucket layout: values 0..7 get exact buckets; every later octave
// [2^k, 2^(k+1)) splits into 8 sub-buckets, giving ≤ 1/8 relative bucket
// width across the full uint64 range. 496 buckets cover it; the array is
// fixed so a Histogram is one allocation-free 4 KB value.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits // sub-buckets per octave
	// NumBuckets is the bucket count: 8 exact low buckets plus 61 octaves
	// (top bit positions 3..63) of 8 sub-buckets each.
	NumBuckets = histSub + 61*histSub
)

// bucketOf maps a value to its bucket index (monotone in v).
func bucketOf(v uint64) int {
	if v < histSub {
		return int(v)
	}
	o := bits.Len64(v) - 1 // position of the top bit, ≥ 3
	sub := (v >> (uint(o) - histSubBits)) & (histSub - 1)
	return (o-histSubBits)*histSub + int(sub) + histSub
}

// bucketLow returns the smallest value mapping to bucket i.
func bucketLow(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	g := i>>histSubBits - 1 // octave group 0.. (top bit position g+3)
	sub := uint64(i & (histSub - 1))
	return (histSub + sub) << uint(g)
}

// bucketMid returns the midpoint of bucket i, the quantile estimate for
// ranks landing in it.
func bucketMid(i int) uint64 {
	lo := bucketLow(i)
	var hi uint64
	if i+1 < NumBuckets {
		hi = bucketLow(i + 1)
	} else {
		hi = lo + lo/histSub
	}
	return lo + (hi-lo)/2
}

// Histogram is a lock-free fixed-allocation log-bucket histogram. The
// zero value is ready to use; a nil *Histogram ignores observations.
// All methods are safe for concurrent use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// Observe records one value (for latency histograms, nanoseconds).
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// ObserveSince records the elapsed time since start, in nanoseconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(uint64(time.Since(start)))
}

// ObserveDuration records d in nanoseconds (negative durations clamp
// to zero).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Snapshot copies the histogram's current state. The copy is not an
// atomic cut across buckets — concurrent observers may land between
// loads — but every read is atomic, so the snapshot is race-free and
// each bucket's value was current at some instant.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram, mergeable across
// shards (buckets add exactly).
type HistSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [NumBuckets]uint64
}

// Merge folds o into s (bucket-wise addition); the merged snapshot's
// quantiles are exact with respect to the union of observations, up to
// bucket resolution.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) as the midpoint of the
// bucket holding the rank. Returns 0 on an empty snapshot.
func (s *HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count-1))
	var seen uint64
	for i, c := range s.Buckets {
		seen += c
		if seen > rank {
			return bucketMid(i)
		}
	}
	return bucketMid(NumBuckets - 1)
}

// Mean returns the exact mean of the observed values (sum/count), 0 when
// empty.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
