package obs

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestBucketLayout checks the bucket map is monotone, total, and
// consistent with its inverse across the whole range.
func TestBucketLayout(t *testing.T) {
	if got := bucketOf(0); got != 0 {
		t.Fatalf("bucketOf(0) = %d", got)
	}
	prev := -1
	for _, v := range []uint64{0, 1, 7, 8, 9, 15, 16, 31, 32, 1000, 1 << 20, 1 << 40, 1 << 62, math.MaxUint64} {
		b := bucketOf(v)
		if b < 0 || b >= NumBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, b)
		}
		if b < prev {
			t.Fatalf("bucketOf not monotone at %d: %d < %d", v, b, prev)
		}
		prev = b
		if lo := bucketLow(b); lo > v {
			t.Fatalf("bucketLow(%d) = %d > value %d", b, lo, v)
		}
		if b+1 < NumBuckets {
			if hi := bucketLow(b + 1); v >= hi {
				t.Fatalf("value %d ≥ next bucket low %d (bucket %d)", v, hi, b)
			}
		}
	}
	// Exhaustive inverse check: every bucket's low maps back to itself.
	for i := 0; i < NumBuckets; i++ {
		if got := bucketOf(bucketLow(i)); got != i {
			t.Fatalf("bucketOf(bucketLow(%d)) = %d", i, got)
		}
	}
}

// TestQuantileAccuracy: the log-bucket quantile estimate must land
// within one sub-bucket width (~12.5%) of the true quantile on a
// uniform sample.
func TestQuantileAccuracy(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	const n = 100000
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(rng.Int63n(10_000_000)) // 0..10ms in nanos
		h.Observe(vals[i])
	}
	snap := h.Snapshot()
	if snap.Count != n {
		t.Fatalf("count = %d, want %d", snap.Count, n)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		est := float64(snap.Quantile(q))
		exact := q * 10_000_000
		if rel := math.Abs(est-exact) / exact; rel > 0.15 {
			t.Errorf("q%g: estimate %.0f vs exact %.0f (rel err %.3f)", q, est, exact, rel)
		}
	}
	if mean := snap.Mean(); math.Abs(mean-5_000_000)/5_000_000 > 0.02 {
		t.Errorf("mean %.0f, want ≈5e6", mean)
	}
}

// TestMerge: merged snapshots equal observing into one histogram.
func TestMerge(t *testing.T) {
	var a, b, both Histogram
	for i := uint64(0); i < 1000; i++ {
		a.Observe(i * 17)
		both.Observe(i * 17)
		b.Observe(i * 31)
		both.Observe(i * 31)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	want := both.Snapshot()
	if sa != want {
		t.Fatal("merged snapshot differs from combined histogram")
	}
}

// TestNilSafety: nil receivers must be no-ops, not panics — the
// compiled-out no-op recorder depends on it.
func TestNilSafety(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.ObserveSince(time.Now())
	h.ObserveDuration(time.Second)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}
	var r *Recorder
	r.Event(EventFailStop, "x")
	r.Record(Trace{}, true)
	if r.ShouldTrace() {
		t.Fatal("nil recorder sampled")
	}
	if r.Hists() != nil {
		t.Fatal("nil recorder enumerated histograms")
	}
	var o *Observer
	o.Event(EventFailStop, 0, "x")
	o.BusyShed("x")
	o.Record(Trace{}, true)
	if o.Traces() != nil || o.Events() != nil || o.SlowOps() != nil {
		t.Fatal("nil observer returned entries")
	}
}

// TestZeroDurationObserve: durations at or below zero land in bucket 0.
func TestZeroDurationObserve(t *testing.T) {
	var h Histogram
	h.ObserveDuration(-time.Second)
	h.ObserveDuration(0)
	s := h.Snapshot()
	if s.Count != 2 || s.Buckets[0] != 2 {
		t.Fatalf("count=%d bucket0=%d, want 2/2", s.Count, s.Buckets[0])
	}
}
