package obs

import "sync"

// ring is a bounded FIFO: appends overwrite the oldest entry once full.
// It is mutex-guarded rather than lock-free because it sits off the
// per-op hot path (traces land per sampled/slow commit group, events per
// fault) and the mutex makes concurrent readers trivially race-free:
// snapshot copies the entries out under the lock, so a reader never
// aliases a slot a writer may overwrite.
type ring[T any] struct {
	mu   sync.Mutex
	buf  []T
	next uint64 // total appends; next%cap is the next write slot
}

func newRing[T any](capacity int) *ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &ring[T]{buf: make([]T, 0, capacity)}
}

// append records v, evicting the oldest entry when full.
func (r *ring[T]) append(v T) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, v)
	} else {
		r.buf[r.next%uint64(cap(r.buf))] = v
	}
	r.next++
	r.mu.Unlock()
}

// snapshot returns the retained entries, oldest first. The returned
// slice is a fresh copy the caller owns.
func (r *ring[T]) snapshot() []T {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]T, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	start := r.next % uint64(cap(r.buf))
	out = append(out, r.buf[start:]...)
	return append(out, r.buf[:start]...)
}

// total reports how many entries were ever appended (retained or
// evicted).
func (r *ring[T]) total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}
