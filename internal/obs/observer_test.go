package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRingEviction(t *testing.T) {
	r := newRing[int](4)
	for i := 0; i < 10; i++ {
		r.append(i)
	}
	got := r.snapshot()
	want := []int{6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("snapshot %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot %v, want %v (oldest first)", got, want)
		}
	}
	if r.total() != 10 {
		t.Fatalf("total = %d, want 10", r.total())
	}
}

// TestRingRaceStress is the dedicated race-safety test the slow-op and
// event rings must pass: concurrent writers appending while readers
// snapshot (the STATS / /events access pattern), meaningful under
// -race. Snapshots must always be internally consistent copies.
func TestRingRaceStress(t *testing.T) {
	o := NewObserver(Config{SampleEvery: 1, SlowOpThreshold: time.Nanosecond,
		TraceRing: 32, SlowOpRing: 32, EventRing: 32})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers: events, traces (all slow, so both rings churn), histograms.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := NewRecorder(w, o)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rec.Event(EventFailStop, "writer %d iter %d", w, i)
				rec.Record(Trace{Kind: "commit-group", Seq: uint64(i),
					TotalNanos: 100, Stages: []Stage{{"fsync", 90}}}, rec.ShouldTrace())
				rec.CommitFsync.Observe(uint64(i))
				o.BusyShed("stress")
			}
		}(w)
	}
	// Readers: snapshot all three rings and the histograms concurrently.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := NewRecorder(0, o)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, ev := range o.Events() {
					if ev.Kind == "" {
						t.Error("torn event read")
						return
					}
				}
				for _, tr := range append(o.Traces(), o.SlowOps()...) {
					if tr.Kind == "" || len(tr.Stages) != 1 {
						t.Error("torn trace read")
						return
					}
				}
				rec.CommitFsync.Snapshot()
			}
		}()
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if o.EventsTotal() == 0 {
		t.Fatal("no events recorded")
	}
	if len(o.SlowOps()) == 0 {
		t.Fatal("no slow ops recorded despite 1ns threshold")
	}
}

func TestSamplingAndSlowRouting(t *testing.T) {
	o := NewObserver(Config{SampleEvery: 4, SlowOpThreshold: time.Millisecond})
	rec := NewRecorder(0, o)
	sampled := 0
	for i := 0; i < 16; i++ {
		s := rec.ShouldTrace()
		if s {
			sampled++
		}
		// Fast span: recorded only when sampled.
		rec.Record(Trace{Kind: "commit-group", TotalNanos: 1000}, s)
	}
	if sampled != 4 {
		t.Fatalf("sampled %d of 16 with period 4", sampled)
	}
	if got := len(o.Traces()); got != 4 {
		t.Fatalf("trace ring holds %d, want 4", got)
	}
	if got := len(o.SlowOps()); got != 0 {
		t.Fatalf("slow-op ring holds %d fast spans", got)
	}
	// A slow span lands in the slow-op log even when not sampled.
	rec.Record(Trace{Kind: "commit-group", TotalNanos: uint64(2 * time.Millisecond)}, false)
	slow := o.SlowOps()
	if len(slow) != 1 || !slow[0].Slow {
		t.Fatalf("slow span not captured: %+v", slow)
	}
	if slow[0].Shard != 0 {
		t.Fatalf("recorder did not stamp shard: %+v", slow[0])
	}
}

func TestBusyShedRateLimit(t *testing.T) {
	o := NewObserver(Config{})
	for i := 0; i < 1000; i++ {
		o.BusyShed("conn-cap")
	}
	if got := len(o.Events()); got != 1 {
		t.Fatalf("shed storm produced %d events, want 1 per 100ms", got)
	}
}

func TestPromRendering(t *testing.T) {
	o := NewObserver(Config{})
	recs := []*Recorder{NewRecorder(0, o), NewRecorder(1, o)}
	recs[0].PutE2E.Observe(1000)
	recs[1].PutE2E.Observe(3000)
	var b strings.Builder
	WriteRecorderMetrics(&b, "elsm_", recs)
	out := b.String()
	for _, want := range []string{
		"# TYPE elsm_put_e2e_nanos summary",
		`elsm_put_e2e_nanos{shard="0",quantile="0.5"}`,
		`elsm_put_e2e_nanos{shard="1",quantile="0.99"}`,
		`elsm_put_e2e_nanos_count{shard="all"} 2`,
		"# TYPE elsm_commit_fsync_nanos summary",
		"# TYPE elsm_verify_nanos summary",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	var g strings.Builder
	WriteGauge(&g, "elsm_wal_syncs", 42)
	if got := g.String(); got != "# TYPE elsm_wal_syncs gauge\nelsm_wal_syncs 42\n" {
		t.Errorf("gauge rendering: %q", got)
	}
}
