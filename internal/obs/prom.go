package obs

import (
	"fmt"
	"io"
	"strings"
)

// Prometheus text-format rendering (version 0.0.4, the format every
// scraper accepts). Histograms render as summaries — precomputed
// quantile series plus _sum/_count — because the log-bucket layout's
// quantiles are computed server-side from the atomic buckets; gauges
// render as plain samples. No client library: the format is a few lines
// of text and the store must not grow dependencies.

// SummaryQuantiles are the quantile series every histogram exposes.
var SummaryQuantiles = []float64{0.5, 0.9, 0.99, 0.999}

// Label is one Prometheus label pair.
type Label struct {
	Key   string
	Value string
}

// labelString renders labels (plus an optional extra pair) as the
// {k="v",...} block, empty when there are no labels.
func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label{}, labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// PromName sanitizes a metric name to the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func PromName(name string) string {
	var b strings.Builder
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteGauge writes one gauge metric with a TYPE header.
func WriteGauge(w io.Writer, name string, v uint64, labels ...Label) {
	name = PromName(name)
	fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %d\n", name, name, labelString(labels), v)
}

// SummarySeries is one labeled snapshot of a summary metric (one shard's
// histogram, typically).
type SummarySeries struct {
	Labels []Label
	Snap   HistSnapshot
}

// WriteSummary writes one summary metric — every labeled series'
// quantile samples plus _sum and _count — under a single TYPE header.
func WriteSummary(w io.Writer, name string, series []SummarySeries) {
	name = PromName(name)
	fmt.Fprintf(w, "# TYPE %s summary\n", name)
	for _, s := range series {
		for _, q := range SummaryQuantiles {
			fmt.Fprintf(w, "%s%s %d\n", name,
				labelString(s.Labels, Label{"quantile", fmt.Sprintf("%g", q)}), s.Snap.Quantile(q))
		}
		fmt.Fprintf(w, "%s_sum%s %d\n", name, labelString(s.Labels), s.Snap.Sum)
		fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(s.Labels), s.Snap.Count)
	}
}

// WriteRecorderMetrics renders every histogram of the given per-shard
// recorders under the prefix ("elsm_"), one summary per canonical name
// with a shard label per series plus a merged shard="all" series (exact:
// buckets add across shards).
func WriteRecorderMetrics(w io.Writer, prefix string, recs []*Recorder) {
	if len(recs) == 0 {
		return
	}
	names := recs[0].Hists()
	for hi, nh := range names {
		series := make([]SummarySeries, 0, len(recs)+1)
		var all HistSnapshot
		for _, r := range recs {
			snap := r.Hists()[hi].Hist.Snapshot()
			all.Merge(snap)
			series = append(series, SummarySeries{
				Labels: []Label{{"shard", fmt.Sprintf("%d", r.Shard)}},
				Snap:   snap,
			})
		}
		if len(recs) > 1 {
			series = append(series, SummarySeries{Labels: []Label{{"shard", "all"}}, Snap: all})
		}
		WriteSummary(w, prefix+nh.Name, series)
	}
}
