package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Defaults for NewObserver knobs left zero.
const (
	// DefaultSampleEvery traces every Nth commit group into the trace
	// ring (slow groups are captured regardless of sampling).
	DefaultSampleEvery = 64
	// DefaultSlowOpThreshold is the stage-breakdown capture threshold: a
	// commit group or traced request slower end-to-end than this lands in
	// the slow-op log.
	DefaultSlowOpThreshold = 50 * time.Millisecond
	// Ring capacities. Small and fixed: the rings are diagnostic windows,
	// not durable logs.
	DefaultTraceRing  = 256
	DefaultSlowOpRing = 128
	DefaultEventRing  = 512
)

// Stage is one timed phase inside a trace.
type Stage struct {
	Name  string `json:"name"`
	Nanos uint64 `json:"nanos"`
}

// Trace is one completed span: a sampled (or slow) commit group or
// request with its per-stage time breakdown.
type Trace struct {
	// Kind names the traced span ("commit-group", ...).
	Kind string `json:"kind"`
	// Shard is the shard the span ran on.
	Shard int `json:"shard"`
	// Seq identifies the span within its kind (the group's trusted
	// timestamp for commit groups).
	Seq uint64 `json:"seq"`
	// Start is the span's wall-clock start.
	Start time.Time `json:"start"`
	// TotalNanos is the end-to-end duration; Stages attributes it.
	TotalNanos uint64  `json:"total_nanos"`
	Stages     []Stage `json:"stages"`
	// Records is the operation count the span carried (group size).
	Records int `json:"records"`
	// Slow marks spans that exceeded the slow-op threshold (they are
	// recorded even when not sampled).
	Slow bool `json:"slow"`
}

// Event is one structured fault/lifecycle entry: the paths that used to
// be silent or log-line-only (fail-stops, fenced frames, re-bootstraps,
// promotions, BUSY sheds, torn-tail recoveries).
type Event struct {
	Time  time.Time `json:"time"`
	Kind  string    `json:"kind"`
	Shard int       `json:"shard"`
	Msg   string    `json:"msg"`
}

// Event kinds. One flat namespace so /events consumers can filter
// without parsing messages.
const (
	EventFailStop    = "fail-stop"   // engine entered a permanent error state
	EventWALError    = "wal-error"   // WAL append/rotate fault
	EventTornTail    = "torn-tail"   // recovery dropped a torn WAL suffix
	EventFenced      = "repl-fenced" // frame from a deposed leader epoch rejected
	EventBehind      = "repl-behind" // follower fell out of the leader's ring
	EventReconnect   = "repl-reconnect"
	EventRebootstrap = "repl-rebootstrap"
	EventPromote     = "promote"
	EventBusyShed    = "busy-shed" // admission control refused load
)

// Observer is the store-wide observability hub: the bounded trace,
// slow-op and event rings, the sampling/threshold policy, and the
// histograms that live above the shards (network service time,
// cross-shard router batches). One Observer is shared by all of a
// store's per-shard Recorders. A nil *Observer disables everything it
// owns at the cost of a pointer test.
type Observer struct {
	// NetService records netsrv per-request service time (decode to
	// response queue), both read-side execution and write admission.
	NetService Histogram
	// RouterBatch records cross-shard batch commit end-to-end time at
	// the shard router.
	RouterBatch Histogram

	sampleEvery uint64
	slowThresh  uint64 // nanoseconds
	sampleCtr   atomic.Uint64

	traces  *ring[Trace]
	slowOps *ring[Trace]
	events  *ring[Event]

	// shedStamp rate-limits BUSY-shed events (an overloaded server sheds
	// thousands per second; one event per interval records the episode
	// without turning the event ring into a shed counter).
	shedStamp atomic.Int64
}

// Config tunes NewObserver; the zero value selects the defaults above.
type Config struct {
	// SampleEvery traces every Nth commit group (0 = default; 1 = every
	// group).
	SampleEvery int
	// SlowOpThreshold routes any span slower than this into the slow-op
	// log regardless of sampling (0 = default).
	SlowOpThreshold time.Duration
	// TraceRing / SlowOpRing / EventRing bound the rings (0 = default).
	TraceRing  int
	SlowOpRing int
	EventRing  int
}

// NewObserver builds the shared hub.
func NewObserver(cfg Config) *Observer {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = DefaultSampleEvery
	}
	if cfg.SlowOpThreshold <= 0 {
		cfg.SlowOpThreshold = DefaultSlowOpThreshold
	}
	if cfg.TraceRing <= 0 {
		cfg.TraceRing = DefaultTraceRing
	}
	if cfg.SlowOpRing <= 0 {
		cfg.SlowOpRing = DefaultSlowOpRing
	}
	if cfg.EventRing <= 0 {
		cfg.EventRing = DefaultEventRing
	}
	return &Observer{
		sampleEvery: uint64(cfg.SampleEvery),
		slowThresh:  uint64(cfg.SlowOpThreshold),
		traces:      newRing[Trace](cfg.TraceRing),
		slowOps:     newRing[Trace](cfg.SlowOpRing),
		events:      newRing[Event](cfg.EventRing),
	}
}

// SlowThreshold reports the slow-op capture threshold.
func (o *Observer) SlowThreshold() time.Duration {
	if o == nil {
		return 0
	}
	return time.Duration(o.slowThresh)
}

// SampleEvery reports the trace sampling period.
func (o *Observer) SampleEvery() uint64 {
	if o == nil {
		return 0
	}
	return o.sampleEvery
}

// sampleTick reports whether the caller's span is sampled: every Nth
// call returns true. One shared atomic across shards keeps the global
// trace rate at 1/N regardless of shard count.
func (o *Observer) sampleTick() bool {
	if o == nil {
		return false
	}
	return o.sampleCtr.Add(1)%o.sampleEvery == 0
}

// ShouldTrace reports whether the next span should carry a trace: true
// for every Nth span (sampling). Slow spans are captured in Record even
// when untraced, from the same stage timings.
func (o *Observer) ShouldTrace() bool { return o.sampleTick() }

// Record files a completed trace: sampled traces go to the trace ring;
// any trace exceeding the slow threshold also goes to the slow-op log
// (marked Slow), whether or not it was sampled.
func (o *Observer) Record(t Trace, sampled bool) {
	if o == nil {
		return
	}
	if t.TotalNanos >= o.slowThresh {
		t.Slow = true
		o.slowOps.append(t)
	}
	if sampled {
		o.traces.append(t)
	}
}

// Event appends one structured event.
func (o *Observer) Event(kind string, shard int, format string, args ...interface{}) {
	if o == nil {
		return
	}
	msg := format
	if len(args) > 0 {
		msg = fmt.Sprintf(format, args...)
	}
	o.events.append(Event{Time: time.Now(), Kind: kind, Shard: shard, Msg: msg})
}

// BusyShed records one admission-control shed as an event, rate-limited
// to one per 100ms: overload episodes appear in the event log without
// the shed storm flooding it (the shed COUNT lives in the net_* gauges).
func (o *Observer) BusyShed(where string) {
	if o == nil {
		return
	}
	now := time.Now().UnixNano()
	last := o.shedStamp.Load()
	if now-last < int64(100*time.Millisecond) {
		return
	}
	if !o.shedStamp.CompareAndSwap(last, now) {
		return // another shed in the same instant won the slot
	}
	o.events.append(Event{Time: time.Now(), Kind: EventBusyShed, Shard: -1, Msg: where})
}

// Traces returns the retained sampled traces, oldest first.
func (o *Observer) Traces() []Trace {
	if o == nil {
		return nil
	}
	return o.traces.snapshot()
}

// SlowOps returns the retained slow-op traces, oldest first.
func (o *Observer) SlowOps() []Trace {
	if o == nil {
		return nil
	}
	return o.slowOps.snapshot()
}

// Events returns the retained events, oldest first.
func (o *Observer) Events() []Event {
	if o == nil {
		return nil
	}
	return o.events.snapshot()
}

// EventsTotal reports how many events were ever recorded (including
// evicted ones).
func (o *Observer) EventsTotal() uint64 {
	if o == nil {
		return 0
	}
	return o.events.total()
}

// Recorder is one shard's instrumentation surface: the named latency
// histograms the engine hot paths observe into, plus the route to the
// shared Observer for traces and events. All fields tolerate concurrent
// use; a nil *Recorder is a no-op surface (the compiled-out
// configuration: hot paths guard on the nil before even reading the
// clock).
type Recorder struct {
	// Shard is this recorder's shard index (the /metrics label).
	Shard int

	// Per-op end-to-end latency (nanoseconds).
	PutE2E    Histogram // single-record commits
	CommitE2E Histogram // multi-record batch commits
	GetE2E    Histogram // verified point reads
	ScanChunk Histogram // one verified scan chunk

	// Commit-pipeline stages, per group: time a commit waits in the
	// pending queue; the group's WAL append critical section (timestamp
	// assignment → grouped append → acknowledgement); the fsync that made
	// it durable (shared across absorbed groups — each group reports the
	// fsync it rode); memtable apply; future resolution.
	CommitQueueWait Histogram
	CommitAppend    Histogram
	CommitFsync     Histogram
	CommitApply     Histogram
	CommitResolve   Histogram

	// Compaction phases (flushes and level merges both): snapshot under
	// the brief engine lock, the lock-free merge/build/hash middle, the
	// install critical section.
	CompactSnapshot Histogram
	CompactMerge    Histogram
	CompactInstall  Histogram

	// Verification cost per Get: time spent in Merkle verification and
	// the proof bytes decoded (ProofBytes observes bytes, not
	// nanoseconds).
	Verify     Histogram
	ProofBytes Histogram

	obs *Observer
}

// NewRecorder builds shard shard's recorder, routed to o.
func NewRecorder(shard int, o *Observer) *Recorder {
	return &Recorder{Shard: shard, obs: o}
}

// Observer returns the shared hub (nil on a nil recorder).
func (r *Recorder) Observer() *Observer {
	if r == nil {
		return nil
	}
	return r.obs
}

// Event files a structured event stamped with this recorder's shard.
func (r *Recorder) Event(kind string, format string, args ...interface{}) {
	if r == nil {
		return
	}
	r.obs.Event(kind, r.Shard, format, args...)
}

// ShouldTrace reports whether the caller's next span is sampled.
func (r *Recorder) ShouldTrace() bool {
	if r == nil {
		return false
	}
	return r.obs.ShouldTrace()
}

// SlowThresholdNanos reports the slow-op threshold in nanoseconds (0 on
// a nil recorder: nothing is slow because nothing is watched).
func (r *Recorder) SlowThresholdNanos() uint64 {
	if r == nil || r.obs == nil {
		return 0
	}
	return r.obs.slowThresh
}

// Record files a completed trace stamped with this recorder's shard.
func (r *Recorder) Record(t Trace, sampled bool) {
	if r == nil {
		return
	}
	t.Shard = r.Shard
	r.obs.Record(t, sampled)
}

// Hists enumerates the recorder's histograms with their canonical
// metric names — the ONE list behind /metrics, the binary STATS frame
// and the line protocol's histogram pairs, so the three expositions
// can never drift apart.
func (r *Recorder) Hists() []NamedHist {
	if r == nil {
		return nil
	}
	return []NamedHist{
		{"put_e2e_nanos", &r.PutE2E},
		{"commit_e2e_nanos", &r.CommitE2E},
		{"get_e2e_nanos", &r.GetE2E},
		{"scan_chunk_nanos", &r.ScanChunk},
		{"commit_queue_wait_nanos", &r.CommitQueueWait},
		{"commit_append_nanos", &r.CommitAppend},
		{"commit_fsync_nanos", &r.CommitFsync},
		{"commit_apply_nanos", &r.CommitApply},
		{"commit_resolve_nanos", &r.CommitResolve},
		{"compact_snapshot_nanos", &r.CompactSnapshot},
		{"compact_merge_nanos", &r.CompactMerge},
		{"compact_install_nanos", &r.CompactInstall},
		{"verify_nanos", &r.Verify},
		{"proof_bytes", &r.ProofBytes},
	}
}

// NamedHist pairs a histogram with its canonical metric name.
type NamedHist struct {
	Name string
	Hist *Histogram
}
