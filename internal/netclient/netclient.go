// Package netclient is the client for the eLSM binary network protocol
// (internal/netproto): a pipelined, concurrency-safe connection to an
// elsm-server front end.
//
// Quickstart:
//
//	c, err := netclient.Dial("127.0.0.1:7878")
//	if err != nil { ... }
//	defer c.Close()
//
//	ts, err := c.Put([]byte("alpha"), []byte("one")) // durable when it returns
//	res, err := c.Get([]byte("alpha"))               // res.Found, res.Value, res.Ts
//
//	// Pipelining: issue writes without waiting, settle them together.
//	futs := make([]*netclient.Future, 0, 128)
//	for i := 0; i < 128; i++ {
//		fut, err := c.PutAsync(key(i), val(i))
//		if err != nil { ... }
//		futs = append(futs, fut)
//	}
//	for _, fut := range futs {
//		if _, err := fut.Wait(); err != nil { ... } // durability surfaces here
//	}
//
//	// Verified range scan, streamed in chunks.
//	sc, err := c.Scan([]byte("a"), []byte("z"))
//	for sc.Next() { use(sc.Key(), sc.Value()) }
//	if err := sc.Close(); err != nil { ... } // ErrAuth here on tampering
//
// A Client is safe for concurrent use: any number of goroutines may issue
// requests on one connection and responses demultiplex by request id. When
// the server sheds load (admission control), requests fail with ErrBusy —
// the caller backs off and retries; the connection itself stays usable.
// Transport-level failures poison the client: every pending and future
// request fails with the same error, and the caller reconnects.
package netclient

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"elsm/internal/netproto"
)

// ErrBusy reports an admission-control load shed: the server refused the
// request (or the whole connection) instead of queueing it. The request did
// NOT execute. Back off and retry.
var ErrBusy = errors.New("netclient: server busy")

// ErrClosed reports a request issued against a closed client.
var ErrClosed = errors.New("netclient: client closed")

// ServerError is a typed failure the server reported for one request. The
// connection remains usable.
type ServerError struct {
	Errno netproto.Errno
	Msg   string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("netclient: server error (errno %d): %s", e.Errno, e.Msg)
}

// IsAuthFailure reports whether err is the server-side verification
// fail-stop (forged, stale, incomplete or rolled-back data detected).
func IsAuthFailure(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && se.Errno == netproto.ErrnoAuth
}

// Result is one read result.
type Result struct {
	Value []byte
	Ts    uint64
	Found bool
}

// Client is one pipelined protocol connection.
type Client struct {
	conn net.Conn

	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer
	buf []byte // encode scratch, under wmu

	mu      sync.Mutex // guards pending, nextID, err, closed
	pending map[uint64]chan *netproto.Response
	nextID  uint64
	err     error // first transport error; poisons the client
	closed  bool

	readerDone chan struct{}
}

// Dial connects to an elsm-server binary front end.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	return New(conn), nil
}

// New wraps an established connection (the peer must speak the binary
// protocol). The client owns conn and closes it on Close or failure.
func New(conn net.Conn) *Client {
	c := &Client{
		conn:       conn,
		bw:         bufio.NewWriterSize(conn, 8<<10),
		pending:    make(map[uint64]chan *netproto.Response),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// Close tears the connection down. Pending requests fail with ErrClosed.
// Close open Scanners first: an abandoned, undrained scan can wedge the
// demultiplexer mid-stream.
func (c *Client) Close() error {
	c.fail(ErrClosed)
	<-c.readerDone
	return nil
}

// fail poisons the client — every future request fails with err, first
// failure wins — and closes the transport, which unblocks the reader. Only
// the reader closes pending channels (it is the sender), so pending
// requests observe the failure when it exits.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		c.closed = true
	}
	c.mu.Unlock()
	c.conn.Close()
}

// readLoop demultiplexes response frames to their waiting requests. On
// exit it fails whatever is still pending.
func (c *Client) readLoop() {
	defer func() {
		c.mu.Lock()
		if c.err == nil {
			c.err = ErrClosed
			c.closed = true
		}
		pend := c.pending
		c.pending = make(map[uint64]chan *netproto.Response)
		c.mu.Unlock()
		for _, ch := range pend {
			close(ch) // receivers read c.err after a closed channel
		}
		close(c.readerDone)
	}()
	br := bufio.NewReaderSize(c.conn, 8<<10)
	for {
		typ, id, body, err := c.readFrame(br)
		if err != nil {
			var fe *netproto.FrameError
			if errors.As(err, &fe) {
				continue // defensive; servers do not send oversized frames
			}
			c.fail(fmt.Errorf("netclient: connection lost: %w", err))
			return
		}
		resp, err := netproto.DecodeResponse(typ, id, body)
		if err != nil {
			c.fail(fmt.Errorf("netclient: protocol error: %w", err))
			return
		}
		if resp.ID == 0 && resp.Code == netproto.CodeBusy {
			// Connection-level shed: the server refused the whole
			// connection at its cap. Nothing on it will execute.
			c.fail(ErrBusy)
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		if ch != nil && resp.Code != netproto.CodeRows {
			delete(c.pending, resp.ID) // terminal frame for this id
		}
		c.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

func (c *Client) readFrame(br *bufio.Reader) (uint8, uint64, []byte, error) {
	return netproto.ReadFrame(br, 0)
}

// chPool recycles single-response channels across requests: a pipelined
// workload otherwise allocates one channel per operation. A channel is
// pooled only after its terminal response was received (so it is empty and
// unregistered); channels closed by a dying readLoop never re-enter the
// pool.
var chPool = sync.Pool{
	New: func() any { return make(chan *netproto.Response, 1) },
}

// register allocates an id and its response channel. chunked requests
// (SCAN) get a buffered channel so the reader can run ahead of the
// consumer by a few chunks.
func (c *Client) register(buffer int) (uint64, chan *netproto.Response, error) {
	var ch chan *netproto.Response
	if buffer == 1 {
		ch = chPool.Get().(chan *netproto.Response)
	} else {
		ch = make(chan *netproto.Response, buffer)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		if cap(ch) == 1 {
			chPool.Put(ch)
		}
		return 0, nil, c.err
	}
	c.nextID++ // ids start at 1; 0 is the connection-level id
	id := c.nextID
	c.pending[id] = ch
	return id, ch, nil
}

func (c *Client) unregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// send encodes and buffers one request frame WITHOUT flushing: pipelined
// senders batch a whole window of requests into one write syscall. The
// flush happens in recv — every caller flushes before blocking on a
// response, so a request is always on the wire before anyone waits for
// its answer.
func (c *Client) send(req *netproto.Request) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.buf = netproto.AppendRequest(c.buf[:0], req)
	_, err := c.bw.Write(c.buf)
	return err
}

// flushPending pushes buffered request frames to the wire.
func (c *Client) flushPending() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.bw.Flush()
}

// recv awaits the terminal response for one request, flushing buffered
// requests first (see send).
func (c *Client) recv(id uint64, ch chan *netproto.Response) (*netproto.Response, error) {
	if err := c.flushPending(); err != nil {
		c.fail(fmt.Errorf("netclient: write failed: %w", err))
	}
	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	// The terminal response arrived: the readLoop already unregistered the
	// id, so the (empty) channel can serve the next request.
	if cap(ch) == 1 {
		chPool.Put(ch)
	}
	return c.check(resp)
}

// check converts error-class responses into Go errors.
func (c *Client) check(resp *netproto.Response) (*netproto.Response, error) {
	switch resp.Code {
	case netproto.CodeBusy:
		return nil, ErrBusy
	case netproto.CodeErr:
		return nil, &ServerError{Errno: resp.Errno, Msg: resp.Msg}
	}
	return resp, nil
}

// call runs one request to its single terminal response.
func (c *Client) call(req *netproto.Request) (*netproto.Response, error) {
	id, ch, err := c.register(1)
	if err != nil {
		return nil, err
	}
	req.ID = id
	if err := c.send(req); err != nil {
		c.unregister(id)
		c.fail(fmt.Errorf("netclient: write failed: %w", err))
		return nil, err
	}
	return c.recv(id, ch)
}

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	_, err := c.call(&netproto.Request{Op: netproto.OpPing})
	return err
}

// Put writes one key durably, returning its trusted timestamp.
func (c *Client) Put(key, value []byte) (uint64, error) {
	resp, err := c.call(&netproto.Request{Op: netproto.OpPut, Key: key, Value: value})
	if err != nil {
		return 0, err
	}
	return resp.Ts, nil
}

// Delete writes a tombstone durably.
func (c *Client) Delete(key []byte) (uint64, error) {
	resp, err := c.call(&netproto.Request{Op: netproto.OpDel, Key: key})
	if err != nil {
		return 0, err
	}
	return resp.Ts, nil
}

// Batch applies ops as one atomic durable commit.
func (c *Client) Batch(ops []netproto.BatchOp) (uint64, error) {
	resp, err := c.call(&netproto.Request{Op: netproto.OpBatch, Ops: ops})
	if err != nil {
		return 0, err
	}
	return resp.Ts, nil
}

// Get reads the latest verified value for key.
func (c *Client) Get(key []byte) (Result, error) {
	resp, err := c.call(&netproto.Request{Op: netproto.OpGet, Key: key})
	if err != nil {
		return Result{}, err
	}
	if resp.Code == netproto.CodeNotFound {
		return Result{}, nil
	}
	return Result{Value: resp.Value, Ts: resp.Ts, Found: true}, nil
}

// Sync is a durability barrier against the server's store.
func (c *Client) Sync() error {
	_, err := c.call(&netproto.Request{Op: netproto.OpSync})
	return err
}

// Stats dumps the server's counters, network front-end gauges included.
func (c *Client) Stats() (map[string]uint64, error) {
	resp, err := c.call(&netproto.Request{Op: netproto.OpStats})
	if err != nil {
		return nil, err
	}
	m := make(map[string]uint64, len(resp.Stats))
	for _, st := range resp.Stats {
		m[st.Name] = st.Value
	}
	return m, nil
}

// Future is an in-flight pipelined request. See PutAsync.
type Future struct {
	c  *Client
	id uint64
	ch chan *netproto.Response
}

// Wait blocks until the request's response arrives and returns its
// timestamp. For writes, durability has been established when Wait
// returns nil.
func (f *Future) Wait() (uint64, error) {
	resp, err := f.c.recv(f.id, f.ch)
	if err != nil {
		return 0, err
	}
	return resp.Ts, nil
}

// PutAsync issues a durable write without waiting for its response: the
// request enters the connection's pipeline and the server's group-commit
// batching, and the caller settles it later via Wait. Issuing a window of
// PutAsyncs before waiting is how one connection keeps many commits in
// flight (and how independent writes coalesce into shared fsyncs). The
// frame may sit in the client's write buffer until the next Wait (or any
// other response wait) flushes it — a whole window rides one syscall.
func (c *Client) PutAsync(key, value []byte) (*Future, error) {
	id, ch, err := c.register(1)
	if err != nil {
		return nil, err
	}
	if err := c.send(&netproto.Request{Op: netproto.OpPut, ID: id, Key: key, Value: value}); err != nil {
		c.unregister(id)
		c.fail(fmt.Errorf("netclient: write failed: %w", err))
		return nil, err
	}
	return &Future{c: c, id: id, ch: ch}, nil
}

// BatchAsync is PutAsync for an atomic multi-op commit.
func (c *Client) BatchAsync(ops []netproto.BatchOp) (*Future, error) {
	id, ch, err := c.register(1)
	if err != nil {
		return nil, err
	}
	if err := c.send(&netproto.Request{Op: netproto.OpBatch, ID: id, Ops: ops}); err != nil {
		c.unregister(id)
		c.fail(fmt.Errorf("netclient: write failed: %w", err))
		return nil, err
	}
	return &Future{c: c, id: id, ch: ch}, nil
}

// GetAsync issues a verified read without waiting. Wait's timestamp is the
// record's write timestamp; a missing key reports ts 0. Use Get when the
// value bytes are needed.
func (c *Client) GetAsync(key []byte) (*Future, error) {
	id, ch, err := c.register(1)
	if err != nil {
		return nil, err
	}
	if err := c.send(&netproto.Request{Op: netproto.OpGet, ID: id, Key: key}); err != nil {
		c.unregister(id)
		c.fail(fmt.Errorf("netclient: write failed: %w", err))
		return nil, err
	}
	return &Future{c: c, id: id, ch: ch}, nil
}

// Scanner iterates one verified range scan, streamed from the server in
// chunks. Close reports any stream-terminating error — including the
// authenticated store's fail-stop on tampering — so callers must check it
// before trusting the rows.
type Scanner struct {
	c    *Client
	id   uint64
	ch   chan *netproto.Response
	rows []netproto.Row
	i    int
	err  error
	done bool
}

// Scan streams the verified range [start, end] at the latest timestamp.
func (c *Client) Scan(start, end []byte) (*Scanner, error) {
	return c.ScanAt(start, end, 0)
}

// ScanAt streams the verified range [start, end] at timestamp tsq
// (0 = latest).
func (c *Client) ScanAt(start, end []byte, tsq uint64) (*Scanner, error) {
	// Chunk buffer of 8: the reader goroutine stays a few chunks ahead of
	// the consumer without buffering an unbounded range.
	id, ch, err := c.register(8)
	if err != nil {
		return nil, err
	}
	if err := c.send(&netproto.Request{Op: netproto.OpScan, ID: id, Start: start, End: end, Tsq: tsq}); err != nil {
		c.unregister(id)
		c.fail(fmt.Errorf("netclient: write failed: %w", err))
		return nil, err
	}
	// Scanner.Next consumes its channel directly (not via recv), so the
	// request must reach the wire here.
	if err := c.flushPending(); err != nil {
		c.fail(fmt.Errorf("netclient: write failed: %w", err))
		return nil, err
	}
	return &Scanner{c: c, id: id, ch: ch}, nil
}

// Next advances to the next row.
func (s *Scanner) Next() bool {
	if s.err != nil || s.done {
		return false
	}
	s.i++
	if s.i < len(s.rows) {
		return true
	}
	for {
		resp, ok := <-s.ch
		if !ok {
			s.c.mu.Lock()
			s.err = s.c.err
			s.c.mu.Unlock()
			return false
		}
		switch resp.Code {
		case netproto.CodeRows:
			if len(resp.Rows) == 0 {
				continue
			}
			s.rows, s.i = resp.Rows, 0
			return true
		case netproto.CodeScanEnd:
			s.done = true
			return false
		default:
			_, err := s.c.check(resp)
			if err == nil {
				err = fmt.Errorf("netclient: unexpected scan frame code %d", resp.Code)
			}
			s.err = err
			s.done = true
			return false
		}
	}
}

// Key returns the current row's key (valid until the next Next).
func (s *Scanner) Key() []byte { return s.rows[s.i].Key }

// Value returns the current row's value (valid until the next Next).
func (s *Scanner) Value() []byte { return s.rows[s.i].Value }

// Ts returns the current row's trusted write timestamp.
func (s *Scanner) Ts() uint64 { return s.rows[s.i].Ts }

// Err returns the stream's terminating error, if any.
func (s *Scanner) Err() error { return s.err }

// Close releases the scan. It drains any frames still in flight (so an
// abandoned scan does not wedge the connection's demultiplexer) and
// returns the stream's error.
func (s *Scanner) Close() error {
	for !s.done && s.err == nil {
		resp, ok := <-s.ch
		if !ok {
			s.c.mu.Lock()
			s.err = s.c.err
			s.c.mu.Unlock()
			break
		}
		if resp.Code == netproto.CodeRows {
			continue
		}
		if resp.Code != netproto.CodeScanEnd {
			if _, err := s.c.check(resp); err != nil {
				s.err = err
			}
		}
		s.done = true
	}
	s.rows, s.i = nil, 0
	return s.err
}
