package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"elsm/internal/core"
	"elsm/internal/sgx"
	"elsm/internal/vfs"
	"elsm/internal/ycsb"
)

// compactionSyncDelay models storage whose fsync costs real time. Every
// SSTable write, manifest swap and WAL sync pays it, so an inline level
// rewrite holds the commit path for many fsyncs in a row — exactly the
// stall background maintenance removes.
const compactionSyncDelay = 200 * time.Microsecond

// compactionWriters is the concurrency of the put workload.
const compactionWriters = 4

// compactionResult is one mode's measurements.
type compactionResult struct {
	p50, p99, mean float64 // put latency µs, with a compaction in flight
	opsPerSec      float64
	steadyMean     float64 // single writer, no forced compaction
	flushStallMs   float64
	compactStallMs float64
	bgCompactions  float64
}

// openCompactionStore builds the eLSM-P2 store under test: small write
// buffer and level targets so flushes and level merges happen within the
// measured window, on sync-delayed storage.
func (c Config) openCompactionStore(inline bool) (*core.Store, error) {
	fs := vfs.NewSlowSync(vfs.NewMem(), compactionSyncDelay)
	return core.Open(core.Config{
		FS:               fs,
		SGX:              sgx.Params{EPCSize: c.epcBytes(), Cost: *c.Cost},
		MemtableSize:     c.paperMB(1),
		TableFileSize:    c.paperMB(2),
		LevelBase:        int64(c.paperMB(4)),
		MaxLevels:        7,
		KeepVersions:     1,
		CounterInterval:  256,
		MmapReads:        true,
		InlineCompaction: inline,
	})
}

// compactionPoint measures one mode. The put workload runs while a
// dedicated goroutine keeps a level compaction permanently in flight
// (Compact(1) in a loop): with inline compaction the rewrite runs on the
// commit path under the commit lock, so puts queue behind it; with
// background compaction the rewrite runs on the maintenance worker and
// puts only pay the freeze.
func (c Config) compactionPoint(inline bool) (compactionResult, error) {
	var res compactionResult

	s, err := c.openCompactionStore(inline)
	if err != nil {
		return res, err
	}
	defer s.Close()

	// Preload a few levels of data so every forced compaction has real
	// work to do, then settle.
	preload := ycsb.GenRecords(ycsb.RecordsForBytes(int64(c.paperMB(8))), ycsb.DefaultValueSize)
	if err := s.BulkLoad(preload); err != nil {
		return res, err
	}

	perWriter := c.Ops / compactionWriters
	val := make([]byte, 200)

	// Keep a compaction in flight for the duration of the workload.
	stop := make(chan struct{})
	var compactorWG sync.WaitGroup
	compactorWG.Add(1)
	go func() {
		defer compactorWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Errors are tolerated (an empty level is a no-op); the loop
			// exists to guarantee overlap, not to converge.
			_ = s.Compact(1)
			_ = s.Compact(2)
		}
	}()

	lats := make([][]time.Duration, compactionWriters)
	errCh := make(chan error, compactionWriters)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < compactionWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lats[w] = make([]time.Duration, 0, perWriter)
			for i := 0; i < perWriter; i++ {
				key := []byte(fmt.Sprintf("cw%02d-%08d", w, i))
				t0 := time.Now()
				if _, perr := s.Put(key, val); perr != nil {
					errCh <- perr
					return
				}
				lats[w] = append(lats[w], time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	compactorWG.Wait()
	close(errCh)
	if werr := <-errCh; werr != nil {
		return res, werr
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		idx := int(p * float64(len(all)-1))
		return float64(all[idx].Nanoseconds()) / 1e3
	}
	var sum time.Duration
	for _, d := range all {
		sum += d
	}
	res.p50 = pct(0.50)
	res.p99 = pct(0.99)
	if len(all) > 0 {
		res.mean = float64(sum.Nanoseconds()) / 1e3 / float64(len(all))
	}
	res.opsPerSec = float64(len(all)) / elapsed.Seconds()

	st := s.Engine().Stats()
	res.flushStallMs = float64(st.FlushStallNanos) / 1e6
	res.compactStallMs = float64(st.CompactionStallNanos) / 1e6
	res.bgCompactions = float64(st.BackgroundCompactions)
	if st.Compactions == 0 {
		return res, fmt.Errorf("bench: no compaction ran during the %s workload", modeLabel(inline))
	}

	// Steady state: a lone writer with no forced compaction, on a fresh
	// store — the throughput that must NOT regress under the background
	// scheduler.
	s2, err := c.openCompactionStore(inline)
	if err != nil {
		return res, err
	}
	defer s2.Close()
	n := c.Ops
	if n > 400 {
		n = 400
	}
	t0 := time.Now()
	for i := 0; i < n; i++ {
		if _, err := s2.Put([]byte(fmt.Sprintf("st-%08d", i)), val); err != nil {
			return res, err
		}
	}
	res.steadyMean = float64(time.Since(t0).Nanoseconds()) / 1e3 / float64(n)
	return res, nil
}

func modeLabel(inline bool) string {
	if inline {
		return "inline"
	}
	return "background"
}

// AblationCompaction quantifies what taking flush/compaction off the
// commit path buys: put latency percentiles and throughput measured WHILE
// a level compaction is in flight, inline (the rewrite runs on the commit
// path, pre-PR behaviour) vs background (the maintenance worker runs it;
// writers only freeze the memtable). Expected shape: inline p99 collapses
// to roughly the full rewrite duration, background p99 stays near the
// fsync cost — with single-writer steady-state throughput unchanged.
func AblationCompaction(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		Name: "Ablation: compaction",
		Caption: fmt.Sprintf("%d writers + forced level compactions, %v fsync; inline vs background maintenance",
			compactionWriters, compactionSyncDelay),
		XLabel: "metric",
		Series: seriesOrder("inline", "background"),
	}
	rows := []struct {
		label string
		get   func(compactionResult) float64
	}{
		{"put p50 µs (compacting)", func(r compactionResult) float64 { return r.p50 }},
		{"put p99 µs (compacting)", func(r compactionResult) float64 { return r.p99 }},
		{"put mean µs (compacting)", func(r compactionResult) float64 { return r.mean }},
		{"put kops/sec (compacting)", func(r compactionResult) float64 { return r.opsPerSec / 1e3 }},
		{"steady µs/op (1 writer)", func(r compactionResult) float64 { return r.steadyMean }},
		{"flush stall ms", func(r compactionResult) float64 { return r.flushStallMs }},
		{"compaction stall ms", func(r compactionResult) float64 { return r.compactStallMs }},
		{"background compactions", func(r compactionResult) float64 { return r.bgCompactions }},
	}
	results := map[string]compactionResult{}
	for _, inline := range []bool{true, false} {
		label := modeLabel(inline)
		cfg.logf("AblationCompaction mode=%s", label)
		r, err := cfg.compactionPoint(inline)
		if err != nil {
			return t, fmt.Errorf("compaction ablation (%s): %w", label, err)
		}
		cfg.logf("    %s: p50 %.1fµs p99 %.1fµs mean %.1fµs, %.1f kops/s, steady %.1fµs",
			label, r.p50, r.p99, r.mean, r.opsPerSec/1e3, r.steadyMean)
		results[label] = r
	}
	for _, row := range rows {
		r := Row{X: row.label, Series: map[string]float64{}}
		for _, mode := range t.Series {
			r.Series[mode] = row.get(results[mode])
		}
		t.Rows = append(t.Rows, r)
	}
	return t, nil
}
