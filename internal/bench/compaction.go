package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"elsm/internal/core"
	"elsm/internal/obs"
	"elsm/internal/sgx"
	"elsm/internal/vfs"
	"elsm/internal/ycsb"
)

// compactionSyncDelay models storage whose fsync costs real time. Every
// SSTable write, manifest swap and WAL sync pays it, so an inline level
// rewrite holds the commit path for many fsyncs in a row — exactly the
// stall background maintenance removes.
const compactionSyncDelay = 200 * time.Microsecond

// compactionSyncDepth is the simulated device's queue depth: up to this
// many syncs overlap their latency, as on an NVMe device with internal
// parallelism. Depth 1 would serialize every sync through one spindle and
// make maintenance IO-serial no matter how many workers the pool has —
// the regime this ablation measures is a device with headroom the serial
// scheduler cannot use.
const compactionSyncDepth = 8

// compactionWriters is the concurrency of the put workload.
const compactionWriters = 8

// compactionResult is one scheduler configuration's measurements.
type compactionResult struct {
	p50, p99, mean float64 // put latency µs, under sustained ingest
	opsPerSec      float64
	scansPerSec    float64 // concurrent verified range reads
	steadyMedian   float64 // single writer, light load
	flushStallMs   float64
	compactStallMs float64
	bgCompactions  float64
}

// compactionMode is one column of the ablation: the inline baseline (the
// rewrite runs on the commit path) or the background scheduler with a given
// worker-pool size.
type compactionMode struct {
	label   string
	inline  bool
	workers int
}

var compactionModes = []compactionMode{
	{label: "inline", inline: true},
	{label: "1-worker", workers: 1},
	{label: "2-workers", workers: 2},
	{label: "4-workers", workers: 4},
}

// openCompactionStore builds the eLSM-P2 store under test: small write
// buffer and level targets so flushes and level merges happen within the
// measured window, on sync-delayed storage with NVMe-like queue depth.
func (c Config) openCompactionStore(m compactionMode) (*core.Store, error) {
	fs := vfs.NewSlowSyncQD(vfs.NewMem(), compactionSyncDelay, compactionSyncDepth)
	return core.Open(core.Config{
		FS:                fs,
		SGX:               sgx.Params{EPCSize: c.epcBytes(), Cost: *c.Cost},
		MemtableSize:      c.paperMB(1),
		TableFileSize:     c.paperMB(1),
		LevelBase:         int64(c.paperMB(2)),
		MaxLevels:         7,
		KeepVersions:      1,
		CounterInterval:   256,
		MmapReads:         true,
		InlineCompaction:  m.inline,
		CompactionWorkers: m.workers,
	})
}

// compactionPoint measures one scheduler configuration under the sustained
// bulk-ingest + concurrent-scan workload while a deep compaction runs:
// parallel writers keep the flush cascade busy, a scanner keeps verified
// range reads in flight, and a multi-megabyte deep-level rewrite — whose
// level claims are disjoint from every flush — is walked down in the
// background. With inline compaction the rewrite runs on the commit path
// under the commit lock, so puts queue behind it; with one background
// worker the rewrite holds the pool's only token and every flush (and
// every writer behind a full memtable) stalls for its duration; with more
// workers the flush dispatches alongside it and the stall vanishes.
func (c Config) compactionPoint(m compactionMode) (compactionResult, error) {
	var res compactionResult

	s, err := c.openCompactionStore(m)
	if err != nil {
		return res, err
	}
	defer s.Close()

	// Preload a deep level so the workload has a genuinely deep rewrite to
	// run against: size-based placement lands this in L3, far below the
	// levels the ingest cascade touches.
	preload := ycsb.GenRecords(ycsb.RecordsForBytes(int64(c.paperMB(256))), ycsb.DefaultValueSize)
	if err := s.BulkLoad(preload); err != nil {
		return res, err
	}

	perWriter := c.Ops / compactionWriters
	val := make([]byte, 512)

	// The deep compaction the puts are measured against: walk the preload
	// down one level at a time. Each rewrite claims {Ln, Ln+1} for n ≥ 3 —
	// disjoint from a flush's {memtable, L1} — so the only thing standing
	// between a frozen memtable and its flush is a worker token. With one
	// worker the deep rewrite holds it for the whole multi-megabyte merge
	// and every flush (and every writer behind a full memtable) queues;
	// with more workers the flush dispatches immediately.
	stop := make(chan struct{})
	var deepWG sync.WaitGroup
	deepWG.Add(1)
	go func() {
		defer deepWG.Done()
		for lvl := 3; lvl <= 5; lvl++ {
			select {
			case <-stop:
				return
			default:
			}
			// Errors are tolerated (an empty level is a no-op); the walk
			// exists to keep a deep rewrite in flight, not to converge.
			_ = s.Compact(lvl)
		}
	}()

	// Concurrent scans race the ingest for the duration of the workload.
	var scans atomic.Int64
	var scanWG sync.WaitGroup
	scanWG.Add(1)
	go func() {
		defer scanWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Errors are tolerated (the store may be closing); the loop
			// exists to keep reads in flight, not to converge.
			if _, err := s.Scan([]byte("cw00-"), []byte("cw00-~")); err != nil {
				return
			}
			scans.Add(1)
		}
	}()

	// Per-op latencies go straight into one shared log-bucket histogram
	// (internal/obs — lock-free, so the writers need no per-writer slices
	// or a merge step) and quantiles come from the same estimator the
	// server's /metrics endpoint uses.
	var lat obs.Histogram
	errCh := make(chan error, compactionWriters)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < compactionWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := []byte(fmt.Sprintf("cw%02d-%08d", w, i))
				t0 := time.Now()
				if _, perr := s.Put(key, val); perr != nil {
					errCh <- perr
					return
				}
				lat.ObserveSince(t0)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	deepWG.Wait()
	scanWG.Wait()
	close(errCh)
	if werr := <-errCh; werr != nil {
		return res, werr
	}

	snap := lat.Snapshot()
	res.p50 = float64(snap.Quantile(0.50)) / 1e3
	res.p99 = float64(snap.Quantile(0.99)) / 1e3
	res.mean = snap.Mean() / 1e3
	res.opsPerSec = float64(snap.Count) / elapsed.Seconds()
	res.scansPerSec = float64(scans.Load()) / elapsed.Seconds()

	st := s.Engine().Stats()
	res.flushStallMs = float64(st.FlushStallNanos) / 1e6
	res.compactStallMs = float64(st.CompactionStallNanos) / 1e6
	res.bgCompactions = float64(st.BackgroundCompactions)
	if st.Compactions == 0 {
		return res, fmt.Errorf("bench: no compaction ran during the %s workload", m.label)
	}

	// Steady state: a lone writer on a fresh store with no ingest pressure —
	// the per-op latency that must NOT regress as the worker pool grows.
	// The median keeps the measurement insensitive to the occasional
	// maintenance burst the steady ingest itself triggers.
	s2, err := c.openCompactionStore(m)
	if err != nil {
		return res, err
	}
	defer s2.Close()
	n := c.Ops
	if n > 1200 {
		n = 1200
	}
	var steady obs.Histogram
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if _, err := s2.Put([]byte(fmt.Sprintf("st-%08d", i)), val); err != nil {
			return res, err
		}
		steady.ObserveSince(t0)
	}
	ssnap := steady.Snapshot()
	res.steadyMedian = float64(ssnap.Quantile(0.5)) / 1e3
	return res, nil
}

// AblationCompaction quantifies the maintenance scheduler: sustained bulk
// ingest with concurrent scans while a deep compaction runs, measured with
// rewrites inline on the commit path (pre-background behaviour) and on the
// debt-aware background pool at 1, 2 and 4 workers. Expected shape: inline
// p99 collapses to roughly the full rewrite duration; with one background
// worker the deep rewrite monopolizes the pool and flush stalls surface as
// multi-millisecond put tails; growing the pool lets the flush run beside
// the rewrite, collapsing both the stall time and the tail — with
// single-writer steady-state throughput unchanged across all columns.
func AblationCompaction(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	labels := make([]string, len(compactionModes))
	for i, m := range compactionModes {
		labels[i] = m.label
	}
	t := Table{
		Name: "Ablation: compaction",
		Caption: fmt.Sprintf("%d writers sustained ingest + concurrent scans during a deep compaction, %v fsync at queue depth %d; inline vs background pool of 1/2/4 workers",
			compactionWriters, compactionSyncDelay, compactionSyncDepth),
		XLabel: "metric",
		Series: seriesOrder(labels...),
	}
	rows := []struct {
		label string
		get   func(compactionResult) float64
	}{
		{"put p50 µs (ingesting)", func(r compactionResult) float64 { return r.p50 }},
		{"put p99 µs (ingesting)", func(r compactionResult) float64 { return r.p99 }},
		{"put mean µs (ingesting)", func(r compactionResult) float64 { return r.mean }},
		{"ingest kops/sec", func(r compactionResult) float64 { return r.opsPerSec / 1e3 }},
		{"scans/sec (concurrent)", func(r compactionResult) float64 { return r.scansPerSec }},
		{"steady µs/op (1 writer)", func(r compactionResult) float64 { return r.steadyMedian }},
		{"flush stall ms", func(r compactionResult) float64 { return r.flushStallMs }},
		{"compaction stall ms", func(r compactionResult) float64 { return r.compactStallMs }},
		{"background compactions", func(r compactionResult) float64 { return r.bgCompactions }},
	}
	results := map[string]compactionResult{}
	for _, m := range compactionModes {
		cfg.logf("AblationCompaction mode=%s", m.label)
		r, err := cfg.compactionPoint(m)
		if err != nil {
			return t, fmt.Errorf("compaction ablation (%s): %w", m.label, err)
		}
		cfg.logf("    %s: p50 %.1fµs p99 %.1fµs mean %.1fµs, %.1f kops/s ingest, %.1f scans/s, steady %.1fµs, stalls %.1f/%.1f ms",
			m.label, r.p50, r.p99, r.mean, r.opsPerSec/1e3, r.scansPerSec, r.steadyMedian, r.flushStallMs, r.compactStallMs)
		results[m.label] = r
	}
	for _, row := range rows {
		r := Row{X: row.label, Series: map[string]float64{}}
		for _, mode := range t.Series {
			r.Series[mode] = row.get(results[mode])
		}
		t.Rows = append(t.Rows, r)
	}
	return t, nil
}
