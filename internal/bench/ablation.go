package bench

import (
	"fmt"

	"elsm/internal/core"
	"elsm/internal/sgx"
	"elsm/internal/vfs"
	"elsm/internal/ycsb"
)

// AblationEarlyStop quantifies the paper's first claimed distinction over
// Speicher (§7): eLSM's GET stops at the first verified hit and its proof
// covers only levels L1..Li, whereas prior work iterates and proves every
// level. We run the same read workload against two identical eLSM-P2
// stores — early stop on vs off — over a multi-run tree, under both the
// Latest distribution (temporal locality: hits land in young runs, where
// early stop saves the most — the §5.7 incremental log-monitoring case)
// and Uniform. Reported series: mean µs/op, plus proof bytes per GET.
func AblationEarlyStop(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		Name:    "Ablation: early stop",
		Caption: "GET with early stop vs all-levels iteration (Speicher-style), 1 GB",
		XLabel:  "distribution / metric",
		Series:  seriesOrder("early-stop", "all-levels"),
	}
	data := cfg.paperMB(1024)
	for _, dist := range []ycsb.Distribution{ycsb.Latest, ycsb.Zipfian, ycsb.Uniform} {
		latRow := Row{X: dist.String() + " µs/op", Series: map[string]float64{}}
		proofRow := Row{X: dist.String() + " proofB/op", Series: map[string]float64{}}
		for _, disable := range []bool{false, true} {
			name := "early-stop"
			if disable {
				name = "all-levels"
			}
			lat, proofBytes, err := cfg.earlyStopPoint(data, dist, disable)
			if err != nil {
				return t, fmt.Errorf("%s/%s: %w", dist, name, err)
			}
			cfg.logf("    ablation %s %s: %.1f us/op, %.0f proof B/op", dist, name, lat, proofBytes)
			latRow.Series[name] = lat
			proofRow.Series[name] = proofBytes
		}
		t.Rows = append(t.Rows, latRow, proofRow)
	}
	return t, nil
}

// earlyStopPoint builds a deliberately multi-run store (bulk bottom run
// plus organically flushed young runs) and measures verified GETs.
func (c Config) earlyStopPoint(dataBytes int, dist ycsb.Distribution, disableEarlyStop bool) (float64, float64, error) {
	cost := *c.Cost
	s, err := core.Open(core.Config{
		FS:               vfs.NewMem(),
		SGX:              sgx.Params{EPCSize: c.epcBytes(), Cost: cost},
		MemtableSize:     c.paperMB(4),
		TableFileSize:    c.paperMB(4),
		LevelBase:        int64(c.paperMB(10)),
		MaxLevels:        7,
		KeepVersions:     1,
		CounterInterval:  4096,
		MmapReads:        true,
		DisableEarlyStop: disableEarlyStop,
	})
	if err != nil {
		return 0, 0, err
	}
	defer s.Close()

	// 90% of the data arrives in bulk (the old, deep run)...
	n := ycsb.RecordsForBytes(int64(dataBytes))
	bulk := n * 9 / 10
	if err := s.BulkLoad(ycsb.GenRecords(bulk, ycsb.DefaultValueSize)); err != nil {
		return 0, 0, err
	}
	// ...and the rest through the write path, creating younger runs.
	for i := bulk; i < n; i++ {
		if _, err := s.Put(ycsb.Key(uint64(i)), ycsb.Value(uint64(i), ycsb.DefaultValueSize)); err != nil {
			return 0, 0, err
		}
	}
	if err := s.Flush(); err != nil {
		return 0, 0, err
	}
	if len(s.Engine().Runs()) < 2 {
		return 0, 0, fmt.Errorf("ablation store built only %d runs", len(s.Engine().Runs()))
	}

	before := s.VerifyStatsSnapshot()
	wl := ycsb.Workload{Name: "read", ReadProp: 1, Dist: dist}
	r := ycsb.NewRunner(s, wl, n, 0xab1a)
	st, err := r.RunOps(c.Ops)
	if err != nil {
		return 0, 0, err
	}
	after := s.VerifyStatsSnapshot()
	gets := after.Gets - before.Gets
	if gets == 0 {
		gets = 1
	}
	proofPerGet := float64(after.ProofBytes-before.ProofBytes) / float64(gets)
	return float64(st.Mean.Nanoseconds()) / 1e3, proofPerGet, nil
}
