package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"elsm/internal/core"
	"elsm/internal/lsm"
	"elsm/internal/sgx"
	"elsm/internal/shard"
	"elsm/internal/vfs"
)

// The shards ablation measures what hash partitioning buys on the durable
// write path: N shards run N independent group-commit pipelines — N WAL
// fsync streams in flight at once — where a single instance serializes
// every commit group through one. Storage with a real fsync cost and a
// bounded group size make the serialization visible (with unbounded groups,
// one giant group per fsync hides it — which is itself a finding the
// ablation's shards=1 row documents). Writers drive the pipelined
// CommitAsync path with a final all-shards Sync barrier, so the clock
// covers time to FULL durability of every record (the ablation-async
// methodology) while the per-shard pipelines stay saturated.
const (
	shardSyncDelay = 200 * time.Microsecond
	shardBatchOps  = 4 // ops per writer commit; keys spread across shards
	shardWriters   = 8
	// shardInflight bounds each writer's unresolved async commits — the
	// client-side pipeline depth.
	shardInflight = 16
	// shardGroupMaxOps bounds one commit group, as production deployments
	// do to cap commit latency and group memory: a single instance must
	// serialize ⌈records/8⌉ fsyncs through one WAL, while N shards split
	// the same fsync budget across N parallel streams.
	shardGroupMaxOps = 8
)

// shardSweep is the ablation's X axis: the shard count.
var shardSweep = []int{1, 2, 4}

// openShardedBench builds an n-shard router of eLSM-P2 stores on
// sync-delayed storage, the way elsm.Open(Options{Shards: n}) wires it:
// one shared enclave, a private filesystem per shard. The enclave runs the
// ZERO cost model regardless of cfg: this ablation isolates commit-PIPELINE
// serialization (what sharding parallelizes), and the calibrated
// world-switch spins are pure CPU — on a small-core CI box they would
// drown the fsync waits under an unscalable term that fig2/ablation-batch
// already measure.
func (c Config) openShardedBench(n int) (*shard.Router, error) {
	enclave := sgx.New(sgx.Params{EPCSize: c.epcBytes()})
	shards := make([]core.KV, n)
	for i := range shards {
		s, err := core.Open(core.Config{
			FS:                vfs.NewSlowSync(vfs.NewMem(), shardSyncDelay),
			Enclave:           enclave,
			GroupCommitMaxOps: shardGroupMaxOps,
			MemtableSize:      c.paperMB(4),
			TableFileSize:     c.paperMB(4),
			LevelBase:         int64(c.paperMB(10)),
			MaxLevels:         7,
			KeepVersions:      1,
			CounterInterval:   4096,
			MmapReads:         true,
		})
		if err != nil {
			for _, open := range shards[:i] {
				open.Close()
			}
			return nil, err
		}
		shards[i] = s
	}
	return shard.New(shards)
}

// shardPoint measures one shard count: shardWriters goroutines pump
// batches of shardBatchOps records through CommitAsync, each bounding its
// own unresolved futures at shardInflight, and the run closes with an
// all-shards Sync barrier — both rows pay for the same guarantee (every
// record durable) and the clock covers the barrier. Reports kops/sec of
// durable records and WAL fsyncs per 1000 records (summed across shards:
// the parallel streams spend the same fsync budget while finishing in a
// fraction of the wall time; that is the point).
func (c Config) shardPoint(n, totalOps int) (kopsPerSec, fsyncsPerK float64, err error) {
	r, err := c.openShardedBench(n)
	if err != nil {
		return 0, 0, err
	}
	defer r.Close()

	ctx := context.Background()
	perWriter := totalOps / shardWriters
	if perWriter == 0 {
		perWriter = 1
	}
	var wg sync.WaitGroup
	errCh := make(chan error, shardWriters)
	start := time.Now()
	for w := 0; w < shardWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			val := []byte("shard-ablation-value-0123456789")
			var inflight []*lsm.CommitFuture
			for i := 0; i < perWriter; i++ {
				ops := make([]core.BatchOp, shardBatchOps)
				for j := range ops {
					ops[j] = core.BatchOp{
						Key:   []byte(fmt.Sprintf("w%02d-%06d-%d", w, i, j)),
						Value: val,
					}
				}
				fut, serr := r.CommitAsync(ctx, ops)
				if serr != nil {
					errCh <- serr
					return
				}
				if _, serr = fut.Ts(ctx); serr != nil {
					errCh <- serr
					return
				}
				inflight = append(inflight, fut)
				if len(inflight) >= shardInflight {
					if _, serr = inflight[0].Wait(ctx); serr != nil {
						errCh <- serr
						return
					}
					inflight = inflight[1:]
				}
			}
			for _, fut := range inflight {
				if _, serr := fut.Wait(ctx); serr != nil {
					errCh <- serr
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// The durability barrier: acknowledgments are not durable until Sync
	// returns, so the clock covers it.
	if serr := r.Sync(ctx); serr != nil {
		return 0, 0, serr
	}
	elapsed := time.Since(start)
	close(errCh)
	if werr := <-errCh; werr != nil {
		return 0, 0, werr
	}

	records := float64(perWriter * shardWriters * shardBatchOps)
	var syncs uint64
	for i := 0; i < r.NumShards(); i++ {
		if cs, ok := r.Shard(i).(*core.Store); ok {
			syncs += cs.Engine().Stats().WALSyncs
		}
	}
	kopsPerSec = records / elapsed.Seconds() / 1e3
	fsyncsPerK = float64(syncs) / records * 1000
	return kopsPerSec, fsyncsPerK, nil
}

// AblationShards quantifies the router's scaling: durable put throughput
// vs shard count at a fixed writer count, on storage with a real fsync
// cost and a bounded commit group size. Expected shape: throughput grows
// with shards (≥2x at 4 shards) because the per-shard committers fsync in
// parallel, while fsyncs-per-1k-records grows too — the router trades
// more, smaller fsyncs for wall-clock parallelism.
func AblationShards(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		Name: "Ablation: shards",
		Caption: fmt.Sprintf("durable put throughput vs shard count, %d writers, batches of %d, group cap %d, %v fsync",
			shardWriters, shardBatchOps, shardGroupMaxOps, shardSyncDelay),
		XLabel: "shards",
		Series: seriesOrder("kops/s", "speedup vs 1 shard", "fsync/1k"),
	}
	var base float64
	for _, n := range shardSweep {
		cfg.logf("AblationShards shards=%d", n)
		kops, fsyncs, err := cfg.shardPoint(n, cfg.Ops)
		if err != nil {
			return t, fmt.Errorf("shards ablation (%d shards): %w", n, err)
		}
		if n == shardSweep[0] {
			base = kops
		}
		speedup := 0.0
		if base > 0 {
			speedup = kops / base
		}
		cfg.logf("    %d shards: %.1f kops/s (%.2fx, %.1f fsync/1k)", n, kops, speedup, fsyncs)
		row := Row{X: fmt.Sprintf("%d", n), Series: map[string]float64{
			"kops/s":             kops,
			"speedup vs 1 shard": speedup,
			"fsync/1k":           fsyncs,
		}}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
