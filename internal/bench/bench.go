// Package bench reproduces every table and figure of the paper's
// evaluation (§4.2 Figure 2, §6 Figures 5–7, Appendix C Figure 8,
// Table 1). Each FigN function builds the stores under test at a
// configurable scale, drives the figure's workload, and returns a Table of
// series — the same rows the paper plots.
//
// Sizes are the paper's divided by Config.Scale (default 32), with the
// simulated EPC scaled identically so every dataset:EPC ratio — and hence
// every crossover — is preserved (DESIGN.md "Scaling rule").
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"elsm/internal/core"
	"elsm/internal/costmodel"
	"elsm/internal/eleos"
	"elsm/internal/lsm"
	"elsm/internal/record"
	"elsm/internal/sgx"
	"elsm/internal/vfs"
	"elsm/internal/ycsb"
)

// Config scales and sizes an experiment run.
type Config struct {
	// Scale divides the paper's byte sizes (default 32).
	Scale int
	// Ops is the number of measured operations per data point
	// (default 1200).
	Ops int
	// Cost is the SGX hardware cost model (default calibrated).
	Cost *costmodel.Model
	// Verbose prints progress to stdout.
	Verbose bool
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 32
	}
	if c.Ops <= 0 {
		c.Ops = 1200
	}
	if c.Cost == nil {
		m := costmodel.Calibrated()
		c.Cost = &m
	}
	return c
}

// paperMB converts a paper-scale megabyte figure to scaled bytes.
func (c Config) paperMB(mb int) int {
	b := int64(mb) << 20 / int64(c.Scale)
	if b < 64<<10 {
		b = 64 << 10 // floor: below this the LSM geometry degenerates
	}
	return int(b)
}

// epcBytes is the scaled 128 MB EPC.
func (c Config) epcBytes() int { return c.paperMB(128) }

func (c Config) logf(format string, args ...interface{}) {
	if c.Verbose {
		fmt.Printf(format+"\n", args...)
	}
}

// Row is one X point of a figure.
type Row struct {
	X string `json:"x"`
	// Series maps series name to mean µs/op (NaN-free; missing points —
	// e.g. Eleos beyond its capacity — are absent).
	Series map[string]float64 `json:"series"`
}

// Table is a reproduced figure.
type Table struct {
	Name    string   `json:"name"`
	Caption string   `json:"caption"`
	XLabel  string   `json:"xlabel"`
	Series  []string `json:"seriesOrder"`
	Rows    []Row    `json:"rows"`
}

// FileSlug derives the machine-readable result file stem from the table
// name: "Ablation: group commit" → "ablation-group-commit".
func (t Table) FileSlug() string {
	var b strings.Builder
	lastDash := true
	for _, r := range strings.ToLower(t.Name) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			lastDash = false
		default:
			if !lastDash {
				b.WriteByte('-')
				lastDash = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "-")
}

// WriteJSON persists the table as BENCH_<slug>.json in dir, so the perf
// trajectory is machine-trackable across PRs. Returns the written path.
func (t Table) WriteJSON(dir string) (string, error) {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return "", fmt.Errorf("bench: marshal %s: %w", t.Name, err)
	}
	path := filepath.Join(dir, "BENCH_"+t.FileSlug()+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("bench: write %s: %w", path, err)
	}
	return path, nil
}

// Format renders the table as the paper-style text block. Values are mean
// µs/op unless the row label says otherwise (the ablation's B/op rows).
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s (mean µs/op) ==\n", t.Name, t.Caption)
	fmt.Fprintf(&b, "%-22s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, "%22s", s)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-22s", r.X)
		for _, s := range t.Series {
			if v, ok := r.Series[s]; ok {
				fmt.Fprintf(&b, "%22.1f", v)
			} else {
				fmt.Fprintf(&b, "%22s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Variant names the store configurations under test.
type Variant string

const (
	// P2Mmap is eLSM-P2 with the mmap read path.
	P2Mmap Variant = "eLSM-P2-mmap"
	// P2Buffer is eLSM-P2 with an out-of-enclave read buffer.
	P2Buffer Variant = "eLSM-P2-buffer"
	// P1 is the in-enclave strawman.
	P1 Variant = "eLSM-P1"
	// UnsecuredMmap is the plain LSM store, mmap reads.
	UnsecuredMmap Variant = "unsecured"
	// UnsecuredBuffer is the plain LSM store with an (untrusted) buffer.
	UnsecuredBuffer Variant = "buffer-outside"
	// Eleos is the in-enclave update-in-place baseline.
	Eleos Variant = "Eleos"
)

// bulkLoader is implemented by every store that supports the load phase.
type bulkLoader interface {
	BulkLoad([]record.Record) error
}

// warmable exposes the underlying engine for cache warming.
type warmable interface {
	Engine() *lsm.Store
}

// storeParams configures one store under test.
type storeParams struct {
	variant     Variant
	dataBytes   int
	cacheBytes  int // read buffer size (0: variant default)
	memtable    int // write buffer size (0: scaled default)
	disableComp bool
}

// buildStore opens a store of the given variant at the experiment scale.
func (c Config) buildStore(p storeParams) (core.KV, error) {
	cost := *c.Cost
	epc := c.epcBytes()
	memtable := p.memtable
	if memtable == 0 {
		memtable = c.paperMB(4)
	}
	base := core.Config{
		FS:                vfs.NewMem(),
		SGX:               sgx.Params{EPCSize: epc, Cost: cost},
		MemtableSize:      memtable,
		TableFileSize:     c.paperMB(4),
		LevelBase:         int64(c.paperMB(10)),
		MaxLevels:         7,
		KeepVersions:      1, // vanilla LevelDB retention for benchmarks
		CounterInterval:   4096,
		DisableCompaction: p.disableComp,
	}
	switch p.variant {
	case P2Mmap:
		base.MmapReads = true
		return core.Open(base)
	case P2Buffer:
		base.CacheSize = defaultBytes(p.cacheBytes, c.paperMB(128))
		return core.Open(base)
	case P1:
		base.CacheSize = defaultBytes(p.cacheBytes, p.dataBytes)
		return core.OpenP1(base)
	case UnsecuredMmap:
		base.MmapReads = true
		return core.OpenUnsecured(base)
	case UnsecuredBuffer:
		base.CacheSize = defaultBytes(p.cacheBytes, p.dataBytes)
		return core.OpenUnsecured(base)
	case Eleos:
		// The 1 GB limit of §6.2, with headroom for per-entry overhead so
		// the paper's 1 GB data point itself still fits.
		return eleos.Open(eleos.Config{
			SGX:      sgx.Params{EPCSize: epc, Cost: cost},
			MaxBytes: int64(c.paperMB(1280)),
		})
	default:
		return nil, fmt.Errorf("bench: unknown variant %q", p.variant)
	}
}

func defaultBytes(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

// loadAndWarm bulk-loads the dataset and warms buffers to steady state.
func loadAndWarm(kv core.KV, dataBytes int) error {
	n := ycsb.RecordsForBytes(int64(dataBytes))
	recs := ycsb.GenRecords(n, ycsb.DefaultValueSize)
	bl, ok := kv.(bulkLoader)
	if !ok {
		return fmt.Errorf("bench: store %T cannot bulk load", kv)
	}
	if err := bl.BulkLoad(recs); err != nil {
		return err
	}
	if w, ok := kv.(warmable); ok {
		return w.Engine().WarmCache()
	}
	return nil
}

// measure runs the workload and returns mean µs/op.
func (c Config) measure(kv core.KV, wl ycsb.Workload, dataBytes int) (float64, error) {
	n := ycsb.RecordsForBytes(int64(dataBytes))
	r := ycsb.NewRunner(kv, wl, n, 0xe15a)
	st, err := r.RunOps(c.Ops)
	if err != nil {
		return 0, err
	}
	return float64(st.Mean.Nanoseconds()) / 1e3, nil
}

// point builds, loads, measures and closes one (variant, workload) cell.
func (c Config) point(p storeParams, wl ycsb.Workload) (float64, error) {
	kv, err := c.buildStore(p)
	if err != nil {
		return 0, err
	}
	defer kv.Close()
	if err := loadAndWarm(kv, p.dataBytes); err != nil {
		return 0, err
	}
	return c.measure(kv, wl, p.dataBytes)
}

// addPoint measures one cell, tolerating capacity errors (Eleos > 1 GB).
func (c Config) addPoint(row *Row, p storeParams, wl ycsb.Workload, series string) error {
	v, err := c.point(p, wl)
	if err != nil {
		if p.variant == Eleos {
			c.logf("    %s @ %s: skipped (%v)", series, row.X, err)
			return nil // the paper's plots stop Eleos at 1 GB too
		}
		return fmt.Errorf("%s @ %s: %w", series, row.X, err)
	}
	c.logf("    %s @ %s: %.1f us/op", series, row.X, v)
	row.Series[series] = v
	return nil
}

// sortedSeries extracts the union of series names in first-seen order.
func seriesOrder(names ...string) []string { return names }

// mbLabel renders a paper-scale size label.
func mbLabel(mb int) string {
	if mb >= 1024 && mb%1024 == 0 {
		return fmt.Sprintf("%dGB", mb/1024)
	}
	return fmt.Sprintf("%dMB", mb)
}

// gbLabelTenths renders sizes like 0.6GB.
func gbLabelTenths(gbTenths int) string {
	return fmt.Sprintf("%.1fGB", float64(gbTenths)/10)
}

var _ = sort.Strings // reserved for future series sorting
