package bench

import (
	"fmt"
	"sync"
	"time"

	"elsm/internal/core"
	"elsm/internal/sgx"
	"elsm/internal/vfs"
)

// commitSyncDelay models storage whose fsync costs real time — the regime
// group commit exists for. In-memory FS syncs are free, which would hide
// exactly the cost being ablated.
const commitSyncDelay = 200 * time.Microsecond

// commitWriters is the concurrency of the ablation's fixed writer pool.
const commitWriters = 8

// commitGroupSweep is the ablation's X axis: the GroupCommitMaxOps cap.
// 1 = per-op commits (no coalescing, the pre-pipeline behaviour under
// concurrency); 0 = unbounded groups.
var commitGroupSweep = []int{1, 2, 4, 8, 16, 0}

// commitPoint runs concurrent single-record writers against an eLSM-P2
// store on sync-delayed storage and reports mean µs/op, fsyncs and counter
// bumps per 1000 ops, and the mean commit-group size.
func (c Config) commitPoint(maxOps, writers, totalOps int) (usPerOp, fsyncsPerK, bumpsPerK, groupSize float64, err error) {
	fs := vfs.NewSlowSync(vfs.NewMem(), commitSyncDelay)
	counter := sgx.NewMonotonicCounter()
	s, err := core.Open(core.Config{
		FS:                fs,
		SGX:               sgx.Params{EPCSize: c.epcBytes(), Cost: *c.Cost},
		Counter:           counter,
		MemtableSize:      c.paperMB(4),
		TableFileSize:     c.paperMB(4),
		LevelBase:         int64(c.paperMB(10)),
		MaxLevels:         7,
		KeepVersions:      1,
		CounterInterval:   64, // frequent enough to measure bump amortization
		MmapReads:         true,
		GroupCommitMaxOps: maxOps,
	})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer s.Close()

	perWriter := totalOps / writers
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			val := []byte("group-commit-ablation-value")
			for i := 0; i < perWriter; i++ {
				key := []byte(fmt.Sprintf("w%02d-%08d", w, i))
				if _, perr := s.Put(key, val); perr != nil {
					errCh <- perr
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	if werr := <-errCh; werr != nil {
		return 0, 0, 0, 0, werr
	}

	ops := float64(perWriter * writers)
	st := s.Engine().Stats()
	bumps, _ := counter.Read()
	usPerOp = float64(elapsed.Nanoseconds()) / 1e3 / ops
	fsyncsPerK = float64(st.WALSyncs) / ops * 1000
	bumpsPerK = float64(bumps) / ops * 1000
	if st.GroupCommits > 0 {
		groupSize = float64(st.GroupedRecords) / float64(st.GroupCommits)
	}
	return usPerOp, fsyncsPerK, bumpsPerK, groupSize, nil
}

// AblationCommit quantifies what cross-client group commit buys: 8
// concurrent writers, sweeping the group-size cap from 1 (per-op commits —
// every write pays its own fsync and counter-bump check) to unbounded.
// Expected shape: µs/op falls steeply as groups grow while fsyncs and
// bumps per 1000 ops collapse, flattening once groups are large enough
// that the fsync is fully amortized.
func AblationCommit(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		Name: "Ablation: group commit",
		Caption: fmt.Sprintf("%d concurrent writers, %v fsync; group-size cap sweep",
			commitWriters, commitSyncDelay),
		XLabel: "max group size",
		Series: seriesOrder("µs/op", "fsync/1kops", "bumps/1kops", "mean group"),
	}
	for _, maxOps := range commitGroupSweep {
		label := fmt.Sprintf("%d", maxOps)
		if maxOps == 0 {
			label = "unbounded"
		}
		cfg.logf("AblationCommit maxOps=%s", label)
		us, fsyncs, bumps, group, err := cfg.commitPoint(maxOps, commitWriters, cfg.Ops)
		if err != nil {
			return t, fmt.Errorf("commit ablation @ %s: %w", label, err)
		}
		cfg.logf("    %s: %.1f us/op, %.1f fsync/1k, %.1f bumps/1k, group %.1f", label, us, fsyncs, bumps, group)
		t.Rows = append(t.Rows, Row{X: label, Series: map[string]float64{
			"µs/op":       us,
			"fsync/1kops": fsyncs,
			"bumps/1kops": bumps,
			"mean group":  group,
		}})
	}
	return t, nil
}

// CommitThroughput renders the -procs flag's report: per-op commits vs the
// group-commit pipeline across client concurrency levels up to procs, on
// the same sync-delayed storage as the ablation.
func CommitThroughput(cfg Config, procs int) (Table, error) {
	cfg = cfg.withDefaults()
	if procs < 1 {
		return Table{}, fmt.Errorf("bench: procs must be ≥ 1, got %d", procs)
	}
	t := Table{
		Name: "Concurrent writers",
		Caption: fmt.Sprintf("per-op commits vs group commit, %v fsync (µs per op)",
			commitSyncDelay),
		XLabel: "client goroutines",
		Series: seriesOrder("per-op commit", "group commit"),
	}
	levels := []int{1, 2, 4}
	if procs > 4 {
		levels = append(levels, procs)
	}
	for _, w := range levels {
		if w > procs {
			break
		}
		row := Row{X: fmt.Sprintf("%d", w), Series: map[string]float64{}}
		cfg.logf("CommitThroughput writers=%d", w)
		perOp, _, _, _, err := cfg.commitPoint(1, w, cfg.Ops)
		if err != nil {
			return t, err
		}
		grouped, _, _, _, err := cfg.commitPoint(0, w, cfg.Ops)
		if err != nil {
			return t, err
		}
		cfg.logf("    per-op %.1f us/op, grouped %.1f us/op", perOp, grouped)
		row.Series["per-op commit"] = perOp
		row.Series["group commit"] = grouped
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
