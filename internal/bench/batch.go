package bench

import (
	"fmt"
	"time"

	"elsm/internal/core"
	"elsm/internal/ycsb"
)

// batchSweep is the batch-size ablation's X axis.
var batchSweep = []int{1, 8, 64, 256, 1024}

// AblationBatch quantifies what the grouped write path buys: per-record put
// latency vs batch size for eLSM-P2 and the unsecured baseline, under the
// calibrated SGX cost model. Each single put pays an ECall plus a WAL-append
// OCall (four world switches); a batch of N pays the same boundary cost
// once, so P2's curve should fall steeply with N while the unsecured curve
// (no world switches to amortize) stays comparatively flat — isolating the
// enclave-boundary share of write cost.
func AblationBatch(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		Name:    "Ablation: batch size",
		Caption: "grouped-write cost vs batch size (µs per record)",
		XLabel:  "batch size",
		Series:  seriesOrder(string(P2Mmap), string(UnsecuredMmap)),
	}
	for _, bs := range batchSweep {
		row := Row{X: fmt.Sprintf("%d", bs), Series: map[string]float64{}}
		cfg.logf("AblationBatch size=%d", bs)
		for _, v := range []Variant{P2Mmap, UnsecuredMmap} {
			us, err := cfg.batchPoint(v, bs)
			if err != nil {
				return t, fmt.Errorf("%s @ batch %d: %w", v, bs, err)
			}
			cfg.logf("    %s @ %d: %.1f us/rec", v, bs, us)
			row.Series[string(v)] = us
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// batchPoint writes at least cfg.Ops records through the write path —
// one-at-a-time Puts for batchSize 1, ApplyBatch groups otherwise — and
// returns the mean µs per record.
func (c Config) batchPoint(v Variant, batchSize int) (float64, error) {
	kv, err := c.buildStore(storeParams{variant: v, dataBytes: c.paperMB(64)})
	if err != nil {
		return 0, err
	}
	defer kv.Close()
	n := c.Ops
	if n < batchSize {
		n = batchSize
	}
	val := ycsb.Value(0, ycsb.DefaultValueSize)
	start := time.Now()
	written := 0
	if batchSize <= 1 {
		for ; written < n; written++ {
			if _, err := kv.Put(ycsb.Key(uint64(written)), val); err != nil {
				return 0, err
			}
		}
	} else {
		ops := make([]core.BatchOp, batchSize)
		for written < n {
			for j := range ops {
				ops[j] = core.BatchOp{Key: ycsb.Key(uint64(written + j)), Value: val}
			}
			if _, err := kv.ApplyBatch(ops); err != nil {
				return 0, err
			}
			written += batchSize
		}
	}
	elapsed := time.Since(start)
	return float64(elapsed.Nanoseconds()) / 1e3 / float64(written), nil
}

// BatchThroughput renders the -batch flag's report: single-record puts next
// to grouped puts of the requested size, per variant.
func BatchThroughput(cfg Config, batchSize int) (Table, error) {
	cfg = cfg.withDefaults()
	if batchSize < 2 {
		return Table{}, fmt.Errorf("bench: batch size must be ≥ 2, got %d", batchSize)
	}
	t := Table{
		Name:    "Batched writes",
		Caption: fmt.Sprintf("single-put vs batch-%d put (µs per record)", batchSize),
		XLabel:  "write path",
		Series:  seriesOrder(string(P2Mmap), string(UnsecuredMmap)),
	}
	single := Row{X: "single-put", Series: map[string]float64{}}
	batched := Row{X: fmt.Sprintf("batch-%d", batchSize), Series: map[string]float64{}}
	for _, v := range []Variant{P2Mmap, UnsecuredMmap} {
		us, err := cfg.batchPoint(v, 1)
		if err != nil {
			return t, err
		}
		single.Series[string(v)] = us
		us, err = cfg.batchPoint(v, batchSize)
		if err != nil {
			return t, err
		}
		batched.Series[string(v)] = us
	}
	t.Rows = append(t.Rows, single, batched)
	return t, nil
}

// loadBatchedAndWarm loads the dataset through the grouped write path in
// groups of batchSize — the streaming-ingestion alternative to BulkLoad for
// stores that must stay online while loading — then warms the read buffer.
func loadBatchedAndWarm(kv core.KV, dataBytes, batchSize int) error {
	n := ycsb.RecordsForBytes(int64(dataBytes))
	if err := ycsb.LoadBatched(kv, n, ycsb.DefaultValueSize, batchSize); err != nil {
		return err
	}
	if w, ok := kv.(warmable); ok {
		return w.Engine().WarmCache()
	}
	return nil
}
