package bench

import (
	"fmt"

	"elsm/internal/ycsb"
)

// Table1 returns the design-choice matrix (Table 1 of the paper).
func Table1() string {
	return `== Table 1 — Design choices of eLSM-P1 and eLSM-P2 ==
               Code placement   Data placement    Digest structure
eLSM-P1 (§4.1) Inside enclave   Inside enclave    File granularity
eLSM-P2 (§5)   Inside enclave   Outside enclave   Record granularity
`
}

// Fig2 reproduces Figure 2: read latency with the read buffer placed
// inside vs outside the enclave, on a 5 GB dataset, sweeping buffer size.
// Expected shape: ~2x gap for small buffers (the extra in-enclave copy),
// blowing up past the 128 MB EPC (enclave paging) to ~4.5x.
func Fig2(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		Name:    "Figure 2",
		Caption: "read buffer inside vs outside enclave (5 GB data)",
		XLabel:  "buffer size (paper)",
		Series:  seriesOrder(string(UnsecuredBuffer), string(P1)),
	}
	data := cfg.paperMB(5 * 1024)
	wl := ycsb.Mix(100, ycsb.Uniform)
	for _, bufMB := range []int{4, 16, 64, 128, 256, 512, 1024, 2048} {
		row := Row{X: mbLabel(bufMB), Series: map[string]float64{}}
		cfg.logf("Fig2 buffer=%s", row.X)
		outP := storeParams{variant: UnsecuredBuffer, dataBytes: data, cacheBytes: cfg.paperMB(bufMB)}
		if err := cfg.addPoint(&row, outP, wl, string(UnsecuredBuffer)); err != nil {
			return t, err
		}
		inP := storeParams{variant: P1, dataBytes: data, cacheBytes: cfg.paperMB(bufMB)}
		if err := cfg.addPoint(&row, inP, wl, string(P1)); err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig5a reproduces Figure 5a: operation latency vs read percentage
// (0–100%), 3 GB data, uniform keys. Expected: P2 falls as reads grow and
// beats P1 everywhere except write-only; unsecured LevelDB lower-bounds
// both (P2 within 1.5–4x).
func Fig5a(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		Name:    "Figure 5a",
		Caption: "latency vs read-write ratio (3 GB, uniform)",
		XLabel:  "read %",
		Series:  seriesOrder(string(P2Mmap), string(P1), "LevelDB (unsecure)"),
	}
	data := cfg.paperMB(3 * 1024)
	for pct := 0; pct <= 100; pct += 20 {
		row := Row{X: fmt.Sprintf("%d", pct), Series: map[string]float64{}}
		cfg.logf("Fig5a read%%=%d", pct)
		wl := ycsb.Mix(pct, ycsb.Uniform)
		if err := cfg.addPoint(&row, storeParams{variant: P2Mmap, dataBytes: data}, wl, string(P2Mmap)); err != nil {
			return t, err
		}
		if err := cfg.addPoint(&row, storeParams{variant: P1, dataBytes: data}, wl, string(P1)); err != nil {
			return t, err
		}
		if err := cfg.addPoint(&row, storeParams{variant: UnsecuredMmap, dataBytes: data}, wl, "LevelDB (unsecure)"); err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig5b reproduces Figure 5b: workload A (50/50, zipfian) latency vs data
// size, P2 vs P1 vs Eleos. Expected: gap between P2 and P1 grows with data
// (up to ~7x at 3 GB); Eleos stops at 1 GB.
func Fig5b(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		Name:    "Figure 5b",
		Caption: "workload A latency vs data size",
		XLabel:  "data size (paper)",
		Series:  seriesOrder(string(P2Mmap), string(P1), string(Eleos)),
	}
	wl := ycsb.WorkloadA()
	for _, gbTenths := range []int{6, 8, 10, 20, 30} {
		dataMB := gbTenths * 1024 / 10
		data := cfg.paperMB(dataMB)
		row := Row{X: gbLabelTenths(gbTenths), Series: map[string]float64{}}
		cfg.logf("Fig5b data=%s", row.X)
		for _, v := range []Variant{P2Mmap, P1, Eleos} {
			if err := cfg.addPoint(&row, storeParams{variant: v, dataBytes: data}, wl, string(v)); err != nil {
				return t, err
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig5c reproduces Figure 5c: latency under Uniform/Zipfian/Latest key
// distributions at 3 GB. Expected: P2 is far less sensitive to the
// distribution than P1; uniform (largest working set) is P1's worst case.
func Fig5c(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		Name:    "Figure 5c",
		Caption: "latency vs key distribution (3 GB, 50/50 mix)",
		XLabel:  "distribution",
		Series:  seriesOrder(string(P2Mmap), string(P1)),
	}
	data := cfg.paperMB(3 * 1024)
	for _, dist := range []ycsb.Distribution{ycsb.Uniform, ycsb.Zipfian, ycsb.Latest} {
		row := Row{X: dist.String(), Series: map[string]float64{}}
		cfg.logf("Fig5c dist=%s", dist)
		wl := ycsb.Workload{Name: "mix50", ReadProp: 0.5, UpdateProp: 0.5, Dist: dist}
		for _, v := range []Variant{P2Mmap, P1} {
			if err := cfg.addPoint(&row, storeParams{variant: v, dataBytes: data}, wl, string(v)); err != nil {
				return t, err
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig6a reproduces Figure 6a: read-only latency vs data size for P2-mmap,
// P1, Eleos and the unsecured buffer-outside baseline. Expected: below the
// EPC P1/Eleos win (no proof overhead); beyond it P2 wins and stays flat;
// Eleos stops at 1 GB.
func Fig6a(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		Name:    "Figure 6a",
		Caption: "read latency vs data size",
		XLabel:  "data size (paper)",
		Series:  seriesOrder(string(P2Mmap), string(P1), string(Eleos), string(UnsecuredBuffer)),
	}
	wl := ycsb.Mix(100, ycsb.Uniform)
	for _, dataMB := range []int{8, 64, 128, 256, 512, 1024, 2048, 3072} {
		data := cfg.paperMB(dataMB)
		row := Row{X: mbLabel(dataMB), Series: map[string]float64{}}
		cfg.logf("Fig6a data=%s", row.X)
		for _, v := range []Variant{P2Mmap, P1, Eleos, UnsecuredBuffer} {
			if err := cfg.addPoint(&row, storeParams{variant: v, dataBytes: data}, wl, string(v)); err != nil {
				return t, err
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig6b reproduces Figure 6b: eLSM-P2 mmap vs buffered read path vs data
// size. Expected: mmap's advantage grows with data, ~5x at 3 GB.
func Fig6b(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		Name:    "Figure 6b",
		Caption: "eLSM-P2 read path: mmap vs buffer",
		XLabel:  "data size (paper)",
		Series:  seriesOrder(string(P2Mmap), string(P2Buffer)),
	}
	wl := ycsb.Mix(100, ycsb.Uniform)
	for _, dataMB := range []int{8, 64, 128, 256, 512, 1024, 2048, 3072} {
		data := cfg.paperMB(dataMB)
		row := Row{X: mbLabel(dataMB), Series: map[string]float64{}}
		cfg.logf("Fig6b data=%s", row.X)
		for _, v := range []Variant{P2Mmap, P2Buffer} {
			if err := cfg.addPoint(&row, storeParams{variant: v, dataBytes: data}, wl, string(v)); err != nil {
				return t, err
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig6c reproduces Figure 6c: read latency vs buffer size at fixed 2 GB
// data, P2-buffer vs P1. Expected: P2 flat; P1 rises sharply past the
// 128 MB EPC; P2 1.6–2.3x faster overall.
func Fig6c(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		Name:    "Figure 6c",
		Caption: "read latency vs buffer size (2 GB data)",
		XLabel:  "buffer size (paper)",
		Series:  seriesOrder(string(P2Buffer), string(P1)),
	}
	data := cfg.paperMB(2 * 1024)
	wl := ycsb.Mix(100, ycsb.Uniform)
	for _, bufMB := range []int{32, 64, 128, 256, 512, 1024, 2048} {
		row := Row{X: mbLabel(bufMB), Series: map[string]float64{}}
		cfg.logf("Fig6c buffer=%s", row.X)
		for _, v := range []Variant{P2Buffer, P1} {
			p := storeParams{variant: v, dataBytes: data, cacheBytes: cfg.paperMB(bufMB)}
			if err := cfg.addPoint(&row, p, wl, string(v)); err != nil {
				return t, err
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig7a reproduces Figure 7a: write latency (compaction amortized) vs data
// size. Expected: P1 fastest (hardware-only protection), P2 at 1.3–2.3x of
// P1 (proof embedding), Eleos slowest and capped at 1 GB.
func Fig7a(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	// Write-only sweeps need enough operations to roll through several
	// memtable flushes and their compaction cascades, or the amortized
	// compaction cost never shows.
	cfg.Ops *= 4
	t := Table{
		Name:    "Figure 7a",
		Caption: "write latency with compaction vs data size",
		XLabel:  "data size (paper)",
		Series:  seriesOrder(string(P2Mmap), string(P1), string(Eleos)),
	}
	wl := ycsb.Mix(0, ycsb.Uniform)
	for _, dataMB := range []int{205, 1024, 2048, 3072, 4096} {
		data := cfg.paperMB(dataMB)
		row := Row{X: mbLabel(dataMB), Series: map[string]float64{}}
		cfg.logf("Fig7a data=%s", row.X)
		for _, v := range []Variant{P2Mmap, P1, Eleos} {
			if err := cfg.addPoint(&row, storeParams{variant: v, dataBytes: data}, wl, string(v)); err != nil {
				return t, err
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig7b reproduces Figure 7b: write latency with vs without compaction for
// P2 and P1. Expected: compaction costs 2–4x on the write path; P2 above
// P1 in both configurations.
func Fig7b(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	// Write-only sweeps need enough operations to roll through several
	// memtable flushes and their compaction cascades, or the amortized
	// compaction cost never shows.
	cfg.Ops *= 4
	t := Table{
		Name:    "Figure 7b",
		Caption: "writes with/without compaction",
		XLabel:  "data size (paper)",
		Series: seriesOrder(
			string(P2Mmap)+" (w. comp)",
			string(P1)+" (w. comp)",
			string(P2Mmap)+" (wo. comp)",
			string(P1)+" (wo. comp)",
		),
	}
	wl := ycsb.Mix(0, ycsb.Uniform)
	for _, dataMB := range []int{205, 1024, 2048, 4096} {
		data := cfg.paperMB(dataMB)
		row := Row{X: mbLabel(dataMB), Series: map[string]float64{}}
		cfg.logf("Fig7b data=%s", row.X)
		for _, v := range []Variant{P2Mmap, P1} {
			for _, disable := range []bool{false, true} {
				name := string(v) + " (w. comp)"
				if disable {
					name = string(v) + " (wo. comp)"
				}
				p := storeParams{variant: v, dataBytes: data, disableComp: disable}
				if err := cfg.addPoint(&row, p, wl, name); err != nil {
					return t, err
				}
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig8 reproduces Appendix C Figure 8: write latency vs write-buffer
// (memtable) size, P1 vs the unsecured store. Expected: flat in buffer
// size for both; in-enclave placement of a SMALL write buffer costs little
// (the motivation for keeping the write buffer inside, §4.2).
func Fig8(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	// Write-only sweeps need enough operations to roll through several
	// memtable flushes and their compaction cascades, or the amortized
	// compaction cost never shows.
	cfg.Ops *= 4
	t := Table{
		Name:    "Figure 8",
		Caption: "write-buffer placement (disk writes)",
		XLabel:  "write buffer (paper)",
		Series:  seriesOrder(string(P1), "LSM outside (unsecured)"),
	}
	data := cfg.paperMB(512)
	wl := ycsb.Mix(0, ycsb.Uniform)
	for _, bufMB := range []int{4, 8, 16, 32, 64, 128, 256, 512} {
		row := Row{X: mbLabel(bufMB), Series: map[string]float64{}}
		cfg.logf("Fig8 buffer=%s", row.X)
		p1 := storeParams{variant: P1, dataBytes: data, memtable: cfg.paperMB(bufMB)}
		if err := cfg.addPoint(&row, p1, wl, string(P1)); err != nil {
			return t, err
		}
		un := storeParams{variant: UnsecuredMmap, dataBytes: data, memtable: cfg.paperMB(bufMB)}
		if err := cfg.addPoint(&row, un, wl, "LSM outside (unsecured)"); err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Experiment pairs a name with its runner.
type Experiment struct {
	Name string
	Run  func(Config) (Table, error)
}

// All lists every figure reproduction in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig2", Fig2},
		{"fig5a", Fig5a},
		{"fig5b", Fig5b},
		{"fig5c", Fig5c},
		{"fig6a", Fig6a},
		{"fig6b", Fig6b},
		{"fig6c", Fig6c},
		{"fig7a", Fig7a},
		{"fig7b", Fig7b},
		{"fig8", Fig8},
		{"ablation-earlystop", AblationEarlyStop},
		{"ablation-batch", AblationBatch},
		{"ablation-commit", AblationCommit},
		{"ablation-compaction", AblationCompaction},
		{"ablation-async", AblationAsync},
		{"ablation-shards", AblationShards},
		{"ablation-repl", AblationRepl},
		{"ablation-net", AblationNet},
	}
}
