package bench

import (
	"fmt"
	"sync"
	"time"

	"elsm/internal/core"
	"elsm/internal/repl"
	"elsm/internal/sgx"
	"elsm/internal/vfs"
)

// The replication ablation measures what read replicas cost the leader and
// buy the readers: durable put throughput on the leader with 0, 1 and 2
// followers tailing its commit stream (the hub hands each committed group
// to the ring on the single-threaded sync stage, so shipping overhead lands
// on the commit path), verified read throughput served by a follower, and
// the time to bootstrap a follower from a portable checkpoint.
const (
	replSyncDelay = 200 * time.Microsecond
	replWriters   = 4
)

// replFollowerSweep is the ablation's X axis: the follower count.
var replFollowerSweep = []int{0, 1, 2}

// openReplBench builds one eLSM-P2 store on sync-delayed storage bound to
// platform and ctr (shared attestation root: leader and followers verify
// each other's streams against it).
func (c Config) openReplBench(platform *sgx.Platform, ctr *sgx.MonotonicCounter) (*core.Store, vfs.FS, error) {
	fs := vfs.NewSlowSync(vfs.NewMem(), replSyncDelay)
	st, err := core.Open(core.Config{
		FS:              fs,
		Platform:        platform,
		Counter:         ctr,
		MemtableSize:    c.paperMB(4),
		TableFileSize:   c.paperMB(4),
		LevelBase:       int64(c.paperMB(10)),
		MaxLevels:       7,
		KeepVersions:    1,
		CounterInterval: 4096,
		MmapReads:       true,
	})
	return st, fs, err
}

// bootstrapReplFollower restores a follower from the leader's checkpoint
// stream and opens it, reporting the bootstrap wall time.
func (c Config) bootstrapReplFollower(src repl.Source, platform *sgx.Platform) (*core.Store, time.Duration, error) {
	ctr := sgx.NewMonotonicCounter()
	fs := vfs.NewSlowSync(vfs.NewMem(), replSyncDelay)
	start := time.Now()
	rc, err := src.Checkpoint(0)
	if err != nil {
		return nil, 0, err
	}
	err = core.RestoreCheckpoint(rc, core.RestoreConfig{FS: fs, Platform: platform, Counter: ctr, Shard: 0, Shards: 1})
	rc.Close()
	if err != nil {
		return nil, 0, err
	}
	st, err := core.Open(core.Config{
		FS:              fs,
		Platform:        platform,
		Counter:         ctr,
		MemtableSize:    c.paperMB(4),
		TableFileSize:   c.paperMB(4),
		LevelBase:       int64(c.paperMB(10)),
		MaxLevels:       7,
		KeepVersions:    1,
		CounterInterval: 4096,
		MmapReads:       true,
	})
	if err != nil {
		return nil, 0, err
	}
	return st, time.Since(start), nil
}

// replPoint measures one follower count. The leader preloads cfg.Ops
// records (the checkpoint corpus), nFollowers bootstrap and tail, then
// replWriters goroutines pump another totalOps durable puts while the
// followers keep pace. After the followers converge, one of them serves
// totalOps verified point reads.
func (c Config) replPoint(nFollowers, totalOps int) (leaderKops, readKops float64, bootstrap time.Duration, err error) {
	platform, err := sgx.NewPlatform()
	if err != nil {
		return 0, 0, 0, err
	}
	leader, _, err := c.openReplBench(platform, sgx.NewMonotonicCounter())
	if err != nil {
		return 0, 0, 0, err
	}
	defer leader.Close()

	val := []byte("repl-ablation-value-0123456789ab")
	for i := 0; i < totalOps; i++ {
		if _, err = leader.Put([]byte(fmt.Sprintf("pre-%07d", i)), val); err != nil {
			return 0, 0, 0, err
		}
	}

	hub := repl.NewLeader(leader, 0, 0, 1)
	defer hub.Close()
	src := repl.NewLocalSource([]*repl.Leader{hub})

	followers := make([]*core.Store, 0, nFollowers)
	tailers := make([]*repl.Tailer, 0, nFollowers)
	defer func() {
		for _, tl := range tailers {
			tl.Close()
		}
		for _, f := range followers {
			f.Close()
		}
	}()
	for i := 0; i < nFollowers; i++ {
		f, dur, ferr := c.bootstrapReplFollower(src, platform)
		if ferr != nil {
			return 0, 0, 0, fmt.Errorf("bootstrap follower %d: %w", i, ferr)
		}
		if i == 0 {
			bootstrap = dur
		}
		followers = append(followers, f)
		tailers = append(tailers, repl.StartTailer(f, src, 0, 1))
	}

	// Leader write throughput with the followers tailing live.
	perWriter := totalOps / replWriters
	if perWriter == 0 {
		perWriter = 1
	}
	var wg sync.WaitGroup
	errCh := make(chan error, replWriters)
	start := time.Now()
	for w := 0; w < replWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, perr := leader.Put([]byte(fmt.Sprintf("w%d-%06d", w, i)), val); perr != nil {
					errCh <- perr
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	if werr := <-errCh; werr != nil {
		return 0, 0, 0, werr
	}
	records := float64(perWriter * replWriters)
	leaderKops = records / elapsed.Seconds() / 1e3

	if nFollowers == 0 {
		return leaderKops, 0, 0, nil
	}

	// Convergence barrier, then verified reads off follower 0.
	head := leader.Engine().AppliedTs()
	deadline := time.Now().Add(30 * time.Second)
	for _, f := range followers {
		for f.Engine().AppliedTs() < head {
			for _, tl := range tailers {
				if terr := tl.Err(); terr != nil {
					return 0, 0, 0, fmt.Errorf("tailer failed: %w", terr)
				}
			}
			if time.Now().After(deadline) {
				return 0, 0, 0, fmt.Errorf("follower stuck at %d of %d", f.Engine().AppliedTs(), head)
			}
			time.Sleep(time.Millisecond)
		}
	}
	reader := followers[0]
	start = time.Now()
	for i := 0; i < totalOps; i++ {
		res, rerr := reader.Get([]byte(fmt.Sprintf("pre-%07d", i%totalOps)))
		if rerr != nil {
			return 0, 0, 0, rerr
		}
		if !res.Found {
			return 0, 0, 0, fmt.Errorf("follower lost key pre-%07d", i%totalOps)
		}
	}
	readKops = float64(totalOps) / time.Since(start).Seconds() / 1e3
	return leaderKops, readKops, bootstrap, nil
}

// AblationRepl quantifies verified replication: leader durable put
// throughput with 0/1/2 followers attached (shipping overhead), the
// verified read throughput a follower serves from its own Merkle forest,
// and checkpoint bootstrap time. Expected shape: leader throughput is
// nearly flat in the follower count (shipping reuses the already-verified
// commit stream; the hub copies references, not records), while each
// follower adds a full read replica.
func AblationRepl(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		Name: "Ablation: repl",
		Caption: fmt.Sprintf("leader durable put throughput vs follower count, %d writers, %v fsync; follower verified reads and checkpoint bootstrap",
			replWriters, replSyncDelay),
		XLabel: "followers",
		Series: seriesOrder("leader kops/s", "follower read kops/s", "bootstrap ms"),
	}
	for _, n := range replFollowerSweep {
		cfg.logf("AblationRepl followers=%d", n)
		leaderKops, readKops, boot, err := cfg.replPoint(n, cfg.Ops)
		if err != nil {
			return t, fmt.Errorf("repl ablation (%d followers): %w", n, err)
		}
		cfg.logf("    %d followers: leader %.1f kops/s, reads %.1f kops/s, bootstrap %v",
			n, leaderKops, readKops, boot)
		row := Row{X: fmt.Sprintf("%d", n), Series: map[string]float64{
			"leader kops/s": leaderKops,
		}}
		if n > 0 {
			row.Series["follower read kops/s"] = readKops
			row.Series["bootstrap ms"] = float64(boot.Nanoseconds()) / 1e6
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
