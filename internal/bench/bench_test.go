package bench

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"elsm/internal/costmodel"
	"elsm/internal/ycsb"
)

// tinyCfg runs experiments at 1/1024 scale with a zero cost model: fast
// plumbing validation (shapes are exercised by the real harness).
func tinyCfg() Config {
	zero := costmodel.Zero
	return Config{Scale: 1024, Ops: 60, Cost: &zero}
}

func TestAllFiguresRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("bench plumbing test")
	}
	for _, exp := range All() {
		exp := exp
		t.Run(exp.Name, func(t *testing.T) {
			tbl, err := exp.Run(tinyCfg())
			if err != nil {
				t.Fatalf("%s: %v", exp.Name, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s produced no rows", exp.Name)
			}
			for _, row := range tbl.Rows {
				if len(row.Series) == 0 {
					t.Fatalf("%s row %s has no series", exp.Name, row.X)
				}
				for name, v := range row.Series {
					if v < 0 {
						t.Fatalf("%s %s/%s negative latency", exp.Name, row.X, name)
					}
				}
			}
			out := tbl.Format()
			if !strings.Contains(out, tbl.Name) {
				t.Fatalf("format output missing name: %s", out)
			}
		})
	}
}

func TestTable1(t *testing.T) {
	out := Table1()
	for _, want := range []string{"eLSM-P1", "eLSM-P2", "File granularity", "Record granularity"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 missing %q", want)
		}
	}
}

func TestBatchThroughputReport(t *testing.T) {
	tbl, err := BatchThroughput(tinyCfg(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0].X != "single-put" || tbl.Rows[1].X != "batch-64" {
		t.Fatalf("row labels = %q, %q", tbl.Rows[0].X, tbl.Rows[1].X)
	}
	if _, err := BatchThroughput(tinyCfg(), 1); err == nil {
		t.Fatal("batch size 1 accepted")
	}
}

func TestLoadBatchedMatchesBulk(t *testing.T) {
	cfg := tinyCfg().withDefaults()
	kv, err := cfg.buildStore(storeParams{variant: P2Mmap, dataBytes: cfg.paperMB(1)})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	data := cfg.paperMB(1)
	if err := loadBatchedAndWarm(kv, data, 128); err != nil {
		t.Fatal(err)
	}
	res, err := kv.Scan([]byte("user"), []byte("uses"))
	if err != nil {
		t.Fatal(err)
	}
	if want := ycsb.RecordsForBytes(int64(data)); len(res) != want {
		t.Fatalf("batched load produced %d records, want %d", len(res), want)
	}
}

func TestCommitThroughputReport(t *testing.T) {
	tbl, err := CommitThroughput(tinyCfg(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 { // writers 1, 2, 4
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if _, ok := row.Series["per-op commit"]; !ok {
			t.Fatalf("row %s missing per-op series", row.X)
		}
		if _, ok := row.Series["group commit"]; !ok {
			t.Fatalf("row %s missing grouped series", row.X)
		}
	}
	if _, err := CommitThroughput(tinyCfg(), 0); err == nil {
		t.Fatal("procs 0 accepted")
	}
}

func TestWriteJSON(t *testing.T) {
	tbl := Table{
		Name:    "Ablation: group commit",
		Caption: "c",
		XLabel:  "x",
		Series:  []string{"a"},
		Rows:    []Row{{X: "1", Series: map[string]float64{"a": 2.5}}},
	}
	if got, want := tbl.FileSlug(), "ablation-group-commit"; got != want {
		t.Fatalf("slug = %q, want %q", got, want)
	}
	dir := t.TempDir()
	path, err := tbl.WriteJSON(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != tbl.Name || len(back.Rows) != 1 || back.Rows[0].Series["a"] != 2.5 {
		t.Fatalf("round trip = %+v", back)
	}
	if !strings.HasSuffix(path, "BENCH_ablation-group-commit.json") {
		t.Fatalf("path = %q", path)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 32 || c.Ops != 1200 || c.Cost == nil {
		t.Fatalf("defaults = %+v", c)
	}
	if c.paperMB(128) != 4<<20 {
		t.Fatalf("128MB scaled = %d", c.paperMB(128))
	}
	if c.paperMB(1) != 64<<10 {
		t.Fatalf("floor not applied: %d", c.paperMB(1))
	}
}
