package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"elsm/internal/core"
	"elsm/internal/sgx"
	"elsm/internal/vfs"
)

// asyncSyncDelay models storage whose fsync costs real time — the regime
// the async-durability pipeline exists for (in-memory fsyncs are free and
// would hide exactly the wait being ablated).
const asyncSyncDelay = 200 * time.Microsecond

// asyncWriterSweep is the ablation's X axis: concurrent writer goroutines.
var asyncWriterSweep = []int{1, 4, 16}

// asyncBatchOps is the batch size each writer commits per operation.
const asyncBatchOps = 4

// openAsyncStore builds the eLSM-P2 store under test on sync-delayed
// storage.
func (c Config) openAsyncStore() (*core.Store, error) {
	return core.Open(core.Config{
		FS:              vfs.NewSlowSync(vfs.NewMem(), asyncSyncDelay),
		SGX:             sgx.Params{EPCSize: c.epcBytes(), Cost: *c.Cost},
		MemtableSize:    c.paperMB(4),
		TableFileSize:   c.paperMB(4),
		LevelBase:       int64(c.paperMB(10)),
		MaxLevels:       7,
		KeepVersions:    1,
		CounterInterval: 4096,
		MmapReads:       true,
	})
}

// asyncPoint measures one (writers, mode) cell: each writer commits
// batches of asyncBatchOps records; in sync mode every Commit blocks until
// its group is fsynced, in async mode CommitAsync returns at acceptance and
// the run ends with one Sync barrier — so both modes measure time to FULL
// durability of the same record count. Reports kops/sec of durable records
// and fsyncs per 1000 records.
func (c Config) asyncPoint(writers, totalOps int, async bool) (kopsPerSec, fsyncsPerK float64, err error) {
	s, err := c.openAsyncStore()
	if err != nil {
		return 0, 0, err
	}
	defer s.Close()

	ctx := context.Background()
	perWriter := totalOps / writers
	if perWriter == 0 {
		perWriter = 1
	}
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			val := []byte("async-ablation-value-0123456789")
			for i := 0; i < perWriter; i++ {
				ops := make([]core.BatchOp, asyncBatchOps)
				for j := range ops {
					ops[j] = core.BatchOp{
						Key:   []byte(fmt.Sprintf("w%02d-%06d-%d", w, i, j)),
						Value: val,
					}
				}
				if async {
					fut, aerr := s.CommitAsync(ctx, ops)
					if aerr != nil {
						errCh <- aerr
						return
					}
					if _, aerr = fut.Ts(ctx); aerr != nil {
						errCh <- aerr
						return
					}
				} else {
					if _, serr := s.ApplyBatch(ops); serr != nil {
						errCh <- serr
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// The durability barrier: async acknowledgments are not durable until
	// Sync returns, so the clock covers it — both modes pay for the same
	// guarantee.
	if serr := s.Sync(ctx); serr != nil {
		return 0, 0, serr
	}
	elapsed := time.Since(start)
	close(errCh)
	if werr := <-errCh; werr != nil {
		return 0, 0, werr
	}

	records := float64(perWriter * writers * asyncBatchOps)
	st := s.Engine().Stats()
	kopsPerSec = records / elapsed.Seconds() / 1e3
	fsyncsPerK = float64(st.WALSyncs) / records * 1000
	return kopsPerSec, fsyncsPerK, nil
}

// AblationAsync quantifies what pipelined asynchronous durability buys:
// writers committing batches back to back, sync (every commit waits for
// its group's fsync) vs async (CommitAsync acknowledged at append, one
// Sync barrier at the end), on storage with a real fsync cost. Durable
// throughput is measured to the barrier in both modes. Expected shape:
// async wins at every concurrency and the gap widens with writers — sync
// writers serialize on fsync waits while the async pipeline overlaps the
// next group's WAL append with the in-flight fsync and absorbs many groups
// per fsync.
func AblationAsync(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		Name: "Ablation: async",
		Caption: fmt.Sprintf("sync vs pipelined async commit, batches of %d, %v fsync (durable kops/sec)",
			asyncBatchOps, asyncSyncDelay),
		XLabel: "writers",
		Series: seriesOrder("sync kops/s", "async kops/s", "sync fsync/1k", "async fsync/1k"),
	}
	for _, writers := range asyncWriterSweep {
		row := Row{X: fmt.Sprintf("%d", writers), Series: map[string]float64{}}
		cfg.logf("AblationAsync writers=%d", writers)
		syncK, syncF, err := cfg.asyncPoint(writers, cfg.Ops, false)
		if err != nil {
			return t, fmt.Errorf("async ablation (sync, %d writers): %w", writers, err)
		}
		asyncK, asyncF, err := cfg.asyncPoint(writers, cfg.Ops, true)
		if err != nil {
			return t, fmt.Errorf("async ablation (async, %d writers): %w", writers, err)
		}
		cfg.logf("    sync %.1f kops/s (%.1f fsync/1k), async %.1f kops/s (%.1f fsync/1k)",
			syncK, syncF, asyncK, asyncF)
		row.Series["sync kops/s"] = syncK
		row.Series["async kops/s"] = asyncK
		row.Series["sync fsync/1k"] = syncF
		row.Series["async fsync/1k"] = asyncF
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
