package bench

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"elsm"
	"elsm/internal/netclient"
	"elsm/internal/netsrv"
	"elsm/internal/obs"
	"elsm/internal/vfs"
)

// The net ablation measures the network front end end to end: many client
// connections pushing durable writes through the full stack — client
// codec, TCP, the server's reader/workers/writer pipeline, the store's
// group-commit fsyncs — on storage with a real fsync cost. Two protocols
// run the same workload:
//
//   - binary: the pipelined frame protocol, each connection keeping a
//     window of writes in flight (netPipelineWindow deep, shrunk at the
//     high end of the sweep so the fleet stays inside netInflightBudget),
//     so one client contributes a window of commits to the shared fsync
//     groups;
//   - line: the legacy one-request-one-reply protocol, each connection
//     contributing at most one commit at a time.
//
// Cross-connection group commit helps both; per-connection pipelining is
// what the binary protocol adds, and the sweep shows where it pays: a
// pipelined connection contributes a whole window to the shared fsync
// groups, so few binary clients match the throughput line protocol needs
// an order of magnitude more connections to reach. The final overload row
// reruns the binary point against a deliberately tiny async-commit
// backlog, demonstrating that saturation sheds load as typed BUSY
// (counted per 1k attempts) instead of queueing without bound.
const (
	netSyncDelay      = 200 * time.Microsecond
	netPipelineWindow = 8
	netValueSize      = 100
	// netDialParallel staggers connection setup so a large sweep point
	// does not overflow the accept backlog.
	netDialParallel = 64
	// netInflightBudget bounds the fleet's total offered in-flight writes:
	// each client's window is netInflightBudget/clients (clamped to
	// [1, netPipelineWindow]), the way a production fleet sizes its global
	// in-flight to the server's admission budget (DefaultMaxInflight).
	// In-flight work beyond where the durability pipeline saturates adds
	// only queueing delay and memory, so without the cap the high end of
	// the sweep measures self-inflicted queueing, not protocol scaling.
	netInflightBudget = 4096
	// Overload point: a backlog far below the offered in-flight load and a
	// short admission wait force the BUSY path.
	netOverloadClients = 200
	netOverloadBacklog = 8
)

// netClientSweep is the ablation's X axis: concurrent client connections.
// The low end is where per-connection pipelining pays (a line-protocol
// client is depth-starved: one commit in flight per connection); by the
// high end a single-core CI box is saturated by connection handling alone
// and the protocols converge. 2000 is the CI-sized ceiling — the harness
// itself is sized for 10k (goroutine-per-connection clients, ~24 KB of
// buffers per connection) on a machine with the cores and fds to spare.
var netClientSweep = []int{4, 16, 64, 2000}

// netWindow sizes one connection's pipeline window for a sweep point:
// netPipelineWindow deep until the fleet's total offered in-flight would
// exceed netInflightBudget, then shrunk so clients×window stays inside it
// (never below one — that is the line protocol's depth).
func netWindow(clients int) int {
	w := netInflightBudget / clients
	if w < 1 {
		w = 1
	}
	if w > netPipelineWindow {
		w = netPipelineWindow
	}
	return w
}

// netBench is one running store + front end on a loopback listener.
type netBench struct {
	store *elsm.Store
	srv   *netsrv.Server
	addr  string
}

func (b *netBench) Close() {
	b.srv.Close()
	b.store.Close()
}

// openNetBench serves a fresh store on sync-delayed storage. backlog and
// wait tune the admission control (0 = defaults); maxInflight is sized to
// the offered load so the sweep measures scaling, not the budget.
func openNetBench(clients, backlog int, wait time.Duration) (*netBench, error) {
	store, err := elsm.Open(elsm.Options{
		FS:                    vfs.NewSlowSync(vfs.NewMem(), netSyncDelay),
		MaxAsyncCommitBacklog: backlog,
		// Bound commit groups: unbounded groups swallow the whole fleet's
		// window into one commit, synchronizing every connection's
		// completions and leaving the pipeline idle during the fleet-wide
		// turnaround. Capped groups stagger completions and keep commits
		// flowing continuously.
		GroupCommitMaxOps: 64,
	})
	if err != nil {
		return nil, err
	}
	srv, err := netsrv.New(store, netsrv.Config{
		MaxConnections: clients + 8,
		PipelineDepth:  netPipelineWindow * 2,
		MaxInflight:    clients*netPipelineWindow + 64,
		AdmissionWait:  wait,
	})
	if err != nil {
		store.Close()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		store.Close()
		return nil, err
	}
	go srv.Serve(ln)
	return &netBench{store: store, srv: srv, addr: ln.Addr().String()}, nil
}

// netResult aggregates one point's measurements across clients. Latencies
// live in a merged log-bucket histogram snapshot (internal/obs) instead of
// a per-op slice: constant memory across the sweep, and the same quantile
// estimator the server's /metrics endpoint uses.
type netResult struct {
	completed int
	busy      int
	lat       obs.HistSnapshot
	elapsed   time.Duration
}

func (r netResult) kops() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.completed) / r.elapsed.Seconds() / 1e3
}

func (r netResult) p99ms() float64 {
	return float64(r.lat.Quantile(0.99)) / 1e6
}

// runNetClients runs one point in two phases so the measured window is
// pure request traffic: every client connects (dials staggered, so a large
// point does not overflow the accept backlog) and parks on a barrier; the
// clock starts when the last one is ready, all are released together, and
// it stops when the last finishes. connect(id) establishes one client and
// returns its runner; the runner reports completed ops, BUSY sheds and
// per-op latencies.
func runNetClients(clients int, connect func(id int) (func() (int, int, obs.HistSnapshot, error), error)) (netResult, error) {
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		res   netResult
		first error
		ready sync.WaitGroup
	)
	gate := make(chan struct{}, netDialParallel)
	barrier := make(chan struct{})
	ready.Add(clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			gate <- struct{}{}
			run, err := connect(id)
			<-gate
			ready.Done()
			if err != nil {
				mu.Lock()
				if first == nil {
					first = err
				}
				mu.Unlock()
				return
			}
			<-barrier
			done, busy, lat, rerr := run()
			mu.Lock()
			defer mu.Unlock()
			if rerr != nil && first == nil {
				first = rerr
			}
			res.completed += done
			res.busy += busy
			res.lat.Merge(lat)
		}(id)
	}
	ready.Wait()
	start := time.Now()
	close(barrier)
	wg.Wait()
	res.elapsed = time.Since(start)
	return res, first
}

// netBinaryClient connects one binary client; its runner pushes perClient
// pipelined durable writes, keeping window in flight. ErrBusy settles the
// op as shed (counted, not retried); any other error aborts the client.
func netBinaryClient(addr string, id, perClient, window int) (func() (int, int, obs.HistSnapshot, error), error) {
	c, err := netclient.Dial(addr)
	if err != nil {
		return nil, err
	}
	if err := c.Ping(); err != nil {
		c.Close()
		return nil, err
	}
	return func() (int, int, obs.HistSnapshot, error) {
		defer c.Close()
		return netBinaryOps(c, id, perClient, window)
	}, nil
}

func netBinaryOps(c *netclient.Client, id, perClient, window int) (int, int, obs.HistSnapshot, error) {
	val := make([]byte, netValueSize)
	type inflight struct {
		fut   *netclient.Future
		start time.Time
	}
	var (
		pending   []inflight
		completed int
		busy      int
		lat       obs.Histogram
	)
	settle := func(w inflight) error {
		_, err := w.fut.Wait()
		switch {
		case err == nil:
			completed++
			lat.ObserveSince(w.start)
		case err == netclient.ErrBusy:
			busy++
		default:
			return err
		}
		return nil
	}
	// Settle one per send once the window fills: the window stays full, so
	// the server's commit pipeline sees this connection's writes as a
	// continuous stream rather than synchronized bursts (settling in
	// batches lockstepped the whole fleet into admit-then-starve cycles
	// that left the group-commit pipeline idle between rounds).
	for i := 0; i < perClient; i++ {
		key := fmt.Appendf(nil, "c%05d-%07d", id, i)
		start := time.Now()
		fut, err := c.PutAsync(key, val)
		if err != nil {
			return completed, busy, lat.Snapshot(), err
		}
		pending = append(pending, inflight{fut, start})
		if len(pending) >= window {
			if err := settle(pending[0]); err != nil {
				return completed, busy, lat.Snapshot(), err
			}
			pending = pending[1:]
		}
	}
	for _, w := range pending {
		if err := settle(w); err != nil {
			return completed, busy, lat.Snapshot(), err
		}
	}
	return completed, busy, lat.Snapshot(), nil
}

// netLineClient connects one legacy line-protocol client; its runner
// pushes perClient durable writes, strict request-reply, one outstanding.
func netLineClient(addr string, id, perClient int) (func() (int, int, obs.HistSnapshot, error), error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return func() (int, int, obs.HistSnapshot, error) {
		defer conn.Close()
		return netLineOps(conn, id, perClient)
	}, nil
}

func netLineOps(conn net.Conn, id, perClient int) (int, int, obs.HistSnapshot, error) {
	br := bufio.NewReader(conn)
	val := make([]byte, netValueSize)
	completed := 0
	var lat obs.Histogram
	for i := 0; i < perClient; i++ {
		start := time.Now()
		if _, err := fmt.Fprintf(conn, "PUT c%05d-%07d %s\n", id, i, val); err != nil {
			return completed, 0, lat.Snapshot(), err
		}
		reply, err := br.ReadString('\n')
		if err != nil {
			return completed, 0, lat.Snapshot(), err
		}
		if len(reply) < 2 || reply[0] != 'O' || reply[1] != 'K' {
			return completed, 0, lat.Snapshot(), fmt.Errorf("line PUT reply %q", reply)
		}
		completed++
		lat.ObserveSince(start)
	}
	return completed, 0, lat.Snapshot(), nil
}

// netPerClient sizes each connection's op count: small CI budgets still
// exercise every sweep point, and the floor of two full pipeline windows
// guarantees the binary protocol's pipelining is actually in play.
func netPerClient(totalOps, window int, clients int) int {
	per := totalOps / clients
	if per < 2*window {
		per = 2 * window
	}
	return per
}

// netPoint measures one (clients, protocol) cell.
func (c Config) netPoint(clients, backlog int, wait time.Duration, binary bool) (netResult, error) {
	b, err := openNetBench(clients, backlog, wait)
	if err != nil {
		return netResult{}, err
	}
	defer b.Close()
	window := netWindow(clients)
	per := netPerClient(c.Ops, window, clients)
	connect := func(id int) (func() (int, int, obs.HistSnapshot, error), error) {
		if binary {
			return netBinaryClient(b.addr, id, per, window)
		}
		return netLineClient(b.addr, id, per)
	}
	return runNetClients(clients, connect)
}

// AblationNet sweeps concurrent client connections over both wire
// protocols, reporting durable-write throughput and p99 latency end to
// end, plus an overload row demonstrating BUSY load shedding when the
// async-commit backlog saturates. Expected shape: binary throughput scales
// with clients and clearly beats line from the mid-sweep on (the pipelined
// window multiplies each connection's contribution to shared fsync
// groups); the overload row sheds a nonzero busy/1k while still completing
// work — and the server neither deadlocks nor buffers without bound.
func AblationNet(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		Name: "Ablation: net",
		Caption: fmt.Sprintf("networked durable puts vs client connections, up to %d-deep binary pipeline vs line request-reply, %v fsync (throughput: kops/s; latency: p99 ms)",
			netPipelineWindow, netSyncDelay),
		XLabel: "clients",
		Series: seriesOrder("binary kops/s", "line kops/s", "binary p99 ms", "line p99 ms", "busy/1k"),
	}
	// Warm-up: the first cell in a process pays one-off costs (heap
	// growth, page faults, the crypto stack's first blocks) that skew a
	// cross-cell comparison on a small box; burn them on a throwaway
	// point.
	warm := cfg
	warm.Ops = 2000
	if _, err := warm.netPoint(32, 0, 0, true); err != nil {
		return t, fmt.Errorf("net ablation (warm-up): %w", err)
	}

	for _, clients := range netClientSweep {
		cfg.logf("AblationNet clients=%d", clients)
		bin, err := cfg.netPoint(clients, 0, 0, true)
		if err != nil {
			return t, fmt.Errorf("net ablation (binary, %d clients): %w", clients, err)
		}
		line, err := cfg.netPoint(clients, 0, 0, false)
		if err != nil {
			return t, fmt.Errorf("net ablation (line, %d clients): %w", clients, err)
		}
		cfg.logf("    %d clients: binary %.1f kops/s p99 %.2f ms | line %.1f kops/s p99 %.2f ms",
			clients, bin.kops(), bin.p99ms(), line.kops(), line.p99ms())
		t.Rows = append(t.Rows, Row{
			X: fmt.Sprintf("%d", clients),
			Series: map[string]float64{
				"binary kops/s": bin.kops(),
				"line kops/s":   line.kops(),
				"binary p99 ms": bin.p99ms(),
				"line p99 ms":   line.p99ms(),
				"busy/1k":       0,
			},
		})
	}

	// Overload: a backlog of netOverloadBacklog against an offered load of
	// netOverloadClients×netPipelineWindow in-flight writes. The server
	// must shed (busy/1k > 0) while the admitted share completes.
	cfg.logf("AblationNet overload (backlog %d)", netOverloadBacklog)
	over, err := cfg.netPoint(netOverloadClients, netOverloadBacklog, 2*time.Millisecond, true)
	if err != nil {
		return t, fmt.Errorf("net ablation (overload): %w", err)
	}
	attempts := over.completed + over.busy
	busyPerK := 0.0
	if attempts > 0 {
		busyPerK = float64(over.busy) / float64(attempts) * 1000
	}
	cfg.logf("    overload: %.1f kops/s admitted, %.0f busy/1k", over.kops(), busyPerK)
	t.Rows = append(t.Rows, Row{
		X: fmt.Sprintf("%d overload", netOverloadClients),
		Series: map[string]float64{
			"binary kops/s": over.kops(),
			"binary p99 ms": over.p99ms(),
			"busy/1k":       busyPerK,
		},
	})
	return t, nil
}
