package core

import (
	"context"
	"sync"

	"elsm/internal/lsm"
	"elsm/internal/record"
	"elsm/internal/sgx"
)

// This file implements the Snapshot interface for the three store modes.
// All three capture the same engine-level unit — lsm.Snapshot: the applied
// timestamp frontier, the memtable pair, and the reference-counted run set
// of the current version — so a snapshot's reads are repeatable bit for bit
// across concurrent flushes, compactions and WAL rotations; eLSM-P2
// additionally pairs it with the trusted digest forest (readView) so every
// snapshot read is verified exactly like the live paths.

// p2Snapshot is the verified snapshot of the eLSM-P2 store.
type p2Snapshot struct {
	c    *Store
	view *readView
	once sync.Once
}

// Snapshot implements KV for eLSM-P2: it pins the current trusted digest
// snapshot together with its runs and memtables as one consistent verified
// read session.
func (c *Store) Snapshot() (Snapshot, error) {
	var (
		v   *readView
		err error
	)
	c.enclave.ECall(func() { v, err = c.acquireView() })
	if err != nil {
		return nil, err
	}
	return &p2Snapshot{c: c, view: v}, nil
}

// Ts implements Snapshot.
func (s *p2Snapshot) Ts() uint64 { return s.view.ts() }

// GetAt implements Snapshot: the verified GET protocol against the pinned
// view (tsq clamped to the snapshot frontier).
func (s *p2Snapshot) GetAt(ctx context.Context, key []byte, tsq uint64) (Result, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	var res Result
	var err error
	s.c.enclave.ECall(func() { res, err = s.view.getAt(key, tsq) })
	return res, err
}

// IterAt implements Snapshot: the chunked verified stream over the pinned
// view. The iterator takes its own view reference, so closing the snapshot
// mid-iteration does not unpin the stream's runs.
func (s *p2Snapshot) IterAt(ctx context.Context, start, end []byte, tsq uint64) Iterator {
	s.view.retain()
	return s.c.viewIter(ctx, s.view, start, end, tsq)
}

// Close implements Snapshot, releasing the snapshot's run pins. Idempotent.
func (s *p2Snapshot) Close() error {
	s.once.Do(s.view.release)
	return nil
}

// rawSnapshot is the unverified snapshot shared by eLSM-P1 and the
// unsecured baseline: the same pinned engine view, read through the plain
// engine protocol (P1's integrity comes from block seals applied below
// this layer; unsecured has none).
type rawSnapshot struct {
	esnap     *lsm.Snapshot
	enclave   *sgx.Enclave // nil for the unsecured store
	chunkKeys int
	refs      int // iterator references, guarded by mu
	closed    bool
	mu        sync.Mutex
}

// newRawSnapshot pins the engine state for a P1/unsecured snapshot.
func newRawSnapshot(engine *lsm.Store, enclave *sgx.Enclave, chunkKeys int) *rawSnapshot {
	return &rawSnapshot{esnap: engine.AcquireSnapshot(), enclave: enclave, chunkKeys: chunkKeys}
}

// ecall runs fn as an enclave call when the mode has an enclave.
func (s *rawSnapshot) ecall(fn func()) {
	if s.enclave != nil {
		s.enclave.ECall(fn)
		return
	}
	fn()
}

// Ts implements Snapshot.
func (s *rawSnapshot) Ts() uint64 { return s.esnap.Ts() }

// GetAt implements Snapshot.
func (s *rawSnapshot) GetAt(ctx context.Context, key []byte, tsq uint64) (Result, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	var res Result
	var err error
	s.ecall(func() {
		var rec record.Record
		var ok bool
		rec, ok, err = s.esnap.Get(key, tsq)
		if err == nil && ok {
			res = resultFrom(rec)
		}
	})
	return res, err
}

// IterAt implements Snapshot: chunks stream through one enclave call each.
func (s *rawSnapshot) IterAt(ctx context.Context, start, end []byte, tsq uint64) Iterator {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return &errIter{err: lsm.ErrClosed}
	}
	s.refs++
	s.mu.Unlock()
	endC := append([]byte(nil), end...)
	return newChunkIter(ctx, start, func(cursor []byte) ([]Result, []byte, bool, error) {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, nil, false, err
			}
		}
		var (
			recs []record.Record
			next []byte
			done bool
			err  error
		)
		s.ecall(func() { recs, next, done, err = s.esnap.ScanChunk(cursor, endC, tsq, s.chunkKeys) })
		if err != nil {
			return nil, nil, false, err
		}
		out := make([]Result, 0, len(recs))
		for _, rec := range recs {
			out = append(out, resultFrom(rec))
		}
		return out, next, done, nil
	}, s.unref)
}

// unref drops an iterator reference, releasing the engine pins once the
// snapshot is closed and no iterators remain.
func (s *rawSnapshot) unref() {
	s.mu.Lock()
	s.refs--
	release := s.closed && s.refs == 0
	s.mu.Unlock()
	if release {
		s.esnap.Release()
	}
}

// Close implements Snapshot. Idempotent; open iterators keep the engine
// pins until they close.
func (s *rawSnapshot) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	release := s.refs == 0
	s.mu.Unlock()
	if release {
		s.esnap.Release()
	}
	return nil
}

// Snapshot implements KV for eLSM-P1.
func (s *StoreP1) Snapshot() (Snapshot, error) {
	return newRawSnapshot(s.engine, s.enclave, s.iterChunkKeys), nil
}

// Snapshot implements KV for the unsecured baseline.
func (s *Unsecured) Snapshot() (Snapshot, error) {
	return newRawSnapshot(s.engine, nil, s.iterChunkKeys), nil
}
