package core

import (
	"bytes"
	"errors"
	"fmt"

	"elsm/internal/hashutil"
	"elsm/internal/lsm"
	"elsm/internal/merkle"
	"elsm/internal/record"
)

// Authentication failures. All wrap ErrAuthFailed so callers can classify
// with errors.Is.
var (
	// ErrAuthFailed is the base class of every verification failure.
	ErrAuthFailed = errors.New("core: authentication failed")
	// ErrForged marks results that fail Merkle verification (query
	// integrity, §3.3 definition 1).
	ErrForged = fmt.Errorf("%w: forged or corrupted result", ErrAuthFailed)
	// ErrStale marks results that fail the freshness check (§3.3
	// definition 3).
	ErrStale = fmt.Errorf("%w: stale result", ErrAuthFailed)
	// ErrIncomplete marks results that fail the completeness check (§3.3
	// definition 2).
	ErrIncomplete = fmt.Errorf("%w: incomplete result", ErrAuthFailed)
	// ErrCompactionInput marks authenticated-compaction input mismatches
	// (§5.5.2 step a).
	ErrCompactionInput = fmt.Errorf("%w: compaction input digest mismatch", ErrAuthFailed)
	// ErrRollback marks detected rollback attacks (§5.6.1).
	ErrRollback = fmt.Errorf("%w: rollback detected", ErrAuthFailed)
	// ErrStateMissing means the untrusted host lost or withheld the sealed
	// trusted state while data files exist.
	ErrStateMissing = fmt.Errorf("%w: sealed trusted state missing", ErrAuthFailed)
)

// verifyWitness checks a record's embedded proof against the run digest and
// returns the parsed proof. It establishes that the record (with its claimed
// version-chain position) is a leaf of the run's Merkle tree.
func verifyWitness(rec record.Record, d runDigest) (*EmbeddedProof, error) {
	p, err := DecodeProof(rec.Proof)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrForged, err)
	}
	leaf := p.ReconstructLeaf(rec)
	if err := merkle.VerifyPath(leaf, int(p.LeafIndex), d.NumLeaves, p.Path, d.Root); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrForged, err)
	}
	return p, nil
}

// verifyMembership is the per-run membership half of VRFY (§5.3): the
// record must verify against the run root, and it must be the newest
// version with Ts ≤ tsq — any newer version is visible in the proof's
// chain headers, so staleness is detectable (Theorem 5.3, Case 1).
func verifyMembership(key []byte, tsq uint64, rec record.Record, d runDigest) (*EmbeddedProof, error) {
	if !bytes.Equal(rec.Key, key) {
		return nil, fmt.Errorf("%w: result key %q does not match query %q", ErrForged, rec.Key, key)
	}
	if rec.Ts > tsq {
		return nil, fmt.Errorf("%w: result newer than query time", ErrForged)
	}
	p, err := verifyWitness(rec, d)
	if err != nil {
		return nil, err
	}
	// Freshness: every newer version in this run must postdate tsq.
	// Newer is ascending, so checking the first entry suffices — but the
	// chain itself was hash-verified, so all entries are authentic.
	for _, e := range p.Newer {
		if e.Ts <= tsq {
			return nil, fmt.Errorf("%w: version %d supersedes result %d (≤ tsq %d)", ErrStale, e.Ts, rec.Ts, tsq)
		}
	}
	return p, nil
}

// verifyNonMembership is the per-run non-membership half of VRFY: the two
// bracketing witnesses must be adjacent leaves with keys straddling the
// queried key (§5.5.1), or — for historical queries — the oldest version of
// the key itself, newer than tsq.
func verifyNonMembership(key []byte, tsq uint64, lk lsm.RunLookup, d runDigest) error {
	if lk.EmptyRun || (lk.Pred == nil && lk.Succ == nil) {
		if d.NumLeaves != 0 {
			return fmt.Errorf("%w: host claims empty run but %d keys are digested", ErrIncomplete, d.NumLeaves)
		}
		return nil
	}
	// Historical witness: the key exists but only with versions newer
	// than tsq. The witness must be the oldest version (Inner == 0).
	if lk.Pred != nil && bytes.Equal(lk.Pred.Key, key) {
		p, err := verifyWitness(*lk.Pred, d)
		if err != nil {
			return err
		}
		if lk.Pred.Ts <= tsq {
			return fmt.Errorf("%w: witness version %d satisfies the query", ErrIncomplete, lk.Pred.Ts)
		}
		if !p.Inner.IsZero() {
			return fmt.Errorf("%w: historical witness is not the oldest version", ErrIncomplete)
		}
		return nil
	}
	predIdx, succIdx := -1, -1
	if lk.Pred != nil {
		if bytes.Compare(lk.Pred.Key, key) >= 0 {
			return fmt.Errorf("%w: predecessor witness %q not below query %q", ErrIncomplete, lk.Pred.Key, key)
		}
		p, err := verifyWitness(*lk.Pred, d)
		if err != nil {
			return err
		}
		predIdx = int(p.LeafIndex)
	}
	if lk.Succ != nil {
		if bytes.Compare(lk.Succ.Key, key) <= 0 {
			return fmt.Errorf("%w: successor witness %q not above query %q", ErrIncomplete, lk.Succ.Key, key)
		}
		p, err := verifyWitness(*lk.Succ, d)
		if err != nil {
			return err
		}
		succIdx = int(p.LeafIndex)
	}
	switch {
	case lk.Pred == nil:
		if succIdx != 0 {
			return fmt.Errorf("%w: no predecessor but successor at leaf %d", ErrIncomplete, succIdx)
		}
	case lk.Succ == nil:
		if predIdx != d.NumLeaves-1 {
			return fmt.Errorf("%w: no successor but predecessor at leaf %d of %d", ErrIncomplete, predIdx, d.NumLeaves)
		}
	default:
		if succIdx != predIdx+1 {
			return fmt.Errorf("%w: witnesses not adjacent (%d, %d)", ErrIncomplete, predIdx, succIdx)
		}
	}
	return nil
}

// verifyRunScan checks a per-run range result for integrity and
// completeness (§5.4): the returned records must reconstruct a contiguous
// span of leaves under the run root, and the bracketing witnesses must
// prove no in-range leaf was withheld at either boundary.
func verifyRunScan(start, end []byte, rs lsm.RunScan, d runDigest) error {
	if len(rs.Records) == 0 {
		// Empty range result: same shape as non-membership, with the
		// witnesses straddling the whole range.
		lk := lsm.RunLookup{RunID: rs.RunID, Pred: rs.Pred, Succ: rs.Succ, EmptyRun: rs.EmptyRun}
		if lk.Pred != nil && bytes.Compare(lk.Pred.Key, start) >= 0 {
			return fmt.Errorf("%w: range predecessor inside range", ErrIncomplete)
		}
		if lk.Succ != nil && bytes.Compare(lk.Succ.Key, end) <= 0 {
			return fmt.Errorf("%w: range successor inside range", ErrIncomplete)
		}
		// Adjacency check via the point-query helper with a pseudo key:
		// any key strictly between the witnesses; using start is sound
		// because witness keys were just checked against the bounds.
		return verifyNonMembership(start, record.MaxTs, lk, d)
	}

	// Group in-range records into per-key version chains and rebuild the
	// leaf hashes. Any missing or forged version breaks the chain.
	var (
		leaves  []hashutil.Hash
		groups  [][]record.Record
		current []record.Record
	)
	for i := range rs.Records {
		rec := rs.Records[i]
		if bytes.Compare(rec.Key, start) < 0 || bytes.Compare(rec.Key, end) > 0 {
			return fmt.Errorf("%w: record %q outside range", ErrForged, rec.Key)
		}
		if len(current) > 0 && !bytes.Equal(current[0].Key, rec.Key) {
			groups = append(groups, current)
			current = nil
		}
		if len(current) > 0 {
			prev := current[len(current)-1]
			if prev.Ts <= rec.Ts {
				return fmt.Errorf("%w: version order violated for %q", ErrForged, rec.Key)
			}
		}
		current = append(current, rec)
	}
	groups = append(groups, current)
	for _, g := range groups {
		inner := hashutil.Zero
		for i := len(g) - 1; i >= 0; i-- {
			inner = hashutil.ChainLink(g[i].Ts, g[i].Digest(), inner)
		}
		leaves = append(leaves, hashutil.LeafHash(g[0].Key, inner))
	}

	// The range proof is assembled from the embedded proofs of the first
	// and last records (§5.2): left-boundary siblings from the first
	// record's path, right-boundary siblings from the last record's path.
	firstProof, err := DecodeProof(groups[0][0].Proof)
	if err != nil {
		return fmt.Errorf("%w: first record proof: %v", ErrForged, err)
	}
	lastGroup := groups[len(groups)-1]
	lastProof, err := DecodeProof(lastGroup[0].Proof)
	if err != nil {
		return fmt.Errorf("%w: last record proof: %v", ErrForged, err)
	}
	startIdx := int(firstProof.LeafIndex)
	endIdx := startIdx + len(leaves) - 1
	rp := &merkle.RangeProof{
		Start: startIdx,
		Left:  firstProof.LeftSiblings(),
		Right: lastProof.RightSiblings(),
	}
	if err := merkle.VerifyRange(leaves, d.NumLeaves, rp, d.Root); err != nil {
		return fmt.Errorf("%w: range proof: %v", ErrForged, err)
	}

	// Boundary completeness: if leaves exist before/after the span, the
	// host must present them and they must fall outside the query range.
	if startIdx > 0 {
		if rs.Pred == nil {
			return fmt.Errorf("%w: missing range predecessor (span starts at leaf %d)", ErrIncomplete, startIdx)
		}
		if bytes.Compare(rs.Pred.Key, start) >= 0 {
			return fmt.Errorf("%w: predecessor %q inside range", ErrIncomplete, rs.Pred.Key)
		}
		p, err := verifyWitness(*rs.Pred, d)
		if err != nil {
			return err
		}
		if int(p.LeafIndex) != startIdx-1 {
			return fmt.Errorf("%w: predecessor at leaf %d, span starts at %d", ErrIncomplete, p.LeafIndex, startIdx)
		}
	}
	if endIdx < d.NumLeaves-1 {
		if rs.Succ == nil {
			return fmt.Errorf("%w: missing range successor (span ends at leaf %d of %d)", ErrIncomplete, endIdx, d.NumLeaves)
		}
		if bytes.Compare(rs.Succ.Key, end) <= 0 {
			return fmt.Errorf("%w: successor %q inside range", ErrIncomplete, rs.Succ.Key)
		}
		p, err := verifyWitness(*rs.Succ, d)
		if err != nil {
			return err
		}
		if int(p.LeafIndex) != endIdx+1 {
			return fmt.Errorf("%w: successor at leaf %d, span ends at %d", ErrIncomplete, p.LeafIndex, endIdx)
		}
	} else if endIdx > d.NumLeaves-1 {
		return fmt.Errorf("%w: span exceeds digested key count", ErrForged)
	}
	return nil
}
