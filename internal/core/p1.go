package core

import (
	"context"
	"fmt"

	"elsm/internal/blockcache"
	"elsm/internal/crypto"
	"elsm/internal/lsm"
	"elsm/internal/record"
	"elsm/internal/sgx"
	"elsm/internal/sstable"
	"elsm/internal/vfs"
)

// StoreP1 is the strawman design of §4: the entire store — including the
// read buffer — lives inside the enclave, and out-of-enclave SSTable files
// are protected at file granularity (every data block encrypted and MACed,
// as the SGX SDK's protected FS would). No Merkle forest, no embedded
// proofs: integrity comes from block seals, and confidentiality from block
// encryption. Its cost profile (enclave paging once the buffer outgrows
// the EPC, §4.2) is the paper's motivation for eLSM-P2.
type StoreP1 struct {
	engine        *lsm.Store
	enclave       *sgx.Enclave
	cache         *blockcache.Cache
	iterChunkKeys int
}

var _ KV = (*StoreP1)(nil)

// blockSealer adapts crypto.BlockCipher to the engine's BlockTransform.
type blockSealer struct {
	bc *crypto.BlockCipher
}

var _ sstable.BlockTransform = (*blockSealer)(nil)

// Seal implements sstable.BlockTransform.
func (b *blockSealer) Seal(blockID uint64, plain []byte) []byte {
	return b.bc.EncryptBlock(blockID, plain)
}

// Open implements sstable.BlockTransform.
func (b *blockSealer) Open(blockID uint64, sealed []byte) ([]byte, error) {
	return b.bc.DecryptBlock(blockID, sealed)
}

// OpenP1 creates an eLSM-P1 store. CacheSize must be positive: P1's whole
// point is the in-enclave read buffer.
func OpenP1(cfg Config) (*StoreP1, error) {
	if cfg.MmapReads {
		return nil, fmt.Errorf("core: eLSM-P1 cannot mmap (files must be decrypted in enclave, §6.3)")
	}
	enclave := cfg.Enclave
	if enclave == nil {
		enclave = sgx.New(cfg.SGX)
	}
	fs := cfg.FS
	if fs == nil {
		fs = vfs.NewMem()
	}
	mk, err := crypto.NewMasterKey()
	if err != nil {
		return nil, err
	}
	cacheSize := cfg.CacheSize
	if cacheSize <= 0 {
		cacheSize = 8 << 20
	}
	// The P1 read buffer lives INSIDE the enclave: hits pay MEE cost and,
	// once the buffer exceeds the EPC, enclave paging (Figure 2).
	cache := blockcache.New(cacheSize, enclave)
	engine, err := lsm.Open(lsm.Options{
		FS:                    fs,
		Enclave:               enclave,
		Cache:                 cache,
		Transform:             &blockSealer{bc: crypto.NewBlock(mk)},
		MemtableSize:          cfg.MemtableSize,
		BlockSize:             cfg.BlockSize,
		TableFileSize:         cfg.TableFileSize,
		LevelBase:             cfg.LevelBase,
		LevelMultiplier:       cfg.LevelMultiplier,
		MaxLevels:             cfg.MaxLevels,
		KeepVersions:          cfg.KeepVersions,
		DisableCompaction:     cfg.DisableCompaction,
		DisableWAL:            cfg.DisableWAL,
		GroupCommitMaxOps:     cfg.GroupCommitMaxOps,
		GroupCommitWindow:     cfg.GroupCommitWindow,
		MaxAsyncCommitBacklog: cfg.MaxAsyncCommitBacklog,
		InlineCompaction:      cfg.InlineCompaction,
		CompactionWorkers:     cfg.CompactionWorkers,
		Workers:               cfg.Workers,
		Obs:                   cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	chunkKeys := cfg.IterChunkKeys
	if chunkKeys <= 0 {
		chunkKeys = DefaultIterChunkKeys
	}
	return &StoreP1{engine: engine, enclave: enclave, cache: cache, iterChunkKeys: chunkKeys}, nil
}

// Put implements KV.
func (s *StoreP1) Put(key, value []byte) (uint64, error) { return s.PutCtx(nil, key, value) }

// PutCtx implements KV.
func (s *StoreP1) PutCtx(ctx context.Context, key, value []byte) (uint64, error) {
	var ts uint64
	var err error
	s.enclave.ECall(func() { ts, err = s.engine.PutCtx(ctx, key, value) })
	return ts, err
}

// Delete implements KV.
func (s *StoreP1) Delete(key []byte) (uint64, error) { return s.DeleteCtx(nil, key) }

// DeleteCtx implements KV.
func (s *StoreP1) DeleteCtx(ctx context.Context, key []byte) (uint64, error) {
	var ts uint64
	var err error
	s.enclave.ECall(func() { ts, err = s.engine.DeleteCtx(ctx, key) })
	return ts, err
}

// Sync implements KV: the durability barrier over the commit pipeline.
func (s *StoreP1) Sync(ctx context.Context) error {
	var err error
	s.enclave.ECall(func() { err = s.engine.Sync(ctx) })
	return err
}

// Get implements KV.
func (s *StoreP1) Get(key []byte) (Result, error) { return s.GetAt(key, record.MaxTs) }

// GetAt implements KV.
func (s *StoreP1) GetAt(key []byte, tsq uint64) (Result, error) { return s.GetAtCtx(nil, key, tsq) }

// GetAtCtx implements KV.
func (s *StoreP1) GetAtCtx(ctx context.Context, key []byte, tsq uint64) (Result, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	var res Result
	var err error
	s.enclave.ECall(func() {
		var rec record.Record
		var ok bool
		rec, ok, err = s.engine.Get(key, tsq)
		if err == nil && ok {
			res = resultFrom(rec)
		}
	})
	return res, err
}

// Scan implements KV, rebased on the streaming iterator.
func (s *StoreP1) Scan(start, end []byte) ([]Result, error) {
	return scanAll(s.IterAt(start, end, record.MaxTs))
}

// IterAt implements KV: chunks stream through one ECall each, so large
// ranges never materialize inside the enclave at once.
func (s *StoreP1) IterAt(start, end []byte, tsq uint64) Iterator {
	return s.IterAtCtx(nil, start, end, tsq)
}

// IterAtCtx implements KV. The stream runs over a pinned engine snapshot —
// a point-in-time observation, consistent across concurrent flushes and
// compactions, released when the iterator closes.
func (s *StoreP1) IterAtCtx(ctx context.Context, start, end []byte, tsq uint64) Iterator {
	snap := newRawSnapshot(s.engine, s.enclave, s.iterChunkKeys)
	it := snap.IterAt(ctx, start, end, tsq)
	snap.Close() // the iterator holds its own reference until it closes
	return it
}

// Flush forces the memtable to disk.
func (s *StoreP1) Flush() error { return s.engine.Flush() }

// BulkLoad populates an empty store.
func (s *StoreP1) BulkLoad(recs []record.Record) error {
	var err error
	s.enclave.ECall(func() { err = s.engine.BulkLoad(recs) })
	return err
}

// Engine exposes the underlying engine.
func (s *StoreP1) Engine() *lsm.Store { return s.engine }

// Enclave exposes the simulated enclave.
func (s *StoreP1) Enclave() *sgx.Enclave { return s.enclave }

// Close implements KV.
func (s *StoreP1) Close() error {
	s.cache.Release()
	return s.engine.Close()
}
