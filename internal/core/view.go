package core

import (
	"bytes"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"elsm/internal/lsm"
	"elsm/internal/record"
)

// readView is the unit of consistent verified reading in eLSM-P2: an engine
// snapshot (pinned runs + captured memtables + applied-timestamp frontier)
// paired with the trusted digest forest covering those runs. Every verified
// read path — GetAt, the streaming iterator, and the public Snapshot — runs
// against a readView, so they share one protocol implementation and one
// consistency argument:
//
//   - the pinned runs are immutable and their files cannot be deleted while
//     the pin is held, so per-run lookups never race a compaction install
//     (the missing-run and epoch retries of the pre-snapshot code are gone
//     by construction);
//   - a run's digest never changes once installed, so the captured forest
//     stays valid for the pinned runs no matter how many versions install
//     afterwards;
//   - records committed after capture carry timestamps beyond the view's
//     frontier and are clamped away, while records flushed after capture
//     remain readable from the captured memtables — the view is repeatable.
//
// A view is reference-counted: the owning handle (a one-shot read, an
// iterator, a Snapshot) holds one reference, and each iterator opened FROM
// a Snapshot holds another, so closing the snapshot mid-iteration cannot
// unpin the runs under the stream.
type readView struct {
	c     *Store
	esnap *lsm.Snapshot
	digs  map[uint64]runDigest
	refs  atomic.Int32
}

// acquireView captures a coherent (runs, digests) pair as a read session
// (counted in SnapshotsOpen); acquireEphemeralView is the ungauged variant
// for one-shot point reads. The digest forest is loaded AFTER the engine
// snapshot: installs swap levels and digests in one engine-lock critical
// section, so the loaded view can only be same-age or newer than the run
// set — and a newer view is coherent as long as it still carries a digest
// for every pinned run (digests are per-run immutable). A missing digest
// means an install replaced pinned runs in the acquisition window;
// re-acquire against the new version.
func (c *Store) acquireView() (*readView, error) {
	return c.acquireViewWith(c.engine.AcquireSnapshot)
}

func (c *Store) acquireEphemeralView() (*readView, error) {
	return c.acquireViewWith(c.engine.AcquireEphemeralSnapshot)
}

func (c *Store) acquireViewWith(acquire func() *lsm.Snapshot) (*readView, error) {
	for attempt := 0; attempt < maxRetries; attempt++ {
		esnap := acquire()
		digs := c.snapshotDigests()
		ok := true
		for _, ref := range esnap.Runs() {
			if _, have := digs[ref.ID]; !have {
				ok = false
				break
			}
		}
		if ok {
			v := &readView{c: c, esnap: esnap, digs: digs}
			v.refs.Store(1)
			return v, nil
		}
		esnap.Release()
	}
	return nil, fmt.Errorf("core: view acquisition retries exhausted under concurrent compaction")
}

// retain adds a reference (an iterator opened from a Snapshot).
func (v *readView) retain() { v.refs.Add(1) }

// release drops a reference, unpinning the engine snapshot at zero.
func (v *readView) release() {
	if v.refs.Add(-1) == 0 {
		v.esnap.Release()
	}
}

// ts returns the view's trusted timestamp frontier.
func (v *readView) ts() uint64 { return v.esnap.Ts() }

// getAt runs the GET protocol of §5.3 against the view: the captured
// memtables (trusted, in-enclave) first, then each pinned run in
// newest-first order with per-run verification, stopping at the first
// verified hit (the early-stop optimization — levels below the hit need no
// proof by Lemma 5.4). With DisableEarlyStop the walk continues through
// every run (prior-work behaviour, for the ablation), verifying deeper
// runs' membership or non-membership too. Caller is inside an ECall.
func (v *readView) getAt(key []byte, tsq uint64) (Result, error) {
	c := v.c
	c.statGets.Add(1)
	if rec, ok := v.esnap.MemGet(key, tsq); ok {
		return resultFrom(rec), nil
	}
	// Memtable miss: the run walk below pays verification. With
	// instrumentation on, accumulate the verify time and proof bytes this
	// GET spends and observe them once on the way out (error exits
	// included — a failed verification is still verification work).
	instr := c.rec != nil
	var verifyNanos, proofBytes uint64
	if instr {
		defer func() {
			c.rec.Verify.Observe(verifyNanos)
			c.rec.ProofBytes.Observe(proofBytes)
		}()
	}
	var first *Result
	for i, run := range v.esnap.Runs() {
		d := v.digs[run.ID]
		if d.NumLeaves == 0 {
			continue
		}
		c.statRunsProbed.Add(1)
		lk, lerr := v.esnap.LookupRun(i, key, tsq)
		if lerr != nil {
			return Result{}, lerr
		}
		var vstart time.Time
		if instr {
			vstart = time.Now()
		}
		if lk.Found {
			_, verr := verifyMembership(key, tsq, lk.Rec, d)
			if instr {
				verifyNanos += uint64(time.Since(vstart))
				proofBytes += uint64(len(lk.Rec.Proof))
			}
			if verr != nil {
				return Result{}, verr
			}
			c.statProofBytes.Add(uint64(len(lk.Rec.Proof)))
			if !c.disableEarlyStop {
				return resultFrom(lk.Rec), nil
			}
			if first == nil {
				r := resultFrom(lk.Rec)
				first = &r
			}
			continue
		}
		verr := verifyNonMembership(key, tsq, lk, d)
		if instr {
			verifyNanos += uint64(time.Since(vstart))
			if lk.Pred != nil {
				proofBytes += uint64(len(lk.Pred.Proof))
			}
			if lk.Succ != nil {
				proofBytes += uint64(len(lk.Succ.Proof))
			}
		}
		if verr != nil {
			return Result{}, verr
		}
		if lk.Pred != nil {
			c.statProofBytes.Add(uint64(len(lk.Pred.Proof)))
		}
		if lk.Succ != nil {
			c.statProofBytes.Add(uint64(len(lk.Succ.Proof)))
		}
	}
	if first != nil {
		return *first, nil
	}
	return Result{}, nil
}

// scanChunk runs one bounded round of the SCAN protocol of §5.4 over
// [start, end] against the view: every pinned run returns at most maxKeys
// keys; the chunk's effective end is the smallest last key among runs that
// hit their limit (so every run's result can be verified as a complete
// sub-range), each run's result is shrunk to that bound and checked with
// verifyRunScan, and versions are resolved across the captured memtables
// and runs exactly as in the materialized protocol. The returned cursor
// resumes immediately after the chunk's effective end. Unlike the
// pre-snapshot implementation, no retry is needed: the view's sources are
// immutable. Caller is inside an ECall.
func (v *readView) scanChunk(start, end []byte, tsq uint64, maxKeys int) (out []Result, next []byte, done bool, err error) {
	c := v.c
	if rec := c.rec; rec != nil {
		defer func(t time.Time) { rec.ScanChunk.ObserveSince(t) }(time.Now())
	}
	var scans []lsm.RunScan
	chunkEnd := end
	for i, run := range v.esnap.Runs() {
		d := v.digs[run.ID]
		if d.NumLeaves == 0 {
			continue
		}
		rs, serr := v.esnap.ScanRunChunk(i, start, end, maxKeys)
		if serr != nil {
			return nil, nil, false, serr
		}
		if c.scanTamper != nil {
			c.scanTamper(&rs)
		}
		if rs.Truncated && len(rs.Records) > 0 {
			if last := rs.Records[len(rs.Records)-1].Key; bytes.Compare(last, chunkEnd) < 0 {
				chunkEnd = last
			}
		}
		scans = append(scans, rs)
	}
	for i := range scans {
		shrinkRunScan(&scans[i], chunkEnd)
		if verr := verifyRunScan(start, chunkEnd, scans[i], v.digs[scans[i].RunID]); verr != nil {
			return nil, nil, false, verr
		}
	}

	// Resolve versions across sources: the memtable's records are newest,
	// then runs in order (Lemma 5.4: the concatenated per-key version lists
	// are timestamp-descending).
	type keyState struct {
		resolved bool
		res      Result
	}
	states := make(map[string]*keyState)
	order := make([]string, 0, 16)
	consider := func(rec record.Record) {
		ks, ok := states[string(rec.Key)]
		if !ok {
			ks = &keyState{}
			states[string(rec.Key)] = ks
			order = append(order, string(rec.Key))
		}
		if ks.resolved || rec.Ts > tsq {
			return
		}
		ks.resolved = true
		ks.res = resultFrom(rec)
	}
	for _, rec := range v.esnap.MemScan(start, chunkEnd, tsq) {
		consider(rec)
	}
	for _, rs := range scans {
		for _, rec := range rs.Records {
			consider(rec)
		}
	}
	sort.Strings(order)
	for _, k := range order {
		if ks := states[k]; ks.resolved && ks.res.Found {
			out = append(out, ks.res)
		}
	}
	if bytes.Equal(chunkEnd, end) {
		return out, nil, true, nil
	}
	// The smallest key strictly greater than chunkEnd resumes the range.
	next = append(append([]byte(nil), chunkEnd...), 0)
	return out, next, false, nil
}

// shrinkRunScan truncates a per-run result to keys ≤ chunkEnd, promoting the
// first record beyond the bound to the right-boundary witness. The promoted
// record is the newest version of the next key — the leaf immediately after
// the kept span — so adjacency verification still holds.
func shrinkRunScan(rs *lsm.RunScan, chunkEnd []byte) {
	idx := len(rs.Records)
	for i, rec := range rs.Records {
		if bytes.Compare(rec.Key, chunkEnd) > 0 {
			idx = i
			break
		}
	}
	if idx == len(rs.Records) {
		return
	}
	rs.Succ = &rs.Records[idx]
	rs.Records = rs.Records[:idx]
}
