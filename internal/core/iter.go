package core

import (
	"bytes"
	"fmt"
	"sort"

	"elsm/internal/lsm"
	"elsm/internal/record"
)

// DefaultIterChunkKeys is how many distinct keys a streaming iterator pulls
// across the enclave boundary per ECall. Larger chunks amortize world
// switches better; smaller chunks bound the enclave-resident working set.
const DefaultIterChunkKeys = 512

// Iterator streams a range query one result at a time. On authenticated
// stores every record is verified as its chunk crosses the enclave boundary,
// and range completeness is checked chunk by chunk, so arbitrarily large
// ranges run in memory bounded by the chunk size instead of materializing
// the whole result. A verification failure stops the stream: Next returns
// false and Err/Close report the ErrAuthFailed cause.
//
// Each chunk observes the store at its own fetch time: an iterator (and a
// Scan rebased on it) is NOT a point-in-time snapshot, so writes committed
// mid-iteration may appear in later chunks (with one chunk of background
// prefetch, chunk N+1 is fetched while N drains, so its observation point
// is correspondingly earlier). For a repeatable view, pass a fixed tsq to
// IterAt — concurrent writes receive newer timestamps and are excluded
// (provided version history is retained, KeepVersions 0).
//
// Iterators are not safe for concurrent use. The Result returned for each
// position remains valid after further Next calls.
type Iterator interface {
	// Next advances to the next result, returning false when the range is
	// exhausted, Close was called, or an error occurred.
	Next() bool
	// Result returns the current result; only valid after Next returned
	// true.
	Result() Result
	// Err returns the error that stopped the stream, if any.
	Err() error
	// Close releases the iterator and returns the first error encountered
	// (verification failures included).
	Close() error
}

// fetchChunk pulls the next bounded chunk of results starting at cursor,
// returning the resume cursor and whether the range is exhausted.
type fetchChunk func(cursor []byte) (out []Result, next []byte, done bool, err error)

// chunkResult is one fetched (and, on authenticated stores, verified)
// chunk.
type chunkResult struct {
	out  []Result
	next []byte
	done bool
	err  error
}

// chunkIter adapts a chunk fetcher into an Iterator with one chunk of
// background prefetch: as soon as chunk N is handed to the consumer, chunk
// N+1 is fetched — and verified — on a goroutine, so by the time the
// consumer drains N its successor is (usually) already waiting. Lookahead
// is bounded to exactly one chunk: the prefetch goroutine sends its single
// result into a buffered channel and exits, so an abandoned iterator leaks
// nothing and the enclave-resident working set stays at one chunk.
//
// A chunk may legally be empty without ending the stream (e.g. all keys in
// it resolved to tombstones), so Next loops until a result or exhaustion.
type chunkIter struct {
	fetch    fetchChunk
	cursor   []byte
	inflight chan chunkResult // nil when no prefetch is outstanding
	buf      []Result
	pos      int
	done     bool
	closed   bool
	err      error
}

func newChunkIter(start []byte, fetch fetchChunk) *chunkIter {
	return &chunkIter{fetch: fetch, cursor: append([]byte(nil), start...), pos: -1}
}

// startPrefetch launches the fetch of the chunk at it.cursor.
func (it *chunkIter) startPrefetch() {
	ch := make(chan chunkResult, 1)
	cursor := it.cursor
	fetch := it.fetch
	go func() {
		out, next, done, err := fetch(cursor)
		ch <- chunkResult{out: out, next: next, done: done, err: err}
	}()
	it.inflight = ch
}

// nextChunk returns the chunk at it.cursor, from the prefetch in flight if
// one was started, synchronously otherwise.
func (it *chunkIter) nextChunk() chunkResult {
	if it.inflight != nil {
		res := <-it.inflight
		it.inflight = nil
		return res
	}
	out, next, done, err := it.fetch(it.cursor)
	return chunkResult{out: out, next: next, done: done, err: err}
}

// Next implements Iterator.
func (it *chunkIter) Next() bool {
	if it.closed || it.err != nil {
		return false
	}
	if it.pos+1 < len(it.buf) {
		it.pos++
		return true
	}
	for !it.done {
		res := it.nextChunk()
		if res.err != nil {
			it.err = res.err
			return false
		}
		it.buf, it.pos, it.cursor, it.done = res.out, 0, res.next, res.done
		if !it.done {
			it.startPrefetch()
		}
		if len(res.out) > 0 {
			return true
		}
	}
	return false
}

// Result implements Iterator.
func (it *chunkIter) Result() Result { return it.buf[it.pos] }

// Err implements Iterator.
func (it *chunkIter) Err() error { return it.err }

// Close implements Iterator. A prefetch still in flight is drained so its
// verification outcome is not lost: a tampered chunk the consumer never
// reached still surfaces here.
func (it *chunkIter) Close() error {
	it.closed = true
	if it.inflight != nil {
		if res := <-it.inflight; res.err != nil && it.err == nil {
			it.err = res.err
		}
		it.inflight = nil
	}
	return it.err
}

// sliceResultIter serves an already-materialized result set.
type sliceResultIter struct {
	res    []Result
	pos    int
	err    error
	closed bool
}

// NewSliceIter wraps a materialized result set (and the error that produced
// it) as an Iterator — the fallback for stores without a native streaming
// path.
func NewSliceIter(res []Result, err error) Iterator {
	return &sliceResultIter{res: res, pos: -1, err: err}
}

// Next implements Iterator.
func (it *sliceResultIter) Next() bool {
	if it.closed || it.err != nil || it.pos+1 >= len(it.res) {
		return false
	}
	it.pos++
	return true
}

// Result implements Iterator.
func (it *sliceResultIter) Result() Result { return it.res[it.pos] }

// Err implements Iterator.
func (it *sliceResultIter) Err() error { return it.err }

// Close implements Iterator.
func (it *sliceResultIter) Close() error {
	it.closed = true
	return it.err
}

// scanAll drains an iterator into a materialized result slice — the
// materialized Scan path, rebased on the streaming one.
func scanAll(it Iterator) ([]Result, error) {
	var out []Result
	for it.Next() {
		out = append(out, it.Result())
	}
	if err := it.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// eLSM-P2 streaming verified scan

// Iter streams the latest verified value of every key in [start, end].
func (c *Store) Iter(start, end []byte) Iterator { return c.IterAt(start, end, record.MaxTs) }

// IterAt is Iter at a historical timestamp. Each chunk is fetched and
// verified inside one ECall: per-record Merkle proofs establish integrity
// and freshness, and the chunk's boundary witnesses establish completeness
// of the covered sub-range, so by the time the stream ends the whole range
// is completeness-verified without ever being materialized at once.
func (c *Store) IterAt(start, end []byte, tsq uint64) Iterator {
	endC := append([]byte(nil), end...)
	return newChunkIter(start, func(cursor []byte) ([]Result, []byte, bool, error) {
		var (
			out  []Result
			next []byte
			done bool
			err  error
		)
		c.enclave.ECall(func() { out, next, done, err = c.scanChunk(cursor, endC, tsq, c.iterChunkKeys) })
		return out, next, done, err
	})
}

// scanChunk retries scanChunkOnce under concurrent compaction, like get.
func (c *Store) scanChunk(start, end []byte, tsq uint64, maxKeys int) ([]Result, []byte, bool, error) {
	for attempt := 0; attempt < maxRetries; attempt++ {
		out, next, done, retry, err := c.scanChunkOnce(start, end, tsq, maxKeys)
		if !retry {
			return out, next, done, err
		}
	}
	return nil, nil, false, fmt.Errorf("core: scan retries exhausted under concurrent compaction")
}

// scanChunkOnce runs one bounded round of the SCAN protocol of §5.4 over
// [start, end]: every run returns at most maxKeys keys; the chunk's
// effective end is the smallest last key among runs that hit their limit
// (so every run's result can be verified as a complete sub-range), each
// run's result is shrunk to that bound and checked with verifyRunScan, and
// versions are resolved across the memtable and runs exactly as in the
// materialized protocol. The returned cursor resumes immediately after the
// chunk's effective end.
func (c *Store) scanChunkOnce(start, end []byte, tsq uint64, maxKeys int) (out []Result, next []byte, done bool, retry bool, err error) {
	// Pin the run snapshot for the whole chunk: a compaction installing
	// mid-chunk retires these runs but their files — and their lookup
	// addressability — survive until the pin drops, so the chunk verifies
	// coherently against the digest view. The view is loaded BEFORE the
	// run snapshot and its pointer re-checked after every source (runs AND
	// memtable) has been read: an install in between either adds a run the
	// old view has no digest for (missing-digest retry below) or moves the
	// pointer (epoch retry below) — without this bracket, a flush with no
	// input runs installing mid-chunk would make buffered records,
	// tombstones included, vanish from both sources at once.
	view := c.snap.Load()
	runs, release := c.engine.SnapshotRuns()
	defer release()
	digs := view.digests
	var scans []lsm.RunScan
	chunkEnd := end
	for _, run := range runs {
		d, ok := digs[run.ID]
		if !ok {
			return nil, nil, false, true, nil
		}
		if d.NumLeaves == 0 {
			continue
		}
		rs, serr := c.engine.ScanRunChunk(run.ID, start, end, maxKeys)
		if serr != nil {
			return nil, nil, false, true, nil
		}
		if c.scanTamper != nil {
			c.scanTamper(&rs)
		}
		if rs.Truncated && len(rs.Records) > 0 {
			if last := rs.Records[len(rs.Records)-1].Key; bytes.Compare(last, chunkEnd) < 0 {
				chunkEnd = last
			}
		}
		scans = append(scans, rs)
	}
	for i := range scans {
		shrinkRunScan(&scans[i], chunkEnd)
		if verr := verifyRunScan(start, chunkEnd, scans[i], digs[scans[i].RunID]); verr != nil {
			return nil, nil, false, false, verr
		}
	}

	// Resolve versions across sources: the memtable's records are newest,
	// then runs in order (Lemma 5.4: the concatenated per-key version lists
	// are timestamp-descending).
	type keyState struct {
		resolved bool
		res      Result
	}
	states := make(map[string]*keyState)
	order := make([]string, 0, 16)
	consider := func(rec record.Record) {
		ks, ok := states[string(rec.Key)]
		if !ok {
			ks = &keyState{}
			states[string(rec.Key)] = ks
			order = append(order, string(rec.Key))
		}
		if ks.resolved || rec.Ts > tsq {
			return
		}
		ks.resolved = true
		ks.res = resultFrom(rec)
	}
	memRecs := c.engine.MemScan(start, chunkEnd, tsq)
	if c.snap.Load() != view {
		// A version installed while this chunk was being assembled: the
		// memtable observation is from a different epoch than the run
		// scans. Retry against the new version.
		return nil, nil, false, true, nil
	}
	for _, rec := range memRecs {
		consider(rec)
	}
	for _, rs := range scans {
		for _, rec := range rs.Records {
			consider(rec)
		}
	}
	sort.Strings(order)
	for _, k := range order {
		if ks := states[k]; ks.resolved && ks.res.Found {
			out = append(out, ks.res)
		}
	}
	if bytes.Equal(chunkEnd, end) {
		return out, nil, true, false, nil
	}
	// The smallest key strictly greater than chunkEnd resumes the range.
	next = append(append([]byte(nil), chunkEnd...), 0)
	return out, next, false, false, nil
}

// shrinkRunScan truncates a per-run result to keys ≤ chunkEnd, promoting the
// first record beyond the bound to the right-boundary witness. The promoted
// record is the newest version of the next key — the leaf immediately after
// the kept span — so adjacency verification still holds.
func shrinkRunScan(rs *lsm.RunScan, chunkEnd []byte) {
	idx := len(rs.Records)
	for i, rec := range rs.Records {
		if bytes.Compare(rec.Key, chunkEnd) > 0 {
			idx = i
			break
		}
	}
	if idx == len(rs.Records) {
		return
	}
	rs.Succ = &rs.Records[idx]
	rs.Records = rs.Records[:idx]
}
