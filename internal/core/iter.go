package core

import (
	"context"

	"elsm/internal/record"
)

// DefaultIterChunkKeys is how many distinct keys a streaming iterator pulls
// across the enclave boundary per ECall. Larger chunks amortize world
// switches better; smaller chunks bound the enclave-resident working set.
const DefaultIterChunkKeys = 512

// Iterator streams a range query one result at a time. On authenticated
// stores every record is verified as its chunk crosses the enclave boundary,
// and range completeness is checked chunk by chunk, so arbitrarily large
// ranges run in memory bounded by the chunk size instead of materializing
// the whole result. A verification failure stops the stream: Next returns
// false and Err/Close report the ErrAuthFailed cause.
//
// Every chunk observes the same pinned view: an iterator (and a Scan
// rebased on it) IS a point-in-time observation — the stream pins the
// store's run set, memtable view and (on eLSM-P2) digest forest for its
// lifetime, so writes committed mid-iteration never appear in later chunks
// and background prefetch cannot tear the stream across a version install.
// Iterators must be Closed to release those pins.
//
// Iterators are not safe for concurrent use. The Result returned for each
// position remains valid after further Next calls.
type Iterator interface {
	// Next advances to the next result, returning false when the range is
	// exhausted, Close was called, or an error occurred.
	Next() bool
	// Result returns the current result; only valid after Next returned
	// true.
	Result() Result
	// Err returns the error that stopped the stream, if any.
	Err() error
	// Close releases the iterator and returns the first error encountered
	// (verification failures included).
	Close() error
}

// fetchChunk pulls the next bounded chunk of results starting at cursor,
// returning the resume cursor and whether the range is exhausted.
type fetchChunk func(cursor []byte) (out []Result, next []byte, done bool, err error)

// chunkResult is one fetched (and, on authenticated stores, verified)
// chunk.
type chunkResult struct {
	out  []Result
	next []byte
	done bool
	err  error
}

// chunkIter adapts a chunk fetcher into an Iterator with one chunk of
// background prefetch: as soon as chunk N is handed to the consumer, chunk
// N+1 is fetched — and verified — on a goroutine, so by the time the
// consumer drains N its successor is (usually) already waiting. Lookahead
// is bounded to exactly one chunk: the prefetch goroutine sends its single
// result into a buffered channel and exits, so an abandoned iterator leaks
// nothing and the enclave-resident working set stays at one chunk.
//
// A chunk may legally be empty without ending the stream (e.g. all keys in
// it resolved to tombstones), so Next loops until a result or exhaustion.
//
// A non-nil ctx bounds the stream: once cancelled, Next stops fetching
// (reporting ctx.Err() through Err/Close) and no further prefetch is
// launched — a long verified scan can be deadlined or aborted mid-range.
// onClose, if set, runs exactly once when the iterator is closed (after
// any in-flight prefetch has drained), releasing the read view pinned for
// the stream.
type chunkIter struct {
	ctx      context.Context
	fetch    fetchChunk
	onClose  func()
	cursor   []byte
	inflight chan chunkResult // nil when no prefetch is outstanding
	buf      []Result
	pos      int
	done     bool
	closed   bool
	err      error
}

func newChunkIter(ctx context.Context, start []byte, fetch fetchChunk, onClose func()) *chunkIter {
	return &chunkIter{ctx: ctx, fetch: fetch, onClose: onClose, cursor: append([]byte(nil), start...), pos: -1}
}

// startPrefetch launches the fetch of the chunk at it.cursor.
func (it *chunkIter) startPrefetch() {
	ch := make(chan chunkResult, 1)
	cursor := it.cursor
	fetch := it.fetch
	go func() {
		out, next, done, err := fetch(cursor)
		ch <- chunkResult{out: out, next: next, done: done, err: err}
	}()
	it.inflight = ch
}

// nextChunk returns the chunk at it.cursor, from the prefetch in flight if
// one was started, synchronously otherwise.
func (it *chunkIter) nextChunk() chunkResult {
	if it.inflight != nil {
		res := <-it.inflight
		it.inflight = nil
		return res
	}
	out, next, done, err := it.fetch(it.cursor)
	return chunkResult{out: out, next: next, done: done, err: err}
}

// Next implements Iterator.
func (it *chunkIter) Next() bool {
	if it.closed || it.err != nil {
		return false
	}
	if it.pos+1 < len(it.buf) {
		it.pos++
		return true
	}
	for !it.done {
		if it.ctx != nil {
			if err := it.ctx.Err(); err != nil {
				it.err = err
				return false
			}
		}
		res := it.nextChunk()
		if res.err != nil {
			it.err = res.err
			return false
		}
		it.buf, it.pos, it.cursor, it.done = res.out, 0, res.next, res.done
		if !it.done {
			it.startPrefetch()
		}
		if len(res.out) > 0 {
			return true
		}
	}
	return false
}

// Result implements Iterator.
func (it *chunkIter) Result() Result { return it.buf[it.pos] }

// Err implements Iterator.
func (it *chunkIter) Err() error { return it.err }

// Close implements Iterator. A prefetch still in flight is drained so its
// verification outcome is not lost: a tampered chunk the consumer never
// reached still surfaces here. The view release (onClose) runs after the
// drain, so no fetch can observe a released view.
func (it *chunkIter) Close() error {
	if it.closed {
		return it.err
	}
	it.closed = true
	if it.inflight != nil {
		if res := <-it.inflight; res.err != nil && it.err == nil {
			it.err = res.err
		}
		it.inflight = nil
	}
	if it.onClose != nil {
		it.onClose()
	}
	return it.err
}

// sliceResultIter serves an already-materialized result set.
type sliceResultIter struct {
	res    []Result
	pos    int
	err    error
	closed bool
}

// NewSliceIter wraps a materialized result set (and the error that produced
// it) as an Iterator — the fallback for stores without a native streaming
// path.
func NewSliceIter(res []Result, err error) Iterator {
	return &sliceResultIter{res: res, pos: -1, err: err}
}

// Next implements Iterator.
func (it *sliceResultIter) Next() bool {
	if it.closed || it.err != nil || it.pos+1 >= len(it.res) {
		return false
	}
	it.pos++
	return true
}

// Result implements Iterator.
func (it *sliceResultIter) Result() Result { return it.res[it.pos] }

// Err implements Iterator.
func (it *sliceResultIter) Err() error { return it.err }

// Close implements Iterator.
func (it *sliceResultIter) Close() error {
	it.closed = true
	return it.err
}

// scanAll drains an iterator into a materialized result slice — the
// materialized Scan path, rebased on the streaming one.
func scanAll(it Iterator) ([]Result, error) {
	var out []Result
	for it.Next() {
		out = append(out, it.Result())
	}
	if err := it.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// errIter is an Iterator that failed before producing anything.
type errIter struct{ err error }

func (it *errIter) Next() bool     { return false }
func (it *errIter) Result() Result { return Result{} }
func (it *errIter) Err() error     { return it.err }
func (it *errIter) Close() error   { return it.err }

// ---------------------------------------------------------------------------
// eLSM-P2 streaming verified scan

// Iter streams the latest verified value of every key in [start, end].
func (c *Store) Iter(start, end []byte) Iterator { return c.IterAt(start, end, record.MaxTs) }

// IterAt is Iter at a historical timestamp.
func (c *Store) IterAt(start, end []byte, tsq uint64) Iterator {
	return c.IterAtCtx(nil, start, end, tsq)
}

// IterAtCtx streams the newest verified value ≤ tsq of every key in
// [start, end]. The whole stream runs against ONE pinned read view — the
// same unit that backs Snapshot — so the iterator is a point-in-time
// observation: writes committed mid-iteration never surface in later
// chunks, and concurrent flushes or compactions cannot perturb (or tear)
// the stream. Each chunk is fetched and verified inside one ECall:
// per-record Merkle proofs establish integrity and freshness, and the
// chunk's boundary witnesses establish completeness of the covered
// sub-range, so by the time the stream ends the whole range is
// completeness-verified without ever being materialized at once.
//
// A cancelled ctx stops the stream (Err reports the cancellation) and
// prevents further chunk fetches, including the background prefetch. The
// iterator MUST be closed: the view's run pins are held until Close.
func (c *Store) IterAtCtx(ctx context.Context, start, end []byte, tsq uint64) Iterator {
	v, err := c.acquireView()
	if err != nil {
		return &errIter{err: err}
	}
	return c.viewIter(ctx, v, start, end, tsq)
}

// viewIter builds the chunked verified iterator over an already-pinned
// view, taking one reference on it for the stream's lifetime.
func (c *Store) viewIter(ctx context.Context, v *readView, start, end []byte, tsq uint64) Iterator {
	endC := append([]byte(nil), end...)
	return newChunkIter(ctx, start, func(cursor []byte) ([]Result, []byte, bool, error) {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, nil, false, err
			}
		}
		var (
			out  []Result
			next []byte
			done bool
			err  error
		)
		c.enclave.ECall(func() { out, next, done, err = v.scanChunk(cursor, endC, tsq, c.iterChunkKeys) })
		return out, next, done, err
	}, v.release)
}
