package core

import (
	"errors"
	"fmt"
	"testing"

	"elsm/internal/record"
	"elsm/internal/vfs"
)

// TestIOFaultDuringWritesSurfacesCleanly arms the fault injector at
// decreasing budgets so the failure lands in different phases (WAL append,
// flush, compaction, manifest write) and checks that the store returns an
// error instead of silently losing or corrupting data.
func TestIOFaultDuringWritesSurfacesCleanly(t *testing.T) {
	for _, budget := range []int{3, 10, 40, 120, 400} {
		budget := budget
		t.Run(fmt.Sprintf("budget%d", budget), func(t *testing.T) {
			mem := vfs.NewMem()
			ffs := vfs.NewFault(mem)
			cfg := smallCfg(ffs)
			s, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			ffs.Arm(budget)
			var failed bool
			for i := 0; i < 2000 && !failed; i++ {
				if _, err := s.Put([]byte(fmt.Sprintf("key%05d", i)), []byte("v")); err != nil {
					if !errors.Is(err, vfs.ErrInjected) {
						t.Fatalf("op %d: unexpected error class: %v", i, err)
					}
					failed = true
				}
			}
			if !failed {
				t.Fatalf("fault never fired (budget %d)", budget)
			}
			if !ffs.Tripped() {
				t.Fatal("injector claims untripped")
			}
		})
	}
}

// TestRecoveryAfterMidFlushCrash kills the disk mid-flush, then restarts
// against the surviving bytes: the store must either recover to a
// verified prefix of the history or refuse with a clear error — never
// serve unverified data.
func TestRecoveryAfterMidFlushCrash(t *testing.T) {
	mem := vfs.NewMem()
	ffs := vfs.NewFault(mem)
	cfg := smallCfg(ffs)
	cfg.CounterInterval = 8
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	written := map[string]bool{}
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("key%03d", i)
		if _, err := s.Put([]byte(key), []byte("v")); err != nil {
			t.Fatal(err)
		}
		written[key] = true
	}
	// Kill the disk, then drive writes until the flush path trips.
	ffs.Arm(25)
	for i := 60; i < 3000 && !ffs.Tripped(); i++ {
		s.Put([]byte(fmt.Sprintf("key%03d", i%200)), []byte("v2"))
	}
	if !ffs.Tripped() {
		t.Fatal("flush fault never fired")
	}
	// "Crash": abandon the store without Close, heal the disk, reopen.
	ffs.Disarm()
	cfg2 := smallCfg(mem) // reopen on the raw surviving bytes
	cfg2.Platform = s.platform
	cfg2.Counter = s.counter
	s2, err := Open(cfg2)
	if err != nil {
		// Refusing recovery outright is acceptable (fail closed).
		t.Logf("recovery refused (fail-closed): %v", err)
		return
	}
	defer s2.Close()
	// Whatever recovered must verify.
	for key := range written {
		if _, err := s2.Get([]byte(key)); err != nil {
			t.Fatalf("verified read after crash recovery failed: %v", err)
		}
	}
}

// TestAttackScanChainVersionOmission targets the version hash chain: with
// full history retained, a range result that silently drops ONE version of
// a key (returning the others) must fail verification — the chain hash
// cannot be reconstructed without every version.
func TestAttackScanChainVersionOmission(t *testing.T) {
	s := mustOpenP2(t, smallCfg(nil)) // KeepVersions: 0 (full history)
	defer s.Close()
	for i := 0; i < 50; i++ {
		s.Put([]byte(fmt.Sprintf("key%03d", i)), []byte("v1"))
	}
	for i := 0; i < 50; i++ {
		s.Put([]byte(fmt.Sprintf("key%03d", i)), []byte("v2"))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	id := s.Engine().Runs()[0].ID
	d := s.snapshotDigests()[id]
	rs, err := s.Engine().ScanRun(id, []byte("key010"), []byte("key020"))
	if err != nil {
		t.Fatal(err)
	}
	if err := verifyRunScan([]byte("key010"), []byte("key020"), rs, d); err != nil {
		t.Fatalf("honest multi-version scan rejected: %v", err)
	}
	// Count versions per key: we expect 2 per key.
	perKey := map[string]int{}
	for _, r := range rs.Records {
		perKey[string(r.Key)]++
	}
	for k, n := range perKey {
		if n != 2 {
			t.Fatalf("key %s has %d versions, want 2", k, n)
		}
	}
	// Drop the OLD version of one key (present a partial chain).
	var tampered = rs
	tampered.Records = nil
	dropped := false
	for _, r := range rs.Records {
		if string(r.Key) == "key015" && string(r.Value) == "v1" && !dropped {
			dropped = true
			continue
		}
		tampered.Records = append(tampered.Records, r)
	}
	if !dropped {
		t.Fatal("setup: old version not found")
	}
	if err := verifyRunScan([]byte("key010"), []byte("key020"), tampered, d); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("partial version chain accepted: %v", err)
	}
	// Drop the NEW version instead (freshness-relevant omission).
	tampered.Records = nil
	dropped = false
	for _, r := range rs.Records {
		if string(r.Key) == "key015" && string(r.Value) == "v2" && !dropped {
			dropped = true
			continue
		}
		tampered.Records = append(tampered.Records, r)
	}
	if err := verifyRunScan([]byte("key010"), []byte("key020"), tampered, d); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("scan omitting newest version accepted: %v", err)
	}
}

// TestProofSizeLogarithmic checks the paper's "small proofs" claim: the
// embedded proof grows O(log n) in the run's key count, not linearly.
func TestProofSizeLogarithmic(t *testing.T) {
	proofLen := func(n int) int {
		t.Helper()
		cfg := smallCfg(nil)
		cfg.TableFileSize = 64 << 10
		cfg.BlockSize = 4 << 10
		s := mustOpenP2(t, cfg)
		defer s.Close()
		recs := make([]record.Record, n)
		for i := range recs {
			recs[i] = record.Record{
				Key:   []byte(fmt.Sprintf("key%07d", i)),
				Ts:    uint64(i + 1),
				Kind:  record.KindSet,
				Value: []byte("v"),
			}
		}
		if err := s.BulkLoad(recs); err != nil {
			t.Fatal(err)
		}
		lk, err := s.Engine().LookupRun(s.Engine().Runs()[0].ID, recs[n/2].Key, record.MaxTs)
		if err != nil || !lk.Found {
			t.Fatalf("lookup: %v %v", lk.Found, err)
		}
		return len(lk.Rec.Proof)
	}
	small := proofLen(1 << 8)
	large := proofLen(1 << 13) // 32x more keys
	if large <= small {
		t.Fatalf("proof did not grow at all: %d -> %d", small, large)
	}
	// log2(32x) = 5 extra path nodes ≈ 165 bytes; anything close to
	// linear growth (32x bytes) is a failure.
	if large > small*3 {
		t.Fatalf("proof growth not logarithmic: %dB @ 256 keys vs %dB @ 8192 keys", small, large)
	}
}
