package core

import (
	"elsm/internal/blockcache"
	"elsm/internal/lsm"
	"elsm/internal/record"
	"elsm/internal/sgx"
	"elsm/internal/vfs"
)

// Unsecured is the ideal-performance baseline of §6: a plain LSM store with
// no enclave (zero-cost unlimited "enclave"), no authentication and no
// encryption. It lower-bounds every secured configuration.
type Unsecured struct {
	engine        *lsm.Store
	iterChunkKeys int
}

var _ KV = (*Unsecured)(nil)

// OpenUnsecured creates the unsecured baseline. The Config's SGX settings
// are ignored; the read buffer (if any) lives in ordinary memory.
func OpenUnsecured(cfg Config) (*Unsecured, error) {
	fs := cfg.FS
	if fs == nil {
		fs = vfs.NewMem()
	}
	var cache *blockcache.Cache
	if cfg.CacheSize > 0 {
		cache = blockcache.New(cfg.CacheSize, nil)
	}
	engine, err := lsm.Open(lsm.Options{
		FS:                fs,
		Enclave:           sgx.NewUnlimited(),
		Cache:             cache,
		MmapReads:         cfg.MmapReads,
		MemtableSize:      cfg.MemtableSize,
		BlockSize:         cfg.BlockSize,
		TableFileSize:     cfg.TableFileSize,
		LevelBase:         cfg.LevelBase,
		LevelMultiplier:   cfg.LevelMultiplier,
		MaxLevels:         cfg.MaxLevels,
		KeepVersions:      cfg.KeepVersions,
		DisableCompaction: cfg.DisableCompaction,
		DisableWAL:        cfg.DisableWAL,
		GroupCommitMaxOps: cfg.GroupCommitMaxOps,
		GroupCommitWindow: cfg.GroupCommitWindow,
		InlineCompaction:  cfg.InlineCompaction,
	})
	if err != nil {
		return nil, err
	}
	chunkKeys := cfg.IterChunkKeys
	if chunkKeys <= 0 {
		chunkKeys = DefaultIterChunkKeys
	}
	return &Unsecured{engine: engine, iterChunkKeys: chunkKeys}, nil
}

// Put implements KV.
func (s *Unsecured) Put(key, value []byte) (uint64, error) { return s.engine.Put(key, value) }

// Delete implements KV.
func (s *Unsecured) Delete(key []byte) (uint64, error) { return s.engine.Delete(key) }

// Get implements KV.
func (s *Unsecured) Get(key []byte) (Result, error) { return s.GetAt(key, record.MaxTs) }

// GetAt implements KV.
func (s *Unsecured) GetAt(key []byte, tsq uint64) (Result, error) {
	rec, ok, err := s.engine.Get(key, tsq)
	if err != nil || !ok {
		return Result{}, err
	}
	return resultFrom(rec), nil
}

// Scan implements KV, rebased on the streaming iterator.
func (s *Unsecured) Scan(start, end []byte) ([]Result, error) {
	return scanAll(s.IterAt(start, end, record.MaxTs))
}

// IterAt implements KV.
func (s *Unsecured) IterAt(start, end []byte, tsq uint64) Iterator {
	endC := append([]byte(nil), end...)
	return newChunkIter(start, func(cursor []byte) ([]Result, []byte, bool, error) {
		recs, next, done, err := s.engine.ScanChunk(cursor, endC, tsq, s.iterChunkKeys)
		if err != nil {
			return nil, nil, false, err
		}
		out := make([]Result, 0, len(recs))
		for _, rec := range recs {
			out = append(out, resultFrom(rec))
		}
		return out, next, done, nil
	})
}

// Flush forces the memtable to disk.
func (s *Unsecured) Flush() error { return s.engine.Flush() }

// BulkLoad populates an empty store.
func (s *Unsecured) BulkLoad(recs []record.Record) error { return s.engine.BulkLoad(recs) }

// Engine exposes the underlying engine.
func (s *Unsecured) Engine() *lsm.Store { return s.engine }

// Close implements KV.
func (s *Unsecured) Close() error { return s.engine.Close() }
