package core

import (
	"context"

	"elsm/internal/blockcache"
	"elsm/internal/lsm"
	"elsm/internal/record"
	"elsm/internal/sgx"
	"elsm/internal/vfs"
)

// Unsecured is the ideal-performance baseline of §6: a plain LSM store with
// no enclave (zero-cost unlimited "enclave"), no authentication and no
// encryption. It lower-bounds every secured configuration.
type Unsecured struct {
	engine        *lsm.Store
	iterChunkKeys int
}

var _ KV = (*Unsecured)(nil)

// OpenUnsecured creates the unsecured baseline. The Config's SGX settings
// are ignored; the read buffer (if any) lives in ordinary memory.
func OpenUnsecured(cfg Config) (*Unsecured, error) {
	fs := cfg.FS
	if fs == nil {
		fs = vfs.NewMem()
	}
	var cache *blockcache.Cache
	if cfg.CacheSize > 0 {
		cache = blockcache.New(cfg.CacheSize, nil)
	}
	engine, err := lsm.Open(lsm.Options{
		FS:                    fs,
		Enclave:               sgx.NewUnlimited(),
		Cache:                 cache,
		MmapReads:             cfg.MmapReads,
		MemtableSize:          cfg.MemtableSize,
		BlockSize:             cfg.BlockSize,
		TableFileSize:         cfg.TableFileSize,
		LevelBase:             cfg.LevelBase,
		LevelMultiplier:       cfg.LevelMultiplier,
		MaxLevels:             cfg.MaxLevels,
		KeepVersions:          cfg.KeepVersions,
		DisableCompaction:     cfg.DisableCompaction,
		DisableWAL:            cfg.DisableWAL,
		GroupCommitMaxOps:     cfg.GroupCommitMaxOps,
		GroupCommitWindow:     cfg.GroupCommitWindow,
		MaxAsyncCommitBacklog: cfg.MaxAsyncCommitBacklog,
		InlineCompaction:      cfg.InlineCompaction,
		CompactionWorkers:     cfg.CompactionWorkers,
		Workers:               cfg.Workers,
		Obs:                   cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	chunkKeys := cfg.IterChunkKeys
	if chunkKeys <= 0 {
		chunkKeys = DefaultIterChunkKeys
	}
	return &Unsecured{engine: engine, iterChunkKeys: chunkKeys}, nil
}

// Put implements KV.
func (s *Unsecured) Put(key, value []byte) (uint64, error) { return s.engine.Put(key, value) }

// PutCtx implements KV.
func (s *Unsecured) PutCtx(ctx context.Context, key, value []byte) (uint64, error) {
	return s.engine.PutCtx(ctx, key, value)
}

// Delete implements KV.
func (s *Unsecured) Delete(key []byte) (uint64, error) { return s.engine.Delete(key) }

// DeleteCtx implements KV.
func (s *Unsecured) DeleteCtx(ctx context.Context, key []byte) (uint64, error) {
	return s.engine.DeleteCtx(ctx, key)
}

// Sync implements KV: the durability barrier over the commit pipeline.
func (s *Unsecured) Sync(ctx context.Context) error { return s.engine.Sync(ctx) }

// Get implements KV.
func (s *Unsecured) Get(key []byte) (Result, error) { return s.GetAt(key, record.MaxTs) }

// GetAt implements KV.
func (s *Unsecured) GetAt(key []byte, tsq uint64) (Result, error) {
	return s.GetAtCtx(nil, key, tsq)
}

// GetAtCtx implements KV.
func (s *Unsecured) GetAtCtx(ctx context.Context, key []byte, tsq uint64) (Result, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	rec, ok, err := s.engine.Get(key, tsq)
	if err != nil || !ok {
		return Result{}, err
	}
	return resultFrom(rec), nil
}

// Scan implements KV, rebased on the streaming iterator.
func (s *Unsecured) Scan(start, end []byte) ([]Result, error) {
	return scanAll(s.IterAt(start, end, record.MaxTs))
}

// IterAt implements KV.
func (s *Unsecured) IterAt(start, end []byte, tsq uint64) Iterator {
	return s.IterAtCtx(nil, start, end, tsq)
}

// IterAtCtx implements KV. The stream runs over a pinned engine snapshot —
// a point-in-time observation, released when the iterator closes.
func (s *Unsecured) IterAtCtx(ctx context.Context, start, end []byte, tsq uint64) Iterator {
	snap := newRawSnapshot(s.engine, nil, s.iterChunkKeys)
	it := snap.IterAt(ctx, start, end, tsq)
	snap.Close() // the iterator holds its own reference until it closes
	return it
}

// Flush forces the memtable to disk.
func (s *Unsecured) Flush() error { return s.engine.Flush() }

// BulkLoad populates an empty store.
func (s *Unsecured) BulkLoad(recs []record.Record) error { return s.engine.BulkLoad(recs) }

// Engine exposes the underlying engine.
func (s *Unsecured) Engine() *lsm.Store { return s.engine }

// Close implements KV.
func (s *Unsecured) Close() error { return s.engine.Close() }
