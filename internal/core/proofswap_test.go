package core

import (
	"errors"
	"fmt"
	"testing"

	"elsm/internal/record"
)

// TestAttackProofSwap: the host pairs a record with a DIFFERENT record's
// valid embedded proof — every combination must fail verification, because
// the proof binds key (leaf hash), timestamp and value (record digest).
func TestAttackProofSwap(t *testing.T) {
	s := mustOpenP2(t, smallCfg(nil))
	defer s.Close()
	for i := 0; i < 200; i++ {
		s.Put([]byte(fmt.Sprintf("key%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	id := s.Engine().Runs()[0].ID
	d := s.snapshotDigests()[id]

	lkA, err := s.Engine().LookupRun(id, []byte("key010"), record.MaxTs)
	if err != nil || !lkA.Found {
		t.Fatal("lookup A failed")
	}
	lkB, err := s.Engine().LookupRun(id, []byte("key011"), record.MaxTs)
	if err != nil || !lkB.Found {
		t.Fatal("lookup B failed")
	}

	// Swap proofs between two valid records.
	swapped := lkA.Rec
	swapped.Proof = lkB.Rec.Proof
	if _, err := verifyMembership([]byte("key010"), record.MaxTs, swapped, d); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("record with swapped proof accepted: %v", err)
	}

	// Record B's key + record A's value + record B's proof (a targeted
	// value substitution).
	franken := lkB.Rec
	franken.Value = lkA.Rec.Value
	if _, err := verifyMembership([]byte("key011"), record.MaxTs, franken, d); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("value-substituted record accepted: %v", err)
	}

	// A record from a DIFFERENT run presented against this run's digest.
	s.Put([]byte("key010"), []byte("newer"))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	runs := s.Engine().Runs()
	if len(runs) < 2 {
		t.Skip("flush merged into a single run; cross-run case not constructible here")
	}
	otherID := runs[0].ID
	if otherID == id {
		otherID = runs[1].ID
	}
	lkOther, err := s.Engine().LookupRun(otherID, []byte("key010"), record.MaxTs)
	if err != nil || !lkOther.Found {
		t.Skip("key not present in other run")
	}
	if _, err := verifyMembership([]byte("key010"), record.MaxTs, lkOther.Rec, d); err == nil {
		t.Fatal("record from another run verified against this run's root")
	}
}
