package core

import (
	"fmt"
	"testing"

	"elsm/internal/record"
)

// TestHistoricalScanSeesMemtableHistory regression-tests ScanAt: a
// historical range query must return the version that was current at tsq
// even when newer versions of the key still sit in the memtable.
func TestHistoricalScanSeesMemtableHistory(t *testing.T) {
	s := mustOpenP2(t, smallCfg(nil))
	defer s.Close()
	tsOld := make(map[string]uint64)
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("key%02d", i)
		ts, err := s.Put([]byte(key), []byte("old"))
		if err != nil {
			t.Fatal(err)
		}
		tsOld[key] = ts
	}
	cut := s.Engine().LastTs()
	for i := 0; i < 20; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("key%02d", i)), []byte("new")); err != nil {
			t.Fatal(err)
		}
	}
	// Everything is still in the memtable: the historical scan must see
	// the "old" values at the cut timestamp.
	out, err := s.ScanAt([]byte("key00"), []byte("key19"), cut)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 20 {
		t.Fatalf("historical scan returned %d of 20", len(out))
	}
	for _, r := range out {
		if string(r.Value) != "old" {
			t.Fatalf("key %q at ts %d = %q, want old", r.Key, cut, r.Value)
		}
	}
	// At the latest timestamp, the same scan sees the new values.
	out, err = s.ScanAt([]byte("key00"), []byte("key19"), record.MaxTs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range out {
		if string(r.Value) != "new" {
			t.Fatalf("key %q latest = %q, want new", r.Key, r.Value)
		}
	}
	// After a flush the same historical scan still verifies (versions now
	// live in on-disk chains).
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	out, err = s.ScanAt([]byte("key00"), []byte("key19"), cut)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 20 {
		t.Fatalf("post-flush historical scan returned %d of 20", len(out))
	}
	for _, r := range out {
		if string(r.Value) != "old" {
			t.Fatalf("post-flush key %q = %q, want old", r.Key, r.Value)
		}
	}
	// Before any writes: verified-empty historical scan.
	out, err = s.ScanAt([]byte("key00"), []byte("key19"), tsOld["key00"]-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("pre-history scan returned %d records", len(out))
	}
}
