package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"elsm/internal/record"
)

// refModel is the trusted reference: a versioned map.
type refModel struct {
	versions map[string][]refVersion
}

type refVersion struct {
	ts  uint64
	val []byte
	del bool
}

func newRefModel() *refModel { return &refModel{versions: map[string][]refVersion{}} }

func (m *refModel) put(key string, ts uint64, val []byte) {
	m.versions[key] = append(m.versions[key], refVersion{ts: ts, val: val})
}

func (m *refModel) del(key string, ts uint64) {
	m.versions[key] = append(m.versions[key], refVersion{ts: ts, del: true})
}

// getAt returns the newest version ≤ tsq.
func (m *refModel) getAt(key string, tsq uint64) ([]byte, bool) {
	vs := m.versions[key]
	var best *refVersion
	for i := range vs {
		if vs[i].ts <= tsq && (best == nil || vs[i].ts > best.ts) {
			best = &vs[i]
		}
	}
	if best == nil || best.del {
		return nil, false
	}
	return best.val, true
}

// TestPropertyRandomOpsMatchModel drives a long random operation sequence
// (puts, deletes, point reads at random historical timestamps, range
// scans, explicit flush/compact) against the verified store and a
// reference model, checking exact agreement everywhere. KeepVersions=0 so
// full history (and hence the hash-chain machinery) is exercised.
func TestPropertyRandomOpsMatchModel(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			s := mustOpenP2(t, smallCfg(nil))
			defer s.Close()
			model := newRefModel()
			rnd := rand.New(rand.NewSource(seed))
			var allTs []uint64
			keyOf := func() string { return fmt.Sprintf("key%03d", rnd.Intn(120)) }

			for i := 0; i < 2500; i++ {
				switch op := rnd.Intn(100); {
				case op < 45: // put
					key := keyOf()
					val := []byte(fmt.Sprintf("v%d", i))
					ts, err := s.Put([]byte(key), val)
					if err != nil {
						t.Fatal(err)
					}
					model.put(key, ts, val)
					allTs = append(allTs, ts)
				case op < 52: // delete
					key := keyOf()
					ts, err := s.Delete([]byte(key))
					if err != nil {
						t.Fatal(err)
					}
					model.del(key, ts)
					allTs = append(allTs, ts)
				case op < 75: // latest get
					key := keyOf()
					res, err := s.Get([]byte(key))
					if err != nil {
						t.Fatalf("op %d get: %v", i, err)
					}
					want, ok := model.getAt(key, record.MaxTs)
					if res.Found != ok || (ok && !bytes.Equal(res.Value, want)) {
						t.Fatalf("op %d: get %q = (%q,%v), want (%q,%v)", i, key, res.Value, res.Found, want, ok)
					}
				case op < 88 && len(allTs) > 0: // historical get
					key := keyOf()
					tsq := allTs[rnd.Intn(len(allTs))]
					res, err := s.GetAt([]byte(key), tsq)
					if err != nil {
						t.Fatalf("op %d historical get: %v", i, err)
					}
					want, ok := model.getAt(key, tsq)
					if res.Found != ok || (ok && !bytes.Equal(res.Value, want)) {
						t.Fatalf("op %d: getAt(%q,%d) = (%q,%v), want (%q,%v)", i, key, tsq, res.Value, res.Found, want, ok)
					}
				case op < 94: // verified scan
					lo := rnd.Intn(110)
					hi := lo + rnd.Intn(15)
					start := fmt.Sprintf("key%03d", lo)
					end := fmt.Sprintf("key%03d", hi)
					out, err := s.Scan([]byte(start), []byte(end))
					if err != nil {
						t.Fatalf("op %d scan: %v", i, err)
					}
					got := map[string]string{}
					for _, r := range out {
						got[string(r.Key)] = string(r.Value)
					}
					for k := lo; k <= hi; k++ {
						key := fmt.Sprintf("key%03d", k)
						want, ok := model.getAt(key, record.MaxTs)
						gv, gok := got[key]
						if ok != gok || (ok && gv != string(want)) {
							t.Fatalf("op %d: scan key %q = (%q,%v), want (%q,%v)", i, key, gv, gok, want, ok)
						}
					}
					if len(got) > hi-lo+1 {
						t.Fatalf("op %d: scan returned extraneous keys", i)
					}
				case op < 97:
					if err := s.Flush(); err != nil {
						t.Fatal(err)
					}
				default:
					if err := s.Compact(1 + rnd.Intn(3)); err != nil {
						t.Fatal(err)
					}
				}
			}
		})
	}
}

// TestConcurrentVerifiedReadsDuringWrites hammers verified GETs from
// several goroutines while a writer churns keys through flushes and
// compactions; every read must either verify or be a correct not-found —
// never an authentication error (the engine + digest snapshotting must
// stay consistent under concurrency, §5.5.2 "Multi-threading").
func TestConcurrentVerifiedReadsDuringWrites(t *testing.T) {
	s := mustOpenP2(t, smallCfg(nil))
	defer s.Close()
	// Pre-populate so reads hit disk runs immediately.
	for i := 0; i < 500; i++ {
		s.Put([]byte(fmt.Sprintf("key%03d", i%120)), []byte("seed"))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 4000; i++ {
			if _, err := s.Put([]byte(fmt.Sprintf("key%03d", i%120)), []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := []byte(fmt.Sprintf("key%03d", rnd.Intn(120)))
				if _, err := s.Get(key); err != nil {
					t.Errorf("reader %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestDigestForestMatchesRuns checks the internal invariant that the
// trusted digest map always covers exactly the engine's live runs.
func TestDigestForestMatchesRuns(t *testing.T) {
	s := mustOpenP2(t, smallCfg(nil))
	defer s.Close()
	for i := 0; i < 3000; i++ {
		s.Put([]byte(fmt.Sprintf("key%04d", i%600)), []byte(fmt.Sprintf("v%d", i)))
		if i%500 == 0 {
			runs := s.Engine().Runs()
			digs := s.RunDigests()
			if len(runs) != len(digs) {
				t.Fatalf("at op %d: %d runs vs %d digests", i, len(runs), len(digs))
			}
			for _, r := range runs {
				if _, ok := digs[r.ID]; !ok {
					t.Fatalf("run %d has no trusted digest", r.ID)
				}
			}
		}
	}
}

// TestEmptyStoreOps verifies degenerate inputs.
func TestEmptyStoreOps(t *testing.T) {
	s := mustOpenP2(t, smallCfg(nil))
	defer s.Close()
	if res, err := s.Get([]byte("nothing")); err != nil || res.Found {
		t.Fatalf("empty get: %+v err=%v", res, err)
	}
	if out, err := s.Scan([]byte("a"), []byte("z")); err != nil || len(out) != 0 {
		t.Fatalf("empty scan: %d err=%v", len(out), err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("empty flush: %v", err)
	}
	if res, err := s.GetAt([]byte("k"), 0); err != nil || res.Found {
		t.Fatalf("tsq=0 get: %+v err=%v", res, err)
	}
	// Empty key and empty value are legal.
	if _, err := s.Put([]byte{}, []byte{}); err != nil {
		t.Fatalf("empty key/value put: %v", err)
	}
	res, err := s.Get([]byte{})
	if err != nil || !res.Found {
		t.Fatalf("empty key get: %+v err=%v", res, err)
	}
}

// TestLargeValuesAcrossBlocks exercises records larger than a block.
func TestLargeValuesAcrossBlocks(t *testing.T) {
	cfg := smallCfg(nil) // BlockSize 512
	s := mustOpenP2(t, cfg)
	defer s.Close()
	big := bytes.Repeat([]byte("x"), 3000) // 6x block size
	for i := 0; i < 30; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("big%02d", i)), big); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		res, err := s.Get([]byte(fmt.Sprintf("big%02d", i)))
		if err != nil || !res.Found || len(res.Value) != 3000 {
			t.Fatalf("big value %d: len=%d err=%v", i, len(res.Value), err)
		}
	}
}
