package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"elsm/internal/lsm"
	"elsm/internal/record"
	"elsm/internal/sgx"
)

// batchOf builds n sequential set ops starting at index base.
func batchOf(base, n int) []BatchOp {
	ops := make([]BatchOp, n)
	for i := range ops {
		ops[i] = BatchOp{
			Key:   []byte(fmt.Sprintf("key%05d", base+i)),
			Value: []byte(fmt.Sprintf("val%d", base+i)),
		}
	}
	return ops
}

func TestBatchEquivalentToSingles(t *testing.T) {
	// The same operations applied as one batch and as singles must yield
	// identical verified reads AND identical WAL digest chains (the
	// per-record chain extension is preserved; only the boundary costs are
	// amortized).
	single := mustOpenP2(t, smallCfg(nil))
	defer single.Close()
	batched := mustOpenP2(t, smallCfg(nil))
	defer batched.Close()

	ops := batchOf(0, 100)
	ops[40].Delete = true
	ops[40].Value = nil
	for _, op := range ops {
		var err error
		if op.Delete {
			_, err = single.Delete(op.Key)
		} else {
			_, err = single.Put(op.Key, op.Value)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	ts, err := batched.ApplyBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	if want := single.Engine().LastTs(); ts != want {
		t.Fatalf("batch commit ts = %d, want %d", ts, want)
	}
	if single.walDigest != batched.walDigest {
		t.Fatal("batched WAL digest chain diverges from the single-put chain")
	}
	sr, err := single.Scan([]byte("key"), []byte("kez"))
	if err != nil {
		t.Fatal(err)
	}
	br, err := batched.Scan([]byte("key"), []byte("kez"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sr) != len(br) || len(br) != 99 {
		t.Fatalf("scan lengths: single %d, batched %d", len(sr), len(br))
	}
	for i := range sr {
		if !bytes.Equal(sr[i].Key, br[i].Key) || !bytes.Equal(sr[i].Value, br[i].Value) {
			t.Fatalf("row %d: single %q=%q, batched %q=%q", i, sr[i].Key, sr[i].Value, br[i].Key, br[i].Value)
		}
	}
}

func TestBatchSingleCounterBump(t *testing.T) {
	// With a counter interval much smaller than the batch, the periodic
	// bump must be deferred to the end of the group: one bump per batch,
	// not one per interval crossing.
	counter := sgx.NewMonotonicCounter()
	cfg := smallCfg(nil)
	cfg.Counter = counter
	cfg.CounterInterval = 4
	cfg.MemtableSize = 1 << 20 // no flush mid-test
	s := mustOpenP2(t, cfg)
	defer s.Close()
	base, _ := counter.Read() // a fresh store seals once at open

	if _, err := s.ApplyBatch(batchOf(0, 100)); err != nil {
		t.Fatal(err)
	}
	if v, _ := counter.Read(); v != base+1 {
		t.Fatalf("counter after one batch = %d, want %d (one deferred bump)", v, base+1)
	}

	// The single-put path still bumps per interval.
	for i := 0; i < 8; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("s%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := counter.Read(); v != base+3 {
		t.Fatalf("counter after 8 singles at interval 4 = %d, want %d", v, base+3)
	}
}

func TestBatchTriggersFlush(t *testing.T) {
	cfg := smallCfg(nil)
	s := mustOpenP2(t, cfg)
	defer s.Close()
	// Far beyond the 4 KiB memtable: the batch must trigger a (background)
	// flush and stay readable through the authenticated run path.
	if _, err := s.ApplyBatch(batchOf(0, 500)); err != nil {
		t.Fatal(err)
	}
	if err := s.Engine().WaitMaintenance(); err != nil {
		t.Fatal(err)
	}
	if s.Engine().Stats().Flushes == 0 {
		t.Fatal("oversized batch did not flush")
	}
	res, err := s.Get([]byte("key00007"))
	if err != nil || !res.Found {
		t.Fatalf("get after batch flush: %v found=%v", err, res.Found)
	}
	if _, err := s.ApplyBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

func TestIteratorStreamsInChunks(t *testing.T) {
	cfg := smallCfg(nil)
	cfg.IterChunkKeys = 16
	s := mustOpenP2(t, cfg)
	defer s.Close()
	const n = 500
	for i := 0; i < n; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("key%05d", i)), []byte(fmt.Sprintf("val%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	before := s.Enclave().Stats().ECalls
	it := s.Iter([]byte("key"), []byte("kez"))
	count := 0
	for it.Next() {
		want := fmt.Sprintf("key%05d", count)
		if string(it.Result().Key) != want {
			t.Fatalf("row %d key = %q, want %q", count, it.Result().Key, want)
		}
		count++
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("streamed %d of %d", count, n)
	}
	chunks := s.Enclave().Stats().ECalls - before
	if chunks < uint64(n)/16 {
		t.Fatalf("iteration used %d ECalls for %d keys at chunk 16 — not streaming in chunks", chunks, n)
	}
}

func TestIteratorHistoricalMatchesScanAt(t *testing.T) {
	s := mustOpenP2(t, smallCfg(nil))
	defer s.Close()
	var mid uint64
	for round := 0; round < 3; round++ {
		for i := 0; i < 60; i++ {
			ts, err := s.Put([]byte(fmt.Sprintf("key%05d", i)), []byte(fmt.Sprintf("r%d-%d", round, i)))
			if err != nil {
				t.Fatal(err)
			}
			if round == 1 && i == 59 {
				mid = ts
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	want, err := s.ScanAt([]byte("key"), []byte("kez"), mid)
	if err != nil {
		t.Fatal(err)
	}
	it := s.IterAt([]byte("key"), []byte("kez"), mid)
	var got []Result
	for it.Next() {
		got = append(got, it.Result())
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) != 60 {
		t.Fatalf("historical stream %d rows, scan %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].Value, want[i].Value) || got[i].Ts != want[i].Ts {
			t.Fatalf("row %d: stream %q@%d, scan %q@%d", i, got[i].Value, got[i].Ts, want[i].Value, want[i].Ts)
		}
	}
}

// tamperCase mutates one per-run scan response the way a malicious host
// would, via the scanTamper test hook.
type tamperCase struct {
	name   string
	mutate func(*lsm.RunScan) bool // returns true if it tampered
}

func tamperCases() []tamperCase {
	return []tamperCase{
		{"omit-interior-record", func(rs *lsm.RunScan) bool {
			if len(rs.Records) < 8 {
				return false
			}
			rs.Records = append(append([]record.Record(nil), rs.Records[:3]...), rs.Records[4:]...)
			return true
		}},
		{"reorder-records", func(rs *lsm.RunScan) bool {
			if len(rs.Records) < 8 {
				return false
			}
			recs := append([]record.Record(nil), rs.Records...)
			recs[2], recs[5] = recs[5], recs[2]
			rs.Records = recs
			return true
		}},
		{"stale-substituted-value", func(rs *lsm.RunScan) bool {
			if len(rs.Records) < 8 {
				return false
			}
			recs := append([]record.Record(nil), rs.Records...)
			recs[3].Value = []byte("stale-forgery")
			rs.Records = recs
			return true
		}},
		{"drop-tail", func(rs *lsm.RunScan) bool {
			if len(rs.Records) < 8 {
				return false
			}
			rs.Records = rs.Records[: len(rs.Records)-2 : len(rs.Records)-2]
			return true
		}},
	}
}

func TestAttackIteratorTamperMidStream(t *testing.T) {
	// A malicious host altering one chunk of a streamed range read must
	// stop the stream with ErrAuthFailed — in the streaming path AND in
	// the materialized Scan that is rebased on it.
	for _, tc := range tamperCases() {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallCfg(nil)
			cfg.IterChunkKeys = 32
			s := mustOpenP2(t, cfg)
			defer s.Close()
			for i := 0; i < 300; i++ {
				if _, err := s.Put([]byte(fmt.Sprintf("key%05d", i)), []byte("v")); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}

			// Tamper with the SECOND chunk only: the stream must hand out
			// verified results first, then stop with ErrAuthFailed.
			chunk := 0
			tampered := false
			s.scanTamper = func(rs *lsm.RunScan) {
				chunk++
				if chunk >= 2 && !tampered {
					tampered = tc.mutate(rs)
				}
			}
			it := s.Iter([]byte("key"), []byte("kez"))
			streamed := 0
			for it.Next() {
				streamed++
			}
			err := it.Close()
			if !tampered {
				t.Fatal("tamper hook never fired")
			}
			if !errors.Is(err, ErrAuthFailed) {
				t.Fatalf("streaming tamper %s: err = %v, want ErrAuthFailed", tc.name, err)
			}
			if streamed == 0 || streamed >= 300 {
				t.Fatalf("stream delivered %d rows before detection", streamed)
			}

			// Materialized path: same detection, no partial results.
			chunk, tampered = 0, false
			out, err := s.Scan([]byte("key"), []byte("kez"))
			if !errors.Is(err, ErrAuthFailed) {
				t.Fatalf("materialized tamper %s: err = %v, want ErrAuthFailed", tc.name, err)
			}
			if out != nil {
				t.Fatal("tampered scan returned partial results")
			}
		})
	}
}

func TestAttackIteratorOmittedKeyAcrossChunks(t *testing.T) {
	// Omitting an entire key group (not just one version) from a chunk is
	// the classic "silently filter the range" attack; the boundary
	// adjacency check must catch it.
	cfg := smallCfg(nil)
	cfg.IterChunkKeys = 64
	s := mustOpenP2(t, cfg)
	defer s.Close()
	for i := 0; i < 200; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("key%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	target := []byte("key00100")
	s.scanTamper = func(rs *lsm.RunScan) {
		kept := rs.Records[:0:0]
		for _, rec := range rs.Records {
			if !bytes.Equal(rec.Key, target) {
				kept = append(kept, rec)
			}
		}
		rs.Records = kept
	}
	it := s.Iter([]byte("key"), []byte("kez"))
	for it.Next() {
		if bytes.Equal(it.Result().Key, target) {
			t.Fatal("omitted key emitted")
		}
	}
	if err := it.Close(); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("key omission: err = %v, want ErrAuthFailed", err)
	}
}
