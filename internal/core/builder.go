package core

import (
	"bytes"
	"fmt"

	"elsm/internal/hashutil"
	"elsm/internal/merkle"
	"elsm/internal/record"
)

// runDigest is the trusted per-run state kept inside the enclave: the
// Merkle root over the run's distinct keys and the leaf count (needed to
// validate path shapes and adjacency claims).
type runDigest struct {
	Root      hashutil.Hash `json:"root"`
	NumLeaves int           `json:"leaves"`
}

// treeBuilder incrementally digests a sorted record stream into the eLSM
// per-run Merkle tree (§5.5.2 "Merkle tree construction"): same-key version
// runs are folded into hash chains (oldest innermost), each completed chain
// becomes one leaf, and the leaves form a binary Merkle tree.
//
// Records arrive in engine order — key ascending, timestamp descending — so
// versions of a key arrive newest first and are buffered until the key
// changes.
type treeBuilder struct {
	leaves []hashutil.Hash

	curKey   []byte
	pending  []versionEntry // newest first
	haveKey  bool
	count    int
	trackVer bool
	// perLeaf is populated only when trackVer is set (output trees that
	// must later serve embedded proofs).
	perLeaf []leafVersions
}

// versionEntry captures one version's chain header and, for output trees,
// the inner chain value below it.
type versionEntry struct {
	ts    uint64
	dig   hashutil.Hash
	inner hashutil.Hash
}

// leafVersions records a leaf's key and its versions (newest first).
type leafVersions struct {
	key      []byte
	versions []versionEntry
}

// newTreeBuilder creates a builder; trackVersions enables the per-leaf
// bookkeeping needed to embed proofs afterwards.
func newTreeBuilder(trackVersions bool) *treeBuilder {
	return &treeBuilder{trackVer: trackVersions}
}

// Add ingests the next record in stream order.
func (b *treeBuilder) Add(rec record.Record) error {
	if b.haveKey {
		switch c := bytes.Compare(rec.Key, b.curKey); {
		case c < 0:
			return fmt.Errorf("core: compaction stream out of order: %q after %q", rec.Key, b.curKey)
		case c > 0:
			b.finishLeaf()
		default:
			if n := len(b.pending); n > 0 && rec.Ts >= b.pending[n-1].ts {
				return fmt.Errorf("core: version order violation for key %q", rec.Key)
			}
		}
	}
	if !b.haveKey || !bytes.Equal(rec.Key, b.curKey) {
		b.curKey = append(b.curKey[:0], rec.Key...)
		b.haveKey = true
	}
	b.pending = append(b.pending, versionEntry{ts: rec.Ts, dig: rec.Digest()})
	b.count++
	return nil
}

// finishLeaf folds the buffered versions (newest first) into a hash chain
// with the oldest record innermost, then emits the leaf.
func (b *treeBuilder) finishLeaf() {
	if len(b.pending) == 0 {
		return
	}
	inner := hashutil.Zero
	for i := len(b.pending) - 1; i >= 0; i-- {
		b.pending[i].inner = inner
		inner = hashutil.ChainLink(b.pending[i].ts, b.pending[i].dig, inner)
	}
	b.leaves = append(b.leaves, hashutil.LeafHash(b.curKey, inner))
	if b.trackVer {
		b.perLeaf = append(b.perLeaf, leafVersions{
			key:      append([]byte(nil), b.curKey...),
			versions: append([]versionEntry(nil), b.pending...),
		})
	}
	b.pending = b.pending[:0]
}

// Finish completes the tree and returns its digest.
func (b *treeBuilder) Finish() (*merkle.Tree, runDigest) {
	b.finishLeaf()
	t := merkle.New(b.leaves)
	return t, runDigest{Root: t.Root(), NumLeaves: t.NumLeaves()}
}

// outputTree is a finished output tree able to serve embedded proofs for
// its records.
type outputTree struct {
	tree    *merkle.Tree
	digest  runDigest
	perLeaf []leafVersions
	keyIdx  map[string]int
}

// finishOutput finalizes a tracking builder into a proof server.
func finishOutput(b *treeBuilder) *outputTree {
	t, d := b.Finish()
	o := &outputTree{tree: t, digest: d, perLeaf: b.perLeaf, keyIdx: make(map[string]int, len(b.perLeaf))}
	for i := range b.perLeaf {
		o.keyIdx[string(b.perLeaf[i].key)] = i
	}
	return o
}

// proofFor builds the embedded proof of one output record.
func (o *outputTree) proofFor(rec record.Record) (*EmbeddedProof, error) {
	li, ok := o.keyIdx[string(rec.Key)]
	if !ok {
		return nil, fmt.Errorf("core: no leaf for key %q", rec.Key)
	}
	lv := o.perLeaf[li]
	vi := -1
	for i := range lv.versions {
		if lv.versions[i].ts == rec.Ts {
			vi = i
			break
		}
	}
	if vi < 0 {
		return nil, fmt.Errorf("core: no version %d for key %q", rec.Ts, rec.Key)
	}
	p := &EmbeddedProof{
		LeafIndex: uint32(li),
		Inner:     lv.versions[vi].inner,
		Path:      o.tree.Path(li),
	}
	// Newer versions, ascending Ts: versions are stored newest first, so
	// walk from the entry just above this record back to the newest.
	for i := vi - 1; i >= 0; i-- {
		p.Newer = append(p.Newer, ChainEntry{Ts: lv.versions[i].ts, RecDigest: lv.versions[i].dig})
	}
	return p, nil
}
