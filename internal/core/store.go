package core

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"elsm/internal/blockcache"
	"elsm/internal/hashutil"
	"elsm/internal/lsm"
	"elsm/internal/obs"
	"elsm/internal/record"
	"elsm/internal/sgx"
	"elsm/internal/vfs"
)

// trustedStateName is the untrusted file holding the sealed enclave state.
const trustedStateName = "TRUSTED.bin"

// DefaultCounterInterval is how many writes may elapse between monotonic
// counter bumps (the tunable write buffer of §5.6.1: smaller = smaller
// rollback window, more counter traffic).
const DefaultCounterInterval = 1024

// Config configures an eLSM store.
type Config struct {
	// FS is the untrusted file system. Nil means a fresh in-memory FS.
	FS vfs.FS
	// SGX configures the simulated enclave (EPC size, cost model).
	SGX sgx.Params
	// Enclave overrides SGX with an existing enclave instance.
	Enclave *sgx.Enclave
	// Platform is the machine root of trust for sealing; nil creates a
	// fresh one (note: a fresh platform cannot unseal state sealed by a
	// previous instance — pass the same Platform across restarts).
	Platform *sgx.Platform
	// Counter is the trusted monotonic counter; pass the same instance
	// across restarts to enable rollback detection.
	Counter *sgx.MonotonicCounter
	// CacheSize is the read-buffer capacity in bytes; 0 disables the
	// buffer (use MmapReads instead).
	CacheSize int
	// MmapReads selects the mmap read path (eLSM-P2-mmap).
	MmapReads bool
	// CounterInterval overrides DefaultCounterInterval; negative disables
	// periodic bumps (bumps still occur at every compaction).
	CounterInterval int
	// RequireCleanRecovery rejects recovery when the WAL holds records
	// appended after the last sealed state (closing the §5.6.1 window at
	// the cost of refusing unclean restarts).
	RequireCleanRecovery bool
	// IterChunkKeys bounds how many distinct keys a streaming iterator
	// chunk covers per run (0 = DefaultIterChunkKeys).
	IterChunkKeys int
	// GroupCommitMaxOps caps how many operations one cross-client commit
	// group may carry (0 = unbounded; 1 = per-op commits, no coalescing).
	GroupCommitMaxOps int
	// GroupCommitWindow makes a commit leader wait this long for more
	// concurrent commits to join its group (0 = rely on the natural
	// batching window of the previous group's fsync).
	GroupCommitWindow time.Duration
	// MaxAsyncCommitBacklog caps acknowledged-but-not-yet-durable
	// CommitAsync commits (0 = engine default).
	MaxAsyncCommitBacklog int
	// DisableEarlyStop makes every GET iterate and verify ALL runs
	// instead of stopping at the first verified hit — the behaviour of
	// prior work (Speicher) that eLSM improves on (§7 distinction 1).
	// Exists for the ablation benchmark; never enable in production.
	DisableEarlyStop bool
	// InlineCompaction restores synchronous flush/compaction on the commit
	// path (pre-background behaviour) — ablation benchmarks only.
	InlineCompaction bool
	// CompactionWorkers bounds how many maintenance jobs (flushes +
	// compactions of disjoint level pairs) run concurrently (0 = engine
	// default, max(2, GOMAXPROCS/2)).
	CompactionWorkers int
	// Workers shares one maintenance worker pool across several stores
	// (shard sets); nil gives this store its own pool of CompactionWorkers.
	Workers *lsm.WorkerPool
	// Obs is this shard's observability recorder, threaded through to the
	// engine and the verified read paths. Nil disables instrumentation.
	Obs *obs.Recorder
	// KeepVersions, MemtableSize, TableFileSize, LevelBase,
	// LevelMultiplier, MaxLevels, BlockSize, DisableCompaction and
	// DisableWAL pass through to the engine (zero = engine default).
	KeepVersions      int
	MemtableSize      int
	TableFileSize     int
	LevelBase         int64
	LevelMultiplier   int
	MaxLevels         int
	BlockSize         int
	DisableCompaction bool
	DisableWAL        bool
}

// Result is a verified query result.
type Result struct {
	Key   []byte
	Value []byte
	Ts    uint64
	Found bool
}

// KV is the common interface implemented by the eLSM-P2, eLSM-P1 and
// unsecured stores (Equation 1 of the paper, extended with the grouped
// write and streaming read paths that amortize enclave-boundary costs, and
// the Sessions v2 surface: context-aware variants, pinned snapshots and
// pipelined asynchronous durability). The context-free methods are thin
// wrappers over their Ctx counterparts.
type KV interface {
	Put(key, value []byte) (uint64, error)
	Delete(key []byte) (uint64, error)
	// ApplyBatch applies a group of writes atomically under one engine
	// lock acquisition, returning the commit timestamp of the group.
	ApplyBatch(ops []BatchOp) (uint64, error)
	Get(key []byte) (Result, error)
	GetAt(key []byte, tsq uint64) (Result, error)
	Scan(start, end []byte) ([]Result, error)
	// IterAt streams the newest value ≤ tsq of every key in [start, end]
	// in bounded memory; errors (verification failures included) surface
	// through the iterator's Err/Close.
	IterAt(start, end []byte, tsq uint64) Iterator

	// Context-aware variants. A context cancelled while a write still
	// waits in the commit queue withdraws it (nothing is written); a
	// context cancelled mid-iteration stops the stream and aborts its
	// prefetch.
	PutCtx(ctx context.Context, key, value []byte) (uint64, error)
	DeleteCtx(ctx context.Context, key []byte) (uint64, error)
	ApplyBatchCtx(ctx context.Context, ops []BatchOp) (uint64, error)
	GetAtCtx(ctx context.Context, key []byte, tsq uint64) (Result, error)
	IterAtCtx(ctx context.Context, start, end []byte, tsq uint64) Iterator

	// CommitAsync applies a group of writes with pipelined durability: the
	// future is acknowledged once the commit timestamp is assigned and the
	// group is appended to the log, and resolved once it is fsynced and
	// visible. Sync is the durability barrier closing the window.
	CommitAsync(ctx context.Context, ops []BatchOp) (*CommitFuture, error)
	Sync(ctx context.Context) error

	// Snapshot captures a consistent, repeatable read session: the current
	// digest snapshot with its runs and memtables pinned. Reads through it
	// return identical (verified, on authenticated stores) results no
	// matter what flushes, compactions or WAL rotations happen underneath,
	// until Close releases the pins.
	Snapshot() (Snapshot, error)

	Close() error
}

// CommitFuture is the handle of an asynchronous commit (see lsm.CommitFuture).
type CommitFuture = lsm.CommitFuture

// Snapshot is a pinned point-in-time read session over a KV store. On
// authenticated stores every read through it is verified exactly like the
// live paths, against the digest forest captured at creation.
type Snapshot interface {
	// Ts returns the snapshot's trusted timestamp frontier: the commit
	// timestamp of the last write visible in it.
	Ts() uint64
	// GetAt returns the newest value with timestamp ≤ tsq as of the
	// snapshot (tsq is clamped to Ts).
	GetAt(ctx context.Context, key []byte, tsq uint64) (Result, error)
	// IterAt streams the snapshot's range [start, end] at tsq in bounded
	// memory.
	IterAt(ctx context.Context, start, end []byte, tsq uint64) Iterator
	// Close releases the snapshot's pins. Idempotent; open iterators keep
	// their own pins until closed.
	Close() error
}

// Store is the eLSM-P2 authenticated store: engine code and small metadata
// inside the enclave, read buffers and files outside, all out-of-enclave
// data authenticated by the Merkle forest.
type Store struct {
	engine  *lsm.Store
	enclave *sgx.Enclave
	fs      vfs.FS

	platform    *sgx.Platform
	measurement sgx.Measurement
	sealKey     [32]byte
	counter     *sgx.MonotonicCounter

	// epoch is the replication epoch: it increments exactly once per
	// follower→leader promotion and is attested into every checkpoint
	// header and shipped group frame. A follower rejects frames from an
	// older epoch (repl.ErrFenced), so a zombie leader that survived its
	// own demotion can never extend the verified history. Sealed with the
	// trusted state and folded into the counter-bound fingerprint, so it
	// can no more be rolled back than the digest frontier itself.
	epoch atomic.Uint64

	counterInterval int
	iterChunkKeys   int

	// snap is the lock-free read snapshot of the trusted digest forest:
	// an immutable map swapped atomically by copy-on-write whenever a
	// flush/compaction installs a new version (the ONLY digest mutations).
	// Get/Iter load it without taking any lock, so verified reads never
	// contend with the committer, whose per-record OnWALAppend work holds
	// mu.
	snap atomic.Pointer[trustedView]

	// mu guards the write-side trusted state (WAL digest chains, bump
	// bookkeeping) and serializes snapshot swaps. Readers never take it.
	mu sync.Mutex
	// walDigest chains every record in the live WAL files (frozen logs
	// awaiting a flush install, then the active log); freshDigest chains
	// only the records since the last memtable freeze (the active log).
	// At flush install the frozen logs are deleted and walDigest becomes
	// freshDigest.
	walDigest   hashutil.Hash
	freshDigest hashutil.Hash
	walAppends  uint64
	// The pipelined committer appends ahead of its fsyncs, so the chain
	// tips above run ahead of stable storage. groupMarks queues one mark
	// per appended-but-not-yet-durable commit group (FIFO, in append
	// order); OnGroupCommit pops marks into the durable frontier below,
	// which is the ONLY state commitState may seal — binding the counter
	// to unsynced records would turn a crash into a false rollback.
	groupMarks     []walMark
	durableDigest  hashutil.Hash
	durableFresh   hashutil.Hash
	durableAppends uint64

	// sealMu serializes commitState end to end (fingerprint, counter bump,
	// seal write): the maintenance worker and a commit leader may both
	// reach it concurrently, and an older sealed blob must never overwrite
	// a newer one after the counter moved on.
	sealMu sync.Mutex

	// appendsAtBump records walAppends at the last periodic counter bump;
	// OnGroupCommit bumps again once counterInterval more records have
	// committed, so a whole group shares at most one bump.
	appendsAtBump uint64

	// pendingSeal, when non-nil, is a staged version install awaiting its
	// manifest rename: every seal written while it is set carries it as
	// trustedState.Pending, so recovery from a crash inside the install
	// window can adopt the post-install state. Staged by the installing
	// maintenance job (OnCompactionEnd, inside the engine's serialized
	// install window), cleared at OnVersionInstalled or retracted by
	// OnCompactionAbort if the install was abandoned. sealStagedBy records
	// the output-run ID of the job that staged it, so only the owning job's
	// abort retracts it (a concurrent failed job must not). Guarded by mu.
	pendingSeal  *pendingState
	sealStagedBy uint64

	// scanTamper, when non-nil, mutates each per-run scan response before
	// verification — a test-only stand-in for a malicious untrusted host.
	scanTamper func(*lsm.RunScan)

	// UnverifiedReplay counts WAL records recovered beyond the last
	// sealed state (the rollback-window records of §5.6.1).
	unverifiedReplay int

	disableEarlyStop bool

	statGets       atomic.Uint64
	statProofBytes atomic.Uint64
	statRunsProbed atomic.Uint64

	// rec is the shard's observability recorder (nil = instrumentation off).
	rec *obs.Recorder

	listener *authListener
}

// VerifyStats aggregates proof-verification work, used by the early-stop
// ablation (§7: eLSM's proofs cover only levels L1..Li; prior work pays
// for every level on every GET).
type VerifyStats struct {
	// Gets counts verified point lookups.
	Gets uint64
	// ProofBytes counts embedded-proof bytes verified.
	ProofBytes uint64
	// RunsProbed counts per-run lookups performed.
	RunsProbed uint64
}

// VerifyStatsSnapshot returns the accumulated counters.
func (c *Store) VerifyStatsSnapshot() VerifyStats {
	return VerifyStats{
		Gets:       c.statGets.Load(),
		ProofBytes: c.statProofBytes.Load(),
		RunsProbed: c.statRunsProbed.Load(),
	}
}

var _ KV = (*Store)(nil)

// Open creates or recovers an eLSM-P2 store.
func Open(cfg Config) (*Store, error) {
	enclave := cfg.Enclave
	if enclave == nil {
		enclave = sgx.New(cfg.SGX)
	}
	platform := cfg.Platform
	if platform == nil {
		var err error
		platform, err = sgx.NewPlatform()
		if err != nil {
			return nil, err
		}
	}
	counter := cfg.Counter
	if counter == nil {
		counter = sgx.NewMonotonicCounter()
	}
	fs := cfg.FS
	if fs == nil {
		fs = vfs.NewMem()
	}
	interval := cfg.CounterInterval
	if interval == 0 {
		interval = DefaultCounterInterval
	}
	if interval < 0 {
		interval = 0
	}
	chunkKeys := cfg.IterChunkKeys
	if chunkKeys <= 0 {
		chunkKeys = DefaultIterChunkKeys
	}
	c := &Store{
		enclave:         enclave,
		fs:              fs,
		platform:        platform,
		counter:         counter,
		counterInterval: interval,
		iterChunkKeys:   chunkKeys,
		measurement:     sgx.Measure([]byte("elsm-p2")),
	}
	c.snap.Store(&trustedView{digests: make(map[uint64]runDigest)})
	c.sealKey = platform.SealingKey(c.measurement)
	c.disableEarlyStop = cfg.DisableEarlyStop
	c.rec = cfg.Obs
	c.listener = &authListener{c: c}

	var cache *blockcache.Cache
	if cfg.CacheSize > 0 {
		// P2 places the read buffer OUTSIDE the enclave (§4.2).
		cache = blockcache.New(cfg.CacheSize, nil)
	}
	engine, err := lsm.Open(lsm.Options{
		FS:                    fs,
		Enclave:               enclave,
		Listener:              c.listener,
		Cache:                 cache,
		MmapReads:             cfg.MmapReads,
		MemtableSize:          cfg.MemtableSize,
		BlockSize:             cfg.BlockSize,
		TableFileSize:         cfg.TableFileSize,
		LevelBase:             cfg.LevelBase,
		LevelMultiplier:       cfg.LevelMultiplier,
		MaxLevels:             cfg.MaxLevels,
		KeepVersions:          cfg.KeepVersions,
		DisableCompaction:     cfg.DisableCompaction,
		DisableWAL:            cfg.DisableWAL,
		GroupCommitMaxOps:     cfg.GroupCommitMaxOps,
		GroupCommitWindow:     cfg.GroupCommitWindow,
		MaxAsyncCommitBacklog: cfg.MaxAsyncCommitBacklog,
		InlineCompaction:      cfg.InlineCompaction,
		CompactionWorkers:     cfg.CompactionWorkers,
		Workers:               cfg.Workers,
		Obs:                   cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	c.engine = engine
	if err := c.recoverTrustedState(cfg.RequireCleanRecovery); err != nil {
		engine.Close()
		return nil, err
	}
	if !fs.Exists(trustedStateName) {
		// A fresh store seals its empty state before accepting writes:
		// recovery refuses data files without sealed state, so deferring
		// the first seal to the interval/flush/close path would leave a
		// window where a crash after the first commit is unrecoverable.
		c.SealState()
	}
	return c, nil
}

// trustedView is an immutable snapshot of the digest forest. The map must
// never be mutated after the view is published via snap; writers
// (OnVersionInstalled, recovery) publish a fresh copy under c.mu.
type trustedView struct {
	digests map[uint64]runDigest
}

// walMark is one commit group's WAL chain state at append time, in both
// bases: digest spans the live logs (frozen + active), fresh spans the
// active log alone (the basis the chain rebases onto at a flush install).
type walMark struct {
	digest  hashutil.Hash
	fresh   hashutil.Hash
	appends uint64
}

// snapshotDigests returns the current immutable digest view — a single
// atomic load, no lock, no copy. Callers must treat the map as read-only.
func (c *Store) snapshotDigests() map[uint64]runDigest {
	return c.snap.Load().digests
}

// stateFingerprint deterministically digests the trusted state for counter
// binding: sorted (runID, root, leaves) triples, the WAL digest and the
// replication epoch. Binding the epoch means a rollback of the sealed blob
// to a pre-promotion value trips the counter check exactly like a rolled
// back digest frontier would.
func stateFingerprint(digests map[uint64]runDigest, walDigest hashutil.Hash, epoch uint64) [32]byte {
	ids := make([]uint64, 0, len(digests))
	for id := range digests {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	h := sha256.New()
	var buf [12]byte
	for _, id := range ids {
		d := digests[id]
		binary.BigEndian.PutUint64(buf[:8], id)
		binary.BigEndian.PutUint32(buf[8:12], uint32(d.NumLeaves))
		h.Write(buf[:])
		h.Write(d.Root[:])
	}
	h.Write(walDigest[:])
	binary.BigEndian.PutUint64(buf[:8], epoch)
	h.Write(buf[:8])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// trustedState is the sealed enclave state persisted to the untrusted FS.
type trustedState struct {
	Digests    map[uint64]runDigest `json:"digests"`
	WALDigest  hashutil.Hash        `json:"walDigest"`
	WALAppends uint64               `json:"walAppends"`
	LastTs     uint64               `json:"lastTs"`
	Counter    uint64               `json:"counter"`
	Epoch      uint64               `json:"epoch,omitempty"`
	// Pending, when set, describes the post-install state of a version
	// install (flush/compaction) that was staged but not yet confirmed
	// durable when this blob was sealed. A crash inside the install window
	// — after the manifest rename made the new version durable, before the
	// post-install seal — recovers to a directory matching Pending rather
	// than the current triple; recovery accepts either. Without it that
	// window is unrecoverable: the engine's run set no longer matches the
	// sealed forest and a real crash would read as rollback.
	Pending *pendingState `json:"pending,omitempty"`
}

// pendingState is the forward half of a transition seal: the digest forest
// and WAL chain frontier the store will hold once the staged version
// install lands. WALDigest is in the post-install chain basis (a flush
// install deletes the frozen logs and rebases the chain onto the active
// log alone).
type pendingState struct {
	Digests    map[uint64]runDigest `json:"digests"`
	WALDigest  hashutil.Hash        `json:"walDigest"`
	WALAppends uint64               `json:"walAppends"`
	LastTs     uint64               `json:"lastTs"`
}

// commitState persists the sealed state blob claiming the NEXT counter
// value, then bumps the monotonic counter over the state fingerprint
// (§5.6.1). The order is load-bearing for crash consistency: the blob
// lands first, so a crash (or write failure) anywhere in the window leaves
// either the old blob with the still-unbumped counter or the new blob one
// ahead of it — both of which counter.Verify accepts ("claimed value must
// not lag the trusted counter") — and never a bumped counter pointing at a
// stale blob, which recovery would refuse as a false rollback. sealMu
// covers the whole write+bump: a concurrent seal (commit leader vs
// maintenance worker) must not let an older blob land after a newer
// counter value.
func (c *Store) commitState() {
	c.sealMu.Lock()
	defer c.sealMu.Unlock()
	c.mu.Lock()
	digs := c.snap.Load().digests // consistent with the WAL frontier: swaps hold mu
	// Seal the DURABLE WAL frontier, never the append tip: with the
	// pipelined committer the tip may include records whose fsync is still
	// in flight, and a counter bound to them would refuse recovery from a
	// crash that (legitimately) tore them away.
	epoch := c.epoch.Load()
	fp := stateFingerprint(digs, c.durableDigest, epoch)
	ctr, _ := c.counter.Read()
	st := trustedState{
		Digests:    digs, // immutable; marshalled below without mutation
		WALDigest:  c.durableDigest,
		WALAppends: c.durableAppends,
		LastTs:     c.engine.AppliedTs(),
		Counter:    ctr + 1,
		Epoch:      epoch,
		Pending:    c.pendingSeal, // staged install (if any) rides in every seal
	}
	c.mu.Unlock()

	blob, err := json.Marshal(st)
	if err != nil {
		panic(fmt.Sprintf("core: trusted state marshal: %v", err))
	}
	sealed, err := sgx.Seal(c.sealKey, blob)
	if err != nil {
		panic(fmt.Sprintf("core: trusted state seal: %v", err))
	}
	written := false
	c.enclave.OCall(func() {
		written = writeSealedState(c.fs, sealed) == nil
	})
	if written {
		c.counter.Increment(fp)
	}
}

// writeSealedState installs a new TRUSTED.bin via tmp-write + atomic
// rename. The live blob is never truncated in place: a crash mid-seal
// (even one that tears the write) leaves either the old complete blob or
// the new one on disk, never a half-written blob that recovery would
// refuse as tampering.
func writeSealedState(fs vfs.FS, sealed []byte) error {
	const tmp = trustedStateName + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Append(sealed); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fs.Rename(tmp, trustedStateName)
}

// recoverTrustedState validates a recovered store against the sealed state
// and the monotonic counter, detecting tampering and rollback.
func (c *Store) recoverTrustedState(requireClean bool) error {
	replayDigest, replayCount := c.engine.WALReplayDigest()
	if !c.fs.Exists(trustedStateName) {
		if len(c.engine.Runs()) > 0 || replayCount > 0 {
			return fmt.Errorf("%w: data files exist without sealed state", ErrStateMissing)
		}
		return nil // fresh store
	}
	var sealed []byte
	var rerr error
	c.enclave.OCall(func() {
		f, err := c.fs.Open(trustedStateName)
		if err != nil {
			rerr = err
			return
		}
		defer f.Close()
		sealed = make([]byte, f.Size())
		if _, err := f.ReadAt(sealed, 0); err != nil && len(sealed) > 0 {
			rerr = err
		}
	})
	if rerr != nil {
		return fmt.Errorf("core: trusted state read: %w", rerr)
	}
	blob, err := sgx.Unseal(c.sealKey, sealed)
	if err != nil {
		return fmt.Errorf("%w: unseal: %v", ErrAuthFailed, err)
	}
	var st trustedState
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("%w: trusted state decode: %v", ErrAuthFailed, err)
	}
	// Rollback check: the sealed counter value must not lag the trusted
	// hardware counter, and the bound fingerprint must match.
	fp := stateFingerprint(st.Digests, st.WALDigest, st.Epoch)
	if err := c.counter.Verify(st.Counter, fp); err != nil {
		return fmt.Errorf("%w: %v", ErrRollback, err)
	}
	// The engine's recovered runs must match a trusted digest set, and the
	// matching trusted WAL digest must be a prefix of the recovered chain.
	// The seal carries up to two acceptable states: the Current triple,
	// and — if a version install was staged when the seal was written —
	// the Pending post-install state. A crash inside the install window
	// (manifest renamed, post-install seal not yet durable) recovers to a
	// directory matching Pending; anything matching neither is rollback or
	// tampering.
	engineRuns := c.engine.Runs()
	try := func(digests map[uint64]runDigest, walDigest hashutil.Hash) (int, error) {
		if len(engineRuns) != len(digests) {
			return 0, fmt.Errorf("%w: %d runs recovered, %d digested", ErrRollback, len(engineRuns), len(digests))
		}
		for _, r := range engineRuns {
			if _, ok := digests[r.ID]; !ok {
				return 0, fmt.Errorf("%w: run %d not in sealed state", ErrRollback, r.ID)
			}
		}
		extra, err := c.engine.VerifyWALPrefix(walDigest)
		if err != nil {
			return 0, fmt.Errorf("%w: %v", ErrRollback, err)
		}
		return extra, nil
	}
	extra, err := try(st.Digests, st.WALDigest)
	if err != nil && st.Pending != nil {
		if pExtra, pErr := try(st.Pending.Digests, st.Pending.WALDigest); pErr == nil {
			// The staged install landed before the crash: adopt it.
			st.Digests = st.Pending.Digests
			st.WALDigest = st.Pending.WALDigest
			st.WALAppends = st.Pending.WALAppends
			if st.Pending.LastTs > st.LastTs {
				st.LastTs = st.Pending.LastTs
			}
			extra, err = pExtra, nil
		}
	}
	if err != nil {
		return err
	}
	if requireClean {
		if extra > 0 {
			return fmt.Errorf("%w: %d unverified WAL records after sealed state", ErrRollback, extra)
		}
		if torn := c.engine.WALTornRecords(); torn > 0 {
			return fmt.Errorf("%w: %d WAL records dropped from an uncommitted group", ErrRollback, torn)
		}
	}
	c.mu.Lock()
	c.snap.Store(&trustedView{digests: st.Digests})
	c.walDigest = replayDigest
	// All live logs (any recovered frozen ones included) feed the next
	// freeze together, so the "since last freeze" chain starts as the full
	// replayed chain.
	c.freshDigest = replayDigest
	c.walAppends = st.WALAppends + uint64(extra)
	// Everything replayed is on disk: the durable frontier starts at the
	// recovered tip (no groups are in flight).
	c.durableDigest = replayDigest
	c.durableFresh = replayDigest
	c.durableAppends = c.walAppends
	c.appendsAtBump = c.walAppends
	c.unverifiedReplay = extra
	c.mu.Unlock()
	c.epoch.Store(st.Epoch)
	c.engine.EnsureTs(st.LastTs)
	return nil
}

// ReplEpoch returns the store's sealed replication epoch — the fencing
// token attested into every checkpoint header and shipped group frame.
func (c *Store) ReplEpoch() uint64 { return c.epoch.Load() }

// Promote fences this store's replication history: it drains the commit
// pipeline (so the durable frontier covers every applied group), bumps the
// replication epoch, and seals the new epoch bound to the monotonic
// counter. Frames from the previous epoch are rejected by any follower of
// this store from here on, and a zombie leader of the OLD epoch can no
// longer feed a follower that adopted the new one. Returns the new epoch.
func (c *Store) Promote() (uint64, error) {
	var err error
	c.enclave.ECall(func() { err = c.engine.Sync(nil) })
	if err != nil {
		return c.epoch.Load(), fmt.Errorf("core: promote drain: %w", err)
	}
	e := c.epoch.Add(1)
	c.SealState()
	return e, nil
}

// UnverifiedReplay reports how many WAL records were recovered beyond the
// last sealed state (the §5.6.1 rollback window).
func (c *Store) UnverifiedReplay() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.unverifiedReplay
}

// ---------------------------------------------------------------------------
// Operations (each wrapped in an ECall: the trusted application calls into
// the enclave, §6.1)

// Put writes a key-value record, returning its trusted timestamp.
func (c *Store) Put(key, value []byte) (uint64, error) { return c.PutCtx(nil, key, value) }

// PutCtx is Put with commit-queue cancellation: a context cancelled while
// the write still waits in the group-commit queue withdraws it.
func (c *Store) PutCtx(ctx context.Context, key, value []byte) (uint64, error) {
	var ts uint64
	var err error
	c.enclave.ECall(func() { ts, err = c.engine.PutCtx(ctx, key, value) })
	return ts, err
}

// Delete writes a tombstone.
func (c *Store) Delete(key []byte) (uint64, error) { return c.DeleteCtx(nil, key) }

// DeleteCtx is Delete with commit-queue cancellation.
func (c *Store) DeleteCtx(ctx context.Context, key []byte) (uint64, error) {
	var ts uint64
	var err error
	c.enclave.ECall(func() { ts, err = c.engine.DeleteCtx(ctx, key) })
	return ts, err
}

// Sync is the durability barrier: it returns once every commit accepted
// before the call — synchronous or asynchronous — is fsynced to the
// untrusted log.
func (c *Store) Sync(ctx context.Context) error {
	var err error
	c.enclave.ECall(func() { err = c.engine.Sync(ctx) })
	return err
}

// Get returns the latest verified value of key.
func (c *Store) Get(key []byte) (Result, error) { return c.GetAt(key, record.MaxTs) }

// GetAt returns the newest verified value with Ts ≤ tsq (the paper's
// GET(k, tsq)).
func (c *Store) GetAt(key []byte, tsq uint64) (Result, error) {
	return c.GetAtCtx(nil, key, tsq)
}

// GetAtCtx is GetAt with cancellation (checked before the enclave call —
// a point lookup is a single short ECall). It acquires an ephemeral read
// view — the same pinned (runs, digests) unit that backs Snapshot — runs
// the verified GET protocol against it, and releases it: point reads,
// iterators and snapshots share one implementation.
func (c *Store) GetAtCtx(ctx context.Context, key []byte, tsq uint64) (Result, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	var start time.Time
	if c.rec != nil {
		start = time.Now()
	}
	var res Result
	var err error
	c.enclave.ECall(func() {
		var v *readView
		v, err = c.acquireEphemeralView()
		if err != nil {
			return
		}
		defer v.release()
		res, err = v.getAt(key, tsq)
	})
	if c.rec != nil && err == nil {
		c.rec.GetE2E.ObserveSince(start)
	}
	return res, err
}

// maxRetries bounds view-acquisition retries when a concurrent compaction
// installs between the run snapshot and the digest load.
const maxRetries = 4

// resultFrom converts a verified record (tombstones become not-found).
func resultFrom(rec record.Record) Result {
	if rec.Kind == record.KindDelete {
		return Result{}
	}
	return Result{
		Key:   append([]byte(nil), rec.Key...),
		Value: append([]byte(nil), rec.Value...),
		Ts:    rec.Ts,
		Found: true,
	}
}

// Scan returns the latest verified value of every key in [start, end]
// (§5.4: completeness-verified range query).
func (c *Store) Scan(start, end []byte) ([]Result, error) {
	return c.ScanAt(start, end, record.MaxTs)
}

// ScanAt is Scan at a historical timestamp (the paper's SCAN(k1, k2, tsq)),
// rebased on the streaming verified iterator: the range is fetched and
// verified chunk by chunk, then materialized for the caller.
func (c *Store) ScanAt(start, end []byte, tsq uint64) ([]Result, error) {
	return scanAll(c.IterAt(start, end, tsq))
}

// Flush forces the memtable to disk through the authenticated flush path.
func (c *Store) Flush() error {
	var err error
	c.enclave.ECall(func() { err = c.engine.Flush() })
	return err
}

// Compact triggers an authenticated COMPACTION of level lvl into lvl+1.
func (c *Store) Compact(lvl int) error {
	var err error
	c.enclave.ECall(func() { err = c.engine.Compact(lvl) })
	return err
}

// BulkLoad populates an empty store, building the digest forest in one
// authenticated pass (YCSB load phase at scale).
func (c *Store) BulkLoad(recs []record.Record) error {
	var err error
	c.enclave.ECall(func() { err = c.engine.BulkLoad(recs) })
	return err
}

// Engine exposes the underlying engine (benchmarks and tests).
func (c *Store) Engine() *lsm.Store { return c.engine }

// Recorder returns the shard's observability recorder (nil when
// instrumentation is off); replication tailers and servers file their
// events through it.
func (c *Store) Recorder() *obs.Recorder { return c.rec }

// Enclave exposes the simulated enclave (stats inspection).
func (c *Store) Enclave() *sgx.Enclave { return c.enclave }

// DigestInfo is a read-only view of one run's trusted digest.
type DigestInfo struct {
	Root      string
	NumLeaves int
}

// RunDigests returns a snapshot of the trusted digest forest (run ID →
// root/leaf-count), primarily for tests and introspection tooling.
func (c *Store) RunDigests() map[uint64]DigestInfo {
	digs := c.snapshotDigests()
	out := make(map[uint64]DigestInfo, len(digs))
	for id, d := range digs {
		out[id] = DigestInfo{Root: d.Root.String(), NumLeaves: d.NumLeaves}
	}
	return out
}

// Close seals the final state and shuts the store down. The commit
// pipeline is drained first so the seal covers every accepted commit —
// after a clean Close, recovery finds zero unverified WAL records.
func (c *Store) Close() error {
	_ = c.engine.Sync(nil) // best effort: already-closed/failed pipelines still seal the durable frontier
	c.commitState()
	return c.engine.Close()
}
