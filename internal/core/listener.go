package core

import (
	"fmt"
	"sync"

	"elsm/internal/hashutil"
	"elsm/internal/lsm"
	"elsm/internal/record"
)

// authListener implements the engine's EventListener callbacks with the
// authenticated-compaction logic of Figure 4: it rebuilds a Merkle tree per
// input run from the filtered record stream, checks each against the
// trusted in-enclave root, builds the output tree, embeds per-record proofs
// into output files, and commits the new digests only after the engine has
// installed the new version.
//
// The engine runs flush/compaction jobs on a worker POOL, so several jobs'
// Merkle rebuilds are live at once. Each job's staging state lives in its
// own compactionJob context, keyed by the job's unique output-run ID — two
// concurrent rebuilds can never interleave their trees. The engine
// serializes the verify→install→commit window (OnCompactionEnd through
// OnVersionCommitted / OnCompactionAbort) on its install lock, so at most
// one staged transition seal exists at a time; Store.sealStagedBy records
// which job staged it so only that job's abort can retract it. State shared
// with the commit path (the WAL digest chains, bump bookkeeping) lives in
// the Store under c.mu.
type authListener struct {
	c *Store

	// In-flight compaction rebuild contexts, keyed by
	// CompactionInfo.OutputRun (engine-unique; MemtableRunID 0 is never an
	// output).
	jobsMu sync.Mutex
	jobs   map[uint64]*compactionJob

	// walSwapPending marks that the engine rotated the WAL (frozen logs
	// deleted); the walDigest swap is deferred so OnVersionInstalled can
	// apply it ATOMICALLY with the digest-forest swap — a concurrent
	// commit leader's periodic seal must never observe the new WAL chain
	// paired with the old forest. OnWALRotated and OnVersionInstalled both
	// run inside the engine's serialized install window, so a single slot
	// (set and consumed within one window) needs no extra lock.
	walSwapPending bool
}

// compactionJob is one maintenance job's Merkle staging state. Begin,
// Filter and OnCompactionEnd run on the job's own worker goroutine;
// OnTableFileCreated may fire CONCURRENTLY for distinct files of the same
// job (the engine's parallel flushers), all after the merge stream is
// complete — finalizeOnce builds the whole-stream output tree exactly once
// and proofFor is read-only thereafter.
type compactionJob struct {
	info      lsm.CompactionInfo
	inputs    map[uint64]*treeBuilder
	output    *treeBuilder
	streamErr error

	finalizeOnce sync.Once
	finalized    *outputTree
}

// finalize builds (once) and returns the finalized output tree.
func (j *compactionJob) finalize() *outputTree {
	j.finalizeOnce.Do(func() { j.finalized = finishOutput(j.output) })
	return j.finalized
}

// job returns the staging context for the given output run, or nil.
func (l *authListener) job(runID uint64) *compactionJob {
	l.jobsMu.Lock()
	defer l.jobsMu.Unlock()
	return l.jobs[runID]
}

// dropJob discards a job's staging context.
func (l *authListener) dropJob(runID uint64) {
	l.jobsMu.Lock()
	delete(l.jobs, runID)
	l.jobsMu.Unlock()
}

var _ lsm.EventListener = (*authListener)(nil)

// OnWALAppend extends the enclave's WAL digest chain (§5.3 step w1). The
// periodic counter bump moved to OnGroupCommit: it now fires once per
// durably-synced commit group, never in the middle of one — which both
// amortizes the bump across every commit that joined the group and
// guarantees the sealed state always describes a group-aligned, durable
// WAL prefix.
func (l *authListener) OnWALAppend(rec record.Record) {
	c := l.c
	c.mu.Lock()
	c.walDigest = hashutil.WALLink(c.walDigest, byte(rec.Kind), rec.Key, rec.Ts, rec.Value)
	c.freshDigest = hashutil.WALLink(c.freshDigest, byte(rec.Kind), rec.Key, rec.Ts, rec.Value)
	c.walAppends++
	c.mu.Unlock()
}

// OnGroupAppended records the WAL chain values at a group boundary. The
// pipelined committer appends group N+1 while group N's fsync is still in
// flight, so the chain tip (walDigest) runs AHEAD of stable storage; the
// mark queued here is promoted to the durable frontier by the group's
// matching OnGroupCommit, and only the durable frontier is ever sealed —
// a counter bump binding records an fsync has not confirmed would, after a
// crash, demand a WAL prefix that no longer exists and brick the store as a
// false rollback. Each mark carries the chain in BOTH bases — the full
// chain spanning frozen+active logs, and the fresh chain over the active
// log alone — because a flush install between append and durability
// promotion deletes the frozen logs and rebases the trusted chain onto the
// fresh one (OnVersionInstalled rewrites pending marks accordingly).
func (l *authListener) OnGroupAppended() {
	c := l.c
	c.mu.Lock()
	c.groupMarks = append(c.groupMarks, walMark{
		digest:  c.walDigest,
		fresh:   c.freshDigest,
		appends: c.walAppends,
	})
	c.mu.Unlock()
}

// OnGroupCommit promotes the group's appended chain mark to the durable
// frontier, then pins the dataset state to the monotonic counter (§5.6.1)
// once the configured interval of appends has durably committed — at most
// one bump per group, paid after the group is durable.
func (l *authListener) OnGroupCommit(n int) {
	c := l.c
	c.mu.Lock()
	if len(c.groupMarks) > 0 {
		mark := c.groupMarks[0]
		c.groupMarks = c.groupMarks[1:]
		c.durableDigest = mark.digest
		c.durableFresh = mark.fresh
		c.durableAppends = mark.appends
	}
	bump := c.counterInterval > 0 && c.durableAppends-c.appendsAtBump >= uint64(c.counterInterval)
	if bump {
		c.appendsAtBump = c.durableAppends
	}
	c.mu.Unlock()
	if bump {
		c.commitState()
	}
}

// OnGroupAbandoned consumes (and discards) the mark of a group whose fsync
// failed: the durable frontier stays where it was — conservatively valid,
// since a chain prefix once durable stays durable — but the mark MUST
// leave the queue, or the next successful group's OnGroupCommit would
// promote this group's stale mark and every later promotion would lag one
// group behind (and a pre-rotation stale mark could later seal a digest
// from a deleted log's chain, bricking recovery as a false rollback).
func (l *authListener) OnGroupAbandoned() {
	c := l.c
	c.mu.Lock()
	if len(c.groupMarks) > 0 {
		c.groupMarks = c.groupMarks[1:]
	}
	c.mu.Unlock()
}

// OnMemtableFrozen marks a flush generation boundary: the active WAL was
// rotated to a frozen log, records appended from now on land in a fresh
// active log, so the chain over that log alone restarts from zero. The
// full chain (walDigest) keeps spanning frozen + active logs until the
// flush installs. The engine drains the commit pipeline before any freeze,
// so no group marks are in flight here and the durable fresh frontier
// restarts at zero with the chain itself.
func (l *authListener) OnMemtableFrozen() {
	c := l.c
	c.mu.Lock()
	c.freshDigest = hashutil.Zero
	c.durableFresh = hashutil.Zero
	c.mu.Unlock()
}

// OnWALRotated fires at flush install, after the frozen logs were deleted:
// the live WAL is now only the active log, whose chain-from-zero is
// freshDigest. The swap itself is deferred to OnVersionInstalled (which
// the engine invokes immediately after, still under its lock) so the WAL
// chain and the digest forest change in one c.mu critical section — a
// counter bump sealing in between would otherwise fingerprint a torn
// state.
func (l *authListener) OnWALRotated() {
	l.walSwapPending = true
}

// OnCompactionBegin allocates the job's staging context: per-run input
// reconstruction trees and the output tree. It must NOT touch any staged
// transition seal — a concurrent job may be mid-install with a live one;
// abandoned stagings are retracted by OnCompactionAbort instead.
func (l *authListener) OnCompactionBegin(info lsm.CompactionInfo) {
	j := &compactionJob{
		info:   info,
		inputs: make(map[uint64]*treeBuilder, len(info.InputRuns)),
		output: newTreeBuilder(true),
	}
	for _, id := range info.InputRuns {
		j.inputs[id] = newTreeBuilder(false)
	}
	l.jobsMu.Lock()
	if l.jobs == nil {
		l.jobs = make(map[uint64]*compactionJob)
	}
	l.jobs[info.OutputRun] = j
	l.jobsMu.Unlock()
}

// Filter ingests every record of the merge stream: records from untrusted
// input runs feed that run's reconstruction tree (step a of §5.5.2); kept
// records feed the output tree (step b). Memtable records are trusted (L0
// lives in the enclave) and only feed the output side.
func (l *authListener) Filter(info lsm.CompactionInfo, srcRun uint64, rec record.Record, dropped bool) {
	j := l.job(info.OutputRun)
	if j == nil || j.streamErr != nil {
		return
	}
	if srcRun != lsm.MemtableRunID {
		if b, ok := j.inputs[srcRun]; ok {
			if err := b.Add(rec); err != nil {
				j.streamErr = err
				return
			}
		} else {
			j.streamErr = fmt.Errorf("core: record from undeclared input run %d", srcRun)
			return
		}
	}
	if !dropped {
		if err := j.output.Add(rec); err != nil {
			j.streamErr = err
		}
	}
}

// OnTableFileCreated embeds each output record's Merkle proof (step c of
// §5.5.2). The output tree is finalized exactly once — the engine only
// creates files after the merge stream is complete, but may create several
// files of one job concurrently; proofFor is read-only after finalize.
func (l *authListener) OnTableFileCreated(info lsm.TableFileInfo, recs []record.Record) ([]record.Record, error) {
	j := l.job(info.RunID)
	if j == nil {
		return nil, fmt.Errorf("core: OnTableFileCreated outside a compaction")
	}
	if j.streamErr != nil {
		return nil, j.streamErr
	}
	ft := j.finalize()
	out := make([]record.Record, len(recs))
	for i, rec := range recs {
		p, err := ft.proofFor(rec)
		if err != nil {
			return nil, err
		}
		rec.Proof = p.Encode()
		out[i] = rec
	}
	return out, nil
}

// OnCompactionEnd performs the authenticated-compaction input check
// (Figure 4 lines 31-33): every input run's reconstructed root must equal
// the trusted root stored in the enclave, otherwise the compaction aborts
// and the engine discards its output. The engine calls it under its
// install lock, so exactly one job stages a transition seal at a time.
func (l *authListener) OnCompactionEnd(info lsm.CompactionInfo) error {
	j := l.job(info.OutputRun)
	if j == nil {
		return fmt.Errorf("core: OnCompactionEnd outside a compaction")
	}
	if j.streamErr != nil {
		return j.streamErr
	}
	c := l.c
	digs := c.snapshotDigests()
	for _, id := range info.InputRuns {
		trusted, ok := digs[id]
		if !ok {
			return fmt.Errorf("core: no trusted digest for input run %d", id)
		}
		_, got := j.inputs[id].Finish()
		if got.Root != trusted.Root || got.NumLeaves != trusted.NumLeaves {
			return fmt.Errorf("%w: input run %d root mismatch (got %s want %s)",
				ErrCompactionInput, id, got.Root, trusted.Root)
		}
	}
	// finalize is a no-op if parallel flushers already built the tree; for a
	// compaction that produced no output (everything dropped) it runs here.
	ft := j.finalize()

	// Stage the post-install state and write a TRANSITION seal before the
	// engine makes the install durable (manifest rename). From here until
	// OnVersionInstalled clears the staging, every sealed blob names both
	// the current state and this pending one, so a crash on either side of
	// the rename recovers cleanly: before it the directory matches
	// Current, after it the directory matches Pending. Without this the
	// window between the manifest rename and the post-install seal bricks
	// the store as a false rollback.
	next := make(map[uint64]runDigest, len(digs)+1)
	for id, d := range digs {
		next[id] = d
	}
	for _, id := range info.InputRuns {
		delete(next, id)
	}
	next[info.OutputRun] = ft.digest
	c.mu.Lock()
	wd, wa := c.durableDigest, c.durableAppends
	if info.MemtableInput {
		// A flush install deletes the frozen logs and rebases the chain
		// onto the active log alone: the post-install basis is the fresh
		// chain's durable frontier.
		wd = c.durableFresh
	}
	c.pendingSeal = &pendingState{
		Digests:    next,
		WALDigest:  wd,
		WALAppends: wa,
		LastTs:     c.engine.AppliedTs(),
	}
	c.sealStagedBy = info.OutputRun
	c.mu.Unlock()
	c.commitState()
	return nil
}

// OnVersionInstalled commits the staged digests: input runs are forgotten,
// the output run's digest takes effect, and any pending WAL-chain swap
// (flush install) is applied in the SAME c.mu critical section — one
// copy-on-write snapshot swap, fast enough to run under the engine lock so
// readers never observe a version whose digest is missing, and atomic so a
// concurrent seal always fingerprints a coherent (forest, WAL chain) pair.
func (l *authListener) OnVersionInstalled(info lsm.CompactionInfo) {
	c := l.c
	j := l.job(info.OutputRun)
	c.mu.Lock()
	if l.walSwapPending {
		// The frozen logs are gone: the trusted chain rebases onto the
		// active log's chain. The tip, the durable frontier and any group
		// marks still awaiting durability promotion (groups appended to
		// the active log after the freeze, fsync still in flight) all
		// switch to their fresh-basis values.
		c.walDigest = c.freshDigest
		c.durableDigest = c.durableFresh
		for i := range c.groupMarks {
			c.groupMarks[i].digest = c.groupMarks[i].fresh
		}
		l.walSwapPending = false
	}
	if j != nil {
		old := c.snap.Load().digests
		next := make(map[uint64]runDigest, len(old)+1)
		for id, d := range old {
			next[id] = d
		}
		for _, id := range info.InputRuns {
			delete(next, id)
		}
		next[info.OutputRun] = j.finalized.digest
		c.snap.Store(&trustedView{digests: next})
	}
	// The install is durable: the staged transition is no longer needed —
	// OnVersionCommitted reseals with the new state as Current. The install
	// window is serialized by the engine, so the staged seal (if any) is
	// this job's own.
	c.pendingSeal = nil
	c.sealStagedBy = 0
	c.mu.Unlock()
	l.dropJob(info.OutputRun)
}

// OnVersionCommitted pins the new dataset state to the monotonic counter
// and seals it (§5.6.1) — the slow, durable half of the install, run by
// the engine WITHOUT its lock so readers and writers are not stalled by
// the seal write.
func (l *authListener) OnVersionCommitted(info lsm.CompactionInfo) {
	l.c.commitState()
}

// OnCompactionAbort discards a failed job's staging context. If THIS job
// had already staged a transition seal (OnCompactionEnd succeeded but the
// install failed), the staged state can never match a recovered directory
// — the job's output files were removed — so retract it; a transition
// staged by a different, concurrently-installing job is left untouched
// (sealStagedBy keys the staging to its owner). The next seal write drops
// the retracted pending state from the sealed blob.
func (l *authListener) OnCompactionAbort(info lsm.CompactionInfo) {
	c := l.c
	c.mu.Lock()
	if c.sealStagedBy == info.OutputRun {
		c.pendingSeal = nil
		c.sealStagedBy = 0
	}
	c.mu.Unlock()
	l.dropJob(info.OutputRun)
}
