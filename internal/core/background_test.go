package core

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"elsm/internal/vfs"
)

// TestConcurrentWritesDuringCompaction is the write-path stress test for
// background maintenance: concurrent writers commit while flushes and
// level compactions are forced non-stop, with every writer verifying its
// own writes through the authenticated read path as it goes. At the end
// the committed timestamps must be exactly 1..N — dense and monotonic, no
// operation lost or duplicated — and every key must read back verified.
func TestConcurrentWritesDuringCompaction(t *testing.T) {
	cfg := smallCfg(nil)
	cfg.CounterInterval = 64
	cfg.KeepVersions = 1
	s := mustOpenP2(t, cfg)
	defer s.Close()

	const writers = 4
	const perWriter = 250

	// Hammer maintenance for the duration of the workload.
	stop := make(chan struct{})
	var maintWG sync.WaitGroup
	maintWG.Add(1)
	go func() {
		defer maintWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Flush(); err != nil {
				t.Errorf("forced flush: %v", err)
				return
			}
			if err := s.Compact(1); err != nil {
				t.Errorf("forced compaction: %v", err)
				return
			}
		}
	}()

	type ack struct {
		key, val string
		ts       uint64
	}
	acks := make([][]ack, writers)
	errCh := make(chan error, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%02d-%05d", w, i)
				val := fmt.Sprintf("v%02d-%05d", w, i)
				ts, err := s.Put([]byte(key), []byte(val))
				if err != nil {
					errCh <- fmt.Errorf("put %s: %w", key, err)
					return
				}
				acks[w] = append(acks[w], ack{key, val, ts})
				// Verified read-your-write while compactions churn.
				res, err := s.Get([]byte(key))
				if err != nil {
					errCh <- fmt.Errorf("verified get %s mid-compaction: %w", key, err)
					return
				}
				if !res.Found || string(res.Value) != val {
					errCh <- fmt.Errorf("get %s: found=%v val=%q want %q", key, res.Found, res.Value, val)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	maintWG.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	// Timestamp density: every op got exactly one ts from 1..N.
	var all []uint64
	for _, a := range acks {
		for _, x := range a {
			all = append(all, x.ts)
		}
	}
	total := writers * perWriter
	if len(all) != total {
		t.Fatalf("acked %d ops, want %d", len(all), total)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, ts := range all {
		if ts != uint64(i+1) {
			t.Fatalf("timestamp %d at position %d: ops lost or duplicated", ts, i)
		}
	}

	// Final verified read-back of everything.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, a := range acks {
		for _, x := range a {
			res, err := s.Get([]byte(x.key))
			if err != nil || !res.Found || string(res.Value) != x.val {
				t.Fatalf("final get %s: found=%v err=%v val=%q want %q",
					x.key, res.Found, err, res.Value, x.val)
			}
		}
	}
	if st := s.Engine().Stats(); st.Compactions == 0 {
		t.Fatal("stress test never compacted")
	}
}

// runIDSet extracts the set of run IDs currently in the version.
func runIDSet(s *Store) map[uint64]bool {
	out := map[uint64]bool{}
	for _, r := range s.Engine().Runs() {
		out[r.ID] = true
	}
	return out
}

// subsetOf reports whether every element of got is in want.
func subsetOf(got, want map[uint64]bool) bool {
	for id := range got {
		if !want[id] {
			return false
		}
	}
	return true
}

// TestCrashMidBackgroundCompaction kills the disk (vfs fault injection) at
// varying points inside a compaction — during output table writes, during
// the manifest swap — then "crashes" (abandons the store) and recovers on
// the surviving bytes. Recovery must observe either the old input runs or
// the new output run, never a mixture; every committed record must read
// back verified; and tamper detection must still fire on whichever run set
// survived.
func TestCrashMidBackgroundCompaction(t *testing.T) {
	for _, budget := range []int{1, 2, 4, 8, 16, 32, 1 << 30} {
		budget := budget
		t.Run(fmt.Sprintf("budget%d", budget), func(t *testing.T) {
			mem := vfs.NewMem()
			ffs := vfs.NewFault(mem)
			cfg := smallCfg(ffs)
			cfg.CounterInterval = 8
			cfg.KeepVersions = 1
			s := mustOpenP2(t, cfg)

			// Build a store with runs on two levels, settled.
			written := map[string]string{}
			for i := 0; i < 150; i++ {
				key := fmt.Sprintf("key%04d", i)
				val := fmt.Sprintf("val%04d", i)
				if _, err := s.Put([]byte(key), []byte(val)); err != nil {
					t.Fatal(err)
				}
				written[key] = val
			}
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
			oldRuns := runIDSet(s)
			if len(oldRuns) == 0 {
				t.Fatal("setup produced no runs")
			}

			// Die somewhere inside the compaction.
			ffs.Arm(budget)
			compactErr := s.Compact(1)
			ffs.Disarm()
			newRuns := runIDSet(s)

			// "Crash": abandon without Close, reopen the raw bytes.
			cfg2 := smallCfg(mem)
			cfg2.CounterInterval = 8
			cfg2.KeepVersions = 1
			cfg2.Platform = s.platform
			cfg2.Counter = s.counter
			s2, err := Open(cfg2)
			if err != nil {
				// Refusing recovery outright is acceptable (fail closed) —
				// but only when the compaction actually failed mid-way.
				if compactErr == nil {
					t.Fatalf("clean compaction but recovery refused: %v", err)
				}
				t.Logf("recovery refused (fail-closed) after %v", err)
				return
			}
			defer s2.Close()

			// Old runs or new run — never both.
			recovered := runIDSet(s2)
			if !subsetOf(recovered, oldRuns) && !subsetOf(recovered, newRuns) {
				t.Fatalf("recovered a mixed version: %v (old %v, new %v)",
					recovered, oldRuns, newRuns)
			}

			// Every committed record must verify on the surviving set.
			for key, val := range written {
				res, err := s2.Get([]byte(key))
				if err != nil {
					t.Fatalf("verified read after crash: %v", err)
				}
				if !res.Found || string(res.Value) != val {
					t.Fatalf("key %s: found=%v val=%q want %q", key, res.Found, res.Value, val)
				}
			}

			// Tamper detection must still fire on the surviving tables.
			names, _ := mem.List("0")
			if len(names) == 0 {
				t.Fatal("no surviving tables to tamper with")
			}
			for _, name := range names {
				f, err := mem.Open(name)
				if err != nil {
					continue
				}
				for off := int64(0); off < f.Size(); off += 64 {
					mem.Corrupt(name, off)
				}
			}
			detected := false
			for key := range written {
				res, err := s2.Get([]byte(key))
				if err != nil {
					detected = true
					break
				}
				if res.Found && res.Value != nil && written[key] != string(res.Value) {
					t.Fatalf("tampered value served without error for %s", key)
				}
			}
			if !detected {
				t.Fatal("no read error after corrupting every surviving table")
			}
		})
	}
}
