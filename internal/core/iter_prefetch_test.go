package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// stubChunks builds a fetchChunk serving the given chunks in order, with
// instrumentation: started receives the chunk index as each fetch begins,
// and inflight tracks concurrent fetches (the lookahead bound).
func stubChunks(chunks [][]Result, errAt int, started chan int, maxInflight *atomic.Int32) fetchChunk {
	var idx atomic.Int32
	var inflight atomic.Int32
	return func(cursor []byte) ([]Result, []byte, bool, error) {
		i := int(idx.Add(1)) - 1
		if cur := inflight.Add(1); cur > maxInflight.Load() {
			maxInflight.Store(cur)
		}
		defer inflight.Add(-1)
		if started != nil {
			started <- i
		}
		if i == errAt {
			return nil, nil, false, fmt.Errorf("%w: chunk %d forged", ErrAuthFailed, i)
		}
		if i >= len(chunks) {
			return nil, nil, true, nil
		}
		return chunks[i], []byte{byte(i + 1)}, i == len(chunks)-1, nil
	}
}

func mkChunks(n, per int) [][]Result {
	out := make([][]Result, n)
	v := 0
	for i := range out {
		for j := 0; j < per; j++ {
			out[i] = append(out[i], Result{
				Key:   []byte(fmt.Sprintf("k%04d", v)),
				Value: []byte(fmt.Sprintf("v%d", v)),
				Found: true,
			})
			v++
		}
	}
	return out
}

// TestChunkIterPrefetchesOneChunkAhead verifies both halves of the
// prefetch contract: chunk N+1 is fetched in the background while the
// consumer drains chunk N (overlap), and lookahead never exceeds one chunk
// (bound).
func TestChunkIterPrefetchesOneChunkAhead(t *testing.T) {
	chunks := mkChunks(4, 3)
	started := make(chan int, 16)
	var maxInflight atomic.Int32
	it := newChunkIter(nil, nil, stubChunks(chunks, -1, started, &maxInflight), nil)

	// First Next fetches chunk 0 synchronously and must kick off the
	// prefetch of chunk 1 without any further consumer demand.
	if !it.Next() {
		t.Fatal("Next = false on first chunk")
	}
	waitIdx := func(want int) {
		t.Helper()
		select {
		case got := <-started:
			if got != want {
				t.Fatalf("fetch order: got chunk %d, want %d", got, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("fetch of chunk %d never started", want)
		}
	}
	waitIdx(0)
	waitIdx(1) // the prefetch — before the consumer asked for chunk 1

	n := 1
	for it.Next() {
		n++
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Fatalf("streamed %d results, want 12", n)
	}
	if got := maxInflight.Load(); got > 1 {
		t.Fatalf("lookahead bound broken: %d fetches in flight", got)
	}
}

// TestChunkIterResultsUnchangedByPrefetch compares the prefetching
// iterator's output against the chunk contents directly.
func TestChunkIterResultsUnchangedByPrefetch(t *testing.T) {
	chunks := mkChunks(5, 4)
	var maxInflight atomic.Int32
	it := newChunkIter(nil, nil, stubChunks(chunks, -1, nil, &maxInflight), nil)
	var got []Result
	for it.Next() {
		got = append(got, it.Result())
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	var want []Result
	for _, c := range chunks {
		want = append(want, c...)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i].Key) != string(want[i].Key) || string(got[i].Value) != string(want[i].Value) {
			t.Fatalf("result %d = %q/%q, want %q/%q", i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
		}
	}
}

// TestChunkIterCloseDrainsPrefetchedError closes the iterator while the
// prefetched chunk holds a verification failure the consumer never
// reached: Close must still surface it.
func TestChunkIterCloseDrainsPrefetchedError(t *testing.T) {
	chunks := mkChunks(3, 2)
	started := make(chan int, 16)
	var maxInflight atomic.Int32
	it := newChunkIter(nil, nil, stubChunks(chunks, 1, started, &maxInflight), nil)
	if !it.Next() {
		t.Fatal("Next = false on first chunk")
	}
	// Wait for the poisoned prefetch of chunk 1 to be in flight, then
	// abandon the stream without consuming it.
	<-started // chunk 0
	<-started // chunk 1 (errAt)
	if err := it.Close(); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("Close = %v, want the prefetched chunk's ErrAuthFailed", err)
	}
}

// TestChunkIterPrefetchErrorStopsStream consumes into the poisoned chunk:
// Next must return false and Err/Close must report it.
func TestChunkIterPrefetchErrorStopsStream(t *testing.T) {
	chunks := mkChunks(4, 2)
	var maxInflight atomic.Int32
	it := newChunkIter(nil, nil, stubChunks(chunks, 2, nil, &maxInflight), nil)
	n := 0
	for it.Next() {
		n++
	}
	if n != 4 { // chunks 0 and 1 delivered, chunk 2 poisoned
		t.Fatalf("streamed %d results before the poisoned chunk, want 4", n)
	}
	if err := it.Err(); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("Err = %v, want ErrAuthFailed", err)
	}
	if err := it.Close(); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("Close = %v, want ErrAuthFailed", err)
	}
}
