// Package core implements eLSM (§5 of the paper): the authenticated
// LSM-tree layer that runs inside the enclave and protects all data placed
// outside it. It maintains a forest of Merkle trees — one per sorted run —
// whose roots live in enclave memory, embeds per-record Merkle proofs into
// SSTable records during authenticated COMPACTION, and verifies every
// GET/SCAN result for integrity, freshness and completeness with early-stop
// proofs (Theorem 5.3, Lemma 5.4).
//
// The layer attaches to the LSM engine exclusively through the engine's
// EventListener callbacks — no engine code change — which is the paper's
// "add-on middleware" contribution (§5.5.3).
package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"elsm/internal/hashutil"
	"elsm/internal/merkle"
	"elsm/internal/record"
)

// ChainEntry is the header of one same-key version that is newer than the
// record carrying the proof. Presenting any stale version forces these
// headers into the proof, which is how the verifier detects freshness
// violations (§5.3.1 Case 1b: "the fresher record included in the neighbors
// is exposed to the enclave").
type ChainEntry struct {
	Ts        uint64
	RecDigest hashutil.Hash
}

// EmbeddedProof is the per-record authentication proof stored alongside the
// record in its SSTable (§5.2: 〈k, v ‖ π〉). It localizes the record within
// its run's Merkle tree and within its key's version hash chain.
type EmbeddedProof struct {
	// LeafIndex is the position of this record's key among the run's
	// distinct keys (the Merkle leaf order).
	LeafIndex uint32
	// Newer holds the headers of same-key versions newer than this
	// record, ordered oldest-to-newest (ascending Ts). Empty for the
	// newest version.
	Newer []ChainEntry
	// Inner is the hash-chain value over the same-key versions older than
	// this record; zero when this record is the oldest version.
	Inner hashutil.Hash
	// Path is the Merkle authentication path from the leaf to the run
	// root.
	Path []merkle.PathNode
}

// Proof encoding errors.
var ErrBadProof = errors.New("core: malformed embedded proof")

// maxProofList bounds decoded list lengths against corrupt/hostile input.
const maxProofList = 1 << 20

// Encode serializes the proof.
func (p *EmbeddedProof) Encode() []byte {
	n := 4 + 2 + len(p.Newer)*(8+hashutil.Size) + hashutil.Size + 2 + len(p.Path)*(1+hashutil.Size)
	out := make([]byte, 0, n)
	out = binary.BigEndian.AppendUint32(out, p.LeafIndex)
	out = binary.BigEndian.AppendUint16(out, uint16(len(p.Newer)))
	for _, e := range p.Newer {
		out = binary.BigEndian.AppendUint64(out, e.Ts)
		out = append(out, e.RecDigest[:]...)
	}
	out = append(out, p.Inner[:]...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(p.Path)))
	for _, pn := range p.Path {
		side := byte(0)
		if pn.Left {
			side = 1
		}
		out = append(out, side)
		out = append(out, pn.Hash[:]...)
	}
	return out
}

// DecodeProof parses a serialized proof.
func DecodeProof(data []byte) (*EmbeddedProof, error) {
	p := &EmbeddedProof{}
	if len(data) < 6 {
		return nil, fmt.Errorf("%w: too short", ErrBadProof)
	}
	p.LeafIndex = binary.BigEndian.Uint32(data[:4])
	nNewer := int(binary.BigEndian.Uint16(data[4:6]))
	off := 6
	if nNewer > maxProofList || len(data) < off+nNewer*(8+hashutil.Size)+hashutil.Size+2 {
		return nil, fmt.Errorf("%w: truncated chain", ErrBadProof)
	}
	for i := 0; i < nNewer; i++ {
		var e ChainEntry
		e.Ts = binary.BigEndian.Uint64(data[off : off+8])
		off += 8
		copy(e.RecDigest[:], data[off:off+hashutil.Size])
		off += hashutil.Size
		p.Newer = append(p.Newer, e)
	}
	copy(p.Inner[:], data[off:off+hashutil.Size])
	off += hashutil.Size
	nPath := int(binary.BigEndian.Uint16(data[off : off+2]))
	off += 2
	if nPath > maxProofList || len(data) != off+nPath*(1+hashutil.Size) {
		return nil, fmt.Errorf("%w: truncated path", ErrBadProof)
	}
	for i := 0; i < nPath; i++ {
		var pn merkle.PathNode
		pn.Left = data[off] == 1
		off++
		copy(pn.Hash[:], data[off:off+hashutil.Size])
		off += hashutil.Size
		p.Path = append(p.Path, pn)
	}
	return p, nil
}

// ReconstructLeaf recomputes the Merkle leaf hash that rec must hash to
// under this proof: the record digest is chained with the older-version
// inner hash, then with every newer-version header, then bound to the key.
func (p *EmbeddedProof) ReconstructLeaf(rec record.Record) hashutil.Hash {
	h := hashutil.ChainLink(rec.Ts, rec.Digest(), p.Inner)
	for _, e := range p.Newer {
		h = hashutil.ChainLink(e.Ts, e.RecDigest, h)
	}
	return hashutil.LeafHash(rec.Key, h)
}

// LeftSiblings extracts the left-side hashes of the path in bottom-up
// order. For the first leaf of a contiguous range these are exactly the
// left-boundary hashes of the range proof — the property that lets the
// untrusted host assemble range proofs purely from embedded per-record
// proofs (§5.2 "the proof of a query can be naturally constructed from the
// Merkle proofs embedded in the data records").
func (p *EmbeddedProof) LeftSiblings() []hashutil.Hash {
	var out []hashutil.Hash
	for _, pn := range p.Path {
		if pn.Left {
			out = append(out, pn.Hash)
		}
	}
	return out
}

// RightSiblings extracts the right-side hashes of the path in bottom-up
// order (the right-boundary hashes of a range proof ending at this leaf).
func (p *EmbeddedProof) RightSiblings() []hashutil.Hash {
	var out []hashutil.Hash
	for _, pn := range p.Path {
		if !pn.Left {
			out = append(out, pn.Hash)
		}
	}
	return out
}
