package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"elsm/internal/lsm"
	"elsm/internal/sgx"
	"elsm/internal/vfs"
)

// TestGroupCommitConcurrentWritersStress drives the pipeline from many
// goroutines mixing Put, Delete and ApplyBatch, then checks the core
// commit invariants: every commit got its own timestamp, timestamps are
// strictly monotonic in commit order per caller, the global timestamp
// range is dense (no lost or duplicated records), and every key reads back
// the value of its highest-timestamped write — verified.
func TestGroupCommitConcurrentWritersStress(t *testing.T) {
	cfg := smallCfg(nil)
	cfg.MemtableSize = 1 << 20 // keep everything in one memtable: count checks stay exact
	s := mustOpenP2(t, cfg)
	defer s.Close()

	const writers = 8
	const opsPerWriter = 60 // each op is 1 Put, 1 Delete or a 4-record batch

	type write struct {
		key string
		val string
		ts  uint64
		del bool
	}
	results := make([][]write, writers)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var prev uint64
			for i := 0; i < opsPerWriter; i++ {
				key := fmt.Sprintf("w%02d-k%03d", w, i%20)
				val := fmt.Sprintf("w%d-i%d", w, i)
				var ts uint64
				var err error
				switch i % 3 {
				case 0:
					ts, err = s.Put([]byte(key), []byte(val))
					results[w] = append(results[w], write{key, val, 0, false})
				case 1:
					ts, err = s.Delete([]byte(key))
					results[w] = append(results[w], write{key, "", 0, true})
				default:
					ops := make([]BatchOp, 4)
					for j := range ops {
						bk := fmt.Sprintf("w%02d-b%03d", w, (i+j)%20)
						bv := fmt.Sprintf("w%d-i%d-j%d", w, i, j)
						ops[j] = BatchOp{Key: []byte(bk), Value: []byte(bv)}
						results[w] = append(results[w], write{bk, bv, 0, false})
					}
					ts, err = s.ApplyBatch(ops)
				}
				if err != nil {
					errs <- fmt.Errorf("writer %d op %d: %w", w, i, err)
					return
				}
				if ts <= prev {
					errs <- fmt.Errorf("writer %d op %d: commit ts %d not after %d", w, i, ts, prev)
					return
				}
				// Tag this op's writes with their timestamps (a batch's
				// records end at its commit ts, contiguously).
				n := 1
				if i%3 == 2 {
					n = 4
				}
				recs := results[w][len(results[w])-n:]
				for j := range recs {
					recs[j].ts = ts - uint64(n-1-j)
				}
				prev = ts
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Dense timestamp coverage: exactly one record per timestamp 1..N.
	var all []write
	for _, rs := range results {
		all = append(all, rs...)
	}
	seen := make(map[uint64]bool, len(all))
	for _, wr := range all {
		if seen[wr.ts] {
			t.Fatalf("timestamp %d assigned twice", wr.ts)
		}
		seen[wr.ts] = true
	}
	if got, want := s.Engine().LastTs(), uint64(len(all)); got != want {
		t.Fatalf("engine LastTs = %d, want %d (lost or duplicated records)", got, want)
	}
	for ts := uint64(1); ts <= uint64(len(all)); ts++ {
		if !seen[ts] {
			t.Fatalf("timestamp %d never assigned (gap in commit range)", ts)
		}
	}

	// Every key must read back its highest-timestamped write, verified.
	type final struct {
		ts  uint64
		val string
		del bool
	}
	want := map[string]final{}
	for _, wr := range all {
		if wr.ts > want[wr.key].ts {
			want[wr.key] = final{wr.ts, wr.val, wr.del}
		}
	}
	for key, f := range want {
		res, err := s.Get([]byte(key))
		if err != nil {
			t.Fatalf("get %q: %v", key, err)
		}
		if f.del {
			if res.Found {
				t.Fatalf("get %q found=%v, want tombstone (ts %d)", key, res.Found, f.ts)
			}
			continue
		}
		if !res.Found || string(res.Value) != f.val || res.Ts != f.ts {
			t.Fatalf("get %q = (%q, ts %d, found %v), want (%q, ts %d)",
				key, res.Value, res.Ts, res.Found, f.val, f.ts)
		}
	}

	st := s.Engine().Stats()
	if st.GroupedRecords != uint64(len(all)) {
		t.Fatalf("pipeline carried %d records, want %d", st.GroupedRecords, len(all))
	}
}

// TestGroupCommitCoalescesSyncsAndBumps is the acceptance benchmark as a
// test: on storage where fsync costs real time, 8 concurrent writers
// through the pipeline must finish at least 2x faster than with coalescing
// disabled (GroupCommitMaxOps=1), while issuing measurably fewer WAL
// fsyncs and monotonic-counter bumps for the same committed writes.
func TestGroupCommitCoalescesSyncsAndBumps(t *testing.T) {
	const writers = 8
	const opsPerWriter = 25
	const syncDelay = time.Millisecond

	run := func(maxOps int) (elapsed time.Duration, syncs, bumps uint64) {
		fs := vfs.NewSlowSync(vfs.NewMem(), syncDelay)
		cfg := smallCfg(fs)
		cfg.MemtableSize = 1 << 20
		cfg.CounterInterval = 1 // bump at every commit group: bumps count groups
		cfg.Counter = sgx.NewMonotonicCounter()
		cfg.GroupCommitMaxOps = maxOps
		s := mustOpenP2(t, cfg)
		defer s.Close()

		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < opsPerWriter; i++ {
					key := fmt.Sprintf("w%02d-k%03d", w, i)
					if _, err := s.Put([]byte(key), []byte("v")); err != nil {
						t.Errorf("writer %d: %v", w, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed = time.Since(start)
		bumps, _ = cfg.Counter.Read()
		return elapsed, s.Engine().Stats().WALSyncs, bumps
	}

	perOpTime, perOpSyncs, perOpBumps := run(1)
	groupedTime, groupedSyncs, groupedBumps := run(0)

	total := uint64(writers * opsPerWriter)
	if perOpSyncs != total {
		t.Fatalf("per-op baseline issued %d fsyncs, want %d", perOpSyncs, total)
	}
	if groupedSyncs*2 > perOpSyncs {
		t.Fatalf("group commit issued %d fsyncs vs %d per-op — not coalescing", groupedSyncs, perOpSyncs)
	}
	if groupedBumps*2 > perOpBumps {
		t.Fatalf("group commit paid %d counter bumps vs %d per-op — not amortizing", groupedBumps, perOpBumps)
	}
	if groupedTime*2 > perOpTime {
		t.Fatalf("group commit took %v vs %v per-op — less than the required 2x speedup", groupedTime, perOpTime)
	}
	t.Logf("per-op: %v, %d fsyncs, %d bumps; grouped: %v, %d fsyncs, %d bumps",
		perOpTime, perOpSyncs, perOpBumps, groupedTime, groupedSyncs, groupedBumps)
}

// TestGroupCommitCrashRecoveryMidGroup cuts the WAL inside a commit group
// and checks that recovery yields a prefix of WHOLE groups: every batch is
// either fully present or fully absent, never partially applied.
func TestGroupCommitCrashRecoveryMidGroup(t *testing.T) {
	fs := vfs.NewMem()
	platform, err := sgx.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	counter := sgx.NewMonotonicCounter()
	base := func() Config {
		cfg := smallCfg(fs)
		cfg.MemtableSize = 1 << 20 // no flushes: all groups live in the WAL
		cfg.Platform = platform
		cfg.Counter = counter
		return cfg
	}

	s1 := mustOpenP2(t, base())
	if _, err := s1.Put([]byte("sealed"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil { // seals trusted state over "sealed"
		t.Fatal(err)
	}

	// Reopen and commit 6 batches of 5 records each; crash (no Close).
	s2 := mustOpenP2(t, base())
	const batches, perBatch = 6, 5
	for b := 0; b < batches; b++ {
		ops := make([]BatchOp, perBatch)
		for j := range ops {
			ops[j] = BatchOp{
				Key:   []byte(fmt.Sprintf("g%02d-r%d", b, j)),
				Value: []byte(fmt.Sprintf("v%d-%d", b, j)),
			}
		}
		if _, err := s2.ApplyBatch(ops); err != nil {
			t.Fatal(err)
		}
	}

	// The host (or a torn write) cuts the log 7 bytes before its end —
	// inside the last group.
	f, err := fs.Open("wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(f.Size() - 7); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s3 := mustOpenP2(t, base())
	defer s3.Close()
	if res, err := s3.Get([]byte("sealed")); err != nil || !res.Found {
		t.Fatalf("sealed record lost: %v found=%v", err, res.Found)
	}
	for b := 0; b < batches; b++ {
		present := 0
		for j := 0; j < perBatch; j++ {
			res, err := s3.Get([]byte(fmt.Sprintf("g%02d-r%d", b, j)))
			if err != nil {
				t.Fatalf("get batch %d record %d: %v", b, j, err)
			}
			if res.Found {
				present++
			}
		}
		if present != 0 && present != perBatch {
			t.Fatalf("batch %d recovered %d of %d records — group atomicity broken", b, present, perBatch)
		}
		wantPresent := b < batches-1 // only the cut (last) group may vanish
		if wantPresent && present == 0 {
			t.Fatalf("committed batch %d lost (cut was inside batch %d only)", b, batches-1)
		}
		if !wantPresent && present != 0 {
			t.Fatalf("torn batch %d partially survived", b)
		}
	}
	// Clean-recovery mode must refuse the same torn log.
	fs2 := fs.Clone()
	f2, err := fs2.Open("wal.log")
	if err != nil {
		t.Fatal(err)
	}
	// Re-tear the (already truncated+re-synced) clone mid-frame again to
	// simulate inspecting the original crashed image strictly.
	if f2.Size() > 7 {
		if err := f2.Truncate(f2.Size() - 7); err != nil {
			t.Fatal(err)
		}
	}
	cfg := base()
	cfg.FS = fs2
	cfg.RequireCleanRecovery = true
	if _, err := Open(cfg); err == nil {
		t.Fatal("clean recovery accepted a torn WAL tail")
	}
}

// TestFsyncFailureKeepsSealableState injects a single WAL fsync failure
// mid-stream and checks the failure is fail-stop AND recoverable: the
// store refuses every further commit with the sticky typed
// lsm.ErrWALSyncFailed until reopened (a lying disk must not be written
// past), and after reopen the authentication layer's durable-frontier
// bookkeeping is coherent — later commits seal correctly, a flush rotates
// the WAL cleanly, and a second reopen sees no false rollback.
func TestFsyncFailureKeepsSealableState(t *testing.T) {
	fs := vfs.NewFault(vfs.NewMem())
	platform, err := sgx.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	counter := sgx.NewMonotonicCounter()
	base := func() Config {
		cfg := smallCfg(fs)
		cfg.Platform = platform
		cfg.Counter = counter
		cfg.CounterInterval = 1 // seal after every commit group
		return cfg
	}

	s := mustOpenP2(t, base())
	if _, err := s.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	// Target only the WAL's fsync: the group's append succeeds, its fsync
	// fails — the group was appended (mark queued) but never became
	// durable.
	fs.ArmFilter(vfs.OpSync, "wal*")
	fs.Arm(0)
	if _, err := s.Put([]byte("b"), []byte("2")); !errors.Is(err, lsm.ErrWALSyncFailed) {
		t.Fatalf("put with failing fsync = %v, want ErrWALSyncFailed", err)
	}
	fs.Disarm()
	// A WAL sync failure is fail-stop and sticky: commits keep refusing
	// with the typed error until the store is reopened, even though the
	// disk recovered — the in-memory frontier can no longer be trusted to
	// match the log.
	if _, err := s.Put([]byte("never"), []byte("x")); !errors.Is(err, lsm.ErrWALSyncFailed) {
		t.Fatalf("put after sync failure = %v, want sticky ErrWALSyncFailed", err)
	}
	s.Close()
	s = mustOpenP2(t, base())
	// Subsequent commits must seal coherent durable state.
	for i := 0; i < 4; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("c%d", i)), []byte("3")); err != nil {
			t.Fatal(err)
		}
	}
	// Rotate the WAL under the post-failure mark bookkeeping.
	if err := s.engine.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put([]byte("d"), []byte("4")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: a desynchronized mark queue would have sealed a digest that
	// matches no prefix of the live WAL and fail here as a false rollback.
	s2 := mustOpenP2(t, base())
	defer s2.Close()
	for _, kv := range [][2]string{{"a", "1"}, {"c0", "3"}, {"d", "4"}} {
		res, err := s2.Get([]byte(kv[0]))
		if err != nil || !res.Found || string(res.Value) != kv[1] {
			t.Fatalf("get %q after recovery = (%q, found=%v, err=%v), want %q", kv[0], res.Value, res.Found, err, kv[1])
		}
	}
}

// TestTamperDetectionUnderConcurrentReaders runs verified point and range
// reads from several goroutines at once — first against an honest host
// while writers keep committing (everything must verify), then against a
// tampering host (every reader must observe ErrAuthFailed).
func TestTamperDetectionUnderConcurrentReaders(t *testing.T) {
	cfg := smallCfg(nil)
	cfg.IterChunkKeys = 16
	s := mustOpenP2(t, cfg)
	defer s.Close()
	const keys = 200
	for i := 0; i < keys; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("key%05d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// Phase 1: honest host, concurrent readers and writers. Writers run
	// until the readers finish, then are stopped.
	var wgW, wg sync.WaitGroup
	stop := make(chan struct{})
	rerrs := make(chan error, 16)
	for w := 0; w < 2; w++ {
		wgW.Add(1)
		go func(w int) {
			defer wgW.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("key%05d", (w*97+i)%keys)
				if _, err := s.Put([]byte(key), []byte(fmt.Sprintf("u%d-%d", w, i))); err != nil {
					rerrs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				key := fmt.Sprintf("key%05d", (r*31+i)%keys)
				res, err := s.Get([]byte(key))
				if err != nil {
					rerrs <- fmt.Errorf("reader %d get: %w", r, err)
					return
				}
				if !res.Found {
					rerrs <- fmt.Errorf("reader %d: key %q vanished", r, key)
					return
				}
				if i%10 == 0 {
					it := s.Iter([]byte("key00050"), []byte("key00090"))
					prev := []byte(nil)
					for it.Next() {
						if prev != nil && bytes.Compare(it.Result().Key, prev) <= 0 {
							rerrs <- fmt.Errorf("reader %d: iter out of order", r)
							return
						}
						prev = append(prev[:0], it.Result().Key...)
					}
					if err := it.Close(); err != nil {
						rerrs <- fmt.Errorf("reader %d iter: %w", r, err)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	wgW.Wait()
	close(rerrs)
	for err := range rerrs {
		t.Fatal(err)
	}

	// Phase 2: the host starts dropping a key from every range response.
	// Every concurrent reader must detect it.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	target := []byte("key00070")
	s.scanTamper = func(rs *lsm.RunScan) {
		kept := rs.Records[:0:0]
		for _, rec := range rs.Records {
			if !bytes.Equal(rec.Key, target) {
				kept = append(kept, rec)
			}
		}
		rs.Records = kept
	}
	verdicts := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			it := s.Iter([]byte("key00050"), []byte("key00090"))
			for it.Next() {
				if bytes.Equal(it.Result().Key, target) {
					verdicts <- errors.New("omitted key emitted")
					return
				}
			}
			verdicts <- it.Close()
		}()
	}
	wg.Wait()
	close(verdicts)
	n := 0
	for err := range verdicts {
		n++
		if !errors.Is(err, ErrAuthFailed) {
			t.Fatalf("concurrent reader verdict = %v, want ErrAuthFailed", err)
		}
	}
	if n != 4 {
		t.Fatalf("%d verdicts, want 4", n)
	}
}
